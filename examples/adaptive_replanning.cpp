// Adaptive replanning from observed statistics.
//
// The paper's cost model is time-invariant (§3), but §7.3 observes that
// query selectivities and rates drift over time — the OP baseline's
// latency variance in Fig. 8 stems from exactly that. This example shows
// the adoption workflow on top of the library:
//
//   1. observe an epoch of traffic;
//   2. estimate the network model and predicate selectivities from it
//      (src/workload/stats.h);
//   3. plan with aMuSE and deploy;
//   4. when the next epoch's statistics drift, replan.
//
// Two regimes are simulated: at the flip point the dominant sensor swaps
// (type A hot -> type B hot). A static plan stays tuned to epoch 1 and
// pays heavily in epoch 2; the replanned pipeline adapts.

#include <cstdio>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/trace.h"
#include "src/workload/stats.h"

int main() {
  using namespace muse;

  TypeRegistry registry;
  Query query =
      ParseQuery("SEQ(AND(A a, B b), D d) WHERE a.a0 == b.a0 WITHIN 2s",
                 &registry)
          .value();
  const int kNodes = 6;
  const int kTypes = 3;
  const uint64_t kEpochMs = 20'000;

  // Ground-truth networks per epoch (the planner never sees these; it only
  // sees traces).
  auto make_net = [&](double ra, double rb) {
    Network net(kNodes, kTypes);
    for (NodeId n = 0; n < kNodes; ++n) {
      net.AddProducer(n, 0);
      if (n % 2 == 0) net.AddProducer(n, 1);
      if (n < 2) net.AddProducer(n, 2);
    }
    net.SetRate(0, ra);
    net.SetRate(1, rb);
    net.SetRate(2, 0.2);
    return net;
  };
  Network epoch1 = make_net(/*ra=*/50, /*rb=*/2);
  Network epoch2 = make_net(/*ra=*/2, /*rb=*/50);

  Rng rng(99);
  TraceOptions topts;
  topts.duration_ms = kEpochMs;
  topts.attr_cardinality[0] = 10;
  std::vector<Event> trace1 = GenerateGlobalTrace(epoch1, topts, rng);
  std::vector<Event> trace2 = GenerateGlobalTrace(epoch2, topts, rng);

  // Plan from the statistics of a trace slice.
  auto plan_from = [&](const std::vector<Event>& observed) {
    Network estimated =
        EstimateNetworkFromTrace(observed, kEpochMs, kNodes, kTypes);
    Query calibrated = query;
    CalibrateQuerySelectivities(&calibrated, observed, query.window());
    auto catalogs =
        std::make_shared<WorkloadCatalogs>(std::vector<Query>{calibrated},
                                           estimated);
    WorkloadPlan plan = PlanWorkloadAmuse(*catalogs);
    return std::make_pair(plan, catalogs);
  };

  // Cost of running a plan under a (true) network regime: re-cost the same
  // graph against catalogs built on the true rates.
  auto cost_under = [&](const MuseGraph& plan, const Network& truth) {
    WorkloadCatalogs truth_catalogs({query}, truth);
    return GraphCost(plan, truth_catalogs.Pointers());
  };

  auto [plan1, cats1] = plan_from(trace1);
  auto [plan2, cats2] = plan_from(trace2);

  std::printf("query: %s\n\n", query.ToString(&registry).c_str());
  std::printf("%-28s %14s %14s\n", "", "epoch 1 cost", "epoch 2 cost");
  std::printf("%-28s %14.1f %14.1f\n", "static plan (epoch-1 stats)",
              cost_under(plan1.combined, epoch1),
              cost_under(plan1.combined, epoch2));
  std::printf("%-28s %14.1f %14.1f\n", "replanned per epoch",
              cost_under(plan1.combined, epoch1),
              cost_under(plan2.combined, epoch2));
  std::printf("%-28s %14.1f %14.1f\n", "centralized",
              CentralizedWorkloadCost(epoch1, {query}),
              CentralizedWorkloadCost(epoch2, {query}));

  double stale = cost_under(plan1.combined, epoch2);
  double fresh = cost_under(plan2.combined, epoch2);
  std::printf("\nafter the rate flip, replanning cuts network cost %.1fx\n",
              stale / std::max(fresh, 1e-9));
  return 0;
}
