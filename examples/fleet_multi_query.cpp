// Multi-query workloads and plan sharing (§6.2): a fleet of vehicles runs
// several related monitoring queries that share the composite pattern
// AND(Brake, Swerve). The multi-query planner places the shared projection
// once and reuses its match streams, so the marginal cost of each
// additional query shrinks.

#include <cstdio>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/network_gen.h"

int main() {
  using namespace muse;

  TypeRegistry registry;
  // Shared fragment: hard braking and swerving close together.
  std::vector<std::string> patterns = {
      // Emergency: brake+swerve, then a collision warning.
      "SEQ(AND(Brake b, Swerve s), Warning w) WITHIN 5s",
      // Near-miss report: brake+swerve followed by an all-clear.
      "SEQ(AND(Brake b, Swerve s), Clear c) WITHIN 5s",
      // Driver fatigue: lane drift, then brake+swerve.
      "SEQ(Drift d, AND(Brake b, Swerve s)) WITHIN 5s",
  };
  std::vector<Query> workload;
  for (const std::string& p : patterns) {
    workload.push_back(ParseQuery(p, &registry, 0.05).value());
  }

  // 12 vehicles; braking/swerving telemetry is frequent, warnings rare.
  Rng rng(41);
  NetworkGenOptions nopts;
  nopts.num_nodes = 12;
  nopts.num_types = registry.size();
  nopts.event_node_ratio = 0.7;
  Network fleet = MakeRandomNetwork(nopts, rng);
  fleet.SetRate(registry.Find("Brake"), 30);
  fleet.SetRate(registry.Find("Swerve"), 30);
  fleet.SetRate(registry.Find("Warning"), 0.2);
  fleet.SetRate(registry.Find("Clear"), 0.5);
  fleet.SetRate(registry.Find("Drift"), 2);

  std::printf("fleet workload:\n");
  for (const Query& q : workload) {
    std::printf("  %s\n", q.ToString(&registry).c_str());
  }

  // Marginal cost per query: plan prefixes of the workload.
  std::printf("\n%-28s %14s %14s\n", "workload prefix", "total cost",
              "marginal cost");
  double previous = 0;
  for (size_t k = 1; k <= workload.size(); ++k) {
    std::vector<Query> prefix(workload.begin(), workload.begin() + k);
    WorkloadCatalogs catalogs(prefix, fleet);
    WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
    std::printf("  first %zu quer%s %14.1f %14.1f\n", k,
                k == 1 ? "y " : "ies", plan.total_cost,
                plan.total_cost - previous);
    previous = plan.total_cost;
  }

  // Compare sharing against planning each query in isolation.
  double independent = 0;
  for (const Query& q : workload) {
    WorkloadCatalogs one({q}, fleet);
    independent += PlanWorkloadAmuse(one).total_cost;
  }
  WorkloadCatalogs all(workload, fleet);
  WorkloadPlan shared = PlanWorkloadAmuse(all);
  std::printf("\nindependent plans: %.1f events/s\n", independent);
  std::printf("shared plan:       %.1f events/s (%.0f%% saved)\n",
              shared.total_cost,
              100.0 * (1.0 - shared.total_cost /
                                 std::max(independent, 1e-9)));
  std::printf("centralized:       %.1f events/s\n", shared.centralized_cost);
  return 0;
}
