// The paper's case study (§7.3): cluster monitoring over task-lifecycle
// event streams (our synthetic stand-in for the Google cluster traces).
// Two queries from Listing 1:
//   Query 1: SEQ(Fail, Evict, Kill, Update)  correlated on task id;
//   Query 2: AND(Finish, Fail, Kill, Update) correlated on job id;
// both WITHIN 30min. Plans a MuSE graph for the workload, executes it, and
// compares with traditional operator placement.

#include <cstdio>

#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/workload/cluster_trace.h"

int main() {
  using namespace muse;

  ClusterTraceOptions opts;
  opts.num_nodes = 10;
  opts.num_machines = 300;
  opts.duration_ms = 180'000;
  opts.job_rate_per_s = 5.0;
  opts.troubled_probability = 0.02;
  opts.window_ms = 90'000;
  Rng rng(9);
  ClusterTrace ct = GenerateClusterTrace(opts, rng);

  std::printf("synthetic cluster trace: %zu events, %llu tasks, %llu jobs\n",
              ct.events.size(),
              static_cast<unsigned long long>(ct.task_count),
              static_cast<unsigned long long>(ct.job_count));
  for (int t = 0; t < ct.registry.size(); ++t) {
    std::printf("  %-14s rate %.3f /node/s\n", ct.registry.Name(t).c_str(),
                ct.network.Rate(static_cast<EventTypeId>(t)));
  }

  std::vector<Query> workload = {ct.MakeQuery1(), ct.MakeQuery2()};
  std::printf("\nQuery 1: %s\n", workload[0].ToString(&ct.registry).c_str());
  std::printf("Query 2: %s\n", workload[1].ToString(&ct.registry).c_str());

  WorkloadCatalogs catalogs(workload, ct.network);
  WorkloadPlan muse_plan = PlanWorkloadAmuse(catalogs);
  WorkloadPlan oop_plan = PlanWorkloadOop(catalogs);
  std::printf("\ntransmission ratio: aMuSE %.4f vs oOP %.4f\n",
              muse_plan.transmission_ratio, oop_plan.transmission_ratio);

  auto execute = [&](const char* label, const MuseGraph& plan) {
    Deployment dep(plan, catalogs.Pointers());
    SimOptions sim_opts;
    DistributedSimulator sim(dep, sim_opts);
    SimReport report = sim.Run(ct.events);
    std::printf("%s: %s\n", label, report.Summary().c_str());
    std::printf("  query 1 matches: %zu, query 2 matches: %zu\n",
                report.matches_per_query[0].size(),
                report.matches_per_query[1].size());
    return report;
  };

  std::printf("\nexecuting MuSE graph plan (MS):\n");
  SimReport ms = execute("MS", muse_plan.combined);
  std::printf("\nexecuting operator placement plan (OP):\n");
  SimReport op = execute("OP", oop_plan.combined);

  std::printf("\nMS vs OP: %.1fx fewer network messages, "
              "%.1fx lower peak partial-match load\n",
              static_cast<double>(op.network_messages) /
                  std::max<uint64_t>(1, ms.network_messages),
              static_cast<double>(op.max_peak_partial_matches) /
                  std::max<uint64_t>(1, ms.max_peak_partial_matches));
  return 0;
}
