// Quickstart: parse a CEP query, describe an event-sourced network, plan a
// MuSE graph with aMuSE, compare its network cost against the baselines,
// and execute the plan on a synthetic trace in the distributed runtime.
//
//   ./quickstart

#include <cstdio>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"

int main() {
  using namespace muse;

  // 1. A query: an A-then-B pattern followed by a D event, correlated on
  //    attribute a0, within 2 seconds.
  TypeRegistry registry;
  Result<Query> parsed = ParseQuery(
      "PATTERN SEQ(AND(A a, B b), D d) "
      "WHERE a.a0 == b.a0 AND b.a0 == d.a0 WITHIN 2s",
      &registry, /*default_selectivity=*/0.1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  Query query = parsed.value();
  std::printf("query: %s (window %llums)\n", query.ToString(&registry).c_str(),
              static_cast<unsigned long long>(query.window()));

  // 2. An event-sourced network: 6 nodes, types A/B frequent, D rare.
  Network net(6, 3);
  for (NodeId n = 0; n < 6; ++n) {
    net.AddProducer(n, registry.Find("A"));
    if (n % 2 == 0) net.AddProducer(n, registry.Find("B"));
    if (n == 1 || n == 4) net.AddProducer(n, registry.Find("D"));
  }
  net.SetRate(registry.Find("A"), 40.0);  // per node per second
  net.SetRate(registry.Find("B"), 25.0);
  net.SetRate(registry.Find("D"), 0.5);

  // 3. Plan with aMuSE and compare against the baselines.
  WorkloadCatalogs catalogs({query}, net);
  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  std::printf("\ncentralized cost: %.1f events/s\n", amuse.centralized_cost);
  std::printf("oOP cost:         %.1f (ratio %.3f)\n", oop.total_cost,
              oop.transmission_ratio);
  std::printf("aMuSE cost:       %.1f (ratio %.3f)\n", amuse.total_cost,
              amuse.transmission_ratio);
  std::printf("\nMuSE graph:\n%s", amuse.combined.ToString(&registry).c_str());

  // 4. Execute the plan on a generated trace and report runtime metrics.
  Rng rng(7);
  TraceOptions trace_opts;
  trace_opts.duration_ms = 10'000;
  trace_opts.attr_cardinality[0] = 20;
  std::vector<Event> trace = GenerateGlobalTrace(net, trace_opts, rng);

  Deployment deployment(amuse.combined, catalogs.Pointers());
  DistributedSimulator sim(deployment, SimOptions{});
  SimReport report = sim.Run(trace);
  std::printf("\nexecution: %s\n", report.Summary().c_str());
  std::printf("matches detected: %zu\n", report.matches_per_query[0].size());
  for (size_t i = 0; i < report.matches_per_query[0].size() && i < 3; ++i) {
    std::printf("  %s\n", report.matches_per_query[0][i].ToString().c_str());
  }
  return 0;
}
