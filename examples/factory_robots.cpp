// The paper's motivating scenario (§1, Fig. 1): three autonomous transport
// robots emit camera (C) and lidar (L) events at high rates and rare floor
// clearance (F) events. The query SEQ(AND(C,L), F) detects an obstacle seen
// by both sensors followed by a clearance report.
//
// This example contrasts the three evaluation strategies of Fig. 1:
//   (a) naive/centralized   — every event to one robot;
//   (b) operator placement  — AND(C,L) placed at the best single robot;
//   (c) MuSE graph          — arbitrary projections (e.g. SEQ(C,F)) and
//                             multiple sinks; the high-rate sensor streams
//                             never leave their robots.

#include <cstdio>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/trace.h"

int main() {
  using namespace muse;

  TypeRegistry registry;
  Query query = ParseQuery("SEQ(AND(C, L), F) WITHIN 1s", &registry).value();
  // Obstacle correlation: camera and lidar must report the same obstacle id.
  query.AddPredicate(Predicate::Equality(registry.Find("C"), 0,
                                         registry.Find("L"), 0, 0.05));

  // Fig. 1: R1 emits C and F, R2 emits C and L, R3 emits L and F.
  const EventTypeId kC = registry.Find("C");
  const EventTypeId kL = registry.Find("L");
  const EventTypeId kF = registry.Find("F");
  Network robots(3, 3);
  robots.AddProducer(0, kC);
  robots.AddProducer(0, kF);
  robots.AddProducer(1, kC);
  robots.AddProducer(1, kL);
  robots.AddProducer(2, kL);
  robots.AddProducer(2, kF);
  robots.SetRate(kC, 60.0);  // sensors: high rate
  robots.SetRate(kL, 60.0);
  robots.SetRate(kF, 0.4);  // clearance: rare

  WorkloadCatalogs catalogs({query}, robots);
  double naive = CentralizedWorkloadCost(robots, {query});
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  WorkloadPlan muse_plan = PlanWorkloadAmuse(catalogs);

  std::printf("query: %s\n\n", query.ToString(&registry).c_str());
  std::printf("(a) naive / centralized : %8.1f events/s over WiFi\n", naive);
  std::printf("(b) operator placement  : %8.1f events/s (%.1f%% of naive)\n",
              oop.total_cost, 100 * oop.transmission_ratio);
  std::printf("(c) MuSE graph          : %8.1f events/s (%.1f%% of naive)\n\n",
              muse_plan.total_cost, 100 * muse_plan.transmission_ratio);
  std::printf("MuSE evaluation plan:\n%s\n",
              muse_plan.combined.ToString(&registry).c_str());

  // Run a minute of robot traffic through the distributed runtime.
  Rng rng(16);
  TraceOptions topts;
  topts.duration_ms = 60'000;
  topts.attr_cardinality[0] = 10;  // obstacle ids
  std::vector<Event> trace = GenerateGlobalTrace(robots, topts, rng);

  Deployment deployment(muse_plan.combined, catalogs.Pointers());
  SimOptions sim_opts;
  sim_opts.collect_matches = true;
  DistributedSimulator sim(deployment, sim_opts);
  SimReport report = sim.Run(trace);

  std::printf("replayed %llu robot events: %zu obstacle patterns detected\n",
              static_cast<unsigned long long>(report.source_events),
              report.matches_per_query[0].size());
  std::printf("network messages: %llu (vs %llu events total)\n",
              static_cast<unsigned long long>(report.network_messages),
              static_cast<unsigned long long>(report.source_events));
  std::printf("detection latency: %s\n",
              report.latency_ms.ToString().c_str());
  return 0;
}
