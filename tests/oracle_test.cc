#include "src/cep/oracle.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

Event Ev(EventTypeId type, uint64_t seq, int64_t a0 = 0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.time = seq;
  e.attrs = {a0, 0};
  return e;
}

TEST(OracleTest, SeqCountsOrderedPairs) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  // A@1, A@2, B@3, B@4 -> 4 ordered pairs.
  std::vector<Event> trace = {Ev(0, 1), Ev(0, 2), Ev(1, 3), Ev(1, 4)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 4u);
  // B before both As -> those pairs don't count.
  trace = {Ev(1, 1), Ev(0, 2), Ev(0, 3), Ev(1, 4)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 2u);
}

TEST(OracleTest, SkipTillAnyMatchSkipsInterleaved) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  // Irrelevant events between A and B do not block the match.
  std::vector<Event> trace = {Ev(0, 1), Ev(2, 2), Ev(2, 3), Ev(1, 4)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 1u);
}

TEST(OracleTest, AndCountsAllPairsRegardlessOfOrder) {
  TypeRegistry reg;
  Query q = ParseQuery("AND(A, B)", &reg).value();
  std::vector<Event> trace = {Ev(1, 1), Ev(0, 2), Ev(1, 3)};
  // (B@1,A@2), (A@2,B@3) -> 2 matches.
  EXPECT_EQ(OracleMatches(q, trace).size(), 2u);
}

TEST(OracleTest, OrUnionsChildMatches) {
  TypeRegistry reg;
  Query q = ParseQuery("OR(A, B)", &reg).value();
  std::vector<Event> trace = {Ev(0, 1), Ev(1, 2), Ev(0, 3)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 3u);
}

TEST(OracleTest, NseqSuppressedByMiddle) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  // A@1 .. B@2 .. C@3: suppressed.
  EXPECT_EQ(OracleMatches(q, {Ev(0, 1), Ev(1, 2), Ev(2, 3)}).size(), 0u);
  // A@1 .. C@2 (B after): match.
  EXPECT_EQ(OracleMatches(q, {Ev(0, 1), Ev(2, 2), Ev(1, 3)}).size(), 1u);
  // B before A: match.
  EXPECT_EQ(OracleMatches(q, {Ev(1, 1), Ev(0, 2), Ev(2, 3)}).size(), 1u);
}

TEST(OracleTest, NseqMatchExcludesMiddleEvents) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  std::vector<Match> matches = OracleMatches(q, {Ev(0, 1), Ev(2, 2)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events.size(), 2u);
}

TEST(OracleTest, PredicatesFilter) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A a, B b) WHERE a.a0 == b.a0", &reg).value();
  std::vector<Event> trace = {Ev(0, 1, 7), Ev(1, 2, 7), Ev(1, 3, 8)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 1u);
}

TEST(OracleTest, WindowFilters) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 5ms", &reg).value();
  std::vector<Event> trace = {Ev(0, 1), Ev(1, 4), Ev(1, 20)};
  EXPECT_EQ(OracleMatches(q, trace).size(), 1u);
}

TEST(OracleTest, NestedQueryExampleFromPaper) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  // C@1 L@2 F@3 and L@1' variants.
  std::vector<Event> trace = {Ev(0, 1), Ev(1, 2), Ev(2, 3), Ev(1, 4)};
  // AND matches: (C1,L2). L4 is after F3 -> (C1,L4) with F? F@3 not after
  // L@4 -> only (C1,L2),F3. => 1 match.
  EXPECT_EQ(OracleMatches(q, trace).size(), 1u);
}

TEST(OracleTest, MiddlePredicateRestrictsAntiMatches) {
  TypeRegistry reg;
  // B only counts as blocking when its a0 equals... unary filter: B.a0%2==0.
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  EventTypeId b = static_cast<EventTypeId>(reg.Find("B"));
  q.AddPredicate(Predicate::Filter(b, 0, 2));
  // Odd-attr B does not block.
  EXPECT_EQ(OracleMatches(q, {Ev(0, 1), Ev(1, 2, 3), Ev(2, 3)}).size(), 1u);
  // Even-attr B blocks.
  EXPECT_EQ(OracleMatches(q, {Ev(0, 1), Ev(1, 2, 4), Ev(2, 3)}).size(), 0u);
}

TEST(CanonicalMatchSetTest, SortsAndDedups) {
  Match a{{Ev(0, 2)}};
  Match b{{Ev(0, 1)}};
  std::vector<Match> set = CanonicalMatchSet({a, b, a});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].events[0].seq, 1u);
}

}  // namespace
}  // namespace muse
