#include "src/cep/query.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

Query Q1() {
  // SEQ(AND(C=0, L=1), F=2) — the paper's running example (Fig. 1/2).
  std::vector<Query> inner;
  inner.push_back(Query::Primitive(0));
  inner.push_back(Query::Primitive(1));
  std::vector<Query> outer;
  outer.push_back(Query::And(std::move(inner)));
  outer.push_back(Query::Primitive(2));
  return Query::Seq(std::move(outer));
}

TEST(QueryTest, PrimitiveBasics) {
  Query q = Query::Primitive(4);
  EXPECT_TRUE(q.IsInitialized());
  EXPECT_EQ(q.num_ops(), 1);
  EXPECT_EQ(q.op(q.root()).kind, OpKind::kPrimitive);
  EXPECT_EQ(q.PrimitiveTypes(), TypeSet({4}));
  EXPECT_TRUE(q.Validate());
}

TEST(QueryTest, RunningExampleStructure) {
  Query q = Q1();
  EXPECT_TRUE(q.Validate());
  EXPECT_EQ(q.PrimitiveTypes(), TypeSet({0, 1, 2}));
  EXPECT_EQ(q.op(q.root()).kind, OpKind::kSeq);
  EXPECT_EQ(q.ToString(), "SEQ(AND(E0,E1),E2)");
  EXPECT_EQ(q.NumPrimitives(), 3);
  EXPECT_FALSE(q.ContainsNegation());
  EXPECT_FALSE(q.ContainsOr());
}

TEST(QueryTest, SameKindNestingIsFlattened) {
  std::vector<Query> inner;
  inner.push_back(Query::Primitive(0));
  inner.push_back(Query::Primitive(1));
  std::vector<Query> outer;
  outer.push_back(Query::Seq(std::move(inner)));
  outer.push_back(Query::Primitive(2));
  Query q = Query::Seq(std::move(outer));
  EXPECT_EQ(q.ToString(), "SEQ(E0,E1,E2)");
  EXPECT_TRUE(q.Validate());
}

TEST(QueryTest, AndChildrenCanonicalized) {
  std::vector<Query> a;
  a.push_back(Query::Primitive(1));
  a.push_back(Query::Primitive(0));
  std::vector<Query> b;
  b.push_back(Query::Primitive(0));
  b.push_back(Query::Primitive(1));
  EXPECT_EQ(Query::And(std::move(a)).Signature(),
            Query::And(std::move(b)).Signature());
}

TEST(QueryTest, SeqChildrenOrderPreserved) {
  std::vector<Query> a;
  a.push_back(Query::Primitive(1));
  a.push_back(Query::Primitive(0));
  std::vector<Query> b;
  b.push_back(Query::Primitive(0));
  b.push_back(Query::Primitive(1));
  EXPECT_NE(Query::Seq(std::move(a)).Signature(),
            Query::Seq(std::move(b)).Signature());
}

TEST(QueryTest, SingleChildCollapses) {
  std::vector<Query> one;
  one.push_back(Query::Primitive(3));
  Query q = Query::Seq(std::move(one));
  EXPECT_EQ(q.num_ops(), 1);
  EXPECT_EQ(q.op(q.root()).kind, OpKind::kPrimitive);
}

TEST(QueryTest, NseqStructure) {
  Query q = Query::Nseq(Query::Primitive(0), Query::Primitive(1),
                        Query::Primitive(2));
  EXPECT_TRUE(q.Validate());
  EXPECT_TRUE(q.ContainsNegation());
  EXPECT_EQ(q.NegatedTypes(), TypeSet({1}));
  EXPECT_EQ(q.PositiveTypes(), TypeSet({0, 2}));
  EXPECT_EQ(q.ToString(), "NSEQ(E0,E1,E2)");
}

TEST(QueryTest, RepeatedPrimitiveTypeIsInvalid) {
  std::vector<Query> c;
  c.push_back(Query::Primitive(0));
  c.push_back(Query::Primitive(0));
  Query q = Query::Seq(std::move(c));
  std::string why;
  EXPECT_FALSE(q.Validate(&why));
  EXPECT_NE(why.find("two primitive operators"), std::string::npos);
}

TEST(QueryTest, PredicateOnForeignTypeIsInvalid) {
  Query q = Q1();
  q.AddPredicate(Predicate::Equality(0, 0, 9, 0, 0.5));
  EXPECT_FALSE(q.Validate());
}

TEST(QueryTest, WindowAndPredicates) {
  Query q = std::move(Q1())
                .WithWindow(5000)
                .WithPredicate(Predicate::Equality(0, 0, 1, 0, 0.25));
  EXPECT_EQ(q.window(), 5000u);
  ASSERT_EQ(q.predicates().size(), 1u);
  EXPECT_DOUBLE_EQ(q.Selectivity(), 0.25);
  EXPECT_TRUE(q.Validate());
}

TEST(QueryTest, SelectivityMultipliesPredicates) {
  Query q = std::move(Q1())
                .WithPredicate(Predicate::Equality(0, 0, 1, 0, 0.5))
                .WithPredicate(Predicate::Equality(1, 0, 2, 0, 0.1));
  EXPECT_DOUBLE_EQ(q.Selectivity(), 0.05);
}

TEST(QueryTest, SubtreeTypes) {
  Query q = Q1();
  EXPECT_EQ(q.SubtreeTypes(q.root()), TypeSet({0, 1, 2}));
  // The AND child covers {0,1}.
  const QueryOp& root = q.op(q.root());
  bool found_and = false;
  for (int child : root.children) {
    if (q.op(child).kind == OpKind::kAnd) {
      EXPECT_EQ(q.SubtreeTypes(child), TypeSet({0, 1}));
      found_and = true;
    }
  }
  EXPECT_TRUE(found_and);
}

TEST(QueryTest, SubqueryExtractsWithApplicablePredicates) {
  Query q = std::move(Q1())
                .WithWindow(1000)
                .WithPredicate(Predicate::Equality(0, 0, 1, 0, 0.5))
                .WithPredicate(Predicate::Equality(1, 0, 2, 0, 0.1));
  const QueryOp& root = q.op(q.root());
  int and_idx = -1;
  for (int child : root.children) {
    if (q.op(child).kind == OpKind::kAnd) and_idx = child;
  }
  ASSERT_GE(and_idx, 0);
  Query sub = q.Subquery(and_idx);
  EXPECT_EQ(sub.ToString(), "AND(E0,E1)");
  EXPECT_EQ(sub.window(), 1000u);
  ASSERT_EQ(sub.predicates().size(), 1u);  // only the {0,1} predicate
  EXPECT_DOUBLE_EQ(sub.predicates()[0].selectivity, 0.5);
  EXPECT_TRUE(sub.Validate());
}

TEST(QueryTest, PrimitiveProjectionKeepsUnaryPredicates) {
  Query q = std::move(Q1()).WithPredicate(Predicate::Filter(2, 0, 4));
  Query p = q.PrimitiveProjection(2);
  EXPECT_EQ(p.PrimitiveTypes(), TypeSet({2}));
  EXPECT_EQ(p.predicates().size(), 1u);
}

TEST(QueryTest, SignatureCoversWindowAndPredicates) {
  Query a = std::move(Q1()).WithWindow(1000);
  Query b = std::move(Q1()).WithWindow(2000);
  EXPECT_NE(a.Signature(), b.Signature());
  Query c = std::move(Q1()).WithWindow(1000);
  EXPECT_EQ(a.Signature(), c.Signature());
  Query d = std::move(Q1())
                .WithWindow(1000)
                .WithPredicate(Predicate::Equality(0, 0, 2, 0, 0.5));
  EXPECT_NE(a.Signature(), d.Signature());
}

TEST(QueryTest, OrSplitsDetected) {
  std::vector<Query> c;
  c.push_back(Query::Primitive(0));
  c.push_back(Query::Primitive(1));
  Query q = Query::Or(std::move(c));
  EXPECT_TRUE(q.ContainsOr());
  EXPECT_TRUE(q.Validate());
}

TEST(QueryTest, EmptyQueryInvalid) {
  Query q;
  EXPECT_FALSE(q.IsInitialized());
  EXPECT_FALSE(q.Validate());
}

}  // namespace
}  // namespace muse
