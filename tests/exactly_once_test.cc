#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/multi_query.h"
#include "src/dist/channel.h"
#include "src/dist/node_runtime.h"
#include "src/net/network_gen.h"

namespace muse {
namespace {

SimMessage Msg(int src_task, uint64_t seq) {
  SimMessage m;
  m.src_task = src_task;
  m.channel_seq = seq;
  return m;
}

TEST(ExactlyOnceFilterTest, InOrderStreamKeepsNoPending) {
  ExactlyOnceFilter filter;
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_TRUE(filter.Accept(Msg(7, seq)));
  }
  EXPECT_EQ(filter.Watermark(7), 1000u);
  EXPECT_EQ(filter.PendingAboveWatermark(), 0u);
  EXPECT_EQ(filter.PeakPendingAboveWatermark(), 0u);
  EXPECT_EQ(filter.dropped(), 0u);
}

TEST(ExactlyOnceFilterTest, DuplicateBelowWatermarkDropped) {
  ExactlyOnceFilter filter;
  EXPECT_TRUE(filter.Accept(Msg(1, 0)));
  EXPECT_TRUE(filter.Accept(Msg(1, 1)));
  EXPECT_FALSE(filter.Accept(Msg(1, 0)));
  EXPECT_FALSE(filter.Accept(Msg(1, 1)));
  EXPECT_EQ(filter.dropped(), 2u);
}

TEST(ExactlyOnceFilterTest, OutOfOrderCompactsOnGapFill) {
  ExactlyOnceFilter filter;
  EXPECT_TRUE(filter.Accept(Msg(3, 0)));
  // Gap: 2 and 3 arrive before 1. They are accepted (fresh) but retained
  // above the watermark.
  EXPECT_TRUE(filter.Accept(Msg(3, 2)));
  EXPECT_TRUE(filter.Accept(Msg(3, 3)));
  EXPECT_EQ(filter.Watermark(3), 1u);
  EXPECT_EQ(filter.PendingAboveWatermark(), 2u);
  // Filling the gap compacts the whole run into the watermark.
  EXPECT_TRUE(filter.Accept(Msg(3, 1)));
  EXPECT_EQ(filter.Watermark(3), 4u);
  EXPECT_EQ(filter.PendingAboveWatermark(), 0u);
  EXPECT_EQ(filter.PeakPendingAboveWatermark(), 2u);
}

// The old watermark-jump filter wrongly dropped a late gap-filler; the
// pending-set design must accept it exactly once.
TEST(ExactlyOnceFilterTest, LateGapFillerIsFreshNotDuplicate) {
  ExactlyOnceFilter filter;
  EXPECT_TRUE(filter.Accept(Msg(5, 1)));   // seq 0 still in flight
  EXPECT_TRUE(filter.Accept(Msg(5, 0)));   // late arrival: fresh
  EXPECT_FALSE(filter.Accept(Msg(5, 0)));  // resend: duplicate
  EXPECT_EQ(filter.Watermark(5), 2u);
}

TEST(ExactlyOnceFilterTest, DuplicateOfPendingDropped) {
  ExactlyOnceFilter filter;
  EXPECT_TRUE(filter.Accept(Msg(2, 5)));
  EXPECT_FALSE(filter.Accept(Msg(2, 5)));
  EXPECT_EQ(filter.dropped(), 1u);
  EXPECT_EQ(filter.PendingAboveWatermark(), 1u);
}

TEST(ExactlyOnceFilterTest, ChannelsAreIndependent) {
  ExactlyOnceFilter filter;
  EXPECT_TRUE(filter.Accept(Msg(1, 0)));
  EXPECT_TRUE(filter.Accept(Msg(2, 0)));
  EXPECT_FALSE(filter.Accept(Msg(1, 0)));
  auto watermarks = filter.Watermarks();
  ASSERT_EQ(watermarks.size(), 2u);
  EXPECT_EQ(filter.Watermark(1), 1u);
  EXPECT_EQ(filter.Watermark(2), 1u);
  EXPECT_EQ(filter.Watermark(99), 0u);
}

// Memory boundedness: a long in-order stream after a transient reorder
// leaves only the watermark behind — pending never grows with stream
// length.
TEST(ExactlyOnceFilterTest, PendingBoundedByReorderWindow) {
  ExactlyOnceFilter filter;
  uint64_t peak = 0;
  for (uint64_t base = 0; base < 10000; base += 2) {
    EXPECT_TRUE(filter.Accept(Msg(0, base + 1)));  // one-deep reorder
    peak = std::max(peak, filter.PendingAboveWatermark());
    EXPECT_TRUE(filter.Accept(Msg(0, base)));      // gap-filler compacts
  }
  EXPECT_EQ(filter.Watermark(0), 10000u);
  EXPECT_EQ(filter.PendingAboveWatermark(), 0u);
  EXPECT_EQ(peak, 1u);
  EXPECT_EQ(filter.PeakPendingAboveWatermark(), 1u);
}

class ChannelSeqTest : public ::testing::Test {
 protected:
  ChannelSeqTest() {
    TypeRegistry reg;
    Query q = ParseQuery("AND(A, B)", &reg).value();
    q.set_window(100);
    std::vector<Query> workload{std::move(q)};
    Rng rng(1);
    NetworkGenOptions nopts;
    nopts.num_nodes = 2;
    nopts.num_types = 2;
    nopts.max_rate = 4;
    net_ = MakeRandomNetwork(nopts, rng);
    catalogs_ = std::make_unique<WorkloadCatalogs>(workload, net_);
    plan_ = PlanWorkloadAmuse(*catalogs_);
    dep_ = std::make_unique<Deployment>(plan_.combined, catalogs_->Pointers());
  }

  Network net_{1, 1};
  std::unique_ptr<WorkloadCatalogs> catalogs_;
  WorkloadPlan plan_;
  std::unique_ptr<Deployment> dep_;
};

// Regression: the channel-seq map key used to pack the task id with a
// 20-bit shift, so (task 1, dst 0) and (task 0, dst 2^20) shared one
// counter. With 32/32 packing every (task, dst) pair is independent.
TEST_F(ChannelSeqTest, KeyPackingDoesNotAliasLargeNodeIds) {
  NodeRuntime rt(0, dep_.get(), EvaluatorOptions{});
  const NodeId big = 1u << 20;
  EXPECT_EQ(rt.NextChannelSeq(1, 0), 0u);
  EXPECT_EQ(rt.NextChannelSeq(0, big), 0u);  // aliased to 1 before the fix
  EXPECT_EQ(rt.NextChannelSeq(1, 0), 1u);
  EXPECT_EQ(rt.NextChannelSeq(0, big), 1u);
  // And the same across a wide sweep of colliding pairs under the old
  // packing: (t, d) vs (t - 1, d + 2^20).
  for (int t = 1; t <= 8; ++t) {
    const NodeId d = static_cast<NodeId>(t);
    EXPECT_EQ(rt.NextChannelSeq(t, d), 0u);
    EXPECT_EQ(rt.NextChannelSeq(t - 1, d + (1u << 20)), 0u);
  }
}

TEST_F(ChannelSeqTest, CrashResetsNumberingDeterministically) {
  NodeRuntime rt(0, dep_.get(), EvaluatorOptions{});
  EXPECT_EQ(rt.NextChannelSeq(0, 1), 0u);
  EXPECT_EQ(rt.NextChannelSeq(0, 1), 1u);
  rt.Crash();
  std::vector<NodeRuntime::Output> outs;
  rt.Recover(&outs);
  // An empty log regenerates nothing; fresh sends restart at 0 and the
  // receiver-side filter treats the replayed prefix as duplicates.
  EXPECT_EQ(rt.NextChannelSeq(0, 1), 0u);
}

}  // namespace
}  // namespace muse
