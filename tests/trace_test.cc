#include "src/net/trace.h"

#include <gtest/gtest.h>

#include "src/net/poisson.h"

namespace muse {
namespace {

Network SmallNet() {
  Network net(3, 2);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.SetRate(0, 50.0);
  net.SetRate(1, 10.0);
  return net;
}

TEST(PoissonTest, ArrivalsIncrease) {
  PoissonProcess p(100.0);
  Rng rng(1);
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t t = p.NextArrival(rng);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(PoissonTest, RateRoughlyMatches) {
  PoissonProcess p(200.0);  // per second
  Rng rng(2);
  int count = 0;
  while (p.NextArrival(rng) < 10'000) ++count;  // 10 simulated seconds
  EXPECT_NEAR(count, 2000, 200);
}

TEST(TraceTest, GlobalTraceSortedWithDenseSeq) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 2000;
  Rng rng(7);
  std::vector<Event> trace = GenerateGlobalTrace(net, opts, rng);
  ASSERT_FALSE(trace.empty());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, i);
    if (i > 0) {
      EXPECT_GE(trace[i].time, trace[i - 1].time);
    }
    EXPECT_LT(trace[i].time, opts.duration_ms);
  }
}

TEST(TraceTest, OnlyConfiguredProducersEmit) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 2000;
  Rng rng(7);
  for (const Event& e : GenerateGlobalTrace(net, opts, rng)) {
    EXPECT_TRUE(net.Produces(e.origin, e.type))
        << "node " << e.origin << " emitted foreign type " << e.type;
  }
}

TEST(TraceTest, VolumeTracksRates) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 20'000;
  Rng rng(7);
  std::vector<Event> trace = GenerateGlobalTrace(net, opts, rng);
  int count0 = 0;
  int count1 = 0;
  for (const Event& e : trace) {
    (e.type == 0 ? count0 : count1)++;
  }
  // Type 0: 2 producers x 50/s x 20s = 2000; type 1: 2 x 10 x 20 = 400.
  EXPECT_NEAR(count0, 2000, 300);
  EXPECT_NEAR(count1, 400, 120);
}

TEST(TraceTest, AttrCardinalityRespected) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 5000;
  opts.attr_cardinality[0] = 3;
  opts.attr_cardinality[1] = 1;
  Rng rng(7);
  for (const Event& e : GenerateGlobalTrace(net, opts, rng)) {
    EXPECT_GE(e.attrs[0], 0);
    EXPECT_LT(e.attrs[0], 3);
    EXPECT_EQ(e.attrs[1], 0);
  }
}

TEST(TraceTest, MaxEventsCapEnforced) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 1'000'000;
  opts.max_events = 500;
  Rng rng(7);
  EXPECT_LE(GenerateGlobalTrace(net, opts, rng).size(), 500u);
}

TEST(TraceTest, LocalTraceFilters) {
  Network net = SmallNet();
  TraceOptions opts;
  opts.duration_ms = 1000;
  Rng rng(7);
  std::vector<Event> trace = GenerateGlobalTrace(net, opts, rng);
  size_t total = 0;
  for (NodeId n = 0; n < 3; ++n) {
    std::vector<Event> local = LocalTrace(trace, n);
    total += local.size();
    for (const Event& e : local) EXPECT_EQ(e.origin, n);
  }
  EXPECT_EQ(total, trace.size());
}

TEST(TraceTest, FinalizeOrderDeterministicOnTies) {
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(4 - i);
    e.origin = static_cast<NodeId>(i % 2);
    e.time = 100;  // all tied
    events.push_back(e);
  }
  FinalizeTraceOrder(&events);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1].origin < events[i].origin ||
                (events[i - 1].origin == events[i].origin &&
                 events[i - 1].type <= events[i].type));
  }
}

}  // namespace
}  // namespace muse
