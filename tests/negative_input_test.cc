// Malformed input must surface as Result errors, never as exceptions or
// CHECK aborts: the spec parser, the query parser, and the plan-JSON
// importer all sit on trust boundaries (files, stdin). Each case here
// previously had (or guards against) a crash path — std::sto* throwing on
// garbage or overflow, TypeRegistry asserting past 64 types.

#include <gtest/gtest.h>

#include <string>

#include "src/cep/parser.h"
#include "src/common/numbers.h"
#include "src/core/plan_json.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

// --- numbers.h helpers ---------------------------------------------------

TEST(NumbersTest, ParsesAndRejects) {
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseUint64("42"), 42u);
  EXPECT_EQ(ParseDouble("2.5"), 2.5);
  for (const char* bad : {"", "abc", "12x", "1 2", "--3", "0x10"}) {
    EXPECT_FALSE(ParseInt64(bad).has_value()) << bad;
    EXPECT_FALSE(ParseUint64(bad).has_value()) << bad;
  }
  // Overflow is rejection, not UB or modular wrap.
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
  EXPECT_FALSE(ParseUint64("99999999999999999999999").has_value());
  EXPECT_FALSE(ParseDouble("1e999999").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("zzz").has_value());
}

// --- spec parser ---------------------------------------------------------

std::string SpecWith(const std::string& line) {
  return "nodes 2\nrate A 1\nproduce 0 A\nproduce 1 A\n" + line +
         "\nquery SEQ(A, A) WITHIN 1s\n";
}

TEST(SpecNegativeTest, MalformedNumbersAreErrorsNotCrashes) {
  for (const std::string& spec : {
           std::string("nodes zero\nrate A 1\nproduce 0 A\nquery A\n"),
           std::string("nodes 99999999999999999999\nrate A 1\n"
                       "produce 0 A\nquery A\n"),
           std::string("nodes -3\nrate A 1\nproduce 0 A\nquery A\n"),
           SpecWith("rate B notanumber"),
           SpecWith("rate B 1e999999"),
           SpecWith("produce x A"),
           SpecWith("produce 99999999999999999999 A"),
           SpecWith("selectivity A A huge"),
       }) {
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec);
    EXPECT_FALSE(parsed.ok()) << spec;
  }
}

std::string TwoTypeSpecWith(const std::string& line) {
  return "nodes 2\nrate A 1\nrate B 1\nproduce 0 A\nproduce 1 B\n" + line +
         "\nquery SEQ(A, B) WITHIN 1s\n";
}

TEST(SpecNegativeTest, MalformedPredicateDirectivesAreErrors) {
  for (const std::string& spec : {
           SpecWith("predicate"),                              // no operands
           TwoTypeSpecWith("predicate 0 like A 0 B 1 0.5"),    // unknown kind
           TwoTypeSpecWith("predicate x eq A 0 B 1 0.5"),      // bad query idx
           TwoTypeSpecWith("predicate 0 eq A 0 B 1"),          // missing sel
           TwoTypeSpecWith("predicate 0 eq A 99 B 1 0.5"),     // attr range
           TwoTypeSpecWith("predicate 0 eq A 0 B 1 1.5"),      // sel > 1
           TwoTypeSpecWith("predicate 0 eq A 0 B 1 zero"),     // sel garbage
           // Same type on both sides must be a parse error, not the
           // Predicate constructor's CHECK-abort.
           SpecWith("predicate 0 eq A 0 A 1 0.5"),
           SpecWith("predicate 0 filter A 0 0"),               // modulus 0
           SpecWith("predicate 0 filter A 0 -7"),              // negative mod
           SpecWith("predicate 0 filter A abc 7"),             // attr garbage
           TwoTypeSpecWith("predicate 7 eq A 0 B 1 0.5"),      // query 7 of 1
       }) {
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec);
    EXPECT_FALSE(parsed.ok()) << spec;
  }
  // The well-formed forms of both kinds still parse. (SpecWith's own
  // query is deliberately invalid — SEQ(A, A) reuses a type — so the
  // positive cases need the two-type fixture.)
  for (const std::string& spec : {
           TwoTypeSpecWith("predicate 0 eq A 0 B 1 0.5"),
           TwoTypeSpecWith("predicate 0 filter A 0 7"),
           TwoTypeSpecWith("predicate 0 filter A 0 7 0.25"),
       }) {
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec);
    EXPECT_TRUE(parsed.ok()) << spec << "\n"
                             << (parsed.ok() ? "" : parsed.error().message);
  }
}

TEST(SpecNegativeTest, TooManyTypesIsAnError) {
  std::string spec = "nodes 2\n";
  for (int i = 0; i < TypeRegistry::kMaxTypes + 3; ++i) {
    spec += "rate T" + std::to_string(i) + " 1\n";
  }
  spec += "produce 0 T0\nquery SEQ(T0, T1) WITHIN 1s\n";
  Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("too many"), std::string::npos);
}

// --- query parser --------------------------------------------------------

TEST(ParserNegativeTest, TooManyTypesInQueryIsAnError) {
  TypeRegistry reg;
  std::string q = "SEQ(";
  for (int i = 0; i < TypeRegistry::kMaxTypes + 2; ++i) {
    if (i > 0) q += ", ";
    q += "T" + std::to_string(i);
  }
  q += ")";
  Result<Query> parsed = ParseQuery(q, &reg);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("too many"), std::string::npos);
}

TEST(ParserNegativeTest, DurationOverflowIsAnError) {
  EXPECT_FALSE(ParseDuration("99999999999999999999999ms").ok());
  EXPECT_FALSE(ParseDuration("9999999999999999999h").ok());
  EXPECT_FALSE(ParseDuration("12parsecs").ok());
  ASSERT_TRUE(ParseDuration("2h").ok());
  EXPECT_EQ(ParseDuration("2h").value(), 2u * 60 * 60 * 1000);
}

// --- plan JSON importer --------------------------------------------------

TEST(PlanJsonNegativeTest, MalformedDocumentsAreErrorsNotCrashes) {
  for (const char* json : {
           "",
           "{",
           "{\"bogus",
           "{\"vertices\": [], \"edges\": [], \"sinks\": []",
           "{\"surprise\": []}",
           // Integer overflow in a field.
           "{\"vertices\": [{\"query\": 123456789012345678901234567890, "
           "\"types\": [0], \"node\": 0, \"part\": -1, \"reused\": false}],"
           " \"edges\": [], \"sinks\": []}",
           // Negative query index.
           "{\"vertices\": [{\"query\": -1, \"types\": [0], \"node\": 0, "
           "\"part\": -1, \"reused\": false}], \"edges\": [], "
           "\"sinks\": []}",
           // Node id beyond 32 bits.
           "{\"vertices\": [{\"query\": 0, \"types\": [0], "
           "\"node\": 99999999999, \"part\": -1, \"reused\": false}], "
           "\"edges\": [], \"sinks\": []}",
           // Partition type outside the TypeSet width.
           "{\"vertices\": [{\"query\": 0, \"types\": [0], \"node\": 0, "
           "\"part\": 64, \"reused\": false}], \"edges\": [], "
           "\"sinks\": []}",
           "{\"vertices\": [{\"query\": 0, \"types\": [0], \"node\": 0, "
           "\"part\": -9, \"reused\": false}], \"edges\": [], "
           "\"sinks\": []}",
           // Type id outside the TypeSet width.
           "{\"vertices\": [{\"query\": 0, \"types\": [64], \"node\": 0, "
           "\"part\": -1, \"reused\": false}], \"edges\": [], "
           "\"sinks\": []}",
           // Dangling edge / sink references.
           "{\"vertices\": [{\"query\": 0, \"types\": [0], \"node\": 0, "
           "\"part\": -1, \"reused\": false}], \"edges\": [[0, 3]], "
           "\"sinks\": []}",
           "{\"vertices\": [{\"query\": 0, \"types\": [0], \"node\": 0, "
           "\"part\": -1, \"reused\": false}], \"edges\": [], "
           "\"sinks\": [5]}",
           // Trailing content after the document.
           "{\"vertices\": [], \"edges\": [], \"sinks\": []} extra",
       }) {
    Result<MuseGraph> parsed = PlanFromJson(json);
    EXPECT_FALSE(parsed.ok()) << json;
  }
}

TEST(PlanJsonNegativeTest, MinimalValidDocumentStillParses) {
  Result<MuseGraph> parsed = PlanFromJson(
      "{\"vertices\": [{\"query\": 0, \"types\": [0], \"node\": 0, "
      "\"part\": 0, \"reused\": false}], \"edges\": [], \"sinks\": [0]}");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().num_vertices(), 1);
}

}  // namespace
}  // namespace muse
