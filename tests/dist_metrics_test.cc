#include "src/dist/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/cep/parser.h"
#include "src/core/amuse.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network.h"

namespace muse {
namespace {

TEST(DistributionTest, EmptyIsAllZero) {
  Distribution d = Distribution::Of({});
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.min, 0.0);
  EXPECT_EQ(d.p25, 0.0);
  EXPECT_EQ(d.p50, 0.0);
  EXPECT_EQ(d.p75, 0.0);
  EXPECT_EQ(d.max, 0.0);
}

TEST(DistributionTest, SingleSampleIsDegenerate) {
  Distribution d = Distribution::Of({7.5});
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.min, 7.5);
  EXPECT_EQ(d.p25, 7.5);
  EXPECT_EQ(d.p50, 7.5);
  EXPECT_EQ(d.p75, 7.5);
  EXPECT_EQ(d.max, 7.5);
}

TEST(DistributionTest, TwoSamplesInterpolate) {
  Distribution d = Distribution::Of({10.0, 0.0});
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.min, 0.0);
  EXPECT_EQ(d.max, 10.0);
  EXPECT_DOUBLE_EQ(d.p25, 2.5);
  EXPECT_DOUBLE_EQ(d.p50, 5.0);
  EXPECT_DOUBLE_EQ(d.p75, 7.5);
}

TEST(DistributionTest, QuantilesAreOrdered) {
  std::vector<double> samples;
  uint64_t state = 99;
  for (int i = 0; i < 257; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    samples.push_back(static_cast<double>(state >> 40));
  }
  Distribution d = Distribution::Of(samples);
  EXPECT_EQ(d.count, samples.size());
  EXPECT_LE(d.min, d.p25);
  EXPECT_LE(d.p25, d.p50);
  EXPECT_LE(d.p50, d.p75);
  EXPECT_LE(d.p75, d.max);
}

TEST(DistributionTest, FromHistogramEmptyAndOrdering) {
  obs::Histogram empty(1e-3);
  Distribution zero = Distribution::FromHistogram(empty);
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.max, 0.0);

  obs::Histogram h(1e-3);
  for (int i = 1; i <= 500; ++i) h.Record(i * 0.37);
  Distribution d = Distribution::FromHistogram(h);
  EXPECT_EQ(d.count, 500u);
  EXPECT_LE(d.min, d.p25);
  EXPECT_LE(d.p25, d.p50);
  EXPECT_LE(d.p50, d.p75);
  EXPECT_LE(d.p75, d.max);
  EXPECT_NEAR(d.min, 0.37, 1e-3);
  EXPECT_NEAR(d.max, 185.0, 1e-3);
}

TEST(DistMetricsTest, EmptyTraceReportHasNoNansOrInfs) {
  // Regression for the satellite fix: an empty trace must produce a
  // finite, all-zero report (no division by the zero duration).
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  q.set_window(200);
  Network net(2, 2);
  net.AddProducer(0, 0);
  net.AddProducer(1, 1);
  net.SetRate(0, 5);
  net.SetRate(1, 5);
  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  DistributedSimulator sim(dep, SimOptions{});
  SimReport report = sim.Run({});

  EXPECT_EQ(report.source_events, 0u);
  EXPECT_EQ(report.network_messages, 0u);
  EXPECT_EQ(report.network_message_rate, 0.0);
  EXPECT_TRUE(std::isfinite(report.network_message_rate));
  EXPECT_TRUE(std::isfinite(report.throughput_events_per_s));
  EXPECT_EQ(report.latency_ms.count, 0u);
  EXPECT_TRUE(std::isfinite(report.latency_ms.p50));
  EXPECT_EQ(report.max_peak_partial_matches, 0u);
  ASSERT_NE(report.telemetry, nullptr);
}

}  // namespace
}  // namespace muse
