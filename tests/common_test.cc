#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace muse {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Err("bad thing at ", 7);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "bad thing at 7");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ExponentialMeanRoughlyMatches) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(1);
  Rng child = a.Fork();
  // Different streams: extremely unlikely to collide on many draws.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace muse
