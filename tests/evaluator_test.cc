#include "src/cep/evaluator.h"

#include <gtest/gtest.h>

#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/projection.h"

namespace muse {
namespace {

Event Ev(EventTypeId type, uint64_t seq, int64_t a0 = 0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.time = seq;
  e.attrs = {a0, 0};
  return e;
}

/// Feeds a trace into an evaluator whose parts are primitive singletons.
std::vector<Match> RunPrimitiveParts(ProjectionEvaluator& eval,
                                     const std::vector<Event>& trace) {
  std::vector<Match> out;
  for (const Event& e : trace) {
    for (int i = 0; i < eval.num_parts(); ++i) {
      if (eval.part(i).PrimitiveTypes().Contains(e.type)) {
        eval.OnEvent(i, e, &out);
      }
    }
  }
  eval.Flush(&out);
  return CanonicalMatchSet(std::move(out));
}

TEST(EvaluatorTest, SeqFromPrimitiveParts) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)});
  std::vector<Event> trace = {Ev(0, 1), Ev(0, 2), Ev(1, 3)};
  EXPECT_EQ(RunPrimitiveParts(eval, trace).size(), 2u);
  EXPECT_EQ(eval.stats().matches_emitted, 2u);
}

TEST(EvaluatorTest, CompositePartsCombineConsistently) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  // Parts {C,L} and {L,F} overlap on L: candidates require the same L.
  Query p_cl = Project(q, TypeSet({0, 1}));
  Query p_lf = Project(q, TypeSet({1, 2}));
  ProjectionEvaluator eval(q, {p_cl, p_lf});

  Event c1 = Ev(0, 1);
  Event l2 = Ev(1, 2);
  Event l3 = Ev(1, 3);
  Event f4 = Ev(2, 4);
  std::vector<Match> out;
  Match m_cl;
  ASSERT_TRUE(MergeIfConsistent(Match::Single(c1), Match::Single(l2), &m_cl));
  eval.OnMatch(0, m_cl, &out);
  // Inconsistent pair: L3 in the {L,F} part cannot join with (C1, L2).
  Match m_lf_other;
  ASSERT_TRUE(
      MergeIfConsistent(Match::Single(l3), Match::Single(f4), &m_lf_other));
  eval.OnMatch(1, m_lf_other, &out);
  EXPECT_TRUE(out.empty());
  // Consistent pair completes exactly one match.
  Match m_lf;
  ASSERT_TRUE(
      MergeIfConsistent(Match::Single(l2), Match::Single(f4), &m_lf));
  eval.OnMatch(1, m_lf, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].events.size(), 3u);
}

TEST(EvaluatorTest, WindowPrunesJoins) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 5ms", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)});
  std::vector<Event> trace = {Ev(0, 1), Ev(1, 20)};
  EXPECT_TRUE(RunPrimitiveParts(eval, trace).empty());
}

TEST(EvaluatorTest, EvictionDropsExpiredButKeepsLive) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 10ms", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)});
  std::vector<Match> out;
  // Many As long before the B: they expire; a late A survives.
  for (uint64_t s = 0; s < 600; ++s) eval.OnEvent(0, Ev(0, s), &out);
  eval.OnEvent(0, Ev(0, 1000), &out);
  eval.OnEvent(1, Ev(1, 1005), &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_LT(eval.stats().buffered, 600u);
}

TEST(EvaluatorTest, JoinKeyDetectedAndFiltersInserts) {
  TypeRegistry reg;
  Query q =
      ParseQuery("SEQ(A a, B b, C c) WHERE a.a0 == b.a0 AND b.a0 == c.a0",
                 &reg)
          .value();
  ProjectionEvaluator eval(
      q, {Query::Primitive(0), Query::Primitive(1), Query::Primitive(2)});
  std::vector<Event> trace = {Ev(0, 1, 7), Ev(1, 2, 7), Ev(1, 3, 8),
                              Ev(2, 4, 7), Ev(2, 5, 8)};
  // Only the key-7 chain completes: A1,B2,C4. Key-8 misses an A.
  EXPECT_EQ(RunPrimitiveParts(eval, trace).size(), 1u);
}

TEST(EvaluatorTest, NseqCandidatesHeldUntilFlush) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(2),
                               Query::Primitive(1)});
  ASSERT_TRUE(eval.part_is_anti(2));
  std::vector<Match> out;
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);
  EXPECT_TRUE(out.empty());  // held: an anti match may still arrive
  eval.Flush(&out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(EvaluatorTest, NseqAntiArrivingLateStillSuppresses) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(2),
                               Query::Primitive(1)});
  std::vector<Match> out;
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);     // candidate pending
  eval.OnEvent(2, Ev(1, 2), &out);     // anti B@2 between A@1 and C@3
  eval.Flush(&out);
  EXPECT_TRUE(out.empty());
}

TEST(EvaluatorTest, NseqAntiArrivingEarlySuppressesNewCandidates) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(2),
                               Query::Primitive(1)});
  std::vector<Match> out;
  eval.OnEvent(2, Ev(1, 2), &out);  // anti first
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);
  eval.Flush(&out);
  EXPECT_TRUE(out.empty());
}

TEST(EvaluatorTest, NseqStreamingReleaseBeforeFlush) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  EvaluatorOptions opts;
  opts.eviction_slack_ms = 10;
  ProjectionEvaluator eval(
      q, {Query::Primitive(0), Query::Primitive(2), Query::Primitive(1)},
      opts);
  std::vector<Match> out;
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);  // candidate, release_at = 3 + 10
  EXPECT_TRUE(out.empty());
  eval.OnEvent(0, Ev(0, 20), &out);  // watermark 20 > 13: release eagerly
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(eval.stats().pending_released, 1u);
  EXPECT_EQ(eval.stats().pending, 0u);
  out.clear();
  eval.Flush(&out);  // nothing left; the release must not double-emit
  EXPECT_TRUE(out.empty());
}

TEST(EvaluatorTest, NseqWatermarkReleaseRespectsLateAnti) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  EvaluatorOptions opts;
  opts.eviction_slack_ms = 10;
  ProjectionEvaluator eval(
      q, {Query::Primitive(0), Query::Primitive(2), Query::Primitive(1)},
      opts);
  std::vector<Match> out;
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);  // candidate pending until watermark > 13
  eval.OnEvent(0, Ev(0, 10), &out);  // watermark 10: within the slack
  EXPECT_TRUE(out.empty());
  eval.OnEvent(2, Ev(1, 2), &out);  // anti B@2 arrives late, within contract
  eval.OnEvent(0, Ev(0, 30), &out);  // watermark clears the release point
  eval.Flush(&out);
  EXPECT_TRUE(out.empty());  // candidate was invalidated, never released
  EXPECT_EQ(eval.stats().pending_invalidated, 1u);
  EXPECT_EQ(eval.stats().pending_released, 0u);
}

TEST(EvaluatorTest, FlushTwiceEmitsOnce) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(2),
                               Query::Primitive(1)});
  std::vector<Match> out;
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);
  eval.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  eval.Flush(&out);
  EXPECT_EQ(out.size(), 1u);  // second flush is a no-op
  EXPECT_EQ(eval.stats().matches_emitted, 1u);
}

TEST(EvaluatorTest, FlushRespectsMaxMatchesAfterRelease) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  EvaluatorOptions opts;
  opts.eviction_slack_ms = 5;
  opts.max_matches = 2;
  ProjectionEvaluator eval(
      q, {Query::Primitive(0), Query::Primitive(2), Query::Primitive(1)},
      opts);
  std::vector<Match> out;
  // Three candidates: (A1,C3), (A1,C4), and a late pair still pending at
  // flush time.
  eval.OnEvent(0, Ev(0, 1), &out);
  eval.OnEvent(1, Ev(2, 3), &out);
  eval.OnEvent(1, Ev(2, 4), &out);
  eval.OnEvent(0, Ev(0, 50), &out);  // releases both early candidates
  EXPECT_EQ(out.size(), 2u);
  eval.OnEvent(1, Ev(2, 51), &out);  // two more candidates, pending
  eval.Flush(&out);
  EXPECT_EQ(out.size(), 2u);  // cap spans released + flushed
  EXPECT_EQ(eval.stats().matches_emitted, 2u);
}

TEST(EvaluatorTest, WatermarkDrivenEvictionFreesQuietParts) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 200ms", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)});
  std::vector<Match> out;
  // Part A goes quiet after 100 inserts — far below the 256-insert
  // fallback, so only watermark advancement (driven by part B) can evict.
  for (uint64_t s = 0; s < 100; ++s) eval.OnEvent(0, Ev(0, s), &out);
  EXPECT_EQ(eval.stats().buffered, 100u);
  eval.OnEvent(1, Ev(1, 1000), &out);
  EXPECT_GE(eval.stats().evictions, 100u);
  EXPECT_LE(eval.stats().buffered, 1u);
}

TEST(EvaluatorTest, MaxMatchesGuardStopsEmission) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  EvaluatorOptions opts;
  opts.max_matches = 3;
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)},
                           opts);
  std::vector<Event> trace;
  for (uint64_t s = 0; s < 10; ++s) trace.push_back(Ev(0, s));
  trace.push_back(Ev(1, 100));
  EXPECT_EQ(RunPrimitiveParts(eval, trace).size(), 3u);
}

TEST(EvaluatorTest, StatsTrackInputsAndPeak) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  ProjectionEvaluator eval(q, {Query::Primitive(0), Query::Primitive(1)});
  std::vector<Match> out;
  for (uint64_t s = 0; s < 5; ++s) eval.OnEvent(0, Ev(0, s), &out);
  EXPECT_EQ(eval.stats().inputs, 5u);
  EXPECT_EQ(eval.stats().peak_buffered, 5u);
}

TEST(EvaluatorTest, RejectsIncompleteCover) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B, C)", &reg).value();
  EXPECT_DEATH(
      ProjectionEvaluator(q, {Query::Primitive(0), Query::Primitive(1)}),
      "cover");
}

}  // namespace
}  // namespace muse
