// muse-batch: columnar EventBatch and the flat predicate kernels, plus the
// batch ingestion paths of QueryEngine/ProjectionEvaluator. The contract
// under test everywhere: feeding a trace as batches emits exactly the same
// match multiset as the scalar per-event path — on both the bulk
// (order-insensitive, span <= eviction slack) and the ordered-fallback
// ingestion modes, with NSEQ middles, and with negative attribute values
// (the Euclidean-mod regression).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/cep/batch.h"
#include "src/cep/engine.h"
#include "src/cep/match.h"
#include "src/cep/oracle.h"
#include "src/cep/query.h"
#include "src/common/rng.h"

namespace muse {
namespace {

Event Ev(EventTypeId type, uint64_t seq, uint64_t time, int64_t a0,
         int64_t a1 = 0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.time = time;
  e.attrs = {a0, a1};
  return e;
}

bool SameEvent(const Event& a, const Event& b) {
  return a.type == b.type && a.origin == b.origin && a.seq == b.seq &&
         a.time == b.time && a.attrs == b.attrs;
}

// ---------------------------------------------------------------------------
// Container + kernels
// ---------------------------------------------------------------------------

TEST(EventBatchTest, AppendAtRoundTrip) {
  std::vector<Event> events = {Ev(0, 1, 10, -4, 7), Ev(2, 2, 10, 5, -1),
                               Ev(1, 3, 25, 0, 0)};
  events[1].origin = 3;

  EventBatch b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.SpanMs(), 0u);
  for (const Event& e : events) b.Append(e);
  ASSERT_EQ(b.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(SameEvent(b.At(i), events[i])) << "row " << i;
  }
  EXPECT_EQ(b.SpanMs(), 15u);

  EventBatch from = EventBatch::FromEvents(events);
  ASSERT_EQ(from.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(SameEvent(from.At(i), events[i])) << "row " << i;
  }

  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.SpanMs(), 0u);
}

TEST(EventBatchTest, SelectTypeRowsAndGather) {
  EventBatch b = EventBatch::FromEvents(
      {Ev(0, 0, 0, 10), Ev(1, 1, 1, 11), Ev(0, 2, 2, 12), Ev(2, 3, 3, 13),
       Ev(0, 4, 4, 14)});
  std::vector<uint32_t> rows;
  SelectTypeRows(b, 0, &rows);
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2, 4}));

  std::vector<int64_t> keys;
  GatherAttr(b, 0, rows, &keys);
  EXPECT_EQ(keys, (std::vector<int64_t>{10, 12, 14}));

  rows.clear();
  SelectTypeRows(b, 3, &rows);
  EXPECT_TRUE(rows.empty());
}

TEST(EventBatchTest, FilterRowsModAgreesWithScalarEvalOnNegatives) {
  // The kernel and Predicate::Eval must share one modulo definition; with
  // truncated `%` the rows holding -3 and -9 would (wrongly) survive a
  // modulus-3 filter check against residue 0... they must not, while -6
  // and -12 must.
  std::vector<Event> events;
  for (int64_t v = -12; v <= 12; ++v) {
    events.push_back(Ev(0, static_cast<uint64_t>(v + 12),
                        static_cast<uint64_t>(v + 12), v));
  }
  EventBatch b = EventBatch::FromEvents(events);
  std::vector<uint32_t> rows;
  SelectTypeRows(b, 0, &rows);
  const size_t before = rows.size();
  const size_t dropped = FilterRowsMod(b, /*attr=*/0, /*modulus=*/3, &rows);
  EXPECT_EQ(before, rows.size() + dropped);

  Predicate p = Predicate::Filter(0, 0, 3);
  std::vector<uint32_t> want;
  for (uint32_t i = 0; i < b.size(); ++i) {
    if (p.Eval({b.At(i)})) want.push_back(i);
  }
  EXPECT_EQ(rows, want);
  // Non-vacuity: negative multiples of 3 survive.
  EXPECT_NE(std::find(rows.begin(), rows.end(), 0u), rows.end());  // -12
}

TEST(EventBatchTest, UnaryPassMaskMatchesScalarSingletonGate) {
  // The mask the rt runtime uses for primitive-task forwarding must equal
  // the scalar gate: StructurallyMatches on the singleton projection, which
  // applies unary filters and treats binary equality as vacuous.
  Query target = Query::Primitive(1);
  target.AddPredicate(Predicate::Filter(1, 0, 2));
  target.AddPredicate(Predicate::Filter(1, 1, 3));
  // Binary predicate: vacuous on a single event, and must not zero the mask.
  target.AddPredicate(Predicate::Equality(1, 0, 2, 0, 0.1));

  Rng rng(42);
  std::vector<Event> events;
  for (uint64_t i = 0; i < 64; ++i) {
    events.push_back(Ev(static_cast<EventTypeId>(rng.UniformInt(0, 2)), i, i,
                        rng.UniformInt(-9, 9), rng.UniformInt(-9, 9)));
  }
  EventBatch b = EventBatch::FromEvents(events);
  std::vector<uint8_t> mask;
  ComputeUnaryPassMask(b, /*target_type=*/1, target.predicates(), &mask);
  ASSERT_EQ(mask.size(), b.size());
  int passed = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    const bool want = events[i].type == 1 &&
                      StructurallyMatches(target, Match::Single(events[i]));
    EXPECT_EQ(mask[i] != 0, want) << "row " << i;
    passed += mask[i];
  }
  EXPECT_GT(passed, 0);                            // not all-reject
  EXPECT_LT(passed, static_cast<int>(b.size()));   // not all-accept
}

// ---------------------------------------------------------------------------
// Engine batch ingestion vs. the scalar path
// ---------------------------------------------------------------------------

std::vector<std::string> ScalarKeys(const Query& q,
                                    const std::vector<Event>& trace,
                                    EvaluatorOptions opts = {}) {
  QueryEngine engine(q, opts);
  std::vector<Match> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  std::vector<std::string> keys;
  for (const Match& m : CanonicalMatchSet(std::move(out))) {
    keys.push_back(m.Key());
  }
  return keys;
}

/// Feeds `trace` as batches of `chunk` consecutive events and returns the
/// canonical match keys; `stats_out` receives the main evaluator's stats.
std::vector<std::string> BatchKeys(const Query& q,
                                   const std::vector<Event>& trace,
                                   size_t chunk, EvaluatorOptions opts = {},
                                   EvaluatorStats* stats_out = nullptr) {
  QueryEngine engine(q, opts);
  std::vector<Match> out;
  for (size_t i = 0; i < trace.size(); i += chunk) {
    std::vector<Event> slice(
        trace.begin() + static_cast<long>(i),
        trace.begin() + static_cast<long>(std::min(i + chunk, trace.size())));
    engine.OnBatch(EventBatch::FromEvents(slice), &out);
  }
  engine.Flush(&out);
  if (stats_out != nullptr) *stats_out = engine.stats();
  std::vector<std::string> keys;
  for (const Match& m : CanonicalMatchSet(std::move(out))) {
    keys.push_back(m.Key());
  }
  return keys;
}

std::vector<Event> DenseTrace(int length, int num_types, Rng& rng) {
  std::vector<Event> trace;
  uint64_t time = 0;
  for (int i = 0; i < length; ++i) {
    time += static_cast<uint64_t>(rng.UniformInt(0, 4));
    trace.push_back(Ev(static_cast<EventTypeId>(rng.UniformInt(0, num_types - 1)),
                       static_cast<uint64_t>(i), time, rng.UniformInt(-6, 6),
                       rng.UniformInt(-6, 6)));
  }
  return trace;
}

TEST(EngineBatchTest, BulkModeMatchesScalarWithFilterAndEquality) {
  Query q = Query::Seq({Query::Primitive(0), Query::Primitive(1)});
  q.AddPredicate(Predicate::Filter(0, 0, 2));
  q.AddPredicate(Predicate::Equality(0, 1, 1, 1, 0.2));
  q.set_window(50);

  Rng rng(7);
  std::vector<Event> trace = DenseTrace(200, 3, rng);

  // Unbounded slack: every batch takes the order-insensitive bulk path.
  EvaluatorOptions opts;
  opts.eviction_slack_ms = 1ULL << 40;
  EvaluatorStats stats;
  const auto scalar = ScalarKeys(q, trace, opts);
  const auto batched = BatchKeys(q, trace, /*chunk=*/32, opts, &stats);
  EXPECT_EQ(batched, scalar);
  EXPECT_FALSE(scalar.empty());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batch_bulk, stats.batches);  // all bulk under huge slack
  EXPECT_GT(stats.batch_rows_filtered, 0u);    // the mod-2 filter pre-drops
}

TEST(EngineBatchTest, OrderedFallbackMatchesScalarUnderTightSlack) {
  Query q = Query::Seq({Query::Primitive(0), Query::Primitive(1)});
  q.AddPredicate(Predicate::Filter(1, 0, 3));
  q.set_window(40);

  Rng rng(11);
  std::vector<Event> trace = DenseTrace(200, 3, rng);

  // Zero slack: batch spans exceed it, forcing the row-ordered fallback —
  // which must still agree with the scalar path and still pre-filter.
  EvaluatorStats stats;
  const auto scalar = ScalarKeys(q, trace);
  const auto batched = BatchKeys(q, trace, /*chunk=*/16, {}, &stats);
  EXPECT_EQ(batched, scalar);
  EXPECT_FALSE(scalar.empty());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batch_bulk, 0u);
  EXPECT_GT(stats.batch_rows_filtered, 0u);
}

TEST(EngineBatchTest, NseqBatchesMatchScalarAndOracle) {
  // Middles consume each batch before the positives do; with a bounded
  // batch span <= slack this is match-preserving, and with the span
  // exceeding the slack the engine must fall back to scalar replay. Sweep
  // chunk sizes and slacks to hit both regimes.
  Query q = Query::Nseq(Query::Primitive(0), Query::Primitive(1),
                        Query::Primitive(2));
  q.AddPredicate(Predicate::Filter(0, 0, 2));
  q.set_window(60);

  Rng rng(23);
  std::vector<Event> trace = DenseTrace(160, 3, rng);

  std::vector<std::string> oracle;
  for (const Match& m : CanonicalMatchSet(OracleMatches(q, trace))) {
    oracle.push_back(m.Key());
  }
  ASSERT_FALSE(oracle.empty());

  for (uint64_t slack : {uint64_t{0}, uint64_t{25}, uint64_t{1} << 40}) {
    EvaluatorOptions opts;
    opts.eviction_slack_ms = slack;
    const auto scalar = ScalarKeys(q, trace, opts);
    EXPECT_EQ(scalar, oracle) << "slack " << slack;
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}}) {
      EXPECT_EQ(BatchKeys(q, trace, chunk, opts), scalar)
          << "slack " << slack << " chunk " << chunk;
    }
  }
}

TEST(EngineBatchTest, WorkloadEngineBatchMatchesScalar) {
  Query a = Query::Seq({Query::Primitive(0), Query::Primitive(1)});
  a.AddPredicate(Predicate::Filter(0, 0, 2));
  a.set_window(50);
  Query b = Query::And({Query::Primitive(1), Query::Primitive(2)});
  b.set_window(30);
  const std::vector<Query> workload = {a, b};

  Rng rng(31);
  std::vector<Event> trace = DenseTrace(150, 3, rng);

  WorkloadEngine scalar(workload);
  std::vector<std::vector<Match>> scalar_out(workload.size());
  for (const Event& e : trace) scalar.OnEvent(e, &scalar_out);
  scalar.Flush(&scalar_out);

  WorkloadEngine batched(workload);
  std::vector<std::vector<Match>> batch_out(workload.size());
  for (size_t i = 0; i < trace.size(); i += 20) {
    std::vector<Event> slice(
        trace.begin() + static_cast<long>(i),
        trace.begin() + static_cast<long>(std::min(i + 20, trace.size())));
    batched.OnBatch(EventBatch::FromEvents(slice), &batch_out);
  }
  batched.Flush(&batch_out);

  ASSERT_EQ(scalar_out.size(), batch_out.size());
  for (size_t qi = 0; qi < scalar_out.size(); ++qi) {
    std::vector<std::string> want, got;
    for (const Match& m : CanonicalMatchSet(std::move(scalar_out[qi]))) {
      want.push_back(m.Key());
    }
    for (const Match& m : CanonicalMatchSet(std::move(batch_out[qi]))) {
      got.push_back(m.Key());
    }
    EXPECT_EQ(got, want) << "query " << qi;
    EXPECT_FALSE(want.empty()) << "query " << qi;
  }
}

}  // namespace
}  // namespace muse
