// Mutation coverage for the static verifier: start from a known-valid plan
// (or task wiring), apply one targeted corruption, and assert that
// VerifyPlan/VerifyTasks flags it with the *expected* rule id. Each test is
// one corruption class of ISSUE's catalog; analysis_test.cc covers the
// complementary direction (valid plans verify clean).

#include <gtest/gtest.h>

#include "src/analysis/prove.h"
#include "src/analysis/verify.h"
#include "src/core/multi_query.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

// Four nodes, three types; A has two producers so partitioned covers and
// source coverage have something to get wrong. Type ids: A=0, B=1, C=2.
constexpr char kSpec[] = R"(
nodes 4
rate A 10
rate B 5
rate C 2
produce 0 A
produce 1 A
produce 2 B
produce 3 C
query SEQ(A, B, C) WITHIN 10s
)";

constexpr EventTypeId kA = 0;
constexpr EventTypeId kB = 1;
constexpr EventTypeId kC = 2;

/// An editable copy of a MuseGraph. Tests tweak vertices/edges/sinks and
/// re-assemble with Compose(); a vertex whose projection is emptied is
/// dropped (with its edges and sink entries).
struct GraphParts {
  std::vector<PlanVertex> vertices;
  std::vector<std::pair<int, int>> edges;
  std::vector<int> sinks;

  explicit GraphParts(const MuseGraph& g)
      : vertices(g.vertices()), edges(g.edges()), sinks(g.sinks()) {}

  MuseGraph Compose() const {
    MuseGraph g;
    std::vector<int> remap(vertices.size(), -1);
    for (size_t i = 0; i < vertices.size(); ++i) {
      if (!vertices[i].proj.empty()) remap[i] = g.AddVertex(vertices[i]);
    }
    for (const auto& [from, to] : edges) {
      if (remap[from] >= 0 && remap[to] >= 0) {
        g.AddEdge(remap[from], remap[to]);
      }
    }
    std::vector<int> sink_ids;
    for (int s : sinks) {
      if (remap[s] >= 0) sink_ids.push_back(remap[s]);
    }
    g.SetSinks(std::move(sink_ids));
    return g;
  }
};

class MutationTest : public ::testing::Test {
 protected:
  MutationTest() {
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(kSpec);
    EXPECT_TRUE(parsed.ok()) << parsed.error().message;
    spec_ = std::move(parsed).value();
    catalogs_ =
        std::make_unique<WorkloadCatalogs>(spec_.workload, spec_.network);

    // Hand-built valid plan with a fixed, known shape:
    //   A@0, A@1, B@2 --> {A,B}@2 --> {A,B,C}@3 (sink) <-- C@3
    a0_ = graph_.AddVertex({0, TypeSet::Of(kA), 0, kA, false});
    a1_ = graph_.AddVertex({0, TypeSet::Of(kA), 1, kA, false});
    b2_ = graph_.AddVertex({0, TypeSet::Of(kB), 2, kB, false});
    c3_ = graph_.AddVertex({0, TypeSet::Of(kC), 3, kC, false});
    TypeSet ab = TypeSet::Of(kA).Union(TypeSet::Of(kB));
    ab_ = graph_.AddVertex({0, ab, 2, kNoPartition, false});
    TypeSet abc = ab.Union(TypeSet::Of(kC));
    root_ = graph_.AddVertex({0, abc, 3, kNoPartition, false});
    graph_.AddEdge(a0_, ab_);
    graph_.AddEdge(a1_, ab_);
    graph_.AddEdge(b2_, ab_);
    graph_.AddEdge(ab_, root_);
    graph_.AddEdge(c3_, root_);
    graph_.SetSinks({root_});
  }

  VerifyReport Verify(const MuseGraph& g) {
    VerifyOptions options;
    options.registry = &spec_.registry;
    return VerifyPlan(g, catalogs_->Pointers(), options);
  }

  DeploymentSpec spec_;
  std::unique_ptr<WorkloadCatalogs> catalogs_;
  MuseGraph graph_;
  int a0_ = 0, a1_ = 0, b2_ = 0, c3_ = 0, ab_ = 0, root_ = 0;
};

TEST_F(MutationTest, BaselineIsClean) {
  VerifyReport report = Verify(graph_);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// Corruption class 1: drop an input type (Def. 6 coverage gap).
TEST_F(MutationTest, DroppedInputEdgeIsInputGap) {
  GraphParts parts(graph_);
  std::erase(parts.edges, std::pair<int, int>(c3_, root_));
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kInputGap)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 2: introduce a directed cycle.
TEST_F(MutationTest, BackEdgeIsGraphCycle) {
  MuseGraph g = graph_;
  g.AddEdge(root_, ab_);
  VerifyReport report = Verify(g);
  EXPECT_TRUE(report.HasRule(Rule::kGraphCycle)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 3: unplace the projection hosting the query root.
TEST_F(MutationTest, RemovedRootIsSinkMissing) {
  GraphParts parts(graph_);
  parts.vertices[root_].proj = TypeSet();  // tombstone
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kSinkMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 4: a partitioned sink group that misses a producer
// (Def. 8 completeness violation).
TEST_F(MutationTest, PartitionedRootMissingProducerIsSinkCoverGap) {
  GraphParts parts(graph_);
  // Root partitioned on A at node 0 only; A is also produced at node 1.
  parts.vertices[root_].node = 0;
  parts.vertices[root_].part_type = kA;
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kSinkCoverGap)) << report.ToString();
  EXPECT_FALSE(report.HasRule(Rule::kPartitionInvalid))
      << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 5: stale cost statistics — the catalog's stored r-hat
// no longer matches a bottom-up recomputation from the network.
TEST_F(MutationTest, SkewedRateIsRateDivergence) {
  spec_.network.SetRate(kA, 1000.0);  // catalogs were built against 10.0
  VerifyReport report = Verify(graph_);
  EXPECT_TRUE(report.HasRule(Rule::kRateDivergence)) << report.ToString();
  EXPECT_TRUE(report.ok());  // a warning: structure is still correct
}

// Corruption class 6: primitive placed away from its producer.
TEST_F(MutationTest, MisplacedPrimitiveIsFlaggedWithSourceGap) {
  GraphParts parts(graph_);
  parts.vertices[b2_].node = 3;  // node 3 does not produce B
  parts.vertices[b2_].part_type = kNoPartition;
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kPrimitiveMisplaced))
      << report.ToString();
  EXPECT_TRUE(report.HasRule(Rule::kSourceMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 7: vertex indices escape the workload / network.
TEST_F(MutationTest, OutOfRangeIndicesAreFlagged) {
  GraphParts parts(graph_);
  parts.vertices[ab_].query = 7;
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kQueryRange)) << report.ToString();

  GraphParts parts2(graph_);
  parts2.vertices[ab_].node = 77;
  report = Verify(parts2.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kNodeRange)) << report.ToString();
}

// Corruption class 8: projection that is not part of the query (here: a
// type the query never mentions).
TEST_F(MutationTest, ForeignTypeIsProjectionInvalid) {
  GraphParts parts(graph_);
  parts.vertices[ab_].proj.Insert(static_cast<EventTypeId>(5));
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kProjectionInvalid))
      << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 9: redundant combination input (Def. 15).
TEST_F(MutationTest, RedundantInputIsWarned) {
  MuseGraph g = graph_;
  g.AddEdge(a0_, root_);  // {A} is covered by {A,B} already
  VerifyReport report = Verify(g);
  EXPECT_TRUE(report.HasRule(Rule::kInputRedundant)) << report.ToString();
  EXPECT_TRUE(report.ok());  // warning only
}

// Corruption class 10: input that is not a proper sub-projection.
TEST_F(MutationTest, FullProjectionInputIsNotSubset) {
  MuseGraph g = graph_;
  TypeSet abc = catalogs_->catalog(0).query().PrimitiveTypes();
  int clone = g.AddVertex({0, abc, 2, kNoPartition, false});
  g.AddEdge(ab_, clone);
  g.AddEdge(c3_, clone);
  g.AddEdge(clone, root_);  // {A,B,C} feeding {A,B,C}: not a proper subset
  VerifyReport report = Verify(g);
  EXPECT_TRUE(report.HasRule(Rule::kInputNotSubset)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 11: reused placement nobody provides (§6.2).
TEST_F(MutationTest, UnbackedReuseIsFlagged) {
  GraphParts parts(graph_);
  parts.vertices[ab_].reused = true;
  VerifyReport report = Verify(parts.Compose());
  EXPECT_TRUE(report.HasRule(Rule::kReuseUnbacked)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 12: a vertex that feeds no sink.
TEST_F(MutationTest, DisconnectedVertexIsDeadVertex) {
  MuseGraph g = graph_;
  TypeSet bc = TypeSet::Of(kB).Union(TypeSet::Of(kC));
  int stray = g.AddVertex({0, bc, 1, kNoPartition, false});
  g.AddEdge(b2_, stray);
  g.AddEdge(c3_, stray);
  VerifyReport report = Verify(g);
  EXPECT_TRUE(report.HasRule(Rule::kDeadVertex)) << report.ToString();
  EXPECT_TRUE(report.ok());  // warning only
}

// Corruption class 13: the explicit sink list disagrees with the root
// placements (e.g. a hand-edited plan JSON with a stale list). Sink
// semantics are recomputed from projections elsewhere, but normal-form
// collapsing and DOT export trust the list.
TEST_F(MutationTest, StaleSinkListIsSinkMissing) {
  MuseGraph dropped = graph_;
  dropped.SetSinks({});
  VerifyReport report = Verify(dropped);
  EXPECT_TRUE(report.HasRule(Rule::kSinkMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());

  MuseGraph extra = graph_;
  extra.SetSinks({root_, ab_});  // ab_ is no root projection
  report = Verify(extra);
  EXPECT_TRUE(report.HasRule(Rule::kSinkMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// --- Projection-boundary corruption needs two queries. -------------------

constexpr char kTwoQuerySpec[] = R"(
nodes 4
rate A 10
rate B 5
rate C 2
produce 0 A
produce 1 A
produce 2 B
produce 3 C
query SEQ(A, B, C) WITHIN 10s
query SEQ(A, B, C) WITHIN 20s
)";

// Corruption class 14: cross-query edge between projections evaluated
// under different windows.
TEST(BoundaryMutationTest, CrossQueryWindowMismatch) {
  Result<DeploymentSpec> parsed = ParseDeploymentSpec(kTwoQuerySpec);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  DeploymentSpec spec = std::move(parsed).value();
  WorkloadCatalogs catalogs(spec.workload, spec.network);
  MuseGraph plan = PlanWorkloadAmuse(catalogs).combined;
  VerifyOptions options;
  options.registry = &spec.registry;
  ASSERT_TRUE(VerifyPlan(plan, catalogs.Pointers(), options).clean());

  // Rewire: a q1 vertex feeds a q0 composite vertex. The queries differ
  // only in their window, so any such edge is a boundary violation.
  const TypeSet full = catalogs.catalog(0).query().PrimitiveTypes();
  int from = -1;
  int to = -1;
  for (int vi = 0; vi < plan.num_vertices(); ++vi) {
    const PlanVertex& v = plan.vertex(vi);
    if (v.reused) continue;
    if (v.query == 1 && v.proj == TypeSet::Of(kA)) from = vi;
    if (v.query == 0 && v.proj == full) to = vi;
  }
  ASSERT_GE(from, 0);
  ASSERT_GE(to, 0);
  plan.AddEdge(from, to);
  VerifyReport report = VerifyPlan(plan, catalogs.Pointers(), options);
  EXPECT_TRUE(report.HasRule(Rule::kWindowMismatch)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// --- Deployment wiring corruptions (VerifyTasks). ------------------------

class TaskMutationTest : public MutationTest {
 protected:
  TaskMutationTest()
      : deployment_(graph_, catalogs_->Pointers()),
        tasks_(deployment_.tasks()) {}

  VerifyReport Verify() {
    VerifyOptions options;
    options.registry = &spec_.registry;
    return VerifyTasks(tasks_, 1, spec_.network, options);
  }

  Task& RootTask() {
    for (Task& t : tasks_) {
      if (!t.sink_for.empty()) return t;
    }
    ADD_FAILURE() << "no sink task";
    return tasks_.front();
  }

  Deployment deployment_;
  std::vector<Task> tasks_;
};

TEST_F(TaskMutationTest, CompiledWiringIsClean) {
  VerifyReport report = Verify();
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// Corruption class 15: delete an input channel; the sender still routes
// here, so the channel is one-sided.
TEST_F(TaskMutationTest, DeletedInputChannelIsChannelMissing) {
  Task& root = RootTask();
  ASSERT_FALSE(root.inputs.empty());
  root.inputs.erase(root.inputs.begin());
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule(Rule::kChannelMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 16: an evaluator part with no feeding channel.
TEST_F(TaskMutationTest, StarvedPartIsPartUnwired) {
  Task& root = RootTask();
  // Starve the part expecting {C} by dropping every input that feeds it.
  int c_part = -1;
  for (size_t p = 0; p < root.part_types.size(); ++p) {
    if (root.part_types[p] == TypeSet::Of(kC)) c_part = static_cast<int>(p);
  }
  ASSERT_GE(c_part, 0);
  std::erase_if(root.inputs, [c_part](const std::pair<int, int>& in) {
    return in.second == c_part;
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule(Rule::kPartUnwired)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 17: rewire an input into a part of the wrong type set.
TEST_F(TaskMutationTest, RewiredInputIsPartMismatch) {
  Task& root = RootTask();
  int c_part = -1;
  int other = -1;
  for (size_t p = 0; p < root.part_types.size(); ++p) {
    if (root.part_types[p] == TypeSet::Of(kC)) {
      c_part = static_cast<int>(p);
    } else {
      other = static_cast<int>(p);
    }
  }
  ASSERT_GE(c_part, 0);
  ASSERT_GE(other, 0);
  for (auto& [src, part] : root.inputs) {
    if (part == c_part) part = other;
  }
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule(Rule::kPartMismatch)) << report.ToString();
  EXPECT_TRUE(report.HasRule(Rule::kPartUnwired)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 18: orphan output / no sink task for the query.
TEST_F(TaskMutationTest, DroppedSinkRegistrationIsOrphanAndSinkMissing) {
  Task& root = RootTask();
  root.sink_for.clear();
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule(Rule::kOrphanTask)) << report.ToString();
  EXPECT_TRUE(report.HasRule(Rule::kTaskSinkMissing)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// Corruption class 19: dangling task references.
TEST_F(TaskMutationTest, DanglingReferencesAreTaskRefInvalid) {
  RootTask().inputs.emplace_back(99, 0);
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule(Rule::kTaskRefInvalid)) << report.ToString();
  EXPECT_FALSE(report.ok());
}

// --- Runtime-safety corruptions (ProveDeployment, M90x). -----------------
//
// Same discipline as above, but the corruption lives in the runtime config
// (or the network's declared rates/capacities) rather than the plan: start
// from a config the analyzer certifies, break exactly one safety property,
// and assert that exactly the matching M90x rule fires and no other.

class ProveMutationTest : public MutationTest {
 protected:
  ProveMutationTest() : deployment_(graph_, catalogs_->Pointers()) {}

  /// A production-shaped baseline: finite credit windows comfortably above
  /// the batch size, finite eviction slack, no declared capacities.
  ProveOptions Baseline() const {
    ProveOptions options;
    options.rt.transport.inbox_capacity = 64;
    options.rt.transport.batch_max_frames = 8;
    options.rt.eval.eviction_slack_ms = 2000;
    options.registry = &spec_.registry;
    return options;
  }

  ProveReport Prove(const ProveOptions& options) {
    return ProveDeployment(deployment_, catalogs_->Pointers(), spec_.network,
                           options);
  }

  /// Asserts `rule` fired and that the other four M90x rules did not, so a
  /// mutation cannot pass by tripping a neighbouring check.
  static void ExpectExactlyRule(const ProveReport& proof, Rule rule) {
    static constexpr Rule kFamily[] = {
        Rule::kRtCreditDeadlock, Rule::kStateUnbounded,
        Rule::kStateBudgetExceeded, Rule::kWatermarkStall,
        Rule::kCapacityInfeasible};
    for (Rule member : kFamily) {
      if (member == rule) {
        EXPECT_TRUE(proof.findings.HasRule(member))
            << RuleCode(member) << " expected:\n" << proof.ToString();
      } else {
        EXPECT_FALSE(proof.findings.HasRule(member))
            << RuleCode(member) << " unexpected:\n" << proof.ToString();
      }
    }
  }

  Deployment deployment_;
};

TEST_F(ProveMutationTest, BaselineConfigCertifies) {
  ProveReport proof = Prove(Baseline());
  EXPECT_TRUE(proof.certified()) << proof.ToString();
  EXPECT_TRUE(proof.findings.clean()) << proof.ToString();
}

// Corruption class 20: one node's credit window shrunk below the batch
// size — a sender's all-or-nothing acquisition can never succeed (M900).
TEST_F(ProveMutationTest, UndersizedNodeInboxIsCreditDeadlock) {
  ProveOptions options = Baseline();
  // Node 2 hosts {A,B} and receives remote A events; window 4 < batch 8.
  options.rt.transport.node_inbox_capacity = {0, 0, 4, 0};
  ProveReport proof = Prove(options);
  EXPECT_FALSE(proof.certified());
  ExpectExactlyRule(proof, Rule::kRtCreditDeadlock);
  EXPECT_EQ(proof.nodes[2].credit_window, 4u);
  EXPECT_EQ(proof.nodes[2].min_credit, 8u);
}

// Corruption class 21: eviction slack dropped to "never evict" — pending
// NSEQ state and sink dedup horizons lose their finite bound (M901).
TEST_F(ProveMutationTest, UnboundedSlackIsStateUnbounded) {
  ProveOptions options = Baseline();
  options.rt.eval.eviction_slack_ms = 0;
  ProveReport proof = Prove(options);
  EXPECT_TRUE(proof.certified()) << proof.ToString();  // warning only
  ExpectExactlyRule(proof, Rule::kStateUnbounded);
}

// Corruption class 22: a declared per-node state budget smaller than the
// certified bound (M902; M901 must stay silent — bounds are finite).
TEST_F(ProveMutationTest, TinyStateBudgetIsBudgetExceeded) {
  ProveOptions options = Baseline();
  options.state_budget = 1;
  ProveReport proof = Prove(options);
  EXPECT_FALSE(proof.certified());
  ExpectExactlyRule(proof, Rule::kStateBudgetExceeded);
}

// Corruption class 23: a primitive input that never arrives — composite
// watermarks upstream of it stall forever (M903).
TEST_F(ProveMutationTest, StarvedInputTypeIsWatermarkStall) {
  spec_.network.SetRate(kC, 0.0);  // catalogs were built against 2.0
  ProveReport proof = Prove(Baseline());
  ExpectExactlyRule(proof, Rule::kWatermarkStall);
}

// Corruption class 24: a node whose declared evaluation capacity is below
// the load the deployment routes to it (M904).
TEST_F(ProveMutationTest, OverloadedNodeIsCapacityInfeasible) {
  ProveReport base = Prove(Baseline());
  NodeId loaded = 0;
  for (const NodeCertificate& c : base.nodes) {
    if (c.load_eps > base.nodes[loaded].load_eps) loaded = c.node;
  }
  ASSERT_GT(base.nodes[loaded].load_eps, 0.0);
  spec_.network.SetCapacity(loaded, base.nodes[loaded].load_eps / 2);
  ProveReport proof = Prove(Baseline());
  EXPECT_FALSE(proof.certified());
  ExpectExactlyRule(proof, Rule::kCapacityInfeasible);
}

}  // namespace
}  // namespace muse
