// Unit tests for muse-trace (src/obs/trace.h) and the rate-drift detector
// (src/obs/drift.h): sampling determinism, span buffering, summary and
// Perfetto export, and the stationary-silent / shift-flagged drift contract.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/drift.h"
#include "src/obs/json_value.h"
#include "src/obs/trace.h"

namespace muse::obs {
namespace {

// ---------------------------------------------------------------- sampler

TEST(TraceSamplerTest, DisabledSamplerNeverTraces) {
  TraceSampler off;
  EXPECT_FALSE(off.enabled());
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_EQ(off.TraceIdFor(seq), 0u);
  }
}

TEST(TraceSamplerTest, EveryOneTracesEverythingWithNonZeroIds) {
  TraceSampler all(1);
  ASSERT_TRUE(all.enabled());
  std::set<uint64_t> ids;
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    const uint64_t id = all.TraceIdFor(seq);
    ASSERT_NE(id, 0u) << "seq " << seq;  // 0 means untraced on the wire
    ids.insert(id);
  }
  // Bit-mixed ids: distinct positions must not collide in practice.
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceSamplerTest, SamplingIsDeterministicInSeqOnly) {
  TraceSampler a(64), b(64);
  for (uint64_t seq = 0; seq < 4096; ++seq) {
    EXPECT_EQ(a.TraceIdFor(seq), b.TraceIdFor(seq));
  }
}

TEST(TraceSamplerTest, SampleRateIsRoughlyOneInN) {
  const uint64_t every = 64;
  TraceSampler s(every);
  uint64_t sampled = 0;
  const uint64_t n = 1 << 16;
  for (uint64_t seq = 0; seq < n; ++seq) {
    if (s.TraceIdFor(seq) != 0) ++sampled;
  }
  const double expect = static_cast<double>(n) / static_cast<double>(every);
  EXPECT_GT(static_cast<double>(sampled), expect * 0.5);
  EXPECT_LT(static_cast<double>(sampled), expect * 1.5);
}

// ------------------------------------------------------------ span buffer

TEST(SpanBufferTest, CountsDropsPastCapacityWithoutGrowing)  {
  SpanBuffer buf(4);
  TraceSpan s;
  s.trace_id = 1;
  for (int i = 0; i < 10; ++i) buf.Record(s);
  EXPECT_EQ(buf.spans().size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
}

TEST(TraceLogTest, AbsorbMergesSpansAndDropCounts) {
  SpanBuffer a(2), b(2);
  TraceSpan s;
  s.trace_id = 7;
  for (int i = 0; i < 3; ++i) a.Record(s);  // 1 dropped
  b.Record(s);
  TraceLog log;
  log.Absorb(a);
  log.Absorb(b);
  EXPECT_EQ(log.spans().size(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
}

// --------------------------------------------------------------- summary

TraceSpan MakeSpan(uint64_t id, SpanKind kind, uint64_t start_us,
                   uint64_t dur_us) {
  TraceSpan s;
  s.trace_id = id;
  s.kind = kind;
  s.start_us = start_us;
  s.dur_us = dur_us;
  return s;
}

TEST(TraceLogTest, SummarizeCountsCompletedTracesAndRanksCriticalPaths) {
  TraceLog log;
  // Trace 1: ingest at 100, emit at 600 -> latency 500.
  log.Add(MakeSpan(1, SpanKind::kIngest, 100, 0));
  log.Add(MakeSpan(1, SpanKind::kTransport, 100, 200));
  log.Add(MakeSpan(1, SpanKind::kEvaluate, 300, 250));
  TraceSpan emit1 = MakeSpan(1, SpanKind::kEmit, 600, 0);
  emit1.query = 2;
  log.Add(emit1);
  // Trace 2: ingest at 0, slowest emit at 900 -> latency 900 (two emits;
  // the later one defines the end-to-end latency and query).
  log.Add(MakeSpan(2, SpanKind::kIngest, 0, 0));
  TraceSpan emit2a = MakeSpan(2, SpanKind::kEmit, 400, 0);
  emit2a.query = 0;
  log.Add(emit2a);
  TraceSpan emit2b = MakeSpan(2, SpanKind::kEmit, 900, 0);
  emit2b.query = 1;
  log.Add(emit2b);
  // Trace 3: ingest only — sampled but never produced a match.
  log.Add(MakeSpan(3, SpanKind::kIngest, 50, 0));

  TraceSummary sum = log.Summarize(/*top_k=*/2);
  EXPECT_EQ(sum.traces, 3u);
  EXPECT_EQ(sum.completed, 2u);
  EXPECT_EQ(sum.spans, 8u);
  EXPECT_EQ(sum.stages[static_cast<size_t>(SpanKind::kIngest)].count, 3u);
  EXPECT_EQ(sum.stages[static_cast<size_t>(SpanKind::kEmit)].count, 3u);
  EXPECT_DOUBLE_EQ(
      sum.stages[static_cast<size_t>(SpanKind::kTransport)].max_us, 200.0);
  EXPECT_DOUBLE_EQ(
      sum.stages[static_cast<size_t>(SpanKind::kEvaluate)].total_us, 250.0);

  ASSERT_EQ(sum.slowest.size(), 2u);
  EXPECT_EQ(sum.slowest[0].trace_id, 2u);
  EXPECT_EQ(sum.slowest[0].latency_us, 900u);
  EXPECT_EQ(sum.slowest[0].query, 1);
  EXPECT_EQ(sum.slowest[1].trace_id, 1u);
  EXPECT_EQ(sum.slowest[1].latency_us, 500u);
  EXPECT_EQ(sum.slowest[1].query, 2);
  // The span walk is attached to survivors, ordered by start time.
  ASSERT_EQ(sum.slowest[1].spans.size(), 4u);
  EXPECT_EQ(sum.slowest[1].spans.front().kind, SpanKind::kIngest);
  EXPECT_EQ(sum.slowest[1].spans.back().kind, SpanKind::kEmit);

  // ToString renders without crashing and mentions the slowest trace.
  const std::string text = sum.ToString();
  EXPECT_NE(text.find("slowest completed traces"), std::string::npos);
  EXPECT_NE(text.find("latency 900 us"), std::string::npos);
}

// ---------------------------------------------------------------- export

JsonValue LoadTraceSchema() {
  std::ifstream in(std::string(MUSE_SOURCE_DIR) +
                   "/tools/trace_schema.json");
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<JsonValue> schema = ParseJson(buf.str());
  EXPECT_TRUE(schema.ok()) << schema.error().message;
  return schema.value();
}

TEST(ExportTraceTest, OutputValidatesAgainstCheckedInSchema) {
  TraceLog log;
  log.Add(MakeSpan(11, SpanKind::kIngest, 10, 0));
  TraceSpan hop = MakeSpan(11, SpanKind::kTransport, 10, 30);
  hop.node = 2;
  hop.peer = 1;
  log.Add(hop);
  TraceSpan eval = MakeSpan(11, SpanKind::kEvaluate, 40, 5);
  eval.node = 2;
  eval.task = 4;
  log.Add(eval);

  const std::string json = ExportTrace(log);
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const std::vector<std::string> errors =
      ValidateJsonSchema(doc.value(), LoadTraceSchema());
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(ExportTraceTest, EmptyLogStillConformsToSchema) {
  // minItems 1 on traceEvents: the exporter always names node 0, so even a
  // run that sampled nothing produces a loadable file.
  const std::string json = ExportTrace(TraceLog{});
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const std::vector<std::string> errors =
      ValidateJsonSchema(doc.value(), LoadTraceSchema());
  EXPECT_TRUE(errors.empty()) << errors.front();
}

// ----------------------------------------------------------------- drift

RateSnapshot TypeOnlySnapshot(double eps) {
  RateSnapshot snap;
  snap.type_eps = {eps};
  return snap;
}

/// Feeds `per_window` evenly spaced type-0 events into every window of
/// [from_window, to_window).
void FillWindows(RateDriftDetector* d, uint64_t window_ms, size_t from_window,
                 size_t to_window, uint64_t per_window) {
  for (size_t w = from_window; w < to_window; ++w) {
    for (uint64_t i = 0; i < per_window; ++i) {
      d->ObserveType(0, w * window_ms + i * window_ms / per_window);
    }
  }
}

TEST(RateDriftTest, StationaryTraceScoresExactlyZero) {
  DriftOptions opt;
  RateDriftDetector d(TypeOnlySnapshot(100.0), /*duration_ms=*/10000, opt);
  FillWindows(&d, opt.window_ms, 0, 10, 100);
  const RateDriftDetector::Report r = d.Finish();
  EXPECT_EQ(r.drift_score, 0.0);  // exactly, not approximately
  EXPECT_FALSE(r.drifted);
  ASSERT_EQ(r.streams.size(), 1u);
  EXPECT_NEAR(r.streams[0].observed_eps, 100.0, 1e-9);
}

TEST(RateDriftTest, TwoTimesRateShiftIsFlagged) {
  DriftOptions opt;
  RateDriftDetector d(TypeOnlySnapshot(100.0), /*duration_ms=*/10000, opt);
  FillWindows(&d, opt.window_ms, 0, 5, 100);   // first half on-model
  FillWindows(&d, opt.window_ms, 5, 10, 200);  // then the rate doubles
  const RateDriftDetector::Report r = d.Finish();
  EXPECT_TRUE(r.drifted);
  // Score is the log2 count ratio of the worst drifted window: ~1 for 2x.
  EXPECT_NEAR(r.drift_score, 1.0, 0.05);
}

TEST(RateDriftTest, LowRateStreamsAreNeverJudged) {
  DriftOptions opt;  // min_count_per_window = 20
  RateDriftDetector d(TypeOnlySnapshot(5.0), /*duration_ms=*/10000, opt);
  FillWindows(&d, opt.window_ms, 0, 10, 15);  // 3x expected, but sparse
  const RateDriftDetector::Report r = d.Finish();
  EXPECT_EQ(r.drift_score, 0.0);
  EXPECT_FALSE(r.drifted);
}

TEST(RateDriftTest, SmallWigglesInsideRatioBandStaySilent) {
  DriftOptions opt;
  // Huge rate: +8% is a large z but inside the ratio band -> no drift.
  RateDriftDetector d(TypeOnlySnapshot(10000.0), /*duration_ms=*/4000, opt);
  FillWindows(&d, opt.window_ms, 0, 4, 10800);
  const RateDriftDetector::Report r = d.Finish();
  EXPECT_EQ(r.drift_score, 0.0);
  EXPECT_FALSE(r.drifted);
}

TEST(RateDriftTest, ProjectionStreamsDiagnoseButNeverFlag) {
  RateSnapshot snap;
  RateSnapshot::ProjectionRate p;
  p.label = "SEQ(A,B)";
  p.eps = 100.0;  // r-hat says 100/s, but the run produces nothing
  p.tasks = {7};
  snap.projections.push_back(p);
  DriftOptions opt;
  RateDriftDetector d(snap, /*duration_ms=*/10000, opt);
  const RateDriftDetector::Report r = d.Finish();
  ASSERT_EQ(r.streams.size(), 1u);
  EXPECT_FALSE(r.streams[0].flag_eligible);
  EXPECT_TRUE(r.streams[0].drifted);  // 0 observed vs 100 expected
  // ...but the run-level verdict only listens to type streams.
  EXPECT_FALSE(r.drifted);
  EXPECT_EQ(r.drift_score, 0.0);
}

TEST(RateDriftTest, ObservationsOutsideSnapshotAreIgnored) {
  DriftOptions opt;
  RateDriftDetector d(TypeOnlySnapshot(100.0), /*duration_ms=*/2000, opt);
  d.ObserveType(99, 0);        // unknown type: no stream
  d.ObserveTaskOutput(42, 0);  // unknown task: no stream
  d.ObserveType(0, 5000);      // past the horizon: clamps, doesn't crash
  const RateDriftDetector::Report r = d.Finish();
  ASSERT_EQ(r.streams.size(), 1u);
}

// An empty planner snapshot has no expectation to drift from: whatever
// the detector observes, every report must stay silent (muse-adapt would
// otherwise replan off pure noise).
TEST(RateDriftTest, EmptySnapshotNeverFlagsDrift) {
  DriftOptions opt;
  RateDriftDetector d(RateSnapshot{}, /*duration_ms=*/10000, opt);
  EXPECT_EQ(d.num_streams(), 0u);
  for (uint64_t t = 0; t < 10000; t += 5) {
    d.ObserveType(0, t);
    d.ObserveTaskOutput(3, t);
  }
  for (const RateDriftDetector::Report& r :
       {d.ReportUpTo(0), d.ReportUpTo(5000), d.Finish()}) {
    EXPECT_FALSE(r.drifted);
    EXPECT_EQ(r.drift_score, 0.0);
    EXPECT_TRUE(r.streams.empty());
  }
}

// ReportUpTo judges only windows that already closed: a rate shift inside
// the still-open window must not leak into the mid-run verdict, and the
// final Finish() still sees it.
TEST(RateDriftTest, ReportUpToExcludesTheOpenWindow) {
  DriftOptions opt;
  RateDriftDetector d(TypeOnlySnapshot(100.0), /*duration_ms=*/10000, opt);
  FillWindows(&d, opt.window_ms, 0, 3, 100);  // 3 on-model windows
  FillWindows(&d, opt.window_ms, 3, 4, 300);  // 3x shift in window 3
  // Probe mid-window-3: only windows 0..2 are closed, all on-model.
  const RateDriftDetector::Report mid = d.ReportUpTo(3500);
  EXPECT_FALSE(mid.drifted);
  EXPECT_EQ(mid.drift_score, 0.0);
  // Once window 3 closes, the same probe flags it.
  const RateDriftDetector::Report after = d.ReportUpTo(4000);
  EXPECT_TRUE(after.drifted);
  EXPECT_GT(after.drift_score, 0.0);
}

// valid_from_ms excludes windows that started before it — the migration
// barrier of a freshly installed plan. Events the *previous* detector
// observed must read as neither drift nor starvation here.
TEST(RateDriftTest, ValidFromExcludesPreBarrierWindows) {
  DriftOptions opt;
  opt.valid_from_ms = 5000;
  RateDriftDetector d(TypeOnlySnapshot(100.0), /*duration_ms=*/10000, opt);
  // Nothing at all before the barrier (the old detector's era), on-model
  // after it: pre-barrier all-zero windows must not register as drift.
  FillWindows(&d, opt.window_ms, 5, 10, 100);
  const RateDriftDetector::Report r = d.Finish();
  EXPECT_FALSE(r.drifted);
  EXPECT_EQ(r.drift_score, 0.0);
  ASSERT_EQ(r.streams.size(), 1u);
  EXPECT_NEAR(r.streams[0].observed_eps, 100.0, 1e-9);
  // And a detector without the barrier exclusion *does* flag that trace —
  // the exclusion is what keeps the fresh detector quiet.
  RateDriftDetector no_barrier(TypeOnlySnapshot(100.0), 10000, DriftOptions{});
  FillWindows(&no_barrier, opt.window_ms, 5, 10, 100);
  EXPECT_TRUE(no_barrier.Finish().drifted);
}

// The mid-run probe runs on the driver thread while workers keep calling
// Observe* — exactly the overlap muse-adapt creates when it polls the
// verdict between events. TSan pins that this is race-free and the
// returned reports are internally consistent.
TEST(RateDriftTest, ReportUpToIsSafeUnderConcurrentObservation) {
  DriftOptions opt;
  RateSnapshot snap;
  snap.type_eps = {100.0, 100.0};
  RateSnapshot::ProjectionRate p;
  p.label = "SEQ(A,B)";
  p.eps = 50.0;
  p.tasks = {5};
  snap.projections.push_back(p);
  RateDriftDetector d(snap, /*duration_ms=*/10000, opt);
  std::atomic<bool> stop{false};
  std::vector<std::thread> observers;
  for (int w = 0; w < 3; ++w) {
    observers.emplace_back([&d, &stop, w] {
      uint64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        d.ObserveType(static_cast<uint32_t>(w % 2), t % 10000);
        d.ObserveTaskOutput(5, t % 10000);
        t += 7;
      }
    });
  }
  for (int probe = 0; probe < 200; ++probe) {
    const RateDriftDetector::Report r =
        d.ReportUpTo(static_cast<uint64_t>(probe) * 50);
    ASSERT_EQ(r.streams.size(), 3u);
    if (r.drifted) EXPECT_GT(r.drift_score, 0.0);
  }
  stop.store(true);
  for (std::thread& th : observers) th.join();
  (void)d.Finish();
}

}  // namespace
}  // namespace muse::obs
