#include "src/core/projection.h"

#include <gtest/gtest.h>

#include "src/cep/match.h"
#include "src/cep/parser.h"
#include "src/core/rates.h"

namespace muse {
namespace {

Network UniformNet(int nodes, int types) {
  Network net(nodes, types);
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    for (EventTypeId t = 0; t < static_cast<EventTypeId>(types); ++t) {
      net.AddProducer(n, t);
    }
  }
  return net;
}

TEST(ProjectionTest, PaperExampleProjections) {
  TypeRegistry reg;
  // q1 = SEQ(AND(C,L), F): C=0, L=1, F=2 (Fig. 2a).
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  // p1 = π(q, {C,F}) = SEQ(C, F): deleting L removes the AND (Example 5).
  EXPECT_EQ(Project(q, TypeSet({0, 2})).ToString(&reg), "SEQ(C,F)");
  // p2 = π(q, {L,F}) = SEQ(L, F).
  EXPECT_EQ(Project(q, TypeSet({1, 2})).ToString(&reg), "SEQ(L,F)");
  // p3 = π(q, {C,L}) = AND(C, L): deleting F removes the SEQ root.
  EXPECT_EQ(Project(q, TypeSet({0, 1})).ToString(&reg), "AND(C,L)");
  // Full projection is the query.
  EXPECT_EQ(Project(q, TypeSet({0, 1, 2})).Signature(), q.Signature());
}

TEST(ProjectionTest, SingletonProjection) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Query p = Project(q, TypeSet({1}));
  EXPECT_EQ(p.NumPrimitives(), 1);
  EXPECT_EQ(p.op(p.root()).kind, OpKind::kPrimitive);
}

TEST(ProjectionTest, PredicatesRestrictedToApplicable) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.5));   // C-L
  q.AddPredicate(Predicate::Equality(1, 0, 2, 0, 0.1));   // L-F
  q.set_window(1234);

  Query p = Project(q, TypeSet({0, 1}));
  EXPECT_EQ(p.window(), 1234u);
  ASSERT_EQ(p.predicates().size(), 1u);
  EXPECT_DOUBLE_EQ(p.predicates()[0].selectivity, 0.5);
}

TEST(ProjectionTest, MatchProjectionProperty) {
  // The projection of a match of q onto the projection's types is a match
  // of the projection (§4.2) — structural version.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Query p = Project(q, TypeSet({1, 2}));
  Event c{0, 0, 1, 1, {0, 0}};
  Event l{1, 0, 2, 2, {0, 0}};
  Event f{2, 0, 3, 3, {0, 0}};
  Match full{{c, l, f}};
  ASSERT_TRUE(StructurallyMatches(q, full));
  EXPECT_TRUE(StructurallyMatches(p, full.Restrict(TypeSet({1, 2}))));
}

TEST(ProjectionTest, NseqMiddleRemovedBecomesSeq) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  EXPECT_EQ(Project(q, TypeSet({0, 2})).ToString(&reg), "SEQ(A,C)");
}

TEST(ProjectionTest, NseqClosedProjectionKeepsNseq) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(NSEQ(A, B, C), D)", &reg).value();
  Query p = Project(q, TypeSet({0, 1, 2}));
  EXPECT_EQ(p.ToString(&reg), "NSEQ(A,B,C)");
}

TEST(ProjectionTest, NseqMiddleAloneIsTheAntiPattern) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, SEQ(B, D), C)", &reg).value();
  TypeSet mid = q.NegatedTypes();
  EXPECT_EQ(Project(q, mid).ToString(&reg), "SEQ(B,D)");
}

TEST(ProjectionValiditySetTest, NseqRules) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();  // A=0 B=1 C=2
  EXPECT_TRUE(IsValidProjectionSet(q, TypeSet({0, 2})));     // mid-free
  EXPECT_TRUE(IsValidProjectionSet(q, TypeSet({0, 1, 2})));  // closed
  EXPECT_TRUE(IsValidProjectionSet(q, TypeSet({1})));        // anti pattern
  EXPECT_FALSE(IsValidProjectionSet(q, TypeSet({0, 1})));    // mid + before
  EXPECT_FALSE(IsValidProjectionSet(q, TypeSet({1, 2})));    // mid + after
}

TEST(ProjectionValiditySetTest, MiddleSubPatternsValidButNotMixed) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, SEQ(B, D), C)", &reg).value();
  EventTypeId a = static_cast<EventTypeId>(reg.Find("A"));
  EventTypeId b = static_cast<EventTypeId>(reg.Find("B"));
  // Sub-patterns of the negated middle are valid projections: the anti
  // stream SEQ(B,D) is assembled from them when the middle spans several
  // types (they never appear in positive contexts — EnumerateCombinations'
  // grouping rule bars that).
  EXPECT_TRUE(IsValidProjectionSet(q, TypeSet::Of(b)));
  EXPECT_EQ(Project(q, TypeSet::Of(b)).ToString(&reg), "B");
  EXPECT_TRUE(IsValidProjectionSet(q, q.NegatedTypes()));
  // Mixing part of the middle with context types still breaks closure.
  EXPECT_FALSE(IsValidProjectionSet(q, TypeSet({a, b})));
}

TEST(ProjectionValiditySetTest, BasicRules) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  EXPECT_FALSE(IsValidProjectionSet(q, TypeSet()));          // empty
  EXPECT_FALSE(IsValidProjectionSet(q, TypeSet({0, 1, 5})));  // foreign type
  EXPECT_TRUE(IsValidProjectionSet(q, TypeSet({0})));
}

TEST(AllProjectionSetsTest, CountsForConjunctiveQuery) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(A, B), C)", &reg).value();
  // All 7 non-empty subsets are valid.
  EXPECT_EQ(AllProjectionSets(q).size(), 7u);
}

TEST(AllProjectionSetsTest, SortedBySize) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(A, B), C, D)", &reg).value();
  std::vector<TypeSet> all = AllProjectionSets(q);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].size(), all[i].size());
  }
  EXPECT_EQ(all.back(), q.PrimitiveTypes());
}

TEST(AllProjectionSetsTest, NseqPruned) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  // Valid: {A},{C},{B},{A,C},{A,B,C} = 5 of the 7 subsets.
  EXPECT_EQ(AllProjectionSets(q).size(), 5u);
}

TEST(ProjectionCatalogTest, EntriesConsistent) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.5));
  Network net = UniformNet(3, 3);
  net.SetRate(0, 10);
  net.SetRate(1, 20);
  net.SetRate(2, 2);
  ProjectionCatalog cat(q, net);

  EXPECT_EQ(cat.All().size(), 7u);
  TypeSet cl({0, 1});
  EXPECT_TRUE(cat.Valid(cl));
  EXPECT_DOUBLE_EQ(cat.Rate(cl), 0.5 * 2 * 10 * 20);
  EXPECT_DOUBLE_EQ(cat.Bindings(cl), 9.0);
  EXPECT_EQ(cat.Ast(cl).ToString(&reg), "AND(C,L)");
  EXPECT_EQ(cat.Signature(cl), cat.Ast(cl).Signature());
  EXPECT_FALSE(cat.Valid(TypeSet({5})));
}

TEST(ProjectionCatalogTest, FullSetRateEqualsQueryRate) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = UniformNet(2, 3);
  ProjectionCatalog cat(q, net);
  EXPECT_DOUBLE_EQ(cat.Rate(q.PrimitiveTypes()), QueryOutputRate(q, net));
}

}  // namespace
}  // namespace muse
