#include "src/cep/engine.h"

#include <gtest/gtest.h>

#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/common/rng.h"

namespace muse {
namespace {

std::vector<Match> RunEngine(QueryEngine& engine,
                             const std::vector<Event>& trace) {
  std::vector<Match> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  return CanonicalMatchSet(std::move(out));
}

/// Random trace over `num_types` types with timestamps == seq and small
/// attribute domains (so predicates sometimes hold).
std::vector<Event> RandomTrace(int length, int num_types, Rng& rng) {
  std::vector<Event> trace;
  for (int i = 0; i < length; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.UniformInt(0, num_types - 1));
    e.seq = static_cast<uint64_t>(i);
    e.time = static_cast<uint64_t>(i);
    e.origin = static_cast<NodeId>(rng.UniformInt(0, 2));
    e.attrs = {rng.UniformInt(0, 2), rng.UniformInt(0, 1)};
    trace.push_back(e);
  }
  return trace;
}

void ExpectEngineMatchesOracle(const Query& q, const std::vector<Event>& trace,
                               const std::string& context) {
  QueryEngine engine(q);
  std::vector<Match> got = RunEngine(engine, trace);
  std::vector<Match> want = OracleMatches(q, trace);
  ASSERT_EQ(got.size(), want.size()) << context << " query=" << q.ToString();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].Key(), want[i].Key()) << context;
  }
}

TEST(EngineTest, MatchesOracleOnPaperExample) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    ExpectEngineMatchesOracle(q, RandomTrace(25, 4, rng),
                              "round " + std::to_string(round));
  }
}

/// Property: engine output equals the brute-force semantics on randomized
/// queries and traces (the core soundness/completeness check).
struct OracleCase {
  const char* pattern;
  int num_types;
};

class EngineOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(EngineOracleTest, EngineEqualsOracleOnRandomTraces) {
  TypeRegistry reg;
  Query q = ParseQuery(GetParam().pattern, &reg).value();
  Rng rng(7);
  for (int round = 0; round < 15; ++round) {
    ExpectEngineMatchesOracle(
        q, RandomTrace(22, GetParam().num_types, rng),
        std::string(GetParam().pattern) + " round " + std::to_string(round));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, EngineOracleTest,
    ::testing::Values(
        OracleCase{"SEQ(A, B)", 3}, OracleCase{"AND(A, B)", 3},
        OracleCase{"SEQ(A, B, C)", 4}, OracleCase{"AND(A, B, C)", 4},
        OracleCase{"SEQ(AND(A, B), C)", 4},
        OracleCase{"AND(SEQ(A, B), C)", 4},
        OracleCase{"SEQ(A, AND(B, C), D)", 5},
        OracleCase{"NSEQ(A, B, C)", 4},
        OracleCase{"SEQ(NSEQ(A, B, C), D)", 5},
        OracleCase{"NSEQ(AND(A, D), B, C)", 5},
        OracleCase{"NSEQ(A, SEQ(B, D), C)", 5}));

TEST(EngineTest, WindowRespectedAgainstOracle) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B, C) WITHIN 8ms", &reg).value();
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    ExpectEngineMatchesOracle(q, RandomTrace(25, 3, rng), "windowed");
  }
}

TEST(EngineTest, PredicatesRespectedAgainstOracle) {
  TypeRegistry reg;
  Query q =
      ParseQuery("SEQ(A a, B b, C c) WHERE a.a0 == b.a0 AND b.a0 == c.a0",
                 &reg)
          .value();
  Rng rng(5);
  for (int round = 0; round < 15; ++round) {
    ExpectEngineMatchesOracle(q, RandomTrace(25, 3, rng), "predicated");
  }
}

TEST(EngineTest, CrossPredicateWithoutFullChainAgainstOracle) {
  TypeRegistry reg;
  // Only one predicate: no global join key detectable.
  Query q = ParseQuery("SEQ(A a, B b, C c) WHERE a.a0 == c.a0", &reg).value();
  Rng rng(6);
  for (int round = 0; round < 15; ++round) {
    ExpectEngineMatchesOracle(q, RandomTrace(20, 3, rng), "partial chain");
  }
}

TEST(WorkloadEngineTest, EvaluatesMultipleQueries) {
  TypeRegistry reg;
  std::vector<Query> workload = {ParseQuery("SEQ(A, B)", &reg).value(),
                                 ParseQuery("AND(B, C)", &reg).value()};
  WorkloadEngine engine(workload);
  Rng rng(3);
  std::vector<Event> trace = RandomTrace(30, 3, rng);
  std::vector<std::vector<Match>> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  for (int i = 0; i < engine.num_queries(); ++i) {
    std::vector<Match> got = CanonicalMatchSet(out[i]);
    std::vector<Match> want = OracleMatches(workload[i], trace);
    EXPECT_EQ(got.size(), want.size()) << "query " << i;
  }
}

TEST(EngineTest, IgnoresUnrelatedTypes) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  QueryEngine engine(q);
  std::vector<Match> out;
  Event e;
  e.type = 9;
  e.seq = 1;
  engine.OnEvent(e, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine.stats().inputs, 0u);
}

}  // namespace
}  // namespace muse
