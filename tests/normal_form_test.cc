#include "src/core/normal_form.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

PlanVertex Prim(EventTypeId t, NodeId n) {
  return PlanVertex{0, TypeSet::Of(t), n, static_cast<int>(t), false};
}

PlanVertex Comp(TypeSet proj, NodeId n) {
  return PlanVertex{0, proj, n, kNoPartition, false};
}

TEST(NormalFormTest, CollapsesLocalIntermediate) {
  // Fig. 4: (p,n) feeding (q,n) with no network output collapses; its
  // inputs are redirected to (q,n).
  MuseGraph g;
  int x = g.AddVertex(Prim(0, 1));
  int y = g.AddVertex(Prim(1, 2));
  int z = g.AddVertex(Prim(2, 3));
  int p = g.AddVertex(Comp({0, 1}, 0));
  int q = g.AddVertex(Comp({0, 1, 2}, 0));
  g.AddEdge(x, p);
  g.AddEdge(y, p);
  g.AddEdge(p, q);
  g.AddEdge(z, q);
  g.SetSinks({q});

  MuseGraph c = CollapsedNormalForm(g);
  EXPECT_EQ(c.num_vertices(), 4);  // p removed
  EXPECT_EQ(c.FindVertex(Comp({0, 1}, 0)), -1);
  int cq = c.FindVertex(Comp({0, 1, 2}, 0));
  ASSERT_GE(cq, 0);
  // x and y redirected to q.
  EXPECT_EQ(c.Predecessors(cq).size(), 3u);
  ASSERT_EQ(c.sinks().size(), 1u);
  EXPECT_EQ(c.sinks()[0], cq);
}

TEST(NormalFormTest, KeepsIntermediateWithNetworkOutput) {
  MuseGraph g;
  int x = g.AddVertex(Prim(0, 1));
  int p = g.AddVertex(Comp({0}, 0));  // non-primitive? single type...
  // Use a two-type projection to be unambiguous about "non-primitive".
  g = MuseGraph();
  x = g.AddVertex(Prim(0, 1));
  int y = g.AddVertex(Prim(1, 0));
  p = g.AddVertex(Comp({0, 1}, 0));
  int q1 = g.AddVertex(Comp({0, 1, 2}, 0));  // local successor
  int q2 = g.AddVertex(Comp({0, 1, 2}, 5));  // network successor
  g.AddEdge(x, p);
  g.AddEdge(y, p);
  g.AddEdge(p, q1);
  g.AddEdge(p, q2);

  MuseGraph c = CollapsedNormalForm(g);
  EXPECT_GE(c.FindVertex(Comp({0, 1}, 0)), 0);  // kept
  EXPECT_EQ(c.num_vertices(), 5);
}

TEST(NormalFormTest, PrimitiveVerticesNeverCollapse) {
  MuseGraph g;
  int x = g.AddVertex(Prim(0, 0));
  int q = g.AddVertex(Comp({0, 1}, 0));
  int y = g.AddVertex(Prim(1, 1));
  g.AddEdge(x, q);
  g.AddEdge(y, q);
  MuseGraph c = CollapsedNormalForm(g);
  EXPECT_EQ(c.num_vertices(), 3);
}

TEST(NormalFormTest, CascadingCollapse) {
  // Chain a -> b -> c all at node 0: both intermediates collapse into c.
  MuseGraph g;
  int x = g.AddVertex(Prim(0, 1));
  int a = g.AddVertex(Comp({0, 1}, 0));
  int b = g.AddVertex(Comp({0, 1, 2}, 0));
  int c = g.AddVertex(Comp({0, 1, 2, 3}, 0));
  g.AddEdge(x, a);
  g.AddEdge(a, b);
  g.AddEdge(b, c);

  MuseGraph out = CollapsedNormalForm(g);
  EXPECT_EQ(out.num_vertices(), 2);
  int oc = out.FindVertex(Comp({0, 1, 2, 3}, 0));
  ASSERT_GE(oc, 0);
  EXPECT_EQ(out.Predecessors(oc).size(), 1u);
}

TEST(NormalFormTest, EquivalenceViaCollapsedForm) {
  // Property 5: graphs with the same collapsed form are equivalent.
  MuseGraph g1;
  {
    int x = g1.AddVertex(Prim(0, 1));
    int p = g1.AddVertex(Comp({0, 1}, 0));
    int q = g1.AddVertex(Comp({0, 1, 2}, 0));
    int y = g1.AddVertex(Prim(1, 2));
    g1.AddEdge(x, p);
    g1.AddEdge(y, p);
    g1.AddEdge(p, q);
  }
  MuseGraph g2;
  {
    int x = g2.AddVertex(Prim(0, 1));
    int q = g2.AddVertex(Comp({0, 1, 2}, 0));
    int y = g2.AddVertex(Prim(1, 2));
    g2.AddEdge(x, q);
    g2.AddEdge(y, q);
  }
  EXPECT_TRUE(EquivalentMuseGraphs(g1, g2));

  MuseGraph g3;
  {
    int x = g3.AddVertex(Prim(0, 1));
    int q = g3.AddVertex(Comp({0, 1, 2}, 7));  // different node
    int y = g3.AddVertex(Prim(1, 2));
    g3.AddEdge(x, q);
    g3.AddEdge(y, q);
  }
  EXPECT_FALSE(EquivalentMuseGraphs(g1, g3));
}

TEST(NormalFormTest, IdempotentOnCollapsedGraphs) {
  MuseGraph g;
  int x = g.AddVertex(Prim(0, 1));
  int q = g.AddVertex(Comp({0, 1}, 0));
  g.AddEdge(x, q);
  MuseGraph once = CollapsedNormalForm(g);
  MuseGraph twice = CollapsedNormalForm(once);
  EXPECT_EQ(once.CanonicalString(), twice.CanonicalString());
}

}  // namespace
}  // namespace muse
