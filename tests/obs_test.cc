#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/flow_trace.h"
#include "src/obs/json_value.h"
#include "src/obs/telemetry.h"
#include "src/obs/timeseries.h"

namespace muse::obs {
namespace {

/// Deterministic pseudo-random stream (no <random> to keep values stable
/// across standard libraries).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

 private:
  uint64_t state_;
};

/// Quantization step of `h` at `value` — the tolerance unit of the
/// histogram-vs-exact comparisons.
double WidthAt(const Histogram& h, double value) {
  uint64_t units =
      static_cast<uint64_t>(std::llround(value / h.resolution()));
  return h.BucketWidth(Histogram::BucketIndex(units));
}

/// Exact order statistic at quantile q of sorted samples, as the closed
/// interval [floor-rank, ceil-rank] so rank-convention differences do not
/// flip the test.
std::pair<double, double> ExactRange(const std::vector<double>& sorted,
                                     double q) {
  double idx = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  return {sorted[lo], sorted[hi]};
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h(1e-3);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_TRUE(h.NonEmptyBuckets().empty());
}

TEST(HistogramTest, QuantilesWithinOneBucketWidthOfExact) {
  // The acceptance criterion: HDR quantiles must agree with an exact
  // oracle over the raw samples to within one bucket width at that
  // magnitude.
  Histogram h(1e-3);
  Lcg rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    // Latency-like mixture: a dense low mode plus a long sparse tail
    // spanning several octaves.
    double v = static_cast<double>(rng.Next() % 10000) * 0.01;
    if (rng.Next() % 16 == 0) {
      v += static_cast<double>(rng.Next() % 100000) * 0.05;
    }
    samples.push_back(v);
    h.Record(v);
  }
  ASSERT_EQ(h.Count(), samples.size());
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    auto [lo, hi] = ExactRange(samples, q);
    double got = h.Quantile(q);
    double tol = WidthAt(h, hi) + h.resolution();
    EXPECT_GE(got, lo - tol) << "q=" << q;
    EXPECT_LE(got, hi + tol) << "q=" << q;
  }
  // Min/max are stored in exact units, so they only lose the resolution
  // rounding, never a bucket width.
  EXPECT_NEAR(h.Min(), samples.front(), h.resolution());
  EXPECT_NEAR(h.Max(), samples.back(), h.resolution());
  EXPECT_NEAR(h.Mean(), h.Sum() / static_cast<double>(h.Count()), 1e-9);
}

TEST(HistogramTest, QuantilesMonotoneInQ) {
  Histogram h(1.0);
  Lcg rng(3);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<double>(rng.Next() % 1000000));
  }
  double prev = h.Quantile(0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h.Quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(HistogramTest, BucketBoundariesAreConsistent) {
  // BucketIndex and BucketUpperBound must agree: every value strictly
  // below a bucket's upper bound maps to that bucket or an earlier one,
  // and upper bounds are strictly increasing with positive widths.
  Histogram h(1.0);
  double prev_bound = 0;
  for (int i = 0; i < 200; ++i) {
    double bound = h.BucketUpperBound(i);
    EXPECT_GT(bound, prev_bound) << "bucket " << i;
    EXPECT_GT(h.BucketWidth(i), 0.0) << "bucket " << i;
    prev_bound = bound;
  }
  for (uint64_t units : {0ULL, 1ULL, 15ULL, 16ULL, 17ULL, 31ULL, 32ULL,
                         1000ULL, 123456789ULL}) {
    int idx = Histogram::BucketIndex(units);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LT(static_cast<double>(units), h.BucketUpperBound(idx))
        << "units=" << units;
    if (idx > 0) {
      EXPECT_GE(static_cast<double>(units), h.BucketUpperBound(idx - 1))
          << "units=" << units;
    }
  }
}

TEST(HistogramTest, MergeAddsObservations) {
  Histogram a(1e-3);
  Histogram b(1e-3);
  for (int i = 1; i <= 100; ++i) a.Record(i * 0.5);
  for (int i = 1; i <= 50; ++i) b.Record(i * 3.0);
  Histogram merged(1e-3);
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.Count(), a.Count() + b.Count());
  EXPECT_NEAR(merged.Sum(), a.Sum() + b.Sum(), 1e-6);
  EXPECT_NEAR(merged.Min(), std::min(a.Min(), b.Min()), 1e-3);
  EXPECT_NEAR(merged.Max(), std::max(a.Max(), b.Max()), 1e-3);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram h(1.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t * kPerThread + i) % 977));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (const auto& [idx, count] : h.NonEmptyBuckets()) bucket_total += count;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(GaugeTest, TracksCurrentAndMax) {
  Gauge g;
  g.Set(5);
  g.Set(12);
  g.Set(3);
  EXPECT_EQ(g.Value(), 3.0);
  EXPECT_EQ(g.Max(), 12.0);
  g.Add(20);
  EXPECT_EQ(g.Value(), 23.0);
  EXPECT_EQ(g.Max(), 23.0);
}

TEST(LabelSetTest, CanonicalRegardlessOfInsertionOrder) {
  LabelSet a{{"node", "3"}, {"query", "0"}};
  LabelSet b;
  b.Set("query", "0");
  b.Set("node", "3");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "node=3,query=0");
  LabelSet c{{"node", "4"}, {"query", "0"}};
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
}

TEST(RegistryTest, InstancePointersAreStableAndDistinct) {
  MetricsRegistry reg;
  Counter* c0 = reg.GetCounter("node_inputs_total", {{"node", "0"}});
  Counter* c1 = reg.GetCounter("node_inputs_total", {{"node", "1"}});
  EXPECT_NE(c0, c1);
  EXPECT_EQ(c0, reg.GetCounter("node_inputs_total", {{"node", "0"}}));
  c0->Add(7);
  EXPECT_EQ(reg.GetCounter("node_inputs_total", {{"node", "0"}})->Value(),
            7u);
  EXPECT_EQ(reg.FamilySize("node_inputs_total"), 2u);
  EXPECT_EQ(reg.FamilySize("missing"), 0u);

  reg.GetGauge("depth");
  reg.GetHistogram("lat", {}, 1e-3)->Record(1.5);
  std::vector<MetricsRegistry::Entry> entries = reg.Entries();
  ASSERT_EQ(entries.size(), 4u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].name, entries[i].name);
    if (entries[i - 1].name == entries[i].name) {
      EXPECT_TRUE(entries[i - 1].labels < entries[i].labels);
    }
  }
}

TEST(FlowTracerTest, CreditPacingIsDeterministic) {
  FlowTracer a(0.25, 0);
  FlowTracer b(0.25, 0);
  for (uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(a.SampleSource(seq, 0, 0, seq * 10),
              b.SampleSource(seq, 0, 0, seq * 10));
  }
  EXPECT_EQ(a.sampled(), 25u);
  EXPECT_EQ(a.dropped(), 0u);
  ASSERT_EQ(a.spans().size(), b.spans().size());
  for (size_t i = 0; i < a.spans().size(); ++i) {
    EXPECT_EQ(a.spans()[i].flow_id, b.spans()[i].flow_id);
  }
}

TEST(FlowTracerTest, MaxFlowsCapsSpansAndCountsDrops) {
  FlowTracer t(1.0, 10);
  for (uint64_t seq = 0; seq < 25; ++seq) {
    t.SampleSource(seq, 0, 0, seq);
  }
  EXPECT_EQ(t.sampled(), 10u);
  EXPECT_EQ(t.dropped(), 15u);
  EXPECT_TRUE(t.IsTraced(9));
  EXPECT_FALSE(t.IsTraced(10));
}

TEST(FlowTracerTest, HopsAccumulateAndFirstSinkWins) {
  FlowTracer t(1.0, 0);
  ASSERT_TRUE(t.SampleSource(42, 3, 1, 1000));
  FlowHop hop;
  hop.task = 5;
  hop.src_node = 1;
  hop.dst_node = 2;
  hop.depart_us = 2000;
  hop.network_us = 5000;
  t.AddHop(42, hop);
  t.AddHop(99, hop);  // untraced seq: ignored
  t.Complete(42, 9000, 0);
  t.Complete(42, 12000, 1);  // later sink must not overwrite the first
  ASSERT_EQ(t.spans().size(), 1u);
  const FlowSpan& span = t.spans()[0];
  EXPECT_EQ(span.flow_id, 42u);
  EXPECT_EQ(span.origin, 1u);
  ASSERT_EQ(span.hops.size(), 1u);
  EXPECT_EQ(span.hops[0].dst_node, 2u);
  EXPECT_TRUE(span.completed);
  EXPECT_EQ(span.sink_us, 9000u);
  EXPECT_EQ(span.sink_query, 0);
}

TEST(FlowTracerTest, ZeroRateSamplesNothing) {
  FlowTracer t(0, 100);
  EXPECT_FALSE(t.enabled());
  for (uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_FALSE(t.SampleSource(seq, 0, 0, seq));
  }
  EXPECT_EQ(t.sampled(), 0u);
}

TEST(TimeSeriesTest, AppendAndFind) {
  TimeSeries ts;
  LabelSet n0{{"node", "0"}};
  ts.Append("node_input_rate", n0, 250, 12.5);
  ts.Append("node_input_rate", n0, 500, 13.0);
  ts.Append("node_input_rate", {{"node", "1"}}, 250, 2.0);
  EXPECT_EQ(ts.num_series(), 2u);
  const std::vector<SeriesPoint>* points = ts.Find("node_input_rate", n0);
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), 2u);
  EXPECT_EQ((*points)[0].t_ms, 250u);
  EXPECT_EQ((*points)[1].value, 13.0);
  EXPECT_EQ(ts.Find("node_input_rate", {{"node", "9"}}), nullptr);
}

TEST(JsonTest, ParsesDocumentsAndRejectsMalformed) {
  Result<JsonValue> doc = ParseJson(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -3})");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const JsonValue& v = doc.value();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].string, "x");
  EXPECT_TRUE(v.Get("b")->Get("c")->boolean);
  EXPECT_EQ(v.Get("b")->Get("d")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.Get("e")->number, -3.0);

  EXPECT_FALSE(ParseJson(R"({"a": })").ok());
  EXPECT_FALSE(ParseJson(R"([1, 2)").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonTest, SchemaValidationReportsViolations) {
  JsonValue schema = ParseJson(R"({
    "type": "object",
    "required": ["metrics"],
    "properties": {
      "metrics": {"type": "array", "minItems": 1,
                  "items": {"type": "object", "required": ["name"]}}
    }
  })")
                         .value();

  EXPECT_TRUE(
      ValidateJsonSchema(
          ParseJson(R"({"metrics": [{"name": "x"}]})").value(), schema)
          .empty());

  std::vector<std::string> missing =
      ValidateJsonSchema(ParseJson(R"({})").value(), schema);
  ASSERT_FALSE(missing.empty());
  EXPECT_NE(missing[0].find("metrics"), std::string::npos);

  EXPECT_FALSE(
      ValidateJsonSchema(ParseJson(R"({"metrics": []})").value(), schema)
          .empty());
  EXPECT_FALSE(
      ValidateJsonSchema(ParseJson(R"({"metrics": [{"x": 1}]})").value(),
                         schema)
          .empty());
}

TEST(ExportTest, TelemetryJsonConformsToCheckedInSchema) {
  RunTelemetry telemetry;
  telemetry.registry.GetCounter("node_inputs_total", {{"node", "0"}})
      ->Add(3);
  telemetry.registry.GetGauge("node_partial_matches", {{"node", "0"}})
      ->Set(2);
  telemetry.registry.GetHistogram("latency_ms", {{"query", "0"}}, 1e-3)
      ->Record(7.25);
  telemetry.series.Append("node_input_rate", {{"node", "0"}}, 250, 4.0);
  FlowTracer tracer(1.0, 16);
  tracer.SampleSource(0, 1, 2, 1000);
  FlowHop hop;
  hop.task = 3;
  hop.src_node = 2;
  hop.dst_node = 0;
  hop.depart_us = 1500;
  tracer.AddHop(0, hop);
  tracer.Complete(0, 5000, 0);
  telemetry.flows = std::move(tracer);

  Result<JsonValue> doc = ParseJson(TelemetryToJson(telemetry));
  ASSERT_TRUE(doc.ok()) << doc.error().message;

  std::ifstream in(std::string(MUSE_SOURCE_DIR) +
                   "/tools/metrics_schema.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Result<JsonValue> schema = ParseJson(buf.str());
  ASSERT_TRUE(schema.ok()) << schema.error().message;

  std::vector<std::string> violations =
      ValidateJsonSchema(doc.value(), schema.value());
  for (const std::string& v : violations) ADD_FAILURE() << v;
}

TEST(ExportTest, SeriesCsvHasOneRowPerPoint) {
  TimeSeries ts;
  ts.Append("node_input_rate", {{"node", "0"}}, 250, 4.0);
  ts.Append("node_input_rate", {{"node", "0"}}, 500, 5.0);
  std::string csv = SeriesToCsv(ts);
  EXPECT_NE(csv.find("node_input_rate"), std::string::npos);
  EXPECT_NE(csv.find("node=0"), std::string::npos);
  size_t rows = static_cast<size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, 3u);  // header + 2 points
}

// RFC 4180: fields holding commas, quotes, or line breaks must be quoted,
// with embedded quotes doubled; everything else passes through untouched.
TEST(ExportTest, CsvFieldQuotesPerRfc4180) {
  EXPECT_EQ(CsvField("plain"), "plain");
  EXPECT_EQ(CsvField(""), "");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvField("cr\rbreak"), "\"cr\rbreak\"");
}

// Regression: a label value containing a comma used to split the column
// layout of `muse_metrics --csv`; the row must stay 4 fields wide.
TEST(ExportTest, SeriesCsvEscapesCommasAndQuotesInLabels) {
  TimeSeries ts;
  ts.Append("rate", {{"expr", "SEQ(A,B)"}, {"note", "say \"hi\""}}, 250,
            4.0);
  std::string csv = SeriesToCsv(ts);
  std::istringstream lines(csv);
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  // Count columns respecting quotes: commas inside quoted fields don't
  // split.
  int columns = 1;
  bool in_quotes = false;
  for (char c : row) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == ',' && !in_quotes) ++columns;
  }
  EXPECT_EQ(columns, 4);  // metric,labels,t_ms,value
  EXPECT_NE(row.find("SEQ(A,B)"), std::string::npos);
  EXPECT_NE(row.find("\"\"hi\"\""), std::string::npos);
}

// Values past the histogram's representable range land in the top bucket
// and are counted instead of silently clamped.
TEST(HistogramTest, OverflowIsCountedNotSilent) {
  Histogram h(1.0);
  h.Record(1.0);
  EXPECT_EQ(h.OverflowCount(), 0u);
  h.Record(1e30);  // scaled far beyond uint64 range
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.OverflowCount(), 2u);
  EXPECT_EQ(h.Count(), 3u);  // overflowed samples still count

  Histogram other(1.0);
  other.Record(1e30);
  h.MergeFrom(other);
  EXPECT_EQ(h.OverflowCount(), 3u);  // merge carries the overflow tally
}

TEST(ExportTest, OverflowCounterAppearsInMetricsJson) {
  RunTelemetry telemetry;
  Histogram* lat =
      telemetry.registry.GetHistogram("lat_ms", {{"query", "0"}}, 1.0);
  lat->Record(2.5);
  Result<JsonValue> clean = ParseJson(TelemetryToJson(telemetry));
  ASSERT_TRUE(clean.ok()) << clean.error().message;
  EXPECT_EQ(TelemetryToJson(telemetry).find("lat_ms_overflow_total"),
            std::string::npos);  // omitted while zero

  lat->Record(1e30);
  const std::string json = TelemetryToJson(telemetry);
  EXPECT_NE(json.find("\"lat_ms_overflow_total\""), std::string::npos);
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
}

}  // namespace
}  // namespace muse::obs
