// Robustness of the distributed runtime under unfavorable conditions:
// large network delays (cross-part arrival skew), randomized generated
// queries, and processing-cost effects. The reference is always the
// centralized engine over the same trace.

#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

std::vector<std::vector<Match>> Reference(const std::vector<Query>& workload,
                                          const std::vector<Event>& trace) {
  WorkloadEngine engine(workload);
  std::vector<std::vector<Match>> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  for (auto& m : out) m = CanonicalMatchSet(std::move(m));
  return out;
}

void ExpectParity(const SimReport& report,
                  const std::vector<std::vector<Match>>& want,
                  const std::string& context) {
  ASSERT_EQ(report.matches_per_query.size(), want.size()) << context;
  for (size_t qi = 0; qi < want.size(); ++qi) {
    ASSERT_EQ(report.matches_per_query[qi].size(), want[qi].size())
        << context << " query " << qi;
    for (size_t i = 0; i < want[qi].size(); ++i) {
      EXPECT_EQ(report.matches_per_query[qi][i].Key(), want[qi][i].Key())
          << context << " query " << qi;
    }
  }
}

class DelaySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DelaySweepTest, LargeDelaysDoNotLoseMatches) {
  // Window 400ms; delays up to 200ms create severe cross-part skew. The
  // evaluator's eviction slack must keep buffered matches alive until all
  // in-flight partners have arrived.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(A, B), D) WITHIN 400ms", &reg).value();
  Rng rng(91);
  NetworkGenOptions nopts;
  nopts.num_nodes = 4;
  nopts.num_types = 3;
  nopts.event_node_ratio = 0.7;
  nopts.max_rate = 8;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 4000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());

  SimOptions opts;
  opts.network_delay_ms = static_cast<uint64_t>(GetParam());
  DistributedSimulator sim(dep, opts);
  SimReport report = sim.Run(trace);
  ExpectParity(report, Reference({q}, trace),
               "delay " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Delays, DelaySweepTest,
                         ::testing::Values(0, 1, 20, 100, 200));

class RandomQueryDistTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryDistTest, GeneratedQueriesExecuteCorrectly) {
  // End-to-end property: random generated queries (including NSEQ), random
  // networks, distributed execution == centralized reference.
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  NetworkGenOptions nopts;
  nopts.num_nodes = 4;
  nopts.num_types = 4;
  nopts.event_node_ratio = 0.7;
  nopts.max_rate = 6;
  Network net = MakeRandomNetwork(nopts, rng);
  SelectivityModel model(4, 0.05, 0.2, rng);
  std::vector<EventTypeId> types = {0, 1, 2};
  Query q = GenerateQuery(types, model, /*window_ms=*/250,
                          /*nseq_probability=*/0.3, rng);

  TraceOptions topts;
  topts.duration_ms = 3000;
  topts.attr_cardinality[0] = 3;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  DistributedSimulator sim(dep, SimOptions{});
  SimReport report = sim.Run(trace);
  ExpectParity(report, Reference({q}, trace), "query " + q.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryDistTest,
                         ::testing::Range(0, 12));

TEST(ProcessingModelTest, CentralizedPlanCongestsMore) {
  // The per-input cost grows with maintained partial matches, so the plan
  // funneling everything through one node shows a higher peak load.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(A, B), D) WITHIN 300ms", &reg).value();
  Rng rng(7);
  NetworkGenOptions nopts;
  nopts.num_nodes = 5;
  nopts.num_types = 3;
  nopts.event_node_ratio = 0.8;
  nopts.max_rate = 10;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 8000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  MuseGraph central = BuildCentralizedPlan(catalogs.Pointers(), 0);

  Deployment damuse(amuse.combined, catalogs.Pointers());
  Deployment dcentral(central, catalogs.Pointers());
  SimOptions opts;
  opts.collect_matches = false;
  SimReport ra = DistributedSimulator(damuse, opts).Run(trace);
  SimReport rc = DistributedSimulator(dcentral, opts).Run(trace);

  EXPECT_LE(ra.network_messages, rc.network_messages);
  // The distributed plan's bottleneck node maintains no more partial
  // matches than the centralized node (usually far fewer).
  EXPECT_LE(ra.max_peak_partial_matches,
            rc.max_peak_partial_matches * 1.1 + 10);
}

TEST(ProcessingModelTest, ThroughputScalesWithProcCost) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 200ms", &reg).value();
  Rng rng(8);
  NetworkGenOptions nopts;
  nopts.num_nodes = 3;
  nopts.num_types = 2;
  nopts.max_rate = 8;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 4000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());

  SimOptions cheap;
  cheap.proc_base_us = 1;
  SimOptions expensive;
  expensive.proc_base_us = 100;
  SimReport r1 = DistributedSimulator(dep, cheap).Run(trace);
  SimReport r2 = DistributedSimulator(dep, expensive).Run(trace);
  EXPECT_GT(r1.throughput_events_per_s, r2.throughput_events_per_s);
  // Same matches regardless of the cost model.
  EXPECT_EQ(r1.matches_per_query[0].size(), r2.matches_per_query[0].size());
}

}  // namespace
}  // namespace muse
