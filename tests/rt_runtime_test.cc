#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/analysis/prove.h"
#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/rt/cluster.h"
#include "src/rt/net_transport.h"
#include "src/rt/runtime.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

/// Shared fixture: a small random network with a two-operator query, its
/// aMuSE deployment, and the single-node engine reference of the trace.
struct Env {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  WorkloadPlan plan;
  std::unique_ptr<Deployment> dep;

  explicit Env(uint64_t seed) : net(1, 1) {
    Query q = ParseQuery("SEQ(AND(A, B), D)", &reg).value();
    q.set_window(300);
    workload.push_back(std::move(q));
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = 3;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 8;
    net = MakeRandomNetwork(nopts, rng);
    TraceOptions topts;
    topts.duration_ms = 4000;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(net, topts, rng);
    catalogs = std::make_unique<WorkloadCatalogs>(workload, net);
    plan = PlanWorkloadAmuse(*catalogs);
    dep = std::make_unique<Deployment>(plan.combined, catalogs->Pointers());
  }

  std::vector<std::string> ReferenceKeys() const {
    QueryEngine engine(workload[0]);
    std::vector<Match> out;
    for (const Event& e : trace) engine.OnEvent(e, &out);
    engine.Flush(&out);
    std::vector<std::string> keys;
    for (const Match& m : CanonicalMatchSet(std::move(out))) {
      keys.push_back(m.Key());
    }
    return keys;
  }
};

std::vector<std::string> Keys(const std::vector<Match>& matches) {
  std::vector<std::string> keys;
  for (const Match& m : matches) keys.push_back(m.Key());
  return keys;
}

TEST(RtRuntimeTest, MatchesEngineReference) {
  Env env(70);
  rt::RtReport report = rt::RtRuntime(*env.dep, {}).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_EQ(report.source_events, env.trace.size());
  EXPECT_GT(report.injected_events, 0u);
  EXPECT_GT(report.inputs_processed, 0u);
  EXPECT_GT(report.events_per_sec, 0.0);
  ASSERT_NE(report.telemetry, nullptr);
  EXPECT_GE(report.telemetry->registry.FamilySize("rt_inbox_depth"), 4u);
}

// A near-minimal credit window forces backpressure onto the source driver;
// flow control must slow injection down, never corrupt results.
TEST(RtRuntimeTest, TinyInboxBackpressureStillCorrect) {
  Env env(71);
  rt::RtOptions options;
  options.transport.inbox_capacity = 2;
  options.transport.batch_max_frames = 1;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_GT(report.backpressure_stalls, 0u);
}

TEST(RtRuntimeTest, DeliveryDelayDoesNotChangeMatches) {
  Env env(72);
  rt::RtOptions options;
  options.transport.delivery_delay_us = 200;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
}

TEST(RtRuntimeTest, ThreadCountSweepIsDeterministic) {
  Env env(73);
  const std::vector<std::string> want = env.ReferenceKeys();
  for (int threads : {1, 2, 3, 0}) {  // 0 = one thread per node
    rt::RtOptions options;
    options.num_threads = threads;
    rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
    EXPECT_EQ(Keys(report.matches_per_query[0]), want)
        << "num_threads=" << threads;
  }
}

TEST(RtRuntimeTest, CrashRecoveryPreservesExactlyOnceResults) {
  Env env(74);
  const std::vector<std::string> want = env.ReferenceKeys();
  for (NodeId victim = 0; victim < 4; ++victim) {
    rt::RtOptions options;
    options.failures = {{victim, 2000}};
    rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
    EXPECT_EQ(Keys(report.matches_per_query[0]), want)
        << "victim node " << victim;
    EXPECT_EQ(report.crashes, 1u);
  }
}

TEST(RtRuntimeTest, RepeatedAndCascadingCrashes) {
  Env env(75);
  rt::RtOptions options;
  options.failures = {{1, 1000}, {1, 2000}, {0, 2500}, {2, 3000}};
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_EQ(report.crashes, 4u);
}

TEST(RtRuntimeTest, PoissonPacedSourceStillCorrect) {
  Env env(76);
  rt::RtOptions options;
  // Fast enough to keep the test short, slow enough that pacing actually
  // sleeps between arrivals.
  options.source_rate_eps = 50'000;
  options.source_seed = 42;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_GT(report.wall_seconds, 0.0);
}

// Closes the loop between the static analyzer and the live runtime: a
// config muse-prove rejects with M900 (per-node credit windows below the
// batch size) really does wedge — the watchdog fires and the run aborts —
// while the analyzer's suggested minimum credit makes the identical trace
// run to completion with the reference matches.
TEST(RtRuntimeTest, ProvedCreditDeadlockWedgesAndMinCreditClearsIt) {
  Env env(78);
  rt::RtOptions options;
  options.transport.inbox_capacity = 64;
  options.transport.batch_max_frames = 8;
  options.transport.node_inbox_capacity = {2, 2, 2, 2};  // < batch: M900

  ProveOptions prove;
  prove.rt = options;
  prove.registry = &env.reg;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.net, prove);
  ASSERT_TRUE(proof.findings.HasRule(Rule::kRtCreditDeadlock))
      << proof.ToString();
  size_t min_credit = 0;
  for (const NodeCertificate& c : proof.nodes) {
    min_credit = std::max(min_credit, c.min_credit);
  }
  ASSERT_EQ(min_credit, 8u);

  // Without the fix, the first full batch can never acquire credits; the
  // watchdog is the only reason this terminates.
  options.transport.wedge_timeout_ms = 400;
  rt::RtReport bad = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_TRUE(bad.wedged) << bad.Summary();

  // Raising every window to the suggested minimum clears M900 statically
  // and the run dynamically: same trace, full reference result, no wedge.
  options.transport.node_inbox_capacity.assign(4, min_credit);
  options.transport.wedge_timeout_ms = 5000;
  prove.rt = options;
  ProveReport fixed = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.net, prove);
  EXPECT_FALSE(fixed.findings.HasRule(Rule::kRtCreditDeadlock))
      << fixed.ToString();
  rt::RtReport good = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_FALSE(good.wedged) << good.Summary();
  EXPECT_EQ(Keys(good.matches_per_query[0]), env.ReferenceKeys());
}

// Dense sampling (every source event traced) is pure observation: the
// match set still equals the reference, and the drained trace log carries
// spans for each stage of the pipeline plus completed end-to-end traces.
TEST(RtRuntimeTest, TracingProducesSpansWithoutChangingMatches) {
  Env env(79);
  const std::vector<std::string> want = env.ReferenceKeys();
  ASSERT_FALSE(want.empty());
  rt::RtOptions options;
  options.trace_sample_every = 1;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), want);
  ASSERT_NE(report.trace_log, nullptr);
  const obs::TraceSummary sum = report.trace_log->Summarize();
  EXPECT_EQ(sum.traces, env.trace.size());  // every source event sampled
  EXPECT_GT(sum.completed, 0u);
  using K = obs::SpanKind;
  EXPECT_EQ(sum.stages[static_cast<size_t>(K::kIngest)].count,
            env.trace.size());
  EXPECT_GT(sum.stages[static_cast<size_t>(K::kTransport)].count, 0u);
  EXPECT_GT(sum.stages[static_cast<size_t>(K::kInboxWait)].count, 0u);
  EXPECT_GT(sum.stages[static_cast<size_t>(K::kEvaluate)].count, 0u);
  EXPECT_GT(sum.stages[static_cast<size_t>(K::kEmit)].count, 0u);
  // Spans land in telemetry counters too.
  const obs::Counter* spans = report.telemetry->registry.GetCounter(
      "rt_trace_spans_total", obs::LabelSet{});
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->Value(), report.trace_log->spans().size());
}

TEST(RtRuntimeTest, TracingOffLeavesNoTraceLog) {
  Env env(79);
  rt::RtReport report = rt::RtRuntime(*env.dep, {}).Run(env.trace);
  EXPECT_EQ(report.trace_log, nullptr);
}

// End-to-end drift contract: a runtime fed the exact trace the planner
// snapshot was derived from reports drift_score == 0, while the same trace
// with its second half time-compressed 2x (doubling the arrival rate)
// raises the drifted flag.
TEST(RtRuntimeTest, DriftDetectorSilentStationaryFlagsRateShift) {
  // Hand-built network with explicit high rates: the drift detector's
  // min-count gate needs roughly >= 36 events expected per 1 s window to
  // call a 2x shift at z >= 6, and MakeRandomNetwork's Zipf rates are
  // usually far below that.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  q.set_window(200);
  std::vector<Query> workload;
  workload.push_back(std::move(q));
  Network net(4, 2);
  for (NodeId n = 0; n < 4; ++n) {
    net.AddProducer(n, 0);
    net.AddProducer(n, 1);
  }
  net.SetRate(0, 100.0);  // global events/s; z = 100/sqrt(100) = 10 at 2x
  net.SetRate(1, 100.0);
  Rng rng(80);
  TraceOptions topts;
  topts.duration_ms = 10000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);
  WorkloadCatalogs catalogs(workload, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  ASSERT_FALSE(dep.planner_rates().empty());

  rt::RtOptions options;
  options.collect_matches = false;
  rt::RtReport stationary = rt::RtRuntime(dep, options).Run(trace);
  EXPECT_EQ(stationary.drift_score, 0.0);
  EXPECT_FALSE(stationary.drifted);

  // Compress the second half of the timeline: arrivals after 5000 ms land
  // twice as fast, so observed per-window counts double mid-run.
  std::vector<Event> shifted = trace;
  for (Event& e : shifted) {
    if (e.time > 5000) e.time = 5000 + (e.time - 5000) / 2;
  }
  rt::RtReport drifted = rt::RtRuntime(dep, options).Run(shifted);
  EXPECT_TRUE(drifted.drifted);
  EXPECT_GT(drifted.drift_score, 0.5);
}

TEST(RtRuntimeTest, CollectMatchesOffKeepsCountsInTelemetry) {
  Env env(77);
  rt::RtOptions options;
  options.collect_matches = false;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_TRUE(report.matches_per_query[0].empty());
  const obs::Counter* total = report.telemetry->registry.GetCounter(
      "rt_matches_total", obs::LabelSet{{"query", "0"}});
  EXPECT_EQ(total->Value(), env.ReferenceKeys().size());
}

// --- muse-net: cluster crash detection ---------------------------------

// SIGKILL a muse_node daemon mid-trace. The coordinator must detect the
// dead peer within the wedge timeout, mark the report wedged, and unwind
// long before the paced source would have finished — never hang.
TEST(RtRuntimeTest, KilledDaemonWedgesWithinTimeout) {
  Env env(90);
  // The cluster run recompiles the deployment from the round-tripped
  // spec + plan JSON on every side, the same contract real daemons get.
  DeploymentSpec ds;
  ds.registry = env.reg;
  ds.network = env.net;
  ds.workload = env.workload;
  const std::string spec_text = WriteDeploymentSpec(ds);
  Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  WorkloadCatalogs catalogs(parsed.value().workload, parsed.value().network);
  const MuseGraph plan = PlanWorkloadAmuse(catalogs).combined;
  Deployment dep(plan, catalogs.Pointers());

  rt::RtOptions options;
  options.transport_kind = rt::RtTransportKind::kCluster;
  options.processes = 2;
  options.muse_node_bin = rt::FindMuseNodeBinary(MUSE_NODE_BIN);
  ASSERT_FALSE(options.muse_node_bin.empty());
  options.cluster_spec_text = spec_text;
  options.cluster_plan_json = PlanToJson(plan);
  options.transport.wedge_timeout_ms = 1000;
  // Pace the source so a full run would take ~8 wall seconds — the only
  // way this test finishes fast is the crash detector firing.
  options.source_rate_eps =
      static_cast<double>(env.trace.size()) / 8.0;
  options.kill_schedule = {{1, 250}};

  const auto start = std::chrono::steady_clock::now();
  rt::RtReport report = rt::RtRuntime(dep, options).Run(env.trace);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(report.wedged) << report.Summary();
  // kill at 0.25s + wedge timeout 1s + teardown; anywhere near the 8s
  // full-run pace means detection failed.
  EXPECT_LT(elapsed, 6.0);
}

// The same cluster config without the kill runs clean end to end — the
// crash detector only fires for real deaths.
TEST(RtRuntimeTest, ClusterWithoutKillsRunsClean) {
  Env env(90);
  DeploymentSpec ds;
  ds.registry = env.reg;
  ds.network = env.net;
  ds.workload = env.workload;
  const std::string spec_text = WriteDeploymentSpec(ds);
  Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  WorkloadCatalogs catalogs(parsed.value().workload, parsed.value().network);
  const MuseGraph plan = PlanWorkloadAmuse(catalogs).combined;
  Deployment dep(plan, catalogs.Pointers());

  rt::RtOptions options;
  options.transport_kind = rt::RtTransportKind::kCluster;
  options.processes = 2;
  options.muse_node_bin = rt::FindMuseNodeBinary(MUSE_NODE_BIN);
  options.cluster_spec_text = spec_text;
  options.cluster_plan_json = PlanToJson(plan);
  options.transport.wedge_timeout_ms = 20000;
  rt::RtReport report = rt::RtRuntime(dep, options).Run(env.trace);
  EXPECT_FALSE(report.wedged) << report.Summary();
  EXPECT_GT(report.inputs_processed, 0u);
}

// A structurally valid kCredit/kControl/kPacket frame can still name a
// node outside the deployment (DecodeNetFrame checks structure only).
// The transport must treat it like any other protocol error — stream
// error counted, connection dead, run wedged — never index shares_ or
// an inbox out of bounds, and never CHECK-abort the process.
TEST(RtRuntimeTest, OutOfRangeWireDstWedgesInsteadOfCorrupting) {
  for (int kind = 0; kind < 3; ++kind) {
    obs::MetricsRegistry registry;
    rt::RtTransportOptions topts;
    topts.inbox_capacity = 64;
    auto transport = rt::NetTransport::Loopback(/*num_nodes=*/2,
                                                /*num_shards=*/1, topts,
                                                &registry);
    ASSERT_TRUE(transport.ok()) << transport.error().message;
    rt::NetTransport& net = *transport.value();
    const uint32_t bad_dst = 1000;
    std::string frame;
    if (kind == 0) {
      rt::AppendCreditFrame(bad_dst, 1, &frame);
    } else if (kind == 1) {
      rt::AppendControlFrame(bad_dst, rt::ControlKind::kCrash, &frame);
    } else {
      rt::AppendPacketFrame(/*src=*/0, bad_dst, /*deliver_at_us=*/0,
                            /*frames=*/1, /*inner=*/"", &frame);
    }
    ASSERT_TRUE(net.SendFrameToPeer(0, frame));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!net.wedged() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(net.wedged()) << "frame kind index " << kind;
    EXPECT_GE(registry.GetCounter("rt_wire_stream_errors_total")->Value(),
              1u);
    net.Shutdown();
  }
}

}  // namespace
}  // namespace muse
