#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/analysis/prove.h"
#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/multi_query.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/rt/runtime.h"

namespace muse {
namespace {

/// Shared fixture: a small random network with a two-operator query, its
/// aMuSE deployment, and the single-node engine reference of the trace.
struct Env {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  WorkloadPlan plan;
  std::unique_ptr<Deployment> dep;

  explicit Env(uint64_t seed) : net(1, 1) {
    Query q = ParseQuery("SEQ(AND(A, B), D)", &reg).value();
    q.set_window(300);
    workload.push_back(std::move(q));
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = 3;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 8;
    net = MakeRandomNetwork(nopts, rng);
    TraceOptions topts;
    topts.duration_ms = 4000;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(net, topts, rng);
    catalogs = std::make_unique<WorkloadCatalogs>(workload, net);
    plan = PlanWorkloadAmuse(*catalogs);
    dep = std::make_unique<Deployment>(plan.combined, catalogs->Pointers());
  }

  std::vector<std::string> ReferenceKeys() const {
    QueryEngine engine(workload[0]);
    std::vector<Match> out;
    for (const Event& e : trace) engine.OnEvent(e, &out);
    engine.Flush(&out);
    std::vector<std::string> keys;
    for (const Match& m : CanonicalMatchSet(std::move(out))) {
      keys.push_back(m.Key());
    }
    return keys;
  }
};

std::vector<std::string> Keys(const std::vector<Match>& matches) {
  std::vector<std::string> keys;
  for (const Match& m : matches) keys.push_back(m.Key());
  return keys;
}

TEST(RtRuntimeTest, MatchesEngineReference) {
  Env env(70);
  rt::RtReport report = rt::RtRuntime(*env.dep, {}).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_EQ(report.source_events, env.trace.size());
  EXPECT_GT(report.injected_events, 0u);
  EXPECT_GT(report.inputs_processed, 0u);
  EXPECT_GT(report.events_per_sec, 0.0);
  ASSERT_NE(report.telemetry, nullptr);
  EXPECT_GE(report.telemetry->registry.FamilySize("rt_inbox_depth"), 4u);
}

// A near-minimal credit window forces backpressure onto the source driver;
// flow control must slow injection down, never corrupt results.
TEST(RtRuntimeTest, TinyInboxBackpressureStillCorrect) {
  Env env(71);
  rt::RtOptions options;
  options.transport.inbox_capacity = 2;
  options.transport.batch_max_frames = 1;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_GT(report.backpressure_stalls, 0u);
}

TEST(RtRuntimeTest, DeliveryDelayDoesNotChangeMatches) {
  Env env(72);
  rt::RtOptions options;
  options.transport.delivery_delay_us = 200;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
}

TEST(RtRuntimeTest, ThreadCountSweepIsDeterministic) {
  Env env(73);
  const std::vector<std::string> want = env.ReferenceKeys();
  for (int threads : {1, 2, 3, 0}) {  // 0 = one thread per node
    rt::RtOptions options;
    options.num_threads = threads;
    rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
    EXPECT_EQ(Keys(report.matches_per_query[0]), want)
        << "num_threads=" << threads;
  }
}

TEST(RtRuntimeTest, CrashRecoveryPreservesExactlyOnceResults) {
  Env env(74);
  const std::vector<std::string> want = env.ReferenceKeys();
  for (NodeId victim = 0; victim < 4; ++victim) {
    rt::RtOptions options;
    options.failures = {{victim, 2000}};
    rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
    EXPECT_EQ(Keys(report.matches_per_query[0]), want)
        << "victim node " << victim;
    EXPECT_EQ(report.crashes, 1u);
  }
}

TEST(RtRuntimeTest, RepeatedAndCascadingCrashes) {
  Env env(75);
  rt::RtOptions options;
  options.failures = {{1, 1000}, {1, 2000}, {0, 2500}, {2, 3000}};
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_EQ(report.crashes, 4u);
}

TEST(RtRuntimeTest, PoissonPacedSourceStillCorrect) {
  Env env(76);
  rt::RtOptions options;
  // Fast enough to keep the test short, slow enough that pacing actually
  // sleeps between arrivals.
  options.source_rate_eps = 50'000;
  options.source_seed = 42;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_EQ(Keys(report.matches_per_query[0]), env.ReferenceKeys());
  EXPECT_GT(report.wall_seconds, 0.0);
}

// Closes the loop between the static analyzer and the live runtime: a
// config muse-prove rejects with M900 (per-node credit windows below the
// batch size) really does wedge — the watchdog fires and the run aborts —
// while the analyzer's suggested minimum credit makes the identical trace
// run to completion with the reference matches.
TEST(RtRuntimeTest, ProvedCreditDeadlockWedgesAndMinCreditClearsIt) {
  Env env(78);
  rt::RtOptions options;
  options.transport.inbox_capacity = 64;
  options.transport.batch_max_frames = 8;
  options.transport.node_inbox_capacity = {2, 2, 2, 2};  // < batch: M900

  ProveOptions prove;
  prove.rt = options;
  prove.registry = &env.reg;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.net, prove);
  ASSERT_TRUE(proof.findings.HasRule(Rule::kRtCreditDeadlock))
      << proof.ToString();
  size_t min_credit = 0;
  for (const NodeCertificate& c : proof.nodes) {
    min_credit = std::max(min_credit, c.min_credit);
  }
  ASSERT_EQ(min_credit, 8u);

  // Without the fix, the first full batch can never acquire credits; the
  // watchdog is the only reason this terminates.
  options.transport.wedge_timeout_ms = 400;
  rt::RtReport bad = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_TRUE(bad.wedged) << bad.Summary();

  // Raising every window to the suggested minimum clears M900 statically
  // and the run dynamically: same trace, full reference result, no wedge.
  options.transport.node_inbox_capacity.assign(4, min_credit);
  options.transport.wedge_timeout_ms = 5000;
  prove.rt = options;
  ProveReport fixed = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.net, prove);
  EXPECT_FALSE(fixed.findings.HasRule(Rule::kRtCreditDeadlock))
      << fixed.ToString();
  rt::RtReport good = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_FALSE(good.wedged) << good.Summary();
  EXPECT_EQ(Keys(good.matches_per_query[0]), env.ReferenceKeys());
}

TEST(RtRuntimeTest, CollectMatchesOffKeepsCountsInTelemetry) {
  Env env(77);
  rt::RtOptions options;
  options.collect_matches = false;
  rt::RtReport report = rt::RtRuntime(*env.dep, options).Run(env.trace);
  EXPECT_TRUE(report.matches_per_query[0].empty());
  const obs::Counter* total = report.telemetry->registry.GetCounter(
      "rt_matches_total", obs::LabelSet{{"query", "0"}});
  EXPECT_EQ(total->Value(), env.ReferenceKeys().size());
}

}  // namespace
}  // namespace muse
