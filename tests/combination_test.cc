#include "src/core/combination.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

TEST(CombinationTest, CorrectnessRequiresExactCover) {
  TypeSet target = {0, 1, 2};
  EXPECT_TRUE(IsCorrectCombination({target, {{0, 1}, {2}}}));
  EXPECT_TRUE(IsCorrectCombination({target, {{0, 1}, {1, 2}}}));  // overlap ok
  EXPECT_FALSE(IsCorrectCombination({target, {{0, 1}}}));     // misses 2
  EXPECT_FALSE(IsCorrectCombination({target, {}}));           // empty
  EXPECT_FALSE(IsCorrectCombination({target, {{0, 1, 2}}}));  // not proper
}

TEST(CombinationTest, Redundancy) {
  // Def. 15: a part fully covered by the union of the others is redundant.
  EXPECT_TRUE(
      IsRedundantCombination({{0, 1, 2}, {{0, 1}, {1, 2}, {1}}}));
  EXPECT_FALSE(IsRedundantCombination({{0, 1, 2}, {{0, 1}, {1, 2}}}));
  EXPECT_FALSE(IsRedundantCombination({{0, 1, 2}, {{0, 1}, {2}}}));
  // Two identical parts are mutually redundant.
  EXPECT_TRUE(IsRedundantCombination({{0, 1}, {{0, 1}, {0, 1}}}));
}

std::vector<TypeSet> AllProperSubsets(TypeSet target) {
  std::vector<TypeSet> out;
  ForEachNonEmptySubset(target, [&](TypeSet s) {
    if (s != target) out.push_back(s);
  });
  return out;
}

TEST(EnumerateCombinationsTest, ThreeTypesFullEnumeration) {
  TypeSet target = {0, 1, 2};
  std::vector<Combination> combos =
      EnumerateCombinations(target, AllProperSubsets(target));
  // Every combination is correct and non-redundant.
  for (const Combination& c : combos) {
    EXPECT_TRUE(IsCorrectCombination(c)) << c.ToString();
    EXPECT_FALSE(IsRedundantCombination(c)) << c.ToString();
  }
  // Hand count: partitions {a|b|c} (1), {ab|c} style (3), {ab|ac} style
  // overlapping pairs (3), {ab|c-singleton pairs}... enumerate by checking
  // a known member and the total against a brute-force reference.
  std::set<std::string> seen;
  for (const Combination& c : combos) seen.insert(c.ToString());
  Combination expect{target, {TypeSet({0, 1}), TypeSet({2})}};
  EXPECT_TRUE(seen.count(expect.ToString()) == 1) << expect.ToString();

  // Brute-force reference over all subsets of candidate parts.
  std::vector<TypeSet> cands = AllProperSubsets(target);
  int expected = 0;
  for (uint64_t mask = 1; mask < (uint64_t{1} << cands.size()); ++mask) {
    Combination c;
    c.target = target;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (mask & (uint64_t{1} << i)) c.parts.push_back(cands[i]);
    }
    if (IsCorrectCombination(c) && !IsRedundantCombination(c)) ++expected;
  }
  EXPECT_EQ(static_cast<int>(combos.size()), expected);
}

TEST(EnumerateCombinationsTest, DuplicateFreeAcrossOrders) {
  TypeSet target = {0, 1, 2, 3};
  std::vector<Combination> combos =
      EnumerateCombinations(target, AllProperSubsets(target));
  std::set<std::string> seen;
  for (const Combination& c : combos) {
    EXPECT_TRUE(seen.insert(c.ToString()).second) << c.ToString();
  }
}

TEST(EnumerateCombinationsTest, RestrictedCandidates) {
  TypeSet target = {0, 1, 2};
  // Only singletons available: exactly one combination (the primitive one).
  std::vector<TypeSet> singles = {TypeSet({0}), TypeSet({1}), TypeSet({2})};
  std::vector<Combination> combos = EnumerateCombinations(target, singles);
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0].parts.size(), 3u);
}

TEST(EnumerateCombinationsTest, UncoverableTargetYieldsNothing) {
  TypeSet target = {0, 1, 2};
  std::vector<TypeSet> cands = {TypeSet({0}), TypeSet({1})};  // no 2
  EXPECT_TRUE(EnumerateCombinations(target, cands).empty());
}

TEST(EnumerateCombinationsTest, NegatedGroupRule) {
  // Target {A,B,C} with negated group {B}: parts containing B must be
  // exactly {B}.
  TypeSet target = {0, 1, 2};
  std::vector<TypeSet> groups = {TypeSet({1})};
  std::vector<Combination> combos =
      EnumerateCombinations(target, AllProperSubsets(target), groups);
  ASSERT_FALSE(combos.empty());
  for (const Combination& c : combos) {
    bool has_anti = false;
    for (TypeSet part : c.parts) {
      if (part.Intersects(TypeSet({1}))) {
        EXPECT_EQ(part, TypeSet({1})) << c.ToString();
        has_anti = true;
      }
    }
    EXPECT_TRUE(has_anti) << c.ToString();
  }
}

TEST(EnumerateCombinationsTest, GroupEqualToTargetUnconstrained) {
  // When the target *is* the negated pattern, its own composition is free.
  TypeSet target = {0, 1};
  std::vector<TypeSet> groups = {target};
  std::vector<Combination> combos =
      EnumerateCombinations(target, AllProperSubsets(target), groups);
  EXPECT_EQ(combos.size(), 1u);  // {0} + {1}
}

TEST(EnumerateCombinationsTest, MaxCombinationsCap) {
  TypeSet target = TypeSet::FirstN(6);
  CombinationEnumOptions opts;
  opts.max_combinations = 10;
  std::vector<Combination> combos =
      EnumerateCombinations(target, AllProperSubsets(target), {}, opts);
  EXPECT_LE(combos.size(), 10u);
}

class CombinationSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CombinationSizeTest, PartsBoundedByTargetSize) {
  // Non-redundant combinations have at most |target| parts (§6.1.2).
  TypeSet target = TypeSet::FirstN(GetParam());
  for (const Combination& c :
       EnumerateCombinations(target, AllProperSubsets(target))) {
    EXPECT_LE(static_cast<int>(c.parts.size()), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CombinationSizeTest,
                         ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace muse
