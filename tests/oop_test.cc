#include "src/core/placement_oop.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/net/network_gen.h"

namespace muse {
namespace {

Network Fig2Net(double rc, double rl, double rf) {
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);
  net.SetRate(0, rc);
  net.SetRate(1, rl);
  net.SetRate(2, rf);
  return net;
}

TEST(OopTest, ProducesCorrectSingleSinkPlan) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  OopPlan plan = PlanOperatorPlacement(cat);

  std::string why;
  EXPECT_TRUE(IsCorrectPlan(plan.graph, cat, &why)) << why;
  // oOP places every operator at exactly one node: all non-primitive
  // vertices are single-sink.
  for (const PlanVertex& v : plan.graph.vertices()) {
    if (!v.IsPrimitive()) {
      EXPECT_EQ(v.part_type, kNoPartition);
    }
  }
  ASSERT_EQ(plan.graph.sinks().size(), 1u);
  EXPECT_DOUBLE_EQ(plan.cost, GraphCost(plan.graph, cat));
}

TEST(OopTest, UsesOnlyHierarchyProjections) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  OopPlan plan = PlanOperatorPlacement(cat);
  for (const PlanVertex& v : plan.graph.vertices()) {
    // Only {C}, {L}, {F}, {C,L} (the AND), and {C,L,F} (the root) appear.
    EXPECT_TRUE(v.proj.size() == 1 || v.proj == TypeSet({0, 1}) ||
                v.proj == TypeSet({0, 1, 2}))
        << v.ToString();
  }
}

TEST(OopTest, DpMatchesExhaustiveNodeEnumeration) {
  // For a flat query the optimal single sink is simply the best node;
  // verify the DP agrees with brute force over all (and, root) node pairs.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    NetworkGenOptions nopts;
    nopts.num_nodes = 5;
    nopts.num_types = 3;
    Network net = MakeRandomNetwork(nopts, rng);
    ProjectionCatalog cat(q, net);
    OopPlan plan = PlanOperatorPlacement(cat);

    double best = std::numeric_limits<double>::infinity();
    for (NodeId and_node = 0; and_node < 5; ++and_node) {
      for (NodeId root_node = 0; root_node < 5; ++root_node) {
        double cost = 0;
        for (EventTypeId t : {0u, 1u}) {  // C, L gather at and_node
          cost += net.Rate(t) * (net.NumProducers(t) -
                                 (net.Produces(and_node, t) ? 1 : 0));
        }
        cost += net.Rate(2) * (net.NumProducers(2) -
                               (net.Produces(root_node, 2) ? 1 : 0));
        if (and_node != root_node) {
          cost += cat.Rate(TypeSet({0, 1})) * cat.Bindings(TypeSet({0, 1}));
        }
        best = std::min(best, cost);
      }
    }
    EXPECT_NEAR(plan.cost, best, 1e-9) << "round " << round;
  }
}

TEST(OopTest, BarelyBeatsCentralizedWithHomogeneousRates) {
  // §7.2/§7.3: with every node producing every type at equal rates, oOP
  // ends up shipping nearly everything — transmission ratio close to 1.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(A, B), D)", &reg).value();
  Network net(10, 3);
  for (NodeId n = 0; n < 10; ++n) {
    for (EventTypeId t = 0; t < 3; ++t) net.AddProducer(n, t);
  }
  for (EventTypeId t = 0; t < 3; ++t) net.SetRate(t, 10);
  ProjectionCatalog cat(q, net);
  OopPlan plan = PlanOperatorPlacement(cat);
  double centralized = CentralizedCost(net, q.PrimitiveTypes());
  EXPECT_GT(plan.cost, 0.85 * centralized);
  EXPECT_LE(plan.cost, centralized);
}

TEST(OopTest, SinglePrimitiveQuery) {
  TypeRegistry reg;
  Query q = ParseQuery("C", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  OopPlan plan = PlanOperatorPlacement(cat);
  EXPECT_DOUBLE_EQ(plan.cost, 0.0);
  EXPECT_EQ(plan.graph.sinks().size(), 2u);
}

TEST(OopTest, SharedTransfersReduceSecondQueryCost) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(C, L)", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  SharingContext ctx;
  OopPlan first = PlanOperatorPlacement(cat, &ctx);
  std::vector<const ProjectionCatalog*> cats = {&cat};
  RecordPlanInContext(first.graph, cats, &ctx);
  OopPlan second = PlanOperatorPlacement(cat, &ctx);
  EXPECT_DOUBLE_EQ(second.cost, 0.0);  // identical query rides for free
}

}  // namespace
}  // namespace muse
