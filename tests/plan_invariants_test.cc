// Cross-cutting planner invariants checked over randomized instances:
// every plan any planner emits must be correct, its reported cost must
// equal the cost model's evaluation of its graph, and the strategies must
// obey the cost-model ordering guarantees that do hold unconditionally.

#include <gtest/gtest.h>

#include "src/core/amuse.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/core/multi_query.h"
#include "src/core/placement_oop.h"
#include "src/dist/deployment.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

struct Instance {
  Network net;
  std::vector<Query> workload;

  Instance(uint64_t seed, int nodes, int types, int queries, int prims,
           double ratio = 0.5, double skew = 1.5)
      : net(1, 1) {
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = nodes;
    nopts.num_types = types;
    nopts.event_node_ratio = ratio;
    nopts.rate_skew = skew;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(types, 0.01, 0.2, rng);
    QueryGenOptions qopts;
    qopts.num_queries = queries;
    qopts.avg_primitives = prims;
    qopts.num_types = types;
    workload = GenerateWorkload(qopts, model, rng);
  }
};

class PlanInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanInvariantsTest, ReportedCostEqualsGraphCost) {
  Instance inst(static_cast<uint64_t>(GetParam()), 12, 10, 1, 5);
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (bool star : {false, true}) {
    PlannerOptions opts;
    opts.star = star;
    PlanResult r = PlanQuery(cat, opts);
    // The planner's incremental charge accounting must agree exactly with
    // the cost model applied to the materialized graph.
    EXPECT_NEAR(r.cost, GraphCost(r.graph, cat), 1e-9 + 1e-12 * r.cost)
        << "star=" << star;
  }
  OopPlan oop = PlanOperatorPlacement(cat);
  EXPECT_NEAR(oop.cost, GraphCost(oop.graph, cat), 1e-9 + 1e-12 * oop.cost);
}

TEST_P(PlanInvariantsTest, AllPlansCorrectAndBounded) {
  Instance inst(static_cast<uint64_t>(GetParam()) + 100, 10, 8, 3, 5);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  double central = CentralizedWorkloadCost(inst.net, inst.workload);

  for (bool star : {false, true}) {
    PlannerOptions opts;
    opts.star = star;
    WorkloadPlan plan = PlanWorkloadAmuse(catalogs, opts);
    std::string why;
    EXPECT_TRUE(IsCorrectPlan(plan.combined, catalogs.Pointers(), &why))
        << why;
    // Workload cost is bounded by gathering everything at the single best
    // node, which never exceeds centralized (external sink) cost.
    EXPECT_LE(plan.total_cost, central * 1.0000001) << "star=" << star;
  }
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(oop.combined, catalogs.Pointers(), &why)) << why;
  EXPECT_LE(oop.total_cost, central * 1.0000001);
}

TEST_P(PlanInvariantsTest, DeploymentCompilesEveryPlan) {
  Instance inst(static_cast<uint64_t>(GetParam()) + 200, 8, 6, 2, 4);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  MuseGraph central = BuildCentralizedPlan(catalogs.Pointers(), 0);
  // Compilation CHECKs internal consistency (routing, part coverage).
  Deployment d1(amuse.combined, catalogs.Pointers());
  Deployment d2(oop.combined, catalogs.Pointers());
  Deployment d3(central, catalogs.Pointers());
  EXPECT_GT(d1.num_tasks(), 0);
  EXPECT_GT(d2.num_tasks(), 0);
  EXPECT_GT(d3.num_tasks(), 0);
}

TEST_P(PlanInvariantsTest, SkewedNetworksFavorMuse) {
  // With heavy skew the dominant stream is avoidable: aMuSE must land well
  // below the oOP baseline (§7.2's headline effect).
  Instance inst(static_cast<uint64_t>(GetParam()) + 300, 12, 10, 3, 5,
                /*ratio=*/0.5, /*skew=*/1.1);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  // Our oOP baseline is strictly stronger than the paper's (exact DP,
  // common workload sink, shared streams); on gather-bound instances it
  // can edge out the greedy aMuSE search, so allow a modest margin.
  EXPECT_LE(amuse.total_cost, oop.total_cost * 1.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanInvariantsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace muse
