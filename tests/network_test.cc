#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/net/network_gen.h"
#include "src/net/zipf.h"

namespace muse {
namespace {

TEST(NetworkTest, ProducersAndRates) {
  Network net(3, 2);
  net.AddProducer(0, 0);
  net.AddProducer(2, 0);
  net.AddProducer(1, 1);
  net.SetRate(0, 10.0);
  net.SetRate(1, 2.0);

  EXPECT_EQ(net.NumProducers(0), 2);
  EXPECT_EQ(net.NumProducers(1), 1);
  EXPECT_TRUE(net.Produces(0, 0));
  EXPECT_FALSE(net.Produces(1, 0));
  EXPECT_EQ(net.produces(1), TypeSet({1}));
  EXPECT_DOUBLE_EQ(net.Rate(0), 10.0);
  EXPECT_DOUBLE_EQ(net.GlobalRate(EventTypeId{0}), 20.0);
  EXPECT_DOUBLE_EQ(net.GlobalRate(TypeSet({0, 1})), 22.0);
}

TEST(NetworkTest, AddProducerIdempotent) {
  Network net(2, 1);
  net.AddProducer(0, 0);
  net.AddProducer(0, 0);
  EXPECT_EQ(net.NumProducers(0), 1);
}

TEST(NetworkTest, ProducersSorted) {
  Network net(5, 1);
  net.AddProducer(3, 0);
  net.AddProducer(1, 0);
  net.AddProducer(4, 0);
  EXPECT_EQ(net.Producers(0), (std::vector<NodeId>{1, 3, 4}));
}

TEST(NetworkTest, EventNodeRatio) {
  Network net(2, 2);
  net.AddProducer(0, 0);
  net.AddProducer(0, 1);
  net.AddProducer(1, 0);
  EXPECT_DOUBLE_EQ(net.EventNodeRatio(), 0.75);
}

TEST(NetworkGenTest, RespectsShape) {
  NetworkGenOptions opts;
  opts.num_nodes = 20;
  opts.num_types = 15;
  opts.event_node_ratio = 0.5;
  Rng rng(1);
  Network net = MakeRandomNetwork(opts, rng);
  EXPECT_EQ(net.num_nodes(), 20);
  EXPECT_EQ(net.num_types(), 15);
  for (EventTypeId t = 0; t < 15; ++t) {
    EXPECT_GE(net.NumProducers(t), 1) << "type " << t;
    EXPECT_GE(net.Rate(t), 1.0);
  }
  // Ratio concentrates near 0.5 for 300 Bernoulli draws.
  EXPECT_NEAR(net.EventNodeRatio(), 0.5, 0.15);
}

TEST(NetworkGenTest, DeterministicGivenSeed) {
  NetworkGenOptions opts;
  Rng a(9);
  Rng b(9);
  Network na = MakeRandomNetwork(opts, a);
  Network nb = MakeRandomNetwork(opts, b);
  for (int n = 0; n < opts.num_nodes; ++n) {
    EXPECT_EQ(na.produces(n), nb.produces(n));
  }
  for (int t = 0; t < opts.num_types; ++t) {
    EXPECT_DOUBLE_EQ(na.Rate(t), nb.Rate(t));
  }
}

class NetworkRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(NetworkRatioTest, EveryTypeHasAProducer) {
  NetworkGenOptions opts;
  opts.event_node_ratio = GetParam();
  Rng rng(5);
  Network net = MakeRandomNetwork(opts, rng);
  for (int t = 0; t < opts.num_types; ++t) {
    EXPECT_GE(net.NumProducers(t), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, NetworkRatioTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0));

TEST(ZipfTest, SamplesWithinSupport) {
  ZipfSampler zipf(1.5, 1000);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(ZipfTest, MassConcentratesAtSmallValues) {
  ZipfSampler zipf(1.5, 1'000'000);
  Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    if (zipf.Sample(rng) == 1) ++ones;
  }
  // P(X=1) = 1/zeta(1.5) ~ 0.38.
  EXPECT_GT(ones, 500);
  EXPECT_LT(ones, 1100);
}

TEST(ZipfTest, SmallerExponentHasHeavierTail) {
  Rng rng1(3);
  Rng rng2(3);
  ZipfSampler heavy(1.1, 1'000'000);
  ZipfSampler light(2.0, 1'000'000);
  uint64_t max_heavy = 0;
  uint64_t max_light = 0;
  for (int i = 0; i < 5000; ++i) {
    max_heavy = std::max(max_heavy, heavy.Sample(rng1));
    max_light = std::max(max_light, light.Sample(rng2));
  }
  // s=1.1 routinely produces values orders of magnitude larger (§7.1).
  EXPECT_GT(max_heavy, 100 * max_light);
}

}  // namespace
}  // namespace muse
