#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/rt/runtime.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

/// Both sides of the differential must evaluate with the same effectively
/// unbounded eviction horizon: the final match set is a pure function of
/// the trace only when no partial match is ever evicted before the final
/// flush (neither by the simulator's virtual clock nor by the runtime's
/// arrival order).
constexpr uint64_t kHugeSlackMs = 1ULL << 40;

/// One randomized (workload, plan, trace) triple. Sizes are deliberately
/// small: the differential runs 12 triples, several plans and crash
/// schedules, all under TSan in CI.
struct Triple {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  std::unique_ptr<Deployment> dep;

  Triple(uint64_t seed, const std::string& plan_kind,
         double nseq_probability = 0.35)
      : net(1, 1) {
    Rng rng(seed);
    QueryGenOptions qopts;
    qopts.num_queries = 2;
    qopts.avg_primitives = 3;
    qopts.num_types = 4;
    qopts.window_ms = 400;
    qopts.nseq_probability = nseq_probability;
    SelectivityModel model(qopts.num_types, 0.05, 0.3, rng);
    workload = GenerateWorkload(qopts, model, rng);

    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = qopts.num_types;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 6;
    net = MakeRandomNetwork(nopts, rng);

    TraceOptions topts;
    topts.duration_ms = 2500;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(net, topts, rng);

    catalogs = std::make_unique<WorkloadCatalogs>(workload, net);
    MuseGraph plan;
    if (plan_kind == "amuse") {
      plan = PlanWorkloadAmuse(*catalogs).combined;
    } else if (plan_kind == "oop") {
      plan = PlanWorkloadOop(*catalogs).combined;
    } else {
      plan = BuildCentralizedPlan(catalogs->Pointers(), /*sink=*/0);
    }
    dep = std::make_unique<Deployment>(plan, catalogs->Pointers());
  }
};

std::vector<std::vector<std::string>> KeySets(
    const std::vector<std::vector<Match>>& matches_per_query) {
  std::vector<std::vector<std::string>> keys(matches_per_query.size());
  for (size_t q = 0; q < matches_per_query.size(); ++q) {
    for (const Match& m : matches_per_query[q]) {
      keys[q].push_back(m.Key());
    }
  }
  return keys;
}

/// Runs the discrete-event simulator and the threaded runtime on the same
/// triple and requires identical per-query canonical match sets.
void ExpectDifferentialEqual(
    const Triple& t, const std::vector<std::pair<NodeId, uint64_t>>& failures,
    int num_threads, uint64_t trace_sample_every = 0,
    bool batch_inbox = true) {
  SimOptions sim_options;
  sim_options.eval.eviction_slack_ms = kHugeSlackMs;
  sim_options.failures = failures;
  SimReport sim = DistributedSimulator(*t.dep, sim_options).Run(t.trace);

  rt::RtOptions rt_options;
  rt_options.num_threads = num_threads;
  rt_options.eval.eviction_slack_ms = kHugeSlackMs;
  rt_options.failures = failures;
  rt_options.trace_sample_every = trace_sample_every;
  rt_options.transport.batch_inbox = batch_inbox;
  rt::RtReport run = rt::RtRuntime(*t.dep, rt_options).Run(t.trace);

  ASSERT_EQ(run.matches_per_query.size(), sim.matches_per_query.size());
  const auto want = KeySets(sim.matches_per_query);
  const auto got = KeySets(run.matches_per_query);
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
  // The batched inbox must actually engage when enabled (untraced runs
  // carry plain event frames, which are exactly what batches), and must
  // stay fully disengaged when disabled.
  const uint64_t batches =
      run.telemetry->registry.GetCounter("rt_inbox_batches_total")->Value();
  if (batch_inbox && trace_sample_every == 0) {
    EXPECT_GT(batches, 0u);
  }
  if (!batch_inbox) {
    EXPECT_EQ(batches, 0u);
  }
}

// Twelve randomized triples cycling through the three plan shapes; every
// third triple also injects node crashes into both executions.
TEST(RtDifferentialTest, RandomTriplesAgreeWithSimulator) {
  const char* kPlans[] = {"amuse", "centralized", "oop"};
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const std::string plan_kind = kPlans[seed % 3];
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan_kind);
    Triple t(1000 + seed, plan_kind);
    std::vector<std::pair<NodeId, uint64_t>> failures;
    if (seed % 3 == 0) {
      failures = {{static_cast<NodeId>(seed % 4), 1200},
                  {static_cast<NodeId>((seed + 1) % 4), 1800}};
    }
    ExpectDifferentialEqual(t, failures, /*num_threads=*/0);
  }
}

// The shard count must not be observable in the final match sets.
TEST(RtDifferentialTest, ThreadMultiplexingAgreesWithSimulator) {
  Triple t(2000, "amuse");
  for (int threads : {1, 2}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectDifferentialEqual(t, {}, threads);
  }
}

// Crashes under multiplexed shards: recovery replay + receiver-side
// dedup must still land on the simulator's exact match sets.
TEST(RtDifferentialTest, CrashesUnderMultiplexedShards) {
  Triple t(3000, "amuse");
  ExpectDifferentialEqual(t, {{0, 900}, {2, 1600}}, /*num_threads=*/2);
}

// Sampled causal tracing is pure observation: with tracing enabled —
// even at sample-every=1, where every frame carries a trace context and
// every stage records spans — the runtime must land on the simulator's
// exact match sets, crashes and multiplexing included.
TEST(RtDifferentialTest, SampledTracingNeverChangesMatches) {
  const char* kPlans[] = {"amuse", "centralized", "oop"};
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const std::string plan_kind = kPlans[seed % 3];
    const uint64_t sample_every = seed % 2 ? 4 : 1;
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan_kind +
                 " sample_every " + std::to_string(sample_every));
    Triple t(5000 + seed, plan_kind);
    std::vector<std::pair<NodeId, uint64_t>> failures;
    if (seed % 3 == 0) failures = {{static_cast<NodeId>(seed % 4), 1300}};
    ExpectDifferentialEqual(t, failures, /*num_threads=*/seed % 2 ? 2 : 0,
                            sample_every);
  }
}

// NSEQ-heavy workloads: every query carries a negation, so the pending-
// candidate path (hold, watermark bookkeeping, flush ordering) is on the
// differential's critical path, including across a crash + replay.
TEST(RtDifferentialTest, NseqWorkloadsAgreeWithSimulator) {
  const char* kPlans[] = {"amuse", "centralized", "oop"};
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const std::string plan_kind = kPlans[seed % 3];
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan_kind);
    Triple t(4000 + seed, plan_kind, /*nseq_probability=*/1.0);
    std::vector<std::pair<NodeId, uint64_t>> failures;
    if (seed % 2 == 0) failures = {{static_cast<NodeId>(seed % 4), 1100}};
    ExpectDifferentialEqual(t, failures, /*num_threads=*/seed % 2 ? 2 : 0);
  }
}

// Columnar inbox batching (muse-batch) is a pure optimization: with the
// batched drain disabled the runtime must land on the same match sets as
// with it enabled (both equal to the simulator), across plan shapes,
// NSEQ-heavy workloads, crash schedules, and multiplexed shards.
TEST(RtDifferentialTest, BatchInboxOnAndOffAgreeWithSimulator) {
  const char* kPlans[] = {"amuse", "centralized", "oop"};
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const std::string plan_kind = kPlans[seed % 3];
    const double nseq_probability = seed % 2 ? 1.0 : 0.35;
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan_kind);
    Triple t(6000 + seed, plan_kind, nseq_probability);
    std::vector<std::pair<NodeId, uint64_t>> failures;
    if (seed % 3 == 0) failures = {{static_cast<NodeId>(seed % 4), 1200}};
    const int num_threads = seed % 2 ? 2 : 0;
    for (bool batch_inbox : {false, true}) {
      SCOPED_TRACE(batch_inbox ? "batched inbox" : "scalar inbox");
      ExpectDifferentialEqual(t, failures, num_threads,
                              /*trace_sample_every=*/0, batch_inbox);
    }
  }
}

}  // namespace
}  // namespace muse
