#include "src/dist/deployment.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/amuse.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/placement_oop.h"

namespace muse {
namespace {

Network Fig2Net() {
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);
  net.SetRate(0, 100);
  net.SetRate(1, 100);
  net.SetRate(2, 1);
  return net;
}

TEST(DeploymentTest, CompilesAmusePlan) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  Network net = Fig2Net();
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  Deployment dep(r.graph, {&cat});

  EXPECT_GT(dep.num_tasks(), 0);
  int sinks = 0;
  int primitives = 0;
  for (const Task& t : dep.tasks()) {
    if (!t.sink_for.empty()) ++sinks;
    if (t.is_primitive) {
      ++primitives;
      EXPECT_TRUE(t.inputs.empty());
      EXPECT_TRUE(net.Produces(t.node, t.prim_type));
    } else {
      EXPECT_FALSE(t.parts.empty());
      // Every input task's projection appears among the parts.
      for (const auto& [src, part] : t.inputs) {
        EXPECT_EQ(dep.task(src).proj, t.part_types[part]);
      }
    }
  }
  EXPECT_GE(sinks, 1);
  // One primitive task per (type, producer) pair: 2+2+2.
  EXPECT_EQ(primitives, 6);
}

TEST(DeploymentTest, PrimitiveDispatchIndex) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net();
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  Deployment dep(r.graph, {&cat});

  for (EventTypeId t = 0; t < 3; ++t) {
    for (NodeId n = 0; n < 4; ++n) {
      const std::vector<int>& tasks = dep.PrimitiveTasksFor(n, t);
      if (net.Produces(n, t)) {
        ASSERT_EQ(tasks.size(), 1u);
        EXPECT_EQ(dep.task(tasks[0]).prim_type, t);
      } else {
        EXPECT_TRUE(tasks.empty());
      }
    }
  }
  EXPECT_TRUE(dep.PrimitiveTasksFor(99, 0).empty());
}

TEST(DeploymentTest, SuccessorsMatchPlanEdges) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net();
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  Deployment dep(r.graph, {&cat});
  // Every task with successors feeds tasks that list it as an input.
  for (const Task& t : dep.tasks()) {
    for (int s : t.successors) {
      const Task& succ = dep.task(s);
      bool found = false;
      for (const auto& [src, part] : succ.inputs) {
        if (src == t.id) found = true;
      }
      EXPECT_TRUE(found) << t.ToString() << " -> " << succ.ToString();
    }
  }
}

TEST(DeploymentTest, MergesEquivalentVerticesAcrossQueries) {
  TypeRegistry reg;
  Query q1 = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Query q2 = ParseQuery("SEQ(AND(C, L), G)", &reg).value();
  Network net(4, 4);
  for (NodeId n = 0; n < 4; ++n) {
    for (EventTypeId t = 0; t < 4; ++t) net.AddProducer(n, t);
  }
  net.SetRate(0, 100);
  net.SetRate(1, 50);
  net.SetRate(2, 1);
  net.SetRate(3, 1);
  WorkloadCatalogs catalogs({q1, q2}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());

  // No two tasks share (node, projection signature, partition).
  std::set<std::string> keys;
  for (const Task& t : dep.tasks()) {
    std::string key = std::to_string(t.node) + "|" +
                      catalogs.catalog(t.rep_query).Signature(t.proj) + "|" +
                      std::to_string(t.part_type);
    EXPECT_TRUE(keys.insert(key).second) << key;
  }
}

TEST(DeploymentTest, CentralizedPlanHasOneEvaluatingNode) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net();
  ProjectionCatalog cat(q, net);
  MuseGraph plan = BuildCentralizedPlan({&cat}, /*sink=*/2);
  Deployment dep(plan, {&cat});
  for (const Task& t : dep.tasks()) {
    if (!t.is_primitive) {
      EXPECT_EQ(t.node, 2u);
    }
  }
}

TEST(DeploymentTest, OopPlanCompiles) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net();
  ProjectionCatalog cat(q, net);
  OopPlan plan = PlanOperatorPlacement(cat);
  Deployment dep(plan.graph, {&cat});
  int sink_tasks = 0;
  for (const Task& t : dep.tasks()) {
    if (!t.sink_for.empty()) ++sink_tasks;
  }
  EXPECT_EQ(sink_tasks, 1);
}

}  // namespace
}  // namespace muse
