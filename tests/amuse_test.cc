#include "src/core/amuse.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

Network Fig2Net(double rc, double rl, double rf) {
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);
  net.SetRate(0, rc);
  net.SetRate(1, rl);
  net.SetRate(2, rf);
  return net;
}

TEST(AmuseTest, ProducesCorrectPlanOnPaperExample) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);

  std::string why;
  EXPECT_TRUE(IsCorrectPlan(r.graph, cat, &why)) << why << "\n"
                                                 << r.graph.ToString(&reg);
  EXPECT_GT(r.graph.sinks().size(), 0u);
  EXPECT_DOUBLE_EQ(r.cost, GraphCost(r.graph, cat));
}

TEST(AmuseTest, BeatsCentralizedOnSkewedRates) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.01));
  Network net = Fig2Net(1000, 1000, 0.01);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  double centralized = CentralizedCost(net, q.PrimitiveTypes());
  EXPECT_LT(r.cost, 0.1 * centralized)
      << "cost " << r.cost << " vs centralized " << centralized;
}

TEST(AmuseTest, MultiSinkAvoidsShippingDominantType) {
  // With one type vastly dominant and tiny selectivity, the plan should
  // never ship the dominant type: cost stays below the dominant type's
  // single-node rate.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.0001));
  q.AddPredicate(Predicate::Equality(1, 0, 2, 0, 0.0001));
  Network net = Fig2Net(100000, 100, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  std::string why;
  ASSERT_TRUE(IsCorrectPlan(r.graph, cat, &why)) << why;
  EXPECT_LT(r.cost, 100000.0);
}

TEST(AmuseTest, StatsPopulated) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  EXPECT_EQ(r.stats.projections_total, 7);
  EXPECT_GT(r.stats.projections_considered, 0);
  EXPECT_GT(r.stats.combinations_enumerated, 0);
  EXPECT_GT(r.stats.graphs_constructed, 0);
  EXPECT_GE(r.stats.elapsed_seconds, 0.0);
}

TEST(AmuseTest, StarConsidersFewerProjectionsAndCostsNoLess) {
  Rng rng(11);
  NetworkGenOptions nopts;
  nopts.num_nodes = 8;
  nopts.num_types = 8;
  Network net = MakeRandomNetwork(nopts, rng);
  SelectivityModel model(8, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 1;
  qopts.avg_primitives = 5;
  qopts.num_types = 8;
  for (int round = 0; round < 5; ++round) {
    std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
    ProjectionCatalog cat(wl[0], net);
    PlannerOptions amuse;
    PlannerOptions star;
    star.star = true;
    PlanResult a = PlanQuery(cat, amuse);
    PlanResult s = PlanQuery(cat, star);
    EXPECT_LE(s.stats.projections_considered,
              a.stats.projections_considered);
    // aMuSE explores a superset of aMuSE*'s plan space, but both searches
    // are greedy/budgeted, so only near-domination holds per seed.
    EXPECT_LE(a.cost, s.cost * 1.25);
    std::string why;
    EXPECT_TRUE(IsCorrectPlan(a.graph, cat, &why)) << why;
    EXPECT_TRUE(IsCorrectPlan(s.graph, cat, &why)) << why;
  }
}

TEST(AmuseTest, SingleTypeQueryHasZeroCost) {
  TypeRegistry reg;
  Query q = ParseQuery("C", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.graph.sinks().size(), 2u);  // one per producer of C
}

TEST(AmuseTest, PlanNeverExceedsBestGatherPlan) {
  // The primitive combination with the best single node is always in the
  // search space, so the plan cost is bounded by the best gather cost.
  Rng rng(3);
  NetworkGenOptions nopts;
  nopts.num_nodes = 10;
  nopts.num_types = 6;
  SelectivityModel model(6, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 1;
  qopts.avg_primitives = 4;
  qopts.num_types = 6;
  for (int round = 0; round < 10; ++round) {
    Network net = MakeRandomNetwork(nopts, rng);
    std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
    ProjectionCatalog cat(wl[0], net);
    PlanResult r = PlanQuery(cat);

    double best_gather = std::numeric_limits<double>::infinity();
    for (NodeId n = 0; n < static_cast<NodeId>(net.num_nodes()); ++n) {
      double cost = 0;
      for (EventTypeId t : wl[0].PrimitiveTypes()) {
        cost += net.Rate(t) *
                (net.NumProducers(t) - (net.Produces(n, t) ? 1 : 0));
      }
      best_gather = std::min(best_gather, cost);
    }
    EXPECT_LE(r.cost, best_gather * 1.0000001) << "round " << round;
    std::string why;
    EXPECT_TRUE(IsCorrectPlan(r.graph, cat, &why))
        << why << " round " << round;
  }
}

TEST(AmuseTest, DisablingMultiSinkStillCorrect) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.01));
  Network net = Fig2Net(1000, 1000, 1);
  ProjectionCatalog cat(q, net);
  PlannerOptions no_ms;
  no_ms.enable_multi_sink = false;
  PlanResult r = PlanQuery(cat, no_ms);
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(r.graph, cat, &why)) << why;
  // Every non-primitive vertex is single-sink.
  for (const PlanVertex& v : r.graph.vertices()) {
    if (!v.IsPrimitive()) {
      EXPECT_EQ(v.part_type, kNoPartition);
    }
  }
  PlanResult full = PlanQuery(cat);
  EXPECT_LE(full.cost, r.cost * 1.0000001);
}

TEST(AmuseTest, NseqQueryPlansCorrectly) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  Network net = Fig2Net(100, 10, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = PlanQuery(cat);
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(r.graph, cat, &why)) << why;
  // The sink consumes the anti part {B} as a predecessor projection.
  bool anti_edge = false;
  for (const auto& [from, to] : r.graph.edges()) {
    if (r.graph.vertex(from).proj == TypeSet({1}) &&
        r.graph.vertex(to).proj == q.PrimitiveTypes()) {
      anti_edge = true;
    }
  }
  EXPECT_TRUE(anti_edge) << r.graph.ToString(&reg);
}

TEST(AmuseTest, DeterministicAcrossRuns) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Fig2Net(100, 100, 1);
  ProjectionCatalog cat(q, net);
  PlanResult a = PlanQuery(cat);
  PlanResult b = PlanQuery(cat);
  EXPECT_EQ(a.graph.CanonicalString(), b.graph.CanonicalString());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace muse
