#include "src/core/rates.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

Network Net3(double rc, double rl, double rf) {
  Network net(2, 3);
  net.AddProducer(0, 0);
  net.AddProducer(0, 1);
  net.AddProducer(0, 2);
  net.SetRate(0, rc);
  net.SetRate(1, rl);
  net.SetRate(2, rf);
  return net;
}

TEST(RatesTest, PrimitiveRate) {
  TypeRegistry reg;
  Query q = ParseQuery("C", &reg).value();
  Network net = Net3(10, 20, 30);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 10.0);
}

TEST(RatesTest, SeqIsProduct) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(C, L)", &reg).value();
  Network net = Net3(10, 20, 0);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 200.0);
}

TEST(RatesTest, AndIsKTimesProduct) {
  TypeRegistry reg;
  Query q = ParseQuery("AND(C, L)", &reg).value();
  Network net = Net3(10, 20, 0);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 2 * 200.0);
  Query q3 = ParseQuery("AND(C, L, F)", &reg).value();
  Network net3 = Net3(10, 20, 5);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q3, net3), 3 * 10 * 20 * 5);
}

TEST(RatesTest, NseqIgnoresNegatedChild) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(C, L, F)", &reg).value();
  Network net = Net3(10, 1000, 5);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 50.0);
}

TEST(RatesTest, NestedHierarchy) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Net3(10, 20, 5);
  // AND(C,L) = 2*10*20 = 400; SEQ(.., F) = 400*5 = 2000.
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 2000.0);
}

TEST(RatesTest, SelectivityScalesOutput) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(C, L)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  Network net = Net3(10, 20, 0);
  EXPECT_DOUBLE_EQ(QueryOutputRate(q, net), 0.05 * 200.0);
}

TEST(RatesTest, OperatorRateOfSubtree) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Network net = Net3(10, 20, 5);
  const QueryOp& root = q.op(q.root());
  for (int child : root.children) {
    if (q.op(child).kind == OpKind::kAnd) {
      EXPECT_DOUBLE_EQ(OperatorOutputRate(q, child, net), 400.0);
    }
  }
}

}  // namespace
}  // namespace muse
