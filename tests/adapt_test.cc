// Unit tests for muse-adapt's building blocks: the structural plan diff
// (src/adapt/plan_diff.h), the migration state snapshot and its wire
// encoding (src/adapt/state_transfer.h), and the AdaptController state
// machine (src/adapt/controller.h) driven by synthetic drift reports —
// no runtime involved; the live end-to-end loop is pinned by
// rt_adapt_differential_test.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/adapt/controller.h"
#include "src/adapt/plan_diff.h"
#include "src/adapt/state_transfer.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/network_gen.h"
#include "src/rt/wire.h"
#include "src/workload/query_gen.h"
#include "src/workload/spec.h"

namespace muse::adapt {
namespace {

/// One planned scenario: spec text -> network/workload -> catalogs ->
/// deployment, the same path every adapt consumer takes.
struct Scenario {
  DeploymentSpec spec;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  std::unique_ptr<Deployment> dep;

  explicit Scenario(const std::string& text, const std::string& plan_kind =
                                                 "amuse") {
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(text);
    MUSE_CHECK(parsed.ok(), "scenario spec must parse");
    spec = std::move(parsed).value();
    catalogs = std::make_unique<WorkloadCatalogs>(spec.workload, spec.network);
    MuseGraph plan;
    if (plan_kind == "amuse") {
      plan = PlanWorkloadAmuse(*catalogs).combined;
    } else {
      plan = BuildCentralizedPlan(catalogs->Pointers(), /*sink=*/0);
    }
    dep = std::make_unique<Deployment>(plan, catalogs->Pointers());
  }
};

/// A two-node SEQ scenario whose placement is rate-sensitive: the join
/// follows the heavier stream, so scaling B's rate past A's moves it.
const char* kRateSensitiveSpec =
    "nodes 2\n"
    "rate A 10\n"
    "rate B 1\n"
    "produce 0 A\n"
    "produce 1 B\n"
    "query SEQ(A a, B b) WITHIN 400ms\n";

// --------------------------------------------------------------- PlanDiff

TEST(PlanDiffTest, IdenticalDeploymentIsNoOp) {
  Scenario s(kRateSensitiveSpec);
  const PlanDiff diff = DiffDeployments(*s.dep, *s.dep);
  EXPECT_TRUE(diff.no_op());
  EXPECT_TRUE(diff.primitive_compatible);
  EXPECT_TRUE(diff.same_queries);
  EXPECT_EQ(diff.old_tasks, s.dep->tasks().size());
  EXPECT_EQ(diff.new_tasks, s.dep->tasks().size());
  EXPECT_EQ(diff.unchanged, s.dep->tasks().size());
  EXPECT_EQ(diff.moved + diff.added + diff.removed, 0u);
}

TEST(PlanDiffTest, RecompiledSamePlanIsStillNoOp) {
  // Two independently compiled deployments of the same plan must match by
  // signature even though every Task object is distinct.
  Scenario a(kRateSensitiveSpec);
  Scenario b(kRateSensitiveSpec);
  const PlanDiff diff = DiffDeployments(*a.dep, *b.dep);
  EXPECT_TRUE(diff.no_op()) << diff.Summary();
}

TEST(PlanDiffTest, AmuseVsCentralizedIsStructuralChange) {
  Scenario amuse(kRateSensitiveSpec, "amuse");
  Scenario central(kRateSensitiveSpec, "centralized");
  const PlanDiff diff = DiffDeployments(*amuse.dep, *central.dep);
  EXPECT_FALSE(diff.no_op());
  EXPECT_GT(diff.moved + diff.added + diff.removed, 0u);
  // Same network, same workload: primitives and query count agree even
  // when every non-primitive placement differs.
  EXPECT_TRUE(diff.primitive_compatible) << diff.Summary();
  EXPECT_TRUE(diff.same_queries);
  EXPECT_FALSE(diff.Summary().empty());
}

TEST(PlanDiffTest, DifferentWorkloadsAreIncompatible) {
  Scenario one(kRateSensitiveSpec);
  Scenario two(
      "nodes 2\n"
      "rate A 10\n"
      "rate B 1\n"
      "produce 0 A\n"
      "produce 1 B\n"
      "query SEQ(A a, B b) WITHIN 400ms\n"
      "query AND(A a, B b) WITHIN 400ms\n");
  const PlanDiff diff = DiffDeployments(*one.dep, *two.dep);
  EXPECT_FALSE(diff.same_queries);
  EXPECT_FALSE(diff.no_op());
}

// --------------------------------------------------------- StateHorizonMs

TEST(StateTransferTest, HorizonIsMaxWindowPlusSlack) {
  Scenario s(kRateSensitiveSpec);
  uint64_t max_window = 0;
  for (const Task& t : s.dep->tasks()) {
    ASSERT_NE(t.target.window(), kNoWindow);
    max_window = std::max(max_window, t.target.window());
  }
  EXPECT_EQ(StateHorizonMs(*s.dep, 0), max_window);
  EXPECT_EQ(StateHorizonMs(*s.dep, 600), max_window + 600);
}

TEST(StateTransferTest, HorizonSaturatesInsteadOfWrapping) {
  Scenario s(kRateSensitiveSpec);
  EXPECT_EQ(StateHorizonMs(*s.dep, kNoWindow), kNoWindow);
  EXPECT_EQ(StateHorizonMs(*s.dep, kNoWindow - 1), kNoWindow);
}

// ------------------------------------------------------- encode / decode

Event MakeEvent(uint32_t type, uint32_t origin, uint64_t seq, uint64_t time) {
  Event e;
  e.type = static_cast<EventTypeId>(type);
  e.origin = static_cast<NodeId>(origin);
  e.seq = seq;
  e.time = time;
  for (int i = 0; i < kNumAttrs; ++i) {
    e.attrs[static_cast<size_t>(i)] = static_cast<int64_t>(seq * 31 + i);
  }
  return e;
}

MigrationState MakeState(uint64_t id, size_t nodes, size_t events_per_node) {
  MigrationState state;
  state.migration_id = id;
  state.barrier_ms = 1500;
  state.horizon_ms = 1100;
  uint64_t seq = 1;
  for (size_t n = 0; n < nodes; ++n) {
    MigrationState::NodeState ns;
    ns.node = static_cast<uint32_t>(n * 2);  // gaps: empty nodes omitted
    for (size_t i = 0; i < events_per_node; ++i) {
      ns.events.push_back(MakeEvent(static_cast<uint32_t>(i % 3),
                                    ns.node, seq++, 1000 + i));
    }
    state.nodes.push_back(std::move(ns));
  }
  return state;
}

void ExpectStatesEqual(const MigrationState& a, const MigrationState& b) {
  EXPECT_EQ(a.migration_id, b.migration_id);
  EXPECT_EQ(a.barrier_ms, b.barrier_ms);
  EXPECT_EQ(a.horizon_ms, b.horizon_ms);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t n = 0; n < a.nodes.size(); ++n) {
    EXPECT_EQ(a.nodes[n].node, b.nodes[n].node);
    ASSERT_EQ(a.nodes[n].events.size(), b.nodes[n].events.size());
    for (size_t i = 0; i < a.nodes[n].events.size(); ++i) {
      EXPECT_EQ(a.nodes[n].events[i].seq, b.nodes[n].events[i].seq);
      EXPECT_EQ(a.nodes[n].events[i].time, b.nodes[n].events[i].time);
      EXPECT_EQ(a.nodes[n].events[i].attrs, b.nodes[n].events[i].attrs);
    }
  }
}

TEST(StateTransferTest, EncodeDecodeRoundTrip) {
  const MigrationState state = MakeState(7, 3, 5);
  EXPECT_EQ(state.TotalEvents(), 15u);
  std::vector<std::string> frames;
  EncodeMigrationState(state, 0, &frames);
  ASSERT_EQ(frames.size(), 1u + 3u);  // header + one chunk per node
  EXPECT_GT(EncodedStateBytes(frames), 0u);
  Result<MigrationState> decoded = DecodeMigrationState(frames);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ExpectStatesEqual(decoded.value(), state);
}

TEST(StateTransferTest, ChunkingSplitsAndReassembles) {
  const MigrationState state = MakeState(9, 2, 10);
  std::vector<std::string> frames;
  EncodeMigrationState(state, /*max_events_per_chunk=*/3, &frames);
  // ceil(10/3) = 4 chunks per node, 2 nodes, plus the header.
  ASSERT_EQ(frames.size(), 1u + 8u);
  Result<MigrationState> decoded = DecodeMigrationState(frames);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ExpectStatesEqual(decoded.value(), state);
}

TEST(StateTransferTest, EmptyStateIsHeaderOnly) {
  MigrationState state;
  state.migration_id = 3;
  std::vector<std::string> frames;
  EncodeMigrationState(state, 0, &frames);
  ASSERT_EQ(frames.size(), 1u);
  Result<MigrationState> decoded = DecodeMigrationState(frames);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().TotalEvents(), 0u);
}

TEST(StateTransferTest, DecodeRejectsMalformedSequences) {
  const MigrationState state = MakeState(11, 2, 4);
  std::vector<std::string> frames;
  EncodeMigrationState(state, 0, &frames);
  ASSERT_EQ(frames.size(), 3u);

  // Empty sequence.
  EXPECT_FALSE(DecodeMigrationState({}).ok());
  // Chunk before header.
  EXPECT_FALSE(DecodeMigrationState({frames[1], frames[0], frames[2]}).ok());
  // Missing chunk: header still declares 2.
  EXPECT_FALSE(DecodeMigrationState({frames[0], frames[1]}).ok());
  // Duplicated chunk: one too many.
  EXPECT_FALSE(
      DecodeMigrationState({frames[0], frames[1], frames[2], frames[2]}).ok());
  // Chunk from a different migration.
  std::vector<std::string> foreign;
  EncodeMigrationState(MakeState(12, 1, 4), 0, &foreign);
  EXPECT_FALSE(DecodeMigrationState({frames[0], frames[1], foreign[1]}).ok());
  // Truncated chunk bytes.
  std::vector<std::string> cut = frames;
  cut[2].resize(cut[2].size() / 2);
  EXPECT_FALSE(DecodeMigrationState(cut).ok());
}

// -------------------------------------------------------- AdaptController

obs::RateDriftDetector::Report DriftedReport(double score,
                                             double b_observed = 16.0) {
  obs::RateDriftDetector::Report r;
  r.drifted = true;
  r.drift_score = score;
  obs::RateDriftDetector::StreamReport a;
  a.label = "type:0";
  a.flag_eligible = true;
  a.expected_eps = 10.0;
  a.observed_eps = 10.0;
  r.streams.push_back(a);
  obs::RateDriftDetector::StreamReport b;
  b.label = "type:1";
  b.flag_eligible = true;
  b.expected_eps = 1.0;
  b.observed_eps = b_observed;
  b.score = score;
  b.drifted = true;
  r.streams.push_back(b);
  return r;
}

/// Polls OnDriftReport until the background replan lands (candidate or
/// rejection), advancing trace time a little each poll.
const Deployment* PollUntilReplanned(AdaptController* c, uint64_t* now_ms,
                                     double score = 2.0) {
  for (int i = 0; i < 20000; ++i) {
    const Deployment* next = c->OnDriftReport(DriftedReport(score), *now_ms);
    if (next != nullptr) return next;
    if (!c->transitions().empty() &&
        c->transitions().back().to == AdaptController::State::kCooldown) {
      return nullptr;
    }
    *now_ms += 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ADD_FAILURE() << "replan never completed";
  return nullptr;
}

TEST(AdaptControllerTest, QuietReportsNeverReplan) {
  Scenario s(kRateSensitiveSpec);
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get());
  obs::RateDriftDetector::Report quiet;
  for (uint64_t now = 0; now < 5000; now += 250) {
    EXPECT_EQ(c.OnDriftReport(quiet, now), nullptr);
  }
  EXPECT_EQ(c.Replans(), 0u);
  EXPECT_EQ(c.migrations(), 0u);
  EXPECT_TRUE(c.transitions().empty());
}

TEST(AdaptControllerTest, UnsustainedDriftDecaysBackToStable) {
  Scenario s(kRateSensitiveSpec);
  AdaptPolicy policy;
  policy.confirm_reports = 3;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), 250), nullptr);
  EXPECT_EQ(c.current(), s.dep.get());
  ASSERT_FALSE(c.transitions().empty());
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kDrifted);
  // One quiet report resets the confirmation count.
  EXPECT_EQ(c.OnDriftReport({}, 500), nullptr);
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kStable);
  // Two more drifted reports are not enough to reach 3 consecutive.
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), 750), nullptr);
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), 1000), nullptr);
  EXPECT_EQ(c.Replans(), 0u);
}

TEST(AdaptControllerTest, ScoreBelowPolicyFloorIsIgnored) {
  Scenario s(kRateSensitiveSpec);
  AdaptPolicy policy;
  policy.confirm_reports = 1;
  policy.min_drift_score = 1.5;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  EXPECT_EQ(c.OnDriftReport(DriftedReport(1.0), 250), nullptr);
  EXPECT_EQ(c.Replans(), 0u);
  EXPECT_TRUE(c.transitions().empty());
}

TEST(AdaptControllerTest, ConfirmedDriftReplansAndMigrates) {
  Scenario s(kRateSensitiveSpec);
  // Precondition of this scenario: a 16x rate correction on B genuinely
  // changes the aMuSE placement, so the controller has something to
  // migrate to. Pinned here so a planner change fails loudly.
  {
    Result<DeploymentSpec> shifted = ParseDeploymentSpec(kRateSensitiveSpec);
    ASSERT_TRUE(shifted.ok());
    shifted.value().network.SetRate(1, 16.0);
    WorkloadCatalogs cat(shifted.value().workload, shifted.value().network);
    Deployment alt(PlanWorkloadAmuse(cat).combined, cat.Pointers());
    ASSERT_FALSE(DiffDeployments(*s.dep, alt).no_op())
        << "scenario no longer rate-sensitive; pick rates that flip the plan";
  }

  AdaptPolicy policy;
  policy.confirm_reports = 2;
  policy.cooldown_ms = 1000;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  uint64_t now = 250;
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), now), nullptr);
  now += 250;
  // Second consecutive drifted report: replanning starts.
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), now), nullptr);
  ASSERT_FALSE(c.transitions().empty());
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kReplanning);

  const Deployment* next = PollUntilReplanned(&c, &now);
  ASSERT_NE(next, nullptr) << "replan rejected: "
                           << c.transitions().back().note;
  EXPECT_NE(next, s.dep.get());
  EXPECT_EQ(c.Replans(), 1u);

  // Runtime reports a successful migration: controller installs the plan
  // and quarantines further replanning for cooldown_ms of trace time.
  c.OnMigrated(12345, true);
  EXPECT_EQ(c.migrations(), 1u);
  EXPECT_EQ(c.rejected(), 0u);
  EXPECT_EQ(c.current(), next);
  ASSERT_EQ(c.pause_us().size(), 1u);
  EXPECT_EQ(c.pause_us()[0], 12345u);
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kCooldown);

  // Drift reports inside the cooldown window are ignored.
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), now + 1), nullptr);
  EXPECT_EQ(c.Replans(), 1u);
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kCooldown);

  // After the cooldown the controller re-arms (back to Stable).
  EXPECT_EQ(c.OnDriftReport({}, now + policy.cooldown_ms + 1), nullptr);
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kStable);
}

TEST(AdaptControllerTest, NoOpReplanIsRejectedIntoCooldown) {
  Scenario s(kRateSensitiveSpec);
  AdaptPolicy policy;
  policy.confirm_reports = 1;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  uint64_t now = 250;
  // Drifted verdict whose streams carry no usable correction (observed ==
  // expected): the replan reproduces the same placement, which the diff
  // reports as a no-op — rejected, never handed to the runtime.
  obs::RateDriftDetector::Report r = DriftedReport(2.0, /*b_observed=*/1.0);
  EXPECT_EQ(c.OnDriftReport(r, now), nullptr);
  for (int i = 0; i < 20000; ++i) {
    if (c.OnDriftReport(r, now) != nullptr) {
      FAIL() << "no-op replan must not produce a migration candidate";
    }
    if (!c.transitions().empty() &&
        c.transitions().back().to == AdaptController::State::kCooldown) {
      break;
    }
    now += 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(c.Replans(), 1u);
  EXPECT_EQ(c.migrations(), 0u);
  EXPECT_EQ(c.rejected(), 1u);
  EXPECT_EQ(c.current(), s.dep.get());
}

TEST(AdaptControllerTest, RuntimeRejectionLandsInCooldown) {
  Scenario s(kRateSensitiveSpec);
  AdaptPolicy policy;
  policy.confirm_reports = 1;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  uint64_t now = 250;
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), now), nullptr);
  const Deployment* next = PollUntilReplanned(&c, &now);
  ASSERT_NE(next, nullptr);
  // The runtime refused (e.g. wedged during drain): plan is NOT installed.
  c.OnMigrated(0, false);
  EXPECT_EQ(c.migrations(), 0u);
  EXPECT_EQ(c.rejected(), 1u);
  EXPECT_EQ(c.current(), s.dep.get());
  EXPECT_EQ(c.transitions().back().to, AdaptController::State::kCooldown);
}

TEST(AdaptControllerTest, MigrationBudgetCapsReplanning) {
  Scenario s(kRateSensitiveSpec);
  AdaptPolicy policy;
  policy.confirm_reports = 1;
  policy.cooldown_ms = 0;
  policy.max_migrations = 1;
  AdaptController c(s.spec.workload, s.spec.network, s.dep.get(), policy);
  uint64_t now = 250;
  EXPECT_EQ(c.OnDriftReport(DriftedReport(2.0), now), nullptr);
  const Deployment* next = PollUntilReplanned(&c, &now);
  ASSERT_NE(next, nullptr);
  c.OnMigrated(100, true);
  ASSERT_EQ(c.migrations(), 1u);
  // Budget exhausted: further confirmed drift must not replan again.
  now += 500;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.OnDriftReport(DriftedReport(3.0), now + i), nullptr);
  }
  EXPECT_EQ(c.Replans(), 1u);
}

TEST(AdaptControllerTest, StateNamesAreStable) {
  EXPECT_STREQ(AdaptController::StateName(AdaptController::State::kStable),
               "stable");
  EXPECT_STREQ(AdaptController::StateName(AdaptController::State::kDrifted),
               "drifted");
  EXPECT_STREQ(
      AdaptController::StateName(AdaptController::State::kReplanning),
      "replanning");
  EXPECT_STREQ(AdaptController::StateName(AdaptController::State::kCooldown),
               "cooldown");
}

}  // namespace
}  // namespace muse::adapt
