#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/wire.h"

namespace muse::rt {
namespace {

Event RandomEvent(Rng& rng) {
  Event e;
  e.type = static_cast<EventTypeId>(rng.UniformInt(0, 1 << 20));
  e.origin = static_cast<NodeId>(rng.UniformInt(0, INT32_MAX));
  e.seq = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  e.time = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  for (int i = 0; i < kNumAttrs; ++i) {
    e.attrs[static_cast<size_t>(i)] = rng.UniformInt(INT64_MIN / 2, INT64_MAX / 2);
  }
  return e;
}

SimMessage RandomMessage(Rng& rng, int max_events) {
  SimMessage m;
  m.src_task = static_cast<int>(rng.UniformInt(0, 1 << 20));
  m.dst_task = static_cast<int>(rng.UniformInt(-1, 1 << 20));
  m.channel_seq = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  const int n = static_cast<int>(rng.UniformInt(0, max_events));
  for (int i = 0; i < n; ++i) m.payload.events.push_back(RandomEvent(rng));
  return m;
}

void ExpectEventsEqual(const Event& a, const Event& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.attrs, b.attrs);
}

TEST(RtWireTest, EventRoundTripProperty) {
  Rng rng(101);
  for (int iter = 0; iter < 200; ++iter) {
    const Event e = RandomEvent(rng);
    std::string buf;
    AppendEventFrame(e, &buf);
    ASSERT_EQ(buf.size(), EventFrameBytes());
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kEvent);
    ExpectEventsEqual(frame.value().event, e);
  }
}

TEST(RtWireTest, MessageRoundTripProperty) {
  Rng rng(102);
  for (int iter = 0; iter < 200; ++iter) {
    const SimMessage m = RandomMessage(rng, 8);
    std::string buf;
    AppendMessageFrame(m, &buf);
    ASSERT_EQ(buf.size(), MessageFrameBytes(m.payload));
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kMessage);
    const SimMessage& got = frame.value().message;
    EXPECT_EQ(got.src_task, m.src_task);
    EXPECT_EQ(got.dst_task, m.dst_task);
    EXPECT_EQ(got.channel_seq, m.channel_seq);
    ASSERT_EQ(got.payload.events.size(), m.payload.events.size());
    for (size_t i = 0; i < m.payload.events.size(); ++i) {
      ExpectEventsEqual(got.payload.events[i], m.payload.events[i]);
    }
  }
}

TEST(RtWireTest, PacketRoundTripMixedFrames) {
  Rng rng(103);
  std::string packet;
  std::vector<bool> is_event;
  for (int i = 0; i < 50; ++i) {
    if (rng.Chance(0.5)) {
      AppendEventFrame(RandomEvent(rng), &packet);
      is_event.push_back(true);
    } else {
      AppendMessageFrame(RandomMessage(rng, 4), &packet);
      is_event.push_back(false);
    }
  }
  Result<std::vector<DecodedFrame>> frames = DecodePacket(packet);
  ASSERT_TRUE(frames.ok()) << frames.error().message;
  ASSERT_EQ(frames.value().size(), is_event.size());
  for (size_t i = 0; i < is_event.size(); ++i) {
    EXPECT_EQ(frames.value()[i].kind == FrameKind::kEvent, is_event[i]);
  }
}

// Every strict prefix of a single frame must be rejected as truncated —
// never read out of bounds, never succeed on partial data.
TEST(RtWireTest, AllTruncationsError) {
  Rng rng(104);
  std::string event_buf;
  AppendEventFrame(RandomEvent(rng), &event_buf);
  std::string msg_buf;
  AppendMessageFrame(RandomMessage(rng, 3), &msg_buf);
  for (const std::string& buf : {event_buf, msg_buf}) {
    for (size_t len = 0; len < buf.size(); ++len) {
      size_t consumed = 0;
      Result<DecodedFrame> frame = DecodeFrame(
          reinterpret_cast<const uint8_t*>(buf.data()), len, &consumed);
      EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
    }
  }
}

TEST(RtWireTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // payload_len far beyond the cap: must error out without trying to read
  // (or allocate) 4 GiB.
  const uint8_t buf[8] = {0xf0, 0xff, 0xff, 0xff, 2, 0, 0, 0};
  size_t consumed = 0;
  Result<DecodedFrame> frame = DecodeFrame(buf, sizeof(buf), &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().message.find("oversized"), std::string::npos);
}

TEST(RtWireTest, ZeroLengthFrameRejected) {
  const uint8_t buf[4] = {0, 0, 0, 0};
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(buf, sizeof(buf), &consumed).ok());
}

TEST(RtWireTest, UnknownKindRejected) {
  std::string buf;
  AppendEventFrame(Event{}, &buf);
  buf[4] = static_cast<char>(0x7f);  // corrupt the kind byte
  size_t consumed = 0;
  EXPECT_FALSE(
      DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()), buf.size(),
                  &consumed)
          .ok());
}

TEST(RtWireTest, MessageEventCountMismatchRejected) {
  Rng rng(105);
  SimMessage m = RandomMessage(rng, 0);
  m.payload.events.clear();
  m.payload.events.push_back(Event{});
  std::string buf;
  AppendMessageFrame(m, &buf);
  // Claim one more event than the body carries (offset 4+1+4+4+8 = 21).
  buf[21] = 2;
  size_t consumed = 0;
  Result<DecodedFrame> frame = DecodeFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().message.find("declares"), std::string::npos);
}

// Random garbage must always produce a clean error or a valid decode —
// the decoder is total and ASan/UBSan-clean on arbitrary input.
TEST(RtWireTest, GarbageFuzzNeverCrashes) {
  Rng rng(106);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string buf(len, '\0');
    for (char& c : buf) c = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(buf);  // must not crash or leak; result irrelevant
  }
}

// Bit-flip fuzz over valid packets: mutations either still decode or error
// cleanly, and a decoded packet never mixes bytes across frame boundaries.
TEST(RtWireTest, MutationFuzzNeverCrashes) {
  Rng rng(107);
  for (int iter = 0; iter < 500; ++iter) {
    std::string packet;
    for (int i = 0; i < 5; ++i) {
      if (rng.Chance(0.5)) {
        AppendEventFrame(RandomEvent(rng), &packet);
      } else {
        AppendMessageFrame(RandomMessage(rng, 3), &packet);
      }
    }
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(packet.size()) - 1));
    packet[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(packet);
  }
}

TraceContext RandomContext(Rng& rng) {
  TraceContext ctx;
  ctx.trace_id = static_cast<uint64_t>(rng.UniformInt(1, INT64_MAX));
  ctx.sent_us = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  return ctx;
}

// Traced frames round-trip both the body and the trace context.
TEST(RtWireTest, TracedEventRoundTripProperty) {
  Rng rng(108);
  for (int iter = 0; iter < 200; ++iter) {
    const Event e = RandomEvent(rng);
    const TraceContext ctx = RandomContext(rng);
    std::string buf;
    AppendEventFrame(e, ctx, &buf);
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kEventTraced);
    EXPECT_EQ(frame.value().trace.trace_id, ctx.trace_id);
    EXPECT_EQ(frame.value().trace.sent_us, ctx.sent_us);
    ExpectEventsEqual(frame.value().event, e);
  }
}

TEST(RtWireTest, TracedMessageRoundTripProperty) {
  Rng rng(109);
  for (int iter = 0; iter < 200; ++iter) {
    const SimMessage m = RandomMessage(rng, 8);
    const TraceContext ctx = RandomContext(rng);
    std::string buf;
    AppendMessageFrame(m, ctx, &buf);
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kMessageTraced);
    EXPECT_EQ(frame.value().trace.trace_id, ctx.trace_id);
    EXPECT_EQ(frame.value().trace.sent_us, ctx.sent_us);
    const SimMessage& got = frame.value().message;
    EXPECT_EQ(got.src_task, m.src_task);
    EXPECT_EQ(got.dst_task, m.dst_task);
    EXPECT_EQ(got.channel_seq, m.channel_seq);
    ASSERT_EQ(got.payload.events.size(), m.payload.events.size());
    for (size_t i = 0; i < m.payload.events.size(); ++i) {
      ExpectEventsEqual(got.payload.events[i], m.payload.events[i]);
    }
  }
}

// The version gate: an untraced context must encode the legacy v1 frame
// byte-for-byte, so runtimes without tracing enabled put nothing new on
// the wire and old decoders keep working unchanged.
TEST(RtWireTest, UntracedContextEncodesLegacyFrameExactly) {
  Rng rng(110);
  const TraceContext none;  // trace_id == 0 means "not sampled"
  ASSERT_FALSE(none.traced());
  for (int iter = 0; iter < 50; ++iter) {
    const Event e = RandomEvent(rng);
    std::string legacy, gated;
    AppendEventFrame(e, &legacy);
    AppendEventFrame(e, none, &gated);
    EXPECT_EQ(gated, legacy);

    const SimMessage m = RandomMessage(rng, 4);
    std::string mlegacy, mgated;
    AppendMessageFrame(m, &mlegacy);
    AppendMessageFrame(m, none, &mgated);
    EXPECT_EQ(mgated, mlegacy);
  }
}

// The trace context costs exactly kTraceContextBytes on the wire.
TEST(RtWireTest, TracedFrameSizeIsUntracedPlusContext) {
  Rng rng(111);
  const Event e = RandomEvent(rng);
  const SimMessage m = RandomMessage(rng, 5);
  const TraceContext ctx = RandomContext(rng);
  std::string plain, traced;
  AppendEventFrame(e, &plain);
  AppendEventFrame(e, ctx, &traced);
  EXPECT_EQ(traced.size(), plain.size() + kTraceContextBytes);
  plain.clear();
  traced.clear();
  AppendMessageFrame(m, &plain);
  AppendMessageFrame(m, ctx, &traced);
  EXPECT_EQ(traced.size(), plain.size() + kTraceContextBytes);
}

// Truncation sweep over traced frames: every strict prefix must error.
TEST(RtWireTest, TracedFrameTruncationsError) {
  Rng rng(112);
  const TraceContext ctx = RandomContext(rng);
  std::string event_buf;
  AppendEventFrame(RandomEvent(rng), ctx, &event_buf);
  std::string msg_buf;
  AppendMessageFrame(RandomMessage(rng, 3), ctx, &msg_buf);
  for (const std::string& buf : {event_buf, msg_buf}) {
    for (size_t len = 0; len < buf.size(); ++len) {
      size_t consumed = 0;
      Result<DecodedFrame> frame = DecodeFrame(
          reinterpret_cast<const uint8_t*>(buf.data()), len, &consumed);
      EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
    }
  }
}

// Bit-flip fuzz over packets that mix traced and untraced frames.
TEST(RtWireTest, TracedMutationFuzzNeverCrashes) {
  Rng rng(113);
  for (int iter = 0; iter < 500; ++iter) {
    std::string packet;
    for (int i = 0; i < 5; ++i) {
      const bool traced = rng.Chance(0.5);
      const TraceContext ctx = traced ? RandomContext(rng) : TraceContext{};
      if (rng.Chance(0.5)) {
        AppendEventFrame(RandomEvent(rng), ctx, &packet);
      } else {
        AppendMessageFrame(RandomMessage(rng, 3), ctx, &packet);
      }
    }
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(packet.size()) - 1));
    packet[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(packet);
  }
}

}  // namespace
}  // namespace muse::rt
