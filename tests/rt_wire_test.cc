#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/wire.h"

namespace muse::rt {
namespace {

Event RandomEvent(Rng& rng) {
  Event e;
  e.type = static_cast<EventTypeId>(rng.UniformInt(0, 1 << 20));
  e.origin = static_cast<NodeId>(rng.UniformInt(0, INT32_MAX));
  e.seq = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  e.time = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  for (int i = 0; i < kNumAttrs; ++i) {
    e.attrs[static_cast<size_t>(i)] = rng.UniformInt(INT64_MIN / 2, INT64_MAX / 2);
  }
  return e;
}

SimMessage RandomMessage(Rng& rng, int max_events) {
  SimMessage m;
  m.src_task = static_cast<int>(rng.UniformInt(0, 1 << 20));
  m.dst_task = static_cast<int>(rng.UniformInt(-1, 1 << 20));
  m.channel_seq = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  const int n = static_cast<int>(rng.UniformInt(0, max_events));
  for (int i = 0; i < n; ++i) m.payload.events.push_back(RandomEvent(rng));
  return m;
}

void ExpectEventsEqual(const Event& a, const Event& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.attrs, b.attrs);
}

TEST(RtWireTest, EventRoundTripProperty) {
  Rng rng(101);
  for (int iter = 0; iter < 200; ++iter) {
    const Event e = RandomEvent(rng);
    std::string buf;
    AppendEventFrame(e, &buf);
    ASSERT_EQ(buf.size(), EventFrameBytes());
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kEvent);
    ExpectEventsEqual(frame.value().event, e);
  }
}

TEST(RtWireTest, MessageRoundTripProperty) {
  Rng rng(102);
  for (int iter = 0; iter < 200; ++iter) {
    const SimMessage m = RandomMessage(rng, 8);
    std::string buf;
    AppendMessageFrame(m, &buf);
    ASSERT_EQ(buf.size(), MessageFrameBytes(m.payload));
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kMessage);
    const SimMessage& got = frame.value().message;
    EXPECT_EQ(got.src_task, m.src_task);
    EXPECT_EQ(got.dst_task, m.dst_task);
    EXPECT_EQ(got.channel_seq, m.channel_seq);
    ASSERT_EQ(got.payload.events.size(), m.payload.events.size());
    for (size_t i = 0; i < m.payload.events.size(); ++i) {
      ExpectEventsEqual(got.payload.events[i], m.payload.events[i]);
    }
  }
}

TEST(RtWireTest, PacketRoundTripMixedFrames) {
  Rng rng(103);
  std::string packet;
  std::vector<bool> is_event;
  for (int i = 0; i < 50; ++i) {
    if (rng.Chance(0.5)) {
      AppendEventFrame(RandomEvent(rng), &packet);
      is_event.push_back(true);
    } else {
      AppendMessageFrame(RandomMessage(rng, 4), &packet);
      is_event.push_back(false);
    }
  }
  Result<std::vector<DecodedFrame>> frames = DecodePacket(packet);
  ASSERT_TRUE(frames.ok()) << frames.error().message;
  ASSERT_EQ(frames.value().size(), is_event.size());
  for (size_t i = 0; i < is_event.size(); ++i) {
    EXPECT_EQ(frames.value()[i].kind == FrameKind::kEvent, is_event[i]);
  }
}

// Every strict prefix of a single frame must be rejected as truncated —
// never read out of bounds, never succeed on partial data.
TEST(RtWireTest, AllTruncationsError) {
  Rng rng(104);
  std::string event_buf;
  AppendEventFrame(RandomEvent(rng), &event_buf);
  std::string msg_buf;
  AppendMessageFrame(RandomMessage(rng, 3), &msg_buf);
  for (const std::string& buf : {event_buf, msg_buf}) {
    for (size_t len = 0; len < buf.size(); ++len) {
      size_t consumed = 0;
      Result<DecodedFrame> frame = DecodeFrame(
          reinterpret_cast<const uint8_t*>(buf.data()), len, &consumed);
      EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
    }
  }
}

TEST(RtWireTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // payload_len far beyond the cap: must error out without trying to read
  // (or allocate) 4 GiB.
  const uint8_t buf[8] = {0xf0, 0xff, 0xff, 0xff, 2, 0, 0, 0};
  size_t consumed = 0;
  Result<DecodedFrame> frame = DecodeFrame(buf, sizeof(buf), &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().message.find("oversized"), std::string::npos);
}

TEST(RtWireTest, ZeroLengthFrameRejected) {
  const uint8_t buf[4] = {0, 0, 0, 0};
  size_t consumed = 0;
  EXPECT_FALSE(DecodeFrame(buf, sizeof(buf), &consumed).ok());
}

TEST(RtWireTest, UnknownKindRejected) {
  std::string buf;
  AppendEventFrame(Event{}, &buf);
  buf[4] = static_cast<char>(0x7f);  // corrupt the kind byte
  size_t consumed = 0;
  EXPECT_FALSE(
      DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()), buf.size(),
                  &consumed)
          .ok());
}

TEST(RtWireTest, MessageEventCountMismatchRejected) {
  Rng rng(105);
  SimMessage m = RandomMessage(rng, 0);
  m.payload.events.clear();
  m.payload.events.push_back(Event{});
  std::string buf;
  AppendMessageFrame(m, &buf);
  // Claim one more event than the body carries (offset 4+1+4+4+8 = 21).
  buf[21] = 2;
  size_t consumed = 0;
  Result<DecodedFrame> frame = DecodeFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().message.find("declares"), std::string::npos);
}

// Random garbage must always produce a clean error or a valid decode —
// the decoder is total and ASan/UBSan-clean on arbitrary input.
TEST(RtWireTest, GarbageFuzzNeverCrashes) {
  Rng rng(106);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string buf(len, '\0');
    for (char& c : buf) c = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(buf);  // must not crash or leak; result irrelevant
  }
}

// Bit-flip fuzz over valid packets: mutations either still decode or error
// cleanly, and a decoded packet never mixes bytes across frame boundaries.
TEST(RtWireTest, MutationFuzzNeverCrashes) {
  Rng rng(107);
  for (int iter = 0; iter < 500; ++iter) {
    std::string packet;
    for (int i = 0; i < 5; ++i) {
      if (rng.Chance(0.5)) {
        AppendEventFrame(RandomEvent(rng), &packet);
      } else {
        AppendMessageFrame(RandomMessage(rng, 3), &packet);
      }
    }
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(packet.size()) - 1));
    packet[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(packet);
  }
}

TraceContext RandomContext(Rng& rng) {
  TraceContext ctx;
  ctx.trace_id = static_cast<uint64_t>(rng.UniformInt(1, INT64_MAX));
  ctx.sent_us = static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX));
  return ctx;
}

// Traced frames round-trip both the body and the trace context.
TEST(RtWireTest, TracedEventRoundTripProperty) {
  Rng rng(108);
  for (int iter = 0; iter < 200; ++iter) {
    const Event e = RandomEvent(rng);
    const TraceContext ctx = RandomContext(rng);
    std::string buf;
    AppendEventFrame(e, ctx, &buf);
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kEventTraced);
    EXPECT_EQ(frame.value().trace.trace_id, ctx.trace_id);
    EXPECT_EQ(frame.value().trace.sent_us, ctx.sent_us);
    ExpectEventsEqual(frame.value().event, e);
  }
}

TEST(RtWireTest, TracedMessageRoundTripProperty) {
  Rng rng(109);
  for (int iter = 0; iter < 200; ++iter) {
    const SimMessage m = RandomMessage(rng, 8);
    const TraceContext ctx = RandomContext(rng);
    std::string buf;
    AppendMessageFrame(m, ctx, &buf);
    size_t consumed = 0;
    Result<DecodedFrame> frame = DecodeFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kMessageTraced);
    EXPECT_EQ(frame.value().trace.trace_id, ctx.trace_id);
    EXPECT_EQ(frame.value().trace.sent_us, ctx.sent_us);
    const SimMessage& got = frame.value().message;
    EXPECT_EQ(got.src_task, m.src_task);
    EXPECT_EQ(got.dst_task, m.dst_task);
    EXPECT_EQ(got.channel_seq, m.channel_seq);
    ASSERT_EQ(got.payload.events.size(), m.payload.events.size());
    for (size_t i = 0; i < m.payload.events.size(); ++i) {
      ExpectEventsEqual(got.payload.events[i], m.payload.events[i]);
    }
  }
}

// The version gate: an untraced context must encode the legacy v1 frame
// byte-for-byte, so runtimes without tracing enabled put nothing new on
// the wire and old decoders keep working unchanged.
TEST(RtWireTest, UntracedContextEncodesLegacyFrameExactly) {
  Rng rng(110);
  const TraceContext none;  // trace_id == 0 means "not sampled"
  ASSERT_FALSE(none.traced());
  for (int iter = 0; iter < 50; ++iter) {
    const Event e = RandomEvent(rng);
    std::string legacy, gated;
    AppendEventFrame(e, &legacy);
    AppendEventFrame(e, none, &gated);
    EXPECT_EQ(gated, legacy);

    const SimMessage m = RandomMessage(rng, 4);
    std::string mlegacy, mgated;
    AppendMessageFrame(m, &mlegacy);
    AppendMessageFrame(m, none, &mgated);
    EXPECT_EQ(mgated, mlegacy);
  }
}

// The trace context costs exactly kTraceContextBytes on the wire.
TEST(RtWireTest, TracedFrameSizeIsUntracedPlusContext) {
  Rng rng(111);
  const Event e = RandomEvent(rng);
  const SimMessage m = RandomMessage(rng, 5);
  const TraceContext ctx = RandomContext(rng);
  std::string plain, traced;
  AppendEventFrame(e, &plain);
  AppendEventFrame(e, ctx, &traced);
  EXPECT_EQ(traced.size(), plain.size() + kTraceContextBytes);
  plain.clear();
  traced.clear();
  AppendMessageFrame(m, &plain);
  AppendMessageFrame(m, ctx, &traced);
  EXPECT_EQ(traced.size(), plain.size() + kTraceContextBytes);
}

// Truncation sweep over traced frames: every strict prefix must error.
TEST(RtWireTest, TracedFrameTruncationsError) {
  Rng rng(112);
  const TraceContext ctx = RandomContext(rng);
  std::string event_buf;
  AppendEventFrame(RandomEvent(rng), ctx, &event_buf);
  std::string msg_buf;
  AppendMessageFrame(RandomMessage(rng, 3), ctx, &msg_buf);
  for (const std::string& buf : {event_buf, msg_buf}) {
    for (size_t len = 0; len < buf.size(); ++len) {
      size_t consumed = 0;
      Result<DecodedFrame> frame = DecodeFrame(
          reinterpret_cast<const uint8_t*>(buf.data()), len, &consumed);
      EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
    }
  }
}

// Bit-flip fuzz over packets that mix traced and untraced frames.
TEST(RtWireTest, TracedMutationFuzzNeverCrashes) {
  Rng rng(113);
  for (int iter = 0; iter < 500; ++iter) {
    std::string packet;
    for (int i = 0; i < 5; ++i) {
      const bool traced = rng.Chance(0.5);
      const TraceContext ctx = traced ? RandomContext(rng) : TraceContext{};
      if (rng.Chance(0.5)) {
        AppendEventFrame(RandomEvent(rng), ctx, &packet);
      } else {
        AppendMessageFrame(RandomMessage(rng, 3), ctx, &packet);
      }
    }
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(packet.size()) - 1));
    packet[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)DecodePacket(packet);
  }
}

// --- muse-net: incremental stream reassembly (FrameAssembler) ----------

/// One representative encoded frame of every wire kind, in kind order.
/// Each entry must reassemble byte-identically no matter how the TCP
/// stream slices it.
std::vector<std::pair<std::string, std::string>> OneFrameOfEveryKind() {
  Rng rng(977);
  std::vector<std::pair<std::string, std::string>> frames;
  auto add = [&frames](const char* name) -> std::string* {
    frames.emplace_back(name, std::string());
    return &frames.back().second;
  };
  AppendEventFrame(RandomEvent(rng), add("kEvent"));
  AppendEventFrame(RandomEvent(rng), TraceContext{42, 77},
                   add("kEventTraced"));
  AppendMessageFrame(RandomMessage(rng, 3), add("kMessage"));
  AppendMessageFrame(RandomMessage(rng, 3), TraceContext{43, 78},
                     add("kMessageTraced"));
  {
    std::string inner;
    AppendEventFrame(RandomEvent(rng), &inner);
    AppendMessageFrame(RandomMessage(rng, 2), &inner);
    AppendPacketFrame(3, 7, 123456, 2, inner, add("kPacket"));
  }
  AppendCreditFrame(5, 17, add("kCredit"));
  AppendControlFrame(2, ControlKind::kFlushCollect, add("kControl"));
  AppendAckFrame(ControlKind::kFlushEmit, 4, add("kAck"));
  AppendQuiesceFrame(true, 1000, 999, add("kQuiesce"));
  {
    Match m = Match::Single(RandomEvent(rng));
    AppendSinkMatchFrame(1, m, TraceContext{44, 79}, add("kSinkMatch"));
  }
  AppendHelloFrame(2, 40123, add("kHello"));
  AppendPeersFrame(987654321, {40001, 40002, 40003},
                   {"", "10.0.0.2", "192.168.7.13"}, add("kPeers"));
  AppendReadyFrame(1, add("kReady"));
  AppendStatsFrame({StatEntry{1, 0, 100}, StatEntry{9, 0, 3}},
                   add("kStats"));
  AppendSpanFrame(45, 2, 3, 11, 1, 0, 5000, 250, add("kSpan"));
  AppendByeFrame(0, add("kBye"));
  AppendMigrateFrame(7, 1500, 1100, 3, add("kMigrate"));
  {
    std::vector<Event> events = {RandomEvent(rng), RandomEvent(rng)};
    AppendStateChunkFrame(7, 2, events, add("kStateChunk"));
  }
  return frames;
}

// Every frame kind, split at every byte boundary across two Feed calls,
// must come out of the assembler byte-identical to the encoding — the
// exact property the TCP transport relies on, since the kernel may slice
// a stream anywhere.
TEST(RtWireTest, AssemblerReassemblesEverySplitOfEveryKind) {
  for (const auto& [name, bytes] : OneFrameOfEveryKind()) {
    SCOPED_TRACE(name);
    for (size_t split = 0; split <= bytes.size(); ++split) {
      FrameAssembler assembler;
      assembler.Feed(bytes.data(), split);
      std::string frame;
      if (split < bytes.size()) {
        // Incomplete input must never yield a frame or poison the stream.
        EXPECT_FALSE(assembler.Next(&frame)) << "split " << split;
        EXPECT_FALSE(assembler.poisoned()) << "split " << split;
        assembler.Feed(bytes.data() + split, bytes.size() - split);
      }
      ASSERT_TRUE(assembler.Next(&frame)) << "split " << split;
      EXPECT_EQ(frame, bytes) << "split " << split;
      EXPECT_FALSE(assembler.Next(&frame));
      EXPECT_FALSE(assembler.poisoned());
      EXPECT_EQ(assembler.buffered_bytes(), 0u);
      // The reassembled bytes must also decode as the original kind.
      size_t consumed = 0;
      Result<NetFrame> nf = DecodeNetFrame(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(),
          &consumed);
      ASSERT_TRUE(nf.ok()) << nf.error().message;
      EXPECT_EQ(consumed, bytes.size());
    }
  }
}

// A whole session's worth of back-to-back frames, fed in random chunk
// sizes (including 1-byte drips), reassembles into the same frame
// sequence.
TEST(RtWireTest, AssemblerReassemblesChunkedConcatenations) {
  Rng rng(979);
  const auto kinds = OneFrameOfEveryKind();
  for (int iter = 0; iter < 50; ++iter) {
    std::string stream;
    std::vector<std::string> want;
    for (int i = 0; i < 20; ++i) {
      const auto& [name, bytes] =
          kinds[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(kinds.size()) - 1))];
      stream += bytes;
      want.push_back(bytes);
    }
    FrameAssembler assembler;
    std::vector<std::string> got;
    size_t pos = 0;
    while (pos < stream.size()) {
      const size_t n = std::min<size_t>(
          static_cast<size_t>(rng.UniformInt(1, 7)), stream.size() - pos);
      assembler.Feed(stream.data() + pos, n);
      pos += n;
      std::string frame;
      while (assembler.Next(&frame)) got.push_back(frame);
    }
    ASSERT_FALSE(assembler.poisoned());
    EXPECT_EQ(got, want);
    EXPECT_EQ(assembler.frames_out(), want.size());
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

// Garbage must reject deterministically: a zero or oversized length
// prefix poisons the stream permanently — no resync heuristic, because
// any resync would depend on how the stream happened to be segmented.
TEST(RtWireTest, AssemblerPoisonsOnGarbageDeterministically) {
  {
    FrameAssembler assembler;
    const char zeros[4] = {0, 0, 0, 0};
    assembler.Feed(zeros, sizeof(zeros));
    std::string frame;
    EXPECT_FALSE(assembler.Next(&frame));
    EXPECT_TRUE(assembler.poisoned());
    EXPECT_FALSE(assembler.error().empty());
    // Poisoned is terminal: further feeds are ignored.
    std::string good;
    AppendByeFrame(0, &good);
    assembler.Feed(good.data(), good.size());
    EXPECT_FALSE(assembler.Next(&frame));
    EXPECT_TRUE(assembler.poisoned());
  }
  {
    // Oversized prefix, dripped one byte at a time: poisoning must not
    // depend on segmentation.
    std::string huge(4, '\0');
    const uint32_t len = kMaxFramePayloadBytes + 1;
    for (int i = 0; i < 4; ++i) {
      huge[static_cast<size_t>(i)] =
          static_cast<char>((len >> (8 * i)) & 0xff);
    }
    FrameAssembler assembler;
    std::string frame;
    for (char c : huge) {
      assembler.Feed(&c, 1);
      EXPECT_FALSE(assembler.Next(&frame));
    }
    EXPECT_TRUE(assembler.poisoned());
  }
  {
    // A valid frame before the garbage still comes out; the poison hits
    // only when the assembler reaches the bad prefix.
    std::string stream;
    AppendCreditFrame(1, 2, &stream);
    const std::string good = stream;
    stream.append(4, '\0');
    FrameAssembler assembler;
    assembler.Feed(stream.data(), stream.size());
    std::string frame;
    ASSERT_TRUE(assembler.Next(&frame));
    EXPECT_EQ(frame, good);
    EXPECT_FALSE(assembler.Next(&frame));
    EXPECT_TRUE(assembler.poisoned());
  }
}

// Random garbage bytes through the assembler + DecodeNetFrame never
// crash, and the outcome is deterministic: feeding the identical bytes
// again produces the identical frame/poison sequence.
TEST(RtWireTest, AssemblerGarbageFuzzIsDeterministic) {
  Rng rng(983);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 256));
    std::string bytes;
    for (int i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    auto run = [&bytes]() {
      FrameAssembler assembler;
      assembler.Feed(bytes.data(), bytes.size());
      std::vector<std::string> frames;
      std::string frame;
      while (assembler.Next(&frame)) {
        frames.push_back(frame);
        size_t consumed = 0;
        (void)DecodeNetFrame(
            reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
            &consumed);
      }
      return std::make_pair(frames, assembler.poisoned());
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first, second);
  }
}

// --- muse-net kPeers host directory / muse-adapt migration frames -------

TEST(RtWireTest, PeersHostsRoundTrip) {
  std::string buf;
  AppendPeersFrame(555, {40001, 40002, 40003},
                   {"", "10.1.2.3", "192.168.200.250"}, &buf);
  size_t consumed = 0;
  Result<NetFrame> frame = DecodeNetFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(consumed, buf.size());
  ASSERT_EQ(frame.value().kind, FrameKind::kPeers);
  EXPECT_EQ(frame.value().coord_now_us, 555u);
  EXPECT_EQ(frame.value().peer_ports,
            (std::vector<uint32_t>{40001, 40002, 40003}));
  EXPECT_EQ(frame.value().peer_hosts,
            (std::vector<std::string>{"", "10.1.2.3", "192.168.200.250"}));
}

// An empty hosts vector is the all-defaults directory: every decoded host
// is the empty string (= 127.0.0.1), and the hosts vector stays parallel
// to the ports.
TEST(RtWireTest, PeersEmptyHostsVectorDecodesAsDefaults) {
  std::string buf;
  AppendPeersFrame(1, {40001, 40002}, {}, &buf);
  size_t consumed = 0;
  Result<NetFrame> frame = DecodeNetFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  ASSERT_EQ(frame.value().peer_hosts.size(), frame.value().peer_ports.size());
  for (const std::string& h : frame.value().peer_hosts) EXPECT_TRUE(h.empty());
}

// Hosts longer than a u8 length can express are truncated at encode time,
// never overrun on the wire.
TEST(RtWireTest, PeersOverlongHostTruncatedTo255) {
  const std::string host(400, 'x');
  std::string buf;
  AppendPeersFrame(2, {40001}, {host}, &buf);
  size_t consumed = 0;
  Result<NetFrame> frame = DecodeNetFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  ASSERT_EQ(frame.value().peer_hosts.size(), 1u);
  EXPECT_EQ(frame.value().peer_hosts[0], std::string(255, 'x'));
}

// A host_len byte claiming more bytes than the frame carries must reject
// cleanly — the decoder never reads past the payload.
TEST(RtWireTest, PeersHostLenOverrunRejected) {
  std::string buf;
  AppendPeersFrame(3, {40001}, {"ab"}, &buf);
  // Layout: u32 len, u8 kind, u64 coord_now, u32 count, u32 port,
  // u8 host_len — the host_len byte sits at offset 21.
  buf[21] = static_cast<char>(200);
  size_t consumed = 0;
  EXPECT_FALSE(DecodeNetFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                              buf.size(), &consumed)
                   .ok());
}

TEST(RtWireTest, MigrateFrameRoundTrip) {
  std::string buf;
  AppendMigrateFrame(42, 12345, 1100, 7, &buf);
  size_t consumed = 0;
  Result<NetFrame> frame = DecodeNetFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(consumed, buf.size());
  ASSERT_EQ(frame.value().kind, FrameKind::kMigrate);
  EXPECT_EQ(frame.value().migration_id, 42u);
  EXPECT_EQ(frame.value().barrier_ms, 12345u);
  EXPECT_EQ(frame.value().horizon_ms, 1100u);
  EXPECT_EQ(frame.value().state_chunks, 7u);
}

TEST(RtWireTest, StateChunkRoundTripProperty) {
  Rng rng(984);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Event> events;
    const int n = static_cast<int>(rng.UniformInt(0, 12));
    for (int i = 0; i < n; ++i) events.push_back(RandomEvent(rng));
    std::string buf;
    AppendStateChunkFrame(9000 + static_cast<uint64_t>(iter), 3, events,
                          &buf);
    size_t consumed = 0;
    Result<NetFrame> frame = DecodeNetFrame(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(frame.ok()) << frame.error().message;
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(frame.value().kind, FrameKind::kStateChunk);
    EXPECT_EQ(frame.value().migration_id, 9000u + static_cast<uint64_t>(iter));
    EXPECT_EQ(frame.value().state_node, 3u);
    ASSERT_EQ(frame.value().state_events.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      ExpectEventsEqual(frame.value().state_events[i], events[i]);
    }
  }
}

// A chunk claiming more events than its body carries must reject.
TEST(RtWireTest, StateChunkEventCountMismatchRejected) {
  std::vector<Event> events = {Event{}};
  std::string buf;
  AppendStateChunkFrame(1, 0, events, &buf);
  // Layout: u32 len, u8 kind, u64 migration_id, u32 node, u32 count —
  // the count's low byte sits at offset 17.
  buf[17] = 2;
  size_t consumed = 0;
  EXPECT_FALSE(DecodeNetFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                              buf.size(), &consumed)
                   .ok());
}

// The migration kinds are control plane only: the data-plane decoder that
// workers run on inbox packets must reject them like every kind >= 5.
TEST(RtWireTest, DataPlaneDecoderRejectsMigrationKinds) {
  std::string migrate;
  AppendMigrateFrame(1, 2, 3, 4, &migrate);
  std::string chunk;
  AppendStateChunkFrame(1, 0, {Event{}}, &chunk);
  for (const std::string& buf : {migrate, chunk}) {
    size_t consumed = 0;
    EXPECT_FALSE(DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size(), &consumed)
                     .ok());
  }
}

// MaxStateChunkEvents is exactly the largest chunk that fits the frame
// payload cap — one event more would cross kMaxFramePayloadBytes.
TEST(RtWireTest, MaxStateChunkEventsSaturatesPayloadCap) {
  const size_t cap = MaxStateChunkEvents();
  ASSERT_GT(cap, 0u);
  std::vector<Event> events(cap);
  std::string buf;
  AppendStateChunkFrame(1, 0, events, &buf);
  // Payload = everything after the 4-byte length prefix.
  const size_t payload = buf.size() - 4;
  EXPECT_LE(payload, kMaxFramePayloadBytes);
  // The frame at the cap must still decode.
  size_t consumed = 0;
  Result<NetFrame> frame = DecodeNetFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(frame.value().state_events.size(), cap);
  // One more event overflows the cap, which the decoder rejects.
  events.push_back(Event{});
  std::string over;
  AppendStateChunkFrame(1, 0, events, &over);
  EXPECT_GT(over.size() - 4, kMaxFramePayloadBytes);
  EXPECT_FALSE(DecodeNetFrame(reinterpret_cast<const uint8_t*>(over.data()),
                              over.size(), &consumed)
                   .ok());
}

// Every strict prefix of every control-plane frame kind must reject —
// the DecodeNetFrame analogue of AllTruncationsError.
TEST(RtWireTest, NetFrameTruncationsError) {
  for (const auto& [name, bytes] : OneFrameOfEveryKind()) {
    SCOPED_TRACE(name);
    for (size_t len = 0; len < bytes.size(); ++len) {
      size_t consumed = 0;
      Result<NetFrame> frame = DecodeNetFrame(
          reinterpret_cast<const uint8_t*>(bytes.data()), len, &consumed);
      EXPECT_FALSE(frame.ok()) << "prefix of " << len << " bytes decoded";
    }
  }
}

// Bit-flip fuzz over the new control frames: mutations decode or error,
// never crash (ASan/UBSan-clean on arbitrary mutation).
TEST(RtWireTest, MigrationFrameMutationFuzzNeverCrashes) {
  Rng rng(985);
  for (int iter = 0; iter < 500; ++iter) {
    std::string buf;
    const int pick = static_cast<int>(rng.UniformInt(0, 2));
    if (pick == 0) {
      AppendMigrateFrame(static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX)),
                         static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX)),
                         static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX)),
                         static_cast<uint32_t>(rng.UniformInt(0, INT32_MAX)),
                         &buf);
    } else if (pick == 1) {
      std::vector<Event> events;
      const int n = static_cast<int>(rng.UniformInt(0, 5));
      for (int i = 0; i < n; ++i) events.push_back(RandomEvent(rng));
      AppendStateChunkFrame(static_cast<uint64_t>(rng.UniformInt(0, 1 << 20)),
                            static_cast<uint32_t>(rng.UniformInt(0, 64)),
                            events, &buf);
    } else {
      std::vector<uint32_t> ports;
      std::vector<std::string> hosts;
      const int n = static_cast<int>(rng.UniformInt(0, 5));
      for (int i = 0; i < n; ++i) {
        ports.push_back(static_cast<uint32_t>(rng.UniformInt(1024, 65535)));
        hosts.push_back(rng.Chance(0.5) ? "" : "10.0.0.1");
      }
      AppendPeersFrame(static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX)),
                       ports, hosts, &buf);
    }
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(buf.size()) - 1));
    buf[pos] = static_cast<char>(rng.UniformInt(0, 255));
    size_t consumed = 0;
    (void)DecodeNetFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                         buf.size(), &consumed);
  }
}

}  // namespace
}  // namespace muse::rt
