#include "src/common/typeset.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace muse {
namespace {

TEST(TypeSetTest, EmptyByDefault) {
  TypeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.Contains(0));
}

TEST(TypeSetTest, InsertRemoveContains) {
  TypeSet s;
  s.Insert(3);
  s.Insert(17);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(17));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.size(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.size(), 1);
  s.Remove(3);  // idempotent
  EXPECT_EQ(s.size(), 1);
}

TEST(TypeSetTest, InitializerList) {
  TypeSet s = {1, 5, 9};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(9));
}

TEST(TypeSetTest, OfAndFirstN) {
  EXPECT_EQ(TypeSet::Of(7), TypeSet({7}));
  EXPECT_EQ(TypeSet::FirstN(3), TypeSet({0, 1, 2}));
  EXPECT_EQ(TypeSet::FirstN(0), TypeSet());
  EXPECT_EQ(TypeSet::FirstN(64).size(), 64);
}

TEST(TypeSetTest, SetAlgebra) {
  TypeSet a = {1, 2, 3};
  TypeSet b = {3, 4};
  EXPECT_EQ(a.Union(b), TypeSet({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), TypeSet({3}));
  EXPECT_EQ(a.Minus(b), TypeSet({1, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(TypeSet({5})));
}

TEST(TypeSetTest, SubsetRelations) {
  TypeSet a = {1, 2};
  TypeSet b = {1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(b.ContainsAll(a));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(TypeSetTest, IterationIsSortedAscending) {
  TypeSet s = {9, 2, 40, 0};
  std::vector<EventTypeId> got;
  for (EventTypeId t : s) got.push_back(t);
  EXPECT_EQ(got, (std::vector<EventTypeId>{0, 2, 9, 40}));
}

TEST(TypeSetTest, FirstReturnsLowest) {
  EXPECT_EQ(TypeSet({5, 3, 60}).First(), 3u);
}

TEST(TypeSetTest, ToString) {
  EXPECT_EQ(TypeSet({1, 3}).ToString(), "{1,3}");
  EXPECT_EQ(TypeSet().ToString(), "{}");
}

TEST(TypeSetTest, SubsetEnumerationCountsAndUniqueness) {
  TypeSet s = {0, 2, 5, 7};
  std::set<uint64_t> seen;
  ForEachNonEmptySubset(s, [&](TypeSet sub) {
    EXPECT_TRUE(sub.IsSubsetOf(s));
    EXPECT_FALSE(sub.empty());
    EXPECT_TRUE(seen.insert(sub.bits()).second);
  });
  EXPECT_EQ(seen.size(), 15u);  // 2^4 - 1
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, EnumeratesAllNonEmptySubsets) {
  int n = GetParam();
  int count = 0;
  ForEachNonEmptySubset(TypeSet::FirstN(n), [&](TypeSet) { ++count; });
  EXPECT_EQ(count, (1 << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetCountTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

}  // namespace
}  // namespace muse
