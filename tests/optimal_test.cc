#include "src/core/optimal.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

TEST(ExhaustiveTest, CorrectOnPaperExample) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);
  net.SetRate(0, 100);
  net.SetRate(1, 100);
  net.SetRate(2, 1);
  ProjectionCatalog cat(q, net);
  PlanResult r = ExhaustivePlan(cat);
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(r.graph, cat, &why)) << why;
  EXPECT_LE(r.cost, CentralizedCost(net, q.PrimitiveTypes()));
}

TEST(ExhaustiveTest, NeverWorseThanAmuseOnRandomInstances) {
  // ExhaustivePlan searches a superset of aMuSE's plan space.
  Rng rng(13);
  SelectivityModel model(4, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 1;
  qopts.avg_primitives = 3;
  qopts.num_types = 4;
  NetworkGenOptions nopts;
  nopts.num_nodes = 4;
  nopts.num_types = 4;
  for (int round = 0; round < 8; ++round) {
    Network net = MakeRandomNetwork(nopts, rng);
    std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
    ProjectionCatalog cat(wl[0], net);
    PlanResult opt = ExhaustivePlan(cat);
    PlanResult amuse = PlanQuery(cat);
    PlannerOptions star_opts;
    star_opts.star = true;
    PlanResult star = PlanQuery(cat, star_opts);

    std::string why;
    ASSERT_TRUE(IsCorrectPlan(opt.graph, cat, &why)) << why;
    EXPECT_LE(opt.cost, amuse.cost * 1.05) << "round " << round;  // per-descriptor DP slack
    EXPECT_LE(opt.cost, star.cost * 1.05) << "round " << round;
    EXPECT_LE(opt.cost,
              CentralizedCost(net, wl[0].PrimitiveTypes()) * 1.0000001);
  }
}

TEST(ExhaustiveTest, AmuseCloseToExhaustiveOnSmallInstances) {
  // aMuSE's pruning should rarely cost much on small instances; record the
  // gap to guard against regressions in plan quality.
  Rng rng(29);
  SelectivityModel model(4, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 1;
  qopts.avg_primitives = 3;
  qopts.num_types = 4;
  NetworkGenOptions nopts;
  nopts.num_nodes = 4;
  nopts.num_types = 4;
  double worst_gap = 1.0;
  for (int round = 0; round < 8; ++round) {
    Network net = MakeRandomNetwork(nopts, rng);
    std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
    ProjectionCatalog cat(wl[0], net);
    double opt = ExhaustivePlan(cat).cost;
    double amuse = PlanQuery(cat).cost;
    if (opt > 0) worst_gap = std::max(worst_gap, amuse / opt);
  }
  EXPECT_LE(worst_gap, 3.0);
}

TEST(ExhaustiveTest, SingleTypeQuery) {
  TypeRegistry reg;
  Query q = ParseQuery("A", &reg).value();
  Network net(2, 1);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  ProjectionCatalog cat(q, net);
  EXPECT_DOUBLE_EQ(ExhaustivePlan(cat).cost, 0.0);
}

TEST(ExhaustiveTest, RejectsLargeInstances) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B, C, D, E, F, G)", &reg).value();
  Network net(3, 7);
  for (NodeId n = 0; n < 3; ++n) {
    for (EventTypeId t = 0; t < 7; ++t) net.AddProducer(n, t);
  }
  ProjectionCatalog cat(q, net);
  EXPECT_DEATH(ExhaustivePlan(cat), "small instances");
}

}  // namespace
}  // namespace muse
