#include "src/workload/query_gen.h"

#include <gtest/gtest.h>

#include "src/workload/selectivity_model.h"

namespace muse {
namespace {

TEST(SelectivityModelTest, SymmetricAndInRange) {
  Rng rng(1);
  SelectivityModel model(10, 0.01, 0.2, rng);
  for (EventTypeId a = 0; a < 10; ++a) {
    for (EventTypeId b = 0; b < 10; ++b) {
      if (a == b) continue;
      double s = model.Get(a, b);
      EXPECT_GE(s, 0.01);
      EXPECT_LE(s, 0.2);
      EXPECT_DOUBLE_EQ(s, model.Get(b, a));
    }
  }
}

TEST(SelectivityModelTest, PredicateCarriesModelSelectivity) {
  Rng rng(2);
  SelectivityModel model(5, 0.01, 0.2, rng);
  Predicate p = model.MakePredicate(1, 3);
  EXPECT_DOUBLE_EQ(p.selectivity, model.Get(1, 3));
  EXPECT_EQ(p.kind, Predicate::Kind::kEquality);
}

TEST(QueryGenTest, WorkloadShape) {
  Rng rng(3);
  SelectivityModel model(15, 0.01, 0.2, rng);
  QueryGenOptions opts;  // paper defaults: 5 queries, ~6 primitives
  std::vector<Query> wl = GenerateWorkload(opts, model, rng);
  ASSERT_EQ(wl.size(), 5u);
  for (const Query& q : wl) {
    std::string why;
    EXPECT_TRUE(q.Validate(&why)) << why << " " << q.ToString();
    EXPECT_GE(q.NumPrimitives(), 2);
    EXPECT_LE(q.NumPrimitives(), 7);
    EXPECT_FALSE(q.ContainsOr());
    EXPECT_FALSE(q.ContainsNegation());
    EXPECT_EQ(q.window(), opts.window_ms);
  }
}

TEST(QueryGenTest, Deterministic) {
  Rng r1(9);
  Rng r2(9);
  SelectivityModel m1(10, 0.01, 0.2, r1);
  SelectivityModel m2(10, 0.01, 0.2, r2);
  QueryGenOptions opts;
  opts.num_types = 10;
  std::vector<Query> w1 = GenerateWorkload(opts, m1, r1);
  std::vector<Query> w2 = GenerateWorkload(opts, m2, r2);
  ASSERT_EQ(w1.size(), w2.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].Signature(), w2[i].Signature());
  }
}

TEST(QueryGenTest, RelatedQueriesShareCompositeOperator) {
  Rng rng(5);
  SelectivityModel model(12, 0.01, 0.2, rng);
  QueryGenOptions opts;
  opts.num_queries = 8;
  opts.num_types = 12;
  opts.share_probability = 1.0;
  std::vector<Query> wl = GenerateWorkload(opts, model, rng);
  // With share probability 1 every multi-primitive query embeds the shared
  // fragment; find a common 2-type subexpression across queries.
  int with_fragment = 0;
  for (const Query& q : wl) {
    for (int i = 0; i < q.num_ops(); ++i) {
      if (q.op(i).kind != OpKind::kPrimitive &&
          q.SubtreeTypes(i).size() == 2) {
        ++with_fragment;
        break;
      }
    }
  }
  EXPECT_GE(with_fragment, 6);
}

TEST(QueryGenTest, PredicatesChainLeafTypes) {
  Rng rng(6);
  SelectivityModel model(10, 0.01, 0.2, rng);
  QueryGenOptions opts;
  opts.num_types = 10;
  opts.predicate_probability = 1.0;
  std::vector<Query> wl = GenerateWorkload(opts, model, rng);
  for (const Query& q : wl) {
    if (q.NumPrimitives() < 3) continue;
    EXPECT_GE(q.predicates().size(), 1u) << q.ToString();
    EXPECT_LT(q.Selectivity(), 1.0);
  }
}

TEST(QueryGenTest, NseqGeneration) {
  Rng rng(7);
  SelectivityModel model(10, 0.01, 0.2, rng);
  std::vector<EventTypeId> types = {0, 1, 2, 3, 4};
  int with_nseq = 0;
  for (int i = 0; i < 20; ++i) {
    Query q = GenerateQuery(types, model, 1000, /*nseq_probability=*/0.9,
                            rng);
    std::string why;
    ASSERT_TRUE(q.Validate(&why)) << why;
    if (q.ContainsNegation()) ++with_nseq;
  }
  EXPECT_GT(with_nseq, 5);
}

TEST(QueryGenTest, GenerateQueryUsesExactlyGivenTypes) {
  Rng rng(8);
  SelectivityModel model(10, 0.01, 0.2, rng);
  std::vector<EventTypeId> types = {2, 5, 7};
  for (int i = 0; i < 10; ++i) {
    Query q = GenerateQuery(types, model, 500, 0, rng);
    EXPECT_EQ(q.PrimitiveTypes(), TypeSet({2, 5, 7}));
  }
}

class WorkloadSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSizeTest, GeneratesRequestedCount) {
  Rng rng(11);
  SelectivityModel model(15, 0.01, 0.2, rng);
  QueryGenOptions opts;
  opts.num_queries = GetParam();
  std::vector<Query> wl = GenerateWorkload(opts, model, rng);
  EXPECT_EQ(static_cast<int>(wl.size()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkloadSizeTest,
                         ::testing::Values(1, 3, 5, 10, 15));

}  // namespace
}  // namespace muse
