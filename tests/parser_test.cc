#include "src/cep/parser.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

TEST(ParserTest, BarePattern) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("SEQ(AND(C, L), F)", &reg);
  ASSERT_TRUE(q.ok()) << q.ok();
  EXPECT_EQ(q->ToString(&reg), "SEQ(AND(C,L),F)");
  EXPECT_EQ(reg.size(), 3);
}

TEST(ParserTest, PrimitiveOnly) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("Temperature", &reg);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumPrimitives(), 1);
}

TEST(ParserTest, NseqPattern) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("NSEQ(A, B, C)", &reg);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ContainsNegation());
  EXPECT_EQ(q->NegatedTypes(), TypeSet::Of(reg.Find("B")));
}

TEST(ParserTest, NseqWrongArity) {
  TypeRegistry reg;
  EXPECT_FALSE(ParseQuery("NSEQ(A, B)", &reg).ok());
  EXPECT_FALSE(ParseQuery("NSEQ(A, B, C, D)", &reg).ok());
}

TEST(ParserTest, OrPattern) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("OR(A, B)", &reg);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ContainsOr());
}

TEST(ParserTest, FullSpecWithWhereAndWithin) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery(
      "PATTERN SEQ(Fail f, Evict e, Kill k, Update u) "
      "WHERE f.uID == e.uID AND e.uID == k.uID AND k.uID == u.uID "
      "WITHIN 30min",
      &reg, 0.05);
  ASSERT_TRUE(q.ok()) << q.error().message;
  EXPECT_EQ(q->NumPrimitives(), 4);
  EXPECT_EQ(q->predicates().size(), 3u);
  EXPECT_EQ(q->window(), 30u * 60 * 1000);
  for (const Predicate& p : q->predicates()) {
    EXPECT_EQ(p.kind, Predicate::Kind::kEquality);
    EXPECT_EQ(p.left_attr, 0);
    EXPECT_DOUBLE_EQ(p.selectivity, 0.05);
  }
}

TEST(ParserTest, JidAliasMapsToAttr1) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery(
      "PATTERN AND(Finish fi, Fail fa) WHERE fi.jID = fa.jID WITHIN 5s",
      &reg);
  ASSERT_TRUE(q.ok()) << q.error().message;
  ASSERT_EQ(q->predicates().size(), 1u);
  EXPECT_EQ(q->predicates()[0].left_attr, 1);
  EXPECT_EQ(q->window(), 5000u);
}

TEST(ParserTest, FilterTermParses) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery(
      "PATTERN SEQ(Fail f, Kill k) WHERE f.a0 % 16 == 0 AND f.a1 == k.a1 "
      "WITHIN 10s",
      &reg);
  ASSERT_TRUE(q.ok()) << q.error().message;
  ASSERT_EQ(q->predicates().size(), 2u);
  const Predicate& f = q->predicates()[0];
  EXPECT_EQ(f.kind, Predicate::Kind::kFilter);
  EXPECT_EQ(f.left_type, reg.Find("Fail"));
  EXPECT_EQ(f.left_attr, 0);
  EXPECT_EQ(f.modulus, 16);
  EXPECT_DOUBLE_EQ(f.selectivity, 1.0 / 16.0);
  EXPECT_EQ(q->predicates()[1].kind, Predicate::Kind::kEquality);
}

TEST(ParserTest, WhereRefsResolveTypeNamesWithoutBinding) {
  // A WHERE reference may name the event type directly instead of a bound
  // variable — the form Query::ToSpecString prints.
  TypeRegistry reg;
  Result<Query> q = ParseQuery(
      "SEQ(Fail, Kill) WHERE Fail.a0 % 4 == 0 AND Fail.a1 == Kill.a1", &reg);
  ASSERT_TRUE(q.ok()) << q.error().message;
  ASSERT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[0].modulus, 4);
  // An unknown name is still an unbound-reference error, not a new type.
  const int before = reg.size();
  EXPECT_FALSE(
      ParseQuery("SEQ(Fail, Kill) WHERE Nope.a0 % 4 == 0", &reg).ok());
  EXPECT_EQ(reg.size(), before);
}

TEST(ParserTest, SolePrimitiveWithWhereClause) {
  // Regression: the variable-binding branch used to swallow WHERE/WITHIN as
  // a variable name after a root-level sole primitive, so this spec failed
  // with trailing input.
  TypeRegistry reg;
  Result<Query> q = ParseQuery("Fail WHERE Fail.a0 % 2 == 0 WITHIN 5s", &reg);
  ASSERT_TRUE(q.ok()) << q.error().message;
  EXPECT_EQ(q->NumPrimitives(), 1);
  ASSERT_EQ(q->predicates().size(), 1u);
  EXPECT_EQ(q->predicates()[0].modulus, 2);
  EXPECT_EQ(q->window(), 5000u);
  // A variable literally named "Where" inside operator parens still binds.
  Result<Query> var = ParseQuery(
      "PATTERN SEQ(Fail Where, Kill k) WHERE Where.a0 == k.a0", &reg);
  ASSERT_TRUE(var.ok()) << var.error().message;
  EXPECT_EQ(var->predicates().size(), 1u);
}

TEST(ParserTest, FilterTermRejectsMalformedForms) {
  TypeRegistry reg;
  ASSERT_TRUE(ParseQuery("SEQ(A, B)", &reg).ok());  // intern A, B
  // Zero modulus, nonzero residue, missing residue.
  EXPECT_FALSE(ParseQuery("SEQ(A, B) WHERE A.a0 % 0 == 0", &reg).ok());
  EXPECT_FALSE(ParseQuery("SEQ(A, B) WHERE A.a0 % 4 == 1", &reg).ok());
  EXPECT_FALSE(ParseQuery("SEQ(A, B) WHERE A.a0 % 4 ==", &reg).ok());
  // Same-type equality must be a parse error, not a CHECK crash.
  EXPECT_FALSE(ParseQuery("SEQ(A, B) WHERE A.a0 == A.a1", &reg).ok());
}

TEST(ParserTest, UnboundVariableRejected) {
  TypeRegistry reg;
  Result<Query> q =
      ParseQuery("PATTERN SEQ(A a, B b) WHERE a.a0 == z.a0", &reg);
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.error().message.find("unbound"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  TypeRegistry reg;
  EXPECT_FALSE(ParseQuery("SEQ(A, B))", &reg).ok());
}

TEST(ParserTest, MissingParenRejected) {
  TypeRegistry reg;
  EXPECT_FALSE(ParseQuery("SEQ(A, B", &reg).ok());
}

TEST(ParserTest, DuplicateTypeRejectedByValidation) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("SEQ(A, A)", &reg);
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, CaseInsensitiveOperators) {
  TypeRegistry reg;
  Result<Query> q = ParseQuery("seq(and(C, L), F)", &reg);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(&reg), "SEQ(AND(C,L),F)");
}

TEST(ParserTest, ReusesRegistryIds) {
  TypeRegistry reg;
  EventTypeId c = reg.Intern("C");
  Result<Query> q = ParseQuery("SEQ(C, F)", &reg);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->PrimitiveTypes().Contains(c));
}

struct DurationCase {
  const char* text;
  uint64_t expected_ms;
};

class DurationTest : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationTest, Parses) {
  Result<uint64_t> d = ParseDuration(GetParam().text);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), GetParam().expected_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Durations, DurationTest,
    ::testing::Values(DurationCase{"100ms", 100}, DurationCase{"5s", 5000},
                      DurationCase{"2m", 120000},
                      DurationCase{"30min", 1800000},
                      DurationCase{"1h", 3600000}));

TEST(DurationTest, RejectsUnknownUnit) {
  EXPECT_FALSE(ParseDuration("5parsecs").ok());
  EXPECT_FALSE(ParseDuration("xyz").ok());
}

}  // namespace
}  // namespace muse
