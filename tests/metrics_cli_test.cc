// muse_metrics flag-parsing contract, tested against the real binary:
// unknown --rt-* flags and malformed values must exit 2 (usage), never
// run with silently-misread options — `--rt-inbox abc` used to parse as
// inbox capacity 0, i.e. an *unbounded* window. A killed cluster daemon
// must surface as a non-zero exit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

/// Runs the muse_metrics binary with `flags` against the shipped robots
/// spec, stdout/stderr discarded; returns the process exit code.
int RunMetrics(const std::string& flags) {
  const std::string cmd = std::string(MUSE_METRICS_BIN) + " " +
                          MUSE_SOURCE_DIR "/examples/specs/robots.spec " +
                          flags + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(MetricsCliTest, UnknownRtFlagIsUsageError) {
  EXPECT_EQ(RunMetrics("--runtime --rt-procceses 2"), 2);  // typo'd flag
  EXPECT_EQ(RunMetrics("--runtime --rt-bogus"), 2);
}

TEST(MetricsCliTest, MalformedValuesAreUsageErrors) {
  EXPECT_EQ(RunMetrics("--runtime --rt-inbox abc"), 2);
  EXPECT_EQ(RunMetrics("--runtime --rt-threads -3"), 2);
  EXPECT_EQ(RunMetrics("--runtime --rt-processes 0"), 2);
  EXPECT_EQ(RunMetrics("--runtime --rt-rate 1e"), 2);
  EXPECT_EQ(RunMetrics("--runtime --rt-kill 1"), 2);      // missing ,ms
  EXPECT_EQ(RunMetrics("--runtime --rt-wedge-ms"), 2);    // missing value
}

TEST(MetricsCliTest, WellFormedRuntimeRunSucceeds) {
  EXPECT_EQ(RunMetrics("--runtime --duration-ms 500 --rt-threads 2"), 0);
}

TEST(MetricsCliTest, ClusterRunSucceedsAndKilledDaemonFails) {
  EXPECT_EQ(RunMetrics("--runtime --duration-ms 500 --rt-processes 2 "
                       "--rt-wedge-ms 10000"),
            0);
  EXPECT_EQ(RunMetrics("--runtime --duration-ms 4000 --rt-processes 2 "
                       "--rt-rate 100 --rt-wedge-ms 1500 --rt-kill 1,200"),
            1);
}

}  // namespace
