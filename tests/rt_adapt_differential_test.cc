// muse-adapt live-migration differential: a runtime whose plan is flipped
// MID-TRACE (amuse <-> centralized <-> oop, compiled from the same
// catalogs) must still produce exactly the single-plan reference match
// sets — across thread counts, transports (in-proc and loopback TCP), and
// crash schedules that straddle the migration barrier. With the huge
// eviction slack both sides run under, the canonical match multiset is a
// pure function of the trace, so any event lost or duplicated by the
// quiesce -> state-transfer -> replay handoff shows up as a diff.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/adapt/plan_diff.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/rt/runtime.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

constexpr uint64_t kHugeSlackMs = 1ULL << 40;

/// One randomized workload/network/trace with all three plan shapes
/// compiled from the SAME catalogs — so any pair is a valid live
/// migration (same queries, same primitive subscriptions).
struct AdaptTriple {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  std::unique_ptr<Deployment> amuse;
  std::unique_ptr<Deployment> oop;
  std::unique_ptr<Deployment> central;

  explicit AdaptTriple(uint64_t seed, double nseq_probability = 0.35)
      : net(1, 1) {
    Rng rng(seed);
    QueryGenOptions qopts;
    qopts.num_queries = 2;
    qopts.avg_primitives = 3;
    qopts.num_types = 4;
    qopts.window_ms = 400;
    qopts.nseq_probability = nseq_probability;
    SelectivityModel model(qopts.num_types, 0.05, 0.3, rng);
    workload = GenerateWorkload(qopts, model, rng);

    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = qopts.num_types;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 6;
    net = MakeRandomNetwork(nopts, rng);

    TraceOptions topts;
    topts.duration_ms = 2500;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(net, topts, rng);

    catalogs = std::make_unique<WorkloadCatalogs>(workload, net);
    amuse = std::make_unique<Deployment>(PlanWorkloadAmuse(*catalogs).combined,
                                         catalogs->Pointers());
    oop = std::make_unique<Deployment>(PlanWorkloadOop(*catalogs).combined,
                                       catalogs->Pointers());
    central = std::make_unique<Deployment>(
        BuildCentralizedPlan(catalogs->Pointers(), /*sink=*/0),
        catalogs->Pointers());
  }
};

/// Deterministic AdaptDriver: hands the runtime a scripted sequence of
/// (flip time, deployment) pairs — the controller-free way to pin the
/// migration machinery itself.
class ScriptedFlip : public rt::AdaptDriver {
 public:
  explicit ScriptedFlip(
      std::vector<std::pair<uint64_t, const Deployment*>> schedule)
      : schedule_(std::move(schedule)) {}

  const Deployment* OnDriftReport(const obs::RateDriftDetector::Report&,
                                  uint64_t trace_now_ms) override {
    if (next_ >= schedule_.size()) return nullptr;
    if (trace_now_ms < schedule_[next_].first) return nullptr;
    return schedule_[next_].second;
  }

  void OnMigrated(uint64_t pause_us, bool ok) override {
    ++next_;  // even a rejected flip is consumed — no retry storm
    if (ok) {
      ++ok_count_;
      pause_us_.push_back(pause_us);
    } else {
      ++rejected_count_;
    }
  }

  uint64_t Replans() const override { return next_; }

  size_t ok_count() const { return ok_count_; }
  size_t rejected_count() const { return rejected_count_; }
  const std::vector<uint64_t>& pause_us() const { return pause_us_; }

 private:
  std::vector<std::pair<uint64_t, const Deployment*>> schedule_;
  size_t next_ = 0;
  size_t ok_count_ = 0;
  size_t rejected_count_ = 0;
  std::vector<uint64_t> pause_us_;
};

std::vector<std::vector<std::string>> KeySets(
    const std::vector<std::vector<Match>>& matches_per_query) {
  std::vector<std::vector<std::string>> keys(matches_per_query.size());
  for (size_t q = 0; q < matches_per_query.size(); ++q) {
    for (const Match& m : matches_per_query[q]) {
      keys[q].push_back(m.Key());
    }
  }
  return keys;
}

std::vector<std::vector<std::string>> SimulatorKeys(
    const AdaptTriple& t, const Deployment& dep,
    const std::vector<std::pair<NodeId, uint64_t>>& failures) {
  SimOptions sim_options;
  sim_options.eval.eviction_slack_ms = kHugeSlackMs;
  sim_options.failures = failures;
  SimReport sim = DistributedSimulator(dep, sim_options).Run(t.trace);
  return KeySets(sim.matches_per_query);
}

/// Runs `start` with the scripted flips and requires the single-plan
/// reference match sets plus a clean migration ledger.
rt::RtReport RunScripted(
    const AdaptTriple& t, const Deployment& start, ScriptedFlip* driver,
    rt::RtTransportKind kind, int num_threads,
    const std::vector<std::pair<NodeId, uint64_t>>& failures,
    size_t expect_migrations,
    const std::vector<std::vector<std::string>>& want) {
  rt::RtOptions options;
  options.num_threads = num_threads;
  options.eval.eviction_slack_ms = kHugeSlackMs;
  options.failures = failures;
  options.transport_kind = kind;
  options.transport.wedge_timeout_ms = 20000;
  options.adapt = driver;
  // Every plan of this network must fit the transport built at startup,
  // whatever subset of nodes the initial plan happens to use.
  options.min_nodes = static_cast<size_t>(t.net.num_nodes());
  rt::RtReport run = rt::RtRuntime(start, options).Run(t.trace);
  EXPECT_FALSE(run.wedged);
  EXPECT_EQ(run.migrations, expect_migrations);
  EXPECT_EQ(run.migration_aborts, 0u);
  EXPECT_EQ(driver->ok_count(), expect_migrations);
  EXPECT_EQ(run.migration_pause_us.size(), expect_migrations);
  EXPECT_EQ(run.matches_per_query.size(), want.size());
  const auto got = KeySets(run.matches_per_query);
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
  return run;
}

// One mid-trace flip between every ordered pair of distinct plan shapes,
// single-shard: the core lose-nothing/duplicate-nothing property.
TEST(RtAdaptDifferentialTest, SingleFlipAgreesAcrossPlanShapePairs) {
  AdaptTriple t(4100);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  const Deployment* shapes[] = {t.amuse.get(), t.central.get(), t.oop.get()};
  const char* names[] = {"amuse", "central", "oop"};
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      SCOPED_TRACE(std::string(names[from]) + " -> " + names[to]);
      ScriptedFlip driver({{1200, shapes[to]}});
      RunScripted(t, *shapes[from], &driver, rt::RtTransportKind::kInProc,
                  /*num_threads=*/0, {}, /*expect_migrations=*/1, want);
    }
  }
}

// All seeds below are pinned to workloads where (a) every plan shape is
// evaluable and (b) the three shapes are pairwise DISTINCT deployments.
// (a): a centralized plan feeds the sink single-primitive parts only, so
// an NSEQ whose middle child is composite has no matching anti part and
// the evaluator rejects the plan at construction — a planner limitation
// that predates migration; the single-plan differential pins seeds the
// same way. (b): for some workloads aMuSE or oOP degenerates to the
// centralized placement, and flipping between identical plans is
// (correctly) rejected as a no-op, which would starve the migration
// counters these tests assert on. Re-scan candidates with:
//   MUSE_DEBUG_SEED=<n> [MUSE_DEBUG_NSEQ=<p>] \
//     rt_adapt_differential_test --gtest_filter='*SeedViability*'
TEST(RtAdaptDifferentialTest, SeedViabilityScan) {
  const char* seed_env = getenv("MUSE_DEBUG_SEED");
  if (!seed_env) GTEST_SKIP() << "set MUSE_DEBUG_SEED to probe a seed";
  const char* nseq_env = getenv("MUSE_DEBUG_NSEQ");
  AdaptTriple t(strtoull(seed_env, nullptr, 10),
                nseq_env ? atof(nseq_env) : 0.35);
  SimulatorKeys(t, *t.amuse, {});
  SimulatorKeys(t, *t.central, {});
  SimulatorKeys(t, *t.oop, {});
  const Deployment* shapes[] = {t.amuse.get(), t.central.get(), t.oop.get()};
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      const adapt::PlanDiff diff =
          adapt::DiffDeployments(*shapes[a], *shapes[b]);
      ASSERT_FALSE(diff.no_op()) << a << "->" << b << ": " << diff.Summary();
      ASSERT_TRUE(diff.primitive_compatible)
          << a << "->" << b << ": " << diff.Summary();
      ASSERT_TRUE(diff.same_queries)
          << a << "->" << b << ": " << diff.Summary();
    }
  }
}

// Several seeds, several flip times — including a flip at time 0 (before
// any event) and one so late the tail after it is almost empty.
TEST(RtAdaptDifferentialTest, FlipTimingSweepAgrees) {
  for (uint64_t seed : {4101, 4102, 4103}) {
    AdaptTriple t(seed);
    const auto want = SimulatorKeys(t, *t.amuse, {});
    for (uint64_t flip_at : {0ULL, 700ULL, 1900ULL}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " flip at " +
                   std::to_string(flip_at));
      ScriptedFlip driver({{flip_at, t.central.get()}});
      RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kInProc, 0, {},
                  1, want);
    }
  }
}

// Two chained migrations (amuse -> centralized -> oop): the second starts
// from replayed state, so errors compound if any step is lossy.
TEST(RtAdaptDifferentialTest, ChainedFlipsAgree) {
  AdaptTriple t(4100);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  ScriptedFlip driver({{800, t.central.get()}, {1700, t.oop.get()}});
  const rt::RtReport run =
      RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kInProc, 0, {},
                  2, want);
  // The handoff really moved state: the ledger is non-trivial.
  EXPECT_GT(run.migration_state_events, 0u);
  EXPECT_GT(run.migration_state_bytes, 0u);
  ASSERT_EQ(driver.pause_us().size(), 2u);
}

// Worker threads multiplex shards while the migration drains and
// restarts them — the TSan target of this file.
TEST(RtAdaptDifferentialTest, ThreadedFlipsAgree) {
  AdaptTriple t(4400);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  for (int threads : {1, 2}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ScriptedFlip driver({{1200, t.oop.get()}});
    RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kInProc, threads,
                {}, 1, want);
  }
}

// Node crashes on both sides of the barrier: crash-replay (within a
// generation) and migration-replay (across generations) compose.
TEST(RtAdaptDifferentialTest, CrashesStraddlingMigrationAgree) {
  for (uint64_t seed : {4107, 4108}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    AdaptTriple t(seed);
    const std::vector<std::pair<NodeId, uint64_t>> failures = {
        {static_cast<NodeId>(seed % 4), 900},
        {static_cast<NodeId>((seed + 2) % 4), 1900}};
    const auto want = SimulatorKeys(t, *t.amuse, failures);
    ScriptedFlip driver({{1400, t.central.get()}});
    RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kInProc, 2,
                failures, 1, want);
  }
}

// The same flip over a real loopback TCP transport: quiesce, executor
// restart, and replay must work when frames cross a socket.
TEST(RtAdaptDifferentialTest, LoopbackTransportFlipsAgree) {
  AdaptTriple t(4600);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  ScriptedFlip driver({{1200, t.central.get()}});
  RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kLoopback, 0, {}, 1,
              want);
}

// NSEQ-heavy workload: negated sequences lean on watermarks and pending
// buffers, the state a migration is most likely to corrupt — pendings
// must be rebuilt by replay, not flushed early by the handoff.
TEST(RtAdaptDifferentialTest, NseqPendingsSurviveMigration) {
  AdaptTriple t(4700, /*nseq_probability=*/1.0);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  ScriptedFlip driver({{1200, t.central.get()}});
  RunScripted(t, *t.amuse, &driver, rt::RtTransportKind::kInProc, 0, {}, 1,
              want);
}

// Flipping to a recompiled copy of the SAME plan is a structural no-op:
// the runtime must refuse the pointless pause and keep running — and the
// refusal must not disturb the match sets.
TEST(RtAdaptDifferentialTest, NoOpFlipIsRejectedWithoutDamage) {
  AdaptTriple t(4800);
  const auto want = SimulatorKeys(t, *t.amuse, {});
  Deployment same(PlanWorkloadAmuse(*t.catalogs).combined,
                  t.catalogs->Pointers());
  ScriptedFlip driver({{1200, &same}});
  rt::RtOptions options;
  options.eval.eviction_slack_ms = kHugeSlackMs;
  options.adapt = &driver;
  options.min_nodes = static_cast<size_t>(t.net.num_nodes());
  rt::RtReport run = rt::RtRuntime(*t.amuse, options).Run(t.trace);
  ASSERT_FALSE(run.wedged);
  EXPECT_EQ(run.migrations, 0u);
  EXPECT_EQ(run.migration_aborts, 1u);
  EXPECT_EQ(driver.rejected_count(), 1u);
  const auto got = KeySets(run.matches_per_query);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
}

// Telemetry contract: a migrated run reports pauses and state volume, and
// the adapt counters land in the exported registry.
TEST(RtAdaptDifferentialTest, MigrationLedgerIsConsistent) {
  AdaptTriple t(4900);
  ScriptedFlip driver({{1000, t.central.get()}});
  rt::RtOptions options;
  options.eval.eviction_slack_ms = kHugeSlackMs;
  options.adapt = &driver;
  options.min_nodes = static_cast<size_t>(t.net.num_nodes());
  rt::RtReport run = rt::RtRuntime(*t.amuse, options).Run(t.trace);
  ASSERT_FALSE(run.wedged);
  ASSERT_EQ(run.migrations, 1u);
  ASSERT_EQ(run.migration_pause_us.size(), 1u);
  EXPECT_GT(run.migration_pause_us[0], 0u);
  EXPECT_EQ(driver.pause_us(), run.migration_pause_us);
  EXPECT_GT(run.migration_state_events, 0u);
  // State bytes at least cover the event bodies that moved.
  EXPECT_GT(run.migration_state_bytes, run.migration_state_events * 40);
  // The summary surfaces the adapt line for humans.
  EXPECT_NE(run.Summary().find("adapt:"), std::string::npos);
}

}  // namespace
}  // namespace muse
