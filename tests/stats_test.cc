#include "src/workload/stats.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/workload/cluster_trace.h"

namespace muse {
namespace {

Event Ev(EventTypeId type, NodeId origin, uint64_t time, int64_t a0) {
  Event e;
  e.type = type;
  e.origin = origin;
  e.time = time;
  e.attrs = {a0, 0};
  return e;
}

TEST(EstimateNetworkTest, RecoversProducersAndRates) {
  std::vector<Event> trace;
  // Type 0 at nodes 0 and 1 (10 events each over 10s -> 1/s per node);
  // type 1 at node 2 (5 events -> 0.5/s).
  for (int i = 0; i < 10; ++i) {
    trace.push_back(Ev(0, 0, i * 1000, 0));
    trace.push_back(Ev(0, 1, i * 1000 + 1, 0));
  }
  for (int i = 0; i < 5; ++i) trace.push_back(Ev(1, 2, i * 2000, 0));
  FinalizeTraceOrder(&trace);

  Network net = EstimateNetworkFromTrace(trace, 10'000, 3, 2);
  EXPECT_EQ(net.NumProducers(0), 2);
  EXPECT_EQ(net.NumProducers(1), 1);
  EXPECT_TRUE(net.Produces(2, 1));
  EXPECT_DOUBLE_EQ(net.Rate(0), 1.0);
  EXPECT_DOUBLE_EQ(net.Rate(1), 0.5);
}

TEST(EstimateNetworkTest, UnseenTypeHasZeroRate) {
  std::vector<Event> trace = {Ev(0, 0, 1, 0)};
  Network net = EstimateNetworkFromTrace(trace, 1000, 2, 3);
  EXPECT_EQ(net.NumProducers(2), 0);
  EXPECT_DOUBLE_EQ(net.Rate(2), 0.0);
}

TEST(EstimateNetworkTest, OutOfRangeEventsIgnored) {
  std::vector<Event> trace = {Ev(0, 0, 1, 0), Ev(9, 0, 2, 0), Ev(0, 9, 3, 0)};
  Network net = EstimateNetworkFromTrace(trace, 1000, 2, 2);
  EXPECT_EQ(net.NumProducers(0), 1);
}

TEST(EstimateNetworkTest, MatchesClusterTraceExtraction) {
  // The cluster trace generator extracts rates the same way; the generic
  // estimator must agree with it.
  ClusterTraceOptions opts;
  opts.num_nodes = 4;
  opts.num_machines = 40;
  opts.duration_ms = 60'000;
  Rng rng(3);
  ClusterTrace ct = GenerateClusterTrace(opts, rng);
  Network est = EstimateNetworkFromTrace(ct.events, ct.duration_ms, 4, 9);
  for (int t = 0; t < 9; ++t) {
    if (ct.network.NumProducers(t) == est.NumProducers(t) &&
        est.NumProducers(t) > 0) {
      EXPECT_NEAR(est.Rate(t), ct.network.Rate(t), ct.network.Rate(t) * 0.01)
          << "type " << t;
    }
  }
}

TEST(PairSelectivityTest, ExactOnConstructedTrace) {
  // 4 a-events and 4 b-events interleaved within the window; keys chosen
  // so exactly 1/4 of pairs agree.
  std::vector<Event> trace;
  for (int i = 0; i < 4; ++i) trace.push_back(Ev(0, 0, 10 + i, i));
  for (int i = 0; i < 4; ++i) trace.push_back(Ev(1, 0, 20 + i, i));
  FinalizeTraceOrder(&trace);
  std::optional<double> sel = EstimatePairSelectivity(trace, 0, 1, 0, 1000);
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.25, 1e-9);  // 4 agreeing of 16 pairs
}

TEST(PairSelectivityTest, WindowLimitsPairs) {
  std::vector<Event> trace = {Ev(0, 0, 0, 7), Ev(1, 0, 5000, 7)};
  FinalizeTraceOrder(&trace);
  // Outside the 1s window: no pairs -> no evidence, not an estimate.
  EXPECT_FALSE(EstimatePairSelectivity(trace, 0, 1, 0, 1000).has_value());
  // Inside a 10s window: the single pair agrees.
  EXPECT_EQ(EstimatePairSelectivity(trace, 0, 1, 0, 10'000),
            std::optional<double>(1.0));
}

TEST(PairSelectivityTest, NoEvidenceDistinctFromObservedOne) {
  // Observed-1.0: every windowed pair agrees on the attribute -> a real
  // estimate of 1.0.
  std::vector<Event> all_agree;
  for (int i = 0; i < 8; ++i) all_agree.push_back(Ev(0, 0, i * 10, 42));
  for (int i = 0; i < 8; ++i) all_agree.push_back(Ev(1, 0, i * 10 + 5, 42));
  FinalizeTraceOrder(&all_agree);
  std::optional<double> observed =
      EstimatePairSelectivity(all_agree, 0, 1, 0, 1000);
  ASSERT_TRUE(observed.has_value());
  EXPECT_DOUBLE_EQ(*observed, 1.0);

  // No-evidence: one of the types never appears at all -> nullopt, so the
  // caller can keep its modeled prior instead of planning as if the
  // predicate filtered nothing.
  std::vector<Event> only_a;
  for (int i = 0; i < 8; ++i) only_a.push_back(Ev(0, 0, i * 10, 42));
  FinalizeTraceOrder(&only_a);
  EXPECT_FALSE(EstimatePairSelectivity(only_a, 0, 1, 0, 1000).has_value());
  EXPECT_FALSE(EstimatePairSelectivity({}, 0, 1, 0, 1000).has_value());
}

TEST(CalibrateTest, NoObservedPairsKeepsModeledPrior) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A a, B b) WHERE a.a0 == b.a0 WITHIN 5s", &reg)
                .value();
  ASSERT_DOUBLE_EQ(q.predicates()[0].selectivity, 0.1);  // parser default

  // The trace only ever shows type A: zero (A, B) pairs. Calibration must
  // leave the prior untouched rather than snapping the selectivity to 1.0.
  std::vector<Event> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(Ev(0, 0, i * 10, i));
  FinalizeTraceOrder(&trace);

  int updated = CalibrateQuerySelectivities(&q, trace, 5000);
  EXPECT_EQ(updated, 0);
  EXPECT_DOUBLE_EQ(q.predicates()[0].selectivity, 0.1);
}

TEST(PairSelectivityTest, UniformKeysApproachInverseCardinality) {
  Rng rng(5);
  Network net(2, 2);
  net.AddProducer(0, 0);
  net.AddProducer(1, 1);
  net.SetRate(0, 50);
  net.SetRate(1, 50);
  TraceOptions topts;
  topts.duration_ms = 30'000;
  topts.attr_cardinality[0] = 10;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);
  std::optional<double> sel = EstimatePairSelectivity(trace, 0, 1, 0, 2000);
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.1, 0.02);  // 1/cardinality
}

TEST(CalibrateTest, UpdatesEqualityPredicates) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A a, B b) WHERE a.a0 == b.a0 WITHIN 5s", &reg)
                .value();
  ASSERT_DOUBLE_EQ(q.predicates()[0].selectivity, 0.1);  // parser default

  std::vector<Event> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(Ev(0, 0, i * 10, i % 2));
  for (int i = 0; i < 20; ++i) trace.push_back(Ev(1, 0, i * 10 + 5, i % 2));
  FinalizeTraceOrder(&trace);

  int updated = CalibrateQuerySelectivities(&q, trace, 5000);
  EXPECT_EQ(updated, 1);
  // Keys alternate 0/1 uniformly: about half of all pairs agree.
  EXPECT_NEAR(q.predicates()[0].selectivity, 0.5, 0.05);
  EXPECT_TRUE(q.Validate());
}

}  // namespace
}  // namespace muse
