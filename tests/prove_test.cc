#include "src/analysis/prove.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/verify.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

/// A small hand-authored deployment: three types across four nodes with a
/// two-operator windowed query, planned with aMuSE. All rates are finite
/// and positive, so a production-grade runtime config proves clean.
struct Env {
  DeploymentSpec spec;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  MuseGraph plan;
  std::unique_ptr<Deployment> dep;

  Env() {
    const char* text = R"(
nodes 4
rate A 10
rate B 5
rate C 2
produce 0 A
produce 1 A B
produce 2 B C
produce 3 C
query SEQ(AND(A a, B b), C c) WITHIN 2s
)";
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(text);
    spec = std::move(parsed.value());
    catalogs = std::make_unique<WorkloadCatalogs>(spec.workload, spec.network);
    plan = PlanWorkloadAmuse(*catalogs).combined;
    dep = std::make_unique<Deployment>(plan, catalogs->Pointers());
  }

  ProveOptions ProductionOptions() const {
    ProveOptions options;
    options.rt.transport.inbox_capacity = 64;
    options.rt.transport.batch_max_frames = 8;
    options.rt.eval.eviction_slack_ms = 2000;
    options.registry = &spec.registry;
    return options;
  }
};

TEST(ProveTest, ProductionConfigCertifiesClean) {
  Env env;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network,
                                      env.ProductionOptions());
  EXPECT_TRUE(proof.certified()) << proof.ToString();
  EXPECT_TRUE(proof.findings.clean()) << proof.ToString();
  ASSERT_EQ(proof.nodes.size(), 4u);
  for (const NodeCertificate& c : proof.nodes) {
    EXPECT_TRUE(c.state_bounded) << "node " << c.node;
    EXPECT_EQ(c.credit_window, 64u);
  }
  // Somewhere state is actually held, so the bound is positive and its
  // derivation non-empty.
  double total = 0;
  for (const NodeCertificate& c : proof.nodes) total += c.state_bound;
  EXPECT_GT(total, 0.0);
}

TEST(ProveTest, UnboundedSlackIsWarnedNotRejected) {
  Env env;
  ProveOptions options = env.ProductionOptions();
  options.rt.eval.eviction_slack_ms = 0;  // the differential default
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network, options);
  EXPECT_TRUE(proof.certified()) << proof.ToString();
  EXPECT_TRUE(proof.findings.HasRule(Rule::kStateUnbounded));
  for (const NodeCertificate& c : proof.nodes) {
    if (!c.state_bounded) {
      EXPECT_NE(c.bound_formula.find("unbounded"), std::string::npos);
    }
  }
}

TEST(ProveTest, BudgetTurnsBoundIntoError) {
  Env env;
  ProveOptions options = env.ProductionOptions();
  options.state_budget = 1;  // nothing real fits in one entry
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network, options);
  EXPECT_FALSE(proof.certified());
  EXPECT_TRUE(proof.findings.HasRule(Rule::kStateBudgetExceeded));
  EXPECT_FALSE(proof.findings.HasRule(Rule::kStateUnbounded));

  // A generous budget admits the same deployment.
  options.state_budget = 100'000'000;
  ProveReport ok = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                   env.spec.network, options);
  EXPECT_TRUE(ok.certified()) << ok.ToString();
}

TEST(ProveTest, PerNodeInboxOverrideBelowBatchIsDeadlock) {
  Env env;
  ProveOptions options = env.ProductionOptions();
  options.rt.transport.node_inbox_capacity = {0, 4, 0, 0};  // 4 < batch 8
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network, options);
  EXPECT_FALSE(proof.certified());
  EXPECT_TRUE(proof.findings.HasRule(Rule::kRtCreditDeadlock));
  EXPECT_EQ(proof.nodes[1].credit_window, 4u);
  EXPECT_EQ(proof.nodes[1].min_credit, 8u);
}

TEST(ProveTest, ClusterShareModelShrinksEffectiveWindow) {
  // A 64-frame window with batch 8 is fine single-process, but a 3-process
  // cluster splits it into 4 sender shares of 16 — still fine — while a
  // 31-frame window's shares of 7 can no longer admit a batch. min_credit
  // must scale to the whole-window figure so the hint stays actionable.
  Env env;
  ProveOptions options = env.ProductionOptions();
  options.rt.transport_kind = rt::RtTransportKind::kCluster;
  options.rt.processes = 3;
  ProveReport ok = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                   env.spec.network, options);
  EXPECT_TRUE(ok.certified()) << ok.ToString();
  for (const NodeCertificate& c : ok.nodes) {
    EXPECT_EQ(c.credit_window, 64u);
    EXPECT_EQ(c.credit_share, 16u);  // 64 / (3 + 1)
    if (c.min_credit > 0) EXPECT_EQ(c.min_credit, 32u);  // 8 * (3 + 1)
  }

  options.rt.transport.inbox_capacity = 31;  // share 7 < batch 8
  ProveReport bad = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                    env.spec.network, options);
  EXPECT_FALSE(bad.certified());
  EXPECT_TRUE(bad.findings.HasRule(Rule::kRtCreditDeadlock));
  EXPECT_EQ(bad.nodes[0].credit_share, 7u);

  // The identical config proves clean in-process and over loopback: the
  // share model only bites when real sockets partition the window.
  options.rt.transport_kind = rt::RtTransportKind::kLoopback;
  ProveReport loop = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                     env.spec.network, options);
  EXPECT_TRUE(loop.certified()) << loop.ToString();
  EXPECT_EQ(loop.nodes[0].credit_share, 31u);
}

TEST(ProveTest, CapacityFeasibility) {
  Env env;
  // Find a node that actually hosts load, then declare a capacity below it.
  ProveReport base = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                     env.spec.network,
                                     env.ProductionOptions());
  NodeId loaded = 0;
  for (const NodeCertificate& c : base.nodes) {
    if (c.load_eps > base.nodes[loaded].load_eps) loaded = c.node;
  }
  ASSERT_GT(base.nodes[loaded].load_eps, 0.0);

  Network& net = env.spec.network;
  net.SetCapacity(loaded, base.nodes[loaded].load_eps / 2);
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(), net,
                                      env.ProductionOptions());
  EXPECT_FALSE(proof.certified());
  EXPECT_TRUE(proof.findings.HasRule(Rule::kCapacityInfeasible));

  // Capacity above the load certifies.
  net.SetCapacity(loaded, base.nodes[loaded].load_eps * 2);
  ProveReport ok = ProveDeployment(*env.dep, env.catalogs->Pointers(), net,
                                   env.ProductionOptions());
  EXPECT_TRUE(ok.certified()) << ok.ToString();
}

TEST(ProveTest, MigrationStateBoundTracksInjectionRates) {
  Env env;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network,
                                      env.ProductionOptions());
  EXPECT_FALSE(proof.findings.HasRule(Rule::kMigrationStateUnbounded));
  // Replay horizon: the 2s query window + the 2s production slack.
  const double horizon_s = 4.0;
  ASSERT_EQ(proof.nodes.size(), 4u);
  double total = 0;
  for (const NodeCertificate& c : proof.nodes) {
    EXPECT_TRUE(c.migration_state_bounded) << "node " << c.node;
    total += c.migration_state_bound;
  }
  // Every node injects at its modeled type rates, so the deployment-wide
  // bound is at least the aggregate injection volume over one horizon.
  EXPECT_GT(total, 0.0);
  EXPECT_GE(total, (10 + 5 + 2) * horizon_s);
  // The certificate table carries the migration column.
  EXPECT_NE(proof.CertificateTable().find("| mig"), std::string::npos);
}

TEST(ProveTest, UnboundedReplayHorizonFlagsM905) {
  Env env;
  ProveOptions options = env.ProductionOptions();
  options.rt.eval.eviction_slack_ms = 0;  // unbounded horizon
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network, options);
  // A warning, not an error: differential runs use slack 0 deliberately.
  EXPECT_TRUE(proof.certified()) << proof.ToString();
  EXPECT_TRUE(proof.findings.HasRule(Rule::kMigrationStateUnbounded));
  for (const NodeCertificate& c : proof.nodes) {
    EXPECT_FALSE(c.migration_state_bounded) << "node " << c.node;
  }
  EXPECT_NE(proof.CertificateTable().find("mig unbounded"),
            std::string::npos);
}

TEST(ProveTest, ExportedGaugesMatchCertificates) {
  Env env;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network,
                                      env.ProductionOptions());
  obs::MetricsRegistry registry;
  ExportProveBounds(proof, &registry);
  for (const NodeCertificate& c : proof.nodes) {
    const obs::LabelSet labels{{"node", std::to_string(c.node)}};
    EXPECT_EQ(registry.GetGauge("prove_state_bounded", labels)->Value(),
              c.state_bounded ? 1.0 : 0.0);
    if (c.state_bounded) {
      EXPECT_EQ(registry.GetGauge("prove_state_bound", labels)->Value(),
                c.state_bound);
    }
    EXPECT_EQ(registry.GetGauge("prove_min_credit", labels)->Value(),
              static_cast<double>(c.min_credit));
    EXPECT_EQ(registry.GetGauge("prove_credit_share", labels)->Value(),
              static_cast<double>(c.credit_share));
    EXPECT_EQ(registry.GetGauge("prove_load_eps", labels)->Value(),
              c.load_eps);
    EXPECT_EQ(
        registry.GetGauge("prove_migration_state_bounded", labels)->Value(),
        c.migration_state_bounded ? 1.0 : 0.0);
    if (c.migration_state_bounded) {
      EXPECT_EQ(
          registry.GetGauge("prove_migration_state_bound", labels)->Value(),
          c.migration_state_bound);
    }
  }
}

TEST(ProveTest, ToStringListsEveryNode) {
  Env env;
  ProveReport proof = ProveDeployment(*env.dep, env.catalogs->Pointers(),
                                      env.spec.network,
                                      env.ProductionOptions());
  const std::string s = proof.ToString();
  for (const NodeCertificate& c : proof.nodes) {
    EXPECT_NE(s.find("n" + std::to_string(c.node)), std::string::npos) << s;
  }
}

TEST(ProveTest, CentralizedPlanProvesTooAndLoadsOneNode) {
  Env env;
  MuseGraph central = BuildCentralizedPlan(env.catalogs->Pointers(), 2);
  Deployment dep(central, env.catalogs->Pointers());
  ProveReport proof = ProveDeployment(dep, env.catalogs->Pointers(),
                                      env.spec.network,
                                      env.ProductionOptions());
  EXPECT_TRUE(proof.certified()) << proof.ToString();
  // The sink node carries the whole composite load.
  EXPECT_GT(proof.nodes[2].load_eps, 0.0);
}

#ifdef MUSE_SOURCE_DIR
TEST(ProveTest, ShippedSpecsProveCleanUnderProductionConfig) {
  for (const char* name : {"robots.spec", "cluster.spec"}) {
    std::ifstream in(std::string(MUSE_SOURCE_DIR) + "/examples/specs/" +
                     name);
    ASSERT_TRUE(in) << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<DeploymentSpec> spec = ParseDeploymentSpec(buffer.str());
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.error().message;
    const DeploymentSpec& dep_spec = spec.value();
    WorkloadCatalogs catalogs(dep_spec.workload, dep_spec.network);

    PlannerOptions star;
    star.star = true;
    MuseGraph plans[] = {PlanWorkloadAmuse(catalogs).combined,
                         PlanWorkloadAmuse(catalogs, star).combined,
                         PlanWorkloadOop(catalogs).combined,
                         BuildCentralizedPlan(catalogs.Pointers(), 0)};
    for (const MuseGraph& plan : plans) {
      Deployment dep(plan, catalogs.Pointers());
      ProveOptions options;
      options.rt.transport.inbox_capacity = 1024;
      options.rt.transport.batch_max_frames = 32;
      options.rt.eval.eviction_slack_ms = 5000;
      options.registry = &dep_spec.registry;
      ProveReport proof = ProveDeployment(dep, catalogs.Pointers(),
                                          dep_spec.network, options);
      EXPECT_TRUE(proof.certified()) << name << ":\n" << proof.ToString();
      for (const NodeCertificate& c : proof.nodes) {
        EXPECT_TRUE(c.state_bounded)
            << name << " node " << c.node << ": " << c.bound_formula;
      }
    }
  }
}
#endif  // MUSE_SOURCE_DIR

}  // namespace
}  // namespace muse
