// End-to-end reproduction of the paper's running example (Fig. 1 / Fig. 2)
// and full-pipeline checks: parse -> plan -> deploy -> execute -> verify.

#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/or_split.h"
#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

/// Fig. 1 setting: three robots; R1 emits {C, F}, R2 emits {C, L},
/// R3 emits {L, F}; camera and lidar rates are high, floor clearance rare.
struct RobotEnv {
  TypeRegistry reg;
  Query q;
  Network net;

  RobotEnv() : net(3, 3) {
    q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
    q.set_window(500);
    // C=0, L=1, F=2.
    net.AddProducer(0, 0);
    net.AddProducer(0, 2);
    net.AddProducer(1, 0);
    net.AddProducer(1, 1);
    net.AddProducer(2, 1);
    net.AddProducer(2, 2);
    net.SetRate(0, 50);   // camera: high
    net.SetRate(1, 50);   // lidar: high
    net.SetRate(2, 0.01);  // floor clearance: rare
  }
};

TEST(IntegrationTest, Fig1NarrativeCostOrdering) {
  RobotEnv env;
  env.q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  WorkloadCatalogs catalogs({env.q}, env.net);

  double centralized = CentralizedWorkloadCost(env.net, {env.q});
  WorkloadPlan oop = PlanWorkloadOop(catalogs);
  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);

  // Fig. 1: naive > existing optimization (oOP) > MuSE graphs.
  EXPECT_LT(oop.total_cost, centralized);
  EXPECT_LT(amuse.total_cost, oop.total_cost);
  // The MuSE plan avoids shipping the high-rate sensor streams: its cost is
  // dominated by rare events and partial matches.
  EXPECT_LT(amuse.total_cost, 0.25 * centralized);
}

TEST(IntegrationTest, RobotsEndToEndMatchParity) {
  RobotEnv env;
  Rng rng(17);
  TraceOptions topts;
  topts.duration_ms = 2000;
  topts.attr_cardinality[0] = 2;
  std::vector<Event> trace = GenerateGlobalTrace(env.net, topts, rng);

  WorkloadCatalogs catalogs({env.q}, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  std::string why;
  ASSERT_TRUE(IsCorrectPlan(plan.combined, catalogs.Pointers(), &why)) << why;

  Deployment dep(plan.combined, catalogs.Pointers());
  DistributedSimulator sim(dep, SimOptions{});
  SimReport report = sim.Run(trace);

  QueryEngine reference(env.q);
  std::vector<Match> want;
  for (const Event& e : trace) reference.OnEvent(e, &want);
  reference.Flush(&want);
  want = CanonicalMatchSet(std::move(want));

  ASSERT_EQ(report.matches_per_query[0].size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.matches_per_query[0][i].Key(), want[i].Key());
  }
}

TEST(IntegrationTest, TransmissionRatioOrderingOnDefaultConfig) {
  // §7.2 headline ordering on the paper's default configuration:
  // aMuSE <= aMuSE* << oOP <= centralized.
  Rng rng(2026);
  NetworkGenOptions nopts;  // 20 nodes, 15 types, ratio 0.5, skew 1.5
  Network net = MakeRandomNetwork(nopts, rng);
  SelectivityModel model(nopts.num_types, 0.01, 0.2, rng);
  QueryGenOptions qopts;  // 5 queries, ~6 primitives
  std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
  WorkloadCatalogs catalogs(wl, net);

  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  PlannerOptions star_opts;
  star_opts.star = true;
  WorkloadPlan star = PlanWorkloadAmuse(catalogs, star_opts);
  WorkloadPlan oop = PlanWorkloadOop(catalogs);

  // Both planners are greedy/budgeted searches of nested plan spaces;
  // exploration order can let aMuSE* edge out aMuSE slightly on a given
  // seed, so only near-domination is asserted.
  EXPECT_LE(amuse.transmission_ratio, star.transmission_ratio * 1.25);
  EXPECT_LT(star.transmission_ratio, 1.0);
  EXPECT_LE(oop.transmission_ratio, 1.0);
  EXPECT_LT(amuse.transmission_ratio, 0.5 * oop.transmission_ratio);
}

TEST(IntegrationTest, MultiQueryEndToEndWithSharedFragment) {
  TypeRegistry reg;
  Query q1 = ParseQuery("SEQ(AND(A, B), D)", &reg).value();
  q1.set_window(300);
  Query q2 = ParseQuery("AND(SEQ(A, B), G)", &reg).value();
  q2.set_window(300);

  Rng rng(23);
  NetworkGenOptions nopts;
  nopts.num_nodes = 5;
  nopts.num_types = 4;
  nopts.max_rate = 6;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 3000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  std::vector<Query> wl = {q1, q2};
  WorkloadCatalogs catalogs(wl, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  DistributedSimulator sim(dep, SimOptions{});
  SimReport report = sim.Run(trace);

  WorkloadEngine reference(wl);
  std::vector<std::vector<Match>> want;
  for (const Event& e : trace) reference.OnEvent(e, &want);
  reference.Flush(&want);
  for (int qi = 0; qi < 2; ++qi) {
    std::vector<Match> w = CanonicalMatchSet(want[qi]);
    ASSERT_EQ(report.matches_per_query[qi].size(), w.size()) << "q" << qi;
  }
}

TEST(IntegrationTest, OrQueryViaSplitEndToEnd) {
  TypeRegistry reg;
  Query with_or = ParseQuery("SEQ(OR(A, B), D)", &reg).value();
  with_or.set_window(400);
  std::vector<Query> split = SplitDisjunctions(with_or);
  ASSERT_EQ(split.size(), 2u);

  Rng rng(31);
  NetworkGenOptions nopts;
  nopts.num_nodes = 4;
  nopts.num_types = 3;
  nopts.max_rate = 6;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 3000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs(split, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  DistributedSimulator sim(dep, SimOptions{});
  SimReport report = sim.Run(trace);

  // Union of the split queries' distributed matches == OR query's matches.
  std::vector<Match> merged;
  for (const auto& matches : report.matches_per_query) {
    merged.insert(merged.end(), matches.begin(), matches.end());
  }
  merged = CanonicalMatchSet(std::move(merged));
  std::vector<Match> want = OracleMatches(with_or, trace);
  ASSERT_EQ(merged.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(merged[i].Key(), want[i].Key());
  }
}

}  // namespace
}  // namespace muse
