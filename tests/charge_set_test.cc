#include "src/core/cost.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace muse {
namespace {

TEST(ChargeSetTest, EmptyByDefault) {
  ChargeSet c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
  EXPECT_FALSE(c.Contains(42));
}

TEST(ChargeSetTest, AddDeduplicates) {
  ChargeSet c;
  EXPECT_TRUE(c.Add(7, 1.5));
  EXPECT_FALSE(c.Add(7, 99.0));  // same stream: charged once
  EXPECT_TRUE(c.Add(3, 2.0));
  EXPECT_DOUBLE_EQ(c.total(), 3.5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.Contains(7));
  EXPECT_TRUE(c.Contains(3));
}

TEST(ChargeSetTest, MergeUnionsAndDedups) {
  ChargeSet a;
  a.Add(1, 1.0);
  a.Add(3, 3.0);
  ChargeSet b;
  b.Add(2, 2.0);
  b.Add(3, 30.0);  // duplicate key
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);  // 1 + 2 + 3 (kept a's weight)
}

TEST(ChargeSetTest, MergeWithEmpty) {
  ChargeSet a;
  a.Add(5, 5.0);
  ChargeSet empty;
  a.MergeFrom(empty);
  EXPECT_DOUBLE_EQ(a.total(), 5.0);
  empty.MergeFrom(a);
  EXPECT_DOUBLE_EQ(empty.total(), 5.0);
}

TEST(ChargeSetTest, MarginalCountsOnlyNewStreams) {
  ChargeSet base;
  base.Add(1, 1.0);
  base.Add(2, 2.0);
  ChargeSet incoming;
  incoming.Add(2, 20.0);  // already charged
  incoming.Add(4, 4.0);
  EXPECT_DOUBLE_EQ(base.MarginalCost(incoming, {}), 4.0);
}

TEST(ChargeSetTest, MarginalDeduplicatesExtras) {
  ChargeSet base;
  base.Add(1, 1.0);
  ChargeSet incoming;
  incoming.Add(4, 4.0);
  std::vector<std::pair<uint64_t, double>> extra = {
      {1, 10.0},  // in base: free
      {4, 40.0},  // in incoming: free
      {9, 9.0},   // new
      {9, 9.0},   // duplicate extra: counted once
  };
  EXPECT_DOUBLE_EQ(base.MarginalCost(incoming, extra), 4.0 + 9.0);
}

TEST(ChargeSetTest, MarginalMatchesMergeTotal) {
  // Property: total(after merge+adds) == total(before) + marginal.
  Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    ChargeSet a;
    ChargeSet b;
    for (int i = 0; i < 30; ++i) {
      a.Add(static_cast<uint64_t>(rng.UniformInt(0, 40)),
            rng.Uniform(0.1, 5.0));
      b.Add(static_cast<uint64_t>(rng.UniformInt(0, 40)),
            rng.Uniform(0.1, 5.0));
    }
    std::vector<std::pair<uint64_t, double>> extra;
    for (int i = 0; i < 5; ++i) {
      extra.emplace_back(static_cast<uint64_t>(rng.UniformInt(0, 40)),
                         rng.Uniform(0.1, 5.0));
    }
    double marginal = a.MarginalCost(b, extra);
    double before = a.total();
    a.MergeFrom(b);
    for (const auto& [k, w] : extra) a.Add(k, w);
    EXPECT_NEAR(a.total(), before + marginal, 1e-9) << "round " << round;
  }
}

TEST(TransferKeyHashTest, DistinguishesFields) {
  uint64_t base = TransferKeyHash(111, kNoPartition, 1, 2);
  EXPECT_NE(base, TransferKeyHash(112, kNoPartition, 1, 2));  // signature
  EXPECT_NE(base, TransferKeyHash(111, 0, 1, 2));             // partition
  EXPECT_NE(base, TransferKeyHash(111, kNoPartition, 2, 1));  // direction
  EXPECT_NE(base, TransferKeyHash(111, kNoPartition, 1, 3));  // destination
  // Deterministic.
  EXPECT_EQ(base, TransferKeyHash(111, kNoPartition, 1, 2));
}

}  // namespace
}  // namespace muse
