#include "src/core/multi_query.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

Network SkewedNet(Rng& rng, int nodes = 10, int types = 8) {
  NetworkGenOptions opts;
  opts.num_nodes = nodes;
  opts.num_types = types;
  opts.event_node_ratio = 0.5;
  opts.rate_skew = 1.3;
  return MakeRandomNetwork(opts, rng);
}

TEST(MultiQueryTest, PlansAllQueriesCorrectly) {
  Rng rng(21);
  Network net = SkewedNet(rng);
  SelectivityModel model(8, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 4;
  qopts.avg_primitives = 4;
  qopts.num_types = 8;
  std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
  WorkloadCatalogs catalogs(wl, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);

  ASSERT_EQ(plan.per_query.size(), wl.size());
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(plan.combined, catalogs.Pointers(), &why)) << why;
  EXPECT_GT(plan.centralized_cost, 0);
  EXPECT_LE(plan.transmission_ratio, 1.5);  // sanity
}

TEST(MultiQueryTest, SharingNeverIncreasesTotalCost) {
  // Planning the same query twice must cost (almost exactly) the same as
  // planning it once: the second query reuses everything.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
  Rng rng(4);
  Network net = SkewedNet(rng, 8, 3);
  WorkloadCatalogs one({q}, net);
  WorkloadCatalogs two({q, q}, net);
  WorkloadPlan p1 = PlanWorkloadAmuse(one);
  WorkloadPlan p2 = PlanWorkloadAmuse(two);
  EXPECT_NEAR(p1.total_cost, p2.total_cost, 1e-9);
}

TEST(MultiQueryTest, SecondQueryReusesSharedProjection) {
  // Two queries sharing AND(C,L): the combined cost should be below the
  // sum of independently planned costs.
  TypeRegistry reg;
  Query q1 = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
  Query q2 = ParseQuery("SEQ(AND(C, L), G)", &reg).value();
  Rng rng(9);
  NetworkGenOptions nopts;
  nopts.num_nodes = 8;
  nopts.num_types = 4;
  nopts.event_node_ratio = 0.6;
  Network net = MakeRandomNetwork(nopts, rng);

  WorkloadCatalogs both({q1, q2}, net);
  WorkloadPlan shared = PlanWorkloadAmuse(both);

  WorkloadCatalogs only1({q1}, net);
  WorkloadCatalogs only2({q2}, net);
  double independent = PlanWorkloadAmuse(only1).total_cost +
                       PlanWorkloadAmuse(only2).total_cost;
  EXPECT_LE(shared.total_cost, independent * 1.0000001);
}

TEST(MultiQueryTest, OopWorkloadPlansAreCorrect) {
  Rng rng(33);
  Network net = SkewedNet(rng);
  SelectivityModel model(8, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 3;
  qopts.avg_primitives = 4;
  qopts.num_types = 8;
  std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
  WorkloadCatalogs catalogs(wl, net);
  WorkloadPlan plan = PlanWorkloadOop(catalogs);
  std::string why;
  EXPECT_TRUE(IsCorrectPlan(plan.combined, catalogs.Pointers(), &why)) << why;
}

TEST(MultiQueryTest, AmuseBeatsOopOnSkewedWorkloads) {
  Rng rng(55);
  SelectivityModel model(8, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 3;
  qopts.avg_primitives = 5;
  qopts.num_types = 8;
  int wins = 0;
  int rounds = 5;
  for (int round = 0; round < rounds; ++round) {
    Network net = SkewedNet(rng);
    std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
    WorkloadCatalogs catalogs(wl, net);
    double amuse = PlanWorkloadAmuse(catalogs).total_cost;
    double oop = PlanWorkloadOop(catalogs).total_cost;
    // aMuSE's placements are heuristic (local anchoring, greedy per-part
    // options), so allow a small slack against the exact single-sink DP.
    EXPECT_LE(amuse, oop * 1.05) << "round " << round;
    if (amuse < oop * 0.9) ++wins;
  }
  // On skewed rates with low selectivities, aMuSE should usually win big.
  EXPECT_GE(wins, 3);
}

TEST(MultiQueryTest, TransmissionRatioConsistent) {
  Rng rng(77);
  Network net = SkewedNet(rng);
  SelectivityModel model(8, 0.01, 0.2, rng);
  QueryGenOptions qopts;
  qopts.num_queries = 2;
  qopts.num_types = 8;
  std::vector<Query> wl = GenerateWorkload(qopts, model, rng);
  WorkloadCatalogs catalogs(wl, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  EXPECT_DOUBLE_EQ(plan.centralized_cost,
                   CentralizedWorkloadCost(net, wl));
  EXPECT_DOUBLE_EQ(plan.transmission_ratio,
                   plan.total_cost / plan.centralized_cost);
}

}  // namespace
}  // namespace muse
