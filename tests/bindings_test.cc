#include "src/core/bindings.h"

#include <set>

#include <gtest/gtest.h>

namespace muse {
namespace {

Network Fig2Net() {
  // Paper's Fig. 2 network (nodes renumbered 1..4 -> 0..3):
  // C at {0,1}, L at {1,2}, F at {0,3}.
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);
  return net;
}

TEST(BindingsTest, CountMatchesProduct) {
  Network net = Fig2Net();
  EXPECT_DOUBLE_EQ(CountBindings(net, TypeSet({0})), 2.0);
  EXPECT_DOUBLE_EQ(CountBindings(net, TypeSet({0, 1})), 4.0);
  EXPECT_DOUBLE_EQ(CountBindings(net, TypeSet({0, 1, 2})), 8.0);
}

TEST(BindingsTest, EnumerationMatchesCount) {
  Network net = Fig2Net();
  for (uint64_t bits = 1; bits < 8; ++bits) {
    TypeSet s(bits);
    std::vector<Binding> bindings = EnumerateBindings(net, s);
    EXPECT_EQ(static_cast<double>(bindings.size()), CountBindings(net, s));
    std::set<std::string> unique;
    for (const Binding& b : bindings) {
      EXPECT_EQ(b.tuples.size(), static_cast<size_t>(s.size()));
      EXPECT_TRUE(unique.insert(b.ToString()).second);
      for (const auto& [type, node] : b.tuples) {
        EXPECT_TRUE(net.Produces(node, type));
      }
    }
  }
}

TEST(BindingsTest, PaperExampleBindings) {
  // Example 3 lists [(F,1),(C,1),(L,2)] among the bindings of q1; with our
  // renumbering that is F@0, C@0, L@1.
  Network net = Fig2Net();
  std::vector<Binding> bindings = EnumerateBindings(net, TypeSet({0, 1, 2}));
  Binding expect;
  expect.tuples = {{0, 0}, {1, 1}, {2, 0}};
  EXPECT_NE(std::find(bindings.begin(), bindings.end(), expect),
            bindings.end());
  EXPECT_EQ(bindings.size(), 8u);
}

TEST(BindingsTest, SubBindingRelation) {
  Binding big;
  big.tuples = {{0, 0}, {1, 1}, {2, 0}};
  Binding small;
  small.tuples = {{0, 0}, {2, 0}};
  Binding other;
  other.tuples = {{0, 1}};
  EXPECT_TRUE(small.IsSubBindingOf(big));
  EXPECT_FALSE(big.IsSubBindingOf(small));
  EXPECT_FALSE(other.IsSubBindingOf(big));
}

TEST(BindingsTest, ProjectionBindingsAreSubBindings) {
  // §4.1: bindings of a projection are sub-bags of the query's bindings.
  Network net = Fig2Net();
  std::vector<Binding> full = EnumerateBindings(net, TypeSet({0, 1, 2}));
  std::vector<Binding> proj = EnumerateBindings(net, TypeSet({0, 1}));
  for (const Binding& q : full) {
    Binding restricted = q.Restrict(TypeSet({0, 1}));
    EXPECT_NE(std::find(proj.begin(), proj.end(), restricted), proj.end());
    EXPECT_TRUE(restricted.IsSubBindingOf(q));
  }
}

TEST(BindingsTest, NodeFor) {
  Binding b;
  b.tuples = {{0, 3}, {2, 1}};
  EXPECT_EQ(b.NodeFor(0), 3);
  EXPECT_EQ(b.NodeFor(2), 1);
  EXPECT_EQ(b.NodeFor(1), -1);
}

TEST(BindingsTest, NoProducerMeansNoBindings) {
  Network net(2, 2);
  net.AddProducer(0, 0);  // type 1 has no producer
  EXPECT_TRUE(EnumerateBindings(net, TypeSet({0, 1})).empty());
  EXPECT_DOUBLE_EQ(CountBindings(net, TypeSet({0, 1})), 0.0);
}

}  // namespace
}  // namespace muse
