// The static verifier (src/analysis) on *valid* inputs: every plan the
// planners emit — across algorithms, random instances, and the shipped
// example specs — must verify clean, including after a JSON round-trip and
// after compilation to tasks. Diagnostics plumbing is unit-tested here too;
// corrupted plans are exercised in lint_mutation_test.cc.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/analysis/verify.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

TEST(DiagnosticsTest, RuleCodesAndNamesAreStable) {
  // These codes are contractual: muse_lint output and DESIGN.md's rule
  // catalog reference them.
  EXPECT_STREQ(RuleCode(Rule::kGraphCycle), "M100");
  EXPECT_STREQ(RuleCode(Rule::kInputGap), "M200");
  EXPECT_STREQ(RuleCode(Rule::kReuseUnbacked), "M205");
  EXPECT_STREQ(RuleCode(Rule::kSourceMissing), "M303");
  EXPECT_STREQ(RuleCode(Rule::kRateDivergence), "M400");
  EXPECT_STREQ(RuleCode(Rule::kWindowMismatch), "M500");
  EXPECT_STREQ(RuleCode(Rule::kPartMismatch), "M605");
  EXPECT_STREQ(RuleCode(Rule::kRtInboxUnbounded), "M800");
  EXPECT_STREQ(RuleCode(Rule::kRtBatchExceedsInbox), "M801");
  EXPECT_STREQ(RuleCode(Rule::kRtEvictionUnbounded), "M802");
  EXPECT_STREQ(RuleName(Rule::kInputGap), "input-gap");
  EXPECT_STREQ(RuleName(Rule::kSinkCoverGap), "sink-cover-gap");
  EXPECT_STREQ(RuleName(Rule::kChannelMissing), "channel-missing");
  EXPECT_STREQ(RuleName(Rule::kRtInboxUnbounded), "rt-inbox-unbounded");
}

TEST(RtConfigVerifyTest, DefaultTransportOnlyWarnsAboutEviction) {
  rt::RtOptions options;  // inbox 1024, batch 32, slack 0
  VerifyReport report = VerifyRtConfig(options);
  EXPECT_TRUE(report.ok());  // no errors
  EXPECT_TRUE(report.HasRule(Rule::kRtEvictionUnbounded));
  EXPECT_EQ(report.warnings(), 1);
}

TEST(RtConfigVerifyTest, FiniteSlackIsClean) {
  rt::RtOptions options;
  options.eval.eviction_slack_ms = 5000;
  EXPECT_TRUE(VerifyRtConfig(options).clean());
}

TEST(RtConfigVerifyTest, UnboundedInboxIsError) {
  rt::RtOptions options;
  options.transport.inbox_capacity = 0;
  options.eval.eviction_slack_ms = 5000;
  VerifyReport report = VerifyRtConfig(options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule(Rule::kRtInboxUnbounded));
  EXPECT_EQ(report.errors(), 1);
}

TEST(RtConfigVerifyTest, BatchLargerThanInboxIsError) {
  rt::RtOptions options;
  options.transport.inbox_capacity = 16;
  options.transport.batch_max_frames = 17;
  options.eval.eviction_slack_ms = 5000;
  VerifyReport report = VerifyRtConfig(options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule(Rule::kRtBatchExceedsInbox));
  // Non-positive batches are equally undeliverable.
  options.transport.batch_max_frames = 0;
  EXPECT_TRUE(
      VerifyRtConfig(options).HasRule(Rule::kRtBatchExceedsInbox));
}

TEST(DiagnosticsTest, ToStringIsCompilerStyle) {
  Diagnostic d{Rule::kInputGap, Severity::kError, "vertex 5 (q0:{A}@n3)",
               "no input delivers {B}", "wire a correct combination"};
  EXPECT_EQ(d.ToString(),
            "error[M200/input-gap] vertex 5 (q0:{A}@n3): no input delivers "
            "{B} (hint: wire a correct combination)");
  Diagnostic w{Rule::kDeadVertex, Severity::kWarning, "vertex 2", "dead",
               ""};
  EXPECT_EQ(w.ToString(), "warning[M102/dead-vertex] vertex 2: dead");
}

TEST(DiagnosticsTest, ReportCountsAndMerges) {
  VerifyReport a;
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.clean());
  a.Add(Rule::kDeadVertex, Severity::kWarning, "vertex 1", "dead");
  EXPECT_TRUE(a.ok());  // warnings do not fail verification
  EXPECT_FALSE(a.clean());
  a.Add(Rule::kInputGap, Severity::kError, "vertex 2", "gap");
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.errors(), 1);
  EXPECT_EQ(a.warnings(), 1);
  EXPECT_TRUE(a.HasRule(Rule::kInputGap));
  EXPECT_FALSE(a.HasRule(Rule::kGraphCycle));

  VerifyReport b;
  b.Add(Rule::kGraphCycle, Severity::kError, "vertex 3", "cycle");
  a.MergeFrom(b);
  EXPECT_EQ(a.errors(), 2);
  EXPECT_TRUE(a.HasRule(Rule::kGraphCycle));
  EXPECT_NE(a.ToString().find("error[M100/graph-cycle]"), std::string::npos);
}

struct Instance {
  Network net;
  std::vector<Query> workload;

  Instance(uint64_t seed, int nodes, int types, int queries, int prims)
      : net(1, 1) {
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = nodes;
    nopts.num_types = types;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(types, 0.01, 0.2, rng);
    QueryGenOptions qopts;
    qopts.num_queries = queries;
    qopts.avg_primitives = prims;
    qopts.num_types = types;
    workload = GenerateWorkload(qopts, model, rng);
  }
};

class CleanPlansTest : public ::testing::TestWithParam<int> {};

TEST_P(CleanPlansTest, SingleQueryPlansVerifyClean) {
  Instance inst(static_cast<uint64_t>(GetParam()), 10, 8, 1, 5);
  ProjectionCatalog cat(inst.workload[0], inst.net);
  for (bool star : {false, true}) {
    PlannerOptions opts;
    opts.star = star;
    PlanResult r = PlanQuery(cat, opts);
    VerifyReport report = VerifyPlan(r.graph, cat);
    EXPECT_TRUE(report.clean()) << "star=" << star << "\n"
                                << report.ToString();
  }
}

TEST_P(CleanPlansTest, WorkloadPlansVerifyCleanAcrossAlgorithms) {
  Instance inst(static_cast<uint64_t>(GetParam()) + 50, 9, 7, 3, 4);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  MuseGraph plans[] = {PlanWorkloadAmuse(catalogs).combined,
                       PlanWorkloadOop(catalogs).combined,
                       BuildCentralizedPlan(catalogs.Pointers(), 0)};
  for (const MuseGraph& plan : plans) {
    VerifyReport report = VerifyPlan(plan, catalogs.Pointers());
    EXPECT_TRUE(report.clean()) << report.ToString();

    Deployment deployment(plan, catalogs.Pointers());
    VerifyReport wiring = VerifyDeployment(deployment, inst.net);
    EXPECT_TRUE(wiring.clean()) << wiring.ToString();
  }
}

TEST_P(CleanPlansTest, JsonRoundTripPreservesVerification) {
  Instance inst(static_cast<uint64_t>(GetParam()) + 100, 8, 6, 2, 4);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  MuseGraph plan = PlanWorkloadAmuse(catalogs).combined;
  Result<MuseGraph> round = PlanFromJson(PlanToJson(plan));
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().CanonicalString(), plan.CanonicalString());
  VerifyReport report = VerifyPlan(round.value(), catalogs.Pointers());
  EXPECT_TRUE(report.clean()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanPlansTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

#ifdef MUSE_SOURCE_DIR
TEST(ExampleSpecsTest, ShippedSpecsVerifyCleanUnderEveryAlgorithm) {
  for (const char* name : {"robots.spec", "cluster.spec"}) {
    std::ifstream in(std::string(MUSE_SOURCE_DIR) + "/examples/specs/" +
                     name);
    ASSERT_TRUE(in) << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<DeploymentSpec> spec = ParseDeploymentSpec(buffer.str());
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.error().message;
    const DeploymentSpec& dep = spec.value();
    WorkloadCatalogs catalogs(dep.workload, dep.network);
    VerifyOptions options;
    options.registry = &dep.registry;

    PlannerOptions star;
    star.star = true;
    MuseGraph plans[] = {PlanWorkloadAmuse(catalogs).combined,
                         PlanWorkloadAmuse(catalogs, star).combined,
                         PlanWorkloadOop(catalogs).combined,
                         BuildCentralizedPlan(catalogs.Pointers(), 0)};
    for (const MuseGraph& plan : plans) {
      VerifyReport report = VerifyPlan(plan, catalogs.Pointers(), options);
      EXPECT_TRUE(report.clean()) << name << "\n" << report.ToString();
      Deployment deployment(plan, catalogs.Pointers());
      VerifyReport wiring =
          VerifyDeployment(deployment, dep.network, options);
      EXPECT_TRUE(wiring.clean()) << name << "\n" << wiring.ToString();
    }
  }
}
#endif  // MUSE_SOURCE_DIR

}  // namespace
}  // namespace muse
