// Differential property tests (muse-par):
//
//  1. Engine vs. oracle: the incremental QueryEngine and the brute-force
//     OracleMatches (src/cep/oracle.cc) must produce the same canonical
//     match set on randomized OR-free queries and traces. Failures shrink
//     the trace to a minimal reproduction and print it as a paste-able
//     repro string.
//  2. Cached vs. uncached rates: RateCache must return values within
//     1e-12 relative tolerance of the direct QueryOutputRate computation,
//     including for structurally identical queries that differ only in
//     predicate selectivity (the cache-key trap: Query::Signature() omits
//     selectivities).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/common/rng.h"
#include "src/core/rate_cache.h"
#include "src/core/rates.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

// ---------------------------------------------------------------------------
// Engine vs. oracle
// ---------------------------------------------------------------------------

/// A match as the sorted-unique comparison key used throughout: the seqs of
/// its events (seq is unique within a trace).
std::vector<std::vector<uint64_t>> Keys(std::vector<Match> matches) {
  std::vector<std::vector<uint64_t>> keys;
  for (const Match& m : CanonicalMatchSet(std::move(matches))) {
    std::vector<uint64_t> key;
    for (const Event& e : m.events) key.push_back(e.seq);
    keys.push_back(std::move(key));
  }
  return keys;
}

std::vector<std::vector<uint64_t>> EngineKeys(const Query& q,
                                              const std::vector<Event>& trace) {
  QueryEngine engine(q);
  std::vector<Match> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  return Keys(std::move(out));
}

std::vector<std::vector<uint64_t>> OracleKeys(const Query& q,
                                              const std::vector<Event>& trace) {
  return Keys(OracleMatches(q, trace));
}

bool Agrees(const Query& q, const std::vector<Event>& trace) {
  return EngineKeys(q, trace) == OracleKeys(q, trace);
}

/// Greedy delta-debugging: repeatedly drop any single event whose removal
/// preserves the disagreement, until no single removal does. The result is
/// a (locally) minimal repro trace.
std::vector<Event> ShrinkTrace(const Query& q, std::vector<Event> trace) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < trace.size(); ++i) {
      std::vector<Event> candidate = trace;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (!Agrees(q, candidate)) {
        trace = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return trace;
}

std::string ReproString(const Query& q, const std::vector<Event>& trace) {
  std::string out = "query: " + q.ToString();
  out += "\nwindow: " + std::to_string(q.window());
  out += "\ntrace (" + std::to_string(trace.size()) + " events):";
  for (const Event& e : trace) {
    out += "\n  {type=E" + std::to_string(e.type);
    out += " seq=" + std::to_string(e.seq);
    out += " time=" + std::to_string(e.time);
    out += " a0=" + std::to_string(e.attrs[0]);
    out += " a1=" + std::to_string(e.attrs[1]) + "}";
  }
  return out;
}

std::vector<Event> RandomTrace(int num_types, int length, Rng& rng,
                               int64_t attr_lo = 0, int64_t attr_hi = 2) {
  std::vector<Event> trace;
  uint64_t time = 0;
  for (int i = 0; i < length; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.UniformInt(0, num_types - 1));
    e.seq = static_cast<uint64_t>(i);
    time += static_cast<uint64_t>(rng.UniformInt(0, 30));
    e.time = time;
    e.attrs = {rng.UniformInt(attr_lo, attr_hi),
               rng.UniformInt(attr_lo, attr_hi)};
    trace.push_back(e);
  }
  return trace;
}

TEST(DifferentialPropertyTest, EngineMatchesOracleOnRandomInputs) {
  constexpr int kIterations = 60;
  constexpr int kNumTypes = 5;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(7100 + static_cast<uint64_t>(iter) * 97);
    SelectivityModel model(kNumTypes, 0.05, 0.5, rng);

    // 2-4 distinct primitive types; finite window comparable to the trace
    // span so expiry paths are exercised; NSEQ in a third of the queries.
    const int arity = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<EventTypeId> types;
    for (int t = 0; t < kNumTypes && static_cast<int>(types.size()) < arity;
         ++t) {
      if (rng.UniformInt(0, 1) == 1 || kNumTypes - t <= arity - static_cast<int>(types.size())) {
        types.push_back(static_cast<EventTypeId>(t));
      }
    }
    const uint64_t window = static_cast<uint64_t>(rng.UniformInt(40, 300));
    Query q = GenerateQuery(types, model, window, /*nseq_probability=*/0.33,
                            rng);

    std::vector<Event> trace =
        RandomTrace(kNumTypes, static_cast<int>(rng.UniformInt(8, 22)), rng);
    if (Agrees(q, trace)) continue;

    std::vector<Event> minimal = ShrinkTrace(q, trace);
    FAIL() << "engine/oracle disagreement (iteration " << iter
           << ", seed " << 7100 + iter * 97 << "); minimal repro:\n"
           << ReproString(q, minimal) << "\nengine matches: "
           << EngineKeys(q, minimal).size() << ", oracle matches: "
           << OracleKeys(q, minimal).size();
  }
}

/// Feeds the trace as randomly sized consecutive batches (1-6 rows) through
/// QueryEngine::OnBatch and returns the canonical match keys.
std::vector<std::vector<uint64_t>> BatchEngineKeys(
    const Query& q, const std::vector<Event>& trace,
    const EvaluatorOptions& opts, Rng& rng, EvaluatorStats* stats = nullptr) {
  QueryEngine engine(q, opts);
  std::vector<Match> out;
  size_t i = 0;
  while (i < trace.size()) {
    const size_t chunk = static_cast<size_t>(rng.UniformInt(1, 6));
    std::vector<Event> slice(
        trace.begin() + static_cast<long>(i),
        trace.begin() + static_cast<long>(std::min(i + chunk, trace.size())));
    engine.OnBatch(EventBatch::FromEvents(slice), &out);
    i += slice.size();
  }
  engine.Flush(&out);
  if (stats != nullptr) *stats = engine.stats();
  return Keys(std::move(out));
}

TEST(DifferentialPropertyTest, BatchedEngineMatchesScalarAndOracle) {
  // Columnar ingestion is a pure optimization: across random queries
  // (including NSEQ and unary modulus filters), random batch slicings, and
  // eviction slacks selecting the bulk path, the ordered fallback, or a
  // mix, the batched engine must emit exactly the scalar engine's match
  // set — which in turn must equal the oracle's. Attributes go negative so
  // a truncated-`%` regression in any one of the three mod definitions
  // (scalar Eval, batch kernel, oracle) would split the vote.
  constexpr int kIterations = 50;
  constexpr int kNumTypes = 5;
  const uint64_t kSlacks[] = {0, 25, 1ULL << 40};
  uint64_t bulk_batches = 0, ordered_batches = 0, rows_filtered = 0;
  int nonempty = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(11700 + static_cast<uint64_t>(iter) * 53);
    SelectivityModel model(kNumTypes, 0.05, 0.5, rng);
    const int arity = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<EventTypeId> types;
    for (int t = 0; t < kNumTypes && static_cast<int>(types.size()) < arity;
         ++t) {
      if (rng.UniformInt(0, 1) == 1 ||
          kNumTypes - t <= arity - static_cast<int>(types.size())) {
        types.push_back(static_cast<EventTypeId>(t));
      }
    }
    const uint64_t window = static_cast<uint64_t>(rng.UniformInt(40, 300));
    Query q = GenerateQuery(types, model, window, /*nseq_probability=*/0.33,
                            rng);
    // Unary modulus filters on positive types put the columnar pre-filter
    // kernel on the critical path.
    for (EventTypeId t : types) {
      if (!q.PositiveTypes().Contains(t)) continue;
      if (rng.UniformInt(0, 2) != 0) continue;
      q.AddPredicate(Predicate::Filter(
          t, static_cast<int>(rng.UniformInt(0, kNumAttrs - 1)),
          rng.UniformInt(2, 3)));
    }

    std::vector<Event> trace =
        RandomTrace(kNumTypes, static_cast<int>(rng.UniformInt(20, 60)), rng,
                    /*attr_lo=*/-4, /*attr_hi=*/4);
    const auto oracle = OracleKeys(q, trace);
    if (!oracle.empty()) ++nonempty;

    for (uint64_t slack : kSlacks) {
      EvaluatorOptions opts;
      opts.eviction_slack_ms = slack;
      QueryEngine scalar(q, opts);
      std::vector<Match> scalar_out;
      for (const Event& e : trace) scalar.OnEvent(e, &scalar_out);
      scalar.Flush(&scalar_out);
      const auto scalar_keys = Keys(std::move(scalar_out));
      ASSERT_EQ(scalar_keys, oracle)
          << "scalar/oracle disagreement (iteration " << iter << ", slack "
          << slack << "):\n" << ReproString(q, trace);

      EvaluatorStats stats;
      const auto batch_keys = BatchEngineKeys(q, trace, opts, rng, &stats);
      ASSERT_EQ(batch_keys, scalar_keys)
          << "batch/scalar disagreement (iteration " << iter << ", slack "
          << slack << "):\n" << ReproString(q, trace);
      bulk_batches += stats.batch_bulk;
      ordered_batches += stats.batches - stats.batch_bulk;
      rows_filtered += stats.batch_rows_filtered;
    }
  }
  // The property must exercise matches, both ingestion modes, and the
  // pre-filter kernel — never hold vacuously.
  EXPECT_GT(nonempty, 0);
  EXPECT_GT(bulk_batches, 0u);
  EXPECT_GT(ordered_batches, 0u);
  EXPECT_GT(rows_filtered, 0u);
}

TEST(DifferentialPropertyTest, StreamingNseqReleasesBeforeFlush) {
  // With a finite eviction slack, every NSEQ candidate whose release point
  // (max time + slack) lies behind the watermark must be emitted *during*
  // streaming, not at Flush — and eager release must not change the final
  // match set vs. the oracle.
  constexpr int kIterations = 40;
  constexpr int kNumTypes = 5;
  constexpr uint64_t kSlack = 20;
  int streamed_iterations = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(9300 + static_cast<uint64_t>(iter) * 131);
    SelectivityModel model(kNumTypes, 0.05, 0.5, rng);
    const int arity = static_cast<int>(rng.UniformInt(3, 4));
    std::vector<EventTypeId> types;
    for (int t = 0; t < kNumTypes && static_cast<int>(types.size()) < arity;
         ++t) {
      if (rng.UniformInt(0, 1) == 1 ||
          kNumTypes - t <= arity - static_cast<int>(types.size())) {
        types.push_back(static_cast<EventTypeId>(t));
      }
    }
    const uint64_t window = static_cast<uint64_t>(rng.UniformInt(40, 300));
    Query q =
        GenerateQuery(types, model, window, /*nseq_probability=*/1.0, rng);
    if (q.NegatedTypes().empty()) continue;  // no pending path to exercise

    std::vector<Event> trace =
        RandomTrace(kNumTypes, static_cast<int>(rng.UniformInt(10, 24)), rng);
    // A sentinel event of a positive type, far past every candidate's
    // release point: once it is processed, the watermark must have eagerly
    // released every candidate formed from the original trace (the sentinel
    // itself is outside the window of all of them, so it joins nothing).
    Event sentinel;
    sentinel.type = q.PositiveTypes().First();
    sentinel.seq = trace.size();
    sentinel.time = trace.back().time + window + kSlack + 10;
    sentinel.attrs = {0, 0};
    trace.push_back(sentinel);

    EvaluatorOptions opts;
    opts.eviction_slack_ms = kSlack;
    QueryEngine engine(q, opts);
    std::vector<Match> matches;
    for (const Event& e : trace) engine.OnEvent(e, &matches);
    const auto pre_flush = Keys(matches);
    engine.Flush(&matches);
    EXPECT_EQ(Keys(matches), OracleKeys(q, trace))
        << "streaming NSEQ diverged from oracle (iteration " << iter << "):\n"
        << ReproString(q, trace);

    for (const auto& key : OracleKeys(q, trace)) {
      const bool has_sentinel =
          std::find(key.begin(), key.end(), sentinel.seq) != key.end();
      ASSERT_FALSE(has_sentinel);  // sentinel is outside every window
      EXPECT_NE(std::find(pre_flush.begin(), pre_flush.end(), key),
                pre_flush.end())
          << "match not released before Flush (iteration " << iter << "):\n"
          << ReproString(q, trace);
    }
    if (!pre_flush.empty()) ++streamed_iterations;
  }
  // The property must not hold vacuously.
  EXPECT_GT(streamed_iterations, 0);
}

// ---------------------------------------------------------------------------
// Cached vs. uncached rates
// ---------------------------------------------------------------------------

uint64_t SigHash(const Query& q) {
  return std::hash<std::string>{}(q.Signature());
}

void ExpectClose(double cached, double direct) {
  const double denom = std::max(std::abs(direct), 1e-300);
  EXPECT_LE(std::abs(cached - direct) / denom, 1e-12)
      << "cached=" << cached << " direct=" << direct;
}

TEST(DifferentialPropertyTest, CachedRatesMatchDirectComputation) {
  constexpr int kIterations = 30;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(8800 + static_cast<uint64_t>(iter) * 61);
    NetworkGenOptions nopts;
    nopts.num_nodes = static_cast<int>(rng.UniformInt(4, 12));
    nopts.num_types = 8;
    Network net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(nopts.num_types, 0.01, 0.3, rng);
    QueryGenOptions qopts;
    qopts.num_queries = 3;
    qopts.avg_primitives = 4;
    qopts.num_types = nopts.num_types;
    std::vector<Query> workload = GenerateWorkload(qopts, model, rng);

    const uint64_t net_fp = net.Fingerprint();
    for (const Query& q : workload) {
      const double direct = QueryOutputRate(q, net);
      const uint64_t key =
          RateCache::Key(SigHash(q), q.Selectivity(), net_fp);
      // First call computes (miss), second serves the stored value (hit);
      // both must agree with the direct computation.
      ExpectClose(RateCache::Global().OutputRate(key, q, net), direct);
      ExpectClose(RateCache::Global().OutputRate(key, q, net), direct);
    }
  }
}

TEST(DifferentialPropertyTest, CacheKeySeparatesEqualSignatures) {
  // Query::Signature() omits predicate selectivities: two structurally
  // identical queries with different selectivities share a signature but
  // must not share a cache entry (the key folds in Selectivity()).
  Rng rng(1);
  NetworkGenOptions nopts;
  nopts.num_nodes = 6;
  nopts.num_types = 4;
  Network net = MakeRandomNetwork(nopts, rng);

  Query lo = Query::Seq({Query::Primitive(0), Query::Primitive(1)});
  Query hi = Query::Seq({Query::Primitive(0), Query::Primitive(1)});
  lo.AddPredicate(Predicate::Equality(0, 0, 1, 0, /*selectivity=*/0.01));
  hi.AddPredicate(Predicate::Equality(0, 0, 1, 0, /*selectivity=*/0.5));
  ASSERT_EQ(lo.Signature(), hi.Signature());
  ASSERT_NE(lo.Selectivity(), hi.Selectivity());

  const uint64_t net_fp = net.Fingerprint();
  const uint64_t key_lo = RateCache::Key(SigHash(lo), lo.Selectivity(), net_fp);
  const uint64_t key_hi = RateCache::Key(SigHash(hi), hi.Selectivity(), net_fp);
  EXPECT_NE(key_lo, key_hi);
  ExpectClose(RateCache::Global().OutputRate(key_lo, lo, net),
              QueryOutputRate(lo, net));
  ExpectClose(RateCache::Global().OutputRate(key_hi, hi, net),
              QueryOutputRate(hi, net));

  RateCache::Stats stats = RateCache::Global().GetStats();
  EXPECT_GT(stats.misses, 0);
}

}  // namespace
}  // namespace muse
