#include "src/workload/cluster_trace.h"

#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"

namespace muse {
namespace {

ClusterTrace SmallTrace(uint64_t seed = 1) {
  ClusterTraceOptions opts;
  opts.num_nodes = 5;
  opts.num_machines = 50;
  opts.duration_ms = 120'000;
  opts.job_rate_per_s = 4.0;
  opts.troubled_probability = 0.05;
  Rng rng(seed);
  return GenerateClusterTrace(opts, rng);
}

TEST(ClusterTraceTest, NineTypesRegistered) {
  ClusterTrace ct = SmallTrace();
  EXPECT_EQ(ct.registry.size(), 9);
  EXPECT_GE(ct.registry.Find("Fail"), 0);
  EXPECT_GE(ct.registry.Find("UpdatePending"), 0);
}

TEST(ClusterTraceTest, TraceOrderedAndWithinDuration) {
  ClusterTrace ct = SmallTrace();
  ASSERT_FALSE(ct.events.empty());
  for (size_t i = 0; i < ct.events.size(); ++i) {
    EXPECT_EQ(ct.events[i].seq, i);
    if (i > 0) {
      EXPECT_GE(ct.events[i].time, ct.events[i - 1].time);
    }
    EXPECT_LT(ct.events[i].time, ct.duration_ms);
    EXPECT_LT(ct.events[i].origin, 5u);
  }
}

TEST(ClusterTraceTest, EventNodeRatioIsOne) {
  ClusterTrace ct = SmallTrace();
  EXPECT_DOUBLE_EQ(ct.network.EventNodeRatio(), 1.0);
}

TEST(ClusterTraceTest, UpdateEventsAreOrdersOfMagnitudeRarer) {
  ClusterTraceOptions opts;
  opts.duration_ms = 300'000;
  opts.troubled_probability = 0.005;  // ensure a measurable update count
  Rng rng(2);
  ClusterTrace ct = GenerateClusterTrace(opts, rng);
  std::vector<uint64_t> counts(9, 0);
  for (const Event& e : ct.events) ++counts[e.type];
  uint64_t schedule = counts[ct.type("Schedule")];
  uint64_t update = counts[ct.type("UpdatePending")];
  ASSERT_GT(update, 0u);
  EXPECT_GT(schedule, 50 * update);
}

TEST(ClusterTraceTest, RatesMatchEmpiricalCounts) {
  ClusterTrace ct = SmallTrace();
  std::vector<uint64_t> counts(9, 0);
  for (const Event& e : ct.events) ++counts[e.type];
  double duration_s = static_cast<double>(ct.duration_ms) / 1000.0;
  for (int t = 0; t < 9; ++t) {
    double expected =
        static_cast<double>(counts[t]) / (duration_s * 5 /*nodes*/);
    EXPECT_DOUBLE_EQ(ct.network.Rate(static_cast<EventTypeId>(t)), expected);
  }
}

TEST(ClusterTraceTest, QueriesValidAndPredicated) {
  ClusterTrace ct = SmallTrace();
  Query q1 = ct.MakeQuery1();
  Query q2 = ct.MakeQuery2();
  std::string why;
  EXPECT_TRUE(q1.Validate(&why)) << why;
  EXPECT_TRUE(q2.Validate(&why)) << why;
  EXPECT_EQ(q1.window(), ct.window_ms);
  EXPECT_EQ(q1.predicates().size(), 3u);
  EXPECT_EQ(q2.predicates().size(), 3u);
  EXPECT_EQ(q1.op(q1.root()).kind, OpKind::kSeq);
  EXPECT_EQ(q2.op(q2.root()).kind, OpKind::kAnd);
  EXPECT_LT(q1.Selectivity(), 1e-3);
}

TEST(ClusterTraceTest, TroubledTasksProduceQuery1Matches) {
  ClusterTrace ct = SmallTrace(7);
  Query q1 = ct.MakeQuery1();
  QueryEngine engine(q1);
  std::vector<Match> out;
  for (const Event& e : ct.events) engine.OnEvent(e, &out);
  engine.Flush(&out);
  // troubled_probability 0.05 over hundreds of tasks: matches must exist.
  EXPECT_GT(CanonicalMatchSet(out).size(), 0u);
}

TEST(ClusterTraceTest, AttrsCarryTaskAndJobIds) {
  ClusterTrace ct = SmallTrace();
  EXPECT_GT(ct.task_count, 0u);
  EXPECT_GT(ct.job_count, 0u);
  for (const Event& e : ct.events) {
    EXPECT_GE(e.attrs[0], 1);
    EXPECT_LE(e.attrs[0], static_cast<int64_t>(ct.task_count));
    EXPECT_GE(e.attrs[1], 1);
    EXPECT_LE(e.attrs[1], static_cast<int64_t>(ct.job_count));
  }
}

TEST(ClusterTraceTest, DeterministicGivenSeed) {
  ClusterTrace a = SmallTrace(5);
  ClusterTrace b = SmallTrace(5);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].type, b.events[i].type);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].origin, b.events[i].origin);
  }
}

}  // namespace
}  // namespace muse
