#include "src/cep/match.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

Event Ev(EventTypeId type, uint64_t seq, int64_t a0 = 0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.time = seq * 10;
  e.attrs = {a0, 0};
  return e;
}

Match M(std::vector<Event> events) {
  Match m;
  m.events = std::move(events);
  m.RecomputeSpan();
  return m;
}

TEST(MatchTest, Basics) {
  Match m = M({Ev(0, 1), Ev(1, 5)});
  EXPECT_EQ(m.FirstSeq(), 1u);
  EXPECT_EQ(m.LastSeq(), 5u);
  EXPECT_EQ(m.MinTime(), 10u);
  EXPECT_EQ(m.MaxTime(), 50u);
  EXPECT_EQ(m.Key(), "1,5,");
}

TEST(MatchTest, SpanMaintainedBySingleMergeRestrict) {
  Match s = Match::Single(Ev(0, 4));
  EXPECT_EQ(s.MinTime(), 40u);
  EXPECT_EQ(s.MaxTime(), 40u);

  Match merged;
  ASSERT_TRUE(MergeIfConsistent(M({Ev(0, 2)}), M({Ev(1, 9)}), &merged));
  EXPECT_EQ(merged.MinTime(), 20u);
  EXPECT_EQ(merged.MaxTime(), 90u);

  Match r = M({Ev(0, 1), Ev(1, 5), Ev(2, 3)}).Restrict(TypeSet({0, 2}));
  EXPECT_EQ(r.MinTime(), 10u);
  EXPECT_EQ(r.MaxTime(), 30u);

  Match direct;
  direct.events = {Ev(0, 7)};
  EXPECT_EQ(direct.MaxTime(), 0u);  // direct fill leaves the cache stale
  direct.RecomputeSpan();
  EXPECT_EQ(direct.MinTime(), 70u);
  EXPECT_EQ(direct.MaxTime(), 70u);
}

TEST(MatchTest, FingerprintIdentityTracksSeqList) {
  Match a = M({Ev(0, 1), Ev(1, 5)});
  Match b = M({Ev(2, 1), Ev(0, 5)});  // same seqs, different types
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), M({Ev(0, 1), Ev(1, 6)}).Fingerprint());
  EXPECT_NE(a.Fingerprint(), M({Ev(0, 1)}).Fingerprint());
  EXPECT_NE(M({Ev(0, 0)}).Fingerprint(), M({}).Fingerprint());
}

TEST(MatchTest, Restrict) {
  Match m = M({Ev(0, 1), Ev(1, 2), Ev(2, 3)});
  Match r = m.Restrict(TypeSet({0, 2}));
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].seq, 1u);
  EXPECT_EQ(r.events[1].seq, 3u);
}

TEST(MergeTest, DisjointMergeSortsBySeq) {
  Match out;
  ASSERT_TRUE(MergeIfConsistent(M({Ev(0, 5)}), M({Ev(1, 2)}), &out));
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].seq, 2u);
  EXPECT_EQ(out.events[1].seq, 5u);
}

TEST(MergeTest, SharedEventDeduplicates) {
  Event shared = Ev(1, 3);
  Match out;
  ASSERT_TRUE(
      MergeIfConsistent(M({Ev(0, 1), shared}), M({shared, Ev(2, 7)}), &out));
  EXPECT_EQ(out.events.size(), 3u);
}

TEST(MergeTest, ConflictingEventsOfSameTypeFail) {
  Match out;
  // Two *different* events of type 1.
  EXPECT_FALSE(MergeIfConsistent(M({Ev(1, 3)}), M({Ev(1, 4)}), &out));
}

TEST(StructurallyMatchesTest, SeqOrdering) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(0, 1), Ev(1, 2)})));
  // B before A violates SEQ.
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(1, 1), Ev(0, 2)})));
}

TEST(StructurallyMatchesTest, AndAnyOrder) {
  TypeRegistry reg;
  Query q = ParseQuery("AND(A, B)", &reg).value();
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(0, 1), Ev(1, 2)})));
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(1, 1), Ev(0, 2)})));
}

TEST(StructurallyMatchesTest, NestedSpans) {
  TypeRegistry reg;
  // SEQ(AND(A,B), C): both A and B must precede C.
  Query q = ParseQuery("SEQ(AND(A, B), C)", &reg).value();
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(1, 1), Ev(0, 2), Ev(2, 3)})));
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(0, 1), Ev(2, 2), Ev(1, 3)})));
}

TEST(StructurallyMatchesTest, WrongTypeSetRejected) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(0, 1)})));            // missing B
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(0, 1), Ev(2, 2)})));  // C not B
  EXPECT_FALSE(
      StructurallyMatches(q, M({Ev(0, 1), Ev(1, 2), Ev(2, 3)})));  // extra
}

TEST(StructurallyMatchesTest, PredicateChecked) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A a, B b) WHERE a.a0 == b.a0", &reg).value();
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(0, 1, 7), Ev(1, 2, 7)})));
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(0, 1, 7), Ev(1, 2, 8)})));
}

TEST(StructurallyMatchesTest, WindowChecked) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B) WITHIN 15ms", &reg).value();
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(0, 1), Ev(1, 2)})));  // 10ms apart
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(0, 1), Ev(1, 5)})));  // 40ms
}

TEST(StructurallyMatchesTest, NseqIgnoresMiddleTypeInCandidate) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, B, C)", &reg).value();
  // Candidate has only A and C; B handled via anti matches.
  EXPECT_TRUE(StructurallyMatches(q, M({Ev(0, 1), Ev(2, 5)})));
  EXPECT_FALSE(StructurallyMatches(q, M({Ev(2, 1), Ev(0, 5)})));
}

TEST(AntiMatchTest, InvalidatesStrictlyBetween) {
  TypeSet before = {0};
  TypeSet after = {2};
  Match cand = M({Ev(0, 2), Ev(2, 8)});
  EXPECT_TRUE(AntiMatchInvalidates(cand, before, after, M({Ev(1, 5)})));
  EXPECT_FALSE(AntiMatchInvalidates(cand, before, after, M({Ev(1, 1)})));
  EXPECT_FALSE(AntiMatchInvalidates(cand, before, after, M({Ev(1, 9)})));
  // Anti spanning outside the gap does not invalidate.
  EXPECT_FALSE(
      AntiMatchInvalidates(cand, before, after, M({Ev(1, 5), Ev(3, 9)})));
  // Anti fully inside the gap does.
  EXPECT_TRUE(
      AntiMatchInvalidates(cand, before, after, M({Ev(1, 4), Ev(3, 6)})));
}

}  // namespace
}  // namespace muse
