#include "src/dist/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/cep/parser.h"
#include "src/core/amuse.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

/// Random-config environment, same shape as simulator_test.cc.
struct Env {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;

  Env(const std::vector<std::string>& patterns, uint64_t window_ms,
      uint64_t seed, uint64_t duration_ms = 4000, int num_nodes = 4)
      : net(1, 1) {
    for (const std::string& p : patterns) {
      Query q = ParseQuery(p, &reg).value();
      q.set_window(window_ms);
      workload.push_back(std::move(q));
    }
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = num_nodes;
    nopts.num_types = reg.size();
    nopts.event_node_ratio = 0.6;
    nopts.max_rate = 8;
    net = MakeRandomNetwork(nopts, rng);
    TraceOptions topts;
    topts.duration_ms = duration_ms;
    topts.attr_cardinality[0] = 3;
    topts.attr_cardinality[1] = 2;
    trace = GenerateGlobalTrace(net, topts, rng);
  }
};

SimReport RunPlan(const MuseGraph& plan, const WorkloadCatalogs& catalogs,
                  const std::vector<Event>& trace, const SimOptions& opts) {
  Deployment dep(plan, catalogs.Pointers());
  DistributedSimulator sim(dep, opts);
  return sim.Run(trace);
}

TEST(ObsSimTest, SpanCompletenessOnThreeNodeSeqDeployment) {
  // Hand-built 3-node deployment: A produced at node 0, B at node 2, so
  // every match requires at least one network hop. With sample_rate = 1
  // every source event gets a span, and a span is completed iff its event
  // ended up in a match.
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  q.set_window(300);
  Network net(3, 2);
  net.AddProducer(0, 0);
  net.AddProducer(2, 1);
  net.SetRate(0, 5);
  net.SetRate(1, 5);
  Rng rng(11);
  TraceOptions topts;
  topts.duration_ms = 3000;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);
  ASSERT_FALSE(trace.empty());

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimOptions opts;
  opts.obs.trace_sample_rate = 1.0;
  opts.obs.max_flows = 1 << 20;
  SimReport report = RunPlan(plan.combined, catalogs, trace, opts);
  ASSERT_NE(report.telemetry, nullptr);
  const obs::FlowTracer& flows = report.telemetry->flows;
  ASSERT_EQ(flows.sampled(), trace.size());
  EXPECT_EQ(flows.dropped(), 0u);

  std::set<uint64_t> in_match;
  ASSERT_EQ(report.matches_per_query.size(), 1u);
  ASSERT_FALSE(report.matches_per_query[0].empty());
  for (const Match& m : report.matches_per_query[0]) {
    for (const Event& e : m.events) in_match.insert(e.seq);
  }

  size_t completed = 0;
  bool saw_cross_node_hop = false;
  for (const obs::FlowSpan& span : flows.spans()) {
    EXPECT_EQ(span.completed, in_match.count(span.flow_id) > 0)
        << "flow " << span.flow_id;
    if (span.completed) {
      ++completed;
      EXPECT_EQ(span.sink_query, 0);
      EXPECT_GE(span.sink_us, span.start_us);
    }
    uint64_t prev_depart = span.start_us;
    for (const obs::FlowHop& hop : span.hops) {
      EXPECT_LT(hop.src_node, 3u);
      EXPECT_LT(hop.dst_node, 3u);
      EXPECT_GE(hop.depart_us, prev_depart);
      prev_depart = hop.depart_us;
      if (hop.src_node != hop.dst_node) saw_cross_node_hop = true;
    }
  }
  EXPECT_EQ(completed, in_match.size());
  EXPECT_TRUE(saw_cross_node_hop);
}

TEST(ObsSimTest, SnapshotCumulativeSeriesAreMonotone) {
  Env env({"SEQ(AND(A, B), D)"}, 300, 42);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimOptions opts;
  opts.obs.snapshot_bucket_ms = 200;
  SimReport report = RunPlan(plan.combined, catalogs, env.trace, opts);
  ASSERT_NE(report.telemetry, nullptr);
  const obs::TimeSeries& ts = report.telemetry->series;
  ASSERT_FALSE(ts.empty());

  size_t total_series = 0;
  for (const auto& [key, points] : ts.series()) {
    const auto& [name, labels] = key;
    ASSERT_FALSE(points.empty()) << name;
    for (size_t i = 1; i < points.size(); ++i) {
      EXPECT_GT(points[i].t_ms, points[i - 1].t_ms)
          << name << "{" << labels.ToString() << "}";
    }
    const bool cumulative =
        name.size() > 6 && name.compare(name.size() - 6, 6, "_total") == 0;
    if (!cumulative) continue;
    ++total_series;
    for (size_t i = 1; i < points.size(); ++i) {
      EXPECT_GE(points[i].value, points[i - 1].value)
          << name << "{" << labels.ToString() << "}";
    }
  }
  EXPECT_GT(total_series, 0u);

  // The closing snapshot re-publishes the final counter values, so the
  // last point of every node_inputs_total series equals its registry
  // counter.
  obs::MetricsRegistry& reg = report.telemetry->registry;
  for (int n = 0; n < env.net.num_nodes(); ++n) {
    obs::LabelSet labels{{"node", std::to_string(n)}};
    const std::vector<obs::SeriesPoint>* points =
        ts.Find("node_inputs_total", labels);
    ASSERT_NE(points, nullptr) << "node " << n;
    EXPECT_EQ(points->back().value,
              static_cast<double>(
                  reg.GetCounter("node_inputs_total", labels)->Value()))
        << "node " << n;
  }
}

TEST(ObsSimTest, HdrLatencyQuantilesMatchExactSamples) {
  // The acceptance criterion end-to-end: the report's histogram-derived
  // latency quantiles must agree with the exact per-match samples
  // (keep_exact_latency) to within one bucket width.
  Env env({"SEQ(A, B)"}, 300, 48);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimOptions opts;
  opts.obs.keep_exact_latency = true;
  SimReport report = RunPlan(plan.combined, catalogs, env.trace, opts);
  ASSERT_NE(report.telemetry, nullptr);

  std::vector<double> exact = report.telemetry->exact_latency_ms;
  ASSERT_FALSE(exact.empty());
  std::sort(exact.begin(), exact.end());
  ASSERT_EQ(report.latency_ms.count, exact.size());

  obs::Histogram* hist = report.telemetry->registry.GetHistogram(
      "latency_ms", {{"query", "0"}}, 1e-3);
  EXPECT_EQ(hist->Count(), exact.size());

  auto width_at = [&](double value) {
    uint64_t units =
        static_cast<uint64_t>(std::llround(value / hist->resolution()));
    return hist->BucketWidth(obs::Histogram::BucketIndex(units));
  };
  auto expect_close = [&](double got, double q, const char* which) {
    double idx = q * static_cast<double>(exact.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, exact.size() - 1);
    double tol = width_at(exact[hi]) + hist->resolution();
    EXPECT_GE(got, exact[lo] - tol) << which;
    EXPECT_LE(got, exact[hi] + tol) << which;
  };
  expect_close(report.latency_ms.p25, 0.25, "p25");
  expect_close(report.latency_ms.p50, 0.50, "p50");
  expect_close(report.latency_ms.p75, 0.75, "p75");
  EXPECT_NEAR(report.latency_ms.min, exact.front(),
              2 * hist->resolution());
  EXPECT_NEAR(report.latency_ms.max, exact.back(), 2 * hist->resolution());
}

TEST(ObsSimTest, CentralizedCongestionExceedsMuseOnRobotsSpec) {
  // §7.3: on the robots case study, the single-sink plan's busiest node
  // accumulates visibly more partial matches than the MuSE plan's.
  std::ifstream in(std::string(MUSE_SOURCE_DIR) +
                   "/examples/specs/robots.spec");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Result<DeploymentSpec> spec = ParseDeploymentSpec(buf.str());
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const DeploymentSpec& dep = spec.value();

  Rng rng(1);
  TraceOptions topts;
  topts.duration_ms = 3000;
  std::vector<Event> trace = GenerateGlobalTrace(dep.network, topts, rng);
  ASSERT_FALSE(trace.empty());

  WorkloadCatalogs catalogs(dep.workload, dep.network);
  SimOptions opts;
  opts.collect_matches = false;

  WorkloadPlan muse_plan = PlanWorkloadAmuse(catalogs);
  SimReport muse_report =
      RunPlan(muse_plan.combined, catalogs, trace, opts);

  MuseGraph central = BuildCentralizedPlan(catalogs.Pointers(), 0);
  SimReport central_report = RunPlan(central, catalogs, trace, opts);

  EXPECT_GT(central_report.max_peak_partial_matches,
            muse_report.max_peak_partial_matches);

  // The same gap must be visible in the snapshot series of each plan's
  // busiest node.
  auto busiest_curve_peak = [](const SimReport& report) {
    size_t busiest = 0;
    for (size_t n = 1; n < report.peak_partial_matches.size(); ++n) {
      if (report.peak_partial_matches[n] >
          report.peak_partial_matches[busiest]) {
        busiest = n;
      }
    }
    const std::vector<obs::SeriesPoint>* points =
        report.telemetry->series.Find(
            "node_partial_matches",
            {{"node", std::to_string(busiest)}});
    double peak = 0;
    if (points != nullptr) {
      for (const obs::SeriesPoint& p : *points) {
        peak = std::max(peak, p.value);
      }
    }
    return peak;
  };
  EXPECT_GT(busiest_curve_peak(central_report),
            busiest_curve_peak(muse_report));
}

TEST(ObsSimTest, NetworkMessagesEqualLinkCounterSum) {
  Env env({"SEQ(AND(A, B), D)"}, 300, 47, /*duration_ms=*/4000);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimOptions opts;
  SimReport report = RunPlan(plan.combined, catalogs, env.trace, opts);
  ASSERT_NE(report.telemetry, nullptr);
  ASSERT_GT(report.network_messages, 0u);

  uint64_t link_sum = 0;
  uint64_t link_bytes = 0;
  for (const obs::MetricsRegistry::Entry& e :
       report.telemetry->registry.Entries()) {
    if (e.name == "link_messages_total") link_sum += e.counter->Value();
    if (e.name == "link_bytes_total") link_bytes += e.counter->Value();
  }
  EXPECT_EQ(link_sum, report.network_messages);
  EXPECT_GT(link_bytes, 0u);
}

TEST(ObsSimTest, FailureIncrementsCounterWithoutBreakingRun) {
  Env env({"SEQ(A, B)"}, 300, 49);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimOptions opts;
  opts.failures = {{1, 2000}};
  SimReport report = RunPlan(plan.combined, catalogs, env.trace, opts);
  ASSERT_NE(report.telemetry, nullptr);
  EXPECT_EQ(report.telemetry->registry
                .GetCounter("node_failures_total", {{"node", "1"}})
                ->Value(),
            1u);
}

TEST(ObsSimTest, DefaultOptionsProduceTelemetryWithoutTracing) {
  Env env({"SEQ(A, B)"}, 300, 50);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report =
      RunPlan(plan.combined, catalogs, env.trace, SimOptions{});
  ASSERT_NE(report.telemetry, nullptr);
  EXPECT_EQ(report.telemetry->flows.sampled(), 0u);
  EXPECT_FALSE(report.telemetry->series.empty());
  EXPECT_EQ(report.telemetry->registry.GetCounter("sim_source_events")
                ->Value(),
            env.trace.size());
  EXPECT_TRUE(report.telemetry->exact_latency_ms.empty());
}

}  // namespace
}  // namespace muse
