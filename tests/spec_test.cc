#include "src/workload/spec.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace muse {
namespace {

constexpr char kRobots[] = R"(
# Fig. 1 robots
nodes 3
rate C 60
rate L 60
rate F 0.1
produce 0 C F
produce 1 C L
produce 2 L F
selectivity C L 0.05
query SEQ(AND(C c, L l), F f) WHERE c.a0 == l.a0 WITHIN 1s
)";

TEST(SpecTest, ParsesRobotsSpec) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(kRobots);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const DeploymentSpec& d = spec.value();
  EXPECT_EQ(d.network.num_nodes(), 3);
  EXPECT_EQ(d.network.num_types(), 3);
  EXPECT_DOUBLE_EQ(d.network.Rate(d.registry.Find("C")), 60.0);
  EXPECT_DOUBLE_EQ(d.network.Rate(d.registry.Find("F")), 0.1);
  EXPECT_TRUE(d.network.Produces(1, d.registry.Find("L")));
  EXPECT_FALSE(d.network.Produces(0, d.registry.Find("L")));
  ASSERT_EQ(d.workload.size(), 1u);
  EXPECT_EQ(d.workload[0].ToString(&d.registry), "SEQ(AND(C,L),F)");
  EXPECT_EQ(d.workload[0].window(), 1000u);
}

TEST(SpecTest, SelectivityAppliedToPredicates) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(kRobots);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->workload[0].predicates().size(), 1u);
  EXPECT_DOUBLE_EQ(spec->workload[0].predicates()[0].selectivity, 0.05);
}

TEST(SpecTest, CommentsAndBlankLinesIgnored) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(
      "# header\n\nnodes 2\nrate A 1 # trailing\nproduce 0 A\n"
      "produce 1 A\n\nquery A\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec->workload.size(), 1u);
}

TEST(SpecTest, MultipleQueries) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(
      "nodes 2\nrate A 1\nrate B 2\nproduce 0 A B\nproduce 1 A B\n"
      "query SEQ(A, B)\nquery AND(A, B)\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec->workload.size(), 2u);
}

TEST(SpecTest, CapacityDirectiveSetsNodeCapacity) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(
      "nodes 3\nrate A 1\nproduce 0 A\nproduce 1 A\n"
      "capacity 1 5000\ncapacity 2 0.5\nquery A\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_DOUBLE_EQ(spec->network.Capacity(0), 0.0);  // undeclared
  EXPECT_DOUBLE_EQ(spec->network.Capacity(1), 5000.0);
  EXPECT_DOUBLE_EQ(spec->network.Capacity(2), 0.5);
  EXPECT_TRUE(spec->network.HasCapacities());

  Result<DeploymentSpec> none = ParseDeploymentSpec(
      "nodes 2\nrate A 1\nproduce 0 A\nquery A\n");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->network.HasCapacities());
}

struct BadSpec {
  const char* text;
  const char* why;
};

class BadSpecTest : public ::testing::TestWithParam<BadSpec> {};

TEST_P(BadSpecTest, Rejected) {
  Result<DeploymentSpec> spec = ParseDeploymentSpec(GetParam().text);
  EXPECT_FALSE(spec.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadSpecTest,
    ::testing::Values(
        BadSpec{"", "empty"},
        BadSpec{"rate A 1\nproduce 0 A\nquery A\n", "missing nodes"},
        BadSpec{"nodes 2\nrate A 1\n", "no queries"},
        BadSpec{"nodes 0\nrate A 1\nquery A\n", "zero nodes"},
        BadSpec{"nodes 2\nrate A 1\nproduce 5 A\nquery A\n",
                "producer out of range"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 Z\nquery A\n",
                "unknown produce type"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\nfrobnicate\nquery A\n",
                "unknown directive"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\nquery SEQ(A\n",
                "unparsable query"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\nselectivity A B 2\n"
                "query A\n",
                "selectivity > 1"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\nquery SEQ(A, Unknown)\n",
                "query type without declaration"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\ncapacity 5 100\nquery A\n",
                "capacity node out of range"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\ncapacity 0 -3\nquery A\n",
                "negative capacity"},
        BadSpec{"nodes 2\nrate A 1\nproduce 0 A\ncapacity 0\nquery A\n",
                "capacity missing value"}));

TEST(SpecTest, ShippedSampleSpecsParse) {
  // Keep the repository's sample specs working.
  for (const char* path :
       {"examples/specs/robots.spec", "examples/specs/cluster.spec",
        "../examples/specs/robots.spec", "../examples/specs/cluster.spec",
        "../../examples/specs/robots.spec", "/root/repo/examples/specs/robots.spec"}) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    Result<DeploymentSpec> spec = ParseDeploymentSpec(buf.str());
    EXPECT_TRUE(spec.ok()) << path << ": "
                           << (spec.ok() ? "" : spec.error().message);
    return;  // found and checked at least one location
  }
  GTEST_SKIP() << "sample specs not found relative to test cwd";
}

}  // namespace
}  // namespace muse
