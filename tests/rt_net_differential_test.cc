// muse-net cross-process differential harness: the same (deployment,
// trace) must produce identical per-query canonical match sets whether
// frames move through shared-memory inboxes (kInProc), a real loopback
// TCP socket in one process (kLoopback), or an N-process muse_node
// cluster (kCluster) — with the discrete-event simulator as the
// independent ground truth. Cluster runs exercise the full deployment
// path: the workload round-trips through WriteDeploymentSpec text and
// the plan through PlanToJson, exactly as daemons receive them.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/check.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/rt/cluster.h"
#include "src/rt/runtime.h"
#include "src/workload/query_gen.h"
#include "src/workload/spec.h"

namespace muse {
namespace {

/// Same rationale as rt_differential_test: both sides must evaluate with
/// an effectively unbounded eviction horizon so the final match set is a
/// pure function of the trace, not of scheduling.
constexpr uint64_t kHugeSlackMs = 1ULL << 40;

/// One randomized triple whose workload has round-tripped through the
/// spec text + plan JSON a cluster ships: the Deployment under test is
/// compiled from the *parsed* spec, so the coordinator-side task ids are
/// the ones every daemon derives from the same bytes.
struct NetTriple {
  DeploymentSpec spec;
  std::string spec_text;
  std::string plan_json;
  std::vector<Event> trace;
  std::unique_ptr<WorkloadCatalogs> catalogs;
  std::unique_ptr<Deployment> dep;

  NetTriple(uint64_t seed, const std::string& plan_kind,
            double nseq_probability = 0.35) {
    Rng rng(seed);
    QueryGenOptions qopts;
    qopts.num_queries = 2;
    qopts.avg_primitives = 3;
    qopts.num_types = 4;
    qopts.window_ms = 400;
    qopts.nseq_probability = nseq_probability;
    SelectivityModel model(qopts.num_types, 0.05, 0.3, rng);

    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = qopts.num_types;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 6;

    DeploymentSpec generated;
    generated.workload = GenerateWorkload(qopts, model, rng);
    generated.network = MakeRandomNetwork(nopts, rng);
    for (int t = 0; t < qopts.num_types; ++t) {
      generated.registry.Intern("T" + std::to_string(t));
    }
    spec_text = WriteDeploymentSpec(generated);
    Result<DeploymentSpec> parsed = ParseDeploymentSpec(spec_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "spec round-trip: %s\n%s\n",
                   parsed.error().message.c_str(), spec_text.c_str());
    }
    MUSE_CHECK(parsed.ok(), "WriteDeploymentSpec must round-trip");
    spec = std::move(parsed).value();

    TraceOptions topts;
    topts.duration_ms = 2500;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(spec.network, topts, rng);

    catalogs = std::make_unique<WorkloadCatalogs>(spec.workload, spec.network);
    MuseGraph plan;
    if (plan_kind == "amuse") {
      plan = PlanWorkloadAmuse(*catalogs).combined;
    } else if (plan_kind == "oop") {
      plan = PlanWorkloadOop(*catalogs).combined;
    } else {
      plan = BuildCentralizedPlan(catalogs->Pointers(), /*sink=*/0);
    }
    plan_json = PlanToJson(plan);
    dep = std::make_unique<Deployment>(plan, catalogs->Pointers());
  }
};

std::vector<std::vector<std::string>> KeySets(
    const std::vector<std::vector<Match>>& matches_per_query) {
  std::vector<std::vector<std::string>> keys(matches_per_query.size());
  for (size_t q = 0; q < matches_per_query.size(); ++q) {
    for (const Match& m : matches_per_query[q]) {
      keys[q].push_back(m.Key());
    }
  }
  return keys;
}

rt::RtOptions MakeOptions(const NetTriple& t, rt::RtTransportKind kind,
                          int processes, int num_threads,
                          const std::vector<std::pair<NodeId, uint64_t>>&
                              failures) {
  rt::RtOptions options;
  options.num_threads = num_threads;
  options.eval.eviction_slack_ms = kHugeSlackMs;
  options.failures = failures;
  options.transport_kind = kind;
  // A finite watchdog turns any protocol bug into a checkable wedge
  // instead of a hung test.
  options.transport.wedge_timeout_ms = 20000;
  if (kind == rt::RtTransportKind::kCluster) {
    options.processes = processes;
    options.muse_node_bin = rt::FindMuseNodeBinary(MUSE_NODE_BIN);
    options.cluster_spec_text = t.spec_text;
    options.cluster_plan_json = t.plan_json;
  }
  return options;
}

/// Runs one transport mode and requires the simulator's exact per-query
/// match sets.
void ExpectMode(const NetTriple& t,
                const std::vector<std::vector<std::string>>& want,
                rt::RtTransportKind kind, int processes, int num_threads,
                const std::vector<std::pair<NodeId, uint64_t>>& failures,
                uint64_t trace_sample_every = 0) {
  rt::RtOptions options =
      MakeOptions(t, kind, processes, num_threads, failures);
  options.trace_sample_every = trace_sample_every;
  rt::RtReport run = rt::RtRuntime(*t.dep, options).Run(t.trace);
  ASSERT_FALSE(run.wedged);
  ASSERT_EQ(run.matches_per_query.size(), want.size());
  const auto got = KeySets(run.matches_per_query);
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
  // In cluster mode these counters exist only if daemon kStats frames
  // arrived — proof the run really crossed process boundaries.
  EXPECT_GT(run.inputs_processed, 0u);
  if (kind != rt::RtTransportKind::kInProc) {
    EXPECT_GT(run.network_frames, 0u);
    EXPECT_GT(run.network_bytes, 0u);
  }
}

std::vector<std::vector<std::string>> SimulatorKeys(
    const NetTriple& t,
    const std::vector<std::pair<NodeId, uint64_t>>& failures) {
  SimOptions sim_options;
  sim_options.eval.eviction_slack_ms = kHugeSlackMs;
  sim_options.failures = failures;
  SimReport sim = DistributedSimulator(*t.dep, sim_options).Run(t.trace);
  return KeySets(sim.matches_per_query);
}

// The three transports and the simulator agree on every plan shape.
TEST(RtNetDifferentialTest, TransportsAgreeAcrossPlanShapes) {
  const char* kPlans[] = {"amuse", "centralized", "oop"};
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const std::string plan_kind = kPlans[seed % 3];
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + plan_kind);
    NetTriple t(7000 + seed, plan_kind);
    const auto want = SimulatorKeys(t, {});
    ExpectMode(t, want, rt::RtTransportKind::kInProc, 1, 0, {});
    ExpectMode(t, want, rt::RtTransportKind::kLoopback, 1, 0, {});
    ExpectMode(t, want, rt::RtTransportKind::kCluster, 2, 0, {});
  }
}

// The process count must not be observable in the final match sets —
// including P=1 (a one-daemon cluster) and P=4 (one node per process).
TEST(RtNetDifferentialTest, ClusterProcessCountsAgree) {
  NetTriple t(7100, "amuse");
  const auto want = SimulatorKeys(t, {});
  for (int processes : {1, 2, 4}) {
    SCOPED_TRACE("processes " + std::to_string(processes));
    ExpectMode(t, want, rt::RtTransportKind::kCluster, processes, 0, {});
  }
}

// Thread multiplexing inside each daemon is likewise unobservable.
TEST(RtNetDifferentialTest, ClusterThreadCountsAgree) {
  NetTriple t(7200, "oop");
  const auto want = SimulatorKeys(t, {});
  for (int threads : {1, 2}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectMode(t, want, rt::RtTransportKind::kCluster, 2, threads, {});
  }
}

// Crash + replay across the socket boundary: the driver's kCrash control
// frame reaches a remote daemon, the node replays its durable log, and
// receiver-side dedup still lands on the simulator's match sets.
TEST(RtNetDifferentialTest, CrashReplayAgreesOnEveryTransport) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    NetTriple t(7300 + seed, seed % 2 ? "centralized" : "amuse");
    const std::vector<std::pair<NodeId, uint64_t>> failures = {
        {static_cast<NodeId>(seed % 4), 900},
        {static_cast<NodeId>((seed + 2) % 4), 1700}};
    const auto want = SimulatorKeys(t, failures);
    ExpectMode(t, want, rt::RtTransportKind::kLoopback, 1, 0, failures);
    ExpectMode(t, want, rt::RtTransportKind::kCluster, 2, 2, failures);
  }
}

// NSEQ-heavy workloads put the watermark/flush-barrier path on the
// socket's critical path: kFlushCollect/kFlushEmit and their acks must
// round-trip to remote daemons in order.
TEST(RtNetDifferentialTest, NseqFlushBarriersCrossTheSocket) {
  NetTriple t(7400, "amuse", /*nseq_probability=*/1.0);
  const auto want = SimulatorKeys(t, {});
  ExpectMode(t, want, rt::RtTransportKind::kLoopback, 1, 0, {});
  ExpectMode(t, want, rt::RtTransportKind::kCluster, 3, 0, {});
}

// Causal tracing is pure observation in cluster mode too: sampled spans
// ride kSpan frames to the coordinator without changing any match set,
// and the merged log is non-trivial.
TEST(RtNetDifferentialTest, ClusterTracingNeverChangesMatches) {
  NetTriple t(7500, "amuse");
  const auto want = SimulatorKeys(t, {});
  rt::RtOptions options =
      MakeOptions(t, rt::RtTransportKind::kCluster, 2, 0, {});
  options.trace_sample_every = 1;
  rt::RtReport run = rt::RtRuntime(*t.dep, options).Run(t.trace);
  ASSERT_FALSE(run.wedged);
  const auto got = KeySets(run.matches_per_query);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
  ASSERT_NE(run.trace_log, nullptr);
  EXPECT_GT(run.trace_log->spans().size(), 0u);
}

// The spec writer round-trips byte-stably: writing the parsed spec again
// reproduces the exact text the daemons were handed. This is the
// agreement contract between coordinator and daemons.
TEST(RtNetDifferentialTest, SpecRoundTripIsByteStable) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    NetTriple t(7600 + seed, "amuse", seed % 2 ? 1.0 : 0.35);
    EXPECT_EQ(WriteDeploymentSpec(t.spec), t.spec_text);
  }
}

// The staged spec/plan files are removed *before* LaunchCluster returns
// (every daemon has already loaded them), so SIGKILLing the coordinator
// at any later point — when no destructor runs — leaks nothing in /tmp.
TEST(RtNetDifferentialTest, ClusterTempDirRemovedBeforeLaunchReturns) {
  NetTriple t(7700, "amuse");
  rt::DaemonConfig tmpl;
  tmpl.processes = 2;
  Result<std::unique_ptr<rt::ClusterHandle>> launched = rt::LaunchCluster(
      rt::FindMuseNodeBinary(MUSE_NODE_BIN), t.spec_text, t.plan_json, tmpl);
  ASSERT_TRUE(launched.ok()) << launched.error().message;
  rt::ClusterHandle& handle = *launched.value();
  ASSERT_FALSE(handle.temp_dir().empty());
  struct stat st;
  EXPECT_NE(stat(handle.temp_dir().c_str(), &st), 0)
      << handle.temp_dir() << " still exists after launch";
  EXPECT_EQ(errno, ENOENT);
  // The daemon-SIGKILL path must have nothing left to clean up either.
  handle.KillAll(SIGKILL);
  EXPECT_EQ(handle.ReapAll(5000), 0) << "daemons ignored SIGKILL";
  EXPECT_NE(stat(handle.temp_dir().c_str(), &st), 0);
  for (int fd : handle.daemon_fds()) close(fd);
}

// Explicit `peer <k> <host>` spec lines round-trip through parse/write and
// through a real cluster run: pinning every daemon to 127.0.0.1 by name
// must behave exactly like the implicit default.
TEST(RtNetDifferentialTest, ClusterPeerHostDirectiveAgrees) {
  NetTriple t(7800, "amuse");
  DeploymentSpec spec_with_peers = std::move(t.spec);
  spec_with_peers.peer_hosts = {"127.0.0.1", "127.0.0.1"};
  const std::string text = WriteDeploymentSpec(spec_with_peers);
  Result<DeploymentSpec> parsed = ParseDeploymentSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().peer_hosts,
            (std::vector<std::string>{"127.0.0.1", "127.0.0.1"}));
  EXPECT_EQ(WriteDeploymentSpec(parsed.value()), text);

  t.spec = std::move(parsed).value();
  t.spec_text = text;
  const auto want = SimulatorKeys(t, {});
  rt::RtOptions options =
      MakeOptions(t, rt::RtTransportKind::kCluster, 2, 0, {});
  options.cluster_peer_hosts = t.spec.peer_hosts;
  rt::RtReport run = rt::RtRuntime(*t.dep, options).Run(t.trace);
  ASSERT_FALSE(run.wedged);
  const auto got = KeySets(run.matches_per_query);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace muse
