#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/multi_query.h"
#include "src/dist/simulator.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"

namespace muse {
namespace {

struct Env {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;

  explicit Env(uint64_t seed) : net(1, 1) {
    Query q = ParseQuery("SEQ(AND(A, B), D)", &reg).value();
    q.set_window(300);
    workload.push_back(std::move(q));
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = 4;
    nopts.num_types = 3;
    nopts.event_node_ratio = 0.7;
    nopts.max_rate = 8;
    net = MakeRandomNetwork(nopts, rng);
    TraceOptions topts;
    topts.duration_ms = 4000;
    topts.attr_cardinality[0] = 3;
    trace = GenerateGlobalTrace(net, topts, rng);
  }

  std::vector<Match> Reference() const {
    QueryEngine engine(workload[0]);
    std::vector<Match> out;
    for (const Event& e : trace) engine.OnEvent(e, &out);
    engine.Flush(&out);
    return CanonicalMatchSet(std::move(out));
  }
};

SimReport RunWithFailures(const Env& env,
                          std::vector<std::pair<NodeId, uint64_t>> failures) {
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  Deployment dep(plan.combined, catalogs.Pointers());
  SimOptions opts;
  opts.failures = std::move(failures);
  DistributedSimulator sim(dep, opts);
  return sim.Run(env.trace);
}

TEST(RecoveryTest, NoFailureBaseline) {
  Env env(60);
  SimReport report = RunWithFailures(env, {});
  std::vector<Match> want = env.Reference();
  ASSERT_EQ(report.matches_per_query[0].size(), want.size());
}

TEST(RecoveryTest, SingleNodeCrashPreservesExactlyOnceResults) {
  Env env(61);
  std::vector<Match> want = env.Reference();
  for (NodeId victim = 0; victim < 4; ++victim) {
    SimReport report = RunWithFailures(env, {{victim, 2000}});
    ASSERT_EQ(report.matches_per_query[0].size(), want.size())
        << "victim node " << victim;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(report.matches_per_query[0][i].Key(), want[i].Key());
    }
  }
}

TEST(RecoveryTest, RepeatedCrashesOfSameNode) {
  Env env(62);
  std::vector<Match> want = env.Reference();
  SimReport report =
      RunWithFailures(env, {{1, 1000}, {1, 2000}, {1, 3000}});
  ASSERT_EQ(report.matches_per_query[0].size(), want.size());
}

TEST(RecoveryTest, CascadingCrashesAcrossNodes) {
  Env env(63);
  std::vector<Match> want = env.Reference();
  SimReport report =
      RunWithFailures(env, {{0, 1500}, {1, 1500}, {2, 2500}, {3, 3500}});
  ASSERT_EQ(report.matches_per_query[0].size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.matches_per_query[0][i].Key(), want[i].Key());
  }
}

TEST(RecoveryTest, ReplayCausesDuplicateTrafficButNoDuplicateMatches) {
  Env env(64);
  SimReport clean = RunWithFailures(env, {});
  SimReport crashed = RunWithFailures(env, {{0, 2000}, {1, 2500}});
  // Re-sent messages add traffic...
  EXPECT_GE(crashed.network_messages, clean.network_messages);
  // ...but the deduplicated match set is identical.
  ASSERT_EQ(crashed.matches_per_query[0].size(),
            clean.matches_per_query[0].size());
}

}  // namespace
}  // namespace muse
