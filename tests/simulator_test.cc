#include "src/dist/simulator.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "src/cep/engine.h"
#include "src/cep/oracle.h"
#include "src/cep/parser.h"
#include "src/core/amuse.h"
#include "src/core/centralized.h"
#include "src/core/multi_query.h"
#include "src/core/placement_oop.h"
#include "src/net/network_gen.h"
#include "src/net/trace.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

/// Reference: centralized engine over the global trace.
std::vector<std::vector<Match>> Reference(const std::vector<Query>& workload,
                                          const std::vector<Event>& trace) {
  WorkloadEngine engine(workload);
  std::vector<std::vector<Match>> out;
  for (const Event& e : trace) engine.OnEvent(e, &out);
  engine.Flush(&out);
  for (auto& matches : out) matches = CanonicalMatchSet(std::move(matches));
  return out;
}

void ExpectSameMatches(const std::vector<std::vector<Match>>& got,
                       const std::vector<std::vector<Match>>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t qi = 0; qi < got.size(); ++qi) {
    ASSERT_EQ(got[qi].size(), want[qi].size())
        << context << " query " << qi;
    for (size_t i = 0; i < got[qi].size(); ++i) {
      EXPECT_EQ(got[qi][i].Key(), want[qi][i].Key())
          << context << " query " << qi;
    }
  }
}

struct Env {
  TypeRegistry reg;
  std::vector<Query> workload;
  Network net;
  std::vector<Event> trace;

  Env(const std::vector<std::string>& patterns, uint64_t window_ms,
      uint64_t seed, uint64_t duration_ms = 4000, int num_nodes = 4)
      : net(1, 1) {
    for (const std::string& p : patterns) {
      Query q = ParseQuery(p, &reg).value();
      q.set_window(window_ms);
      workload.push_back(std::move(q));
    }
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = num_nodes;
    nopts.num_types = reg.size();
    nopts.event_node_ratio = 0.6;
    nopts.max_rate = 8;  // keep traces small
    net = MakeRandomNetwork(nopts, rng);
    TraceOptions topts;
    topts.duration_ms = duration_ms;
    topts.attr_cardinality[0] = 3;
    topts.attr_cardinality[1] = 2;
    trace = GenerateGlobalTrace(net, topts, rng);
  }
};

SimReport RunPlan(const MuseGraph& plan, const WorkloadCatalogs& catalogs,
                  const std::vector<Event>& trace) {
  Deployment dep(plan, catalogs.Pointers());
  SimOptions opts;
  DistributedSimulator sim(dep, opts);
  return sim.Run(trace);
}

TEST(SimulatorTest, DistributedAmuseMatchesCentralizedReference) {
  Env env({"SEQ(AND(A, B), D)"}, 300, 42);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace), "amuse");
}

TEST(SimulatorTest, DistributedOopMatchesReference) {
  Env env({"SEQ(AND(A, B), D)"}, 300, 43);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadOop(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace), "oop");
}

TEST(SimulatorTest, CentralizedPlanMatchesReference) {
  Env env({"SEQ(A, B)", "AND(B, D)"}, 300, 44);
  WorkloadCatalogs catalogs(env.workload, env.net);
  MuseGraph plan = BuildCentralizedPlan(catalogs.Pointers(), 0);
  SimReport report = RunPlan(plan, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace), "centralized");
}

TEST(SimulatorTest, MultiQueryWorkloadMatchesReference) {
  Env env({"SEQ(A, B)", "SEQ(AND(A, B), D)", "AND(B, D)"}, 250, 45);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace), "multi");
}

class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, AmusePlanCorrectUnderRandomConfigs) {
  Env env({"SEQ(AND(A, B), D)", "SEQ(B, D)"}, 200,
          static_cast<uint64_t>(GetParam()));
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace),
                    "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(SimulatorTest, PredicatedQueryMatchesReference) {
  TypeRegistry reg;
  Query q =
      ParseQuery("SEQ(A a, B b) WHERE a.a0 == b.a0 WITHIN 300ms", &reg)
          .value();
  Rng rng(7);
  NetworkGenOptions nopts;
  nopts.num_nodes = 3;
  nopts.num_types = 2;
  nopts.max_rate = 8;
  Network net = MakeRandomNetwork(nopts, rng);
  TraceOptions topts;
  topts.duration_ms = 3000;
  topts.attr_cardinality[0] = 3;
  std::vector<Event> trace = GenerateGlobalTrace(net, topts, rng);

  WorkloadCatalogs catalogs({q}, net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, trace);
  ExpectSameMatches(report.matches_per_query, Reference({q}, trace),
                    "predicated");
}

TEST(SimulatorTest, NseqDistributedMatchesReference) {
  Env env({"NSEQ(A, B, D)"}, 300, 46);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  ExpectSameMatches(report.matches_per_query,
                    Reference(env.workload, env.trace), "nseq");
}

TEST(SimulatorTest, TransmissionOrderingMatchesCostModel) {
  // The measured network traffic of the aMuSE plan must not exceed the
  // centralized plan's, mirroring the cost-model ordering.
  Env env({"SEQ(AND(A, B), D)"}, 200, 47, /*duration_ms=*/6000);
  WorkloadCatalogs catalogs(env.workload, env.net);

  WorkloadPlan amuse = PlanWorkloadAmuse(catalogs);
  SimReport amuse_report = RunPlan(amuse.combined, catalogs, env.trace);

  MuseGraph central = BuildCentralizedPlan(catalogs.Pointers(), 0);
  SimReport central_report = RunPlan(central, catalogs, env.trace);

  EXPECT_LE(amuse_report.network_messages,
            central_report.network_messages * 1.1 + 50);
}

TEST(SimulatorTest, SinkStateBoundedByWindowOnLongTraces) {
  // Regression for unbounded sink state: dedup sets are compacted and NSEQ
  // candidates released as the watermark advances, so a 4x longer trace
  // must not grow their peaks in proportion — live state is bounded by the
  // window + slack horizon, not the trace length.
  auto run = [](uint64_t duration_ms, uint64_t* matches_total) {
    Env env({"SEQ(A, B)", "NSEQ(A, B, D)"}, 150, 46, duration_ms);
    WorkloadCatalogs catalogs(env.workload, env.net);
    WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
    Deployment dep(plan.combined, catalogs.Pointers());
    SimReport report = DistributedSimulator(dep, SimOptions{}).Run(env.trace);
    ExpectSameMatches(report.matches_per_query,
                      Reference(env.workload, env.trace),
                      "duration " + std::to_string(duration_ms));
    *matches_total = 0;
    for (const auto& m : report.matches_per_query) {
      *matches_total += m.size();
    }
    return report;
  };
  uint64_t matches_short = 0;
  uint64_t matches_long = 0;
  SimReport short_run = run(5000, &matches_short);
  SimReport long_run = run(20000, &matches_long);
  // The workload itself grows with the trace.
  EXPECT_GE(matches_long, 2 * matches_short);
  EXPECT_GT(short_run.sink_dedup_peak, 0u);
  // Without compaction a dedup set only ever grows, so its peak would equal
  // the total distinct matches; watermark compaction keeps the live set a
  // small horizon-sized fraction of that.
  EXPECT_LE(long_run.sink_dedup_peak, matches_long / 3);
  // Same shape for held NSEQ candidates: without watermark release all of
  // the NSEQ query's matches would sit in pending_ until the final flush.
  const uint64_t nseq_matches = long_run.matches_per_query[1].size();
  EXPECT_GT(nseq_matches, 100u);
  EXPECT_LE(long_run.max_peak_pending, nseq_matches / 4);
}

TEST(SimulatorTest, ReportMetricsSane) {
  Env env({"SEQ(A, B)"}, 300, 48);
  WorkloadCatalogs catalogs(env.workload, env.net);
  WorkloadPlan plan = PlanWorkloadAmuse(catalogs);
  SimReport report = RunPlan(plan.combined, catalogs, env.trace);
  EXPECT_EQ(report.source_events, env.trace.size());
  EXPECT_GT(report.inputs_processed, 0u);
  EXPECT_GT(report.throughput_events_per_s, 0.0);
  EXPECT_GE(report.latency_ms.min, 0.0);
  EXPECT_LE(report.latency_ms.p25, report.latency_ms.p50);
  EXPECT_LE(report.latency_ms.p50, report.latency_ms.p75);
  EXPECT_LE(report.latency_ms.p75, report.latency_ms.max);
  EXPECT_GE(report.wall_seconds, 0.0);
}

}  // namespace
}  // namespace muse
