#include "src/cep/or_split.h"

#include <set>

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

std::set<std::string> Signatures(const std::vector<Query>& qs) {
  std::set<std::string> out;
  for (const Query& q : qs) out.insert(q.ToString());
  return out;
}

TEST(OrSplitTest, OrFreeQueryPassesThrough) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(A, B)", &reg).value();
  std::vector<Query> split = SplitDisjunctions(q);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0].ToString(), q.ToString());
}

TEST(OrSplitTest, TopLevelOr) {
  TypeRegistry reg;
  Query q = ParseQuery("OR(A, B)", &reg).value();
  std::vector<Query> split = SplitDisjunctions(q);
  EXPECT_EQ(Signatures(split), (std::set<std::string>{"E0", "E1"}));
}

TEST(OrSplitTest, NestedOrExpandsCartesian) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(OR(A, B), OR(C, D))", &reg).value();
  std::vector<Query> split = SplitDisjunctions(q);
  EXPECT_EQ(split.size(), 4u);
  for (const Query& v : split) {
    EXPECT_FALSE(v.ContainsOr());
    EXPECT_EQ(v.NumPrimitives(), 2);
    EXPECT_TRUE(v.Validate());
  }
}

TEST(OrSplitTest, OrInsideAnd) {
  TypeRegistry reg;
  Query q = ParseQuery("AND(X, OR(A, B))", &reg).value();
  std::vector<Query> split = SplitDisjunctions(q);
  ASSERT_EQ(split.size(), 2u);
  for (const Query& v : split) {
    EXPECT_EQ(v.op(v.root()).kind, OpKind::kAnd);
  }
}

TEST(OrSplitTest, PredicatesFilteredPerVariant) {
  TypeRegistry reg;
  Query q = ParseQuery("SEQ(OR(A, B), C)", &reg).value();
  EventTypeId a = reg.Intern("A");
  EventTypeId b = reg.Intern("B");
  EventTypeId c = reg.Intern("C");
  q.AddPredicate(Predicate::Equality(a, 0, c, 0, 0.1));
  q.AddPredicate(Predicate::Equality(b, 0, c, 0, 0.2));
  q.set_window(777);

  std::vector<Query> split = SplitDisjunctions(q);
  ASSERT_EQ(split.size(), 2u);
  for (const Query& v : split) {
    EXPECT_EQ(v.window(), 777u);
    ASSERT_EQ(v.predicates().size(), 1u);
    EXPECT_TRUE(v.PrimitiveTypes().ContainsAll(v.predicates()[0].Types()));
  }
}

TEST(OrSplitTest, OrUnderNseqMiddle) {
  TypeRegistry reg;
  Query q = ParseQuery("NSEQ(A, OR(B, C), D)", &reg).value();
  std::vector<Query> split = SplitDisjunctions(q);
  ASSERT_EQ(split.size(), 2u);
  for (const Query& v : split) {
    EXPECT_TRUE(v.ContainsNegation());
    EXPECT_EQ(v.NegatedTypes().size(), 1);
  }
}

TEST(OrSplitTest, ThreeWayOr) {
  TypeRegistry reg;
  Query q = ParseQuery("OR(A, B, C)", &reg).value();
  EXPECT_EQ(SplitDisjunctions(q).size(), 3u);
}

}  // namespace
}  // namespace muse
