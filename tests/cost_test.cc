#include "src/core/cost.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

/// The paper's running example (Fig. 2), nodes renumbered 1..4 -> 0..3:
/// C at {0,1}, L at {1,2}, F at {0,3}; r(C) = r(L) = 100 >> r(F) = 1.
struct Fig2 {
  TypeRegistry reg;
  Query q;
  Network net;
  std::unique_ptr<ProjectionCatalog> cat;

  Fig2() : net(4, 3) {
    q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
    net.AddProducer(0, 0);
    net.AddProducer(1, 0);
    net.AddProducer(1, 1);
    net.AddProducer(2, 1);
    net.AddProducer(0, 2);
    net.AddProducer(3, 2);
    net.SetRate(0, 100);
    net.SetRate(1, 100);
    net.SetRate(2, 1);
    cat = std::make_unique<ProjectionCatalog>(q, net);
  }

  /// Builds the MuSE graph of Fig. 2b.
  MuseGraph BuildGraph() const {
    MuseGraph g;
    auto prim = [&](EventTypeId t, NodeId n) {
      return g.AddVertex(
          PlanVertex{0, TypeSet::Of(t), n, static_cast<int>(t), false});
    };
    int c0 = prim(0, 0);
    int c1 = prim(0, 1);
    int l1 = prim(1, 1);
    int l2 = prim(1, 2);
    int f0 = prim(2, 0);
    int f3 = prim(2, 3);
    // v1 = (p2 = SEQ(L,F), node 0), single-sink.
    int v1 = g.AddVertex(PlanVertex{0, TypeSet({1, 2}), 0, kNoPartition,
                                    false});
    // v2, v3 = (p3 = AND(C,L)) partitioned on C at nodes 0 and 1.
    int v2 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, 0, false});
    int v3 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 1, 0, false});
    // v4, v5 = (q) partitioned on C at nodes 0 and 1 (the two sinks).
    int v4 = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 0, 0, false});
    int v5 = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 1, 0, false});

    g.AddEdge(l1, v1);
    g.AddEdge(l2, v1);
    g.AddEdge(f0, v1);
    g.AddEdge(f3, v1);
    g.AddEdge(c0, v2);
    g.AddEdge(l1, v2);
    g.AddEdge(l2, v2);
    g.AddEdge(c1, v3);
    g.AddEdge(l1, v3);
    g.AddEdge(l2, v3);
    g.AddEdge(v1, v4);
    g.AddEdge(v1, v5);
    g.AddEdge(v2, v4);
    g.AddEdge(v3, v5);
    g.SetSinks({v4, v5});
    return g;
  }
};

TEST(CostTest, Fig2GraphCost) {
  Fig2 f;
  MuseGraph g = f.BuildGraph();
  // Network charges (streams deduplicated per destination node):
  //   L@1 -> n0 (feeds v1 and v2, charged once)      = 100
  //   L@2 -> n0 (feeds v1 and v2, charged once)      = 100
  //   F@3 -> n0                                      = 1
  //   L@2 -> n1 (feeds v3)                           = 100
  //   v1 -> n1: r̂(p2) * |A(v1)| = (100*1) * 4        = 400  (Example 9)
  // All other edges are local.
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 701.0);
}

TEST(CostTest, CentralizedReference) {
  Fig2 f;
  // Sum of global rates: C 2*100 + L 2*100 + F 2*1 = 402.
  EXPECT_DOUBLE_EQ(CentralizedCost(f.net, f.q.PrimitiveTypes()), 402.0);
}

TEST(CostTest, LocalEdgesAreFree) {
  Fig2 f;
  MuseGraph g;
  int src = g.AddVertex(PlanVertex{0, TypeSet({1}), 1, 1, false});
  int dst = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 1, kNoPartition,
                                   false});
  g.AddEdge(src, dst);
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 0.0);
}

TEST(CostTest, SharedStreamChargedOncePerDestination) {
  Fig2 f;
  MuseGraph g;
  int src = g.AddVertex(PlanVertex{0, TypeSet({1}), 1, 1, false});
  int d1 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, kNoPartition,
                                  false});
  int d2 = g.AddVertex(PlanVertex{0, TypeSet({1, 2}), 0, kNoPartition,
                                  false});
  g.AddEdge(src, d1);
  g.AddEdge(src, d2);  // same node: one transmission (§4.4 sharing term)
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 100.0);

  int d3 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 3, kNoPartition,
                                  false});
  g.AddEdge(src, d3);  // different node: second transmission
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 200.0);
}

TEST(CostTest, PaidTransfersAreFree) {
  Fig2 f;
  MuseGraph g;
  int src = g.AddVertex(PlanVertex{0, TypeSet({1}), 1, 1, false});
  int dst = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, kNoPartition,
                                   false});
  g.AddEdge(src, dst);
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 100.0);

  SharingContext ctx;
  ctx.paid_transfers.insert(
      TransferKeyHash(f.cat->SignatureHash(TypeSet({1})), 1, 1, 0));
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat, &ctx), 0.0);
}

TEST(CostTest, RecordPlanInContext) {
  Fig2 f;
  MuseGraph g = f.BuildGraph();
  SharingContext ctx;
  std::vector<const ProjectionCatalog*> cats = {f.cat.get()};
  RecordPlanInContext(g, cats, &ctx);
  // All network transfers are now paid: replanning the same graph is free.
  EXPECT_DOUBLE_EQ(GraphCost(g, cats, &ctx), 0.0);
  // Placements were recorded under projection signatures.
  EXPECT_TRUE(ctx.placed.count(f.cat->Signature(TypeSet({0, 1}))) > 0);
  EXPECT_TRUE(ctx.placed.count(f.cat->Signature(TypeSet({0, 1, 2}))) > 0);
}

TEST(CostTest, PartitionedCoverScalesEdgeWeight) {
  Fig2 f;
  MuseGraph g;
  // Partitioned q-vertex at node 0 (cover 4) sending to node 3.
  int src = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, 0, false});
  int dst = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 3, kNoPartition,
                                   false});
  g.AddEdge(src, dst);
  // r̂(AND(C,L)) = 2*100*100 = 20000, cover = |producers(L)| = 2.
  EXPECT_DOUBLE_EQ(GraphCost(g, *f.cat), 20000.0 * 2);
}

}  // namespace
}  // namespace muse
