// muse-par determinism contract (DESIGN.md "Parallel planning"): for any
// workload, the parallel planner (num_threads > 1) must produce plans,
// costs, sinks, and search counters bit-identical to the serial planner
// (num_threads = 1, the original code path preserved verbatim). The suite
// sweeps randomized workloads across thread counts {1, 2, 8} and
// additionally vets every parallel plan with the static verifier.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/verify.h"
#include "src/core/multi_query.h"
#include "src/core/plan_json.h"
#include "src/core/rate_cache.h"
#include "src/net/network_gen.h"
#include "src/workload/query_gen.h"

namespace muse {
namespace {

struct Instance {
  Network net;
  std::vector<Query> workload;

  Instance(uint64_t seed, int num_nodes, int num_types, int num_queries,
           int avg_primitives)
      : net(1, 1) {
    Rng rng(seed);
    NetworkGenOptions nopts;
    nopts.num_nodes = num_nodes;
    nopts.num_types = num_types;
    net = MakeRandomNetwork(nopts, rng);
    SelectivityModel model(num_types, 0.01, 0.2, rng);
    QueryGenOptions qopts;
    qopts.num_queries = num_queries;
    qopts.avg_primitives = avg_primitives;
    qopts.num_types = num_types;
    workload = GenerateWorkload(qopts, model, rng);
  }
};

PlannerOptions Opts(bool star, int threads) {
  PlannerOptions opts;
  opts.star = star;
  opts.num_threads = threads;
  return opts;
}

/// Everything of a WorkloadPlan that the determinism contract covers, as a
/// comparable string: the combined plan's JSON plus per-query costs, plan
/// JSON, and search counters. Deliberately excludes wall-clock fields and
/// the par_* telemetry, which legitimately vary with the thread count.
std::string Fingerprint(const WorkloadPlan& wp) {
  std::string out = PlanToJson(wp.combined);
  out += "\ntotal_cost=" + std::to_string(wp.total_cost);
  out += " ratio=" + std::to_string(wp.transmission_ratio);
  for (const PlanResult& r : wp.per_query) {
    out += "\ncost=" + std::to_string(r.cost);
    out += " proj=" + std::to_string(r.stats.projections_considered);
    out += "/" + std::to_string(r.stats.projections_total);
    out += " pruned=" + std::to_string(r.stats.pruned_beneficial);
    out += "+" + std::to_string(r.stats.pruned_star);
    out += " combos=" + std::to_string(r.stats.combinations_enumerated);
    out += " built=" + std::to_string(r.stats.graphs_constructed);
    out += " disc=" + std::to_string(r.stats.graphs_discarded);
    out += " lb=" + std::to_string(r.stats.lb_rejections);
    out += "\n" + PlanToJson(r.graph);
  }
  return out;
}

TEST(PlannerParallelTest, RandomWorkloadsIdenticalAcrossThreadCounts) {
  constexpr int kWorkloads = 20;
  for (int w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE("workload " + std::to_string(w));
    const uint64_t seed = 4200 + static_cast<uint64_t>(w) * 131;
    Instance inst(seed, /*num_nodes=*/6 + w % 5, /*num_types=*/6 + w % 3,
                  /*num_queries=*/2 + w % 3, /*avg_primitives=*/4 + w % 2);
    WorkloadCatalogs catalogs(inst.workload, inst.net);
    const bool star = w % 2 == 1;

    // Shared rate cache warm/cold state must not affect results either;
    // clear between instances so every workload starts cold at threads=1.
    RateCache::Global().Clear();
    WorkloadPlan serial = PlanWorkloadAmuse(catalogs, Opts(star, 1));
    const std::string expected = Fingerprint(serial);

    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      WorkloadPlan parallel = PlanWorkloadAmuse(catalogs, Opts(star, threads));
      EXPECT_EQ(Fingerprint(parallel), expected);

      VerifyReport report = VerifyPlan(parallel.combined, catalogs.Pointers());
      EXPECT_TRUE(report.clean()) << report.ToString();
    }
  }
}

TEST(PlannerParallelTest, SingleQueryPlanQueryIdentical) {
  // PlanQuery directly (no workload machinery): the per-target parallel
  // search alone must reproduce the serial result.
  Instance inst(977, /*num_nodes=*/10, /*num_types=*/8, /*num_queries=*/1,
                /*avg_primitives=*/5);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  for (bool star : {false, true}) {
    SCOPED_TRACE(star ? "amuse-star" : "amuse");
    PlanResult serial = PlanQuery(catalogs.catalog(0), Opts(star, 1));
    for (int threads : {2, 8}) {
      PlanResult parallel = PlanQuery(catalogs.catalog(0), Opts(star, threads));
      EXPECT_EQ(PlanToJson(parallel.graph), PlanToJson(serial.graph));
      EXPECT_EQ(parallel.cost, serial.cost);
      EXPECT_EQ(parallel.stats.graphs_constructed,
                serial.stats.graphs_constructed);
      EXPECT_EQ(parallel.stats.graphs_discarded,
                serial.stats.graphs_discarded);
      EXPECT_EQ(parallel.stats.lb_rejections, serial.stats.lb_rejections);
      EXPECT_EQ(parallel.stats.combinations_enumerated,
                serial.stats.combinations_enumerated);
    }
  }
}

TEST(PlannerParallelTest, HardwareDefaultMatchesSerial) {
  // num_threads = 0 resolves to hardware concurrency — whatever that is on
  // the host, the plan must match the serial one.
  Instance inst(31337, /*num_nodes=*/8, /*num_types=*/7, /*num_queries=*/3,
                /*avg_primitives=*/4);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  WorkloadPlan serial = PlanWorkloadAmuse(catalogs, Opts(false, 1));
  WorkloadPlan dflt = PlanWorkloadAmuse(catalogs, Opts(false, 0));
  EXPECT_EQ(Fingerprint(dflt), Fingerprint(serial));
}

TEST(PlannerParallelTest, TightBudgetsStayDeterministic) {
  // Early termination (max_graphs / stagnation) interacts with batching:
  // the replay must stop at exactly the same candidate regardless of how
  // many evaluations were speculatively computed.
  Instance inst(555, /*num_nodes=*/10, /*num_types=*/8, /*num_queries=*/2,
                /*avg_primitives=*/5);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  for (int budget : {1, 10, 100}) {
    SCOPED_TRACE("max_graphs " + std::to_string(budget));
    PlannerOptions serial_opts = Opts(false, 1);
    serial_opts.max_graphs = budget;
    serial_opts.stagnation_limit = 7;
    WorkloadPlan serial = PlanWorkloadAmuse(catalogs, serial_opts);
    for (int threads : {2, 8}) {
      PlannerOptions par_opts = serial_opts;
      par_opts.num_threads = threads;
      WorkloadPlan parallel = PlanWorkloadAmuse(catalogs, par_opts);
      EXPECT_EQ(Fingerprint(parallel), Fingerprint(serial))
          << "threads=" << threads;
    }
  }
}

TEST(PlannerParallelTest, StatsMergeDoesNotDoubleCountTimers) {
  // Worker merges must not inflate the orchestrator's wall-clock phases:
  // the parallel run's phase timers stay within the same order as the
  // serial run's (they time the same loop once), never ~num_threads times.
  Instance inst(808, /*num_nodes=*/10, /*num_types=*/8, /*num_queries=*/1,
                /*avg_primitives=*/5);
  WorkloadCatalogs catalogs(inst.workload, inst.net);
  PlanResult parallel = PlanQuery(catalogs.catalog(0), Opts(false, 8));
  const PlannerStats& s = parallel.stats;
  EXPECT_GE(s.elapsed_seconds, 0);
  // Phases are sub-intervals of the whole call (small tolerance for timer
  // granularity); 8 workers reporting the same interval would break this.
  EXPECT_LE(s.select_seconds + s.enumerate_seconds + s.construct_seconds,
            s.elapsed_seconds * 1.5 + 0.1);
  EXPECT_GT(s.par_batches, 0);
  EXPECT_GT(s.par_tasks, 0);

  // AddTo and MergeWorker agree on counters; only AddTo moves the clocks.
  PlannerStats sum;
  s.AddTo(&sum);
  EXPECT_EQ(sum.graphs_constructed, s.graphs_constructed);
  EXPECT_EQ(sum.elapsed_seconds, s.elapsed_seconds);
  PlannerStats merged;
  s.MergeWorker(&merged);
  EXPECT_EQ(merged.graphs_constructed, s.graphs_constructed);
  EXPECT_EQ(merged.par_tasks, s.par_tasks);
  EXPECT_EQ(merged.elapsed_seconds, 0);
  EXPECT_EQ(merged.select_seconds, 0);
}

}  // namespace
}  // namespace muse
