#include "src/core/plan_export.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/amuse.h"
#include "src/core/plan_json.h"

namespace muse {
namespace {

struct Env {
  TypeRegistry reg;
  Query q;
  Network net;
  std::unique_ptr<ProjectionCatalog> cat;
  PlanResult plan;

  Env() : net(4, 3) {
    q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
    q.AddPredicate(Predicate::Equality(0, 0, 1, 0, 0.05));
    net.AddProducer(0, 0);
    net.AddProducer(1, 0);
    net.AddProducer(1, 1);
    net.AddProducer(2, 1);
    net.AddProducer(0, 2);
    net.AddProducer(3, 2);
    net.SetRate(0, 100);
    net.SetRate(1, 100);
    net.SetRate(2, 1);
    cat = std::make_unique<ProjectionCatalog>(q, net);
    plan = PlanQuery(*cat);
  }
};

TEST(PlanExportTest, DotContainsClustersVerticesAndEdges) {
  Env env;
  std::string dot = ToDot(env.plan.graph, {env.cat.get()}, &env.reg);
  EXPECT_NE(dot.find("digraph muse"), std::string::npos);
  EXPECT_NE(dot.find("cluster_n0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Uses registry names, not raw ids.
  EXPECT_NE(dot.find("C"), std::string::npos);
  // Balanced braces (quick structural sanity).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(PlanExportTest, ExplainChargesSumToGraphCost) {
  Env env;
  std::vector<StreamCharge> charges =
      ExplainCharges(env.plan.graph, {env.cat.get()}, &env.reg);
  double sum = 0;
  for (const StreamCharge& c : charges) {
    sum += c.weight;
    EXPECT_NE(c.src, c.dst);  // local edges are not charges
    EXPECT_GT(c.weight, 0);
  }
  EXPECT_NEAR(sum, GraphCost(env.plan.graph, *env.cat), 1e-9);
  // Sorted heaviest-first.
  for (size_t i = 1; i < charges.size(); ++i) {
    EXPECT_GE(charges[i - 1].weight, charges[i].weight);
  }
}

TEST(PlanExportTest, ExplainPlanRendersTotal) {
  Env env;
  std::string text = ExplainPlan(env.plan.graph, {env.cat.get()}, &env.reg);
  EXPECT_NE(text.find("network streams"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(PlanJsonTest, RoundTripPreservesGraph) {
  Env env;
  std::string json = PlanToJson(env.plan.graph);
  Result<MuseGraph> parsed = PlanFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->CanonicalString(), env.plan.graph.CanonicalString());
  EXPECT_EQ(parsed->sinks().size(), env.plan.graph.sinks().size());
  // Cost computed from the round-tripped plan is identical.
  EXPECT_DOUBLE_EQ(GraphCost(*parsed, *env.cat),
                   GraphCost(env.plan.graph, *env.cat));
}

TEST(PlanJsonTest, EmptyGraphRoundTrips) {
  MuseGraph g;
  Result<MuseGraph> parsed = PlanFromJson(PlanToJson(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vertices(), 0);
}

TEST(PlanJsonTest, MalformedInputsRejectedGracefully) {
  for (const char* bad : {
           "",
           "{",
           "nonsense",
           "{\"vertices\": [{\"query\": 0}]}",        // vertex w/o types
           "{\"vertices\": [], \"edges\": [[0,1]]}",  // edge out of range
           "{\"vertices\": [], \"sinks\": [3]}",      // sink out of range
           "{\"unknown\": []}",
           "{\"vertices\": [{\"types\": [99], \"node\": 0}]}",  // bad type
           "{\"vertices\": []} trailing",
       }) {
    Result<MuseGraph> parsed = PlanFromJson(bad);
    EXPECT_FALSE(parsed.ok()) << "input: " << bad;
  }
}

TEST(PlanJsonTest, PartitionAndReuseFieldsPreserved) {
  MuseGraph g;
  int a = g.AddVertex(PlanVertex{1, TypeSet({2, 5}), 3, 2, true});
  int b = g.AddVertex(PlanVertex{0, TypeSet({1}), 0, 1, false});
  g.AddEdge(b, a);
  g.SetSinks({a});
  Result<MuseGraph> parsed = PlanFromJson(PlanToJson(g));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const PlanVertex* found = nullptr;
  for (const PlanVertex& v : parsed->vertices()) {
    if (v.proj == TypeSet({2, 5})) found = &v;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->query, 1);
  EXPECT_EQ(found->node, 3u);
  EXPECT_EQ(found->part_type, 2);
  EXPECT_TRUE(found->reused);
}

}  // namespace
}  // namespace muse
