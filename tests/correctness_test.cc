#include "src/core/correctness.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/core/bindings.h"
#include "src/core/cost.h"

namespace muse {
namespace {

struct Fig2 {
  TypeRegistry reg;
  Query q;
  Network net;
  std::unique_ptr<ProjectionCatalog> cat;

  Fig2() : net(4, 3) {
    q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
    net.AddProducer(0, 0);
    net.AddProducer(1, 0);
    net.AddProducer(1, 1);
    net.AddProducer(2, 1);
    net.AddProducer(0, 2);
    net.AddProducer(3, 2);
    cat = std::make_unique<ProjectionCatalog>(q, net);
  }

  int Prim(MuseGraph* g, EventTypeId t, NodeId n) const {
    return g->AddVertex(
        PlanVertex{0, TypeSet::Of(t), n, static_cast<int>(t), false});
  }

  void AddAllPrimitives(MuseGraph* g) const {
    for (EventTypeId t : q.PrimitiveTypes()) {
      for (NodeId n : net.Producers(t)) Prim(g, t, n);
    }
  }
};

MuseGraph Fig2Graph(const Fig2& f) {
  MuseGraph g;
  int c0 = f.Prim(&g, 0, 0);
  int c1 = f.Prim(&g, 0, 1);
  int l1 = f.Prim(&g, 1, 1);
  int l2 = f.Prim(&g, 1, 2);
  int f0 = f.Prim(&g, 2, 0);
  int f3 = f.Prim(&g, 2, 3);
  int v1 = g.AddVertex(PlanVertex{0, TypeSet({1, 2}), 0, kNoPartition, false});
  int v2 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, 0, false});
  int v3 = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 1, 0, false});
  int v4 = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 0, 0, false});
  int v5 = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 1, 0, false});
  g.AddEdge(l1, v1);
  g.AddEdge(l2, v1);
  g.AddEdge(f0, v1);
  g.AddEdge(f3, v1);
  g.AddEdge(c0, v2);
  g.AddEdge(l1, v2);
  g.AddEdge(l2, v2);
  g.AddEdge(c1, v3);
  g.AddEdge(l1, v3);
  g.AddEdge(l2, v3);
  g.AddEdge(v1, v4);
  g.AddEdge(v1, v5);
  g.AddEdge(v2, v4);
  g.AddEdge(v3, v5);
  g.SetSinks({v4, v5});
  return g;
}

TEST(CorrectnessTest, Fig2GraphIsCorrect) {
  Fig2 f;
  MuseGraph g = Fig2Graph(f);
  std::string why;
  EXPECT_TRUE(IsWellFormed(g, {f.cat.get()}, &why)) << why;
  EXPECT_TRUE(IsComplete(g, {f.cat.get()}, &why)) << why;
  EXPECT_TRUE(IsCorrectPlan(g, *f.cat, &why)) << why;
}

TEST(CorrectnessTest, MissingPrimitiveVertexDetected) {
  Fig2 f;
  MuseGraph g;
  // Omit (C,1).
  f.Prim(&g, 0, 0);
  f.Prim(&g, 1, 1);
  f.Prim(&g, 1, 2);
  f.Prim(&g, 2, 0);
  f.Prim(&g, 2, 3);
  std::string why;
  EXPECT_FALSE(IsWellFormed(g, {f.cat.get()}, &why));
  EXPECT_NE(why.find("missing primitive"), std::string::npos);
}

TEST(CorrectnessTest, IncorrectCombinationDetected) {
  Fig2 f;
  MuseGraph g;
  f.AddAllPrimitives(&g);
  // A q-vertex fed only by {C,L}: combination union misses F.
  int v = g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 0, kNoPartition,
                                 false});
  int p = g.AddVertex(PlanVertex{0, TypeSet({0, 1}), 0, kNoPartition, false});
  g.AddEdge(g.FindVertex(PlanVertex{0, TypeSet({0}), 0, 0, false}), p);
  g.AddEdge(g.FindVertex(PlanVertex{0, TypeSet({0}), 1, 0, false}), p);
  g.AddEdge(g.FindVertex(PlanVertex{0, TypeSet({1}), 1, 1, false}), p);
  g.AddEdge(g.FindVertex(PlanVertex{0, TypeSet({1}), 2, 1, false}), p);
  g.AddEdge(p, v);
  std::string why;
  EXPECT_FALSE(IsWellFormed(g, {f.cat.get()}, &why));
  EXPECT_NE(why.find("combination"), std::string::npos);
}

TEST(CorrectnessTest, IncompletePartitionDetected) {
  Fig2 f;
  MuseGraph g;
  f.AddAllPrimitives(&g);
  // Only one of the two C-partitioned sinks present: bindings with C@1
  // uncovered.
  g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 0, 0, false});
  std::string why;
  EXPECT_FALSE(IsComplete(g, {f.cat.get()}, &why));
}

TEST(CorrectnessTest, SingleSinkIsComplete) {
  Fig2 f;
  MuseGraph g;
  f.AddAllPrimitives(&g);
  g.AddVertex(PlanVertex{0, TypeSet({0, 1, 2}), 2, kNoPartition, false});
  std::string why;
  EXPECT_TRUE(IsComplete(g, {f.cat.get()}, &why)) << why;
}

TEST(CorrectnessTest, NoSinkDetected) {
  Fig2 f;
  MuseGraph g;
  f.AddAllPrimitives(&g);
  std::string why;
  EXPECT_FALSE(IsComplete(g, {f.cat.get()}, &why));
  EXPECT_NE(why.find("no sink"), std::string::npos);
}

TEST(VerticesCoverAllBindingsTest, MaterializedCoverChecks) {
  Fig2 f;
  // Partitioned pair on C covers everything.
  std::vector<PlanVertex> pair = {
      PlanVertex{0, TypeSet({0, 1}), 0, 0, false},
      PlanVertex{0, TypeSet({0, 1}), 1, 0, false}};
  EXPECT_TRUE(VerticesCoverAllBindings(pair, f.net, TypeSet({0, 1})));
  // One of them alone does not.
  EXPECT_FALSE(VerticesCoverAllBindings({pair[0]}, f.net, TypeSet({0, 1})));
  // A single-sink vertex covers everything.
  std::vector<PlanVertex> single = {
      PlanVertex{0, TypeSet({0, 1}), 3, kNoPartition, false}};
  EXPECT_TRUE(VerticesCoverAllBindings(single, f.net, TypeSet({0, 1})));
}

TEST(VerticesCoverAllBindingsTest, DescriptorCountsAgreeWithMaterialized) {
  // Property 1-style check: descriptor-based cover sizes equal the
  // materialized counts for partitioned vertices.
  Fig2 f;
  PlanVertex v{0, TypeSet({0, 1, 2}), 1, 0, false};
  std::vector<Binding> all = EnumerateBindings(f.net, v.proj);
  int covered = 0;
  for (const Binding& b : all) {
    if (b.NodeFor(0) == 1) ++covered;
  }
  EXPECT_DOUBLE_EQ(VertexCoverCount(f.net, v), covered);
}

}  // namespace
}  // namespace muse
