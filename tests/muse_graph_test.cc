#include "src/core/muse_graph.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

PlanVertex V(TypeSet proj, NodeId node, int part = kNoPartition) {
  return PlanVertex{0, proj, node, part, false};
}

TEST(PlanVertexTest, IdentityAndPrimitive) {
  PlanVertex a = V({0}, 1, 0);
  PlanVertex b = V({0}, 1, 0);
  PlanVertex c = V({0}, 2, 0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.IsPrimitive());
  EXPECT_FALSE(V({0, 1}, 1).IsPrimitive());
}

TEST(MuseGraphTest, AddVertexDeduplicates) {
  MuseGraph g;
  int a = g.AddVertex(V({0, 1}, 2));
  int b = g.AddVertex(V({0, 1}, 2));
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_vertices(), 1);
  int c = g.AddVertex(V({0, 1}, 3));
  EXPECT_NE(a, c);
}

TEST(MuseGraphTest, AddEdgeDeduplicatesAndSkipsSelfLoops) {
  MuseGraph g;
  int a = g.AddVertex(V({0}, 0, 0));
  int b = g.AddVertex(V({0, 1}, 0));
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  g.AddEdge(a, a);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(MuseGraphTest, MergeRemapsAndDedups) {
  MuseGraph g1;
  int a1 = g1.AddVertex(V({0}, 0, 0));
  int b1 = g1.AddVertex(V({0, 1}, 1));
  g1.AddEdge(a1, b1);

  MuseGraph g2;
  int a2 = g2.AddVertex(V({0}, 0, 0));  // same as a1
  int c2 = g2.AddVertex(V({0, 2}, 2));
  g2.AddEdge(a2, c2);

  std::vector<int> remap = g1.Merge(g2);
  EXPECT_EQ(g1.num_vertices(), 3);
  EXPECT_EQ(remap[a2], a1);
  EXPECT_EQ(g1.edges().size(), 2u);

  // Merging again changes nothing.
  g1.Merge(g2);
  EXPECT_EQ(g1.num_vertices(), 3);
  EXPECT_EQ(g1.edges().size(), 2u);
}

TEST(MuseGraphTest, PredecessorsSuccessorsPaths) {
  MuseGraph g;
  int a = g.AddVertex(V({0}, 0, 0));
  int b = g.AddVertex(V({1}, 1, 1));
  int c = g.AddVertex(V({0, 1}, 0));
  int d = g.AddVertex(V({0, 1, 2}, 0));
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  g.AddEdge(c, d);

  EXPECT_EQ(g.Predecessors(c), (std::vector<int>{a, b}));
  EXPECT_EQ(g.Successors(c), (std::vector<int>{d}));
  EXPECT_TRUE(g.HasPath(a, d));
  EXPECT_FALSE(g.HasPath(d, a));
  EXPECT_TRUE(g.HasPath(a, a));
  EXPECT_EQ(g.SourceVertices(), (std::vector<int>{a, b}));
}

TEST(MuseGraphTest, CanonicalStringOrderIndependent) {
  MuseGraph g1;
  int a = g1.AddVertex(V({0}, 0, 0));
  int b = g1.AddVertex(V({1}, 1, 1));
  int c = g1.AddVertex(V({0, 1}, 0));
  g1.AddEdge(a, c);
  g1.AddEdge(b, c);

  MuseGraph g2;
  int c2 = g2.AddVertex(V({0, 1}, 0));
  int b2 = g2.AddVertex(V({1}, 1, 1));
  int a2 = g2.AddVertex(V({0}, 0, 0));
  g2.AddEdge(b2, c2);
  g2.AddEdge(a2, c2);

  EXPECT_EQ(g1.CanonicalString(), g2.CanonicalString());
}

TEST(VertexCoverCountTest, FullAndPartitionedCovers) {
  Network net(4, 3);
  net.AddProducer(0, 0);
  net.AddProducer(1, 0);
  net.AddProducer(1, 1);
  net.AddProducer(2, 1);
  net.AddProducer(0, 2);
  net.AddProducer(3, 2);

  // Single-sink vertex covers all bindings: 2*2*2 = 8.
  EXPECT_DOUBLE_EQ(VertexCoverCount(net, V({0, 1, 2}, 0)), 8.0);
  // Partitioned on type 0: the type-0 tuple is pinned -> 2*2 = 4.
  EXPECT_DOUBLE_EQ(VertexCoverCount(net, V({0, 1, 2}, 0, 0)), 4.0);
  // Primitive vertex: exactly one binding.
  EXPECT_DOUBLE_EQ(VertexCoverCount(net, V({0}, 0, 0)), 1.0);
  // Paper Example 6: v2 = (p3, n0) partitioned on C covers 2 bindings.
  EXPECT_DOUBLE_EQ(VertexCoverCount(net, V({0, 1}, 0, 0)), 2.0);
}

}  // namespace
}  // namespace muse
