#include "src/cep/predicate.h"

#include <gtest/gtest.h>

namespace muse {
namespace {

Event Ev(EventTypeId type, int64_t a0, int64_t a1 = 0) {
  Event e;
  e.type = type;
  e.attrs = {a0, a1};
  return e;
}

TEST(PredicateTest, EqualityHoldsAndFails) {
  Predicate p = Predicate::Equality(0, 0, 1, 0, 0.1);
  EXPECT_TRUE(p.Eval({Ev(0, 7), Ev(1, 7)}));
  EXPECT_FALSE(p.Eval({Ev(0, 7), Ev(1, 8)}));
}

TEST(PredicateTest, EqualityOnDifferentAttrs) {
  Predicate p = Predicate::Equality(0, 0, 1, 1, 0.1);
  EXPECT_TRUE(p.Eval({Ev(0, 7, 0), Ev(1, 9, 7)}));
  EXPECT_FALSE(p.Eval({Ev(0, 7, 0), Ev(1, 7, 9)}));
}

TEST(PredicateTest, NotApplicableIsVacuouslyTrue) {
  Predicate p = Predicate::Equality(0, 0, 1, 0, 0.1);
  EXPECT_TRUE(p.Eval({Ev(0, 7)}));  // right type absent
  EXPECT_TRUE(p.Eval({Ev(2, 1)}));  // both absent
}

TEST(PredicateTest, FilterModulus) {
  Predicate p = Predicate::Filter(3, 0, 4);
  EXPECT_TRUE(p.Eval({Ev(3, 8)}));
  EXPECT_FALSE(p.Eval({Ev(3, 9)}));
  EXPECT_DOUBLE_EQ(p.selectivity, 0.25);
}

TEST(PredicateTest, FilterUsesEuclideanModOnNegativeAttributes) {
  // Regression: Eval used C++'s truncated `%`, for which -3 % 2 == -1, so
  // every odd-modulus-residue negative attribute silently failed the
  // filter. The Euclidean remainder is always in [0, modulus): -4 % 4 == 0
  // and -6 % 4 == 2, matching how the residue classes partition the
  // integers.
  Predicate p = Predicate::Filter(3, 0, 4);
  EXPECT_TRUE(p.Eval({Ev(3, -4)}));
  EXPECT_TRUE(p.Eval({Ev(3, -8)}));
  EXPECT_TRUE(p.Eval({Ev(3, 0)}));
  EXPECT_FALSE(p.Eval({Ev(3, -1)}));
  EXPECT_FALSE(p.Eval({Ev(3, -6)}));

  EXPECT_EQ(EuclidMod(-4, 4), 0);
  EXPECT_EQ(EuclidMod(-6, 4), 2);
  EXPECT_EQ(EuclidMod(-1, 4), 3);
  EXPECT_EQ(EuclidMod(7, 4), 3);
  // Every value agrees with the mathematical definition: the remainder of
  // value = q*m + r with r in [0, m).
  for (int64_t v = -25; v <= 25; ++v) {
    for (int64_t m : {1, 2, 3, 5, 7}) {
      const int64_t r = EuclidMod(v, m);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, m);
      EXPECT_EQ((v - r) % m, 0) << "v=" << v << " m=" << m;
    }
  }
}

TEST(PredicateTest, TypesAndApplicability) {
  Predicate eq = Predicate::Equality(0, 0, 5, 0, 0.1);
  EXPECT_EQ(eq.Types(), TypeSet({0, 5}));
  EXPECT_TRUE(eq.ApplicableTo(TypeSet({0, 5, 9})));
  EXPECT_FALSE(eq.ApplicableTo(TypeSet({0, 9})));

  Predicate f = Predicate::Filter(2, 1, 10);
  EXPECT_EQ(f.Types(), TypeSet({2}));
  EXPECT_TRUE(f.ApplicableTo(TypeSet({2})));
  EXPECT_FALSE(f.ApplicableTo(TypeSet({3})));
}

TEST(PredicateTest, CombinedSelectivityProductOfApplicable) {
  std::vector<Predicate> preds = {
      Predicate::Equality(0, 0, 1, 0, 0.5),
      Predicate::Equality(1, 0, 2, 0, 0.1),
      Predicate::Filter(3, 0, 10),
  };
  EXPECT_DOUBLE_EQ(CombinedSelectivity(preds, TypeSet({0, 1, 2, 3})),
                   0.5 * 0.1 * 0.1);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(preds, TypeSet({0, 1})), 0.5);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(preds, TypeSet({0, 2})), 1.0);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(preds, TypeSet({3})), 0.1);
}

TEST(PredicateTest, ToStringStable) {
  EXPECT_EQ(Predicate::Equality(0, 0, 1, 1, 0.1).ToString(),
            "E0.a0==E1.a1");
  EXPECT_EQ(Predicate::Filter(2, 0, 4).ToString(), "E2.a0%4==0");
}

}  // namespace
}  // namespace muse
