// Parser round-trip fuzz (muse-par): random valid query ASTs, printed with
// Query::ToString and re-parsed with ParseQuery, must come back structurally
// identical (equal signatures — structure, window, predicates). Type names
// deliberately include keyword lookalikes ("PATTERN", "Where", "AND", ...)
// to stress the tokenizer's keyword/identifier disambiguation.

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/cep/parser.h"
#include "src/cep/query.h"
#include "src/common/rng.h"

namespace muse {
namespace {

/// Tricky-but-legal event type names; interned in this order so ids are
/// stable across print and re-parse.
const char* kNames[] = {
    "A",   "B",     "C",       "PATTERN", "Where", "Within", "AND",
    "OR",  "seq_1", "NSEQx",   "E7",      "x",     "_u",     "T13",
    "and", "Kill",
};
constexpr int kNumNames = static_cast<int>(std::size(kNames));

TypeRegistry MakeRegistry() {
  TypeRegistry reg;
  for (const char* name : kNames) reg.Intern(name);
  return reg;
}

/// Builds a random operator tree over exactly `types` (distinct, per the
/// §6 single-primitive-per-type rule): composites split the list into 2-4
/// contiguous parts (NSEQ exactly 3) and recurse. `forbid_nseq_root`
/// avoids NSEQ directly under NSEQ, which Validate rejects (same-kind
/// nesting that no combinator can flatten).
Query RandomAst(const std::vector<EventTypeId>& types, Rng& rng,
                bool forbid_nseq_root = false) {
  if (types.size() == 1) return Query::Primitive(types[0]);
  const int n = static_cast<int>(types.size());
  int kind = static_cast<int>(
      rng.UniformInt(0, n >= 3 && !forbid_nseq_root ? 3 : 2));
  const int arity = kind == 3
                        ? 3
                        : static_cast<int>(rng.UniformInt(
                              2, std::min<int64_t>(4, n)));
  // Random contiguous partition of `types` into `arity` non-empty parts.
  std::vector<int> sizes(static_cast<size_t>(arity), 1);
  for (int extra = n - arity; extra > 0; --extra) {
    ++sizes[static_cast<size_t>(rng.UniformInt(0, arity - 1))];
  }
  std::vector<Query> children;
  int offset = 0;
  for (int part = 0; part < arity; ++part) {
    std::vector<EventTypeId> sub(types.begin() + offset,
                                 types.begin() + offset + sizes[part]);
    offset += sizes[part];
    children.push_back(RandomAst(sub, rng, /*forbid_nseq_root=*/kind == 3));
  }
  switch (kind) {
    case 0:
      return Query::Seq(std::move(children));
    case 1:
      return Query::And(std::move(children));
    case 2:
      return Query::Or(std::move(children));
    default: {
      Query last = std::move(children[2]);
      Query mid = std::move(children[1]);
      Query first = std::move(children[0]);
      return Query::Nseq(std::move(first), std::move(mid), std::move(last));
    }
  }
}

TEST(ParserFuzzTest, RoundTripRandomAsts) {
  TypeRegistry reg = MakeRegistry();
  constexpr int kIterations = 400;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(5200 + static_cast<uint64_t>(iter) * 41);
    // 1-6 distinct types in random order.
    std::vector<EventTypeId> pool;
    for (int t = 0; t < kNumNames; ++t) {
      pool.push_back(static_cast<EventTypeId>(t));
    }
    for (size_t i = pool.size() - 1; i > 0; --i) {
      std::swap(pool[i],
                pool[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i)))]);
    }
    pool.resize(static_cast<size_t>(rng.UniformInt(1, 6)));
    Query q = RandomAst(pool, rng);
    ASSERT_TRUE(q.Validate()) << q.ToString(&reg);

    const std::string text = q.ToString(&reg);
    Result<Query> round = ParseQuery(text, &reg);
    ASSERT_TRUE(round.ok()) << "text: " << text << "\nerror: "
                            << round.error().message;
    EXPECT_EQ(round.value().Signature(), q.Signature())
        << "text: " << text << "\nreparsed: " << round.value().ToString(&reg);
  }
}

TEST(ParserFuzzTest, RoundTripWithWindow) {
  // ToString omits the window, so round-trip it via an explicit WITHIN
  // clause and compare full signatures (which cover the window).
  TypeRegistry reg = MakeRegistry();
  for (int iter = 0; iter < 50; ++iter) {
    Rng rng(6400 + static_cast<uint64_t>(iter) * 13);
    std::vector<EventTypeId> types;
    for (int t = 0; t < 4; ++t) types.push_back(static_cast<EventTypeId>(t));
    const uint64_t window_s = static_cast<uint64_t>(rng.UniformInt(1, 3600));
    Query q = RandomAst(types, rng);
    q.set_window(window_s * 1000);

    const std::string text =
        q.ToString(&reg) + " WITHIN " + std::to_string(window_s) + "s";
    Result<Query> round = ParseQuery(text, &reg);
    ASSERT_TRUE(round.ok()) << "text: " << text << "\nerror: "
                            << round.error().message;
    EXPECT_EQ(round.value().window(), q.window());
    EXPECT_EQ(round.value().Signature(), q.Signature()) << "text: " << text;
  }
}

TEST(ParserFuzzTest, RoundTripSpecStringsWithPredicates) {
  // Query::ToSpecString renders the full spec — pattern, WHERE terms
  // (unary modulus filters and pairwise equalities), WITHIN — and must
  // re-parse to an identical signature. References are printed as type
  // names, so this also fuzzes the parser's var-free reference resolution
  // and the root-level `<primitive> WHERE ...` form against the
  // keyword-lookalike name pool.
  TypeRegistry reg = MakeRegistry();
  constexpr int kIterations = 300;
  int with_filters = 0, with_equalities = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng(7700 + static_cast<uint64_t>(iter) * 29);
    std::vector<EventTypeId> pool;
    for (int t = 0; t < kNumNames; ++t) {
      pool.push_back(static_cast<EventTypeId>(t));
    }
    for (size_t i = pool.size() - 1; i > 0; --i) {
      std::swap(pool[i],
                pool[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(i)))]);
    }
    pool.resize(static_cast<size_t>(rng.UniformInt(1, 5)));
    Query q = RandomAst(pool, rng);

    const int num_filters = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < num_filters; ++i) {
      q.AddPredicate(Predicate::Filter(
          pool[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))],
          static_cast<int>(rng.UniformInt(0, kNumAttrs - 1)),
          rng.UniformInt(1, 64)));
      ++with_filters;
    }
    if (pool.size() >= 2 && rng.UniformInt(0, 1) == 1) {
      // Equality over two distinct pool types; the parser assigns its
      // default selectivity, which Signature() deliberately omits.
      q.AddPredicate(Predicate::Equality(
          pool[0], static_cast<int>(rng.UniformInt(0, kNumAttrs - 1)),
          pool[1], static_cast<int>(rng.UniformInt(0, kNumAttrs - 1)), 0.1));
      ++with_equalities;
    }
    if (rng.UniformInt(0, 1) == 1) {
      q.set_window(static_cast<uint64_t>(rng.UniformInt(1, 100000)));
    }
    ASSERT_TRUE(q.Validate()) << q.ToSpecString(&reg);

    const std::string text = q.ToSpecString(&reg);
    Result<Query> round = ParseQuery(text, &reg);
    ASSERT_TRUE(round.ok()) << "text: " << text
                            << "\nerror: " << round.error().message;
    EXPECT_EQ(round.value().Signature(), q.Signature())
        << "text: " << text
        << "\nreparsed: " << round.value().ToSpecString(&reg);
    EXPECT_EQ(round.value().window(), q.window()) << "text: " << text;
  }
  // The property must cover both predicate kinds, not hold vacuously.
  EXPECT_GT(with_filters, 0);
  EXPECT_GT(with_equalities, 0);
}

TEST(ParserFuzzTest, PatternAsTypeNameRoundTrips) {
  // Regression (found by RoundTripRandomAsts): a sole primitive whose event
  // type is literally named PATTERN used to be swallowed by the keyword
  // consumer, leaving nothing to parse as the expression.
  TypeRegistry reg = MakeRegistry();
  Query q = Query::Primitive(static_cast<EventTypeId>(reg.Find("PATTERN")));
  const std::string text = q.ToString(&reg);
  ASSERT_EQ(text, "PATTERN");
  Result<Query> round = ParseQuery(text, &reg);
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().Signature(), q.Signature());
}

TEST(ParserFuzzTest, NestedCommutativeFlattenCanonicalizes) {
  // Regression (found by RoundTripRandomAsts): the combinators sorted
  // AND/OR children *before* flattening same-kind nesting, so a nested
  // child's grandchildren were spliced in as one unsorted block and
  // OR(OR(b,d),a,c) != OR(a,b,c,d) by signature — breaking both the
  // print/parse round trip and §6.2 plan sharing.
  Query nested = Query::Or(
      {Query::Or({Query::Primitive(1), Query::Primitive(3)}),
       Query::Primitive(0), Query::Primitive(2)});
  Query flat = Query::Or({Query::Primitive(0), Query::Primitive(1),
                          Query::Primitive(2), Query::Primitive(3)});
  EXPECT_EQ(nested.Signature(), flat.Signature());

  Query nested_and = Query::And(
      {Query::Primitive(2),
       Query::And({Query::Primitive(3), Query::Primitive(0)})});
  Query flat_and = Query::And(
      {Query::Primitive(0), Query::Primitive(2), Query::Primitive(3)});
  EXPECT_EQ(nested_and.Signature(), flat_and.Signature());
}

TEST(ParserFuzzTest, PatternKeywordStillIntroducesQueries) {
  // The fix must not regress the SASE-style form of Listing 1.
  TypeRegistry reg;
  Result<Query> q = ParseQuery(
      "PATTERN SEQ(Fail f, Kill k) WHERE f.a0 == k.a0 WITHIN 30min", &reg);
  ASSERT_TRUE(q.ok()) << q.error().message;
  EXPECT_EQ(q.value().NumPrimitives(), 2);
  EXPECT_EQ(q.value().predicates().size(), 1u);
  EXPECT_EQ(q.value().window(), 30u * 60 * 1000);
}

}  // namespace
}  // namespace muse
