#include "src/core/beneficial.h"

#include <gtest/gtest.h>

#include "src/cep/parser.h"

namespace muse {
namespace {

struct Ctx {
  TypeRegistry reg;
  Query q;
  Network net;
  std::unique_ptr<ProjectionCatalog> cat;

  explicit Ctx(double rc, double rl, double rf, double sel_cl = 1.0)
      : net(4, 3) {
    q = ParseQuery("SEQ(AND(C, L), F)", &reg).value();
    if (sel_cl < 1.0) q.AddPredicate(Predicate::Equality(0, 0, 1, 0, sel_cl));
    net.AddProducer(0, 0);
    net.AddProducer(1, 0);
    net.AddProducer(1, 1);
    net.AddProducer(2, 1);
    net.AddProducer(0, 2);
    net.AddProducer(3, 2);
    net.SetRate(0, rc);
    net.SetRate(1, rl);
    net.SetRate(2, rf);
    cat = std::make_unique<ProjectionCatalog>(q, net);
  }
};

TEST(BeneficialProjectionTest, LowSelectivityMakesProjectionBeneficial) {
  // r̂(AND(C,L)) = σ*2*rc*rl; beneficial iff <= rc + rl (Def. 13).
  Ctx cheap(10, 10, 1, /*sel_cl=*/0.05);
  EXPECT_TRUE(IsBeneficialProjection(*cheap.cat, TypeSet({0, 1})));
  Ctx expensive(10, 10, 1, /*sel_cl=*/1.0);
  EXPECT_FALSE(IsBeneficialProjection(*expensive.cat, TypeSet({0, 1})));
}

TEST(BeneficialProjectionTest, LowRatePairIsBeneficial) {
  Ctx s(100, 100, 1);
  // SEQ(C,F): rate 100*1 = 100 <= 100 + 1? 100 <= 101 yes.
  EXPECT_TRUE(IsBeneficialProjection(*s.cat, TypeSet({0, 2})));
  // AND(C,L): 2*100*100 = 20000 > 200: not beneficial.
  EXPECT_FALSE(IsBeneficialProjection(*s.cat, TypeSet({0, 1})));
}

TEST(BeneficialProjectionTest, SingletonsAlwaysBeneficial) {
  Ctx s(100, 100, 1);
  EXPECT_TRUE(IsBeneficialProjection(*s.cat, TypeSet({0})));
  EXPECT_TRUE(IsBeneficialProjection(*s.cat, TypeSet({1})));
  EXPECT_TRUE(IsBeneficialProjection(*s.cat, TypeSet({2})));
}

TEST(StarFilterTest, RequiresDominantPrimitiveInput) {
  // SEQ(C,F) with rc=100, rf=1: total output = 100*1 * |E| (2*2=4) = 400;
  // no single input rate (100, 1) >= 400 -> fails the filter.
  Ctx s(100, 100, 1);
  EXPECT_FALSE(PassesStarFilter(*s.cat, TypeSet({0, 2})));
  // With tiny selectivity the projection passes.
  Ctx t(100, 100, 1, 0.001);
  // SEQ(C,F) has no C-L predicate applied... use AND(C,L): output =
  // 0.001*2*100*100*4 = 80 <= 100.
  EXPECT_TRUE(PassesStarFilter(*t.cat, TypeSet({0, 1})));
}

TEST(StarFilterTest, SingletonsPass) {
  Ctx s(100, 100, 1);
  EXPECT_TRUE(PassesStarFilter(*s.cat, TypeSet({2})));
}

TEST(StarPredecessorTest, ComparesRates) {
  Ctx s(100, 100, 1, 0.0001);
  // target q (rate tiny), predecessor L (rate 100): allowed iff
  // r̂(L) >= r̂(q)*|E(q)|.
  TypeSet full({0, 1, 2});
  double total = s.cat->Rate(full) * s.cat->Bindings(full);
  EXPECT_EQ(StarAllowsPredecessor(*s.cat, full, TypeSet({1})),
            s.cat->Rate(TypeSet({1})) >= total);
}

TEST(PartitioningInputTest, DominantPartFound) {
  Ctx s(1000, 1000, 1, 0.00001);
  // Combination q <- {AND(C,L), F}: r̂(AND(C,L)) = σ*2e6 = 20;
  // other part F: r̂=1 * |E(F)|=2 -> 2. 20 >= 2: partitioning input.
  Combination c{TypeSet({0, 1, 2}), {TypeSet({0, 1}), TypeSet({2})}};
  EXPECT_EQ(FindPartitioningInput(*s.cat, c), 0);
}

TEST(PartitioningInputTest, NoneWhenBalanced) {
  Ctx s(10, 10, 10);
  // {C}, {L}, {F} all rate 10 with 2 bindings each: 10 < 40.
  Combination c{TypeSet({0, 1, 2}),
                {TypeSet({0}), TypeSet({1}), TypeSet({2})}};
  EXPECT_EQ(FindPartitioningInput(*s.cat, c), -1);
}

TEST(PartitioningInputTest, PaperExampleCIsPartitioningInput) {
  // Example 18: with C dominant, the placement of p3 = AND(C,L) has C as
  // partitioning input for combination {C, L}.
  Ctx s(1000, 10, 1);
  Combination c{TypeSet({0, 1}), {TypeSet({0}), TypeSet({1})}};
  // r̂(C) = 1000 >= r̂(L)*|E(L)| = 20.
  EXPECT_EQ(FindPartitioningInput(*s.cat, c), 0);
}

TEST(BeneficialVertexTest, Example13Inequality) {
  // Example 13: v1 (hosting p2 = SEQ(L,F), 4 bindings) is beneficial iff
  // 4*r̂(p2) <= 2*r̂(L) + 2*r̂(F).
  Ctx s(100, 100, 1);
  std::vector<std::pair<TypeSet, double>> preds = {{TypeSet({1}), 2.0},
                                                   {TypeSet({2}), 2.0}};
  // 4*100 > 2*100 + 2*1: not beneficial at these rates.
  EXPECT_FALSE(SatisfiesBeneficialVertexInequality(*s.cat, TypeSet({1, 2}),
                                                   4.0, preds));
  Ctx t(100, 100, 0.1);
  // r̂(p2) = 100*0.1 = 10; 40 <= 200.2: beneficial.
  std::vector<std::pair<TypeSet, double>> preds2 = {{TypeSet({1}), 2.0},
                                                    {TypeSet({2}), 2.0}};
  EXPECT_TRUE(SatisfiesBeneficialVertexInequality(*t.cat, TypeSet({1, 2}),
                                                  4.0, preds2));
}

}  // namespace
}  // namespace muse
