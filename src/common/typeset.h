#ifndef MUSE_COMMON_TYPESET_H_
#define MUSE_COMMON_TYPESET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/common/check.h"

namespace muse {

/// Identifier of an event type. Event types are interned in a
/// `TypeRegistry`; ids are dense and start at zero.
using EventTypeId = uint32_t;

/// A set of event types, represented as a 64-bit mask. The universe of event
/// types handled by one planner instance is therefore bounded by 64, which
/// comfortably covers the paper's settings (15–20 types) and realistic CEP
/// deployments.
///
/// `TypeSet` is the identity of a *query projection* within a single query:
/// the paper's construction (§6) assumes that no query contains two primitive
/// operators referencing the same event type, so a projection π(q, E') is
/// fully determined by the subset E' of primitive event types it retains.
class TypeSet {
 public:
  constexpr TypeSet() : bits_(0) {}
  constexpr explicit TypeSet(uint64_t bits) : bits_(bits) {}
  TypeSet(std::initializer_list<EventTypeId> types) : bits_(0) {
    for (EventTypeId t : types) Insert(t);
  }

  /// The set containing the single type `t`.
  static constexpr TypeSet Of(EventTypeId t) { return TypeSet(Bit(t)); }

  /// The set {0, 1, ..., n-1}.
  static constexpr TypeSet FirstN(int n) {
    return TypeSet(n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }

  constexpr bool Contains(EventTypeId t) const { return (bits_ & Bit(t)) != 0; }
  constexpr bool ContainsAll(TypeSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(TypeSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  /// True if this set is a (non-strict) subset of `other`.
  constexpr bool IsSubsetOf(TypeSet other) const {
    return other.ContainsAll(*this);
  }
  constexpr bool IsProperSubsetOf(TypeSet other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }

  void Insert(EventTypeId t) {
    MUSE_CHECK(t < 64, "event type id out of TypeSet range");
    bits_ |= Bit(t);
  }
  void Remove(EventTypeId t) { bits_ &= ~Bit(t); }

  constexpr TypeSet Union(TypeSet other) const {
    return TypeSet(bits_ | other.bits_);
  }
  constexpr TypeSet Intersect(TypeSet other) const {
    return TypeSet(bits_ & other.bits_);
  }
  constexpr TypeSet Minus(TypeSet other) const {
    return TypeSet(bits_ & ~other.bits_);
  }

  /// Lowest type id contained in the set; the set must be non-empty.
  EventTypeId First() const {
    MUSE_CHECK(!empty(), "First() on empty TypeSet");
    return static_cast<EventTypeId>(std::countr_zero(bits_));
  }

  friend constexpr bool operator==(TypeSet a, TypeSet b) = default;
  friend constexpr auto operator<=>(TypeSet a, TypeSet b) = default;

  /// Iterates over the contained type ids in increasing order.
  class Iterator {
   public:
    explicit constexpr Iterator(uint64_t bits) : bits_(bits) {}
    EventTypeId operator*() const {
      return static_cast<EventTypeId>(std::countr_zero(bits_));
    }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    friend constexpr bool operator==(Iterator a, Iterator b) = default;

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

  /// Renders as e.g. "{0,3,5}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (EventTypeId t : *this) {
      if (!first) out += ",";
      out += std::to_string(t);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  static constexpr uint64_t Bit(EventTypeId t) { return uint64_t{1} << t; }

  uint64_t bits_;
};

/// Invokes `fn(TypeSet)` for every non-empty subset of `set`, in unspecified
/// order. Runs in O(2^|set|).
template <typename Fn>
void ForEachNonEmptySubset(TypeSet set, Fn&& fn) {
  const uint64_t mask = set.bits();
  // Standard sub-mask enumeration: iterates all non-zero sub-masks of mask.
  for (uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
    fn(TypeSet(sub));
  }
}

}  // namespace muse

#endif  // MUSE_COMMON_TYPESET_H_
