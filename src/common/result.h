#ifndef MUSE_COMMON_RESULT_H_
#define MUSE_COMMON_RESULT_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace muse {

/// Lightweight error type carried by `Result<T>`.
struct Error {
  std::string message;
};

/// Value-or-error return type used by fallible operations that are driven by
/// user input (query parsing, plan construction on malformed workloads).
/// The library does not throw exceptions across its public API.
///
/// Usage:
///   Result<Query> q = ParseQuery("SEQ(A, B)");
///   if (!q.ok()) { ... q.error().message ... }
///   Use(q.value());
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : data_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    MUSE_CHECK(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T& value() & {
    MUSE_CHECK(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T&& value() && {
    MUSE_CHECK(ok(), "Result::value() on error");
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    MUSE_CHECK(!ok(), "Result::error() on value");
    return std::get<Error>(data_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> data_;
};

/// Convenience factory: `return Err("unexpected token at ", pos);`
template <typename... Args>
Error Err(Args&&... args) {
  std::string msg;
  ((msg += [](const auto& a) {
     if constexpr (std::is_convertible_v<decltype(a), std::string>) {
       return std::string(a);
     } else {
       return std::to_string(a);
     }
   }(args)),
   ...);
  return Error{std::move(msg)};
}

}  // namespace muse

#endif  // MUSE_COMMON_RESULT_H_
