#ifndef MUSE_COMMON_CHECK_H_
#define MUSE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace muse {

/// Internal invariant checking. `MUSE_CHECK` is always on (including release
/// builds): the planner relies on structural invariants whose violation
/// would silently produce wrong plans, and the cost of the checks is
/// negligible relative to plan construction.
///
/// This is for programmer errors only. Fallible operations driven by user
/// input (parsing, plan requests) report through `Result<T>` instead.
[[noreturn]] inline void CheckFailed(const char* expr, const char* msg,
                                     const char* file, int line) {
  std::fprintf(stderr, "MUSE_CHECK failed: %s (%s) at %s:%d\n", expr, msg,
               file, line);
  std::abort();
}

#define MUSE_CHECK(expr, msg)                                 \
  do {                                                        \
    if (!(expr)) ::muse::CheckFailed(#expr, msg, __FILE__, __LINE__); \
  } while (0)

/// Debug-build-only invariant check for hooks whose evaluation is too
/// expensive for release builds (e.g. re-verifying a whole plan at planner
/// mutation points). In release builds the expression is not evaluated.
#ifndef NDEBUG
#define MUSE_DCHECK(expr, msg) MUSE_CHECK(expr, msg)
#else
#define MUSE_DCHECK(expr, msg) \
  do {                         \
    (void)sizeof(!(expr));     \
  } while (0)
#endif

}  // namespace muse

#endif  // MUSE_COMMON_CHECK_H_
