#ifndef MUSE_COMMON_NUMBERS_H_
#define MUSE_COMMON_NUMBERS_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace muse {

/// Non-throwing number parsing for the fallible input edges (spec files,
/// query strings, plan JSON). The std::sto* family throws on malformed or
/// out-of-range text, which turns a bad byte in user input into process
/// death; these helpers return std::nullopt instead. All require the whole
/// string to parse (no trailing junk).

inline std::optional<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

inline std::optional<uint64_t> ParseUint64(std::string_view text) {
  uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

/// Parses a finite double. Uses strtod (not std::from_chars) so the header
/// stays portable to standard libraries without floating-point from_chars.
inline std::optional<double> ParseDouble(const std::string& text) {
  if (text.empty()) return std::nullopt;
  const char* begin = text.c_str();
  char* parse_end = nullptr;
  double value = std::strtod(begin, &parse_end);
  if (parse_end != begin + text.size()) return std::nullopt;
  if (value != value || value == HUGE_VAL || value == -HUGE_VAL) {
    return std::nullopt;  // NaN or overflow
  }
  return value;
}

}  // namespace muse

#endif  // MUSE_COMMON_NUMBERS_H_
