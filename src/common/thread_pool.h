#ifndef MUSE_COMMON_THREAD_POOL_H_
#define MUSE_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace muse {

/// A small work-stealing thread pool (muse-par). Each worker owns a deque;
/// submitted tasks are distributed round-robin, a worker pops its own deque
/// from the front and steals from the back of a victim's deque when its own
/// runs dry. One pool-wide mutex guards the deques — the planner's tasks are
/// coarse (whole candidate-costing batches), so queue contention is noise
/// compared to the work itself, and a single lock keeps the pool trivially
/// TSan-clean.
///
/// `ParallelFor` is the only primitive the planner uses: it fans an index
/// range out over the pool *and the calling thread*. The caller always
/// participates and claims chunks until the range is exhausted, so a loop
/// completes even with zero pool workers and nested `ParallelFor` calls from
/// inside a worker can never deadlock (every waiter first drains its own
/// loop). Determinism is the caller's contract: callbacks must write only to
/// their own index `i` (and their own `worker` slot), never accumulate into
/// shared state in claim order.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Creates `num_workers` worker threads (0 is allowed: every ParallelFor
  /// then runs inline on the caller).
  explicit ThreadPool(int num_workers) {
    queues_.resize(static_cast<size_t>(std::max(0, num_workers)));
    workers_.reserve(queues_.size());
    for (size_t w = 0; w < queues_.size(); ++w) {
      workers_.emplace_back([this, w] { WorkerMain(static_cast<int>(w)); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Worker-slot id reported to ParallelFor callbacks when the executing
  /// thread is not a pool worker (the orchestrating caller): one past the
  /// worker ids, so per-slot scratch arrays have num_workers() + 1 entries.
  int caller_slot() const { return num_workers(); }

  /// Number of slots a ParallelFor callback may observe.
  int num_slots() const { return num_workers() + 1; }

  /// Enqueues a task (round-robin over worker deques). Runs inline when the
  /// pool has no workers.
  void Submit(Task task) {
    if (queues_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queues_[next_queue_++ % queues_.size()].push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs `fn(worker, i)` for every i in [0, n), distributing index chunks
  /// over the pool workers and the calling thread; blocks until all
  /// invocations completed. `worker` is a stable slot id in
  /// [0, num_slots()): two concurrent invocations never share a slot, so
  /// per-slot accumulators need no locks. `chunk` indices are claimed at a
  /// time (0 = automatic). Index-to-slot assignment is scheduling-dependent;
  /// only per-index outputs are deterministic.
  void ParallelFor(int n, const std::function<void(int worker, int i)>& fn,
                   int chunk = 0) {
    if (n <= 0) return;
    const int self = tls_slot_ >= 0 ? tls_slot_ : caller_slot();
    if (workers_.empty() || n == 1) {
      for (int i = 0; i < n; ++i) fn(self, i);
      return;
    }
    auto loop = std::make_shared<Loop>();
    loop->n = n;
    loop->chunk =
        chunk > 0 ? chunk : std::max(1, n / (8 * (num_workers() + 1)));
    loop->fn = &fn;
    const int chunks = (n + loop->chunk - 1) / loop->chunk;
    const int runners = std::min(num_workers(), chunks - 1);
    for (int r = 0; r < runners; ++r) {
      Submit([this, loop] { RunLoop(*loop); });
    }
    RunLoop(*loop);
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] { return loop->done.load() >= loop->n; });
    // Stale runner tasks that wake up later observe next >= n and exit
    // without touching `fn` (whose referent dies with this frame); the Loop
    // itself stays alive through their shared_ptr.
  }

  /// Process-wide pool providing `executors` concurrent executors
  /// (executors - 1 workers plus the calling thread). Pools are created on
  /// first use, cached per size, and joined at process exit.
  static ThreadPool& For(int executors) {
    static std::mutex registry_mu;
    static std::map<int, std::unique_ptr<ThreadPool>> registry;
    const int workers = std::max(0, executors - 1);
    std::lock_guard<std::mutex> lock(registry_mu);
    std::unique_ptr<ThreadPool>& pool = registry[workers];
    if (pool == nullptr) pool = std::make_unique<ThreadPool>(workers);
    return *pool;
  }

  /// std::thread::hardware_concurrency with the zero ("unknown") case mapped
  /// to 1.
  static int HardwareExecutors() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }

 private:
  /// Shared state of one ParallelFor: an atomic claim cursor plus a
  /// completion count. Kept alive by shared_ptr until the last runner task
  /// observed exhaustion.
  struct Loop {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    int n = 0;
    int chunk = 1;
    const std::function<void(int, int)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };

  void RunLoop(Loop& loop) {
    const int slot = tls_slot_ >= 0 ? tls_slot_ : caller_slot();
    for (;;) {
      const int start = loop.next.fetch_add(loop.chunk);
      if (start >= loop.n) return;
      const int end = std::min(loop.n, start + loop.chunk);
      for (int i = start; i < end; ++i) (*loop.fn)(slot, i);
      if (loop.done.fetch_add(end - start) + (end - start) >= loop.n) {
        std::lock_guard<std::mutex> lock(loop.mu);
        loop.cv.notify_all();
      }
    }
  }

  void WorkerMain(int id) {
    tls_slot_ = id;
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || AnyQueued(); });
        if (!PopTask(id, &task)) {
          if (stop_) return;
          continue;
        }
      }
      task();
    }
  }

  bool AnyQueued() const {
    for (const std::deque<Task>& q : queues_) {
      if (!q.empty()) return true;
    }
    return false;
  }

  /// Pops from the worker's own deque front, else steals from the back of
  /// the first non-empty victim. Caller holds mu_.
  bool PopTask(int id, Task* out) {
    std::deque<Task>& own = queues_[static_cast<size_t>(id)];
    if (!own.empty()) {
      *out = std::move(own.front());
      own.pop_front();
      return true;
    }
    for (size_t v = 0; v < queues_.size(); ++v) {
      std::deque<Task>& victim = queues_[v];
      if (!victim.empty()) {
        *out = std::move(victim.back());
        victim.pop_back();
        return true;
      }
    }
    return false;
  }

  static thread_local int tls_slot_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Task>> queues_;
  std::vector<std::thread> workers_;
  size_t next_queue_ = 0;
  bool stop_ = false;
};

inline thread_local int ThreadPool::tls_slot_ = -1;

}  // namespace muse

#endif  // MUSE_COMMON_THREAD_POOL_H_
