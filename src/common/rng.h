#ifndef MUSE_COMMON_RNG_H_
#define MUSE_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace muse {

/// All randomness in the library flows through an explicitly seeded `Rng`.
/// Every experiment, test, and trace is therefore reproducible from its
/// seed; no component reads entropy from the environment.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed inter-arrival time with rate `lambda`.
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Poisson-distributed count with mean `mean`.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Derives an independent child generator; used to hand sub-components
  /// their own streams so that adding draws in one place does not perturb
  /// another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace muse

#endif  // MUSE_COMMON_RNG_H_
