#include "src/adapt/state_transfer.h"

#include <algorithm>

#include "src/rt/wire.h"

namespace muse::adapt {

size_t MigrationState::TotalEvents() const {
  size_t total = 0;
  for (const NodeState& n : nodes) total += n.events.size();
  return total;
}

uint64_t StateHorizonMs(const Deployment& dep, uint64_t eviction_slack_ms) {
  uint64_t max_window = 0;
  for (const Task& t : dep.tasks()) {
    const uint64_t w = t.target.window();
    if (w == kNoWindow) return kNoWindow;
    max_window = std::max(max_window, w);
  }
  if (eviction_slack_ms > kNoWindow - max_window) return kNoWindow;
  return max_window + eviction_slack_ms;
}

MigrationState CollectMigrationState(const std::vector<NodeRuntime>& nodes,
                                     uint64_t migration_id,
                                     uint64_t barrier_ms,
                                     uint64_t horizon_ms) {
  MigrationState state;
  state.migration_id = migration_id;
  state.barrier_ms = barrier_ms;
  state.horizon_ms = horizon_ms;
  const uint64_t cutoff =
      horizon_ms >= barrier_ms ? 0 : barrier_ms - horizon_ms;
  for (const NodeRuntime& nr : nodes) {
    MigrationState::NodeState ns;
    ns.node = nr.node();
    for (const Event& e : nr.LoggedSourceEvents()) {
      if (e.time >= cutoff) ns.events.push_back(e);
    }
    if (!ns.events.empty()) state.nodes.push_back(std::move(ns));
  }
  return state;
}

void EncodeMigrationState(const MigrationState& state,
                          size_t max_events_per_chunk,
                          std::vector<std::string>* frames) {
  size_t cap = rt::MaxStateChunkEvents();
  if (max_events_per_chunk != 0) cap = std::min(cap, max_events_per_chunk);
  size_t chunks = 0;
  for (const MigrationState::NodeState& ns : state.nodes) {
    chunks += (ns.events.size() + cap - 1) / cap;
  }
  std::string header;
  rt::AppendMigrateFrame(state.migration_id, state.barrier_ms,
                         state.horizon_ms, static_cast<uint32_t>(chunks),
                         &header);
  frames->push_back(std::move(header));
  for (const MigrationState::NodeState& ns : state.nodes) {
    for (size_t at = 0; at < ns.events.size(); at += cap) {
      const size_t n = std::min(cap, ns.events.size() - at);
      std::vector<Event> slice(ns.events.begin() + static_cast<long>(at),
                               ns.events.begin() + static_cast<long>(at + n));
      std::string frame;
      rt::AppendStateChunkFrame(state.migration_id, ns.node, slice, &frame);
      frames->push_back(std::move(frame));
    }
  }
}

Result<MigrationState> DecodeMigrationState(
    const std::vector<std::string>& frames) {
  if (frames.empty()) return Err("migration: empty frame sequence");
  MigrationState state;
  uint32_t expect_chunks = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    size_t consumed = 0;
    Result<rt::NetFrame> decoded = rt::DecodeNetFrame(
        reinterpret_cast<const uint8_t*>(frames[i].data()),
        frames[i].size(), &consumed);
    if (!decoded.ok()) return decoded.error();
    if (consumed != frames[i].size()) {
      return Err("migration: trailing bytes after frame ",
                 std::to_string(i));
    }
    rt::NetFrame nf = std::move(decoded).value();
    if (i == 0) {
      if (nf.kind != rt::FrameKind::kMigrate) {
        return Err("migration: sequence must start with kMigrate");
      }
      state.migration_id = nf.migration_id;
      state.barrier_ms = nf.barrier_ms;
      state.horizon_ms = nf.horizon_ms;
      expect_chunks = nf.state_chunks;
      continue;
    }
    if (nf.kind != rt::FrameKind::kStateChunk) {
      return Err("migration: expected kStateChunk at frame ",
                 std::to_string(i));
    }
    if (nf.migration_id != state.migration_id) {
      return Err("migration: state chunk for migration ",
                 std::to_string(nf.migration_id), " inside migration ",
                 std::to_string(state.migration_id));
    }
    if (!state.nodes.empty() && state.nodes.back().node == nf.state_node) {
      // Continuation chunk of the same node.
      auto& events = state.nodes.back().events;
      events.insert(events.end(), nf.state_events.begin(),
                    nf.state_events.end());
    } else {
      MigrationState::NodeState ns;
      ns.node = nf.state_node;
      ns.events = std::move(nf.state_events);
      state.nodes.push_back(std::move(ns));
    }
  }
  if (frames.size() - 1 != expect_chunks) {
    return Err("migration: header declares ", std::to_string(expect_chunks),
               " chunks but ", std::to_string(frames.size() - 1),
               " arrived");
  }
  return state;
}

size_t EncodedStateBytes(const std::vector<std::string>& frames) {
  size_t total = 0;
  for (const std::string& f : frames) total += f.size();
  return total;
}

}  // namespace muse::adapt
