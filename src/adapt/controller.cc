#include "src/adapt/controller.h"

#include <algorithm>
#include <utility>

#include "src/adapt/plan_diff.h"

namespace muse::adapt {
namespace {

/// Observed/expected rate ratio of one type stream, clamped to [1/16, 16]
/// so a noisy short window can't push the planner into a degenerate
/// corner. 1.0 (no correction) when the stream is missing or starved.
double RateScale(const obs::RateDriftDetector::Report& report, int type) {
  const std::string label = "type:" + std::to_string(type);
  for (const auto& s : report.streams) {
    if (s.label != label) continue;
    if (s.expected_eps <= 0 || s.observed_eps <= 0) return 1.0;
    return std::clamp(s.observed_eps / s.expected_eps, 1.0 / 16.0, 16.0);
  }
  return 1.0;
}

}  // namespace

AdaptController::AdaptController(const std::vector<Query>& workload,
                                 const Network& network,
                                 const Deployment* initial,
                                 AdaptPolicy policy, PlannerOptions planner)
    : workload_(workload),
      base_net_(network),
      policy_(policy),
      planner_(planner),
      current_(initial),
      current_net_(&network) {}

AdaptController::~AdaptController() { JoinReplanThread(); }

const char* AdaptController::StateName(State s) {
  switch (s) {
    case State::kStable:
      return "stable";
    case State::kDrifted:
      return "drifted";
    case State::kReplanning:
      return "replanning";
    case State::kCooldown:
      return "cooldown";
  }
  return "?";
}

void AdaptController::Enter(State s, uint64_t now_ms, std::string note) {
  state_ = s;
  transitions_.push_back(Transition{s, now_ms, std::move(note)});
}

void AdaptController::JoinReplanThread() {
  if (replan_thread_.joinable()) replan_thread_.join();
}

void AdaptController::StartReplan(
    const obs::RateDriftDetector::Report& report, uint64_t now_ms) {
  JoinReplanThread();  // a previous generation's thread, already consumed
  Enter(State::kReplanning, now_ms,
        "drift confirmed (" + std::to_string(consecutive_drifted_) +
            " reports, score " + std::to_string(report.drift_score) + ")");
  consecutive_drifted_ = 0;
  replan_thread_ = std::thread([this, report] { ReplanMain(report); });
}

void AdaptController::ReplanMain(obs::RateDriftDetector::Report report) {
  auto gen = std::make_unique<Generation>();
  // Rate-corrected clone of the current generation's network: producer
  // assignment and capacities are topology (unchanged); per-type rates
  // are scaled by what the detector actually observed.
  const Network& cur = *current_net_;
  gen->net = std::make_unique<Network>(cur.num_nodes(), cur.num_types());
  for (NodeId n = 0; n < static_cast<NodeId>(cur.num_nodes()); ++n) {
    for (int t = 0; t < cur.num_types(); ++t) {
      if (cur.Produces(n, static_cast<EventTypeId>(t))) {
        gen->net->AddProducer(n, static_cast<EventTypeId>(t));
      }
    }
    gen->net->SetCapacity(n, cur.Capacity(n));
  }
  for (int t = 0; t < cur.num_types(); ++t) {
    const auto type = static_cast<EventTypeId>(t);
    gen->net->SetRate(type, cur.Rate(type) * RateScale(report, t));
  }
  gen->catalogs = std::make_unique<WorkloadCatalogs>(workload_, *gen->net);
  const WorkloadPlan plan = PlanWorkloadAmuse(*gen->catalogs, planner_);
  gen->dep =
      std::make_unique<Deployment>(plan.combined, gen->catalogs->Pointers());
  pending_ = std::move(gen);
  replans_.fetch_add(1, std::memory_order_release);
  replan_ready_.store(true, std::memory_order_release);
}

const Deployment* AdaptController::OnDriftReport(
    const obs::RateDriftDetector::Report& report, uint64_t trace_now_ms) {
  last_now_ms_ = trace_now_ms;

  if (state_ == State::kReplanning) {
    if (!replan_ready_.load(std::memory_order_acquire)) return nullptr;
    JoinReplanThread();
    replan_ready_.store(false, std::memory_order_relaxed);
    generations_.push_back(std::move(pending_));
    Generation& gen = *generations_.back();
    const PlanDiff diff = DiffDeployments(*current_, *gen.dep);
    if (diff.no_op() || !diff.primitive_compatible || !diff.same_queries ||
        migrations_ >= policy_.max_migrations) {
      ++rejected_;
      Enter(State::kCooldown, trace_now_ms,
            "replanned but not migrating: " + diff.Summary());
      cooldown_until_ms_ = trace_now_ms + policy_.cooldown_ms;
      return nullptr;
    }
    candidate_ = gen.dep.get();
    // The runtime migrates now and calls OnMigrated before the next
    // report; the Cooldown transition lands there.
    return candidate_;
  }

  if (state_ == State::kCooldown) {
    if (trace_now_ms < cooldown_until_ms_) return nullptr;
    consecutive_drifted_ = 0;
    Enter(State::kStable, trace_now_ms, "cooldown over");
  }

  // Stable or Drifted: accumulate / decay confirmation evidence.
  const bool hit =
      report.drifted && report.drift_score >= policy_.min_drift_score;
  if (!hit) {
    if (state_ == State::kDrifted) {
      Enter(State::kStable, trace_now_ms, "drift not sustained");
    }
    consecutive_drifted_ = 0;
    return nullptr;
  }
  ++consecutive_drifted_;
  if (consecutive_drifted_ < policy_.confirm_reports) {
    if (state_ != State::kDrifted) {
      Enter(State::kDrifted, trace_now_ms,
            "drift report (score " + std::to_string(report.drift_score) +
                ")");
    }
    return nullptr;
  }
  if (migrations_ >= policy_.max_migrations) return nullptr;
  StartReplan(report, trace_now_ms);
  return nullptr;
}

void AdaptController::OnMigrated(uint64_t pause_us, bool ok) {
  if (ok && candidate_ != nullptr) {
    ++migrations_;
    pause_us_.push_back(pause_us);
    current_ = candidate_;
    current_net_ = generations_.back()->net.get();
    Enter(State::kCooldown, last_now_ms_,
          "migrated (pause " + std::to_string(pause_us) + "us)");
  } else {
    ++rejected_;
    Enter(State::kCooldown, last_now_ms_, "migration rejected by runtime");
  }
  candidate_ = nullptr;
  cooldown_until_ms_ = last_now_ms_ + policy_.cooldown_ms;
}

}  // namespace muse::adapt
