#ifndef MUSE_ADAPT_POLICY_H_
#define MUSE_ADAPT_POLICY_H_

#include <cstddef>
#include <cstdint>

namespace muse::adapt {

/// When the closed loop is allowed to act. The detector's dual gate
/// (Poisson-z AND ratio band) already suppresses stationary noise; the
/// policy adds the control-theoretic guards — confirmation against
/// transients, cooldown against oscillation, and a hard migration budget.
struct AdaptPolicy {
  /// Consecutive drifted probe reports required before a replan starts.
  /// One windowed verdict can be a burst; two in a row (with the window
  ///-sized probe interval) is a trend.
  int confirm_reports = 2;

  /// Minimum drift score (max |log2(observed/expected)| over drifted
  /// windows) a confirming report must carry. 0 accepts any flagged
  /// report.
  double min_drift_score = 0;

  /// Trace-time quarantine after a migration (or a rejected plan) before
  /// drift evidence counts again. The fresh detector needs at least one
  /// full window under the new plan anyway; the cooldown keeps
  /// borderline workloads from thrashing between two near-equal plans.
  uint64_t cooldown_ms = 1000;

  /// Hard cap on migrations per run; further drift is still reported in
  /// telemetry but no longer acted on.
  size_t max_migrations = 4;
};

}  // namespace muse::adapt

#endif  // MUSE_ADAPT_POLICY_H_
