#ifndef MUSE_ADAPT_STATE_TRANSFER_H_
#define MUSE_ADAPT_STATE_TRANSFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/deployment.h"
#include "src/dist/node_runtime.h"

namespace muse::adapt {

/// State handed across a live plan migration. MuSE partial matches are a
/// pure function of the admitted source events (the Ambrosia-style replay
/// model the runtime already recovers crashes with), so the snapshot is
/// the replay-relevant suffix of each node's source-event log — not the
/// partial matches themselves. Replaying it into the freshly planned
/// executor rebuilds every partial match that could still complete, and
/// the sink-side match dedup (horizon window + 4·slack, strictly wider
/// than the replay horizon window + slack) absorbs re-derived matches.
struct MigrationState {
  uint64_t migration_id = 0;
  uint64_t barrier_ms = 0;  ///< trace time the runtime quiesced at
  uint64_t horizon_ms = 0;  ///< replay horizon H = max window + slack

  struct NodeState {
    uint32_t node = 0;
    std::vector<Event> events;  ///< log order (ascending arrival)
  };
  std::vector<NodeState> nodes;  ///< ascending node id; empty nodes omitted

  size_t TotalEvents() const;
};

/// Replay horizon of a deployment: max task window plus the effective
/// eviction slack, saturating — an event older than barrier - horizon can
/// no longer contribute to any new partial match and is not transferred.
/// kNoWindow tasks or unbounded slack push the horizon to "everything".
uint64_t StateHorizonMs(const Deployment& dep, uint64_t eviction_slack_ms);

/// Collects the replay suffix (events with time + horizon >= barrier)
/// from every node's input log. Call only while the executor is stopped —
/// the logs are owned by worker threads while it runs.
MigrationState CollectMigrationState(const std::vector<NodeRuntime>& nodes,
                                     uint64_t migration_id,
                                     uint64_t barrier_ms,
                                     uint64_t horizon_ms);

/// Encodes the snapshot into wire v4 frames: one kMigrate header followed
/// by per-node kStateChunk frames, each holding at most
/// `max_events_per_chunk` events (clamped to the wire's frame cap; pass 0
/// for the wire maximum).
void EncodeMigrationState(const MigrationState& state,
                          size_t max_events_per_chunk,
                          std::vector<std::string>* frames);

/// Decodes what EncodeMigrationState produced. Total like the rest of the
/// wire layer: truncated, reordered, mismatched-id or miscounted frame
/// sequences are errors, never crashes.
Result<MigrationState> DecodeMigrationState(
    const std::vector<std::string>& frames);

/// Total encoded bytes of a frame sequence (telemetry).
size_t EncodedStateBytes(const std::vector<std::string>& frames);

}  // namespace muse::adapt

#endif  // MUSE_ADAPT_STATE_TRANSFER_H_
