#ifndef MUSE_ADAPT_PLAN_DIFF_H_
#define MUSE_ADAPT_PLAN_DIFF_H_

#include <cstddef>
#include <string>

#include "src/dist/deployment.h"

namespace muse::adapt {

/// Structural delta between two compiled deployments of the same workload
/// — the migration plan summary muse-adapt acts on. Tasks are matched by
/// logical signature (representative query, projection type set, cover
/// partition, primitive type), so a task that merely received a new id
/// counts as unchanged or moved, never as removed+added.
struct PlanDiff {
  size_t old_tasks = 0;
  size_t new_tasks = 0;
  size_t unchanged = 0;  ///< same signature hosted on the same node
  size_t moved = 0;      ///< same signature, different node
  size_t added = 0;      ///< signature present only in the new plan
  size_t removed = 0;    ///< signature present only in the old plan

  /// Both plans subscribe the same (node, event type) pairs to primitive
  /// tasks. This is an invariant of planning from one network (primitive
  /// placement follows producers, not load), and live migration depends
  /// on it: events the old plan's driver skipped as unroutable must be
  /// equally unroutable under the new plan, or replay would be lossy.
  bool primitive_compatible = true;

  /// Same query count on both sides (plans from the same workload).
  bool same_queries = true;

  /// True when installing `to` would change nothing — adapt skips the
  /// migration entirely.
  bool no_op() const {
    return moved == 0 && added == 0 && removed == 0 && same_queries &&
           primitive_compatible;
  }

  std::string Summary() const;
};

PlanDiff DiffDeployments(const Deployment& from, const Deployment& to);

}  // namespace muse::adapt

#endif  // MUSE_ADAPT_PLAN_DIFF_H_
