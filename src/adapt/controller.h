#ifndef MUSE_ADAPT_CONTROLLER_H_
#define MUSE_ADAPT_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/adapt/policy.h"
#include "src/core/multi_query.h"
#include "src/dist/deployment.h"
#include "src/net/network.h"
#include "src/rt/runtime.h"

namespace muse::adapt {

/// The closed loop of ROADMAP item 4: watch the runtime's drift verdict,
/// re-plan in the background against a rate-corrected network, and hand
/// the runtime a new deployment to live-migrate to.
///
///   Stable -> Drifted -> Replanning -> (runtime migrates) -> Cooldown
///                                   -> (plan rejected)    -> Cooldown
///
/// Re-planning runs on a background thread (the parallel aMuSE planner is
/// seconds-scale on large workloads) while the runtime keeps processing
/// the old plan; only the handoff itself pauses the stream. The
/// controller owns every network/catalog/deployment generation it builds
/// — the runtime keeps raw pointers — so it must outlive RtRuntime::Run.
///
/// Thread contract: all AdaptDriver callbacks arrive on the runtime's
/// driver thread; the background thread communicates through an atomic
/// ready flag. Accessors (transitions, migrations, ...) are for after the
/// run.
class AdaptController : public rt::AdaptDriver {
 public:
  /// `workload` and `network` are the live scenario; `initial` is the
  /// deployment the runtime starts with (diff baseline). All three must
  /// outlive the controller.
  AdaptController(const std::vector<Query>& workload, const Network& network,
                  const Deployment* initial, AdaptPolicy policy = {},
                  PlannerOptions planner = {});
  ~AdaptController() override;

  AdaptController(const AdaptController&) = delete;
  AdaptController& operator=(const AdaptController&) = delete;

  // --- rt::AdaptDriver -------------------------------------------------
  const Deployment* OnDriftReport(const obs::RateDriftDetector::Report& report,
                                  uint64_t trace_now_ms) override;
  void OnMigrated(uint64_t pause_us, bool ok) override;
  uint64_t Replans() const override {
    return replans_.load(std::memory_order_acquire);
  }

  // --- post-run inspection ---------------------------------------------
  enum class State { kStable, kDrifted, kReplanning, kCooldown };
  static const char* StateName(State s);

  struct Transition {
    State to = State::kStable;
    uint64_t trace_ms = 0;
    std::string note;
  };
  const std::vector<Transition>& transitions() const { return transitions_; }
  uint64_t migrations() const { return migrations_; }
  uint64_t rejected() const { return rejected_; }
  const std::vector<uint64_t>& pause_us() const { return pause_us_; }
  /// The deployment the runtime currently executes (initial until the
  /// first successful migration).
  const Deployment* current() const { return current_; }

 private:
  /// One re-planned generation; kept alive for the rest of the run
  /// because catalogs borrow the network and the deployment borrows the
  /// catalogs (and the runtime borrows the deployment).
  struct Generation {
    std::unique_ptr<Network> net;
    std::unique_ptr<WorkloadCatalogs> catalogs;
    std::unique_ptr<Deployment> dep;
  };

  void Enter(State s, uint64_t now_ms, std::string note);
  void StartReplan(const obs::RateDriftDetector::Report& report,
                   uint64_t now_ms);
  /// Background-thread body: rate-corrected network -> catalogs ->
  /// parallel aMuSE -> deployment.
  void ReplanMain(obs::RateDriftDetector::Report report);
  void JoinReplanThread();

  const std::vector<Query>& workload_;
  const Network& base_net_;
  AdaptPolicy policy_;
  PlannerOptions planner_;

  State state_ = State::kStable;
  std::vector<Transition> transitions_;
  int consecutive_drifted_ = 0;
  uint64_t cooldown_until_ms_ = 0;
  uint64_t last_now_ms_ = 0;

  const Deployment* current_;             ///< installed plan
  const Deployment* candidate_ = nullptr; ///< returned, awaiting OnMigrated
  const Network* current_net_;            ///< network of `current_`
  std::deque<std::unique_ptr<Generation>> generations_;

  std::thread replan_thread_;
  std::unique_ptr<Generation> pending_;  ///< written by the replan thread
  std::atomic<bool> replan_ready_{false};
  std::atomic<uint64_t> replans_{0};

  uint64_t migrations_ = 0;
  uint64_t rejected_ = 0;
  std::vector<uint64_t> pause_us_;
};

}  // namespace muse::adapt

#endif  // MUSE_ADAPT_CONTROLLER_H_
