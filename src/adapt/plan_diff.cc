#include "src/adapt/plan_diff.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

namespace muse::adapt {
namespace {

/// Logical task identity, placement excluded. Two tasks with equal keys
/// evaluate the same projection slice of the same query; only their node
/// may differ between plans.
struct TaskKey {
  int rep_query;
  uint64_t proj_bits;
  int part_type;
  bool is_primitive;
  EventTypeId prim_type;

  bool operator<(const TaskKey& o) const {
    return std::tie(rep_query, proj_bits, part_type, is_primitive,
                    prim_type) < std::tie(o.rep_query, o.proj_bits,
                                          o.part_type, o.is_primitive,
                                          o.prim_type);
  }
};

TaskKey KeyOf(const Task& t) {
  return TaskKey{t.rep_query, t.proj.bits(), t.part_type, t.is_primitive,
                 t.is_primitive ? t.prim_type : EventTypeId{0}};
}

/// node -> count of tasks with one signature (partitioned placements can
/// host the same signature on several nodes, so this is a multiset).
using NodeCounts = std::map<NodeId, size_t>;

std::set<std::pair<NodeId, EventTypeId>> PrimitivePairs(
    const Deployment& dep) {
  std::set<std::pair<NodeId, EventTypeId>> pairs;
  for (const Task& t : dep.tasks()) {
    if (t.is_primitive) pairs.emplace(t.node, t.prim_type);
  }
  return pairs;
}

}  // namespace

PlanDiff DiffDeployments(const Deployment& from, const Deployment& to) {
  PlanDiff diff;
  diff.old_tasks = from.tasks().size();
  diff.new_tasks = to.tasks().size();
  diff.same_queries = from.num_queries() == to.num_queries();
  diff.primitive_compatible = PrimitivePairs(from) == PrimitivePairs(to);

  std::map<TaskKey, NodeCounts> old_by_key;
  std::map<TaskKey, NodeCounts> new_by_key;
  for (const Task& t : from.tasks()) ++old_by_key[KeyOf(t)][t.node];
  for (const Task& t : to.tasks()) ++new_by_key[KeyOf(t)][t.node];

  for (const auto& [key, old_nodes] : old_by_key) {
    auto it = new_by_key.find(key);
    if (it == new_by_key.end()) {
      for (const auto& [node, n] : old_nodes) diff.removed += n;
      continue;
    }
    const NodeCounts& new_nodes = it->second;
    size_t old_total = 0;
    size_t new_total = 0;
    size_t same_node = 0;
    for (const auto& [node, n] : old_nodes) {
      old_total += n;
      auto at = new_nodes.find(node);
      if (at != new_nodes.end()) same_node += std::min(n, at->second);
    }
    for (const auto& [node, n] : new_nodes) new_total += n;
    const size_t matched = std::min(old_total, new_total);
    // Signature-level pairing: pairs that stayed put are unchanged, the
    // remaining pairable instances moved, and any count surplus on either
    // side is a removal/addition.
    same_node = std::min(same_node, matched);
    diff.unchanged += same_node;
    diff.moved += matched - same_node;
    diff.removed += old_total - matched;
    diff.added += new_total - matched;
  }
  for (const auto& [key, new_nodes] : new_by_key) {
    if (old_by_key.count(key)) continue;
    for (const auto& [node, n] : new_nodes) diff.added += n;
  }
  return diff;
}

std::string PlanDiff::Summary() const {
  std::ostringstream os;
  os << "tasks " << old_tasks << " -> " << new_tasks << ": " << unchanged
     << " unchanged, " << moved << " moved, " << added << " added, "
     << removed << " removed";
  if (!primitive_compatible) os << " [PRIMITIVE-INCOMPATIBLE]";
  if (!same_queries) os << " [QUERY-MISMATCH]";
  if (no_op()) os << " (no-op)";
  return os.str();
}

}  // namespace muse::adapt
