#include "src/obs/flow_trace.h"

namespace muse::obs {

bool FlowTracer::SampleSource(uint64_t seq, int event_type, uint32_t origin,
                              uint64_t time_us) {
  if (sample_rate_ <= 0) return false;
  credit_ += sample_rate_;
  if (credit_ < 1) return false;
  credit_ -= 1;
  if (max_flows_ != 0 && spans_.size() >= max_flows_) {
    ++dropped_;
    return false;
  }
  FlowSpan span;
  span.flow_id = seq;
  span.event_type = event_type;
  span.origin = origin;
  span.start_us = time_us;
  index_[seq] = spans_.size();
  spans_.push_back(std::move(span));
  return true;
}

void FlowTracer::AddHop(uint64_t seq, const FlowHop& hop) {
  auto it = index_.find(seq);
  if (it == index_.end()) return;
  spans_[it->second].hops.push_back(hop);
}

void FlowTracer::Complete(uint64_t seq, uint64_t sink_us, int query) {
  auto it = index_.find(seq);
  if (it == index_.end()) return;
  FlowSpan& span = spans_[it->second];
  if (span.completed) return;  // keep the first sink emission
  span.completed = true;
  span.sink_us = sink_us;
  span.sink_query = query;
}

}  // namespace muse::obs
