#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace muse::obs {

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  for (const auto& [k, v] : labels) Set(k, v);
}

void LabelSet::Set(std::string key, std::string value) {
  auto it = std::lower_bound(
      labels_.begin(), labels_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != labels_.end() && it->first == key) {
    it->second = std::move(value);
    return;
  }
  labels_.insert(it, {std::move(key), std::move(value)});
}

std::string LabelSet::ToString() const {
  std::string out;
  for (const auto& [k, v] : labels_) {
    if (!out.empty()) out += ",";
    out += k + "=" + v;
  }
  return out;
}

void Gauge::Set(double v) {
  value_.store(v, std::memory_order_relaxed);
  RaiseMax(v);
}

void Gauge::Add(double delta) {
  // CAS loop rather than fetch_add so the paired max update sees the value
  // this thread produced (and to avoid relying on atomic<double>::fetch_add
  // support across standard libraries).
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
  RaiseMax(cur + delta);
}

void Gauge::RaiseMax(double v) {
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(uint64_t units) {
  constexpr uint64_t kSubCount = 1ULL << kSubBits;
  if (units < kSubCount) return static_cast<int>(units);
  const int msb = 63 - std::countl_zero(units);
  const int shift = msb - kSubBits;
  const uint64_t sub = (units >> shift) - kSubCount;  // in [0, kSubCount)
  return static_cast<int>(kSubCount + static_cast<uint64_t>(shift) * kSubCount +
                          sub);
}

namespace {

/// Lower bound (inclusive) of bucket `index` in integer units.
uint64_t BucketLowerUnits(int index) {
  constexpr uint64_t kSubCount = 1ULL << Histogram::kSubBits;
  const uint64_t i = static_cast<uint64_t>(index);
  if (i < kSubCount) return i;
  const uint64_t shift = i / kSubCount - 1;
  const uint64_t sub = i % kSubCount;
  return (kSubCount + sub) << shift;
}

uint64_t BucketWidthUnits(int index) {
  constexpr uint64_t kSubCount = 1ULL << Histogram::kSubBits;
  const uint64_t i = static_cast<uint64_t>(index);
  if (i < kSubCount) return 1;
  return 1ULL << (i / kSubCount - 1);
}

}  // namespace

void Histogram::Record(double value) {
  uint64_t units = 0;
  if (value > 0) {
    const double scaled = value / resolution_ + 0.5;
    // Clamp astronomically large observations into the top bucket instead
    // of overflowing the unit conversion — but count them, so the clamp is
    // visible in exports (`*_overflow_total`) rather than silent.
    if (scaled >= 1.8e19) {
      units = UINT64_MAX;
      overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
      units = static_cast<uint64_t>(scaled);
    }
  }
  buckets_[static_cast<size_t>(BucketIndex(units))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t mn = min_units_.load(std::memory_order_relaxed);
  while (units < mn && !min_units_.compare_exchange_weak(
                           mn, units, std::memory_order_relaxed)) {
  }
  uint64_t mx = max_units_.load(std::memory_order_relaxed);
  while (units > mx && !max_units_.compare_exchange_weak(
                           mx, units, std::memory_order_relaxed)) {
  }
}

double Histogram::Min() const {
  if (Count() == 0) return 0;
  return static_cast<double>(min_units_.load(std::memory_order_relaxed)) *
         resolution_;
}

double Histogram::Max() const {
  if (Count() == 0) return 0;
  return static_cast<double>(max_units_.load(std::memory_order_relaxed)) *
         resolution_;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0 : Sum() / static_cast<double>(n);
}

double Histogram::BucketUpperBound(int index) const {
  return static_cast<double>(BucketLowerUnits(index) +
                             BucketWidthUnits(index)) *
         resolution_;
}

double Histogram::BucketWidth(int index) const {
  return static_cast<double>(BucketWidthUnits(index)) * resolution_;
}

double Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based rank of the order statistic at quantile q.
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(n - 1) + 0.5);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    seen += c;
    if (seen > rank) {
      // Bucket midpoint, clamped into the observed [min, max] so quantiles
      // of a histogram never fall outside its exact extrema.
      const double mid = (static_cast<double>(BucketLowerUnits(i)) +
                          static_cast<double>(BucketWidthUnits(i)) * 0.5) *
                         resolution_;
      return std::clamp(mid, Min(), Max());
    }
  }
  return Max();
}

std::vector<std::pair<int, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::vector<std::pair<int, uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = other.buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    if (c != 0) {
      buckets_[static_cast<size_t>(i)].fetch_add(c,
                                                 std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  overflow_.fetch_add(other.OverflowCount(), std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  const double add = other.Sum();
  while (!sum_.compare_exchange_weak(sum, sum + add,
                                     std::memory_order_relaxed)) {
  }
  const uint64_t omn = other.min_units_.load(std::memory_order_relaxed);
  uint64_t mn = min_units_.load(std::memory_order_relaxed);
  while (omn < mn && !min_units_.compare_exchange_weak(
                         mn, omn, std::memory_order_relaxed)) {
  }
  const uint64_t omx = other.max_units_.load(std::memory_order_relaxed);
  uint64_t mx = max_units_.load(std::memory_order_relaxed);
  while (omx > mx && !max_units_.compare_exchange_weak(
                         mx, omx, std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst = instances_[{name, labels}];
  if (inst.counter == nullptr) {
    inst.kind = MetricKind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst = instances_[{name, labels}];
  if (inst.gauge == nullptr) {
    inst.kind = MetricKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         double resolution) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance& inst = instances_[{name, labels}];
  if (inst.histogram == nullptr) {
    inst.kind = MetricKind::kHistogram;
    inst.histogram = std::make_unique<Histogram>(resolution);
  }
  return inst.histogram.get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(instances_.size());
  for (const auto& [key, inst] : instances_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.kind = inst.kind;
    e.counter = inst.counter.get();
    e.gauge = inst.gauge.get();
    e.histogram = inst.histogram.get();
    out.push_back(std::move(e));
  }
  return out;  // map order is already (name, labels)
}

size_t MetricsRegistry::FamilySize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (auto it = instances_.lower_bound({name, LabelSet{}});
       it != instances_.end() && it->first.first == name; ++it) {
    ++n;
  }
  return n;
}

}  // namespace muse::obs
