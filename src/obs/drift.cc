#include "src/obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace muse::obs {

RateDriftDetector::RateDriftDetector(const RateSnapshot& snapshot,
                                     uint64_t duration_ms,
                                     const DriftOptions& options)
    : options_(options), duration_ms_(duration_ms) {
  if (options_.window_ms == 0) options_.window_ms = 1;
  num_windows_ = static_cast<size_t>(
      (duration_ms_ + options_.window_ms - 1) / options_.window_ms);
  if (num_windows_ == 0) num_windows_ = 1;
  complete_windows_ = static_cast<size_t>(duration_ms_ / options_.window_ms);

  type_stream_.assign(snapshot.type_eps.size(), SIZE_MAX);
  for (size_t t = 0; t < snapshot.type_eps.size(); ++t) {
    type_stream_[t] = streams_.size();
    Stream s;
    s.label = "type:" + std::to_string(t);
    s.expected_eps = snapshot.type_eps[t];
    s.flag_eligible = true;
    streams_.push_back(std::move(s));
  }
  for (const RateSnapshot::ProjectionRate& p : snapshot.projections) {
    const size_t idx = streams_.size();
    Stream s;
    s.label = "proj:" + p.label;
    s.expected_eps = p.eps;
    s.flag_eligible = false;  // r̂ is an estimate; diagnose, never flag
    streams_.push_back(std::move(s));
    for (int task : p.tasks) task_stream_[task] = idx;
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(streams_.size() *
                                                       num_windows_);
}

size_t RateDriftDetector::BucketIndex(size_t stream,
                                      uint64_t time_ms) const {
  size_t w = static_cast<size_t>(time_ms / options_.window_ms);
  // Events stamped exactly at the horizon land in the last window rather
  // than out of bounds.
  if (w >= num_windows_) w = num_windows_ - 1;
  return stream * num_windows_ + w;
}

void RateDriftDetector::ObserveType(uint32_t type, uint64_t time_ms) {
  if (type >= type_stream_.size()) return;
  const size_t s = type_stream_[type];
  if (s == SIZE_MAX) return;
  buckets_[BucketIndex(s, time_ms)].fetch_add(1, std::memory_order_relaxed);
}

void RateDriftDetector::ObserveTaskOutput(int task, uint64_t time_ms) {
  auto it = task_stream_.find(task);
  if (it == task_stream_.end()) return;
  buckets_[BucketIndex(it->second, time_ms)].fetch_add(
      1, std::memory_order_relaxed);
}

RateDriftDetector::Report RateDriftDetector::Finish() const {
  return ReportUpTo(duration_ms_);
}

RateDriftDetector::Report RateDriftDetector::ReportUpTo(
    uint64_t now_ms) const {
  Report out;
  const double window_s = static_cast<double>(options_.window_ms) / 1000.0;
  // Judge only windows no increment can still land in: fully closed by
  // `now_ms` and fully inside the run.
  size_t closed = static_cast<size_t>(now_ms / options_.window_ms);
  if (closed > complete_windows_) closed = complete_windows_;
  // Windows overlapping [0, valid_from_ms) predate this detector's
  // installation (see DriftOptions::valid_from_ms).
  const size_t first =
      static_cast<size_t>((options_.valid_from_ms + options_.window_ms - 1) /
                          options_.window_ms);
  for (size_t s = 0; s < streams_.size(); ++s) {
    StreamReport r;
    r.label = streams_[s].label;
    r.flag_eligible = streams_[s].flag_eligible;
    r.expected_eps = streams_[s].expected_eps;
    const double m = r.expected_eps * window_s;  // expected count/window
    uint64_t total = 0;
    for (size_t w = first; w < closed; ++w) {
      const double c = static_cast<double>(
          buckets_[s * num_windows_ + w].load(std::memory_order_relaxed));
      total += static_cast<uint64_t>(c);
      // Too sparse to judge either way.
      if (std::max(c, m) < options_.min_count_per_window) continue;
      // Poisson z-score gate (kills low-rate noise)...
      const double z = (c - m) / std::sqrt(std::max(m, 0.5));
      if (std::fabs(z) < options_.z_threshold) continue;
      // ...and ratio-band gate (kills tiny-relative, huge-z windows).
      const double hi = m * options_.ratio_threshold;
      const double lo = m / options_.ratio_threshold;
      if (c <= hi && c >= lo) continue;
      const double score = std::fabs(std::log2((c + 0.5) / (m + 0.5)));
      r.score = std::max(r.score, score);
    }
    if (closed > first) {
      r.observed_eps =
          static_cast<double>(total) /
          (static_cast<double>(closed - first) * window_s);
    }
    r.drifted = r.score > 0;
    if (r.flag_eligible) {
      out.drift_score = std::max(out.drift_score, r.score);
      out.drifted = out.drifted || r.drifted;
    }
    out.streams.push_back(std::move(r));
  }
  return out;
}

std::string RateDriftDetector::Report::ToString() const {
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof(line), "%-28s %12s %12s %8s %s\n", "stream",
                "expected/s", "observed/s", "score", "flags");
  os << line;
  for (const StreamReport& r : streams) {
    std::snprintf(line, sizeof(line), "%-28s %12.3f %12.3f %8.3f %s%s\n",
                  r.label.c_str(), r.expected_eps, r.observed_eps, r.score,
                  r.drifted ? "DRIFTED" : "-",
                  r.flag_eligible ? "" : " (informational)");
    os << line;
  }
  std::snprintf(line, sizeof(line), "drift_score %.3f drifted %s\n",
                drift_score, drifted ? "true" : "false");
  os << line;
  return os.str();
}

}  // namespace muse::obs
