#ifndef MUSE_OBS_EXPORT_H_
#define MUSE_OBS_EXPORT_H_

#include <string>

#include "src/obs/telemetry.h"

namespace muse::obs {

/// JSON export of a full run's telemetry, the document muse_metrics dumps
/// and CI validates against tools/metrics_schema.json:
///
/// {
///   "metrics": [
///     {"name": "...", "labels": {"node": "0"}, "kind": "counter",
///      "value": 12},
///     {"name": "...", "labels": {}, "kind": "histogram", "count": 9,
///      "sum": 1.5, "min": 0.1, "max": 0.9, "mean": 0.17,
///      "quantiles": {"p25": …, "p50": …, "p75": …, "p90": …, "p99": …},
///      "buckets": [[index, upper_bound, count], …]}, …
///   ],
///
/// Histograms that clamped out-of-range observations additionally emit a
/// "<name>_overflow_total" counter (same labels) right after the
/// histogram entry; it is omitted while zero.
///   "series": [
///     {"name": "...", "labels": {…}, "points": [[t_ms, value], …]}, …
///   ],
///   "flows": [
///     {"id": 7, "type": 2, "origin": 1, "start_us": 1000,
///      "completed": true, "sink_query": 0, "sink_us": 12000,
///      "hops": [{"task": 3, "src": 1, "dst": 0, "depart_us": …,
///                "queue_us": …, "proc_us": …, "network_us": …}, …]}, …
///   ]
/// }
std::string TelemetryToJson(const RunTelemetry& telemetry);

/// JSON export of just a registry (bench --metrics-out uses this for
/// planner counters, with "series" and "flows" empty).
std::string RegistryToJson(const MetricsRegistry& registry);

/// Flat CSV of the time series: name,labels,t_ms,value (one row per point;
/// labels canonically rendered, see LabelSet::ToString). Text fields are
/// RFC-4180 quoted when they contain commas, quotes, or line breaks.
std::string SeriesToCsv(const TimeSeries& series);

/// RFC-4180 field quoting (exposed for tests): quotes the field and
/// doubles embedded quotes iff it contains a comma, quote, CR, or LF.
std::string CsvField(const std::string& field);

}  // namespace muse::obs

#endif  // MUSE_OBS_EXPORT_H_
