#ifndef MUSE_OBS_TRACE_H_
#define MUSE_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace muse::obs {

/// muse-trace: sampled causal tracing for the rt runtime (DESIGN.md
/// "Tracing (muse-trace)").
///
/// A sampled source event is assigned a 64-bit trace id at injection; the
/// id rides inside v2 wire frames (rt/wire.h TraceContext) across every
/// transport hop and is inherited by every partial/full match the event
/// contributes to. Each stage the event (or a match it caused) passes
/// through becomes one TraceSpan; per-worker spans land in single-writer
/// SpanBuffers (lock-free by ownership: exactly one thread ever writes a
/// buffer, and the runtime drains them only after the workers have joined)
/// and are merged into a TraceLog for export and summarization.

/// Processing stage a span measures. The five kinds tile the life of a
/// traced event: inject -> (wire) -> queue -> evaluate -> emit.
enum class SpanKind : uint8_t {
  kIngest = 0,     ///< driver injected the source event (instant, dur 0)
  kTransport = 1,  ///< wire hop: sender encode until receiver delivery
  kInboxWait = 2,  ///< delivered packet waiting in the worker inbox
  kEvaluate = 3,   ///< task evaluation (OnInput over the frame's tasks)
  kEmit = 4,       ///< sink accepted a full match (instant, dur 0)
};
constexpr size_t kNumSpanKinds = 5;

/// Display name ("ingest", "transport", ...) used by exports and tables.
const char* SpanKindName(SpanKind kind);

/// One timed interval on a traced event's causal path. Times come from the
/// transport's process-wide microsecond clock (rt/transport.h NowUs), so
/// spans from different threads and hops share one axis.
struct TraceSpan {
  uint64_t trace_id = 0;    ///< sampled source event's id (never 0)
  SpanKind kind = SpanKind::kIngest;
  uint32_t node = 0;        ///< node executing/receiving the stage
  uint32_t peer = 0;        ///< kTransport only: sending node
  int32_t task = -1;        ///< deployment task id, -1 outside tasks
  int32_t query = -1;       ///< kEmit only: sink query index
  uint64_t start_us = 0;    ///< transport-clock start
  uint64_t dur_us = 0;      ///< 0 for instant spans (kIngest, kEmit)
};

/// Fixed-capacity, single-writer span sink. The owning thread appends
/// without synchronization; once the buffer fills, further spans are
/// counted as dropped rather than reallocating on the hot path.
class SpanBuffer {
 public:
  explicit SpanBuffer(size_t capacity);

  void Record(const TraceSpan& span) {
    if (spans_.size() < capacity_) {
      spans_.push_back(span);
    } else {
      ++dropped_;
    }
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
};

/// Deterministic 1-in-N sampler. Whether a source event is traced depends
/// only on its global-trace position (Event::seq), never on wall-clock or
/// thread interleaving — so the differential harness can assert that
/// tracing leaves the match multiset untouched, and reruns sample the same
/// events. Ids are a bit-mixed function of seq with the low bit forced, so
/// an id is never 0 (0 means "untraced" on the wire).
class TraceSampler {
 public:
  TraceSampler() = default;
  explicit TraceSampler(uint64_t sample_every) : every_(sample_every) {}

  bool enabled() const { return every_ != 0; }
  uint64_t sample_every() const { return every_; }

  /// Trace id for the source event at position `seq`, or 0 if unsampled.
  uint64_t TraceIdFor(uint64_t seq) const;

 private:
  uint64_t every_ = 0;  ///< 0 disables sampling entirely
};

/// Aggregate duration statistics for one SpanKind.
struct StageStats {
  uint64_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double total_us = 0;
};

/// One end-to-end critical path: the per-stage walk from a trace's ingest
/// to its slowest emit, used to explain where the tail latency went.
struct CriticalPath {
  uint64_t trace_id = 0;
  int32_t query = -1;        ///< query of the slowest emit
  uint64_t latency_us = 0;   ///< ingest start -> slowest emit
  std::vector<TraceSpan> spans;  ///< the trace's spans, by start time
};

/// Per-stage breakdown plus the slowest completed traces.
struct TraceSummary {
  uint64_t traces = 0;     ///< distinct sampled trace ids seen
  uint64_t completed = 0;  ///< traces with at least one emit span
  uint64_t spans = 0;
  uint64_t dropped = 0;
  std::array<StageStats, kNumSpanKinds> stages{};
  std::vector<CriticalPath> slowest;  ///< descending end-to-end latency

  /// Human-readable stage table + critical-path listing.
  std::string ToString() const;
};

/// Merged, immutable-after-drain span log for one runtime run.
class TraceLog {
 public:
  /// Appends a drained buffer's spans and its drop count.
  void Absorb(const SpanBuffer& buffer);
  /// Appends loose spans (tests, synthetic traces).
  void Add(const TraceSpan& span) { spans_.push_back(span); }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  bool empty() const { return spans_.empty(); }

  /// Per-stage percentiles and the `top_k` slowest completed traces.
  TraceSummary Summarize(size_t top_k = 3) const;

 private:
  std::vector<TraceSpan> spans_;
  uint64_t dropped_ = 0;
};

/// Renders the log as Chrome/Perfetto trace-event JSON ("traceEvents"
/// array of ph:"X" complete events, ts/dur in microseconds; pid = node,
/// tid = task). Loads directly in ui.perfetto.dev or chrome://tracing.
std::string ExportTrace(const TraceLog& log);

}  // namespace muse::obs

#endif  // MUSE_OBS_TRACE_H_
