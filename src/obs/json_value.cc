#include "src/obs/json_value.h"

#include <cctype>
#include <cstdlib>

namespace muse::obs {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const char* JsonValue::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!Value(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

  const std::string& error() const { return error_; }
  size_t pos() const { return pos_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool String(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return Fail("unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool Number(double* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return Fail("malformed exponent");
    }
    if (!digits) return Fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    return true;
  }

  bool Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      bool first = true;
      while (!Peek('}')) {
        if (!first && !Consume(',')) return false;
        first = false;
        std::string key;
        if (!String(&key) || !Consume(':')) return false;
        JsonValue member;
        if (!Value(&member, depth + 1)) return false;
        out->object[key] = std::move(member);
      }
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      bool first = true;
      while (!Peek(']')) {
        if (!first && !Consume(',')) return false;
        first = false;
        JsonValue item;
        if (!Value(&item, depth + 1)) return false;
        out->array.push_back(std::move(item));
      }
      return Consume(']');
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    out->kind = JsonValue::Kind::kNumber;
    return Number(&out->number);
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

void Validate(const JsonValue& value, const JsonValue& schema,
              const std::string& path, std::vector<std::string>* out) {
  const JsonValue* type = schema.Get("type");
  if (type != nullptr && type->kind == JsonValue::Kind::kString) {
    const std::string& want = type->string;
    const char* got = JsonValue::KindName(value.kind);
    if (want != got) {
      out->push_back(path + ": expected " + want + ", got " + got);
      return;  // member checks below would only cascade
    }
  }
  if (value.kind == JsonValue::Kind::kObject) {
    const JsonValue* required = schema.Get("required");
    if (required != nullptr && required->is_array()) {
      for (const JsonValue& name : required->array) {
        if (name.kind == JsonValue::Kind::kString &&
            value.Get(name.string) == nullptr) {
          out->push_back(path + ": missing required member '" + name.string +
                         "'");
        }
      }
    }
    const JsonValue* props = schema.Get("properties");
    if (props != nullptr && props->is_object()) {
      for (const auto& [name, subschema] : props->object) {
        const JsonValue* member = value.Get(name);
        if (member != nullptr) {
          Validate(*member, subschema, path + "." + name, out);
        }
      }
    }
  }
  if (value.kind == JsonValue::Kind::kArray) {
    const JsonValue* min_items = schema.Get("minItems");
    if (min_items != nullptr && min_items->kind == JsonValue::Kind::kNumber &&
        static_cast<double>(value.array.size()) < min_items->number) {
      out->push_back(path + ": fewer than " +
                     std::to_string(static_cast<long long>(min_items->number)) +
                     " items");
    }
    const JsonValue* items = schema.Get("items");
    if (items != nullptr) {
      for (size_t i = 0; i < value.array.size(); ++i) {
        Validate(value.array[i], *items,
                 path + "[" + std::to_string(i) + "]", out);
      }
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  Parser p(text);
  JsonValue out;
  if (!p.Parse(&out)) return Err("JSON: ", p.error());
  return out;
}

std::vector<std::string> ValidateJsonSchema(const JsonValue& value,
                                            const JsonValue& schema) {
  std::vector<std::string> out;
  Validate(value, schema, "$", &out);
  return out;
}

}  // namespace muse::obs
