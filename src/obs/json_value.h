#ifndef MUSE_OBS_JSON_VALUE_H_
#define MUSE_OBS_JSON_VALUE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace muse::obs {

/// A parsed JSON document — the generic counterpart of the purpose-built
/// reader in core/plan_json.cc, grown string/number/null support so the
/// telemetry exporter's output (and its schema) can be re-read and
/// validated. Hardened like plan_json: every malformed input reports
/// instead of crashing.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order is irrelevant for validation; a map keeps lookups
  /// simple and deterministic.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  static const char* KindName(Kind kind);
};

/// Parses a complete JSON document (objects, arrays, strings with the
/// escapes the exporter emits, numbers, booleans, null).
Result<JsonValue> ParseJson(const std::string& text);

/// Validates `value` against `schema`, a subset of JSON Schema sufficient
/// for the checked-in telemetry schema (tools/metrics_schema.json):
///   * "type": "object" | "array" | "string" | "number" | "boolean"
///   * "required": [member names]           (objects)
///   * "properties": {name: subschema}      (objects; extra members allowed)
///   * "items": subschema                   (arrays; applied to every item)
///   * "minItems": n                        (arrays)
/// Returns human-readable violations ("$.metrics[3].name: expected string"),
/// empty when the document conforms.
std::vector<std::string> ValidateJsonSchema(const JsonValue& value,
                                            const JsonValue& schema);

}  // namespace muse::obs

#endif  // MUSE_OBS_JSON_VALUE_H_
