#ifndef MUSE_OBS_TELEMETRY_H_
#define MUSE_OBS_TELEMETRY_H_

#include <cstdint>
#include <vector>

#include "src/obs/flow_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"

namespace muse::obs {

/// Telemetry configuration of one distributed execution. Defaults are
/// cheap: cumulative registry metrics and coarse per-node snapshots, no
/// flow tracing, no per-link or per-match label explosion.
///
/// Label cardinality rules (enforced statically by muse_lint's M70x
/// rules, see analysis/verify.h):
///   * registry label values must come from finite deployment-sized
///     domains (node, task, link, query) — never from data (match keys,
///     flow ids, payload attributes);
///   * per-link series are opt-in because their cardinality is O(nodes²);
///   * flow tracing is sampled and capped (`max_flows`) so span memory is
///     bounded regardless of trace length.
struct ObsOptions {
  /// Snapshot cadence of the time series in simulated milliseconds;
  /// 0 disables periodic snapshots entirely.
  uint64_t snapshot_bucket_ms = 250;

  /// Fraction of primitive source events whose flow is traced end-to-end
  /// (0 disables tracing, 1 traces everything).
  double trace_sample_rate = 0;

  /// Cap on concurrently tracked flow spans (0 = unlimited — flagged by
  /// muse_lint when combined with a positive sample rate).
  size_t max_flows = 4096;

  /// Also emit per-(src,dst)-link series, not just per-node aggregates.
  bool per_link_series = false;

  /// Pathological knob kept for the M700 lint demonstration and tests:
  /// labels emitted match counters by match key — unbounded cardinality.
  bool label_per_match = false;

  /// Registry growth guard used by the static M70x cardinality estimate.
  size_t max_label_cardinality = 10'000;

  /// Keep the exact per-match latency samples next to the HDR histogram
  /// (test/diagnostic mode; memory is O(matches)).
  bool keep_exact_latency = false;
};

/// Everything one instrumented run produced: cumulative metrics, the
/// time-bucketed series, and sampled flow spans. Attached to SimReport so
/// existing call sites keep their aggregate view while exporters get the
/// full data.
struct RunTelemetry {
  MetricsRegistry registry;
  TimeSeries series;
  FlowTracer flows;
  /// Only populated with ObsOptions::keep_exact_latency.
  std::vector<double> exact_latency_ms;
};

}  // namespace muse::obs

#endif  // MUSE_OBS_TELEMETRY_H_
