#ifndef MUSE_OBS_METRICS_H_
#define MUSE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace muse::obs {

/// Label set of one metric instance within a family, e.g.
/// {{"node","3"},{"proj","C,L"}}. Kept sorted by key so equal label sets
/// compare equal regardless of construction order.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(
      std::initializer_list<std::pair<std::string, std::string>> labels);

  void Set(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& labels() const {
    return labels_;
  }
  bool empty() const { return labels_.empty(); }

  /// Canonical "k1=v1,k2=v2" rendering (stable across runs).
  std::string ToString() const;

  friend bool operator<(const LabelSet& a, const LabelSet& b) {
    return a.labels_ < b.labels_;
  }
  friend bool operator==(const LabelSet& a, const LabelSet& b) {
    return a.labels_ == b.labels_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> labels_;  // sorted by key
};

/// Monotonically increasing counter. Increments are lock-free
/// (relaxed atomics): concurrent writers only need the total to be exact,
/// not ordered against other memory.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, buffered matches). Tracks the maximum
/// ever set so peaks survive snapshotting.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void RaiseMax(double v);

  std::atomic<double> value_{0};
  std::atomic<double> max_{0};
};

/// Log-bucketed HDR-style histogram: values are scaled to integer units of
/// `resolution`, then bucketed log-linearly — exact below 2^kSubBits units,
/// and 2^kSubBits linear sub-buckets per octave above, bounding the
/// relative quantization error by 2^-kSubBits (6.25%). Recording is a
/// single relaxed atomic increment; quantile queries scan ~1000 buckets.
///
/// Replaces the lossy 5-point `Distribution` summary for latency and queue
/// depths: arbitrary quantiles can be recovered after the fact, and two
/// histograms can be merged exactly (bucket-wise sums).
class Histogram {
 public:
  static constexpr int kSubBits = 4;  ///< 16 sub-buckets per octave
  static constexpr int kNumBuckets =
      ((64 - kSubBits) << kSubBits) + (1 << kSubBits);

  explicit Histogram(double resolution = 1e-3) : resolution_(resolution) {}

  /// Records one observation (negative values clamp to 0).
  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Observations above the max trackable value (~1.8e19 units): they are
  /// clamped into the top bucket but counted here, and exporters surface
  /// the count as a `<name>_overflow_total` counter.
  uint64_t OverflowCount() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  ///< 0 when empty
  double Max() const;  ///< 0 when empty
  double Mean() const;

  /// Value at quantile q in [0, 1]: the midpoint of the bucket containing
  /// the rank-q observation — within half a bucket width of the exact
  /// order statistic.
  double Quantile(double q) const;

  double resolution() const { return resolution_; }

  /// Upper bound (exclusive) of bucket `index`, in value units.
  double BucketUpperBound(int index) const;
  /// Width of bucket `index` in value units (the quantization step at that
  /// magnitude) — the tolerance unit of the acceptance tests.
  double BucketWidth(int index) const;
  uint64_t BucketCount(int index) const {
    return buckets_[static_cast<size_t>(index)].load(
        std::memory_order_relaxed);
  }
  static int BucketIndex(uint64_t units);

  /// Non-empty (index, count) pairs, ascending.
  std::vector<std::pair<int, uint64_t>> NonEmptyBuckets() const;

  /// Adds all of `other`'s recorded observations (resolutions must match).
  void MergeFrom(const Histogram& other);

 private:
  double resolution_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<double> sum_{0};
  std::atomic<uint64_t> min_units_{UINT64_MAX};
  std::atomic<uint64_t> max_units_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Registry of labeled metric families. Metric lookup/creation takes a
/// mutex; the returned pointers are stable for the registry's lifetime and
/// all updates through them are lock-free. Families group instances of one
/// name; instances are distinguished by label sets.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const LabelSet& labels = {},
                          double resolution = 1e-3);

  /// One registered metric instance, for export iteration.
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricKind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Stable-ordered (by name, then labels) view of all instances.
  std::vector<Entry> Entries() const;

  /// Number of label sets registered under `name` (its cardinality).
  size_t FamilySize(const std::string& name) const;

 private:
  struct Instance {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, LabelSet>, Instance> instances_;
};

}  // namespace muse::obs

#endif  // MUSE_OBS_METRICS_H_
