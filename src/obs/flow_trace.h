#ifndef MUSE_OBS_FLOW_TRACE_H_
#define MUSE_OBS_FLOW_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace muse::obs {

/// One step of a traced flow: a task's output carrying the flow's source
/// event either hopping to another node or being consumed locally.
/// Times are simulated microseconds.
struct FlowHop {
  int task = -1;          ///< producing task
  uint32_t src_node = 0;  ///< node of `task`
  uint32_t dst_node = 0;  ///< receiving node (== src_node for local edges)
  uint64_t depart_us = 0;  ///< when the output left the producing task
  uint64_t queue_us = 0;   ///< waiting for the producing node's CPU
  uint64_t proc_us = 0;    ///< processing time at the producing node
  uint64_t network_us = 0; ///< transfer latency (0 for local edges)
};

/// The provenance of one sampled primitive event: every forwarding /
/// aggregation hop it took through the deployment, and — if it ended up in
/// at least one query match — the sink emission that completed it.
struct FlowSpan {
  uint64_t flow_id = 0;   ///< `seq` of the sampled source event
  int event_type = 0;
  uint32_t origin = 0;    ///< producing node
  uint64_t start_us = 0;  ///< occurrence time of the source event
  std::vector<FlowHop> hops;
  bool completed = false;   ///< reached a sink inside a match
  uint64_t sink_us = 0;     ///< first sink emission time
  int sink_query = -1;      ///< query of that first emission
};

/// Samples primitive events at a configurable rate and accumulates their
/// spans. Sampling is deterministic (credit pacing: every source event adds
/// `sample_rate` of credit; a full credit selects the event), so repeated
/// simulations trace identical flows. Not thread-safe; owned by one
/// simulation loop.
class FlowTracer {
 public:
  FlowTracer() = default;
  FlowTracer(double sample_rate, size_t max_flows)
      : sample_rate_(sample_rate < 0 ? 0 : sample_rate),
        max_flows_(max_flows) {}

  bool enabled() const { return sample_rate_ > 0; }
  double sample_rate() const { return sample_rate_; }

  /// Decides whether to trace this source event; if selected, opens its
  /// span and returns true. `max_flows` caps memory: past it, no new flows
  /// are opened (existing ones still accumulate hops).
  bool SampleSource(uint64_t seq, int event_type, uint32_t origin,
                    uint64_t time_us);

  /// True if `seq` identifies an open span.
  bool IsTraced(uint64_t seq) const {
    return index_.find(seq) != index_.end();
  }

  void AddHop(uint64_t seq, const FlowHop& hop);

  /// Marks the flow completed at its first sink emission.
  void Complete(uint64_t seq, uint64_t sink_us, int query);

  const std::vector<FlowSpan>& spans() const { return spans_; }
  uint64_t sampled() const { return static_cast<uint64_t>(spans_.size()); }
  uint64_t dropped() const { return dropped_; }

 private:
  double sample_rate_ = 0;
  size_t max_flows_ = 0;
  double credit_ = 0;
  uint64_t dropped_ = 0;  ///< selected by pacing but over max_flows
  std::vector<FlowSpan> spans_;
  std::unordered_map<uint64_t, size_t> index_;  ///< seq -> spans_ index
};

}  // namespace muse::obs

#endif  // MUSE_OBS_FLOW_TRACE_H_
