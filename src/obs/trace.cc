#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace muse::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIngest:
      return "ingest";
    case SpanKind::kTransport:
      return "transport";
    case SpanKind::kInboxWait:
      return "inbox-wait";
    case SpanKind::kEvaluate:
      return "evaluate";
    case SpanKind::kEmit:
      return "emit";
  }
  return "?";
}

SpanBuffer::SpanBuffer(size_t capacity) : capacity_(capacity) {
  // Reserve up front: Record must never reallocate mid-run, both for
  // latency and so the buffer stays observably single-writer.
  spans_.reserve(capacity_);
}

uint64_t TraceSampler::TraceIdFor(uint64_t seq) const {
  if (every_ == 0) return 0;
  // splitmix64 finalizer: decorrelates the sampling decision from the raw
  // position so "every 1024th" does not alias with periodic workloads.
  uint64_t x = seq + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  if (x % every_ != 0) return 0;
  return x | 1;  // never 0: 0 is the wire's "untraced" marker
}

void TraceLog::Absorb(const SpanBuffer& buffer) {
  spans_.insert(spans_.end(), buffer.spans().begin(), buffer.spans().end());
  dropped_ += buffer.dropped();
}

namespace {

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

TraceSummary TraceLog::Summarize(size_t top_k) const {
  TraceSummary out;
  out.spans = spans_.size();
  out.dropped = dropped_;

  std::array<std::vector<double>, kNumSpanKinds> durs;
  // Per-trace bookkeeping: ingest start and the slowest emit. Only traces
  // whose ingest span survived buffering can report end-to-end latency.
  struct PerTrace {
    bool has_ingest = false;
    uint64_t ingest_us = 0;
    bool has_emit = false;
    uint64_t emit_us = 0;
    int32_t query = -1;
  };
  std::map<uint64_t, PerTrace> traces;

  for (const TraceSpan& s : spans_) {
    const size_t k = static_cast<size_t>(s.kind);
    durs[k].push_back(static_cast<double>(s.dur_us));
    auto& t = traces[s.trace_id];
    if (s.kind == SpanKind::kIngest) {
      t.has_ingest = true;
      t.ingest_us = s.start_us;
    } else if (s.kind == SpanKind::kEmit) {
      if (!t.has_emit || s.start_us > t.emit_us) {
        t.emit_us = s.start_us;
        t.query = s.query;
      }
      t.has_emit = true;
    }
  }

  out.traces = traces.size();
  for (size_t k = 0; k < kNumSpanKinds; ++k) {
    auto& v = durs[k];
    std::sort(v.begin(), v.end());
    StageStats& st = out.stages[k];
    st.count = v.size();
    st.p50_us = Percentile(v, 0.50);
    st.p99_us = Percentile(v, 0.99);
    st.max_us = v.empty() ? 0 : v.back();
    for (double d : v) st.total_us += d;
  }

  // Rank completed traces by ingest->slowest-emit latency.
  std::vector<CriticalPath> paths;
  for (const auto& [id, t] : traces) {
    if (!t.has_ingest || !t.has_emit) continue;
    ++out.completed;
    CriticalPath p;
    p.trace_id = id;
    p.query = t.query;
    p.latency_us = t.emit_us >= t.ingest_us ? t.emit_us - t.ingest_us : 0;
    paths.push_back(std::move(p));
  }
  std::sort(paths.begin(), paths.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.latency_us != b.latency_us)
                return a.latency_us > b.latency_us;
              return a.trace_id < b.trace_id;
            });
  if (paths.size() > top_k) paths.resize(top_k);
  // Attach the span walk only for the survivors (one scan, not per-trace).
  std::map<uint64_t, CriticalPath*> wanted;
  for (CriticalPath& p : paths) wanted[p.trace_id] = &p;
  for (const TraceSpan& s : spans_) {
    auto it = wanted.find(s.trace_id);
    if (it != wanted.end()) it->second->spans.push_back(s);
  }
  for (CriticalPath& p : paths) {
    std::sort(p.spans.begin(), p.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.kind < b.kind;
              });
  }
  out.slowest = std::move(paths);
  return out;
}

std::string TraceSummary::ToString() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "traces %" PRIu64 " (completed %" PRIu64
                ")  spans %" PRIu64 "  dropped %" PRIu64 "\n",
                traces, completed, spans, dropped);
  os << line;
  std::snprintf(line, sizeof(line), "%-10s %10s %12s %12s %12s %14s\n",
                "stage", "count", "p50_us", "p99_us", "max_us", "total_us");
  os << line;
  for (size_t k = 0; k < kNumSpanKinds; ++k) {
    const StageStats& st = stages[k];
    std::snprintf(line, sizeof(line),
                  "%-10s %10" PRIu64 " %12.1f %12.1f %12.1f %14.1f\n",
                  SpanKindName(static_cast<SpanKind>(k)), st.count,
                  st.p50_us, st.p99_us, st.max_us, st.total_us);
    os << line;
  }
  if (!slowest.empty()) {
    os << "slowest completed traces (ingest -> last emit):\n";
    for (const CriticalPath& p : slowest) {
      std::snprintf(line, sizeof(line),
                    "  trace %016" PRIx64 "  query %d  latency %" PRIu64
                    " us\n",
                    p.trace_id, p.query, p.latency_us);
      os << line;
      for (const TraceSpan& s : p.spans) {
        std::snprintf(line, sizeof(line),
                      "    +%8" PRIu64 " us  %-10s node %u task %d dur %"
                      PRIu64 " us\n",
                      s.start_us - p.spans.front().start_us,
                      SpanKindName(s.kind), s.node, s.task, s.dur_us);
        os << line;
      }
    }
  }
  return os.str();
}

std::string ExportTrace(const TraceLog& log) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Process-name metadata so the Perfetto UI groups rows by network node.
  // Node 0 is always named: an empty span set still yields a valid,
  // non-empty traceEvents array (the checked-in schema requires one).
  std::set<uint32_t> nodes{0};
  for (const TraceSpan& s : log.spans()) nodes.insert(s.node);
  for (uint32_t n : nodes) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"node " << n << "\"}}";
  }
  char hexid[24];
  for (const TraceSpan& s : log.spans()) {
    comma();
    std::snprintf(hexid, sizeof(hexid), "%016" PRIx64, s.trace_id);
    // tid: tasks get their own rows; stage spans outside a task (ingest,
    // transport, inbox-wait) share row 0 of their node.
    const int64_t tid = s.task >= 0 ? s.task + 1 : 0;
    os << "{\"name\":\"" << SpanKindName(s.kind) << "\",\"ph\":\"X\",\"ts\":"
       << s.start_us << ",\"dur\":" << s.dur_us << ",\"pid\":" << s.node
       << ",\"tid\":" << tid << ",\"args\":{\"trace\":\"" << hexid << "\"";
    if (s.kind == SpanKind::kTransport) os << ",\"from\":" << s.peer;
    if (s.task >= 0) os << ",\"task\":" << s.task;
    if (s.query >= 0) os << ",\"query\":" << s.query;
    os << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace muse::obs
