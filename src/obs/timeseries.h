#ifndef MUSE_OBS_TIMESERIES_H_
#define MUSE_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace muse::obs {

/// One sample of a time series: (bucket timestamp, value). Timestamps are
/// simulated milliseconds (bucket upper edges).
struct SeriesPoint {
  uint64_t t_ms = 0;
  double value = 0;
};

/// Time-bucketed series of labeled metrics — the over-time view the
/// snapshotter (dist/simulator) appends to at every bucket boundary.
/// Cumulative series (…_total) are monotone non-decreasing by construction
/// at the recording sites; snapshot_monotone tests rely on that.
class TimeSeries {
 public:
  using Key = std::pair<std::string, LabelSet>;

  void Append(const std::string& name, const LabelSet& labels, uint64_t t_ms,
              double value) {
    series_[{name, labels}].push_back({t_ms, value});
  }

  /// Stable-ordered (name, labels) -> points.
  const std::map<Key, std::vector<SeriesPoint>>& series() const {
    return series_;
  }

  const std::vector<SeriesPoint>* Find(const std::string& name,
                                       const LabelSet& labels) const {
    auto it = series_.find({name, labels});
    return it == series_.end() ? nullptr : &it->second;
  }

  bool empty() const { return series_.empty(); }
  size_t num_series() const { return series_.size(); }

 private:
  std::map<Key, std::vector<SeriesPoint>> series_;
};

}  // namespace muse::obs

#endif  // MUSE_OBS_TIMESERIES_H_
