#include "src/obs/export.h"

#include <cstdio>

namespace muse::obs {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  // Round-trippable without drowning the file in digits; integral values
  // print without a fraction.
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string LabelsJson(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels.labels()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + EscapeJson(k) + "\": \"" + EscapeJson(v) + "\"";
  }
  return out + "}";
}

void AppendMetricsJson(const MetricsRegistry& registry, std::string* out) {
  *out += "  \"metrics\": [";
  bool first = true;
  for (const MetricsRegistry::Entry& e : registry.Entries()) {
    if (!first) *out += ",";
    first = false;
    *out += "\n    {\"name\": \"" + EscapeJson(e.name) +
            "\", \"labels\": " + LabelsJson(e.labels) + ", ";
    switch (e.kind) {
      case MetricKind::kCounter:
        *out += "\"kind\": \"counter\", \"value\": " +
                std::to_string(e.counter->Value());
        break;
      case MetricKind::kGauge:
        *out += "\"kind\": \"gauge\", \"value\": " + Num(e.gauge->Value()) +
                ", \"max\": " + Num(e.gauge->Max());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        *out += "\"kind\": \"histogram\", \"count\": " +
                std::to_string(h.Count()) + ", \"sum\": " + Num(h.Sum()) +
                ", \"min\": " + Num(h.Min()) + ", \"max\": " + Num(h.Max()) +
                ", \"mean\": " + Num(h.Mean()) + ", \"quantiles\": {";
        static constexpr struct { const char* name; double q; } kQs[] = {
            {"p25", 0.25}, {"p50", 0.5}, {"p75", 0.75},
            {"p90", 0.9},  {"p99", 0.99}};
        bool qfirst = true;
        for (const auto& [name, q] : kQs) {
          if (!qfirst) *out += ", ";
          qfirst = false;
          *out += std::string("\"") + name + "\": " + Num(h.Quantile(q));
        }
        *out += "}, \"buckets\": [";
        bool bfirst = true;
        for (const auto& [index, count] : h.NonEmptyBuckets()) {
          if (!bfirst) *out += ", ";
          bfirst = false;
          *out += "[" + std::to_string(index) + ", " +
                  Num(h.BucketUpperBound(index)) + ", " +
                  std::to_string(count) + "]";
        }
        *out += "]";
        break;
      }
    }
    *out += "}";
    // Clamped-out-of-range observations surface as a sibling counter so
    // dashboards can alarm on silent histogram saturation.
    if (e.kind == MetricKind::kHistogram &&
        e.histogram->OverflowCount() > 0) {
      *out += ",\n    {\"name\": \"" + EscapeJson(e.name) +
              "_overflow_total\", \"labels\": " + LabelsJson(e.labels) +
              ", \"kind\": \"counter\", \"value\": " +
              std::to_string(e.histogram->OverflowCount()) + "}";
    }
  }
  *out += "\n  ]";
}

void AppendSeriesJson(const TimeSeries& series, std::string* out) {
  *out += "  \"series\": [";
  bool first = true;
  for (const auto& [key, points] : series.series()) {
    if (!first) *out += ",";
    first = false;
    *out += "\n    {\"name\": \"" + EscapeJson(key.first) +
            "\", \"labels\": " + LabelsJson(key.second) + ", \"points\": [";
    bool pfirst = true;
    for (const SeriesPoint& p : points) {
      if (!pfirst) *out += ", ";
      pfirst = false;
      *out += "[" + std::to_string(p.t_ms) + ", " + Num(p.value) + "]";
    }
    *out += "]}";
  }
  *out += "\n  ]";
}

void AppendFlowsJson(const FlowTracer& flows, std::string* out) {
  *out += "  \"flows\": [";
  bool first = true;
  for (const FlowSpan& span : flows.spans()) {
    if (!first) *out += ",";
    first = false;
    *out += "\n    {\"id\": " + std::to_string(span.flow_id) +
            ", \"type\": " + std::to_string(span.event_type) +
            ", \"origin\": " + std::to_string(span.origin) +
            ", \"start_us\": " + std::to_string(span.start_us) +
            ", \"completed\": " + (span.completed ? "true" : "false") +
            ", \"sink_query\": " + std::to_string(span.sink_query) +
            ", \"sink_us\": " + std::to_string(span.sink_us) + ", \"hops\": [";
    bool hfirst = true;
    for (const FlowHop& hop : span.hops) {
      if (!hfirst) *out += ", ";
      hfirst = false;
      *out += "{\"task\": " + std::to_string(hop.task) + ", \"src\": " +
              std::to_string(hop.src_node) + ", \"dst\": " +
              std::to_string(hop.dst_node) + ", \"depart_us\": " +
              std::to_string(hop.depart_us) + ", \"queue_us\": " +
              std::to_string(hop.queue_us) + ", \"proc_us\": " +
              std::to_string(hop.proc_us) + ", \"network_us\": " +
              std::to_string(hop.network_us) + "}";
    }
    *out += "]}";
  }
  *out += "\n  ]";
}

}  // namespace

std::string TelemetryToJson(const RunTelemetry& telemetry) {
  std::string out = "{\n";
  AppendMetricsJson(telemetry.registry, &out);
  out += ",\n";
  AppendSeriesJson(telemetry.series, &out);
  out += ",\n";
  AppendFlowsJson(telemetry.flows, &out);
  out += "\n}\n";
  return out;
}

std::string RegistryToJson(const MetricsRegistry& registry) {
  std::string out = "{\n";
  AppendMetricsJson(registry, &out);
  out += ",\n  \"series\": [],\n  \"flows\": []\n}\n";
  return out;
}

std::string CsvField(const std::string& field) {
  // RFC 4180: fields containing separators, quotes, or line breaks are
  // quoted, with embedded quotes doubled. Everything else passes through.
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string SeriesToCsv(const TimeSeries& series) {
  std::string out = "name,labels,t_ms,value\n";
  for (const auto& [key, points] : series.series()) {
    // Label values routinely contain commas (projection signatures like
    // "C,L"), so both text fields go through the RFC-4180 quoter.
    const std::string prefix =
        CsvField(key.first) + "," + CsvField(key.second.ToString()) + ",";
    for (const SeriesPoint& p : points) {
      out += prefix + std::to_string(p.t_ms) + "," + Num(p.value) + "\n";
    }
  }
  return out;
}

}  // namespace muse::obs
