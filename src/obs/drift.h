#ifndef MUSE_OBS_DRIFT_H_
#define MUSE_OBS_DRIFT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace muse::obs {

/// Rate-drift detection for the rt runtime (DESIGN.md "Tracing
/// (muse-trace)"): compares windowed observed rates against the
/// planner-input stats snapshot the plan was costed with, and raises a
/// `drifted` flag when the live workload has moved away from what
/// justified the placement — the sensor ROADMAP item 4 (adaptive
/// re-planning) acts on.

/// Frozen planner-input rates, captured at deployment time. Plain data on
/// purpose: obs sits below net/core in the layering, so the snapshot holds
/// numbers, not Network/ProjectionCatalog references.
struct RateSnapshot {
  /// Network-wide events/s per event type (index = type id). These are
  /// the r inputs of the §4.4 cost model and the only flag-eligible
  /// streams: a type's global rate is exactly what the generated trace
  /// realizes, so deviation is real drift, not estimation error.
  std::vector<double> type_eps;

  /// One logical non-primitive projection: expected matches/s (the r̂
  /// estimate, selectivities and bindings included) and the deployment
  /// tasks whose outputs realize it (multi-sink partitions share one
  /// stream). r̂ is an upper-bound estimate, so projection streams are
  /// reported for diagnosis but never set the `drifted` flag.
  struct ProjectionRate {
    std::string label;        ///< projection signature, e.g. "SEQ(A,B)"
    double eps = 0;           ///< summed r̂ across contributing tasks
    std::vector<int> tasks;   ///< deployment task ids feeding this stream
  };
  std::vector<ProjectionRate> projections;

  bool empty() const { return type_eps.empty() && projections.empty(); }
};

struct DriftOptions {
  bool enabled = true;
  /// Observation window; rates are compared per completed window.
  uint64_t window_ms = 1000;
  /// A window drifts only if its Poisson z-score |c-m|/sqrt(m) clears
  /// this AND the count ratio leaves [1/ratio_threshold, ratio_threshold].
  /// Both gates together make stationary traces score exactly 0: the
  /// z-gate kills low-rate noise, the ratio-gate kills high-rate windows
  /// where tiny relative wiggles have huge z.
  double z_threshold = 6.0;
  double ratio_threshold = 1.5;
  /// Windows where both expected and observed counts are below this are
  /// skipped — too few events to call drift.
  double min_count_per_window = 20.0;
  /// Windows that start before this trace time are excluded from every
  /// report. muse-adapt sets it to the migration barrier on the detector
  /// of a freshly installed plan: trace time before the barrier was
  /// observed by the *previous* detector, so those windows would read as
  /// spurious all-zero drift here.
  uint64_t valid_from_ms = 0;
};

/// Windowed observed-vs-expected rate comparator. Observe* methods are
/// thread-safe (relaxed atomic bucket increments, pre-sized at
/// construction — no allocation or locking on the hot path); Finish() is
/// called once after the run quiesces.
class RateDriftDetector {
 public:
  RateDriftDetector(const RateSnapshot& snapshot, uint64_t duration_ms,
                    const DriftOptions& options);

  /// Source event of `type` injected at trace time `time_ms`.
  void ObserveType(uint32_t type, uint64_t time_ms);
  /// Non-primitive task `task` produced a match ending at `time_ms`.
  void ObserveTaskOutput(int task, uint64_t time_ms);

  struct StreamReport {
    std::string label;
    bool flag_eligible = false;  ///< true for type streams (see snapshot)
    double expected_eps = 0;
    double observed_eps = 0;  ///< over complete windows
    /// max over drifted windows of |log2((c+.5)/(m+.5))|; exactly 0 when
    /// no window cleared both gates.
    double score = 0;
    bool drifted = false;  ///< score > 0
  };
  struct Report {
    std::vector<StreamReport> streams;
    double drift_score = 0;  ///< max score over flag-eligible streams
    bool drifted = false;    ///< any flag-eligible stream drifted
    std::string ToString() const;
  };
  Report Finish() const;

  /// Like Finish(), but judges only windows that end at or before
  /// `now_ms` — the mid-run probe muse-adapt polls between events. Safe
  /// to call while Observe* runs concurrently (buckets are atomic); a
  /// window is read only once no further increments can land in it.
  Report ReportUpTo(uint64_t now_ms) const;

  size_t num_streams() const { return streams_.size(); }

 private:
  struct Stream {
    std::string label;
    double expected_eps = 0;
    bool flag_eligible = false;
  };

  size_t BucketIndex(size_t stream, uint64_t time_ms) const;

  DriftOptions options_;
  uint64_t duration_ms_;
  size_t num_windows_ = 0;       ///< including a partial tail window
  size_t complete_windows_ = 0;  ///< windows fully inside the run
  std::vector<Stream> streams_;
  std::vector<size_t> type_stream_;  ///< type id -> stream, SIZE_MAX none
  std::unordered_map<int, size_t> task_stream_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // [stream][window]
};

}  // namespace muse::obs

#endif  // MUSE_OBS_DRIFT_H_
