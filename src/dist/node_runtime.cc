#include "src/dist/node_runtime.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"

namespace muse {
namespace {

int64_t PartKey(int task, int src_task) {
  return (static_cast<int64_t>(task) << 32) ^
         static_cast<int64_t>(static_cast<uint32_t>(src_task));
}

}  // namespace

NodeRuntime::NodeRuntime(NodeId node, const Deployment* deployment,
                         EvaluatorOptions eval_options)
    : node_(node), deployment_(deployment), eval_options_(eval_options) {
  RebuildEvaluators();
}

void NodeRuntime::RebuildEvaluators() {
  evaluators_.clear();
  part_index_.clear();
  for (const Task& t : deployment_->tasks()) {
    if (t.node != node_ || t.is_primitive) continue;
    evaluators_[t.id] = std::make_unique<ProjectionEvaluator>(
        t.target, t.parts, eval_options_);
    for (const auto& [src, part] : t.inputs) {
      part_index_[PartKey(t.id, src)] = part;
    }
  }
}

void NodeRuntime::OnInput(int task, int src_task, const Match& m,
                          std::vector<Output>* out) {
  if (!replaying_) log_.push_back(LoggedInput{task, src_task, m});
  Process(task, src_task, m, out);
}

void NodeRuntime::OnEventBatch(const EventBatch& batch,
                               std::vector<Output>* out) {
  const size_t n = batch.size();
  if (n == 0) return;
  // Pre-compute per-(type, task) forwarding masks with the columnar
  // kernels: one flat pass over the type column plus one per unary filter
  // predicate, instead of a StructurallyMatches call per (row, task).
  struct TaskMasks {
    std::vector<int> tasks;
    std::vector<std::vector<uint8_t>> masks;  // parallel to `tasks`
  };
  std::unordered_map<EventTypeId, TaskMasks> by_type;
  for (size_t i = 0; i < n; ++i) by_type.try_emplace(batch.type[i]);
  for (auto& [type, tm] : by_type) {
    for (int task : deployment_->PrimitiveTasksFor(node_, type)) {
      const Task& t = deployment_->task(task);
      MUSE_CHECK(t.node == node_, "input routed to wrong node");
      tm.tasks.push_back(task);
      tm.masks.emplace_back();
      if (t.target.PrimitiveTypes().size() == 1) {
        ComputeUnaryPassMask(batch, type, t.target.predicates(),
                             &tm.masks.back());
      } else {
        // Defensive: a non-singleton primitive target gets the exact
        // scalar gate per row.
        std::vector<uint8_t>& mask = tm.masks.back();
        mask.resize(n);
        for (size_t i = 0; i < n; ++i) {
          mask[i] = static_cast<uint8_t>(
              StructurallyMatches(t.target, Match::Single(batch.At(i))));
        }
      }
    }
  }
  // Deliver in scalar order: row-major, task order within a row. Every
  // delivery is logged exactly as OnInput would, so a crash replay of the
  // log is independent of whether ingestion was batched.
  for (size_t i = 0; i < n; ++i) {
    const TaskMasks& tm = by_type.find(batch.type[i])->second;
    if (tm.tasks.empty()) continue;
    const Match m = Match::Single(batch.At(i));
    for (size_t j = 0; j < tm.tasks.size(); ++j) {
      const int task = tm.tasks[j];
      if (!replaying_) log_.push_back(LoggedInput{task, -1, m});
      ++processed_;
      TaskCounters& counters = task_counters_[task];
      ++counters.inputs;
      if (tm.masks[j][i] != 0) {
        out->push_back(Output{task, m});
        ++counters.outputs;
      }
    }
  }
}

void NodeRuntime::Process(int task, int src_task, const Match& m,
                          std::vector<Output>* out) {
  ++processed_;
  TaskCounters& counters = task_counters_[task];
  ++counters.inputs;
  const Task& t = deployment_->task(task);
  MUSE_CHECK(t.node == node_, "input routed to wrong node");
  if (t.is_primitive) {
    // Primitive tasks forward local events that pass their singleton
    // projection's predicates.
    MUSE_CHECK(src_task == -1, "primitive task fed by another task");
    if (StructurallyMatches(t.target, m)) {
      out->push_back(Output{task, m});
      ++counters.outputs;
    }
    return;
  }
  auto ev = evaluators_.find(task);
  MUSE_CHECK(ev != evaluators_.end(), "missing evaluator");
  auto part = part_index_.find(PartKey(task, src_task));
  MUSE_CHECK(part != part_index_.end(), "unrouted input");
  std::vector<Match> produced;
  ev->second->OnMatch(part->second, m, &produced);
  counters.outputs += produced.size();
  for (Match& pm : produced) {
    out->push_back(Output{task, std::move(pm)});
  }
  peak_buffered_ = std::max(peak_buffered_, BufferedMatches());
}

void NodeRuntime::Flush(std::vector<Output>* out) {
  for (auto& [task, ev] : evaluators_) {
    std::vector<Match> produced;
    ev->Flush(&produced);
    for (Match& pm : produced) {
      out->push_back(Output{task, std::move(pm)});
    }
  }
}

void NodeRuntime::Crash() {
  evaluators_.clear();
  part_index_.clear();
  // Outgoing channel sequence numbers are part of the volatile state:
  // deterministic replay regenerates the *same* numbering, so receivers
  // recognize re-sent messages as duplicates.
  channel_seq_.clear();
}

void NodeRuntime::Recover(std::vector<Output>* out) {
  RebuildEvaluators();
  replaying_ = true;
  for (const LoggedInput& in : log_) {
    Process(in.task, in.src_task, in.payload, out);
  }
  replaying_ = false;
}

uint64_t NodeRuntime::BufferedMatches() const {
  uint64_t total = 0;
  for (const auto& [task, ev] : evaluators_) {
    total += ev->stats().buffered;
  }
  return total;
}

uint64_t NodeRuntime::PeakBufferedMatches() const {
  uint64_t peak = peak_buffered_;
  for (const auto& [task, ev] : evaluators_) {
    peak = std::max(peak, ev->stats().peak_buffered);
  }
  return peak;
}

std::vector<Event> NodeRuntime::LoggedSourceEvents() const {
  std::vector<Event> out;
  std::unordered_set<uint64_t> seen;
  for (const LoggedInput& in : log_) {
    if (in.src_task != -1) continue;
    // A source event reaches every primitive task of its (node, type)
    // pair and is logged once per delivery; seq is globally unique, so it
    // keys the dedup.
    MUSE_CHECK(in.payload.events.size() == 1, "source log entry not unary");
    const Event& e = in.payload.events[0];
    if (seen.insert(e.seq).second) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<int, EvaluatorStats>> NodeRuntime::EvaluatorStatsByTask()
    const {
  std::vector<std::pair<int, EvaluatorStats>> out;
  out.reserve(evaluators_.size());
  for (const auto& [task, ev] : evaluators_) {
    out.emplace_back(task, ev->stats());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace muse
