#ifndef MUSE_DIST_CHANNEL_H_
#define MUSE_DIST_CHANNEL_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/dist/message.h"

namespace muse {

/// Receiver-side exactly-once filter: per source task, a high watermark of
/// contiguously accepted channel sequence numbers plus a compact set of
/// accepted out-of-order sequences above it. Re-sent messages (e.g.
/// replayed by a recovering sender) are recognized and dropped, giving the
/// exactly-once semantics the case study's resilience framework provides
/// (§7.1). Senders emit per-channel sequence numbers monotonically.
///
/// Memory is bounded by the reorder window, not the stream length: every
/// contiguous run starting at the watermark is compacted away immediately,
/// so `pending` only ever holds sequences whose predecessors are still in
/// flight. On the in-order channels of the simulator and the FIFO links of
/// the rt transport, `pending` stays empty and Accept is one hash lookup.
class ExactlyOnceFilter {
 public:
  /// Returns true if the message is fresh (first delivery), false if it is
  /// a duplicate of an already-accepted message.
  bool Accept(const SimMessage& msg) {
    Channel& ch = channels_[msg.src_task];
    if (msg.channel_seq < ch.next) {
      ++dropped_;
      return false;
    }
    if (msg.channel_seq == ch.next) {
      // Compact: advance the watermark over any pending run it now joins.
      ++ch.next;
      auto it = ch.pending.begin();
      while (it != ch.pending.end() && *it == ch.next) {
        ++ch.next;
        it = ch.pending.erase(it);
      }
      return true;
    }
    // Out-of-order arrival above the watermark: remember it so a later
    // duplicate is still recognized.
    if (!ch.pending.insert(msg.channel_seq).second) {
      ++dropped_;
      return false;
    }
    peak_pending_ = std::max(peak_pending_, PendingAboveWatermark());
    return true;
  }

  /// Duplicates rejected so far — replay amplification, surfaced as the
  /// node_dup_dropped_total telemetry counter.
  uint64_t dropped() const { return dropped_; }

  /// High watermark of `src_task`'s channel: all sequences below it have
  /// been accepted. 0 for unknown channels.
  uint64_t Watermark(int src_task) const {
    auto it = channels_.find(src_task);
    return it == channels_.end() ? 0 : it->second.next;
  }

  /// (src task, watermark) of every channel this filter has seen.
  std::vector<std::pair<int, uint64_t>> Watermarks() const {
    std::vector<std::pair<int, uint64_t>> out;
    out.reserve(channels_.size());
    for (const auto& [src, ch] : channels_) out.emplace_back(src, ch.next);
    return out;
  }

  /// Currently retained out-of-order sequences across all channels — the
  /// filter's only stream-length-independent memory beyond one watermark
  /// per channel.
  uint64_t PendingAboveWatermark() const {
    uint64_t total = 0;
    for (const auto& [src, ch] : channels_) total += ch.pending.size();
    return total;
  }

  /// Largest PendingAboveWatermark() ever reached (reorder-window peak).
  uint64_t PeakPendingAboveWatermark() const { return peak_pending_; }

  void Clear() { channels_.clear(); }

 private:
  struct Channel {
    uint64_t next = 0;             ///< watermark: all seq < next accepted
    std::set<uint64_t> pending;    ///< accepted seqs > watermark (sorted)
  };

  std::unordered_map<int, Channel> channels_;
  uint64_t dropped_ = 0;
  uint64_t peak_pending_ = 0;
};

}  // namespace muse

#endif  // MUSE_DIST_CHANNEL_H_
