#ifndef MUSE_DIST_CHANNEL_H_
#define MUSE_DIST_CHANNEL_H_

#include <cstdint>
#include <unordered_map>

#include "src/dist/message.h"

namespace muse {

/// Receiver-side exactly-once filter: tracks, per source task, the highest
/// contiguously delivered channel sequence number. Re-sent messages (e.g.
/// replayed by a recovering sender) are recognized and dropped, giving the
/// exactly-once semantics the case study's resilience framework provides
/// (§7.1). Senders emit per-channel sequence numbers monotonically.
class ExactlyOnceFilter {
 public:
  /// Returns true if the message is fresh (first delivery), false if it is
  /// a duplicate of an already-accepted message.
  bool Accept(const SimMessage& msg) {
    uint64_t& next = next_seq_[msg.src_task];
    if (msg.channel_seq < next) {
      ++dropped_;
      return false;
    }
    // Messages on a channel arrive in order in this runtime; a gap would be
    // a routing bug rather than loss.
    next = msg.channel_seq + 1;
    return true;
  }

  /// Duplicates rejected so far — replay amplification, surfaced as the
  /// node_dup_dropped_total telemetry counter.
  uint64_t dropped() const { return dropped_; }

  void Clear() { next_seq_.clear(); }

 private:
  std::unordered_map<int, uint64_t> next_seq_;
  uint64_t dropped_ = 0;
};

}  // namespace muse

#endif  // MUSE_DIST_CHANNEL_H_
