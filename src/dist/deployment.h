#ifndef MUSE_DIST_DEPLOYMENT_H_
#define MUSE_DIST_DEPLOYMENT_H_

#include <string>
#include <vector>

#include "src/cep/query.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"
#include "src/obs/drift.h"

namespace muse {

/// One deployable unit of work: the evaluation of one projection placement
/// at one node. Plan vertices that are *equivalent* — same node, same
/// projection signature, same cover partition — are merged into a single
/// task (matching the cost model's stream sharing, §4.4/§6.2), with the
/// union of their successors.
struct Task {
  int id = -1;
  NodeId node = 0;
  TypeSet proj;
  int part_type = kNoPartition;
  /// Representative workload query (for catalog lookups).
  int rep_query = 0;

  bool is_primitive = false;
  EventTypeId prim_type = 0;  // if is_primitive

  /// Target projection AST (from the representative catalog).
  Query target;
  /// Input parts in evaluator order: the distinct predecessor projections.
  std::vector<Query> parts;
  /// parts[i]'s type set, for wiring predecessor tasks to part indices.
  std::vector<TypeSet> part_types;

  /// Task ids whose output matches feed this task, and the part each one
  /// feeds.
  std::vector<std::pair<int, int>> inputs;  // (src task, part index)
  /// Task ids receiving this task's output matches.
  std::vector<int> successors;

  /// Queries of the workload for which this task hosts the root projection
  /// (a sink, Def. 3).
  std::vector<int> sink_for;

  std::string ToString(const TypeRegistry* reg = nullptr) const;
};

/// A MuSE graph compiled into tasks and routing for the distributed
/// runtime. Also executes oOP and centralized plans, which are expressed as
/// MuSE graphs by their planners.
class Deployment {
 public:
  Deployment(const MuseGraph& plan,
             const std::vector<const ProjectionCatalog*>& catalogs);

  const std::vector<Task>& tasks() const { return tasks_; }
  const Task& task(int id) const { return tasks_[id]; }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_queries() const { return num_queries_; }

  /// Primitive tasks at `node` for events of `type`.
  const std::vector<int>& PrimitiveTasksFor(NodeId node,
                                            EventTypeId type) const;

  /// Planner-input rate snapshot frozen at deployment time: the per-type
  /// global rates r and the per-projection r̂ estimates (§4.4) the plan
  /// was costed against. The rt runtime's RateDriftDetector compares live
  /// observed rates against it (obs/drift.h).
  const obs::RateSnapshot& planner_rates() const { return planner_rates_; }

  std::string ToString(const TypeRegistry* reg = nullptr) const;

 private:
  std::vector<Task> tasks_;
  int num_queries_ = 0;
  obs::RateSnapshot planner_rates_;
  /// (node, type) -> primitive task ids.
  std::vector<std::vector<std::vector<int>>> primitive_index_;
  std::vector<int> empty_;
};

}  // namespace muse

#endif  // MUSE_DIST_DEPLOYMENT_H_
