#include "src/dist/metrics.h"

#include <algorithm>
#include <cstdio>

namespace muse {
namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  // size == 1 degenerates safely: idx == 0, lo == hi == 0.
  double idx = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Distribution Distribution::Of(std::vector<double> samples) {
  Distribution d;
  d.count = samples.size();
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.min = samples.front();
  d.max = samples.back();
  if (samples.size() == 1) {
    d.p25 = d.p50 = d.p75 = samples.front();
    return d;
  }
  d.p25 = Percentile(samples, 0.25);
  d.p50 = Percentile(samples, 0.50);
  d.p75 = Percentile(samples, 0.75);
  return d;
}

Distribution Distribution::FromHistogram(const obs::Histogram& h) {
  Distribution d;
  d.count = h.Count();
  if (d.count == 0) return d;
  d.min = h.Min();
  d.max = h.Max();
  d.p25 = h.Quantile(0.25);
  d.p50 = h.Quantile(0.50);
  d.p75 = h.Quantile(0.75);
  return d;
}

std::string Distribution::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.2f p25=%.2f p50=%.2f p75=%.2f max=%.2f (n=%zu)", min,
                p25, p50, p75, max, count);
  return buf;
}

std::string SimReport::Summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "events=%llu net_msgs=%llu (%.1f/s) latency{%s} "
                "throughput=%.1f ev/s peak_partial=%llu wall=%.3fs",
                static_cast<unsigned long long>(source_events),
                static_cast<unsigned long long>(network_messages),
                network_message_rate, latency_ms.ToString().c_str(),
                throughput_events_per_s,
                static_cast<unsigned long long>(max_peak_partial_matches),
                wall_seconds);
  return buf;
}

}  // namespace muse
