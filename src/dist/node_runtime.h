#ifndef MUSE_DIST_NODE_RUNTIME_H_
#define MUSE_DIST_NODE_RUNTIME_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cep/batch.h"
#include "src/cep/evaluator.h"
#include "src/dist/channel.h"
#include "src/dist/deployment.h"
#include "src/dist/message.h"

namespace muse {

/// Recovery model of the runtime (the case study's "virtual resiliency",
/// §7.1): every input consumed by a node is appended to a durable log; on
/// failure the node's volatile state (evaluator buffers) is discarded and
/// rebuilt by replaying the log, while downstream duplicates produced
/// during replay are suppressed by the receivers' exactly-once filters.
struct LoggedInput {
  int task = -1;
  int src_task = -1;  // -1 for source events
  Match payload;
};

/// The execution state of one network node: evaluators for the node's
/// tasks, the input log, and exactly-once receive filters.
class NodeRuntime {
 public:
  /// An output produced by a task on this node.
  struct Output {
    int task;
    Match match;
  };

  NodeRuntime(NodeId node, const Deployment* deployment,
              EvaluatorOptions eval_options);

  NodeId node() const { return node_; }

  /// Handles one input: `src_task == -1` denotes a locally generated source
  /// event delivered to a primitive task. Appends to the log (unless this
  /// call *is* a replay), runs the evaluator, and reports outputs.
  void OnInput(int task, int src_task, const Match& m,
               std::vector<Output>* out);

  /// Columnar ingestion of a run of locally generated source events
  /// (muse-batch): per-(type, task) forwarding decisions are pre-computed
  /// by the flat predicate kernels over whole columns, then rows are
  /// delivered in exactly the scalar order — row-major, task order within a
  /// row — with every delivery appended to the durable log just like
  /// OnInput. Crash-recovery replay therefore regenerates identical outputs
  /// and channel sequence numbers whether the live run was batched or not.
  /// Equivalent to calling OnInput(task, -1, Single(row)) for each row and
  /// each of the node's primitive tasks of the row's type.
  void OnEventBatch(const EventBatch& batch, std::vector<Output>* out);

  /// Exactly-once admission for a network message; returns false for
  /// duplicates (which must not be processed or logged).
  bool Admit(const SimMessage& msg) { return filter_.Accept(msg); }

  /// Emits pending NSEQ candidates of all evaluators.
  void Flush(std::vector<Output>* out);

  /// Crash: drops all volatile evaluator state (the log and the
  /// exactly-once filter survive, as they are durable in the model).
  void Crash();

  /// Recovery: rebuilds evaluator state by replaying the input log.
  /// Outputs regenerated during replay are returned so the caller can
  /// re-send them (receivers deduplicate).
  void Recover(std::vector<Output>* out);

  /// Total matches currently buffered across this node's evaluators — the
  /// partial-match load that drives latency/throughput (§7.3, [26]).
  uint64_t BufferedMatches() const;
  uint64_t PeakBufferedMatches() const;
  uint64_t ProcessedInputs() const { return processed_; }

  /// Per-task processing effort at this node (telemetry). Counts every
  /// processed input and emitted output, *including* recovery replay work —
  /// these measure effort spent, not logical stream sizes.
  struct TaskCounters {
    uint64_t inputs = 0;
    uint64_t outputs = 0;
  };
  const std::unordered_map<int, TaskCounters>& task_counters() const {
    return task_counters_;
  }

  /// Duplicates dropped by the exactly-once receive filter.
  uint64_t DuplicatesDropped() const { return filter_.dropped(); }

  /// Evaluator statistics of this node's live composite tasks, in task-id
  /// order (telemetry export).
  std::vector<std::pair<int, EvaluatorStats>> EvaluatorStatsByTask() const;

  /// The exactly-once receive filter (telemetry: watermark and pending-set
  /// gauges).
  const ExactlyOnceFilter& filter() const { return filter_; }

  /// Source events in this node's input log (src_task == -1 entries), in
  /// arrival order, deduplicated by Event::seq — an event is logged once
  /// per primitive task it was delivered to, but represents one ingress.
  /// muse-adapt's state transfer replays these into a freshly planned
  /// deployment during live migration.
  std::vector<Event> LoggedSourceEvents() const;

  /// Next sequence number for the outgoing channel of `task` towards
  /// `dst_node`. Reset on crash; deterministic replay regenerates identical
  /// numbering (see Crash()). The key gives each half a full 32 bits —
  /// task ids and node ids must never alias (a 20-bit shift would collide
  /// e.g. (task 1, node 0) with (task 0, node 2^20)).
  uint64_t NextChannelSeq(int task, NodeId dst_node) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(task)) << 32) |
        static_cast<uint64_t>(dst_node);
    return channel_seq_[key]++;
  }

 private:
  void Process(int task, int src_task, const Match& m,
               std::vector<Output>* out);
  void RebuildEvaluators();

  NodeId node_;
  const Deployment* deployment_;
  EvaluatorOptions eval_options_;

  /// Evaluators for the node's non-primitive tasks.
  std::unordered_map<int, std::unique_ptr<ProjectionEvaluator>> evaluators_;
  /// (task, src_task) -> evaluator part index.
  std::unordered_map<int64_t, int> part_index_;

  std::vector<LoggedInput> log_;
  bool replaying_ = false;
  ExactlyOnceFilter filter_;
  std::unordered_map<uint64_t, uint64_t> channel_seq_;
  uint64_t processed_ = 0;
  uint64_t peak_buffered_ = 0;
  std::unordered_map<int, TaskCounters> task_counters_;
};

}  // namespace muse

#endif  // MUSE_DIST_NODE_RUNTIME_H_
