#ifndef MUSE_DIST_MESSAGE_H_
#define MUSE_DIST_MESSAGE_H_

#include <cstdint>

#include "src/cep/match.h"

namespace muse {

/// One unit of inter-task communication in the distributed runtime: a match
/// of the source task's projection. Channel sequence numbers realize
/// exactly-once delivery under replay-based recovery (the Ambrosia model
/// of the case study, §7.1): receivers drop (src, seq) pairs they have
/// already processed.
struct SimMessage {
  int src_task = -1;
  int dst_task = -1;
  uint64_t channel_seq = 0;
  Match payload;
};

}  // namespace muse

#endif  // MUSE_DIST_MESSAGE_H_
