#include "src/dist/simulator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <set>

#include "src/common/check.h"
#include "src/cep/match_dedup.h"
#include "src/cep/oracle.h"
#include "src/dist/node_runtime.h"

namespace muse {
namespace {

/// Deterministic wire-size model of one message: a fixed header plus a
/// fixed encoding per constituent primitive event. Keeps the per-link
/// byte series proportional to real payloads without modeling encodings.
constexpr uint64_t kMessageHeaderBytes = 16;
constexpr uint64_t kEventWireBytes = 32;

uint64_t WireBytes(const Match& m) {
  return kMessageHeaderBytes + kEventWireBytes * m.events.size();
}

struct QueueItem {
  uint64_t time_us = 0;
  uint64_t order = 0;  // FIFO tie-break for determinism
  enum class Kind { kSource, kMessage, kFailure } kind = Kind::kSource;

  size_t trace_idx = 0;               // kSource
  int src_task = -1;                  // kMessage
  NodeId dst_node = 0;                // kMessage / kFailure
  uint64_t channel_seq = 0;           // kMessage
  Match payload;                      // kMessage

  friend bool operator>(const QueueItem& a, const QueueItem& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.order > b.order;
  }
};

class SimRun {
 public:
  SimRun(const Deployment& dep, const SimOptions& options)
      : dep_(dep),
        options_(options),
        telemetry_(std::make_shared<obs::RunTelemetry>()) {
    EvaluatorOptions eval = options_.eval;
    if (eval.eviction_slack_ms == 0) {
      // Cover cross-node arrival skew: a few hops of network delay plus
      // processing jitter.
      eval.eviction_slack_ms = options_.network_delay_ms * 32 + 100;
    }
    NodeId max_node = 0;
    for (const Task& t : dep_.tasks()) max_node = std::max(max_node, t.node);
    for (NodeId n = 0; n <= max_node; ++n) {
      nodes_.emplace_back(n, &dep_, eval);
    }
    node_free_us_.assign(nodes_.size(), 0);
    node_busy_us_.assign(nodes_.size(), 0);
    // Sink dedup sets: fingerprint-based, compacted once the match-time
    // watermark passes window + 4*slack — beyond that horizon no live
    // evaluator state (buffers, pending candidates, in-flight messages)
    // can regenerate a match, so forgetting it is safe. Unwindowed queries
    // never compact. Replay outputs bypass the sets entirely (see
    // HandleFailure), so arbitrarily old replayed duplicates stay
    // suppressed regardless of the horizon.
    std::vector<uint64_t> horizon(static_cast<size_t>(dep_.num_queries()),
                                  MatchDedupSet::kNoHorizon);
    for (const Task& t : dep_.tasks()) {
      for (int q : t.sink_for) {
        if (t.target.window() != kNoWindow) {
          horizon[static_cast<size_t>(q)] =
              t.target.window() + 4 * eval.eviction_slack_ms;
        }
      }
    }
    for (int q = 0; q < dep_.num_queries(); ++q) {
      sink_dedup_.emplace_back(horizon[static_cast<size_t>(q)]);
    }
    report_.matches_per_query.resize(dep_.num_queries());

    // Registry families, resolved once: all hot-path updates below are
    // plain pointer dereferences + relaxed atomics.
    obs::MetricsRegistry& reg = telemetry_->registry;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const obs::LabelSet node_labels{{"node", std::to_string(n)}};
      node_inputs_.push_back(reg.GetCounter("node_inputs_total", node_labels));
      node_busy_ctr_.push_back(
          reg.GetCounter("node_busy_us_total", node_labels));
      node_net_msgs_.push_back(
          reg.GetCounter("node_net_out_messages_total", node_labels));
      node_net_bytes_.push_back(
          reg.GetCounter("node_net_out_bytes_total", node_labels));
      node_partials_.push_back(
          reg.GetGauge("node_partial_matches", node_labels));
      // Queue-wait histograms in integer microseconds.
      node_queue_wait_.push_back(
          reg.GetHistogram("node_queue_wait_us", node_labels, 1.0));
    }
    for (int q = 0; q < dep_.num_queries(); ++q) {
      const obs::LabelSet query_labels{{"query", std::to_string(q)}};
      latency_hist_.push_back(
          reg.GetHistogram("latency_ms", query_labels, 1e-3));
      match_counters_.push_back(
          reg.GetCounter("matches_total", query_labels));
    }
    tracer_ = obs::FlowTracer(options_.obs.trace_sample_rate,
                              options_.obs.max_flows);
    bucket_us_ = options_.obs.snapshot_bucket_ms * 1000;
    next_snapshot_us_ = bucket_us_;
    prev_snapshot_inputs_.assign(nodes_.size(), 0);
  }

  SimReport Run(const std::vector<Event>& trace) {
    auto wall_start = std::chrono::steady_clock::now();
    report_.source_events = trace.size();
    telemetry_->registry.GetCounter("sim_source_events")->Add(trace.size());

    for (size_t i = 0; i < trace.size(); ++i) {
      QueueItem item;
      item.time_us = trace[i].time * 1000;
      item.order = next_order_++;
      item.kind = QueueItem::Kind::kSource;
      item.trace_idx = i;
      queue_.push(item);
    }
    for (const auto& [node, time_ms] : options_.failures) {
      QueueItem item;
      item.time_us = time_ms * 1000;
      item.order = next_order_++;
      item.kind = QueueItem::Kind::kFailure;
      item.dst_node = node;
      queue_.push(item);
    }

    Drain(trace);

    // Final flush (pending NSEQ candidates), then drain follow-ups.
    for (NodeRuntime& rt : nodes_) {
      std::vector<NodeRuntime::Output> outs;
      rt.Flush(&outs);
      RouteOutputs(rt, outs, last_time_us_, /*queue_us=*/0, /*proc_us=*/0);
    }
    Drain(trace);

    // Closing snapshot so the series always cover the whole run.
    if (bucket_us_ != 0 && last_time_us_ != 0) {
      EmitSnapshot(std::max(next_snapshot_us_, last_time_us_));
    }

    FinishTelemetry();

    // Aggregates, rebuilt from the registry where it is the authority.
    uint64_t max_busy = 1;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      report_.peak_partial_matches.push_back(nodes_[n].PeakBufferedMatches());
      report_.max_peak_partial_matches =
          std::max(report_.max_peak_partial_matches,
                   report_.peak_partial_matches.back());
      report_.inputs_processed += nodes_[n].ProcessedInputs();
      report_.network_messages += node_net_msgs_[n]->Value();
      max_busy = std::max(max_busy, node_busy_ctr_[n]->Value());
    }
    report_.throughput_events_per_s =
        static_cast<double>(trace.size()) /
        (static_cast<double>(max_busy) / 1e6);
    // Rate over the simulated duration; an empty trace has no duration and
    // reports 0, never NaN/inf.
    report_.network_message_rate =
        last_time_us_ == 0
            ? 0
            : static_cast<double>(report_.network_messages) /
                  std::max(1.0, static_cast<double>(last_time_us_) / 1e6);
    obs::Histogram merged_latency(1e-3);
    for (const obs::Histogram* h : latency_hist_) merged_latency.MergeFrom(*h);
    report_.latency_ms = Distribution::FromHistogram(merged_latency);
    for (auto& matches : report_.matches_per_query) {
      matches = CanonicalMatchSet(std::move(matches));
    }
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    telemetry_->registry.GetGauge("sim_wall_seconds")
        ->Set(report_.wall_seconds);
    report_.telemetry = telemetry_;
    return std::move(report_);
  }

 private:
  void Drain(const std::vector<Event>& trace) {
    while (!queue_.empty()) {
      QueueItem item = queue_.top();
      queue_.pop();
      while (bucket_us_ != 0 && item.time_us >= next_snapshot_us_) {
        EmitSnapshot(next_snapshot_us_);
        next_snapshot_us_ += bucket_us_;
      }
      last_time_us_ = std::max(last_time_us_, item.time_us);
      switch (item.kind) {
        case QueueItem::Kind::kSource:
          HandleSource(trace[item.trace_idx], item.time_us);
          break;
        case QueueItem::Kind::kMessage:
          HandleMessage(item);
          break;
        case QueueItem::Kind::kFailure:
          HandleFailure(item.dst_node, item.time_us);
          break;
      }
    }
  }

  /// One per-node/per-link sample row per configured series at bucket edge
  /// `t_us`. Cumulative (*_total) series re-publish registry counters, so
  /// they are monotone by construction.
  void EmitSnapshot(uint64_t t_us) {
    const uint64_t t_ms = t_us / 1000;
    obs::TimeSeries& ts = telemetry_->series;
    const double bucket_s =
        static_cast<double>(std::max<uint64_t>(1, bucket_us_)) / 1e6;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const obs::LabelSet labels{{"node", std::to_string(n)}};
      const uint64_t inputs = node_inputs_[n]->Value();
      ts.Append("node_inputs_total", labels, t_ms,
                static_cast<double>(inputs));
      ts.Append("node_input_rate", labels, t_ms,
                static_cast<double>(inputs - prev_snapshot_inputs_[n]) /
                    bucket_s);
      prev_snapshot_inputs_[n] = inputs;
      ts.Append("node_partial_matches", labels, t_ms,
                static_cast<double>(nodes_[n].BufferedMatches()));
      ts.Append("node_queue_depth_us", labels, t_ms,
                node_free_us_[n] > t_us
                    ? static_cast<double>(node_free_us_[n] - t_us)
                    : 0.0);
      ts.Append("node_net_out_bytes_total", labels, t_ms,
                static_cast<double>(node_net_bytes_[n]->Value()));
    }
    if (options_.obs.per_link_series) {
      for (const auto& [key, link] : links_) {
        ts.Append("link_bytes_total", link.labels, t_ms,
                  static_cast<double>(link.bytes->Value()));
      }
    }
  }

  /// Applies the processing-cost model at `node`; returns completion time
  /// and reports the queue-wait and service-time split for flow tracing.
  uint64_t Process(NodeId node, uint64_t arrival_us, uint64_t* queue_us,
                   uint64_t* proc_us) {
    NodeRuntime& rt = nodes_[node];
    const uint64_t start = std::max(arrival_us, node_free_us_[node]);
    const double cost =
        options_.proc_base_us +
        options_.proc_per_partial_us * static_cast<double>(rt.BufferedMatches());
    const uint64_t cost_us = static_cast<uint64_t>(cost) + 1;
    node_free_us_[node] = start + cost_us;
    node_busy_us_[node] += cost_us;
    *queue_us = start - arrival_us;
    *proc_us = cost_us;
    node_inputs_[node]->Add(1);
    node_busy_ctr_[node]->Add(cost_us);
    node_queue_wait_[node]->Record(static_cast<double>(*queue_us));
    return node_free_us_[node];
  }

  void HandleSource(const Event& e, uint64_t time_us) {
    if (e.origin >= nodes_.size()) return;
    tracer_.SampleSource(e.seq, static_cast<int>(e.type), e.origin, time_us);
    const std::vector<int>& tasks = dep_.PrimitiveTasksFor(e.origin, e.type);
    if (tasks.empty()) return;
    NodeRuntime& rt = nodes_[e.origin];
    uint64_t queue_us = 0;
    uint64_t proc_us = 0;
    uint64_t done = Process(e.origin, time_us, &queue_us, &proc_us);
    std::vector<NodeRuntime::Output> outs;
    for (int task : tasks) {
      rt.OnInput(task, -1, Match::Single(e), &outs);
    }
    node_partials_[e.origin]->Set(
        static_cast<double>(rt.BufferedMatches()));
    RouteOutputs(rt, outs, done, queue_us, proc_us);
  }

  void HandleMessage(const QueueItem& item) {
    if (item.dst_node >= nodes_.size()) return;
    NodeRuntime& rt = nodes_[item.dst_node];
    SimMessage msg;
    msg.src_task = item.src_task;
    msg.channel_seq = item.channel_seq;
    if (!rt.Admit(msg)) return;  // duplicate from a recovering sender
    uint64_t queue_us = 0;
    uint64_t proc_us = 0;
    uint64_t done = Process(item.dst_node, item.time_us, &queue_us, &proc_us);
    std::vector<NodeRuntime::Output> outs;
    for (int succ : dep_.task(item.src_task).successors) {
      const Task& t = dep_.task(succ);
      if (t.node != item.dst_node) continue;
      rt.OnInput(succ, item.src_task, item.payload, &outs);
    }
    node_partials_[item.dst_node]->Set(
        static_cast<double>(rt.BufferedMatches()));
    RouteOutputs(rt, outs, done, queue_us, proc_us);
  }

  void HandleFailure(NodeId node, uint64_t time_us) {
    if (node >= nodes_.size()) return;
    telemetry_->registry
        .GetCounter("node_failures_total",
                    obs::LabelSet{{"node", std::to_string(node)}})
        ->Add(1);
    NodeRuntime& rt = nodes_[node];
    rt.Crash();
    std::vector<NodeRuntime::Output> outs;
    rt.Recover(&outs);
    // Regenerated outputs are re-sent; receivers drop duplicates via the
    // exactly-once channel filters. Replay is deterministic, so every
    // regenerated sink output was already recorded before the crash —
    // sinks skip them (replay=true) instead of consulting dedup sets that
    // may have compacted entries older than the horizon.
    RouteOutputs(rt, outs, time_us, /*queue_us=*/0, /*proc_us=*/0,
                 /*replay=*/true);
  }

  struct LinkCounters {
    obs::LabelSet labels;
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };

  LinkCounters& Link(NodeId src, NodeId dst) {
    const uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
    auto it = links_.find(key);
    if (it != links_.end()) return it->second;
    LinkCounters link;
    link.labels = obs::LabelSet{{"src", std::to_string(src)},
                                {"dst", std::to_string(dst)}};
    link.messages =
        telemetry_->registry.GetCounter("link_messages_total", link.labels);
    link.bytes =
        telemetry_->registry.GetCounter("link_bytes_total", link.labels);
    return links_.emplace(key, std::move(link)).first->second;
  }

  /// Appends flow hops for every traced source event carried by `m`.
  void TraceHops(const Match& m, int task, NodeId src, NodeId dst,
                 uint64_t depart_us, uint64_t queue_us, uint64_t proc_us,
                 uint64_t network_us) {
    for (const Event& e : m.events) {
      if (!tracer_.IsTraced(e.seq)) continue;
      obs::FlowHop hop;
      hop.task = task;
      hop.src_node = src;
      hop.dst_node = dst;
      hop.depart_us = depart_us;
      hop.queue_us = queue_us;
      hop.proc_us = proc_us;
      hop.network_us = network_us;
      tracer_.AddHop(e.seq, hop);
    }
  }

  void RouteOutputs(NodeRuntime& rt,
                    const std::vector<NodeRuntime::Output>& outs,
                    uint64_t time_us, uint64_t queue_us, uint64_t proc_us,
                    bool replay = false) {
    for (const NodeRuntime::Output& out : outs) {
      const Task& t = dep_.task(out.task);
      // Sink accounting; recovery replay regenerates only already-recorded
      // matches (see HandleFailure).
      if (!replay) {
        for (int query : t.sink_for) {
          RecordMatch(query, out.match, time_us);
        }
      }
      // One physical message per destination node.
      std::set<NodeId> dst_nodes;
      for (int succ : t.successors) dst_nodes.insert(dep_.task(succ).node);
      for (NodeId dst : dst_nodes) {
        QueueItem item;
        item.kind = QueueItem::Kind::kMessage;
        item.order = next_order_++;
        item.src_task = t.id;
        item.dst_node = dst;
        item.channel_seq = rt.NextChannelSeq(t.id, dst);
        item.payload = out.match;
        uint64_t network_us = 0;
        if (dst == t.node) {
          item.time_us = time_us;
        } else {
          network_us = options_.network_delay_ms * 1000;
          item.time_us = time_us + network_us;
          node_net_msgs_[t.node]->Add(1);
          node_net_bytes_[t.node]->Add(WireBytes(out.match));
          LinkCounters& link = Link(t.node, dst);
          link.messages->Add(1);
          link.bytes->Add(WireBytes(out.match));
        }
        if (tracer_.enabled()) {
          TraceHops(out.match, t.id, t.node, dst, time_us, queue_us, proc_us,
                    network_us);
        }
        queue_.push(item);
      }
    }
  }

  void RecordMatch(int query, const Match& m, uint64_t time_us) {
    if (!sink_dedup_[static_cast<size_t>(query)].Accept(m)) return;
    const double latency_ms = static_cast<double>(time_us) / 1000.0 -
                              static_cast<double>(m.MaxTime());
    latency_hist_[query]->Record(latency_ms);
    match_counters_[query]->Add(1);
    if (options_.obs.keep_exact_latency) {
      telemetry_->exact_latency_ms.push_back(latency_ms);
    }
    if (options_.obs.label_per_match) {
      // Deliberately unbounded cardinality; muse_lint's M700 flags configs
      // that enable this outside debugging sessions.
      telemetry_->registry
          .GetCounter("match_emitted_total",
                      obs::LabelSet{{"match", m.Key()}})
          ->Add(1);
    }
    if (tracer_.enabled()) {
      for (const Event& e : m.events) {
        tracer_.Complete(e.seq, time_us, query);
      }
    }
    if (options_.collect_matches) {
      report_.matches_per_query[query].push_back(m);
    }
  }

  /// End-of-run export of state that lives in the runtimes rather than the
  /// registry: per-task effort counters, evaluator statistics, duplicate
  /// drops, and the flow tracer itself.
  void FinishTelemetry() {
    obs::MetricsRegistry& reg = telemetry_->registry;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const std::string node_str = std::to_string(n);
      for (const auto& [task, counters] : nodes_[n].task_counters()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("task_inputs_total", labels)->Add(counters.inputs);
        reg.GetCounter("task_outputs_total", labels)->Add(counters.outputs);
      }
      for (const auto& [task, stats] : nodes_[n].EvaluatorStatsByTask()) {
        const obs::LabelSet labels{{"node", node_str},
                                   {"task", std::to_string(task)}};
        reg.GetCounter("task_candidates_checked_total", labels)
            ->Add(stats.candidates_checked);
        reg.GetGauge("task_peak_buffered", labels)
            ->Set(static_cast<double>(stats.peak_buffered));
        reg.GetCounter("evaluator_evictions_total", labels)
            ->Add(stats.evictions);
        reg.GetCounter("evaluator_pending_released_total", labels)
            ->Add(stats.pending_released);
        reg.GetCounter("evaluator_pending_invalidated_total", labels)
            ->Add(stats.pending_invalidated);
        reg.GetGauge("task_peak_pending", labels)
            ->Set(static_cast<double>(stats.peak_pending));
        report_.max_peak_pending =
            std::max(report_.max_peak_pending, stats.peak_pending);
      }
      reg.GetCounter("node_dup_dropped_total",
                     obs::LabelSet{{"node", node_str}})
          ->Add(nodes_[n].DuplicatesDropped());
    }
    for (int q = 0; q < dep_.num_queries(); ++q) {
      const MatchDedupSet& dedup = sink_dedup_[static_cast<size_t>(q)];
      const obs::LabelSet labels{{"query", std::to_string(q)}};
      reg.GetGauge("sink_dedup_live", labels)
          ->Set(static_cast<double>(dedup.live()));
      reg.GetGauge("sink_dedup_peak", labels)
          ->Set(static_cast<double>(dedup.peak_live()));
      reg.GetCounter("sink_dup_matches_total", labels)
          ->Add(dedup.duplicates());
      reg.GetCounter("sink_dedup_compacted_total", labels)
          ->Add(dedup.compacted());
      report_.sink_dedup_peak =
          std::max(report_.sink_dedup_peak, dedup.peak_live());
    }
    if (tracer_.enabled()) {
      reg.GetCounter("flows_sampled_total")->Add(tracer_.sampled());
      reg.GetCounter("flows_dropped_total")->Add(tracer_.dropped());
    }
    telemetry_->flows = std::move(tracer_);
  }

  const Deployment& dep_;
  SimOptions options_;
  std::shared_ptr<obs::RunTelemetry> telemetry_;
  std::vector<NodeRuntime> nodes_;
  std::vector<uint64_t> node_free_us_;
  std::vector<uint64_t> node_busy_us_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue_;
  uint64_t next_order_ = 0;
  uint64_t last_time_us_ = 0;
  std::vector<MatchDedupSet> sink_dedup_;
  SimReport report_;

  // Telemetry hot-path pointers (owned by telemetry_->registry).
  std::vector<obs::Counter*> node_inputs_;
  std::vector<obs::Counter*> node_busy_ctr_;
  std::vector<obs::Counter*> node_net_msgs_;
  std::vector<obs::Counter*> node_net_bytes_;
  std::vector<obs::Gauge*> node_partials_;
  std::vector<obs::Histogram*> node_queue_wait_;
  std::vector<obs::Histogram*> latency_hist_;
  std::vector<obs::Counter*> match_counters_;
  std::map<uint64_t, LinkCounters> links_;
  obs::FlowTracer tracer_;
  uint64_t bucket_us_ = 0;
  uint64_t next_snapshot_us_ = 0;
  std::vector<uint64_t> prev_snapshot_inputs_;
};

}  // namespace

DistributedSimulator::DistributedSimulator(const Deployment& deployment,
                                           const SimOptions& options)
    : deployment_(deployment), options_(options) {}

SimReport DistributedSimulator::Run(const std::vector<Event>& trace) {
  return SimRun(deployment_, options_).Run(trace);
}

}  // namespace muse
