#include "src/dist/simulator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <set>
#include <unordered_set>

#include "src/common/check.h"
#include "src/cep/oracle.h"
#include "src/dist/node_runtime.h"

namespace muse {
namespace {

struct QueueItem {
  uint64_t time_us = 0;
  uint64_t order = 0;  // FIFO tie-break for determinism
  enum class Kind { kSource, kMessage, kFailure } kind = Kind::kSource;

  size_t trace_idx = 0;               // kSource
  int src_task = -1;                  // kMessage
  NodeId dst_node = 0;                // kMessage / kFailure
  uint64_t channel_seq = 0;           // kMessage
  Match payload;                      // kMessage

  friend bool operator>(const QueueItem& a, const QueueItem& b) {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.order > b.order;
  }
};

class SimRun {
 public:
  SimRun(const Deployment& dep, const SimOptions& options)
      : dep_(dep), options_(options) {
    EvaluatorOptions eval = options_.eval;
    if (eval.eviction_slack_ms == 0) {
      // Cover cross-node arrival skew: a few hops of network delay plus
      // processing jitter.
      eval.eviction_slack_ms = options_.network_delay_ms * 32 + 100;
    }
    NodeId max_node = 0;
    for (const Task& t : dep_.tasks()) max_node = std::max(max_node, t.node);
    for (NodeId n = 0; n <= max_node; ++n) {
      nodes_.emplace_back(n, &dep_, eval);
    }
    node_free_us_.assign(nodes_.size(), 0);
    node_busy_us_.assign(nodes_.size(), 0);
    seen_match_keys_.resize(dep_.num_queries());
    report_.matches_per_query.resize(dep_.num_queries());
  }

  SimReport Run(const std::vector<Event>& trace) {
    auto wall_start = std::chrono::steady_clock::now();
    report_.source_events = trace.size();

    for (size_t i = 0; i < trace.size(); ++i) {
      QueueItem item;
      item.time_us = trace[i].time * 1000;
      item.order = next_order_++;
      item.kind = QueueItem::Kind::kSource;
      item.trace_idx = i;
      queue_.push(item);
    }
    for (const auto& [node, time_ms] : options_.failures) {
      QueueItem item;
      item.time_us = time_ms * 1000;
      item.order = next_order_++;
      item.kind = QueueItem::Kind::kFailure;
      item.dst_node = node;
      queue_.push(item);
    }

    Drain(trace);

    // Final flush (pending NSEQ candidates), then drain follow-ups.
    for (NodeRuntime& rt : nodes_) {
      std::vector<NodeRuntime::Output> outs;
      rt.Flush(&outs);
      RouteOutputs(rt, outs, last_time_us_);
    }
    Drain(trace);

    // Metrics.
    uint64_t max_busy = 1;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      report_.peak_partial_matches.push_back(nodes_[n].PeakBufferedMatches());
      report_.max_peak_partial_matches =
          std::max(report_.max_peak_partial_matches,
                   report_.peak_partial_matches.back());
      report_.inputs_processed += nodes_[n].ProcessedInputs();
      max_busy = std::max(max_busy, node_busy_us_[n]);
    }
    report_.throughput_events_per_s =
        static_cast<double>(trace.size()) /
        (static_cast<double>(max_busy) / 1e6);
    const double duration_s =
        std::max(1.0, static_cast<double>(last_time_us_) / 1e6);
    report_.network_message_rate =
        static_cast<double>(report_.network_messages) / duration_s;
    report_.latency_ms = Distribution::Of(std::move(latency_samples_));
    for (auto& matches : report_.matches_per_query) {
      matches = CanonicalMatchSet(std::move(matches));
    }
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return std::move(report_);
  }

 private:
  void Drain(const std::vector<Event>& trace) {
    while (!queue_.empty()) {
      QueueItem item = queue_.top();
      queue_.pop();
      last_time_us_ = std::max(last_time_us_, item.time_us);
      switch (item.kind) {
        case QueueItem::Kind::kSource:
          HandleSource(trace[item.trace_idx], item.time_us);
          break;
        case QueueItem::Kind::kMessage:
          HandleMessage(item);
          break;
        case QueueItem::Kind::kFailure:
          HandleFailure(item.dst_node, item.time_us);
          break;
      }
    }
  }

  /// Applies the processing-cost model at `node`; returns completion time.
  uint64_t Process(NodeId node, uint64_t arrival_us) {
    NodeRuntime& rt = nodes_[node];
    const uint64_t start = std::max(arrival_us, node_free_us_[node]);
    const double cost =
        options_.proc_base_us +
        options_.proc_per_partial_us * static_cast<double>(rt.BufferedMatches());
    const uint64_t cost_us = static_cast<uint64_t>(cost) + 1;
    node_free_us_[node] = start + cost_us;
    node_busy_us_[node] += cost_us;
    return node_free_us_[node];
  }

  void HandleSource(const Event& e, uint64_t time_us) {
    if (e.origin >= nodes_.size()) return;
    const std::vector<int>& tasks = dep_.PrimitiveTasksFor(e.origin, e.type);
    if (tasks.empty()) return;
    NodeRuntime& rt = nodes_[e.origin];
    uint64_t done = Process(e.origin, time_us);
    std::vector<NodeRuntime::Output> outs;
    for (int task : tasks) {
      rt.OnInput(task, -1, Match::Single(e), &outs);
    }
    RouteOutputs(rt, outs, done);
  }

  void HandleMessage(const QueueItem& item) {
    if (item.dst_node >= nodes_.size()) return;
    NodeRuntime& rt = nodes_[item.dst_node];
    SimMessage msg;
    msg.src_task = item.src_task;
    msg.channel_seq = item.channel_seq;
    if (!rt.Admit(msg)) return;  // duplicate from a recovering sender
    uint64_t done = Process(item.dst_node, item.time_us);
    std::vector<NodeRuntime::Output> outs;
    for (int succ : dep_.task(item.src_task).successors) {
      const Task& t = dep_.task(succ);
      if (t.node != item.dst_node) continue;
      rt.OnInput(succ, item.src_task, item.payload, &outs);
    }
    RouteOutputs(rt, outs, done);
  }

  void HandleFailure(NodeId node, uint64_t time_us) {
    if (node >= nodes_.size()) return;
    NodeRuntime& rt = nodes_[node];
    rt.Crash();
    std::vector<NodeRuntime::Output> outs;
    rt.Recover(&outs);
    // Regenerated outputs are re-sent; receivers drop duplicates via the
    // exactly-once channel filters.
    RouteOutputs(rt, outs, time_us);
  }

  void RouteOutputs(NodeRuntime& rt,
                    const std::vector<NodeRuntime::Output>& outs,
                    uint64_t time_us) {
    for (const NodeRuntime::Output& out : outs) {
      const Task& t = dep_.task(out.task);
      // Sink accounting.
      for (int query : t.sink_for) {
        RecordMatch(query, out.match, time_us);
      }
      // One physical message per destination node.
      std::set<NodeId> dst_nodes;
      for (int succ : t.successors) dst_nodes.insert(dep_.task(succ).node);
      for (NodeId dst : dst_nodes) {
        QueueItem item;
        item.kind = QueueItem::Kind::kMessage;
        item.order = next_order_++;
        item.src_task = t.id;
        item.dst_node = dst;
        item.channel_seq = rt.NextChannelSeq(t.id, dst);
        item.payload = out.match;
        if (dst == t.node) {
          item.time_us = time_us;
        } else {
          item.time_us = time_us + options_.network_delay_ms * 1000;
          ++report_.network_messages;
        }
        queue_.push(item);
      }
    }
  }

  void RecordMatch(int query, const Match& m, uint64_t time_us) {
    if (!seen_match_keys_[query].insert(m.Key()).second) return;
    latency_samples_.push_back(static_cast<double>(time_us) / 1000.0 -
                               static_cast<double>(m.MaxTime()));
    if (options_.collect_matches) {
      report_.matches_per_query[query].push_back(m);
    }
  }

  const Deployment& dep_;
  SimOptions options_;
  std::vector<NodeRuntime> nodes_;
  std::vector<uint64_t> node_free_us_;
  std::vector<uint64_t> node_busy_us_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue_;
  uint64_t next_order_ = 0;
  uint64_t last_time_us_ = 0;
  std::vector<std::unordered_set<std::string>> seen_match_keys_;
  std::vector<double> latency_samples_;
  SimReport report_;
};

}  // namespace

DistributedSimulator::DistributedSimulator(const Deployment& deployment,
                                           const SimOptions& options)
    : deployment_(deployment), options_(options) {}

SimReport DistributedSimulator::Run(const std::vector<Event>& trace) {
  return SimRun(deployment_, options_).Run(trace);
}

}  // namespace muse
