#ifndef MUSE_DIST_SIMULATOR_H_
#define MUSE_DIST_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/cep/evaluator.h"
#include "src/dist/deployment.h"
#include "src/dist/metrics.h"

namespace muse {

/// Configuration of the distributed execution simulation.
struct SimOptions {
  /// One-way network latency between any two nodes (the network is a
  /// complete graph, §2.1).
  uint64_t network_delay_ms = 5;

  /// Per-input processing cost model: base cost plus a term proportional to
  /// the partial matches currently maintained at the node. The linear term
  /// models the dominant cost of CEP evaluation [26] and is what makes
  /// single-sink plans congest (§7.3).
  double proc_base_us = 1.0;
  double proc_per_partial_us = 0.02;

  /// Evaluator options for every deployed task; if `eviction_slack_ms` is
  /// zero it is raised to cover cross-node arrival skew.
  EvaluatorOptions eval;

  /// Collect per-query matches in the report (disable for large runs).
  bool collect_matches = true;

  /// Injected failures: (node, virtual time ms). At each point the node
  /// crashes, loses its volatile state, and immediately recovers by
  /// replaying its durable input log; duplicates are suppressed end-to-end.
  std::vector<std::pair<NodeId, uint64_t>> failures;

  /// Telemetry configuration: snapshot cadence, flow-trace sampling, label
  /// policies (obs/telemetry.h). The produced registry/series/spans are
  /// attached to the SimReport.
  obs::ObsOptions obs;
};

/// Deterministic discrete-event simulation of a deployed MuSE graph (or
/// oOP / centralized plan) over a global trace: per-node CEP engines,
/// message channels with latency, processing-time modeling, transmission
/// accounting, and Ambrosia-style replay recovery. See DESIGN.md for the
/// substitution rationale (stands in for the paper's C#/Ambrosia testbed).
class DistributedSimulator {
 public:
  DistributedSimulator(const Deployment& deployment, const SimOptions& options);

  /// Runs the full trace to completion (including final flush) and reports
  /// metrics. Can be called once per simulator instance.
  SimReport Run(const std::vector<Event>& trace);

 private:
  const Deployment& deployment_;
  SimOptions options_;
};

}  // namespace muse

#endif  // MUSE_DIST_SIMULATOR_H_
