#ifndef MUSE_DIST_METRICS_H_
#define MUSE_DIST_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cep/match.h"
#include "src/obs/telemetry.h"

namespace muse {

/// Distribution summary (min / p25 / p50 / p75 / max — the box-plot
/// statistics of Fig. 8). Total on any input: empty and single-sample
/// vectors yield well-defined (zero / degenerate) summaries.
struct Distribution {
  double min = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double max = 0;
  size_t count = 0;

  static Distribution Of(std::vector<double> samples);

  /// Box-plot view of an HDR histogram (obs/metrics.h): quantiles are
  /// bucket midpoints clamped into the histogram's exact [min, max], so
  /// min <= p25 <= p50 <= p75 <= max always holds.
  static Distribution FromHistogram(const obs::Histogram& h);

  std::string ToString() const;
};

/// Results of one distributed execution. The aggregate fields below are
/// rebuilt from the run's metrics registry (`telemetry`), which holds the
/// full-resolution data: per-node/per-link/per-task counters, HDR latency
/// histograms, time-bucketed series, and sampled flow spans.
struct SimReport {
  uint64_t source_events = 0;
  uint64_t inputs_processed = 0;

  /// Matches that crossed the network (one count per destination node),
  /// the measured analogue of the cost model's c(G).
  uint64_t network_messages = 0;
  /// network_messages per simulated second; 0 (never NaN/inf) on an empty
  /// trace.
  double network_message_rate = 0;

  /// Detection latency per query match: virtual time from the last
  /// constituent event's occurrence to emission at a sink (ms). Derived
  /// from the registry's `latency_ms` HDR histograms (merged over
  /// queries); arbitrary other quantiles can be recovered from
  /// `telemetry`.
  Distribution latency_ms;
  /// Source events processed per simulated second of the busiest node —
  /// the pipeline's sustainable rate (§7.3).
  double throughput_events_per_s = 0;
  /// Wall-clock execution time of the whole simulation.
  double wall_seconds = 0;

  /// Peak partial matches maintained, per node; max over nodes is the
  /// bottleneck indicator discussed in §7.3.
  std::vector<uint64_t> peak_partial_matches;
  uint64_t max_peak_partial_matches = 0;

  /// Peak live entries over the per-query sink dedup sets. Under watermark
  /// compaction this is bounded by the window + slack horizon (times the
  /// match rate), not by the stream length.
  uint64_t sink_dedup_peak = 0;
  /// Max over tasks of the evaluators' peak pending NSEQ candidates —
  /// bounded by the same horizon under eager watermark release.
  uint64_t max_peak_pending = 0;

  /// Deduplicated matches per workload query.
  std::vector<std::vector<Match>> matches_per_query;

  /// Full telemetry of the run: registry, time series, flow spans. Always
  /// present after DistributedSimulator::Run; shared so reports stay
  /// cheaply copyable.
  std::shared_ptr<obs::RunTelemetry> telemetry;

  std::string Summary() const;
};

}  // namespace muse

#endif  // MUSE_DIST_METRICS_H_
