#ifndef MUSE_DIST_METRICS_H_
#define MUSE_DIST_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cep/match.h"

namespace muse {

/// Distribution summary (min / p25 / p50 / p75 / max — the box-plot
/// statistics of Fig. 8).
struct Distribution {
  double min = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double max = 0;
  size_t count = 0;

  static Distribution Of(std::vector<double> samples);
  std::string ToString() const;
};

/// Results of one distributed execution.
struct SimReport {
  uint64_t source_events = 0;
  uint64_t inputs_processed = 0;

  /// Matches that crossed the network (one count per destination node),
  /// the measured analogue of the cost model's c(G).
  uint64_t network_messages = 0;
  /// network_messages per simulated second.
  double network_message_rate = 0;

  /// Detection latency per query match: virtual time from the last
  /// constituent event's occurrence to emission at a sink (ms).
  Distribution latency_ms;
  /// Source events processed per simulated second of the busiest node —
  /// the pipeline's sustainable rate (§7.3).
  double throughput_events_per_s = 0;
  /// Wall-clock execution time of the whole simulation.
  double wall_seconds = 0;

  /// Peak partial matches maintained, per node; max over nodes is the
  /// bottleneck indicator discussed in §7.3.
  std::vector<uint64_t> peak_partial_matches;
  uint64_t max_peak_partial_matches = 0;

  /// Deduplicated matches per workload query.
  std::vector<std::vector<Match>> matches_per_query;

  std::string Summary() const;
};

}  // namespace muse

#endif  // MUSE_DIST_METRICS_H_
