#include "src/dist/deployment.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/check.h"

namespace muse {

std::string Task::ToString(const TypeRegistry* reg) const {
  std::string out = "task" + std::to_string(id) + "@n" +
                    std::to_string(node) + " " +
                    target.ToString(reg);
  if (part_type != kNoPartition) out += " part=E" + std::to_string(part_type);
  if (!sink_for.empty()) {
    out += " sink_for={";
    for (size_t i = 0; i < sink_for.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(sink_for[i]);
    }
    out += "}";
  }
  return out;
}

namespace {

/// Debug-build postcondition of task compilation (see MUSE_DCHECK below):
/// channels are symmetric — every successor edge has a matching input
/// channel and vice versa, inputs feed existing parts of the right type
/// set — and every evaluator part of a non-primitive task is fed.
/// muse_lint's M6xx rules re-check the same invariants with diagnostics.
[[maybe_unused]] bool WiringConsistent(const std::vector<Task>& tasks) {
  for (const Task& t : tasks) {
    for (int s : t.successors) {
      const std::vector<std::pair<int, int>>& in = tasks[s].inputs;
      if (std::none_of(in.begin(), in.end(),
                       [&t](const std::pair<int, int>& i) {
                         return i.first == t.id;
                       })) {
        return false;
      }
    }
    std::set<int> covered;
    for (const auto& [src, part] : t.inputs) {
      const std::vector<int>& succ = tasks[src].successors;
      if (std::find(succ.begin(), succ.end(), t.id) == succ.end()) {
        return false;
      }
      if (part < 0 || part >= static_cast<int>(t.part_types.size())) {
        return false;
      }
      if (tasks[src].proj != t.part_types[part]) return false;
      covered.insert(part);
    }
    if (!t.is_primitive && covered.size() != t.part_types.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Deployment::Deployment(const MuseGraph& plan,
                       const std::vector<const ProjectionCatalog*>& catalogs) {
  num_queries_ = static_cast<int>(catalogs.size());

  // 1. Merge equivalent vertices into tasks, keyed by (node, signature,
  //    partition).
  std::map<std::tuple<NodeId, std::string, int>, int> task_of_key;
  std::vector<int> task_of_vertex(plan.num_vertices(), -1);
  for (int vi = 0; vi < plan.num_vertices(); ++vi) {
    const PlanVertex& v = plan.vertex(vi);
    const ProjectionCatalog& cat = *catalogs[v.query];
    auto key = std::make_tuple(v.node, cat.Signature(v.proj), v.part_type);
    auto it = task_of_key.find(key);
    if (it == task_of_key.end()) {
      Task t;
      t.id = static_cast<int>(tasks_.size());
      t.node = v.node;
      t.proj = v.proj;
      t.part_type = v.part_type;
      t.rep_query = v.query;
      t.target = cat.Ast(v.proj);
      t.is_primitive = v.IsPrimitive();
      if (t.is_primitive) t.prim_type = v.proj.First();
      it = task_of_key.emplace(key, t.id).first;
      tasks_.push_back(std::move(t));
    }
    task_of_vertex[vi] = it->second;
    // Sink bookkeeping: this vertex hosts the root projection of its query.
    if (v.proj == cat.query().PrimitiveTypes()) {
      Task& t = tasks_[it->second];
      if (std::find(t.sink_for.begin(), t.sink_for.end(), v.query) ==
          t.sink_for.end()) {
        t.sink_for.push_back(v.query);
      }
    }
  }

  // 2. Routing: predecessor tasks grouped into evaluator parts by their
  //    projection type set.
  std::vector<std::set<int>> preds(tasks_.size());
  std::vector<std::set<int>> succs(tasks_.size());
  for (const auto& [from, to] : plan.edges()) {
    int src = task_of_vertex[from];
    int dst = task_of_vertex[to];
    if (src == dst) continue;
    preds[dst].insert(src);
    succs[src].insert(dst);
  }
  for (Task& t : tasks_) {
    t.successors.assign(succs[t.id].begin(), succs[t.id].end());
    if (t.is_primitive) {
      MUSE_CHECK(preds[t.id].empty(), "primitive task with inputs");
      continue;
    }
    const ProjectionCatalog& cat = *catalogs[t.rep_query];
    std::map<uint64_t, int> part_of_proj;
    for (int src : preds[t.id]) {
      TypeSet p = tasks_[src].proj;
      auto it = part_of_proj.find(p.bits());
      if (it == part_of_proj.end()) {
        int idx = static_cast<int>(t.parts.size());
        // The part AST comes from the representative query's catalog; a
        // predecessor owned by another query has an identical signature.
        MUSE_CHECK(cat.Valid(p), "predecessor projection unknown to catalog");
        t.parts.push_back(cat.Ast(p));
        t.part_types.push_back(p);
        it = part_of_proj.emplace(p.bits(), idx).first;
      }
      t.inputs.emplace_back(src, it->second);
    }
    MUSE_CHECK(!t.parts.empty(),
               "non-primitive task without inputs; plan is not well-formed");
  }
  MUSE_DCHECK(WiringConsistent(tasks_), "compiled task wiring inconsistent");

  // 3. Primitive dispatch index.
  NodeId max_node = 0;
  EventTypeId max_type = 0;
  for (const Task& t : tasks_) {
    max_node = std::max(max_node, t.node);
    if (t.is_primitive) max_type = std::max(max_type, t.prim_type);
  }
  primitive_index_.assign(max_node + 1,
                          std::vector<std::vector<int>>(max_type + 1));
  for (const Task& t : tasks_) {
    if (t.is_primitive) {
      primitive_index_[t.node][t.prim_type].push_back(t.id);
    }
  }

  // 4. Freeze the planner-input rates for drift detection (obs/drift.h).
  //    Types carry the exact global rates the trace generator realizes;
  //    projections carry the r̂ = rate * bindings output estimate, with
  //    multi-task placements of one query's projection (partitions) seen
  //    as shares of a single logical stream, while placements owned by
  //    different queries add their own estimates.
  if (!catalogs.empty()) {
    const Network& net = catalogs[0]->network();
    planner_rates_.type_eps.resize(
        static_cast<size_t>(net.num_types()));
    for (EventTypeId t = 0;
         t < static_cast<EventTypeId>(net.num_types()); ++t) {
      planner_rates_.type_eps[t] = net.GlobalRate(t);
    }
    std::map<std::pair<int, std::string>, int> placements;  // partitions
    for (const Task& t : tasks_) {
      if (t.is_primitive) continue;
      const ProjectionCatalog& cat = *catalogs[t.rep_query];
      if (!cat.Valid(t.proj)) continue;
      ++placements[{t.rep_query, cat.Signature(t.proj)}];
    }
    std::map<std::string, size_t> stream_of_sig;
    for (const Task& t : tasks_) {
      if (t.is_primitive) continue;
      const ProjectionCatalog& cat = *catalogs[t.rep_query];
      if (!cat.Valid(t.proj)) continue;
      const std::string& sig = cat.Signature(t.proj);
      auto [it, fresh] = stream_of_sig.emplace(
          sig, planner_rates_.projections.size());
      if (fresh) {
        obs::RateSnapshot::ProjectionRate p;
        p.label = sig;
        planner_rates_.projections.push_back(std::move(p));
      }
      obs::RateSnapshot::ProjectionRate& p =
          planner_rates_.projections[it->second];
      p.eps += cat.Rate(t.proj) * cat.Bindings(t.proj) /
               static_cast<double>(placements[{t.rep_query, sig}]);
      p.tasks.push_back(t.id);
    }
  }
}

const std::vector<int>& Deployment::PrimitiveTasksFor(NodeId node,
                                                      EventTypeId type) const {
  if (node >= primitive_index_.size() ||
      type >= primitive_index_[node].size()) {
    return empty_;
  }
  return primitive_index_[node][type];
}

std::string Deployment::ToString(const TypeRegistry* reg) const {
  std::string out =
      "deployment: " + std::to_string(tasks_.size()) + " tasks\n";
  for (const Task& t : tasks_) {
    out += "  " + t.ToString(reg) + "\n";
    for (int s : t.successors) {
      out += "    -> task" + std::to_string(s) + "@n" +
             std::to_string(tasks_[s].node) + "\n";
    }
  }
  return out;
}

}  // namespace muse
