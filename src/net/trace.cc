#include "src/net/trace.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/net/poisson.h"

namespace muse {

std::vector<Event> GenerateGlobalTrace(const Network& net,
                                       const TraceOptions& options, Rng& rng) {
  std::vector<Event> events;
  auto capped = [&events, &options]() {
    return options.max_events != 0 && events.size() >= options.max_events;
  };
  for (NodeId node = 0;
       node < static_cast<NodeId>(net.num_nodes()) && !capped(); ++node) {
    for (EventTypeId type : net.produces(node)) {
      if (capped()) break;
      const double rate = net.Rate(type);
      if (rate <= 0) continue;
      PoissonProcess process(rate);
      while (!capped()) {
        uint64_t t = process.NextArrival(rng);
        if (t >= options.duration_ms) break;
        Event e;
        e.type = type;
        e.origin = node;
        e.time = t;
        for (int a = 0; a < kNumAttrs; ++a) {
          e.attrs[a] = rng.UniformInt(0, options.attr_cardinality[a] - 1);
        }
        events.push_back(e);
      }
    }
  }
  FinalizeTraceOrder(&events);
  return events;
}

void FinalizeTraceOrder(std::vector<Event>* events) {
  std::sort(events->begin(), events->end(),
            [](const Event& a, const Event& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.origin != b.origin) return a.origin < b.origin;
              if (a.type != b.type) return a.type < b.type;
              return a.attrs[0] < b.attrs[0];
            });
  for (size_t i = 0; i < events->size(); ++i) {
    (*events)[i].seq = i;
  }
}

std::vector<Event> LocalTrace(const std::vector<Event>& trace, NodeId node) {
  std::vector<Event> out;
  for (const Event& e : trace) {
    if (e.origin == node) out.push_back(e);
  }
  return out;
}

}  // namespace muse
