#ifndef MUSE_NET_ZIPF_H_
#define MUSE_NET_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace muse {

/// Samples from a Zipf distribution: P(X = k) ∝ k^(-s) for k in
/// [1, max_value].
///
/// The paper draws per-type event generation rates from this distribution
/// (§7.1, "event rate skew"). Note the parameterization's effect on *rate
/// heterogeneity*: a small exponent (s = 1.1) yields a heavy tail, so a few
/// sampled rates can be orders of magnitude (up to ~10^6×) larger than the
/// rest; a large exponent (s = 2.0) concentrates nearly all mass at small
/// values, making sampled rates nearly equal — exactly the behaviour §7.2
/// describes for the skew sweep.
class ZipfSampler {
 public:
  ZipfSampler(double exponent, uint64_t max_value = 1'000'000);

  /// Draws one value in [1, max_value].
  uint64_t Sample(Rng& rng) const;

  double exponent() const { return exponent_; }

 private:
  double exponent_;
  /// Normalized cumulative distribution; cum_[k-1] = P(X <= k).
  std::vector<double> cum_;
};

}  // namespace muse

#endif  // MUSE_NET_ZIPF_H_
