#ifndef MUSE_NET_NETWORK_H_
#define MUSE_NET_NETWORK_H_

#include <vector>

#include "src/cep/event.h"
#include "src/common/typeset.h"

namespace muse {

/// An event-sourced network Γ = (N, f, r) (§2.1): a set of nodes N, a
/// function f assigning to each node the event types it can emit, and a
/// function r assigning to each event type its generation rate.
///
/// Rates are *per producing node per time unit* (we use 1 second as the
/// time unit throughout): a type produced by k nodes has a network-wide
/// rate of k·r(E). All nodes can exchange events directly (the network is a
/// complete graph), so transmission cost counts event rates, not hops.
class Network {
 public:
  Network(int num_nodes, int num_types);

  int num_nodes() const { return num_nodes_; }
  int num_types() const { return num_types_; }

  // -- Construction ----------------------------------------------------------
  void AddProducer(NodeId node, EventTypeId type);
  void SetRate(EventTypeId type, double rate);
  /// Declares the processing capacity of `node` in events per second
  /// (inputs a node's tasks can evaluate per time unit). 0 — the default —
  /// means undeclared/unlimited; the static capacity-feasibility rule
  /// (M904) only fires against declared capacities.
  void SetCapacity(NodeId node, double events_per_sec);

  // -- f: node -> types ------------------------------------------------------
  TypeSet produces(NodeId node) const { return produces_[node]; }
  bool Produces(NodeId node, EventTypeId type) const {
    return produces_[node].Contains(type);
  }
  /// Nodes producing `type`, ascending.
  const std::vector<NodeId>& Producers(EventTypeId type) const {
    return producers_[type];
  }
  int NumProducers(EventTypeId type) const {
    return static_cast<int>(producers_[type].size());
  }

  // -- r: type -> rate -------------------------------------------------------
  /// Rate of `type` per producing node.
  double Rate(EventTypeId type) const { return rates_[type]; }
  /// Network-wide rate of `type`: r(E) times the number of producers.
  double GlobalRate(EventTypeId type) const {
    return rates_[type] * NumProducers(type);
  }
  /// Sum of network-wide rates over a set of types. This is the cost of
  /// shipping all events of these types to an external sink — the
  /// centralized baseline's network cost (§3).
  double GlobalRate(TypeSet types) const;

  // -- capacity: node -> events/s --------------------------------------------
  /// Declared processing capacity of `node`; 0 means undeclared/unlimited.
  double Capacity(NodeId node) const { return capacities_[node]; }
  /// True if any node declares a finite capacity.
  bool HasCapacities() const;

  /// Average fraction of event types produced per node (the paper's
  /// *event node ratio*, §7.1).
  double EventNodeRatio() const;

  /// 64-bit hash of the full network state (node/type counts, producer
  /// assignment, rate bit patterns). Two networks with equal fingerprints
  /// yield identical rate computations, which makes the fingerprint a valid
  /// component of memoization keys (RateCache). Recomputed on each call —
  /// use once per catalog construction, not per lookup.
  uint64_t Fingerprint() const;

 private:
  int num_nodes_;
  int num_types_;
  std::vector<TypeSet> produces_;               // per node
  std::vector<std::vector<NodeId>> producers_;  // per type
  std::vector<double> rates_;                   // per type
  std::vector<double> capacities_;              // per node (0 = unlimited)
};

}  // namespace muse

#endif  // MUSE_NET_NETWORK_H_
