#include "src/net/network_gen.h"

#include "src/common/check.h"
#include "src/net/zipf.h"

namespace muse {

Network MakeRandomNetwork(const NetworkGenOptions& options, Rng& rng) {
  MUSE_CHECK(options.event_node_ratio > 0 && options.event_node_ratio <= 1.0,
             "event_node_ratio in (0, 1]");
  Network net(options.num_nodes, options.num_types);

  for (EventTypeId type = 0;
       type < static_cast<EventTypeId>(options.num_types); ++type) {
    for (NodeId node = 0; node < static_cast<NodeId>(options.num_nodes);
         ++node) {
      if (rng.Chance(options.event_node_ratio)) net.AddProducer(node, type);
    }
    // Every type needs at least one source; otherwise queries over it are
    // trivially empty and the transmission-ratio metric degenerates.
    if (net.NumProducers(type) == 0) {
      net.AddProducer(
          static_cast<NodeId>(rng.UniformInt(0, options.num_nodes - 1)), type);
    }
  }

  ZipfSampler zipf(options.rate_skew, options.max_rate);
  for (EventTypeId type = 0;
       type < static_cast<EventTypeId>(options.num_types); ++type) {
    net.SetRate(type, static_cast<double>(zipf.Sample(rng)));
  }
  return net;
}

}  // namespace muse
