#ifndef MUSE_NET_TRACE_H_
#define MUSE_NET_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/cep/event.h"
#include "src/common/rng.h"
#include "src/net/network.h"

namespace muse {

/// Options for synthetic trace generation.
struct TraceOptions {
  /// Simulated duration in milliseconds.
  uint64_t duration_ms = 10'000;

  /// Payload attribute cardinalities: attrs[i] is drawn uniformly from
  /// [0, attr_cardinality[i]). The selectivity of an equality predicate on
  /// attribute i is then approximately 1/attr_cardinality[i].
  int64_t attr_cardinality[kNumAttrs] = {10, 10};

  /// Hard cap on the total number of generated events (0 = unlimited);
  /// protects against accidentally huge rate draws.
  uint64_t max_events = 5'000'000;
};

/// Generates the *global trace* of `net` (§2.1): one Poisson process per
/// (node, producible type) pair with the type's rate, merged and totally
/// ordered. Ties in timestamps are resolved deterministically by
/// (time, origin, type); `seq` is the position in the merged trace.
std::vector<Event> GenerateGlobalTrace(const Network& net,
                                       const TraceOptions& options, Rng& rng);

/// Sorts `events` into global-trace order and assigns `seq` accordingly.
/// Used by generators that produce events out of order (e.g. the synthetic
/// cluster trace).
void FinalizeTraceOrder(std::vector<Event>* events);

/// The events of `trace` originating at `node`, in order — the local trace
/// t(node).
std::vector<Event> LocalTrace(const std::vector<Event>& trace, NodeId node);

}  // namespace muse

#endif  // MUSE_NET_TRACE_H_
