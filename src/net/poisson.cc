#include "src/net/poisson.h"

#include <cmath>

#include "src/common/check.h"

namespace muse {

PoissonProcess::PoissonProcess(double rate_per_second, uint64_t start_time_ms)
    : rate_per_ms_(rate_per_second / 1000.0),
      time_exact_(static_cast<double>(start_time_ms)),
      time_ms_(start_time_ms) {
  MUSE_CHECK(rate_per_second > 0, "Poisson rate must be positive");
}

uint64_t PoissonProcess::NextArrival(Rng& rng) {
  time_exact_ += rng.Exponential(rate_per_ms_);
  time_ms_ = static_cast<uint64_t>(std::llround(time_exact_));
  return time_ms_;
}

}  // namespace muse
