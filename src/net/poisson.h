#ifndef MUSE_NET_POISSON_H_
#define MUSE_NET_POISSON_H_

#include <cstdint>

#include "src/common/rng.h"

namespace muse {

/// A Poisson arrival process: event generation in the network follows a
/// Poisson distribution (§7.1). Rates are events per second; emitted
/// timestamps are milliseconds.
class PoissonProcess {
 public:
  /// `rate_per_second` must be positive.
  PoissonProcess(double rate_per_second, uint64_t start_time_ms = 0);

  /// Advances to and returns the next arrival timestamp (ms).
  uint64_t NextArrival(Rng& rng);

  uint64_t current_time_ms() const { return time_ms_; }

 private:
  double rate_per_ms_;
  double time_exact_;
  uint64_t time_ms_;
};

}  // namespace muse

#endif  // MUSE_NET_POISSON_H_
