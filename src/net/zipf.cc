#include "src/net/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace muse {

ZipfSampler::ZipfSampler(double exponent, uint64_t max_value)
    : exponent_(exponent) {
  MUSE_CHECK(exponent > 0, "Zipf exponent must be positive");
  MUSE_CHECK(max_value >= 1, "Zipf support must be non-empty");
  cum_.resize(max_value);
  double sum = 0;
  for (uint64_t k = 1; k <= max_value; ++k) {
    sum += std::pow(static_cast<double>(k), -exponent);
    cum_[k - 1] = sum;
  }
  for (double& c : cum_) c /= sum;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.Uniform(0.0, 1.0);
  auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  if (it == cum_.end()) --it;
  return static_cast<uint64_t>(it - cum_.begin()) + 1;
}

}  // namespace muse
