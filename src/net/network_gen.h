#ifndef MUSE_NET_NETWORK_GEN_H_
#define MUSE_NET_NETWORK_GEN_H_

#include "src/common/rng.h"
#include "src/net/network.h"

namespace muse {

/// Parameters of the synthetic networks used in the simulation study
/// (§7.1). Defaults match the paper's default configuration: 20 nodes,
/// 15 event types, event-node ratio 0.5, rate skew 1.5.
struct NetworkGenOptions {
  int num_nodes = 20;
  int num_types = 15;

  /// Probability that a given node produces a given type — the expected
  /// *event node ratio*. Every type is guaranteed at least one producer.
  double event_node_ratio = 0.5;

  /// Zipf exponent for per-type rate draws (see ZipfSampler). Smaller
  /// values produce heavier tails, i.e. more heterogeneous rates.
  double rate_skew = 1.5;

  /// Upper bound of the Zipf support for rate draws.
  uint64_t max_rate = 1'000'000;
};

/// Draws an event-sourced network per `options`. Deterministic given `rng`.
Network MakeRandomNetwork(const NetworkGenOptions& options, Rng& rng);

}  // namespace muse

#endif  // MUSE_NET_NETWORK_GEN_H_
