#include "src/net/network.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/common/check.h"

namespace muse {

Network::Network(int num_nodes, int num_types)
    : num_nodes_(num_nodes),
      num_types_(num_types),
      produces_(num_nodes),
      producers_(num_types),
      rates_(num_types, 1.0),
      capacities_(num_nodes, 0.0) {
  MUSE_CHECK(num_nodes > 0, "network needs at least one node");
  MUSE_CHECK(num_types > 0 && num_types <= 64, "1..64 event types");
}

void Network::AddProducer(NodeId node, EventTypeId type) {
  MUSE_CHECK(node < static_cast<NodeId>(num_nodes_), "node out of range");
  MUSE_CHECK(type < static_cast<EventTypeId>(num_types_),
             "type out of range");
  if (produces_[node].Contains(type)) return;
  produces_[node].Insert(type);
  producers_[type].push_back(node);
  std::sort(producers_[type].begin(), producers_[type].end());
}

void Network::SetRate(EventTypeId type, double rate) {
  MUSE_CHECK(type < static_cast<EventTypeId>(num_types_),
             "type out of range");
  MUSE_CHECK(rate >= 0, "negative rate");
  rates_[type] = rate;
}

void Network::SetCapacity(NodeId node, double events_per_sec) {
  MUSE_CHECK(node < static_cast<NodeId>(num_nodes_), "node out of range");
  MUSE_CHECK(events_per_sec >= 0, "negative capacity");
  capacities_[node] = events_per_sec;
}

bool Network::HasCapacities() const {
  return std::any_of(capacities_.begin(), capacities_.end(),
                     [](double c) { return c > 0; });
}

double Network::GlobalRate(TypeSet types) const {
  double sum = 0;
  for (EventTypeId t : types) sum += GlobalRate(t);
  return sum;
}

uint64_t Network::Fingerprint() const {
  // FNV-1a over the state that rate computations read, with a final
  // splitmix64 finalizer for well-mixed high bits.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<uint64_t>(num_nodes_));
  mix(static_cast<uint64_t>(num_types_));
  for (int t = 0; t < num_types_; ++t) {
    mix(std::bit_cast<uint64_t>(rates_[t]));
    mix(static_cast<uint64_t>(producers_[t].size()));
    for (NodeId n : producers_[t]) mix(static_cast<uint64_t>(n));
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

double Network::EventNodeRatio() const {
  double total = 0;
  for (const TypeSet& s : produces_) total += s.size();
  return total / (static_cast<double>(num_nodes_) * num_types_);
}

}  // namespace muse
