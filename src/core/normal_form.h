#ifndef MUSE_CORE_NORMAL_FORM_H_
#define MUSE_CORE_NORMAL_FORM_H_

#include "src/core/muse_graph.h"

namespace muse {

/// Collapsed normal form (Def. 11): repeatedly removes every non-primitive
/// vertex w = (o, m) that has a successor v = (p, n) with n == m and no
/// outgoing network edge (edge to a vertex at a different node); w's
/// incoming edges are redirected to its same-node successors. The
/// transformation preserves vertex covers and the represented evaluation
/// plan's network cost.
MuseGraph CollapsedNormalForm(const MuseGraph& g);

/// Equivalence of MuSE graphs (Property 5): equal collapsed normal forms.
bool EquivalentMuseGraphs(const MuseGraph& a, const MuseGraph& b);

}  // namespace muse

#endif  // MUSE_CORE_NORMAL_FORM_H_
