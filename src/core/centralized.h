#ifndef MUSE_CORE_CENTRALIZED_H_
#define MUSE_CORE_CENTRALIZED_H_

#include <vector>

#include "src/cep/query.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"
#include "src/net/network.h"

namespace muse {

/// Network cost of the centralized baseline for a workload (§3, §7.1):
/// every event of every type referenced by some query is shipped once to a
/// central instance *outside* the network. This is the denominator of the
/// transmission-ratio metric.
double CentralizedWorkloadCost(const Network& net,
                               const std::vector<Query>& workload);

/// Union of the primitive types of a workload's queries.
TypeSet WorkloadTypes(const std::vector<Query>& workload);

/// A centralized plan *inside* the network, for executing the baseline in
/// the distributed runtime: all primitive streams of all queries flow to
/// `sink`, where each query is evaluated against the unified stream.
/// Expressed as a MuSE graph (one single-sink full-query vertex per query).
MuseGraph BuildCentralizedPlan(
    const std::vector<const ProjectionCatalog*>& catalogs, NodeId sink);

}  // namespace muse

#endif  // MUSE_CORE_CENTRALIZED_H_
