#include "src/core/correctness.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/core/bindings.h"
#include "src/core/combination.h"

namespace muse {
namespace {

bool Fail(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
  return false;
}

/// Does the graph place projection-signature `sig` (a singleton of type
/// `t`) at node `n`? Cross-query singleton placements count (§6.2).
bool HasPrimitiveVertex(const MuseGraph& g,
                        const std::vector<const ProjectionCatalog*>& catalogs,
                        const std::string& sig, EventTypeId t, NodeId n) {
  for (const PlanVertex& v : g.vertices()) {
    if (v.node != n || !v.IsPrimitive() || v.proj.First() != t) continue;
    if (catalogs[v.query]->Signature(v.proj) == sig) return true;
  }
  return false;
}

}  // namespace

bool IsWellFormed(const MuseGraph& g,
                  const std::vector<const ProjectionCatalog*>& catalogs,
                  std::string* why) {
  // (i) Every (query, primitive type, producer) is represented.
  for (size_t qi = 0; qi < catalogs.size(); ++qi) {
    const ProjectionCatalog& cat = *catalogs[qi];
    const Network& net = cat.network();
    for (EventTypeId t : cat.query().PrimitiveTypes()) {
      const std::string& sig = cat.Signature(TypeSet::Of(t));
      for (NodeId n : net.Producers(t)) {
        if (!HasPrimitiveVertex(g, catalogs, sig, t, n)) {
          return Fail(why, "missing primitive vertex for type " +
                               std::to_string(t) + " at node " +
                               std::to_string(n) + " (query " +
                               std::to_string(qi) + ")");
        }
      }
    }
  }

  // (ii) Per-vertex combination correctness.
  for (int vi = 0; vi < g.num_vertices(); ++vi) {
    const PlanVertex& v = g.vertex(vi);
    if (v.IsPrimitive() || v.reused) continue;
    std::set<uint64_t> part_bits;
    std::vector<TypeSet> parts;
    for (int pi : g.Predecessors(vi)) {
      TypeSet p = g.vertex(pi).proj;
      if (part_bits.insert(p.bits()).second) parts.push_back(p);
    }
    Combination c{v.proj, parts};
    if (!IsCorrectCombination(c)) {
      return Fail(why, "vertex " + v.ToString() +
                           " has an incorrect combination: " + c.ToString());
    }
  }
  return true;
}

bool IsComplete(const MuseGraph& g,
                const std::vector<const ProjectionCatalog*>& catalogs,
                std::string* why) {
  for (size_t qi = 0; qi < catalogs.size(); ++qi) {
    const ProjectionCatalog& cat = *catalogs[qi];
    const Network& net = cat.network();
    TypeSet full = cat.query().PrimitiveTypes();
    const std::string& sig = cat.Signature(full);

    std::vector<PlanVertex> roots;
    for (const PlanVertex& v : g.vertices()) {
      if (v.proj == full && catalogs[v.query]->Signature(v.proj) == sig) {
        roots.push_back(v);
      }
    }
    if (roots.empty()) {
      return Fail(why, "query " + std::to_string(qi) + " has no sink");
    }
    // Single-sink cover?
    bool covered = std::any_of(
        roots.begin(), roots.end(),
        [](const PlanVertex& v) { return v.part_type == kNoPartition; });
    if (!covered) {
      // Partitioned group spanning all producers of some type?
      for (EventTypeId t : full) {
        std::set<NodeId> nodes;
        for (const PlanVertex& v : roots) {
          if (v.part_type == static_cast<int>(t)) nodes.insert(v.node);
        }
        const std::vector<NodeId>& producers = net.Producers(t);
        if (!producers.empty() &&
            std::all_of(producers.begin(), producers.end(),
                        [&](NodeId n) { return nodes.count(n) != 0; })) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) {
      return Fail(why, "query " + std::to_string(qi) +
                           "'s sinks do not cover all event type bindings");
    }
  }
  return true;
}

bool IsCorrectPlan(const MuseGraph& g,
                   const std::vector<const ProjectionCatalog*>& catalogs,
                   std::string* why) {
  return IsWellFormed(g, catalogs, why) && IsComplete(g, catalogs, why);
}

bool IsCorrectPlan(const MuseGraph& g, const ProjectionCatalog& catalog,
                   std::string* why) {
  std::vector<const ProjectionCatalog*> catalogs = {&catalog};
  return IsCorrectPlan(g, catalogs, why);
}

bool VerticesCoverAllBindings(const std::vector<PlanVertex>& vertices,
                              const Network& net, TypeSet proj) {
  std::vector<Binding> bindings = EnumerateBindings(net, proj);
  for (const Binding& b : bindings) {
    bool covered = false;
    for (const PlanVertex& v : vertices) {
      if (v.proj != proj) continue;
      if (v.part_type == kNoPartition ||
          b.NodeFor(static_cast<EventTypeId>(v.part_type)) ==
              static_cast<int>(v.node)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace muse
