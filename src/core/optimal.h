#ifndef MUSE_CORE_OPTIMAL_H_
#define MUSE_CORE_OPTIMAL_H_

#include "src/core/amuse.h"
#include "src/core/projection.h"

namespace muse {

/// Exhaustive MuSE graph search for a single query, used to validate aMuSE
/// plan quality on small instances (the paper's Alg. 1 analogue; the
/// unrestricted construction is hyper-exponential and took the authors ~24h
/// even for 4 nodes / 4 primitive operators, §7.1).
///
/// Searched space — the class the paper itself restricts to (§6.1.2,
/// §6.1.3): G^uni graphs composed of single-sink placements (at *any* node,
/// not only local ones) and partitioning multi-sink placements (on *any*
/// part, not only Eq.-6-triggered ones), over *all* valid projections and
/// all correct non-redundant combinations, with per-part placement options
/// explored exhaustively (cartesian, not greedily as in Alg. 3). By
/// construction this space contains every plan aMuSE/aMuSE* can produce,
/// so ExhaustivePlan(...).cost <= PlanQuery(...).cost always holds.
///
/// Complexity is exponential in |O_p| and |N|; intended for |O_p| <= 4 and
/// |N| <= 5 (tests and micro-studies).
PlanResult ExhaustivePlan(const ProjectionCatalog& catalog);

}  // namespace muse

#endif  // MUSE_CORE_OPTIMAL_H_
