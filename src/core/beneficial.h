#ifndef MUSE_CORE_BENEFICIAL_H_
#define MUSE_CORE_BENEFICIAL_H_

#include <vector>

#include "src/core/combination.h"
#include "src/core/projection.h"

namespace muse {

/// Beneficial projection test (Def. 13, applied to the *primitive
/// combination* as in Alg. 2): a projection can only reduce network traffic
/// if its output rate does not exceed the summed rates of its primitive
/// inputs, r̂(p) ≤ Σ_{t ∈ O_p^p} r(t). Projections failing this are pruned
/// (Theorem 3: they cannot appear in an optimal MuSE graph).
bool IsBeneficialProjection(const ProjectionCatalog& catalog, TypeSet p);

/// Additional aMuSE* projection filter (§6.2): keep p only if some
/// primitive input alone outweighs p's *total* output rate across all of
/// its bindings: ∃ t ∈ p with r(t) ≥ r̂(p) · |𝔈(p)|. Not applied to
/// singletons (primitive projections are always available as inputs).
bool PassesStarFilter(const ProjectionCatalog& catalog, TypeSet p);

/// aMuSE* predecessor filter (§6.2): a predecessor projection e of p is
/// considered for (local) placements only if r̂(e) ≥ r̂(p) · |𝔈(p)|.
bool StarAllowsPredecessor(const ProjectionCatalog& catalog, TypeSet target,
                           TypeSet predecessor);

/// Partitioning-input test, Eq. 6 (§6.1.3): part e of combination `c` can
/// partition the placement of the target iff
///   r̂(e) ≥ Σ_{ẽ ∈ parts \ e} r̂(ẽ) · |𝔈(ẽ)|,
/// in which case matches of e are never sent over the network (each node
/// producing e's placement-option type hosts the target). Returns the index
/// of the partitioning input in c.parts, or -1. At most one part can
/// satisfy the inequality.
int FindPartitioningInput(const ProjectionCatalog& catalog,
                          const Combination& c);

/// Beneficial-vertex inequality of Def. 12 for a vertex with cover size
/// `cover`, given the predecessor covers per part; exposed for tests and
/// analysis: |𝔄(v)| · r̂(p) ≤ Σ_e r̂(e) · Σ_{w ∈ Pre(v,e)} |𝔄(w)|.
bool SatisfiesBeneficialVertexInequality(
    const ProjectionCatalog& catalog, TypeSet target, double cover,
    const std::vector<std::pair<TypeSet, double>>& predecessor_covers);

}  // namespace muse

#endif  // MUSE_CORE_BENEFICIAL_H_
