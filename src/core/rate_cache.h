#ifndef MUSE_CORE_RATE_CACHE_H_
#define MUSE_CORE_RATE_CACHE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/cep/query.h"
#include "src/net/network.h"

namespace muse {

/// Process-wide memoization of projection output rates r̂ (muse-par).
///
/// Catalog construction recomputes `QueryOutputRate` for every valid
/// projection of every query; across a workload (and across the repeated
/// catalog constructions of bench sweeps) the same projection ASTs recur
/// constantly. The cache keys on a 64-bit mix of the projection's
/// *signature* hash, its predicate-selectivity product, and the network
/// fingerprint — see `Key` for why all three components are required.
///
/// Sharded 16 ways by key so concurrent planners (component-parallel
/// `PlanWorkloadAmuse`, parallel candidate costing) rarely contend on one
/// mutex. Values are pure functions of their key's preimage, so a cache hit
/// returns bit-identical doubles to recomputation and races between two
/// same-key misses are benign (both compute the same value). Shards that
/// grow past `kMaxShardEntries` are dropped wholesale — eviction never
/// affects results, only hit rates.
class RateCache {
 public:
  static constexpr int kShards = 16;
  static constexpr size_t kMaxShardEntries = 1 << 14;

  /// The process-wide instance used by ProjectionCatalog.
  static RateCache& Global();

  /// Cache key for `QueryOutputRate(ast, net)`. The signature alone is NOT
  /// a sufficient key: `Query::Signature()` serializes predicates without
  /// their selectivities, so two structurally identical projections can
  /// differ in `Selectivity()` and hence in rate. Folding in the
  /// selectivity product (bit pattern) and the network fingerprint makes
  /// the key cover every input the rate computation reads. 64-bit
  /// collisions are astronomically unlikely (same assumption as the cost
  /// model's transfer keys); the differential test cross-checks cached
  /// against uncached rates.
  static uint64_t Key(uint64_t sig_hash, double selectivity,
                      uint64_t net_fingerprint);

  /// Returns the memoized rate for `key`, computing
  /// `QueryOutputRate(ast, net)` on a miss.
  double OutputRate(uint64_t key, const Query& ast, const Network& net);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  ///< entries dropped by shard resets
    uint64_t size = 0;       ///< currently cached entries
  };
  /// Aggregated over all shards.
  Stats GetStats() const;

  /// Drops all entries and resets statistics (tests).
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, double> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % kShards]; }

  std::array<Shard, kShards> shards_;
};

}  // namespace muse

#endif  // MUSE_CORE_RATE_CACHE_H_
