#include "src/core/muse_graph.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

std::string PlanVertex::ToString(const TypeRegistry* reg) const {
  std::string out = "(q" + std::to_string(query) + ":";
  bool first = true;
  for (EventTypeId t : proj) {
    if (!first) out += "+";
    first = false;
    if (reg != nullptr && static_cast<int>(t) < reg->size()) {
      out += reg->Name(t);
    } else {
      out += "E" + std::to_string(t);
    }
  }
  out += "@n" + std::to_string(node);
  if (part_type != kNoPartition) {
    out += "|part=E" + std::to_string(part_type);
  }
  if (reused) out += "|reused";
  return out + ")";
}

double VertexCoverCount(const Network& net, const PlanVertex& v) {
  double count = 1.0;
  for (EventTypeId t : v.proj) {
    if (static_cast<int>(t) == v.part_type) continue;  // pinned to v.node
    count *= static_cast<double>(net.NumProducers(t));
  }
  return count;
}

int MuseGraph::AddVertex(const PlanVertex& v) {
  auto [it, inserted] =
      index_.emplace(v.Key(), static_cast<int>(vertices_.size()));
  if (inserted) vertices_.push_back(v);
  return it->second;
}

int MuseGraph::FindVertex(const PlanVertex& v) const {
  auto it = index_.find(v.Key());
  return it == index_.end() ? -1 : it->second;
}

void MuseGraph::AddEdge(int from, int to) {
  MUSE_CHECK(from >= 0 && from < num_vertices(), "edge endpoint range");
  MUSE_CHECK(to >= 0 && to < num_vertices(), "edge endpoint range");
  if (from == to) return;
  if (edge_set_.emplace(from, to).second) {
    edges_.emplace_back(from, to);
  }
}

std::vector<int> MuseGraph::Merge(const MuseGraph& other) {
  std::vector<int> remap(other.vertices_.size());
  for (size_t i = 0; i < other.vertices_.size(); ++i) {
    remap[i] = AddVertex(other.vertices_[i]);
  }
  for (const auto& [from, to] : other.edges_) {
    AddEdge(remap[from], remap[to]);
  }
  return remap;
}

std::vector<int> MuseGraph::Predecessors(int v) const {
  std::vector<int> out;
  for (const auto& [from, to] : edges_) {
    if (to == v) out.push_back(from);
  }
  return out;
}

std::vector<int> MuseGraph::Successors(int v) const {
  std::vector<int> out;
  for (const auto& [from, to] : edges_) {
    if (from == v) out.push_back(to);
  }
  return out;
}

bool MuseGraph::HasPath(int from, int to) const {
  if (from == to) return true;
  std::vector<bool> visited(vertices_.size(), false);
  std::vector<int> stack = {from};
  visited[from] = true;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    for (const auto& [a, b] : edges_) {
      if (a != cur || visited[b]) continue;
      if (b == to) return true;
      visited[b] = true;
      stack.push_back(b);
    }
  }
  return false;
}

std::vector<int> MuseGraph::SourceVertices() const {
  std::vector<bool> has_in(vertices_.size(), false);
  for (const auto& [from, to] : edges_) has_in[to] = true;
  std::vector<int> out;
  for (int i = 0; i < num_vertices(); ++i) {
    if (!has_in[i]) out.push_back(i);
  }
  return out;
}

std::string MuseGraph::ToString(const TypeRegistry* reg) const {
  std::string out = "MuSE graph: " + std::to_string(vertices_.size()) +
                    " vertices, " + std::to_string(edges_.size()) + " edges\n";
  for (const auto& [from, to] : edges_) {
    out += "  " + vertices_[from].ToString(reg) + " -> " +
           vertices_[to].ToString(reg) + "\n";
  }
  for (int s : sinks_) {
    out += "  sink: " + vertices_[s].ToString(reg) + "\n";
  }
  return out;
}

std::string MuseGraph::CanonicalString() const {
  std::vector<std::string> lines;
  for (const auto& [from, to] : edges_) {
    lines.push_back(vertices_[from].ToString() + "->" +
                    vertices_[to].ToString());
  }
  // Isolated vertices still matter for identity.
  std::vector<bool> touched(vertices_.size(), false);
  for (const auto& [from, to] : edges_) {
    touched[from] = true;
    touched[to] = true;
  }
  for (int i = 0; i < num_vertices(); ++i) {
    if (!touched[i]) lines.push_back(vertices_[i].ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace muse
