#include "src/core/plan_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/common/check.h"

namespace muse {
namespace {

std::string ProjectionLabel(const ProjectionCatalog& cat, TypeSet proj,
                            const TypeRegistry* reg) {
  return cat.Ast(proj).ToString(reg);
}

std::string FmtWeight(double w) {
  char buf[32];
  if (w != 0 && (w < 0.01 || w >= 100000)) {
    std::snprintf(buf, sizeof(buf), "%.2e", w);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", w);
  }
  return buf;
}

}  // namespace

std::string ToDot(const MuseGraph& g,
                  const std::vector<const ProjectionCatalog*>& catalogs,
                  const TypeRegistry* reg) {
  std::string out = "digraph muse {\n  rankdir=BT;\n  node [fontsize=10];\n";
  // Group vertices per hosting node.
  std::map<NodeId, std::vector<int>> per_node;
  for (int i = 0; i < g.num_vertices(); ++i) {
    per_node[g.vertex(i).node].push_back(i);
  }
  std::set<int> sink_set(g.sinks().begin(), g.sinks().end());
  for (const auto& [node, vertices] : per_node) {
    out += "  subgraph cluster_n" + std::to_string(node) + " {\n";
    out += "    label=\"node " + std::to_string(node) + "\";\n";
    for (int vi : vertices) {
      const PlanVertex& v = g.vertex(vi);
      const ProjectionCatalog& cat = *catalogs[v.query];
      std::string label = ProjectionLabel(cat, v.proj, reg);
      if (v.part_type != kNoPartition) {
        label += "\\npart=" +
                 (reg != nullptr && v.part_type < reg->size()
                      ? reg->Name(static_cast<EventTypeId>(v.part_type))
                      : "E" + std::to_string(v.part_type));
      }
      std::string attrs = v.IsPrimitive() ? "shape=ellipse" : "shape=box";
      if (sink_set.count(vi) != 0) attrs += ", penwidth=2, color=blue";
      if (v.reused) attrs += ", style=dotted";
      out += "    v" + std::to_string(vi) + " [label=\"" + label + "\", " +
             attrs + "];\n";
    }
    out += "  }\n";
  }
  for (const auto& [from, to] : g.edges()) {
    const PlanVertex& src = g.vertex(from);
    const PlanVertex& dst = g.vertex(to);
    out += "  v" + std::to_string(from) + " -> v" + std::to_string(to);
    if (src.node == dst.node) {
      out += " [style=dashed]";  // local edge, weight 0 (§4.4)
    } else {
      out += " [label=\"" +
             FmtWeight(StreamWeight(*catalogs[src.query], src)) + "\"]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::vector<StreamCharge> ExplainCharges(
    const MuseGraph& g,
    const std::vector<const ProjectionCatalog*>& catalogs,
    const TypeRegistry* reg) {
  // Same grouping as GraphCost: one charge per distinct stream/destination.
  std::map<uint64_t, StreamCharge> charges;
  for (const auto& [from, to] : g.edges()) {
    const PlanVertex& src = g.vertex(from);
    const PlanVertex& dst = g.vertex(to);
    if (src.node == dst.node) continue;
    const ProjectionCatalog& cat = *catalogs[src.query];
    uint64_t key = TransferKeyHash(cat.SignatureHash(src.proj), src.part_type,
                                   src.node, dst.node);
    if (charges.count(key) != 0) continue;
    StreamCharge c;
    c.projection = ProjectionLabel(cat, src.proj, reg);
    c.part_type = src.part_type;
    c.src = src.node;
    c.dst = dst.node;
    c.weight = StreamWeight(cat, src);
    charges.emplace(key, std::move(c));
  }
  std::vector<StreamCharge> out;
  out.reserve(charges.size());
  for (auto& [key, c] : charges) out.push_back(std::move(c));
  std::sort(out.begin(), out.end(),
            [](const StreamCharge& a, const StreamCharge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return out;
}

std::string ExplainPlan(const MuseGraph& g,
                        const std::vector<const ProjectionCatalog*>& catalogs,
                        const TypeRegistry* reg) {
  std::vector<StreamCharge> charges = ExplainCharges(g, catalogs, reg);
  double total = 0;
  for (const StreamCharge& c : charges) total += c.weight;
  std::string out = "network streams (heaviest first), total " +
                    FmtWeight(total) + " events/s:\n";
  for (const StreamCharge& c : charges) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %10s  n%-3u -> n%-3u  %s%s\n",
                  FmtWeight(c.weight).c_str(), c.src, c.dst,
                  c.projection.c_str(),
                  c.part_type == kNoPartition
                      ? ""
                      : (" [part E" + std::to_string(c.part_type) + "]")
                            .c_str());
    out += line;
  }
  if (charges.empty()) out += "  (no network traffic: fully local plan)\n";
  return out;
}

}  // namespace muse
