#include "src/core/placement_oop.h"

#include <limits>

#include "src/common/check.h"
#include "src/core/correctness.h"

namespace muse {
namespace {

class OopPlanner {
 public:
  OopPlanner(const ProjectionCatalog& catalog, SharingContext* ctx,
             int query_index, int forced_root_node)
      : catalog_(catalog),
        net_(catalog.network()),
        ctx_(ctx),
        query_(query_index),
        forced_root_node_(forced_root_node) {}

  OopPlan Run() {
    const Query& q = catalog_.query();
    const int n = net_.num_nodes();

    if (q.op(q.root()).kind == OpKind::kPrimitive) {
      // Single-primitive query: events stay at their sources.
      OopPlan plan;
      EventTypeId t = q.op(q.root()).type;
      std::vector<int> sinks;
      for (NodeId producer : net_.Producers(t)) {
        sinks.push_back(plan.graph.AddVertex(PlanVertex{
            query_, TypeSet::Of(t), producer, static_cast<int>(t), false}));
      }
      plan.graph.SetSinks(std::move(sinks));
      plan.cost = 0;
      return plan;
    }

    // Bottom-up DP: cost_[op][node] = cheapest cost of evaluating the
    // subtree at `op` with its root operator placed at `node`.
    cost_.assign(q.num_ops(), std::vector<double>(n, 0));
    choice_.assign(q.num_ops(), std::vector<std::vector<NodeId>>(n));
    Solve(q.root());

    NodeId best_node = 0;
    double best = std::numeric_limits<double>::infinity();
    if (forced_root_node_ >= 0) {
      best_node = static_cast<NodeId>(forced_root_node_);
      best = cost_[q.root()][best_node];
    } else {
      for (NodeId node = 0; node < static_cast<NodeId>(n); ++node) {
        if (cost_[q.root()][node] < best) {
          best = cost_[q.root()][node];
          best_node = node;
        }
      }
    }

    OopPlan plan;
    plan.op_nodes.assign(q.num_ops(), 0);
    int root_vertex = Reconstruct(q.root(), best_node, &plan);
    plan.graph.SetSinks({root_vertex});
    // Vertices are tagged with this query's workload index; the catalogs
    // vector must be addressable at that index.
    std::vector<const ProjectionCatalog*> cats(query_ + 1, &catalog_);
    plan.cost = GraphCost(plan.graph, cats, ctx_);
    // Postcondition: without stream sharing the reconstructed plan must be
    // correct on its own (with a context, borrowed streams live in other
    // queries' graphs; multi_query.cc checks the combined graph).
    MUSE_DCHECK(ctx_ != nullptr || IsCorrectPlan(plan.graph, cats),
                "oOP emitted an incorrect plan");
    return plan;
  }

 private:
  /// Cost of delivering the subtree at `child` to a parent at `node`.
  /// For primitive children the producers' streams flow in directly; for
  /// composite children the child operator is placed at its own best node.
  double ChildDeliveryCost(int child, NodeId node, NodeId* chosen) {
    const Query& q = catalog_.query();
    const QueryOp& op = q.op(child);
    if (op.kind == OpKind::kPrimitive) {
      double sum = 0;
      for (NodeId producer : net_.Producers(op.type)) {
        if (producer == node) continue;
        sum += TransferCost(TypeSet::Of(op.type), static_cast<int>(op.type),
                            producer, node, net_.Rate(op.type));
      }
      *chosen = node;  // unused for primitives
      return sum;
    }
    TypeSet child_types = q.SubtreeTypes(child);
    const double match_rate =
        catalog_.Rate(child_types) * catalog_.Bindings(child_types);
    double best = std::numeric_limits<double>::infinity();
    for (NodeId m = 0; m < static_cast<NodeId>(net_.num_nodes()); ++m) {
      double transfer =
          m == node ? 0
                    : TransferCost(child_types, kNoPartition, m, node,
                                   match_rate);
      double total = cost_[child][m] + transfer;
      if (total < best) {
        best = total;
        *chosen = m;
      }
    }
    return best;
  }

  /// One stream's cost, honoring cross-query sharing.
  double TransferCost(TypeSet proj, int part, NodeId src, NodeId dst,
                      double rate) const {
    if (ctx_ != nullptr &&
        ctx_->paid_transfers.count(TransferKeyHash(
            catalog_.SignatureHash(proj), part, src, dst)) != 0) {
      return 0;
    }
    return rate;
  }

  void Solve(int op_idx) {
    const Query& q = catalog_.query();
    const QueryOp& op = q.op(op_idx);
    if (op.kind == OpKind::kPrimitive) return;
    for (int child : op.children) Solve(child);
    for (NodeId node = 0; node < static_cast<NodeId>(net_.num_nodes());
         ++node) {
      double total = 0;
      choice_[op_idx][node].resize(op.children.size());
      for (size_t ci = 0; ci < op.children.size(); ++ci) {
        NodeId chosen = node;
        total += ChildDeliveryCost(op.children[ci], node, &chosen);
        choice_[op_idx][node][ci] = chosen;
      }
      cost_[op_idx][node] = total;
    }
  }

  /// Materializes the chosen placement as MuSE-graph vertices/edges;
  /// returns the vertex index of the subtree's root placement.
  int Reconstruct(int op_idx, NodeId node, OopPlan* plan) {
    const Query& q = catalog_.query();
    const QueryOp& op = q.op(op_idx);
    MUSE_CHECK(op.kind != OpKind::kPrimitive, "reconstruct composite only");
    plan->op_nodes[op_idx] = node;
    int vertex = plan->graph.AddVertex(PlanVertex{
        query_, q.SubtreeTypes(op_idx), node, kNoPartition, false});
    for (size_t ci = 0; ci < op.children.size(); ++ci) {
      int child = op.children[ci];
      if (q.op(child).kind == OpKind::kPrimitive) {
        EventTypeId t = q.op(child).type;
        for (NodeId producer : net_.Producers(t)) {
          int pv = plan->graph.AddVertex(PlanVertex{
              query_, TypeSet::Of(t), producer, static_cast<int>(t), false});
          plan->graph.AddEdge(pv, vertex);
        }
      } else {
        int cv = Reconstruct(child, choice_[op_idx][node][ci], plan);
        plan->graph.AddEdge(cv, vertex);
      }
    }
    return vertex;
  }

  const ProjectionCatalog& catalog_;
  const Network& net_;
  SharingContext* ctx_;
  int query_;
  int forced_root_node_;

  std::vector<std::vector<double>> cost_;
  /// choice_[op][node][child_pos] = node chosen for that composite child.
  std::vector<std::vector<std::vector<NodeId>>> choice_;
};

}  // namespace

OopPlan PlanOperatorPlacement(const ProjectionCatalog& catalog,
                              SharingContext* ctx, int query_index,
                              int forced_root_node) {
  MUSE_CHECK(!catalog.query().ContainsOr(), "split OR queries first");
  return OopPlanner(catalog, ctx, query_index, forced_root_node).Run();
}

}  // namespace muse
