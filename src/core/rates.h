#ifndef MUSE_CORE_RATES_H_
#define MUSE_CORE_RATES_H_

#include "src/cep/query.h"
#include "src/net/network.h"

namespace muse {

/// Output rate r̂ of the operator subtree rooted at `op_idx` (§4.4),
/// computed recursively from the per-node per-type rates r of `net`:
///  * primitive o:    r̂(o) = r(o.sem)
///  * SEQ(o1..ok):    r̂ = Π r̂(oi)
///  * AND(o1..ok):    r̂ = k · Π r̂(oi)
///  * NSEQ(o1,o2,o3): r̂ = r̂(o1) · r̂(o3)   (the negated child is ignored)
///
/// This is a worst-case bound per event type *binding*: the total rate of a
/// projection across the network multiplies by the number of its bindings.
double OperatorOutputRate(const Query& q, int op_idx, const Network& net);

/// Output rate of a query (or projection): r̂(q) = σ(q) · r̂(root(q))
/// (§4.4), where σ(q) is the product of the applicable predicate
/// selectivities.
double QueryOutputRate(const Query& q, const Network& net);

}  // namespace muse

#endif  // MUSE_CORE_RATES_H_
