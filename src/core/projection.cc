#include "src/core/projection.h"

#include <algorithm>
#include <optional>

#include "src/common/check.h"
#include "src/core/bindings.h"
#include "src/core/rate_cache.h"
#include "src/core/rates.h"

namespace muse {
namespace {

/// Rebuilds the subtree at `idx` restricted to `types`; nullopt if nothing
/// of the subtree survives.
std::optional<Query> ProjectSubtree(const Query& q, int idx, TypeSet types) {
  const QueryOp& op = q.op(idx);
  if (op.kind == OpKind::kPrimitive) {
    if (!types.Contains(op.type)) return std::nullopt;
    return Query::Primitive(op.type);
  }
  if (op.kind == OpKind::kNseq) {
    std::optional<Query> first = ProjectSubtree(q, op.children[0], types);
    std::optional<Query> mid = ProjectSubtree(q, op.children[1], types);
    std::optional<Query> last = ProjectSubtree(q, op.children[2], types);
    if (mid.has_value()) {
      if (first.has_value() && last.has_value()) {
        // Negation-closed projection: the NSEQ survives intact.
        return Query::Nseq(std::move(*first), std::move(*mid),
                           std::move(*last));
      }
      // The projection is (part of) the negated pattern itself.
      MUSE_CHECK(!first.has_value() && !last.has_value(),
                 "projection set violates negation closure");
      return mid;
    }
    // Middle removed: matches of the NSEQ project to concatenations of the
    // first and last children's projected matches, i.e. a SEQ.
    if (first.has_value() && last.has_value()) {
      std::vector<Query> children;
      children.push_back(std::move(*first));
      children.push_back(std::move(*last));
      return Query::Seq(std::move(children));
    }
    if (first.has_value()) return first;
    if (last.has_value()) return last;
    return std::nullopt;
  }
  // SEQ / AND / OR: project children, drop the ones that vanish; a single
  // survivor is spliced into the parent (paper's removal algorithm, §4.2).
  std::vector<Query> kept;
  for (int child : op.children) {
    std::optional<Query> sub = ProjectSubtree(q, child, types);
    if (sub.has_value()) kept.push_back(std::move(*sub));
  }
  if (kept.empty()) return std::nullopt;
  if (kept.size() == 1) return std::move(kept[0]);
  switch (op.kind) {
    case OpKind::kSeq:
      return Query::Seq(std::move(kept));
    case OpKind::kAnd:
      return Query::And(std::move(kept));
    case OpKind::kOr:
      return Query::Or(std::move(kept));
    default:
      MUSE_CHECK(false, "unreachable");
  }
  return std::nullopt;
}

}  // namespace

bool IsValidProjectionSet(const Query& q, TypeSet types) {
  if (types.empty()) return false;
  if (!types.IsSubsetOf(q.PrimitiveTypes())) return false;
  for (int i = 0; i < q.num_ops(); ++i) {
    const QueryOp& op = q.op(i);
    if (op.kind != OpKind::kNseq) continue;
    TypeSet before = q.SubtreeTypes(op.children[0]);
    TypeSet mid = q.SubtreeTypes(op.children[1]);
    TypeSet after = q.SubtreeTypes(op.children[2]);
    if (!types.Intersects(mid)) continue;
    // A set lying fully inside the negated pattern is a valid sub-pattern
    // projection: it can never serve a positive context (EnumerateCombinations'
    // grouping rule bars it from negation-closed targets) but it is required
    // to assemble the anti stream of a middle spanning several types.
    if (types.IsSubsetOf(mid)) continue;
    // Mixing part of a negated pattern with context types breaks negation
    // closure: such a set has no well-defined projected pattern.
    if (!types.ContainsAll(mid)) return false;
    const bool has_context = types.ContainsAll(before.Union(after));
    const bool is_anti = !types.Intersects(before) && !types.Intersects(after);
    if (!has_context && !is_anti) return false;
  }
  return true;
}

Query Project(const Query& q, TypeSet types) {
  MUSE_CHECK(IsValidProjectionSet(q, types), "invalid projection set");
  std::optional<Query> projected = ProjectSubtree(q, q.root(), types);
  MUSE_CHECK(projected.has_value(), "projection unexpectedly empty");
  Query out = std::move(*projected);
  out.set_window(q.window());
  for (const Predicate& p : q.predicates()) {
    if (p.ApplicableTo(types)) out.AddPredicate(p);
  }
  return out;
}

std::vector<TypeSet> AllProjectionSets(const Query& q) {
  std::vector<TypeSet> out;
  ForEachNonEmptySubset(q.PrimitiveTypes(), [&](TypeSet s) {
    if (IsValidProjectionSet(q, s)) out.push_back(s);
  });
  std::sort(out.begin(), out.end(), [](TypeSet a, TypeSet b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.bits() < b.bits();
  });
  return out;
}

ProjectionCatalog::ProjectionCatalog(const Query& q, const Network& net)
    : query_(q), net_(&net) {
  all_ = AllProjectionSets(q);
  const uint64_t net_fp = net.Fingerprint();
  for (TypeSet s : all_) {
    Entry e;
    e.ast = Project(q, s);
    e.bindings = CountBindings(net, s);
    e.signature = e.ast.Signature();
    // splitmix64 finalizer over std::hash for well-mixed bits.
    uint64_t h = std::hash<std::string>{}(e.signature) + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    e.sig_hash = h ^ (h >> 31);
    // r̂ memoized across catalogs (muse-par): identical projections recur
    // across workload queries and repeated bench sweeps.
    e.rate = RateCache::Global().OutputRate(
        RateCache::Key(e.sig_hash, e.ast.Selectivity(), net_fp), e.ast, net);
    entries_.emplace(s.bits(), std::move(e));
  }
}

const ProjectionCatalog::Entry& ProjectionCatalog::At(TypeSet s) const {
  auto it = entries_.find(s.bits());
  MUSE_CHECK(it != entries_.end(), "projection set not in catalog");
  return it->second;
}

}  // namespace muse
