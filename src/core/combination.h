#ifndef MUSE_CORE_COMBINATION_H_
#define MUSE_CORE_COMBINATION_H_

#include <vector>

#include "src/cep/query.h"
#include "src/common/typeset.h"

namespace muse {

/// A combination (Def. 5) for one target projection: the set of predecessor
/// projections β(target) whose matches are composed into matches of the
/// target. Parts are identified by their projection type sets and kept
/// sorted for canonical identity.
struct Combination {
  TypeSet target;
  std::vector<TypeSet> parts;

  std::string ToString() const;
  friend bool operator==(const Combination& a, const Combination& b) = default;
};

/// Structural correctness of a combination (Def. 6 / Alg. 2): the parts are
/// non-empty proper subsets of the target whose union equals the target.
/// Together with the evaluator's merge-consistency on overlapping types,
/// this guarantees every target match arises as an interleaving of part
/// matches (§5.1): the projection of any target match onto a part's types
/// is a match of that part (§4.2).
bool IsCorrectCombination(const Combination& c);

/// Redundancy (Def. 15): some part's primitive operators are fully covered
/// by the union of the other parts. Optimal MuSE graphs never use redundant
/// combinations (Theorem 5).
bool IsRedundantCombination(const Combination& c);

/// Options for combination enumeration.
struct CombinationEnumOptions {
  /// Upper bound on enumerated combinations per target (a practical guard;
  /// the space is doubly exponential, §6). 0 = unlimited.
  size_t max_combinations = 20'000;

  /// Upper bound on the number of parts per combination. Non-redundancy
  /// already bounds it by |target|; restricting it further loses little:
  /// the bottom-up construction composes larger decompositions from nested
  /// smaller ones. The planner always adds the primitive combination
  /// separately. 0 = unlimited.
  size_t max_parts = 3;
};

/// Enumerates the correct, non-redundant combinations of `target` whose
/// parts are drawn from `candidates` (Alg. 2 lines 5–9). `candidates` must
/// be proper subsets of `target` (others are skipped). For queries with
/// negation, `negated_groups` lists each NSEQ middle type set of the query:
/// a part must either avoid the group or be exactly the group (the anti
/// part; see DESIGN.md).
///
/// Non-redundancy bounds the number of parts by |target| (each part must
/// contribute a type no other part contributes... at least one part-unique
/// type), so enumeration proceeds by repeatedly covering the lowest
/// uncovered type.
std::vector<Combination> EnumerateCombinations(
    TypeSet target, const std::vector<TypeSet>& candidates,
    const std::vector<TypeSet>& negated_groups = {},
    const CombinationEnumOptions& options = {});

}  // namespace muse

#endif  // MUSE_CORE_COMBINATION_H_
