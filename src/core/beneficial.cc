#include "src/core/beneficial.h"

namespace muse {

bool IsBeneficialProjection(const ProjectionCatalog& catalog, TypeSet p) {
  const Network& net = catalog.network();
  double input_rate = 0;
  for (EventTypeId t : p) input_rate += net.Rate(t);
  return catalog.Rate(p) <= input_rate;
}

bool PassesStarFilter(const ProjectionCatalog& catalog, TypeSet p) {
  if (p.size() <= 1) return true;
  const Network& net = catalog.network();
  const double total_output = catalog.Rate(p) * catalog.Bindings(p);
  for (EventTypeId t : p) {
    if (net.Rate(t) >= total_output) return true;
  }
  return false;
}

bool StarAllowsPredecessor(const ProjectionCatalog& catalog, TypeSet target,
                           TypeSet predecessor) {
  return catalog.Rate(predecessor) >=
         catalog.Rate(target) * catalog.Bindings(target);
}

int FindPartitioningInput(const ProjectionCatalog& catalog,
                          const Combination& c) {
  for (size_t i = 0; i < c.parts.size(); ++i) {
    double others = 0;
    for (size_t j = 0; j < c.parts.size(); ++j) {
      if (j == i) continue;
      others += catalog.Rate(c.parts[j]) * catalog.Bindings(c.parts[j]);
    }
    if (catalog.Rate(c.parts[i]) >= others) return static_cast<int>(i);
  }
  return -1;
}

bool SatisfiesBeneficialVertexInequality(
    const ProjectionCatalog& catalog, TypeSet target, double cover,
    const std::vector<std::pair<TypeSet, double>>& predecessor_covers) {
  double rhs = 0;
  for (const auto& [part, pre_cover] : predecessor_covers) {
    rhs += catalog.Rate(part) * pre_cover;
  }
  return cover * catalog.Rate(target) <= rhs;
}

}  // namespace muse
