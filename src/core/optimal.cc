#include "src/core/optimal.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <set>

#include "src/common/check.h"
#include "src/core/combination.h"

namespace muse {
namespace {

/// A candidate sub-plan for one projection: the graph generating its
/// matches plus a placement descriptor.
struct Candidate {
  MuseGraph graph;
  double cost = std::numeric_limits<double>::infinity();
  std::vector<int> sinks;
  bool multi_sink = false;
  int part_type = kNoPartition;
};

class ExhaustivePlanner {
 public:
  explicit ExhaustivePlanner(const ProjectionCatalog& catalog)
      : catalog_(catalog), net_(catalog.network()) {}

  PlanResult Run() {
    auto started = std::chrono::steady_clock::now();
    const Query& q = catalog_.query();
    const TypeSet full = q.PrimitiveTypes();
    MUSE_CHECK(full.size() <= 6 && net_.num_nodes() <= 8,
               "ExhaustivePlan is for small instances only");
    for (int i = 0; i < q.num_ops(); ++i) {
      if (q.op(i).kind == OpKind::kNseq) {
        negated_groups_.push_back(q.SubtreeTypes(q.op(i).children[1]));
      }
    }

    // Primitive base candidates.
    for (EventTypeId t : full) {
      Candidate c;
      for (NodeId n : net_.Producers(t)) {
        c.sinks.push_back(c.graph.AddVertex(
            PlanVertex{0, TypeSet::Of(t), n, static_cast<int>(t), false}));
      }
      c.cost = 0;
      c.multi_sink = true;
      c.part_type = static_cast<int>(t);
      options_[TypeSet::Of(t).bits()].push_back(std::move(c));
    }

    // Bottom-up over every valid projection, smallest first.
    for (TypeSet target : catalog_.All()) {
      if (target.size() < 2) continue;
      BuildCandidates(target);
    }

    PlanResult result;
    result.stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (full.size() == 1) {
      const Candidate& c = options_[full.bits()].front();
      result.graph = c.graph;
      result.graph.SetSinks(c.sinks);
      result.cost = 0;
      return result;
    }
    const Candidate* best = nullptr;
    for (const Candidate& c : options_[full.bits()]) {
      if (best == nullptr || c.cost < best->cost) best = &c;
    }
    MUSE_CHECK(best != nullptr, "no plan found");
    result.graph = best->graph;
    result.graph.SetSinks(best->sinks);
    result.cost = best->cost;
    return result;
  }

 private:
  /// Enumerates every placement of `target`: for each correct non-redundant
  /// combination, every cartesian choice of predecessor candidates, and
  /// every placement (single-sink at each node; partitioning multi-sink on
  /// each part). Keeps, per placement descriptor, the cheapest candidate —
  /// sufficient because a candidate's downstream use depends only on its
  /// sink set, which the descriptor determines.
  void BuildCandidates(TypeSet target) {
    std::vector<TypeSet> parts_pool;
    for (TypeSet p : catalog_.All()) {
      if (p.IsProperSubsetOf(target)) parts_pool.push_back(p);
    }
    std::vector<Combination> combos =
        EnumerateCombinations(target, parts_pool, negated_groups_);

    // Best candidate per descriptor: node (single-sink) or ~part (multi).
    std::map<int, Candidate> best;

    for (const Combination& c : combos) {
      // Cartesian product over per-part candidate choices.
      std::vector<const std::vector<Candidate>*> pools;
      bool ok = true;
      for (TypeSet part : c.parts) {
        auto it = options_.find(part.bits());
        if (it == options_.end() || it->second.empty()) {
          ok = false;
          break;
        }
        pools.push_back(&it->second);
      }
      if (!ok) continue;
      std::vector<size_t> pick(c.parts.size(), 0);
      while (true) {
        TryPlacements(target, c, pools, pick, &best);
        // Advance the mixed-radix counter.
        size_t i = 0;
        for (; i < pick.size(); ++i) {
          if (++pick[i] < pools[i]->size()) break;
          pick[i] = 0;
        }
        if (i == pick.size()) break;
      }
    }
    std::vector<Candidate>& out = options_[target.bits()];
    for (auto& [desc, cand] : best) out.push_back(std::move(cand));
  }

  void TryPlacements(TypeSet target, const Combination& c,
                     const std::vector<const std::vector<Candidate>*>& pools,
                     const std::vector<size_t>& pick,
                     std::map<int, Candidate>* best) {
    // Single-sink at every node.
    for (NodeId n = 0; n < static_cast<NodeId>(net_.num_nodes()); ++n) {
      Candidate cand = Assemble(target, c, pools, pick, kNoPartition, {n});
      Keep(best, static_cast<int>(n), std::move(cand));
    }
    // Partitioning multi-sink on every part that is fully partitioned on
    // some type with a sink at each producer.
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      const Candidate& pre = (*pools[ei])[pick[ei]];
      if (!pre.multi_sink) continue;
      EventTypeId po = static_cast<EventTypeId>(pre.part_type);
      std::set<NodeId> sink_nodes;
      for (int s : pre.sinks) sink_nodes.insert(pre.graph.vertex(s).node);
      bool covers = true;
      for (NodeId n : net_.Producers(po)) {
        if (sink_nodes.count(n) == 0) covers = false;
      }
      if (!covers) continue;
      std::vector<NodeId> nodes(sink_nodes.begin(), sink_nodes.end());
      Candidate cand =
          Assemble(target, c, pools, pick, static_cast<int>(po), nodes);
      Keep(best, 1000 + static_cast<int>(po), std::move(cand));
    }
  }

  static void Keep(std::map<int, Candidate>* best, int desc,
                   Candidate&& cand) {
    auto it = best->find(desc);
    if (it == best->end() || cand.cost < it->second.cost) {
      (*best)[desc] = std::move(cand);
    }
  }

  Candidate Assemble(TypeSet target, const Combination& c,
                     const std::vector<const std::vector<Candidate>*>& pools,
                     const std::vector<size_t>& pick, int part_type,
                     const std::vector<NodeId>& nodes) {
    Candidate cand;
    cand.multi_sink = part_type != kNoPartition;
    cand.part_type = part_type;
    std::map<NodeId, int> sink_at_node;
    for (NodeId n : nodes) {
      int idx = cand.graph.AddVertex(
          PlanVertex{0, target, n, part_type, false});
      cand.sinks.push_back(idx);
      sink_at_node[n] = idx;
    }
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      const Candidate& pre = (*pools[ei])[pick[ei]];
      std::vector<int> remap = cand.graph.Merge(pre.graph);
      const bool is_partitioning_input =
          cand.multi_sink && pre.multi_sink && pre.part_type == part_type;
      for (int s : pre.sinks) {
        int src = remap[s];
        if (is_partitioning_input) {
          // Pairwise local edges: partition input stays on its node.
          auto it = sink_at_node.find(cand.graph.vertex(src).node);
          if (it != sink_at_node.end()) cand.graph.AddEdge(src, it->second);
        } else {
          for (int sink : cand.sinks) cand.graph.AddEdge(src, sink);
        }
      }
    }
    cand.cost = GraphCost(cand.graph, catalog_);
    return cand;
  }

  const ProjectionCatalog& catalog_;
  const Network& net_;
  std::vector<TypeSet> negated_groups_;
  /// Projection bits -> candidate sub-plans (one per descriptor kept).
  std::map<uint64_t, std::vector<Candidate>> options_;
};

}  // namespace

PlanResult ExhaustivePlan(const ProjectionCatalog& catalog) {
  MUSE_CHECK(!catalog.query().ContainsOr(), "split OR queries first");
  return ExhaustivePlanner(catalog).Run();
}

}  // namespace muse
