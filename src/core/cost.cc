#include "src/core/cost.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

uint64_t TransferKeyHash(uint64_t sig_hash, int part_type, NodeId src,
                         NodeId dst) {
  // Mix the routing fields into the signature hash (splitmix64 finalizer).
  uint64_t h = sig_hash ^ (static_cast<uint64_t>(static_cast<uint32_t>(
                               part_type + 1))
                           << 40) ^
               (static_cast<uint64_t>(src) << 20) ^ static_cast<uint64_t>(dst);
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

double StreamWeight(const ProjectionCatalog& cat, const PlanVertex& src) {
  // |𝔄(v)| = |𝔈(p)| for full covers; pinning the partition type's tuple to
  // v.node divides by that type's producer count.
  double cover = cat.Bindings(src.proj);
  if (src.part_type != kNoPartition) {
    int producers = cat.network().NumProducers(
        static_cast<EventTypeId>(src.part_type));
    MUSE_CHECK(producers > 0, "partition type without producers");
    cover /= producers;
  }
  return cat.Rate(src.proj) * cover;
}

bool ChargeSet::Contains(uint64_t key) const {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), key,
      [](const std::pair<uint64_t, double>& a, uint64_t k) {
        return a.first < k;
      });
  return it != items_.end() && it->first == key;
}

bool ChargeSet::Add(uint64_t key, double weight) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), key,
      [](const std::pair<uint64_t, double>& a, uint64_t k) {
        return a.first < k;
      });
  if (it != items_.end() && it->first == key) return false;
  items_.insert(it, {key, weight});
  total_ += weight;
  return true;
}

void ChargeSet::MergeFrom(const ChargeSet& other) {
  if (other.items_.empty()) return;
  std::vector<std::pair<uint64_t, double>> merged;
  merged.reserve(items_.size() + other.items_.size());
  size_t i = 0;
  size_t j = 0;
  double total = 0;
  while (i < items_.size() || j < other.items_.size()) {
    bool take_mine = j >= other.items_.size() ||
                     (i < items_.size() &&
                      items_[i].first <= other.items_[j].first);
    if (take_mine) {
      if (j < other.items_.size() &&
          items_[i].first == other.items_[j].first) {
        ++j;  // duplicate stream: charged once
      }
      total += items_[i].second;
      merged.push_back(items_[i++]);
    } else {
      total += other.items_[j].second;
      merged.push_back(other.items_[j++]);
    }
  }
  items_ = std::move(merged);
  total_ = total;
}

double ChargeSet::MarginalCost(
    const ChargeSet& other,
    const std::vector<std::pair<uint64_t, double>>& extra) const {
  double marginal = 0;
  // Two-pointer scan: weights of `other` missing here.
  size_t i = 0;
  for (const auto& [key, weight] : other.items_) {
    while (i < items_.size() && items_[i].first < key) ++i;
    if (i >= items_.size() || items_[i].first != key) marginal += weight;
  }
  // Extras: dedup against both sets and among themselves.
  for (size_t a = 0; a < extra.size(); ++a) {
    const auto& [key, weight] = extra[a];
    if (Contains(key) || other.Contains(key)) continue;
    bool dup = false;
    for (size_t b = 0; b < a; ++b) {
      if (extra[b].first == key) dup = true;
    }
    if (!dup) marginal += weight;
  }
  return marginal;
}

double GraphCost(const MuseGraph& g,
                 const std::vector<const ProjectionCatalog*>& catalogs,
                 const SharingContext* ctx) {
  // One charge per distinct (stream, destination node): grouping by
  // transfer key realizes both the same-plan sharing term 1/|V_{v,n'}| of
  // §4.4 (several placements at one node receive a predecessor's matches
  // once) and cross-query stream dedup (§6.2).
  std::unordered_map<uint64_t, double> charges;
  for (const auto& [from, to] : g.edges()) {
    const PlanVertex& src = g.vertex(from);
    const PlanVertex& dst = g.vertex(to);
    if (src.node == dst.node) continue;  // local edge, weight 0
    MUSE_CHECK(src.query >= 0 &&
                   src.query < static_cast<int>(catalogs.size()),
               "vertex query index out of catalog range");
    const ProjectionCatalog& cat = *catalogs[src.query];
    const uint64_t key = TransferKeyHash(cat.SignatureHash(src.proj),
                                         src.part_type, src.node, dst.node);
    if (ctx != nullptr && ctx->paid_transfers.count(key) != 0) continue;
    charges.emplace(key, StreamWeight(cat, src));
  }
  double total = 0;
  for (const auto& [key, weight] : charges) total += weight;
  return total;
}

double GraphCost(const MuseGraph& g, const ProjectionCatalog& catalog,
                 const SharingContext* ctx) {
  std::vector<const ProjectionCatalog*> catalogs = {&catalog};
  return GraphCost(g, catalogs, ctx);
}

void RecordPlanInContext(const MuseGraph& g,
                         const std::vector<const ProjectionCatalog*>& catalogs,
                         SharingContext* ctx) {
  for (const PlanVertex& v : g.vertices()) {
    const ProjectionCatalog& cat = *catalogs[v.query];
    if (v.reused) continue;  // recorded by the earlier query already
    ctx->placed[cat.Signature(v.proj)].push_back(
        SharingContext::Placement{v.node, v.part_type});
  }
  for (const auto& [from, to] : g.edges()) {
    const PlanVertex& src = g.vertex(from);
    const PlanVertex& dst = g.vertex(to);
    if (src.node == dst.node) continue;
    const ProjectionCatalog& cat = *catalogs[src.query];
    ctx->paid_transfers.insert(TransferKeyHash(
        cat.SignatureHash(src.proj), src.part_type, src.node, dst.node));
  }
}

double CentralizedCost(const Network& net, TypeSet types) {
  return net.GlobalRate(types);
}

}  // namespace muse
