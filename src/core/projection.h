#ifndef MUSE_CORE_PROJECTION_H_
#define MUSE_CORE_PROJECTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cep/query.h"
#include "src/net/network.h"

namespace muse {

/// True if `types` induces a well-defined projection of `q` (§4.2, Def. 9).
/// For every NSEQ(o1, o2, o3) in `q` with primitive type sets b/m/a:
///  * projections not touching m are always fine (the NSEQ degrades to a
///    SEQ over the retained positive children);
///  * projections touching m must retain m entirely and either both b and a
///    entirely (negation-closed, Def. 9 — the absence context is
///    unambiguous) or neither (the projection is exactly the negated
///    pattern, used as the anti input of downstream evaluators).
/// This is slightly stricter than Def. 9 (full subtree retention instead of
/// operator retention), which keeps distributed NSEQ evaluation
/// unambiguous; see DESIGN.md.
bool IsValidProjectionSet(const Query& q, TypeSet types);

/// The projection π(q, types) (Def. 2): the query restricted to the
/// primitive operators with types in `types`, with the applicable subset of
/// predicates and the same window. Implements the paper's leaf-removal
/// algorithm: dropped leaves delete childless operators and splice
/// single-child operators. `types` must be a non-empty subset of
/// q.PrimitiveTypes() satisfying `IsValidProjectionSet`.
Query Project(const Query& q, TypeSet types);

/// All valid projection type sets of `q` — Π(q), §4.2 — including the full
/// set (the query itself) and the singletons, ordered by ascending size.
std::vector<TypeSet> AllProjectionSets(const Query& q);

/// Pre-computed per-projection facts for one query in one network; the
/// planner's working set. Eagerly materializes every valid projection's
/// AST, output rate r̂ (§4.4), binding count |𝔈| (§4.1) and signature.
/// With |O_p| ≤ ~10 primitive operators this is at most ~1k entries.
class ProjectionCatalog {
 public:
  ProjectionCatalog(const Query& q, const Network& net);

  const Query& query() const { return query_; }
  const Network& network() const { return *net_; }

  /// All valid projection sets, ascending by size (singletons first, the
  /// full query last).
  const std::vector<TypeSet>& All() const { return all_; }

  bool Valid(TypeSet s) const { return entries_.count(s.bits()) != 0; }
  const Query& Ast(TypeSet s) const { return At(s).ast; }
  double Rate(TypeSet s) const { return At(s).rate; }
  double Bindings(TypeSet s) const { return At(s).bindings; }
  const std::string& Signature(TypeSet s) const { return At(s).signature; }
  /// 64-bit hash of the signature, used for fast transfer-key dedup in the
  /// cost model (collisions are astronomically unlikely; correctness checks
  /// in tests compare full signatures).
  uint64_t SignatureHash(TypeSet s) const { return At(s).sig_hash; }

 private:
  struct Entry {
    Query ast;
    double rate;
    double bindings;
    std::string signature;
    uint64_t sig_hash;
  };
  const Entry& At(TypeSet s) const;

  Query query_;
  const Network* net_;
  std::vector<TypeSet> all_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace muse

#endif  // MUSE_CORE_PROJECTION_H_
