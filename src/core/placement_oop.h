#ifndef MUSE_CORE_PLACEMENT_OOP_H_
#define MUSE_CORE_PLACEMENT_OOP_H_

#include <vector>

#include "src/core/cost.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"

namespace muse {

/// The *oOP* baseline (§7.1): traditional optimal operator placement.
/// Each operator of the query's syntactic hierarchy is placed at exactly
/// one node (single-sink placements only, no projections beyond the
/// operator hierarchy). Primitive operators remain at their sources; each
/// composite operator's node receives its children's outputs.
///
/// For operator *trees* the placement minimizing transmission cost is
/// computed exactly by bottom-up dynamic programming: the best node for a
/// child subtree is independent of siblings given the parent's node.
///
/// The result is expressed as a MuSE graph (all vertices single-sink, with
/// the hierarchy's subtree projections), so that cost accounting and
/// distributed execution are shared with MuSE plans.
struct OopPlan {
  MuseGraph graph;
  double cost = 0;
  /// Chosen node per composite operator index of the query.
  std::vector<NodeId> op_nodes;
};

/// Plans one query. `ctx` (optional) reuses transfers already paid for by
/// earlier queries, exactly as the MuSE multi-query extension does, so the
/// baseline is not penalized in workload experiments.
///
/// `forced_root_node` (>= 0) pins the query's root operator to that node;
/// internal operators are still placed optimally. Workload planning pins
/// all roots to one common sink — the traditional model gathers every
/// query's results at a single designated sink (§1, §7.2), which also
/// keeps the baseline's cost from degrading when queries would otherwise
/// scatter their sinks.
OopPlan PlanOperatorPlacement(const ProjectionCatalog& catalog,
                              SharingContext* ctx = nullptr,
                              int query_index = 0,
                              int forced_root_node = -1);

}  // namespace muse

#endif  // MUSE_CORE_PLACEMENT_OOP_H_
