#include "src/core/multi_query.h"

#include "src/common/check.h"
#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <numeric>
#include <set>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/core/centralized.h"
#include "src/core/correctness.h"

namespace muse {

WorkloadCatalogs::WorkloadCatalogs(const std::vector<Query>& workload,
                                   const Network& net)
    : workload_(workload), net_(&net) {
  MUSE_CHECK(!workload.empty(), "empty workload");
  catalogs_.reserve(workload_.size());
  for (const Query& q : workload_) {
    std::string why;
    MUSE_CHECK(q.Validate(&why), "invalid workload query");
    MUSE_CHECK(!q.ContainsOr(), "split OR queries before planning");
    catalogs_.push_back(std::make_unique<ProjectionCatalog>(q, net));
  }
}

std::vector<const ProjectionCatalog*> WorkloadCatalogs::Pointers() const {
  std::vector<const ProjectionCatalog*> out;
  out.reserve(catalogs_.size());
  for (const auto& c : catalogs_) out.push_back(c.get());
  return out;
}

namespace {

void FinalizeWorkloadPlan(const WorkloadCatalogs& catalogs,
                          WorkloadPlan* plan) {
  std::vector<const ProjectionCatalog*> cats = catalogs.Pointers();
  // Total cost over the merged graph: identical streams shared across
  // queries are charged once (signature-level grouping in GraphCost).
  plan->total_cost = GraphCost(plan->combined, cats);
  plan->centralized_cost =
      CentralizedWorkloadCost(catalogs.network(), catalogs.workload());
  plan->transmission_ratio =
      plan->centralized_cost > 0 ? plan->total_cost / plan->centralized_cost
                                 : 0;
}

}  // namespace

namespace {

/// Total workload cost if `plans` were deployed together (shared streams
/// charged once).
double CombinedCost(const std::vector<PlanResult>& plans,
                    const std::vector<const ProjectionCatalog*>& cats) {
  MuseGraph combined;
  for (const PlanResult& r : plans) combined.Merge(r.graph);
  return GraphCost(combined, cats);
}

/// Connected components of the workload under shared primitive event
/// types: queries land in the same component iff they are linked by a
/// chain of type-sharing queries. Queries in different components cannot
/// interact through a SharingContext — projection signatures embed their
/// primitive type ids, so neither placement reuse nor transfer-key sharing
/// crosses a component boundary. Returns a dense component id per query
/// (ids ordered by first appearance).
std::vector<int> QueryComponents(const WorkloadCatalogs& catalogs) {
  std::array<int, 64> parent;
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Query& q : catalogs.workload()) {
    TypeSet types = q.PrimitiveTypes();
    const int root = find(static_cast<int>(types.First()));
    for (EventTypeId t : types) parent[find(static_cast<int>(t))] = root;
  }
  std::vector<int> comp(catalogs.size());
  std::unordered_map<int, int> dense;
  for (int i = 0; i < catalogs.size(); ++i) {
    const int root =
        find(static_cast<int>(catalogs.workload()[i].PrimitiveTypes().First()));
    comp[i] = dense.emplace(root, static_cast<int>(dense.size())).first->second;
  }
  return comp;
}

std::string PlacementKey(const std::vector<const ProjectionCatalog*>& cats,
                         const PlanVertex& v) {
  return cats[v.query]->Signature(v.proj) + "|" + std::to_string(v.node) +
         "|" + std::to_string(v.part_type);
}

/// Placements a plan *provides* (non-reused vertices).
std::set<std::string> ProvidedPlacements(
    const MuseGraph& g, const std::vector<const ProjectionCatalog*>& cats) {
  std::set<std::string> out;
  for (const PlanVertex& v : g.vertices()) {
    if (!v.reused) out.insert(PlacementKey(cats, v));
  }
  return out;
}

/// Placements a plan *consumes* from other plans (reused vertices, §6.2).
std::set<std::string> ConsumedPlacements(
    const MuseGraph& g, const std::vector<const ProjectionCatalog*>& cats) {
  std::set<std::string> out;
  for (const PlanVertex& v : g.vertices()) {
    if (v.reused) out.insert(PlacementKey(cats, v));
  }
  return out;
}

}  // namespace

WorkloadPlan PlanWorkloadAmuse(const WorkloadCatalogs& catalogs,
                               const PlannerOptions& options) {
  WorkloadPlan plan;
  std::vector<const ProjectionCatalog*> cats = catalogs.Pointers();

  // Initial sequential-reuse pass (§6.2). With num_threads > 1, queries in
  // *disjoint* type components are planned concurrently, one component per
  // task with its own SharingContext: since no signature or transfer key
  // crosses a component boundary (see QueryComponents), the per-component
  // sequential passes observe exactly the context state the global
  // sequential pass would have shown them — results are bit-identical to
  // num_threads = 1, independent of scheduling.
  const int executors = options.num_threads <= 0
                            ? ThreadPool::HardwareExecutors()
                            : options.num_threads;
  const std::vector<int> comp = QueryComponents(catalogs);
  const int num_components =
      comp.empty() ? 0 : *std::max_element(comp.begin(), comp.end()) + 1;
  std::vector<PlanResult> results(static_cast<size_t>(catalogs.size()));
  if (executors > 1 && num_components > 1) {
    std::vector<std::vector<int>> groups(static_cast<size_t>(num_components));
    for (int i = 0; i < catalogs.size(); ++i) {
      groups[static_cast<size_t>(comp[i])].push_back(i);
    }
    ThreadPool& pool = ThreadPool::For(executors);
    pool.ParallelFor(
        num_components,
        [&](int, int g) {
          SharingContext component_ctx;
          for (int i : groups[static_cast<size_t>(g)]) {
            results[static_cast<size_t>(i)] =
                PlanQuery(catalogs.catalog(i), options, &component_ctx, i);
            RecordPlanInContext(results[static_cast<size_t>(i)].graph, cats,
                                &component_ctx);
          }
        },
        /*chunk=*/1);
  } else {
    SharingContext ctx;
    for (int i = 0; i < catalogs.size(); ++i) {
      results[static_cast<size_t>(i)] =
          PlanQuery(catalogs.catalog(i), options, &ctx, i);
      RecordPlanInContext(results[static_cast<size_t>(i)].graph, cats, &ctx);
    }
  }
  // Fold back in query order: the aggregate's floating-point sums are
  // independent of which path produced the per-query results.
  for (PlanResult& r : results) {
    r.stats.AddTo(&plan.aggregate_stats);
    plan.per_query.push_back(std::move(r));
  }

  // Refinement sweeps (§6.2 reuse, applied symmetrically): the sequential
  // pass lets later queries reuse earlier placements but not vice versa.
  // Replan each query against the placements of all *other* queries and
  // keep the replacement when the combined (stream-deduplicated) workload
  // cost improves.
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    bool changed = false;
    for (int i = 0; i < catalogs.size(); ++i) {
      SharingContext others;
      for (int j = 0; j < catalogs.size(); ++j) {
        if (j != i) RecordPlanInContext(plan.per_query[j].graph, cats,
                                        &others);
      }
      PlanResult replanned =
          PlanQuery(catalogs.catalog(i), options, &others, i);
      plan.aggregate_stats.elapsed_seconds +=
          replanned.stats.elapsed_seconds;

      // A replacement must keep providing every placement that other
      // queries reuse from this plan and nobody else provides; otherwise
      // their reused vertices would dangle (correctness violation).
      std::set<std::string> required;
      std::set<std::string> provided_elsewhere;
      for (int j = 0; j < catalogs.size(); ++j) {
        if (j == i) continue;
        for (const std::string& key :
             ConsumedPlacements(plan.per_query[j].graph, cats)) {
          required.insert(key);
        }
        for (const std::string& key :
             ProvidedPlacements(plan.per_query[j].graph, cats)) {
          provided_elsewhere.insert(key);
        }
      }
      std::set<std::string> now_provided =
          ProvidedPlacements(replanned.graph, cats);
      bool safe = true;
      for (const std::string& key : required) {
        if (provided_elsewhere.count(key) == 0 &&
            now_provided.count(key) == 0) {
          safe = false;
          break;
        }
      }
      if (!safe) continue;

      double before = CombinedCost(plan.per_query, cats);
      PlanResult saved = std::move(plan.per_query[i]);
      plan.per_query[i] = std::move(replanned);
      double after = CombinedCost(plan.per_query, cats);
      if (after < before - 1e-9) {
        changed = true;
      } else {
        plan.per_query[i] = std::move(saved);
      }
    }
    if (!changed) break;
  }

  std::vector<int> all_sinks;
  for (PlanResult& r : plan.per_query) {
    std::vector<int> remap = plan.combined.Merge(r.graph);
    for (int s : r.graph.sinks()) all_sinks.push_back(remap[s]);
  }
  plan.combined.SetSinks(std::move(all_sinks));
  // Postcondition: the merged workload graph — where reused placements
  // meet their providers — must be correct for every query (Def. 7/8).
  MUSE_DCHECK(IsCorrectPlan(plan.combined, cats),
              "combined aMuSE workload plan is incorrect");
  FinalizeWorkloadPlan(catalogs, &plan);
  return plan;
}

WorkloadPlan PlanWorkloadOop(const WorkloadCatalogs& catalogs,
                             obs::MetricsRegistry* metrics) {
  auto started = std::chrono::steady_clock::now();
  WorkloadPlan plan;
  SharingContext ctx;
  std::vector<const ProjectionCatalog*> cats = catalogs.Pointers();
  std::vector<int> all_sinks;
  // The traditional model gathers every query's results at one designated
  // sink: pick the node where collecting the workload's types is cheapest
  // and pin each query's root there (internal operators stay DP-placed).
  const Network& net = catalogs.network();
  TypeSet all_types = WorkloadTypes(catalogs.workload());
  int common_sink = 0;
  double best_gather = std::numeric_limits<double>::infinity();
  for (NodeId n = 0; n < static_cast<NodeId>(net.num_nodes()); ++n) {
    double cost = 0;
    for (EventTypeId t : all_types) {
      cost += net.Rate(t) *
              (net.NumProducers(t) - (net.Produces(n, t) ? 1 : 0));
    }
    if (cost < best_gather) {
      best_gather = cost;
      common_sink = static_cast<int>(n);
    }
  }
  for (int i = 0; i < catalogs.size(); ++i) {
    OopPlan p = PlanOperatorPlacement(catalogs.catalog(i), &ctx, i,
                                      common_sink);
    // Record paid transfers so later queries share streams.
    RecordPlanInContext(p.graph, cats, &ctx);
    std::vector<int> remap = plan.combined.Merge(p.graph);
    for (int s : p.graph.sinks()) all_sinks.push_back(remap[s]);
    PlanResult r;
    r.graph = std::move(p.graph);
    r.cost = p.cost;
    plan.per_query.push_back(std::move(r));
  }
  plan.combined.SetSinks(std::move(all_sinks));
  MUSE_DCHECK(IsCorrectPlan(plan.combined, cats),
              "combined oOP workload plan is incorrect");
  FinalizeWorkloadPlan(catalogs, &plan);
  plan.aggregate_stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (metrics != nullptr) {
    const obs::LabelSet labels{{"algorithm", "oop"}};
    metrics->GetCounter("planner_queries_planned_total", labels)
        ->Add(static_cast<uint64_t>(catalogs.size()));
    metrics->GetGauge("planner_elapsed_seconds", labels)
        ->Add(plan.aggregate_stats.elapsed_seconds);
  }
  return plan;
}

}  // namespace muse
