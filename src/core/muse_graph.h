#ifndef MUSE_CORE_MUSE_GRAPH_H_
#define MUSE_CORE_MUSE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/cep/type_registry.h"
#include "src/common/typeset.h"
#include "src/cep/event.h"
#include "src/net/network.h"

namespace muse {

/// Partition marker for vertex covers: `kNoPartition` means the vertex
/// covers *all* event type bindings of its projection (a single-sink
/// placement).
inline constexpr int kNoPartition = -1;

/// A vertex (p, n) of a MuSE graph (Def. 3): projection `proj` of query
/// `query` hosted at node `node`.
///
/// The cover 𝔄(v) (Def. 4) is described by `part_type`: the covers arising
/// from the placements of §6.1.3 are either the full binding set 𝔈(p)
/// (single-sink, `part_type == kNoPartition`) or the bindings whose tuple
/// for the *partitioning input type* `part_type` lies at `node`
/// (partitioning multi-sink placements / primitive operators). The cover
/// size is then a simple product (see `VertexCoverCount`).
struct PlanVertex {
  int query = 0;        ///< Index of the owning query in the workload.
  TypeSet proj;         ///< Projection identity (primitive type set).
  NodeId node = 0;      ///< Hosting node.
  int part_type = kNoPartition;
  /// Multi-query sharing (§6.2): this placement was created — and its
  /// inputs paid for — by an earlier query's plan; it contributes no cost
  /// and carries no in-graph predecessors here.
  bool reused = false;

  bool IsPrimitive() const { return proj.size() == 1; }

  /// Identity used for deduplication when graphs are merged.
  std::tuple<int, uint64_t, NodeId, int, bool> Key() const {
    return {query, proj.bits(), node, part_type, reused};
  }

  std::string ToString(const TypeRegistry* reg = nullptr) const;

  friend bool operator==(const PlanVertex& a, const PlanVertex& b) {
    return a.Key() == b.Key();
  }
};

/// |𝔄(v)|: the number of event type bindings covered by `v` (Def. 4).
double VertexCoverCount(const Network& net, const PlanVertex& v);

/// A MuSE graph G = (V, E, c) (Def. 3). Vertices and edges are
/// deduplicated on insertion; edge weights are derived on demand by the
/// cost model (cost.h) rather than stored, so merged graphs stay
/// consistent. `sinks` tracks the vertices hosting the most recently placed
/// projection during bottom-up construction (and the query's root
/// placements in a finished plan).
class MuseGraph {
 public:
  MuseGraph() = default;

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  const PlanVertex& vertex(int idx) const { return vertices_[idx]; }
  const std::vector<PlanVertex>& vertices() const { return vertices_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }
  const std::vector<int>& sinks() const { return sinks_; }

  /// Inserts (or finds) a vertex; returns its index.
  int AddVertex(const PlanVertex& v);
  /// Returns the index of `v` or -1.
  int FindVertex(const PlanVertex& v) const;
  /// Inserts a (from, to) edge; ignores duplicates and self-loops.
  void AddEdge(int from, int to);

  void SetSinks(std::vector<int> sinks) { sinks_ = std::move(sinks); }

  /// Unions `other` into this graph (dedup); returns the index mapping from
  /// `other`'s vertex ids to this graph's.
  std::vector<int> Merge(const MuseGraph& other);

  std::vector<int> Predecessors(int v) const;
  std::vector<int> Successors(int v) const;

  /// True if a directed path from `from` to `to` exists.
  bool HasPath(int from, int to) const;

  /// Vertices with no incoming edge (primitive placements, Def. 3).
  std::vector<int> SourceVertices() const;

  std::string ToString(const TypeRegistry* reg = nullptr) const;

  /// Canonical dump of vertex/edge sets, independent of insertion order;
  /// two graphs are structurally identical iff their canonical strings are
  /// equal (used for the equivalence check of §5.5).
  std::string CanonicalString() const;

 private:
  std::vector<PlanVertex> vertices_;
  std::vector<std::pair<int, int>> edges_;
  std::map<std::tuple<int, uint64_t, NodeId, int, bool>, int> index_;
  std::set<std::pair<int, int>> edge_set_;
  std::vector<int> sinks_;
};

}  // namespace muse

#endif  // MUSE_CORE_MUSE_GRAPH_H_
