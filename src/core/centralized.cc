#include "src/core/centralized.h"

namespace muse {

TypeSet WorkloadTypes(const std::vector<Query>& workload) {
  TypeSet types;
  for (const Query& q : workload) {
    types = types.Union(q.PrimitiveTypes());
  }
  return types;
}

double CentralizedWorkloadCost(const Network& net,
                               const std::vector<Query>& workload) {
  return net.GlobalRate(WorkloadTypes(workload));
}

MuseGraph BuildCentralizedPlan(
    const std::vector<const ProjectionCatalog*>& catalogs, NodeId sink) {
  MuseGraph g;
  std::vector<int> sinks;
  for (size_t qi = 0; qi < catalogs.size(); ++qi) {
    const ProjectionCatalog& cat = *catalogs[qi];
    const Network& net = cat.network();
    TypeSet full = cat.query().PrimitiveTypes();
    int root = g.AddVertex(PlanVertex{static_cast<int>(qi), full, sink,
                                      kNoPartition, false});
    sinks.push_back(root);
    if (full.size() == 1) {
      // Single-primitive query: the "root" is the primitive stream itself,
      // still gathered at the sink to mirror centralized evaluation.
    }
    for (EventTypeId t : full) {
      for (NodeId producer : net.Producers(t)) {
        int pv = g.AddVertex(PlanVertex{static_cast<int>(qi), TypeSet::Of(t),
                                        producer, static_cast<int>(t),
                                        false});
        if (pv != root) g.AddEdge(pv, root);
      }
    }
  }
  g.SetSinks(std::move(sinks));
  return g;
}

}  // namespace muse
