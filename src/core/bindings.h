#ifndef MUSE_CORE_BINDINGS_H_
#define MUSE_CORE_BINDINGS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/typeset.h"
#include "src/cep/event.h"
#include "src/net/network.h"

namespace muse {

/// An event type binding (Def. 1): one (event type, node) tuple per
/// primitive operator of a query/projection, identifying a combination of
/// origins that can contribute a single match. Tuples are kept sorted by
/// type id. Since queries do not repeat primitive types (§6), this is a set
/// rather than a bag.
struct Binding {
  std::vector<std::pair<EventTypeId, NodeId>> tuples;

  /// The node bound to `type`, or -1 if the type is not in the binding.
  int NodeFor(EventTypeId type) const;

  /// True if this binding is a sub-bag of `other` (every tuple appears in
  /// `other`), cf. §4.1: bindings of a projection are sub-bags of the
  /// bindings of the query.
  bool IsSubBindingOf(const Binding& other) const;

  /// Restriction to the given types.
  Binding Restrict(TypeSet types) const;

  std::string ToString() const;

  friend bool operator==(const Binding& a, const Binding& b) = default;
  friend auto operator<=>(const Binding& a, const Binding& b) = default;
};

/// The number of event type bindings |𝔈| of a projection with primitive
/// types `types` in `net`: the product over the types of their producer
/// counts. Returned as double — counts grow as |N|^|O_p|.
double CountBindings(const Network& net, TypeSet types);

/// Materializes 𝔈(Γ, q) for the projection with primitive types `types`
/// (§4.1). Intended for tests and small instances; checks that the result
/// stays below `limit`.
std::vector<Binding> EnumerateBindings(const Network& net, TypeSet types,
                                       size_t limit = 1 << 20);

}  // namespace muse

#endif  // MUSE_CORE_BINDINGS_H_
