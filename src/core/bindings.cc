#include "src/core/bindings.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

int Binding::NodeFor(EventTypeId type) const {
  for (const auto& [t, n] : tuples) {
    if (t == type) return static_cast<int>(n);
  }
  return -1;
}

bool Binding::IsSubBindingOf(const Binding& other) const {
  for (const auto& tuple : tuples) {
    if (std::find(other.tuples.begin(), other.tuples.end(), tuple) ==
        other.tuples.end()) {
      return false;
    }
  }
  return true;
}

Binding Binding::Restrict(TypeSet types) const {
  Binding out;
  for (const auto& tuple : tuples) {
    if (types.Contains(tuple.first)) out.tuples.push_back(tuple);
  }
  return out;
}

std::string Binding::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += " ";
    out += "(E" + std::to_string(tuples[i].first) + ",n" +
           std::to_string(tuples[i].second) + ")";
  }
  return out + "]";
}

double CountBindings(const Network& net, TypeSet types) {
  double count = 1.0;
  for (EventTypeId t : types) {
    count *= static_cast<double>(net.NumProducers(t));
  }
  return count;
}

std::vector<Binding> EnumerateBindings(const Network& net, TypeSet types,
                                       size_t limit) {
  MUSE_CHECK(CountBindings(net, types) <= static_cast<double>(limit),
             "binding enumeration too large; use CountBindings");
  std::vector<Binding> acc = {Binding{}};
  for (EventTypeId t : types) {
    std::vector<Binding> next;
    next.reserve(acc.size() * net.NumProducers(t));
    for (const Binding& b : acc) {
      for (NodeId n : net.Producers(t)) {
        Binding extended = b;
        extended.tuples.emplace_back(t, n);
        next.push_back(std::move(extended));
      }
    }
    acc = std::move(next);
  }
  // A type without producers yields no bindings at all.
  for (EventTypeId t : types) {
    if (net.NumProducers(t) == 0) return {};
  }
  return acc;
}

}  // namespace muse
