#ifndef MUSE_CORE_MULTI_QUERY_H_
#define MUSE_CORE_MULTI_QUERY_H_

#include <memory>
#include <vector>

#include "src/core/amuse.h"
#include "src/core/placement_oop.h"

namespace muse {

/// A planned workload: per-query plans merged into one MuSE graph, with
/// shared-stream-deduplicated total cost and the transmission ratio against
/// centralized evaluation (§7.1).
struct WorkloadPlan {
  std::vector<PlanResult> per_query;
  MuseGraph combined;
  double total_cost = 0;
  double centralized_cost = 0;
  /// total_cost / centralized_cost — the headline metric of §7.
  double transmission_ratio = 0;
  PlannerStats aggregate_stats;
};

/// Owns the projection catalogs of a workload in a network; build once and
/// reuse across planners (catalog construction enumerates Π(q)).
class WorkloadCatalogs {
 public:
  WorkloadCatalogs(const std::vector<Query>& workload, const Network& net);

  const std::vector<Query>& workload() const { return workload_; }
  const Network& network() const { return *net_; }
  const ProjectionCatalog& catalog(int i) const { return *catalogs_[i]; }
  int size() const { return static_cast<int>(catalogs_.size()); }

  /// Pointer view matching GraphCost's interface.
  std::vector<const ProjectionCatalog*> Pointers() const;

 private:
  std::vector<Query> workload_;
  const Network* net_;
  std::vector<std::unique_ptr<ProjectionCatalog>> catalogs_;
};

/// Multi-query aMuSE (§6.2): plans queries sequentially, each reusing the
/// placements and network transfers established by its predecessors.
WorkloadPlan PlanWorkloadAmuse(const WorkloadCatalogs& catalogs,
                               const PlannerOptions& options = {});

/// Multi-query oOP baseline with the same transfer sharing. When `metrics`
/// is non-null, planning wall time and query count are exported under
/// planner_*{algorithm="oop"}.
WorkloadPlan PlanWorkloadOop(const WorkloadCatalogs& catalogs,
                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace muse

#endif  // MUSE_CORE_MULTI_QUERY_H_
