#include "src/core/rate_cache.h"

#include <bit>

#include "src/core/rates.h"

namespace muse {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

RateCache& RateCache::Global() {
  static RateCache cache;
  return cache;
}

uint64_t RateCache::Key(uint64_t sig_hash, double selectivity,
                        uint64_t net_fingerprint) {
  uint64_t h = sig_hash;
  h = Mix(h, std::bit_cast<uint64_t>(selectivity));
  h = Mix(h, net_fingerprint);
  return h;
}

double RateCache::OutputRate(uint64_t key, const Query& ast,
                             const Network& net) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.hits;
      return it->second;
    }
    ++shard.misses;
  }
  // Compute outside the lock: rate recursion can be deep, and a racing
  // same-key miss computes the identical value.
  const double rate = QueryOutputRate(ast, net);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= kMaxShardEntries) {
    shard.evictions += shard.entries.size();
    shard.entries.clear();
  }
  shard.entries.emplace(key, rate);
  return rate;
}

RateCache::Stats RateCache::GetStats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.size += shard.entries.size();
  }
  return out;
}

void RateCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

}  // namespace muse
