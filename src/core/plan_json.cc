#include "src/core/plan_json.h"

#include <cctype>
#include <cstdint>

#include "src/common/numbers.h"

namespace muse {

std::string PlanToJson(const MuseGraph& g) {
  std::string out = "{\n  \"vertices\": [";
  for (int i = 0; i < g.num_vertices(); ++i) {
    const PlanVertex& v = g.vertex(i);
    if (i > 0) out += ",";
    out += "\n    {\"query\": " + std::to_string(v.query) + ", \"types\": [";
    bool first = true;
    for (EventTypeId t : v.proj) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(t);
    }
    out += "], \"node\": " + std::to_string(v.node) +
           ", \"part\": " + std::to_string(v.part_type) +
           ", \"reused\": " + (v.reused ? "true" : "false") + "}";
  }
  out += "\n  ],\n  \"edges\": [";
  for (size_t i = 0; i < g.edges().size(); ++i) {
    if (i > 0) out += ",";
    out += "[" + std::to_string(g.edges()[i].first) + "," +
           std::to_string(g.edges()[i].second) + "]";
  }
  out += "],\n  \"sinks\": [";
  for (size_t i = 0; i < g.sinks().size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(g.sinks()[i]);
  }
  out += "]\n}\n";
  return out;
}

namespace {

/// Minimal recursive-descent parser for exactly the JSON subset PlanToJson
/// emits (objects, arrays, integers, booleans, string keys). Hardened
/// against malformed input: every failure path reports instead of crashing.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ReadKey(std::string* key) {
    if (!Consume('"')) return false;
    key->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      key->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;
    return true;
  }

  bool ReadInt(int64_t* value) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected integer");
    }
    std::optional<int64_t> parsed = ParseInt64(
        std::string_view(text_).substr(start, pos_ - start));
    if (!parsed) return Fail("integer out of range");
    *value = *parsed;
    return true;
  }

  bool ReadBool(bool* value) {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      *value = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      *value = false;
      pos_ += 5;
      return true;
    }
    return Fail("expected boolean");
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<MuseGraph> PlanFromJson(const std::string& json) {
  JsonReader r(json);
  auto fail = [&r]() { return Err("plan JSON: ", r.error()); };

  std::vector<PlanVertex> vertices;
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::vector<int64_t> sinks;

  if (!r.Consume('{')) return fail();
  bool first_section = true;
  while (!r.Peek('}')) {
    if (!first_section && !r.Consume(',')) return fail();
    first_section = false;
    std::string key;
    if (!r.ReadKey(&key) || !r.Consume(':')) return fail();
    if (key != "vertices" && key != "edges" && key != "sinks") {
      return Err("plan JSON: unknown section '", key, "'");
    }
    if (!r.Consume('[')) return fail();
    bool first = true;
    while (!r.Peek(']')) {
      if (!first && !r.Consume(',')) return fail();
      first = false;
      if (key == "vertices") {
        PlanVertex v;
        if (!r.Consume('{')) return fail();
        bool first_field = true;
        while (!r.Peek('}')) {
          if (!first_field && !r.Consume(',')) return fail();
          first_field = false;
          std::string field;
          if (!r.ReadKey(&field) || !r.Consume(':')) return fail();
          if (field == "query") {
            int64_t value = 0;
            if (!r.ReadInt(&value)) return fail();
            if (value < 0 || value > INT32_MAX) {
              return Err("plan JSON: query index out of range");
            }
            v.query = static_cast<int>(value);
          } else if (field == "node") {
            int64_t value = 0;
            if (!r.ReadInt(&value)) return fail();
            if (value < 0 || value > INT32_MAX) {
              return Err("plan JSON: node id out of range");
            }
            v.node = static_cast<NodeId>(value);
          } else if (field == "part") {
            int64_t value = 0;
            if (!r.ReadInt(&value)) return fail();
            if (value < kNoPartition || value >= 64) {
              return Err("plan JSON: partition type out of range");
            }
            v.part_type = static_cast<int>(value);
          } else if (field == "reused") {
            if (!r.ReadBool(&v.reused)) return fail();
          } else if (field == "types") {
            if (!r.Consume('[')) return fail();
            bool first_type = true;
            while (!r.Peek(']')) {
              if (!first_type && !r.Consume(',')) return fail();
              first_type = false;
              int64_t t = 0;
              if (!r.ReadInt(&t)) return fail();
              if (t < 0 || t >= 64) return Err("plan JSON: type out of range");
              v.proj.Insert(static_cast<EventTypeId>(t));
            }
            if (!r.Consume(']')) return fail();
          } else {
            return Err("plan JSON: unknown vertex field '", field, "'");
          }
        }
        if (!r.Consume('}')) return fail();
        if (v.proj.empty()) return Err("plan JSON: vertex without types");
        vertices.push_back(v);
      } else if (key == "edges") {
        int64_t a = 0;
        int64_t b = 0;
        if (!r.Consume('[') || !r.ReadInt(&a) || !r.Consume(',') ||
            !r.ReadInt(&b) || !r.Consume(']')) {
          return fail();
        }
        edges.emplace_back(a, b);
      } else if (key == "sinks") {
        int64_t s = 0;
        if (!r.ReadInt(&s)) return fail();
        sinks.push_back(s);
      } else {
        return Err("plan JSON: unknown section '", key, "'");
      }
    }
    if (!r.Consume(']')) return fail();
  }
  if (!r.Consume('}')) return fail();
  if (!r.AtEnd()) return Err("plan JSON: trailing content");

  MuseGraph g;
  std::vector<int> remap;
  remap.reserve(vertices.size());
  for (const PlanVertex& v : vertices) remap.push_back(g.AddVertex(v));
  const int64_t n = static_cast<int64_t>(vertices.size());
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Err("plan JSON: edge endpoint out of range");
    }
    g.AddEdge(remap[a], remap[b]);
  }
  std::vector<int> sink_ids;
  for (int64_t s : sinks) {
    if (s < 0 || s >= n) return Err("plan JSON: sink out of range");
    sink_ids.push_back(remap[s]);
  }
  g.SetSinks(std::move(sink_ids));
  return g;
}

}  // namespace muse
