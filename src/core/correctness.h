#ifndef MUSE_CORE_CORRECTNESS_H_
#define MUSE_CORE_CORRECTNESS_H_

#include <string>
#include <vector>

#include "src/core/muse_graph.h"
#include "src/core/projection.h"

namespace muse {

/// Well-formedness (Def. 7) of a MuSE graph for the workload described by
/// `catalogs` (one catalog per query):
///  (i)  for each query, each primitive type and each node producing it,
///       the graph contains the corresponding primitive vertex (possibly
///       owned by another query with an identical singleton projection);
///  (ii) for each non-primitive, non-reused vertex v, the predecessor
///       projections form a correct combination of v's projection
///       (union == v.proj, each a proper subset; Def. 6 structurally).
bool IsWellFormed(const MuseGraph& g,
                  const std::vector<const ProjectionCatalog*>& catalogs,
                  std::string* why = nullptr);

/// Completeness (Def. 8): for each query, the vertices hosting the full
/// query jointly cover all of its event type bindings — either a
/// single-sink vertex (full cover) or a partitioned group whose nodes span
/// every producer of the partitioning type.
bool IsComplete(const MuseGraph& g,
                const std::vector<const ProjectionCatalog*>& catalogs,
                std::string* why = nullptr);

/// Correct = well-formed and complete (§5.2).
bool IsCorrectPlan(const MuseGraph& g,
                   const std::vector<const ProjectionCatalog*>& catalogs,
                   std::string* why = nullptr);

/// Single-query conveniences.
bool IsCorrectPlan(const MuseGraph& g, const ProjectionCatalog& catalog,
                   std::string* why = nullptr);

/// Checks, by materializing bindings (small networks only), that the given
/// vertices of projection `proj` jointly cover 𝔈(proj): every binding is
/// covered by at least one vertex — full cover, or partition tuple at the
/// vertex's node (Def. 4). Used by tests as the ground-truth version of the
/// descriptor-based cover reasoning.
bool VerticesCoverAllBindings(const std::vector<PlanVertex>& vertices,
                              const Network& net, TypeSet proj);

}  // namespace muse

#endif  // MUSE_CORE_CORRECTNESS_H_
