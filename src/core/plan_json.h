#ifndef MUSE_CORE_PLAN_JSON_H_
#define MUSE_CORE_PLAN_JSON_H_

#include <string>

#include "src/common/result.h"
#include "src/core/muse_graph.h"

namespace muse {

/// Serializes a MuSE graph to a self-contained JSON document:
///
/// {
///   "vertices": [{"query":0,"types":[0,2],"node":3,"part":-1,
///                 "reused":false}, ...],
///   "edges": [[0,5], ...],
///   "sinks": [5, ...]
/// }
///
/// Intended for persisting plans across planner/executor process
/// boundaries (plan once, deploy elsewhere); the consumer re-derives ASTs,
/// rates, and routing from its own catalogs, so only the plan *structure*
/// is stored.
std::string PlanToJson(const MuseGraph& g);

/// Parses a document produced by PlanToJson. Fails with a message on
/// malformed input (never crashes on untrusted data).
Result<MuseGraph> PlanFromJson(const std::string& json);

}  // namespace muse

#endif  // MUSE_CORE_PLAN_JSON_H_
