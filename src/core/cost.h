#ifndef MUSE_CORE_COST_H_
#define MUSE_CORE_COST_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/muse_graph.h"
#include "src/core/projection.h"

namespace muse {

/// Cross-query sharing state for the multi-query extension (§6.2). After a
/// query is planned, its placements and network transfers are recorded so
/// that later queries can (a) reuse placed projections at zero placement
/// cost and (b) not pay again for match streams already flowing between a
/// pair of nodes.
struct SharingContext {
  struct Placement {
    NodeId node;
    int part_type;
  };
  /// Projection signature -> placements established by earlier queries.
  std::unordered_map<std::string, std::vector<Placement>> placed;
  /// Hashed transfer keys (see `TransferKeyHash`) already paid for.
  std::unordered_set<uint64_t> paid_transfers;
};

/// Key identifying one match stream over one network link: the projection's
/// signature hash + its cover partition + source and destination node.
/// Identical streams are charged once (both within a plan — the
/// 1/|V_{v,n'}| sharing term of §4.4 — and across queries, §6.2).
uint64_t TransferKeyHash(uint64_t sig_hash, int part_type, NodeId src,
                         NodeId dst);

/// Weight of the stream leaving vertex `src`: r̂(p) · |𝔄(src)| (§4.4),
/// computed from catalog aggregates in O(1).
double StreamWeight(const ProjectionCatalog& cat, const PlanVertex& src);

/// A network-cost decomposition: the set of distinct charged match streams
/// (transfer-key hash -> weight) of a (partial) plan, with their sum.
/// Because streams deduplicate by key, the cost of a union of sub-plans is
/// the total of the union of their charge sets — the planner's workhorse
/// for costing candidate placements without materializing merged graphs.
///
/// Stored as a key-sorted vector: copying is a flat memcpy-like operation
/// and unions are linear merges, which is what makes the planner's
/// hot loop cheap.
class ChargeSet {
 public:
  ChargeSet() = default;

  double total() const { return total_; }
  size_t size() const { return items_.size(); }
  bool Contains(uint64_t key) const;

  /// Inserts (key, weight) if absent; returns true if inserted.
  bool Add(uint64_t key, double weight);

  /// Unions `other` into this set.
  void MergeFrom(const ChargeSet& other);

  /// Sum of the weights in `other` (plus the `extra` (key, weight) pairs)
  /// that are *not* already contained here — the marginal cost of adding a
  /// sub-plan. `extra` entries duplicated within themselves or present in
  /// `other` are counted once.
  double MarginalCost(const ChargeSet& other,
                      const std::vector<std::pair<uint64_t, double>>& extra)
      const;

 private:
  std::vector<std::pair<uint64_t, double>> items_;  // sorted by key
  double total_ = 0;
};

/// Network cost c(G) of a MuSE graph (§4.4): the sum over network edges of
/// r̂(p) · |𝔄(v)|, where each distinct match stream per destination node is
/// charged once. Local edges (same node) cost zero; transfers recorded in
/// `ctx` cost zero.
///
/// `catalogs[i]` must be the projection catalog of workload query i.
double GraphCost(const MuseGraph& g,
                 const std::vector<const ProjectionCatalog*>& catalogs,
                 const SharingContext* ctx = nullptr);

/// Single-query convenience overload.
double GraphCost(const MuseGraph& g, const ProjectionCatalog& catalog,
                 const SharingContext* ctx = nullptr);

/// Records the plan's placements and paid transfers into `ctx` (§6.2);
/// called after each query of a workload is planned.
void RecordPlanInContext(const MuseGraph& g,
                         const std::vector<const ProjectionCatalog*>& catalogs,
                         SharingContext* ctx);

/// The network cost of centralized evaluation of `types` (§3): every event
/// of every type is shipped to a sink outside the network. The reference
/// point of the *transmission ratio* metric (§7.1).
double CentralizedCost(const Network& net, TypeSet types);

}  // namespace muse

#endif  // MUSE_CORE_COST_H_
