#include "src/core/normal_form.h"

#include <vector>

namespace muse {

MuseGraph CollapsedNormalForm(const MuseGraph& g) {
  // Work on mutable adjacency, then rebuild.
  int n = g.num_vertices();
  std::vector<PlanVertex> vertices(g.vertices());
  std::vector<std::pair<int, int>> edges(g.edges());
  std::vector<bool> removed(n, false);

  bool changed = true;
  while (changed) {
    changed = false;
    for (int w = 0; w < n; ++w) {
      if (removed[w] || vertices[w].IsPrimitive()) continue;
      bool has_network_out = false;
      std::vector<int> local_successors;
      for (const auto& [from, to] : edges) {
        if (from != w || removed[to]) continue;
        if (vertices[to].node == vertices[w].node) {
          local_successors.push_back(to);
        } else {
          has_network_out = true;
        }
      }
      if (has_network_out || local_successors.empty()) continue;
      // Remove w; redirect its incoming edges to its same-node successors.
      std::vector<int> preds;
      for (const auto& [from, to] : edges) {
        if (to == w && !removed[from]) preds.push_back(from);
      }
      std::vector<std::pair<int, int>> next_edges;
      for (const auto& e : edges) {
        if (e.first == w || e.second == w) continue;
        next_edges.push_back(e);
      }
      for (int p : preds) {
        for (int s : local_successors) {
          if (p != s) next_edges.emplace_back(p, s);
        }
      }
      edges = std::move(next_edges);
      removed[w] = true;
      changed = true;
    }
  }

  MuseGraph out;
  std::vector<int> remap(n, -1);
  for (int i = 0; i < n; ++i) {
    if (!removed[i]) remap[i] = out.AddVertex(vertices[i]);
  }
  for (const auto& [from, to] : edges) {
    if (remap[from] >= 0 && remap[to] >= 0) {
      out.AddEdge(remap[from], remap[to]);
    }
  }
  std::vector<int> sinks;
  for (int s : g.sinks()) {
    if (remap[s] >= 0) sinks.push_back(remap[s]);
  }
  out.SetSinks(std::move(sinks));
  return out;
}

bool EquivalentMuseGraphs(const MuseGraph& a, const MuseGraph& b) {
  return CollapsedNormalForm(a).CanonicalString() ==
         CollapsedNormalForm(b).CanonicalString();
}

}  // namespace muse
