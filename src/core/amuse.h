#ifndef MUSE_CORE_AMUSE_H_
#define MUSE_CORE_AMUSE_H_

#include <cstdint>

#include "src/core/combination.h"
#include "src/core/cost.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"

namespace muse {

/// Configuration of the aMuSE planner (§6.2).
struct PlannerOptions {
  /// aMuSE* (§6.2): additionally restricts the considered projections and
  /// the predecessors used for local placements. Faster, fewer projections,
  /// potentially costlier plans.
  bool star = false;

  /// Enables partitioning multi-sink placements (§6.1.3). Disabling
  /// restricts plans to single-sink placements of arbitrary projections —
  /// an ablation isolating the contribution of multi-sink evaluation.
  bool enable_multi_sink = true;

  /// Enables the beneficial-projection pruning of Def. 13 / Theorem 3.
  /// Disabling considers every valid projection — an ablation (and the
  /// exhaustive planner's mode).
  bool prune_beneficial = true;

  /// Combination enumeration guard.
  CombinationEnumOptions combo;

  /// Global guard on constructed candidate graphs; when reached, remaining
  /// candidates are skipped (a correct plan still results — the primitive
  /// combination is always available). 0 = unlimited.
  int max_graphs = 500'000;

  /// Per-projection search budget: stop exploring a projection's
  /// combinations after this many consecutive candidates fail to improve
  /// any placement bucket (combinations are visited in ascending input-
  /// volume order, so the tail rarely helps). 0 = unlimited.
  int stagnation_limit = 2000;

  /// Multi-query refinement sweeps (PlanWorkloadAmuse): after the
  /// sequential pass, each query is replanned against the placements of
  /// all other queries; improvements are kept. Makes the §6.2 reuse
  /// symmetric (early queries can also adopt later queries' placements).
  int refine_passes = 1;
};

/// Planner observability (Fig. 7d reports projections considered and
/// construction time).
struct PlannerStats {
  int projections_total = 0;       ///< |Π(q)| (valid projection sets)
  int projections_considered = 0;  ///< after beneficial/star pruning
  int combinations_enumerated = 0;
  int graphs_constructed = 0;
  double elapsed_seconds = 0;
};

/// A finished evaluation plan: the MuSE graph, its network cost c(G), and
/// planner statistics. `graph.sinks()` hosts the query's root projection.
struct PlanResult {
  MuseGraph graph;
  double cost = 0;
  PlannerStats stats;
};

/// Computes a MuSE graph for the catalog's query with the aMuSE algorithm
/// (Alg. 2 enumeration + Alg. 3 bottom-up construction). With
/// `options.star`, runs the aMuSE* variant.
///
/// `ctx` (optional) enables the multi-query extension (§6.2): placements
/// and transfers recorded by previously planned queries are reused at zero
/// cost; the caller is responsible for calling `RecordPlanInContext`
/// afterwards (or using `PlanWorkload`, which does). `query_index` tags the
/// plan's vertices with the query's position in the workload.
PlanResult PlanQuery(const ProjectionCatalog& catalog,
                     const PlannerOptions& options = {},
                     SharingContext* ctx = nullptr, int query_index = 0);

}  // namespace muse

#endif  // MUSE_CORE_AMUSE_H_
