#ifndef MUSE_CORE_AMUSE_H_
#define MUSE_CORE_AMUSE_H_

#include <cstdint>
#include <string>

#include "src/core/combination.h"
#include "src/core/cost.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"
#include "src/obs/metrics.h"

namespace muse {

/// Configuration of the aMuSE planner (§6.2).
struct PlannerOptions {
  /// aMuSE* (§6.2): additionally restricts the considered projections and
  /// the predecessors used for local placements. Faster, fewer projections,
  /// potentially costlier plans.
  bool star = false;

  /// Enables partitioning multi-sink placements (§6.1.3). Disabling
  /// restricts plans to single-sink placements of arbitrary projections —
  /// an ablation isolating the contribution of multi-sink evaluation.
  bool enable_multi_sink = true;

  /// Enables the beneficial-projection pruning of Def. 13 / Theorem 3.
  /// Disabling considers every valid projection — an ablation (and the
  /// exhaustive planner's mode).
  bool prune_beneficial = true;

  /// Combination enumeration guard.
  CombinationEnumOptions combo;

  /// Global guard on constructed candidate graphs; when reached, remaining
  /// candidates are skipped (a correct plan still results — the primitive
  /// combination is always available). 0 = unlimited.
  int max_graphs = 500'000;

  /// Per-projection search budget: stop exploring a projection's
  /// combinations after this many consecutive candidates fail to improve
  /// any placement bucket (combinations are visited in ascending input-
  /// volume order, so the tail rarely helps). 0 = unlimited.
  int stagnation_limit = 2000;

  /// Planner parallelism (muse-par): number of concurrent executors used
  /// for candidate costing and (in PlanWorkloadAmuse) for planning
  /// independent queries. 0 = hardware concurrency; 1 = the original
  /// serial code path, preserved verbatim; >1 = parallel search with
  /// results **bit-identical** to num_threads=1 (deterministic batched
  /// evaluation + ordered serial replay; see DESIGN.md "Parallel
  /// planning"). Wall-clock stats fields and par_* counters do vary with
  /// the thread count; plans, costs, sinks and search counters do not.
  int num_threads = 0;

  /// Multi-query refinement sweeps (PlanWorkloadAmuse): after the
  /// sequential pass, each query is replanned against the placements of
  /// all other queries; improvements are kept. Makes the §6.2 reuse
  /// symmetric (early queries can also adopt later queries' placements).
  int refine_passes = 1;

  /// Optional metrics sink: when set, every PlanQuery call exports its
  /// PlannerStats as registry counters labeled by algorithm
  /// ({algorithm="amuse"|"amuse-star"}; oOP/centralized planners use their
  /// own labels). Not owned; must outlive planning.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Planner observability (Fig. 7d reports projections considered and
/// construction time). Counters split the search-space walk by outcome and
/// the wall time by phase; AddTo accumulates across a workload's queries.
struct PlannerStats {
  int projections_total = 0;       ///< |Π(q)| (valid projection sets)
  int projections_considered = 0;  ///< after beneficial/star pruning
  int pruned_beneficial = 0;       ///< rejected by Def. 13 / Theorem 3
  int pruned_star = 0;             ///< rejected by the aMuSE* filter
  int combinations_enumerated = 0;
  int graphs_constructed = 0;  ///< candidates whose charge set was assembled
  int graphs_discarded = 0;    ///< assembled but beaten by their table bucket
  int lb_rejections = 0;       ///< skipped by the lower-bound test (no assembly)

  /// Parallel-search telemetry (muse-par). Zero on the serial path. These
  /// are the only counters allowed to differ across num_threads settings:
  /// par_tasks/par_batches are deterministic per thread count, while
  /// par_wasted_evals (evaluations discarded because the serial replay
  /// terminated a target early) depends on batch boundaries only, not on
  /// scheduling.
  int par_tasks = 0;    ///< candidate evaluations dispatched to the pool
  int par_batches = 0;  ///< batched ParallelFor rounds
  int par_wasted_evals = 0;

  /// Per-phase wall time, measured on the orchestrating thread with a
  /// monotonic clock (std::chrono::steady_clock — wall-clock adjustments
  /// must never produce negative phase times). select: candidate
  /// filtering; enumerate: combination enumeration; construct: candidate
  /// costing/materialization. elapsed_seconds covers the whole PlanQuery
  /// call.
  double select_seconds = 0;
  double enumerate_seconds = 0;
  double construct_seconds = 0;
  double elapsed_seconds = 0;

  /// Cumulative CPU seconds spent inside worker-side candidate
  /// evaluations, summed across workers (so it can exceed elapsed_seconds
  /// on multi-core runs). Zero on the serial path.
  double par_eval_seconds = 0;

  /// Field-wise accumulation (workload aggregation): sums every field,
  /// including the wall-clock phase timers — correct when the addends
  /// cover disjoint wall-time intervals (sequentially planned queries).
  void AddTo(PlannerStats* total) const;

  /// Merges a worker's stats into `total` WITHOUT the wall-clock phase
  /// fields (select/enumerate/construct/elapsed_seconds): the orchestrator
  /// already times the parallel region once, so adding each worker's view
  /// of the same interval would count it num_threads times. Worker-side
  /// CPU time (par_eval_seconds) and all counters are summed.
  void MergeWorker(PlannerStats* total) const;

  /// Exports the counters into `registry` under
  /// planner_*{algorithm=<algorithm>} families (no-op when null).
  void ExportTo(obs::MetricsRegistry* registry,
                const std::string& algorithm) const;
};

/// A finished evaluation plan: the MuSE graph, its network cost c(G), and
/// planner statistics. `graph.sinks()` hosts the query's root projection.
struct PlanResult {
  MuseGraph graph;
  double cost = 0;
  PlannerStats stats;
};

/// Computes a MuSE graph for the catalog's query with the aMuSE algorithm
/// (Alg. 2 enumeration + Alg. 3 bottom-up construction). With
/// `options.star`, runs the aMuSE* variant.
///
/// `ctx` (optional) enables the multi-query extension (§6.2): placements
/// and transfers recorded by previously planned queries are reused at zero
/// cost; the caller is responsible for calling `RecordPlanInContext`
/// afterwards (or using `PlanWorkload`, which does). `query_index` tags the
/// plan's vertices with the query's position in the workload.
PlanResult PlanQuery(const ProjectionCatalog& catalog,
                     const PlannerOptions& options = {},
                     SharingContext* ctx = nullptr, int query_index = 0);

}  // namespace muse

#endif  // MUSE_CORE_AMUSE_H_
