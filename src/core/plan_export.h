#ifndef MUSE_CORE_PLAN_EXPORT_H_
#define MUSE_CORE_PLAN_EXPORT_H_

#include <string>
#include <vector>

#include "src/cep/type_registry.h"
#include "src/core/cost.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"

namespace muse {

/// Graphviz DOT rendering of a MuSE graph: one subgraph cluster per network
/// node, projection vertices as boxes (primitive placements as ellipses),
/// network edges labeled with their stream weight (§4.4) and local edges
/// drawn dashed. `dot -Tsvg plan.dot` visualizes an evaluation plan like
/// the paper's Fig. 2b.
std::string ToDot(const MuseGraph& g,
                  const std::vector<const ProjectionCatalog*>& catalogs,
                  const TypeRegistry* reg = nullptr);

/// One line of a plan cost breakdown.
struct StreamCharge {
  std::string projection;  ///< human-readable projection
  int part_type;           ///< cover partition (kNoPartition = full)
  NodeId src;
  NodeId dst;
  double weight;           ///< r̂(p) · |𝔄(v)| (§4.4)
};

/// The plan's network cost decomposed into its distinct charged streams,
/// heaviest first — "where does the traffic come from?". The sum of the
/// weights equals GraphCost(g).
std::vector<StreamCharge> ExplainCharges(
    const MuseGraph& g,
    const std::vector<const ProjectionCatalog*>& catalogs,
    const TypeRegistry* reg = nullptr);

/// Formats ExplainCharges as an aligned text table.
std::string ExplainPlan(const MuseGraph& g,
                        const std::vector<const ProjectionCatalog*>& catalogs,
                        const TypeRegistry* reg = nullptr);

}  // namespace muse

#endif  // MUSE_CORE_PLAN_EXPORT_H_
