#include "src/core/combination.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"

namespace muse {

std::string Combination::ToString() const {
  std::string out = target.ToString() + " <- {";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i].ToString();
  }
  return out + "}";
}

bool IsCorrectCombination(const Combination& c) {
  if (c.parts.empty()) return false;
  TypeSet covered;
  for (TypeSet part : c.parts) {
    if (part.empty() || !part.IsProperSubsetOf(c.target)) return false;
    covered = covered.Union(part);
  }
  return covered == c.target;
}

bool IsRedundantCombination(const Combination& c) {
  for (size_t i = 0; i < c.parts.size(); ++i) {
    TypeSet others;
    for (size_t j = 0; j < c.parts.size(); ++j) {
      if (j != i) others = others.Union(c.parts[j]);
    }
    if (c.parts[i].IsSubsetOf(others)) return true;
  }
  return false;
}

namespace {

struct EnumState {
  TypeSet target;
  const std::vector<TypeSet>* usable;
  const std::vector<TypeSet>* negated_groups;
  size_t max_combinations;
  size_t max_parts;
  std::set<std::vector<TypeSet>> seen;
  std::vector<Combination>* out;
};

/// Recursively extends `chosen` until the target is covered. At each step
/// the lowest still-uncovered type is picked and every usable part
/// containing it is tried; this bounds the recursion depth by |target| and
/// reaches every cover. Duplicates (same part set reached via different
/// orders) are removed via `seen`.
void Extend(EnumState& st, TypeSet covered, std::vector<TypeSet>& chosen) {
  if (st.max_combinations != 0 && st.out->size() >= st.max_combinations) {
    return;
  }
  if (covered == st.target) {
    Combination c;
    c.target = st.target;
    c.parts = chosen;
    std::sort(c.parts.begin(), c.parts.end());
    if (!st.seen.insert(c.parts).second) return;
    if (IsRedundantCombination(c)) return;
    st.out->push_back(std::move(c));
    return;
  }
  if (st.max_parts != 0 && chosen.size() >= st.max_parts) return;
  EventTypeId next = st.target.Minus(covered).First();
  for (TypeSet part : *st.usable) {
    if (!part.Contains(next)) continue;
    // Skip parts already chosen (a combination is a set of projections).
    if (std::find(chosen.begin(), chosen.end(), part) != chosen.end()) {
      continue;
    }
    chosen.push_back(part);
    Extend(st, covered.Union(part), chosen);
    chosen.pop_back();
  }
}

}  // namespace

std::vector<Combination> EnumerateCombinations(
    TypeSet target, const std::vector<TypeSet>& candidates,
    const std::vector<TypeSet>& negated_groups,
    const CombinationEnumOptions& options) {
  // Filter candidates: proper non-empty subsets respecting the negation
  // grouping rule.
  std::vector<TypeSet> usable;
  for (TypeSet part : candidates) {
    if (part.empty() || !part.IsProperSubsetOf(target)) continue;
    bool ok = true;
    for (TypeSet group : negated_groups) {
      // The rule only constrains targets that contain the negated pattern
      // as a proper part; the negated pattern itself is composed freely.
      if (!group.IsProperSubsetOf(target)) continue;
      if (part.Intersects(group) && part != group) {
        ok = false;
        break;
      }
    }
    if (ok) usable.push_back(part);
  }

  std::vector<Combination> out;
  EnumState st{target,  &usable, &negated_groups, options.max_combinations,
               options.max_parts, {},      &out};
  std::vector<TypeSet> chosen;
  Extend(st, TypeSet(), chosen);
  return out;
}

}  // namespace muse
