#include "src/core/amuse.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/core/beneficial.h"
#include "src/core/combination.h"
#include "src/core/correctness.h"

namespace muse {
namespace {

/// Adds the elapsed time since construction to `*sink` on destruction.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), started_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            started_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point started_;
};

/// One entry of the dynamic-programming table G[p][PO] (Alg. 3): the
/// cheapest MuSE graph found so far that generates matches of projection
/// `proj` with sinks determined by placement option `PO`.
///
/// `charges` decomposes the graph's network cost into its distinct match
/// streams; its total is `cost`. Because stream charges deduplicate by
/// key, the cost of a union of graphs is the total of the union of their
/// charge sets — which lets candidate placements be costed without
/// materializing merged graphs (see ChargeSet).
struct PlacedGraph {
  MuseGraph graph;
  ChargeSet charges;
  double cost = std::numeric_limits<double>::infinity();
  std::vector<int> sinks;  // vertex ids in `graph`
  bool multi_sink = false;
  int part_type = kNoPartition;  // partitioning type if multi_sink
};

using TableKey = std::pair<uint64_t, int>;  // (proj bits, placement option)

/// Resolved PlannerOptions::num_threads: 0 means hardware concurrency.
int ResolveExecutors(const PlannerOptions& options) {
  return options.num_threads <= 0 ? ThreadPool::HardwareExecutors()
                                  : options.num_threads;
}

class AmusePlanner {
 public:
  AmusePlanner(const ProjectionCatalog& catalog, const PlannerOptions& options,
               SharingContext* ctx, int query_index)
      : catalog_(catalog),
        net_(catalog.network()),
        options_(options),
        ctx_(ctx),
        query_(query_index),
        catalogs_(query_index + 1, &catalog) {}

  PlanResult Run() {
    auto started = std::chrono::steady_clock::now();
    const Query& q = catalog_.query();
    const TypeSet full = q.PrimitiveTypes();

    // muse-par: >1 executors switches to the deterministic parallel path
    // (batched evaluation + ordered replay); 1 keeps the original serial
    // code verbatim. Both produce bit-identical plans, costs, sinks and
    // search counters (see DESIGN.md "Parallel planning").
    const int executors = ResolveExecutors(options_);
    ThreadPool* pool = executors > 1 ? &ThreadPool::For(executors) : nullptr;

    CollectNegatedGroups();
    if (pool != nullptr && catalog_.All().size() >= 16) {
      SelectCandidateProjectionsParallel(*pool);
    } else {
      SelectCandidateProjections();
    }
    InitPrimitiveEntries();
    if (ctx_ != nullptr) RegisterReusedPlacements();

    // Bottom-up over targets: candidate projections (smallest first), then
    // the query itself (Alg. 3 lines 2-16).
    std::vector<TypeSet> targets;
    for (TypeSet p : candidates_) {
      if (p.size() > 1) targets.push_back(p);
    }
    if (full.size() > 1) targets.push_back(full);
    std::stable_sort(targets.begin(), targets.end(),
                     [](TypeSet a, TypeSet b) { return a.size() < b.size(); });
    // Distribute the global construction budget fairly across targets so
    // that late (large) targets — including the query itself — always get
    // searched even when early targets are combination-rich.
    per_target_budget_ =
        options_.max_graphs == 0
            ? 0
            : std::max<int>(2000, options_.max_graphs /
                                      std::max<size_t>(1, targets.size()));
    if (pool == nullptr) {
      for (TypeSet target : targets) PlaceProjection(target);
    } else {
      PlaceTargetsParallel(targets, *pool);
    }

    PlanResult result;
    result.stats = stats_;
    if (full.size() == 1) {
      // Degenerate single-type query: matches are the events themselves;
      // they stay at their sources (one sink per producer, zero cost).
      const PlacedGraph& pg = table_.at({full.bits(), full.First()});
      result.graph = pg.graph;
      result.graph.SetSinks(pg.sinks);
      result.cost = 0;
    } else {
      const PlacedGraph* best = nullptr;
      for (EventTypeId t : full) {
        auto it = table_.find({full.bits(), static_cast<int>(t)});
        if (it == table_.end()) continue;
        if (best == nullptr || it->second.cost < best->cost) {
          best = &it->second;
        }
      }
      if (best == nullptr) {
        // All combinations were pruned away (possible under aMuSE*'s
        // predecessor filter): fall back to gathering all primitive
        // streams at the single cheapest node.
        PlacedGraph fallback = BuildGatherFallback(full);
        result.graph = fallback.graph;
        result.graph.SetSinks(fallback.sinks);
        result.cost = fallback.cost;
      } else {
        result.graph = best->graph;
        result.graph.SetSinks(best->sinks);
        result.cost = best->cost;
      }
    }
    result.stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    // Postcondition: without cross-query sharing the emitted plan must be
    // correct (Def. 7/8) on its own. Under a SharingContext the borrowed
    // placements live in other queries' graphs; the combined workload
    // graph is checked in multi_query.cc instead.
    MUSE_DCHECK(ctx_ != nullptr || IsCorrectPlan(result.graph, catalogs_),
                "aMuSE emitted an incorrect plan");
    result.stats.ExportTo(options_.metrics,
                          options_.star ? "amuse-star" : "amuse");
    return result;
  }

 private:
  void CollectNegatedGroups() {
    const Query& q = catalog_.query();
    for (int i = 0; i < q.num_ops(); ++i) {
      if (q.op(i).kind == OpKind::kNseq) {
        negated_groups_.push_back(q.SubtreeTypes(q.op(i).children[1]));
      }
    }
  }

  bool IsNegatedGroup(TypeSet p) const {
    return std::find(negated_groups_.begin(), negated_groups_.end(), p) !=
           negated_groups_.end();
  }

  /// Alg. 2: Π_ben — singletons and anti groups are always usable;
  /// non-trivial projections pass the beneficial (and, for aMuSE*, the
  /// star) filter.
  void SelectCandidateProjections() {
    PhaseTimer timer(&stats_.select_seconds);
    const TypeSet full = catalog_.query().PrimitiveTypes();
    stats_.projections_total = static_cast<int>(catalog_.All().size());
    for (TypeSet p : catalog_.All()) {
      if (p == full) continue;
      if (p.size() == 1 || IsNegatedGroup(p)) {
        candidates_.push_back(p);
        continue;
      }
      if (options_.prune_beneficial && !IsBeneficialProjection(catalog_, p)) {
        ++stats_.pruned_beneficial;
        continue;
      }
      if (options_.star && !PassesStarFilter(catalog_, p)) {
        ++stats_.pruned_star;
        continue;
      }
      candidates_.push_back(p);
    }
    stats_.projections_considered = static_cast<int>(candidates_.size());
  }

  /// Parallel variant of SelectCandidateProjections: classifying one
  /// projection is a pure function of the catalog, so projections classify
  /// concurrently and fold serially in catalog order — candidate order and
  /// pruning counters are identical to the serial pass.
  void SelectCandidateProjectionsParallel(ThreadPool& pool) {
    PhaseTimer timer(&stats_.select_seconds);
    const TypeSet full = catalog_.query().PrimitiveTypes();
    const std::vector<TypeSet>& all = catalog_.All();
    stats_.projections_total = static_cast<int>(all.size());
    enum class Verdict : uint8_t {
      kSkip,
      kKeep,
      kPrunedBeneficial,
      kPrunedStar,
    };
    std::vector<Verdict> verdicts(all.size());
    pool.ParallelFor(static_cast<int>(all.size()), [&](int, int i) {
      const TypeSet p = all[static_cast<size_t>(i)];
      Verdict v = Verdict::kKeep;
      if (p == full) {
        v = Verdict::kSkip;
      } else if (p.size() == 1 || IsNegatedGroup(p)) {
        v = Verdict::kKeep;
      } else if (options_.prune_beneficial &&
                 !IsBeneficialProjection(catalog_, p)) {
        v = Verdict::kPrunedBeneficial;
      } else if (options_.star && !PassesStarFilter(catalog_, p)) {
        v = Verdict::kPrunedStar;
      }
      verdicts[static_cast<size_t>(i)] = v;
    });
    for (size_t i = 0; i < all.size(); ++i) {
      switch (verdicts[i]) {
        case Verdict::kSkip:
          break;
        case Verdict::kKeep:
          candidates_.push_back(all[i]);
          break;
        case Verdict::kPrunedBeneficial:
          ++stats_.pruned_beneficial;
          break;
        case Verdict::kPrunedStar:
          ++stats_.pruned_star;
          break;
      }
    }
    stats_.projections_considered = static_cast<int>(candidates_.size());
  }

  /// Alg. 3 line 1: one multi-sink "graph" per primitive type, with a
  /// vertex at every producer (each covering the bindings pinned to it).
  void InitPrimitiveEntries() {
    for (EventTypeId t : catalog_.query().PrimitiveTypes()) {
      PlacedGraph pg;
      for (NodeId n : net_.Producers(t)) {
        int idx = pg.graph.AddVertex(PlanVertex{
            query_, TypeSet::Of(t), n, static_cast<int>(t), false});
        pg.sinks.push_back(idx);
      }
      pg.cost = 0;
      pg.multi_sink = true;
      pg.part_type = static_cast<int>(t);
      table_.emplace(TableKey{TypeSet::Of(t).bits(), static_cast<int>(t)},
                     std::move(pg));
    }
  }

  /// §6.2 multi-query reuse: projections placed by earlier queries become
  /// zero-cost table entries.
  void RegisterReusedPlacements() {
    for (TypeSet p : catalog_.All()) {
      if (p.size() == 1) continue;  // primitives always exist everywhere
      auto it = ctx_->placed.find(catalog_.Signature(p));
      if (it == ctx_->placed.end()) continue;
      // Partitioned groups: all producers of the partition type present?
      for (EventTypeId t : p) {
        std::set<NodeId> nodes;
        for (const SharingContext::Placement& pl : it->second) {
          if (pl.part_type == static_cast<int>(t)) nodes.insert(pl.node);
        }
        const std::vector<NodeId>& producers = net_.Producers(t);
        if (producers.empty() ||
            !std::all_of(producers.begin(), producers.end(),
                         [&](NodeId n) { return nodes.count(n) != 0; })) {
          continue;
        }
        PlacedGraph pg;
        for (NodeId n : producers) {
          pg.sinks.push_back(pg.graph.AddVertex(
              PlanVertex{query_, p, n, static_cast<int>(t), true}));
        }
        pg.cost = 0;
        pg.multi_sink = true;
        pg.part_type = static_cast<int>(t);
        UpdateIfCheaper(TableKey{p.bits(), static_cast<int>(t)},
                        std::move(pg));
      }
      // Single-sink reuse: pick the first full-cover placement.
      for (const SharingContext::Placement& pl : it->second) {
        if (pl.part_type != kNoPartition) continue;
        PlacedGraph pg;
        pg.sinks.push_back(pg.graph.AddVertex(
            PlanVertex{query_, p, pl.node, kNoPartition, true}));
        pg.cost = 0;
        pg.multi_sink = false;
        pg.part_type = kNoPartition;
        UpdateIfCheaper(TableKey{p.bits(), static_cast<int>(p.First())},
                        std::move(pg));
        break;
      }
    }
  }

  void UpdateIfCheaper(const TableKey& key, PlacedGraph&& pg) {
    auto it = table_.find(key);
    if (it == table_.end() || pg.cost < it->second.cost) {
      table_[key] = std::move(pg);
    }
  }

  const PlacedGraph* Lookup(TypeSet proj, int po) const {
    auto it = table_.find({proj.bits(), po});
    return it == table_.end() ? nullptr : &it->second;
  }

  /// Cheapest table entry for `proj` across placement options; +inf if
  /// none.
  double MinEntryCost(TypeSet proj) const {
    double best = std::numeric_limits<double>::infinity();
    for (EventTypeId po : proj) {
      const PlacedGraph* pg = Lookup(proj, static_cast<int>(po));
      if (pg != nullptr) best = std::min(best, pg->cost);
    }
    return best;
  }

  bool TargetBudgetExhausted(int constructed_this_target) const {
    return per_target_budget_ != 0 &&
           constructed_this_target >= per_target_budget_;
  }

  /// The primitive combination for `target`, if it respects the negation
  /// grouping rules; std::nullopt otherwise.
  std::optional<Combination> PrimitiveCombination(TypeSet target) const {
    Combination prim;
    prim.target = target;
    for (EventTypeId t : target) {
      TypeSet single = TypeSet::Of(t);
      for (TypeSet group : negated_groups_) {
        if (group.IsProperSubsetOf(target) && single.Intersects(group) &&
            single != group) {
          return std::nullopt;
        }
      }
      prim.parts.push_back(single);
    }
    return prim;
  }

  /// Enumerates the combinations considered for `target` (Alg. 2 lines
  /// 5-9); pure in the settled candidate set, so targets can enumerate
  /// concurrently on the parallel path.
  std::vector<Combination> EnumerateForTarget(TypeSet target) const {
    std::vector<TypeSet> parts_pool;
    for (TypeSet p : candidates_) {
      if (p.IsProperSubsetOf(target)) parts_pool.push_back(p);
    }
    return EnumerateCombinations(target, parts_pool, negated_groups_,
                                 options_.combo);
  }

  /// Visitation order shared by the serial and parallel paths: the
  /// primitive combination first and unconditionally — it keeps the gather
  /// plan in the search space even if the enumeration cap truncated it
  /// (Π_ben always contains the primitive projections) — then ascending
  /// total input volume (stable on enumeration order), so the lower-bound
  /// rejection in ConstructCandidate prunes the tail.
  std::vector<const Combination*> OrderCombinations(
      const std::vector<Combination>& combos,
      const std::optional<Combination>& prim) const {
    std::vector<double> volumes;
    volumes.reserve(combos.size());
    for (const Combination& c : combos) {
      double total = 0;
      for (TypeSet part : c.parts) {
        total += catalog_.Rate(part) * catalog_.Bindings(part);
      }
      volumes.push_back(total);
    }
    std::vector<size_t> order(combos.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return volumes[a] < volumes[b];
    });
    std::vector<const Combination*> ordered;
    ordered.reserve(combos.size() + 1);
    if (prim.has_value()) ordered.push_back(&*prim);
    for (size_t i : order) ordered.push_back(&combos[i]);
    return ordered;
  }

  /// Alg. 3 lines 3-16 for one target projection.
  void PlaceProjection(TypeSet target) {
    std::vector<Combination> combos;
    {
      PhaseTimer timer(&stats_.enumerate_seconds);
      combos = EnumerateForTarget(target);
    }
    stats_.combinations_enumerated += static_cast<int>(combos.size());
    PhaseTimer timer(&stats_.construct_seconds);

    std::optional<Combination> prim = PrimitiveCombination(target);
    std::vector<const Combination*> ordered = OrderCombinations(combos, prim);

    int stagnation = 0;
    int constructed = 0;
    bool first = true;
    for (const Combination* cp : ordered) {
      const Combination& c = *cp;
      // The first (primitive) combination is always processed; search
      // budgets only bound the exploration beyond it.
      if (!first && TargetBudgetExhausted(constructed)) break;
      if (!first && options_.stagnation_limit != 0 &&
          stagnation > options_.stagnation_limit) {
        break;
      }
      first = false;
      bool improved = false;

      int part_input = options_.enable_multi_sink
                           ? FindPartitioningInput(catalog_, c)
                           : -1;
      if (part_input >= 0) {
        // Partitioning multi-sink placement (Alg. 3 lines 5-10): the
        // partitioning input's matches are never sent over the network.
        TypeSet estar = c.parts[part_input];
        for (EventTypeId po : estar) {
          const PlacedGraph* pre = Lookup(estar, static_cast<int>(po));
          if (pre == nullptr || !IsFullPartitionedCover(*pre, po)) continue;
          improved |= ConstructCandidate(target, c, part_input,
                                         static_cast<int>(po),
                                         /*multi_sink=*/true, &constructed);
        }
      }
      // Single-sink placements anchored at each predecessor's placement
      // options (Alg. 3 lines 11-16). Unlike the paper's pseudo-code we
      // construct these even when a partitioning input exists and let the
      // exact graph cost decide: Eq. 6 does not account for broadcasting
      // the other parts to every sink, so with many sinks a single-sink
      // placement can win despite Eq. 6 holding.
      for (size_t ei = 0; ei < c.parts.size(); ++ei) {
        if (options_.star &&
            !StarAllowsPredecessor(catalog_, target, c.parts[ei])) {
          continue;
        }
        for (EventTypeId po : c.parts[ei]) {
          if (Lookup(c.parts[ei], static_cast<int>(po)) == nullptr) {
            continue;
          }
          improved |= ConstructCandidate(target, c, static_cast<int>(ei),
                                         static_cast<int>(po),
                                         /*multi_sink=*/false, &constructed);
        }
      }
      stagnation = improved ? 0 : stagnation + 1;
    }
  }

  // -- muse-par: deterministic parallel search -------------------------------
  //
  // The serial planner interleaves candidate *evaluation* (phase-1 charge
  // costing) with table mutation. Evaluation, however, reads only table
  // entries of proper subsets of the current target — entries that are
  // settled before the target is processed — while mutation touches only
  // the target's own (target, PO) buckets. That makes evaluation a pure
  // function of the settled state: batches of candidates are costed
  // concurrently, then *replayed* strictly in the serial visitation order,
  // reproducing every table write, tie-break and counter of the serial
  // planner bit for bit. The bucket-dependent decisions the serial code
  // takes mid-evaluation are equivalent to their replay forms:
  //  * the lower-bound early exit rejects iff bucket_cost <= full lb
  //    (a partial max only stops growing once it already exceeds the
  //    bucket);
  //  * the mid-phase-1 "already beaten" discard fires iff the *final*
  //    cost >= bucket_cost, because charge totals grow monotonically
  //    under nonnegative Add/MergeFrom.
  // Speculation is bounded to one batch: evaluations past an early
  // stagnation/budget break are discarded and counted (par_wasted_evals).

  /// One candidate of a combination, in serial visitation order.
  struct CandRef {
    const Combination* combo;
    int anchor;  // index into combo->parts
    int po;      // placement option of the anchor
    bool multi_sink;
  };

  /// Worker-computed, bucket-independent half of a candidate's
  /// construction.
  struct CandEval {
    double lb = 0;  // full lower bound over the parts' cheapest entries
    double cost = std::numeric_limits<double>::infinity();
    bool feasible = false;  // every non-anchor part had a placed entry
    std::vector<int> chosen;
    std::vector<NodeId> sink_nodes;
    ChargeSet charges;
  };

  /// Appends `c`'s candidates in exactly the order the serial loop invokes
  /// ConstructCandidate. All filters (partitioning input, full partitioned
  /// cover, star predecessor, placed-entry lookups) read settled state
  /// only, so refs built for a whole batch stay valid across the batch's
  /// replay.
  void AppendCandidateRefs(const Combination& c,
                           std::vector<CandRef>* out) const {
    int part_input = options_.enable_multi_sink
                         ? FindPartitioningInput(catalog_, c)
                         : -1;
    if (part_input >= 0) {
      TypeSet estar = c.parts[part_input];
      for (EventTypeId po : estar) {
        const PlacedGraph* pre = Lookup(estar, static_cast<int>(po));
        if (pre == nullptr || !IsFullPartitionedCover(*pre, po)) continue;
        out->push_back(
            CandRef{&c, part_input, static_cast<int>(po), /*multi_sink=*/true});
      }
    }
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (options_.star &&
          !StarAllowsPredecessor(catalog_, c.target, c.parts[ei])) {
        continue;
      }
      for (EventTypeId po : c.parts[ei]) {
        if (Lookup(c.parts[ei], static_cast<int>(po)) == nullptr) continue;
        out->push_back(CandRef{&c, static_cast<int>(ei), static_cast<int>(po),
                               /*multi_sink=*/false});
      }
    }
  }

  /// Worker-side half of ConstructCandidate: everything that neither reads
  /// nor writes the target's table bucket. The arithmetic sequence
  /// (charge-set copies, Add/MergeFrom order, marginal-cost scans with
  /// strict-< tie-breaking over ascending placement options) is identical
  /// to the serial phase 1, so an accepted candidate's charges and cost
  /// are bit-identical to what the serial planner would have computed.
  CandEval EvaluateCandidate(TypeSet target, const CandRef& ref) const {
    const Combination& c = *ref.combo;
    const PlacedGraph* pre = Lookup(c.parts[ref.anchor], ref.po);
    MUSE_CHECK(pre != nullptr, "anchor entry missing");
    CandEval e;
    e.lb = pre->cost;
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (static_cast<int>(ei) == ref.anchor) continue;
      e.lb = std::max(e.lb, MinEntryCost(c.parts[ei]));
    }
    if (ref.multi_sink) {
      std::set<NodeId> nodes;
      for (int s : pre->sinks) nodes.insert(pre->graph.vertex(s).node);
      e.sink_nodes.assign(nodes.begin(), nodes.end());
    } else {
      e.sink_nodes.push_back(ChooseSinkNode(*pre, target));
    }
    ChargeSet charges = pre->charges;
    if (!ref.multi_sink) {
      for (const auto& [key, weight] : ConnectionCharges(*pre, e.sink_nodes)) {
        charges.Add(key, weight);
      }
    }
    e.chosen.assign(c.parts.size(), -1);
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (static_cast<int>(ei) == ref.anchor) continue;
      TypeSet part = c.parts[ei];
      double best_marginal = std::numeric_limits<double>::infinity();
      const PlacedGraph* best_pre = nullptr;
      for (EventTypeId po2 : part) {
        const PlacedGraph* pre2 = Lookup(part, static_cast<int>(po2));
        if (pre2 == nullptr) continue;
        double marginal = charges.MarginalCost(
            pre2->charges, ConnectionCharges(*pre2, e.sink_nodes));
        if (marginal < best_marginal) {
          best_marginal = marginal;
          best_pre = pre2;
          e.chosen[ei] = static_cast<int>(po2);
        }
      }
      if (best_pre == nullptr) return e;  // part unplaceable
      charges.MergeFrom(best_pre->charges);
      for (const auto& [key, weight] :
           ConnectionCharges(*best_pre, e.sink_nodes)) {
        charges.Add(key, weight);
      }
    }
    e.feasible = true;
    e.cost = charges.total();
    e.charges = std::move(charges);
    return e;
  }

  /// Orchestrator-side half of ConstructCandidate: the bucket-dependent
  /// accept/reject decisions and the phase-2 materialization, executed in
  /// serial visitation order. Counter increments mirror ConstructCandidate
  /// exactly (one lb_rejection, or graphs_constructed followed by either
  /// one graphs_discarded or a table write).
  bool ApplyCandidate(TypeSet target, const CandRef& ref, CandEval&& e,
                      int* constructed) {
    auto bucket = table_.find(TableKey{target.bits(), ref.po});
    const double bucket_cost = bucket == table_.end()
                                   ? std::numeric_limits<double>::infinity()
                                   : bucket->second.cost;
    if (bucket_cost <= e.lb) {
      ++stats_.lb_rejections;
      return false;
    }
    ++stats_.graphs_constructed;
    ++*constructed;
    if (!e.feasible || e.cost >= bucket_cost) {
      ++stats_.graphs_discarded;
      return false;
    }

    const Combination& c = *ref.combo;
    const PlacedGraph* pre = Lookup(c.parts[ref.anchor], ref.po);
    PlacedGraph pg;
    pg.graph = pre->graph;
    pg.multi_sink = ref.multi_sink;
    pg.part_type = ref.multi_sink ? ref.po : kNoPartition;
    std::map<NodeId, int> sink_at_node;
    for (NodeId n : e.sink_nodes) {
      int idx = pg.graph.AddVertex(PlanVertex{
          query_, target, n, ref.multi_sink ? ref.po : kNoPartition, false});
      pg.sinks.push_back(idx);
      sink_at_node[n] = idx;
    }
    for (int s : pre->sinks) {
      if (ref.multi_sink) {
        auto it = sink_at_node.find(pre->graph.vertex(s).node);
        MUSE_CHECK(it != sink_at_node.end(), "partition sink missing");
        pg.graph.AddEdge(s, it->second);  // local edge
      } else {
        pg.graph.AddEdge(s, pg.sinks[0]);
      }
    }
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (static_cast<int>(ei) == ref.anchor) continue;
      const PlacedGraph* pre2 = Lookup(c.parts[ei], e.chosen[ei]);
      MUSE_CHECK(pre2 != nullptr, "chosen option disappeared");
      std::vector<int> remap = pg.graph.Merge(pre2->graph);
      for (int s2 : pre2->sinks) {
        for (int sink : pg.sinks) pg.graph.AddEdge(remap[s2], sink);
      }
    }
    MUSE_DCHECK(SinksCorrectlyCombined(pg, target),
                "materialized candidate wires an incorrect combination");
    pg.charges = std::move(e.charges);
    pg.cost = e.cost;
    table_[TableKey{target.bits(), ref.po}] = std::move(pg);
    return true;
  }

  /// Parallel planning path: pre-enumerates every target's combinations
  /// concurrently (enumeration is pure in the settled candidate set), then
  /// processes targets in the serial order with batched parallel costing.
  void PlaceTargetsParallel(const std::vector<TypeSet>& targets,
                            ThreadPool& pool) {
    std::vector<std::vector<Combination>> combos(targets.size());
    {
      PhaseTimer timer(&stats_.enumerate_seconds);
      pool.ParallelFor(
          static_cast<int>(targets.size()),
          [&](int, int i) {
            combos[static_cast<size_t>(i)] =
                EnumerateForTarget(targets[static_cast<size_t>(i)]);
          },
          /*chunk=*/1);
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      stats_.combinations_enumerated += static_cast<int>(combos[i].size());
      PlaceProjectionParallel(targets[i], combos[i], pool);
    }
  }

  /// Alg. 3 lines 3-16 for one target, parallel edition: batches of
  /// combinations are costed concurrently, then replayed serially with the
  /// exact budget/stagnation semantics of PlaceProjection.
  void PlaceProjectionParallel(TypeSet target,
                               const std::vector<Combination>& combos,
                               ThreadPool& pool) {
    PhaseTimer timer(&stats_.construct_seconds);
    std::optional<Combination> prim = PrimitiveCombination(target);
    std::vector<const Combination*> ordered = OrderCombinations(combos, prim);

    // Candidates per evaluation batch; large enough to feed every executor
    // several heavy costing units, small enough to bound wasted
    // speculation past an early break.
    const size_t batch_target = 16 * static_cast<size_t>(pool.num_slots());
    std::vector<PlannerStats> worker_stats(
        static_cast<size_t>(pool.num_slots()));

    int stagnation = 0;
    int constructed = 0;
    bool first = true;
    bool stopped = false;
    size_t next = 0;
    while (next < ordered.size() && !stopped) {
      std::vector<CandRef> refs;
      // Candidate index range in `refs` per combination of the batch.
      std::vector<std::pair<size_t, size_t>> spans;
      size_t batch_end = next;
      while (batch_end < ordered.size() &&
             (spans.empty() || refs.size() < batch_target)) {
        const size_t begin = refs.size();
        AppendCandidateRefs(*ordered[batch_end], &refs);
        spans.emplace_back(begin, refs.size());
        ++batch_end;
      }
      std::vector<CandEval> evals(refs.size());
      if (!refs.empty()) {
        ++stats_.par_batches;
        pool.ParallelFor(
            static_cast<int>(refs.size()),
            [&](int worker, int i) {
              const auto eval_started = std::chrono::steady_clock::now();
              evals[static_cast<size_t>(i)] =
                  EvaluateCandidate(target, refs[static_cast<size_t>(i)]);
              PlannerStats& ws = worker_stats[static_cast<size_t>(worker)];
              ++ws.par_tasks;
              ws.par_eval_seconds +=
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - eval_started)
                      .count();
            },
            /*chunk=*/1);
      }
      for (size_t k = next; k < batch_end; ++k) {
        // The first (primitive) combination is always processed; search
        // budgets only bound the exploration beyond it.
        if (!first && (TargetBudgetExhausted(constructed) ||
                       (options_.stagnation_limit != 0 &&
                        stagnation > options_.stagnation_limit))) {
          stopped = true;
          stats_.par_wasted_evals +=
              static_cast<int>(refs.size() - spans[k - next].first);
          break;
        }
        first = false;
        bool improved = false;
        const auto [begin, end] = spans[k - next];
        for (size_t r = begin; r < end; ++r) {
          improved |=
              ApplyCandidate(target, refs[r], std::move(evals[r]),
                             &constructed);
        }
        stagnation = improved ? 0 : stagnation + 1;
      }
      next = batch_end;
    }
    // Worker-side stats carry counters and CPU time only; the wall-clock
    // phase fields stay with the orchestrator's PhaseTimer above.
    for (const PlannerStats& ws : worker_stats) ws.MergeWorker(&stats_);
  }

  /// True if `pre` is partitioned on `po` with a sink at *every* producer
  /// of `po` — the precondition for anchoring a partitioning multi-sink
  /// placement on it (each sink then has its partitioning input locally).
  bool IsFullPartitionedCover(const PlacedGraph& pre, EventTypeId po) const {
    if (!pre.multi_sink || pre.part_type != static_cast<int>(po)) {
      return false;
    }
    std::set<NodeId> nodes;
    for (int s : pre.sinks) nodes.insert(pre.graph.vertex(s).node);
    for (NodeId n : net_.Producers(po)) {
      if (nodes.count(n) == 0) return false;
    }
    return true;
  }

  /// getSSP (Alg. 3 lines 23-26): choose the sink node of the anchor's
  /// graph for the single-sink placement, preferring the node whose local
  /// share of the target's input rate is largest (favoring local edges).
  NodeId ChooseSinkNode(const PlacedGraph& pre, TypeSet target) const {
    NodeId best = pre.graph.vertex(pre.sinks.front()).node;
    double best_score = -1;
    for (int s : pre.sinks) {
      NodeId n = pre.graph.vertex(s).node;
      // Score = input rate of the target that reaches n for free: locally
      // produced streams, plus streams earlier queries already routed to n
      // (§6.2 — this is what pulls related queries onto shared sinks).
      double score = 0;
      for (EventTypeId t : target) {
        const double rate = net_.Rate(t);
        const uint64_t sig = catalog_.SignatureHash(TypeSet::Of(t));
        for (NodeId m : net_.Producers(t)) {
          if (m == n) {
            score += rate;
          } else if (ctx_ != nullptr &&
                     ctx_->paid_transfers.count(TransferKeyHash(
                         sig, static_cast<int>(t), m, n)) != 0) {
            score += rate;
          }
        }
      }
      if (score > best_score || (score == best_score && n < best)) {
        best = n;
        best_score = score;
      }
    }
    return best;
  }

  /// Connection charges of delivering `pre`'s sink streams to the target's
  /// sink nodes, as (key, weight) pairs (local deliveries and already-paid
  /// transfers excluded).
  std::vector<std::pair<uint64_t, double>> ConnectionCharges(
      const PlacedGraph& pre, const std::vector<NodeId>& sink_nodes) const {
    std::vector<std::pair<uint64_t, double>> out;
    for (int s : pre.sinks) {
      const PlanVertex& src = pre.graph.vertex(s);
      for (NodeId dst : sink_nodes) {
        if (src.node == dst) continue;
        uint64_t key = TransferKeyHash(catalog_.SignatureHash(src.proj),
                                       src.part_type, src.node, dst);
        if (ctx_ != nullptr && ctx_->paid_transfers.count(key) != 0) {
          continue;
        }
        out.emplace_back(key, StreamWeight(catalog_, src));
      }
    }
    return out;
  }

  /// ConstructSubgraph (Alg. 3 lines 27-44): assemble the candidate for
  /// `target` anchored at part `anchor` with placement option `po`.
  /// Phase 1 costs the candidate purely on charge sets, greedily picking,
  /// per remaining part, the placement option with the smallest marginal
  /// cost (Alg. 3 lines 34-44); the merged graph is only materialized if
  /// the candidate improves on its table bucket. Returns true on
  /// improvement.
  bool ConstructCandidate(TypeSet target, const Combination& c, int anchor,
                          int po, bool multi_sink, int* constructed) {
    const PlacedGraph* pre = Lookup(c.parts[anchor], po);
    MUSE_CHECK(pre != nullptr, "anchor entry missing");

    auto bucket = table_.find(TableKey{target.bits(), po});
    const double bucket_cost = bucket == table_.end()
                                   ? std::numeric_limits<double>::infinity()
                                   : bucket->second.cost;

    // Lower-bound rejection: the candidate's charge set is a superset of
    // each sub-plan's, so its cost is at least every part's cheapest
    // entry.
    double lb = pre->cost;
    for (size_t ei = 0; ei < c.parts.size() && lb < bucket_cost; ++ei) {
      if (static_cast<int>(ei) == anchor) continue;
      lb = std::max(lb, MinEntryCost(c.parts[ei]));
    }
    if (bucket_cost <= lb) {
      ++stats_.lb_rejections;
      return false;
    }
    // Only real charge-set assemblies count toward budgets; lower-bound
    // rejections above are nearly free.
    ++stats_.graphs_constructed;
    ++*constructed;

    // Sink nodes of the candidate.
    std::vector<NodeId> sink_nodes;
    if (multi_sink) {
      std::set<NodeId> nodes;
      for (int s : pre->sinks) nodes.insert(pre->graph.vertex(s).node);
      sink_nodes.assign(nodes.begin(), nodes.end());
    } else {
      sink_nodes.push_back(ChooseSinkNode(*pre, target));
    }

    // Phase 1: cost on charge sets; record the chosen option per part.
    ChargeSet charges = pre->charges;
    if (!multi_sink) {
      // Anchor sinks deliver to the single target node; for multi-sink
      // anchors the partitioning input stays local (pairwise edges).
      for (const auto& [key, weight] : ConnectionCharges(*pre, sink_nodes)) {
        charges.Add(key, weight);
      }
    }
    std::vector<int> chosen(c.parts.size(), -1);
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (static_cast<int>(ei) == anchor) continue;
      TypeSet part = c.parts[ei];
      double best_marginal = std::numeric_limits<double>::infinity();
      const PlacedGraph* best_pre = nullptr;
      for (EventTypeId po2 : part) {
        const PlacedGraph* pre2 = Lookup(part, static_cast<int>(po2));
        if (pre2 == nullptr) continue;
        double marginal = charges.MarginalCost(
            pre2->charges, ConnectionCharges(*pre2, sink_nodes));
        if (marginal < best_marginal) {
          best_marginal = marginal;
          best_pre = pre2;
          chosen[ei] = static_cast<int>(po2);
        }
      }
      if (best_pre == nullptr) {
        ++stats_.graphs_discarded;  // part unplaceable
        return false;
      }
      charges.MergeFrom(best_pre->charges);
      for (const auto& [key, weight] :
           ConnectionCharges(*best_pre, sink_nodes)) {
        charges.Add(key, weight);
      }
      if (charges.total() >= bucket_cost) {
        ++stats_.graphs_discarded;  // already beaten
        return false;
      }
    }

    const double cost = charges.total();
    if (cost >= bucket_cost) {
      ++stats_.graphs_discarded;
      return false;
    }

    // Phase 2: materialize the winning candidate.
    PlacedGraph pg;
    pg.graph = pre->graph;
    pg.multi_sink = multi_sink;
    pg.part_type = multi_sink ? po : kNoPartition;
    std::map<NodeId, int> sink_at_node;
    for (NodeId n : sink_nodes) {
      int idx = pg.graph.AddVertex(PlanVertex{
          query_, target, n, multi_sink ? po : kNoPartition, false});
      pg.sinks.push_back(idx);
      sink_at_node[n] = idx;
    }
    for (int s : pre->sinks) {
      if (multi_sink) {
        auto it = sink_at_node.find(pre->graph.vertex(s).node);
        MUSE_CHECK(it != sink_at_node.end(), "partition sink missing");
        pg.graph.AddEdge(s, it->second);  // local edge
      } else {
        pg.graph.AddEdge(s, pg.sinks[0]);
      }
    }
    for (size_t ei = 0; ei < c.parts.size(); ++ei) {
      if (static_cast<int>(ei) == anchor) continue;
      const PlacedGraph* pre2 = Lookup(c.parts[ei], chosen[ei]);
      MUSE_CHECK(pre2 != nullptr, "chosen option disappeared");
      std::vector<int> remap = pg.graph.Merge(pre2->graph);
      for (int s2 : pre2->sinks) {
        for (int sink : pg.sinks) pg.graph.AddEdge(remap[s2], sink);
      }
    }
    MUSE_DCHECK(SinksCorrectlyCombined(pg, target),
                "materialized candidate wires an incorrect combination");
    pg.charges = std::move(charges);
    pg.cost = cost;
    table_[TableKey{target.bits(), po}] = std::move(pg);
    return true;
  }

  /// Debug-build postcondition of candidate materialization: every sink's
  /// distinct predecessor projections form a correct combination of the
  /// target (Def. 6).
  bool SinksCorrectlyCombined(const PlacedGraph& pg, TypeSet target) const {
    for (int s : pg.sinks) {
      std::set<uint64_t> seen;
      std::vector<TypeSet> parts;
      for (int pi : pg.graph.Predecessors(s)) {
        TypeSet p = pg.graph.vertex(pi).proj;
        if (seen.insert(p.bits()).second) parts.push_back(p);
      }
      if (!IsCorrectCombination(Combination{target, parts})) return false;
    }
    return true;
  }

  /// Fallback plan: every primitive stream of the query is shipped to the
  /// single node where the total is cheapest. Always correct.
  PlacedGraph BuildGatherFallback(TypeSet full) {
    PlacedGraph best;
    for (NodeId n = 0; n < static_cast<NodeId>(net_.num_nodes()); ++n) {
      PlacedGraph pg;
      int sink = pg.graph.AddVertex(
          PlanVertex{query_, full, n, kNoPartition, false});
      pg.sinks.push_back(sink);
      for (EventTypeId t : full) {
        for (NodeId producer : net_.Producers(t)) {
          int idx = pg.graph.AddVertex(PlanVertex{
              query_, TypeSet::Of(t), producer, static_cast<int>(t), false});
          pg.graph.AddEdge(idx, sink);
        }
      }
      pg.cost = GraphCost(pg.graph, catalogs_, ctx_);
      if (pg.cost < best.cost) best = std::move(pg);
    }
    return best;
  }

  const ProjectionCatalog& catalog_;
  const Network& net_;
  PlannerOptions options_;
  SharingContext* ctx_;
  int query_;
  std::vector<const ProjectionCatalog*> catalogs_;

  std::vector<TypeSet> negated_groups_;
  std::vector<TypeSet> candidates_;
  std::map<TableKey, PlacedGraph> table_;
  PlannerStats stats_;
  int per_target_budget_ = 0;
};

}  // namespace

void PlannerStats::AddTo(PlannerStats* total) const {
  MergeWorker(total);
  total->select_seconds += select_seconds;
  total->enumerate_seconds += enumerate_seconds;
  total->construct_seconds += construct_seconds;
  total->elapsed_seconds += elapsed_seconds;
}

void PlannerStats::MergeWorker(PlannerStats* total) const {
  total->projections_total += projections_total;
  total->projections_considered += projections_considered;
  total->pruned_beneficial += pruned_beneficial;
  total->pruned_star += pruned_star;
  total->combinations_enumerated += combinations_enumerated;
  total->graphs_constructed += graphs_constructed;
  total->graphs_discarded += graphs_discarded;
  total->lb_rejections += lb_rejections;
  total->par_tasks += par_tasks;
  total->par_batches += par_batches;
  total->par_wasted_evals += par_wasted_evals;
  total->par_eval_seconds += par_eval_seconds;
  // Deliberately NOT summed: select/enumerate/construct/elapsed_seconds.
  // A worker's view of the parallel region covers the same wall-clock
  // interval the orchestrator's PhaseTimer already measured; summing would
  // multiply the phase times by the worker count.
}

void PlannerStats::ExportTo(obs::MetricsRegistry* registry,
                            const std::string& algorithm) const {
  if (registry == nullptr) return;
  const obs::LabelSet labels{{"algorithm", algorithm}};
  auto count = [&](const char* name, int v) {
    registry->GetCounter(name, labels)->Add(static_cast<uint64_t>(v));
  };
  count("planner_projections_total", projections_total);
  count("planner_projections_considered_total", projections_considered);
  count("planner_pruned_beneficial_total", pruned_beneficial);
  count("planner_pruned_star_total", pruned_star);
  count("planner_combinations_enumerated_total", combinations_enumerated);
  count("planner_graphs_constructed_total", graphs_constructed);
  count("planner_graphs_discarded_total", graphs_discarded);
  count("planner_lb_rejections_total", lb_rejections);
  count("planner_par_tasks_total", par_tasks);
  count("planner_par_batches_total", par_batches);
  count("planner_par_wasted_evals_total", par_wasted_evals);
  count("planner_queries_planned_total", 1);
  // Phase wall times accumulate across queries as gauges (Add).
  registry->GetGauge("planner_select_seconds", labels)->Add(select_seconds);
  registry->GetGauge("planner_enumerate_seconds", labels)
      ->Add(enumerate_seconds);
  registry->GetGauge("planner_construct_seconds", labels)
      ->Add(construct_seconds);
  registry->GetGauge("planner_elapsed_seconds", labels)->Add(elapsed_seconds);
  registry->GetGauge("planner_par_eval_seconds", labels)
      ->Add(par_eval_seconds);
}

PlanResult PlanQuery(const ProjectionCatalog& catalog,
                     const PlannerOptions& options, SharingContext* ctx,
                     int query_index) {
  std::string why;
  MUSE_CHECK(catalog.query().Validate(&why), "invalid query for planning");
  MUSE_CHECK(!catalog.query().ContainsOr(),
             "split OR queries before planning (SplitDisjunctions)");
  return AmusePlanner(catalog, options, ctx, query_index).Run();
}

}  // namespace muse
