#include "src/core/rates.h"

#include "src/common/check.h"

namespace muse {

double OperatorOutputRate(const Query& q, int op_idx, const Network& net) {
  const QueryOp& op = q.op(op_idx);
  switch (op.kind) {
    case OpKind::kPrimitive:
      return net.Rate(op.type);
    case OpKind::kSeq: {
      double rate = 1.0;
      for (int child : op.children) {
        rate *= OperatorOutputRate(q, child, net);
      }
      return rate;
    }
    case OpKind::kAnd: {
      double rate = static_cast<double>(op.children.size());
      for (int child : op.children) {
        rate *= OperatorOutputRate(q, child, net);
      }
      return rate;
    }
    case OpKind::kNseq:
      return OperatorOutputRate(q, op.children[0], net) *
             OperatorOutputRate(q, op.children[2], net);
    case OpKind::kOr:
      // Workloads are OR-free (§2.2); OR queries are split beforehand.
      MUSE_CHECK(false, "output rate undefined for OR; split the query");
  }
  return 0;
}

double QueryOutputRate(const Query& q, const Network& net) {
  return q.Selectivity() * OperatorOutputRate(q, q.root(), net);
}

}  // namespace muse
