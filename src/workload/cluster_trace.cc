#include "src/workload/cluster_trace.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/net/trace.h"

namespace muse {
namespace {

const char* const kTypeNames[] = {
    "Submit", "Queue",  "Enable", "Schedule",     "Evict",
    "Fail",   "Finish", "Kill",   "UpdatePending"};
constexpr int kNumClusterTypes = 9;

/// Estimated selectivity of an equality predicate on an id attribute:
/// the probability that two random events agree, ~1/#distinct values.
double IdSelectivity(uint64_t distinct) {
  return distinct == 0 ? 1.0 : 1.0 / static_cast<double>(distinct);
}

}  // namespace

EventTypeId ClusterTrace::type(const char* name) const {
  int id = registry.Find(name);
  MUSE_CHECK(id >= 0, "unknown cluster event type");
  return static_cast<EventTypeId>(id);
}

Query ClusterTrace::MakeQuery1() const {
  const EventTypeId fail = type("Fail");
  const EventTypeId evict = type("Evict");
  const EventTypeId kill = type("Kill");
  const EventTypeId update = type("UpdatePending");
  std::vector<Query> children;
  children.push_back(Query::Primitive(fail));
  children.push_back(Query::Primitive(evict));
  children.push_back(Query::Primitive(kill));
  children.push_back(Query::Primitive(update));
  Query q = Query::Seq(std::move(children));
  q.set_window(window_ms);
  const double sel = IdSelectivity(task_count);
  q.AddPredicate(Predicate::Equality(fail, 0, evict, 0, sel));
  q.AddPredicate(Predicate::Equality(evict, 0, kill, 0, sel));
  q.AddPredicate(Predicate::Equality(kill, 0, update, 0, sel));
  return q;
}

Query ClusterTrace::MakeQuery2() const {
  const EventTypeId finish = type("Finish");
  const EventTypeId fail = type("Fail");
  const EventTypeId kill = type("Kill");
  const EventTypeId update = type("UpdatePending");
  std::vector<Query> children;
  children.push_back(Query::Primitive(finish));
  children.push_back(Query::Primitive(fail));
  children.push_back(Query::Primitive(kill));
  children.push_back(Query::Primitive(update));
  Query q = Query::And(std::move(children));
  q.set_window(window_ms);
  const double sel = IdSelectivity(job_count);
  q.AddPredicate(Predicate::Equality(finish, 1, fail, 1, sel));
  q.AddPredicate(Predicate::Equality(fail, 1, kill, 1, sel));
  q.AddPredicate(Predicate::Equality(kill, 1, update, 1, sel));
  return q;
}

ClusterTrace GenerateClusterTrace(const ClusterTraceOptions& options,
                                  Rng& rng) {
  ClusterTrace out;
  for (const char* name : kTypeNames) out.registry.Intern(name);
  out.duration_ms = options.duration_ms;
  out.window_ms = options.window_ms;

  // Machines partitioned randomly onto nodes (as the paper partitions the
  // 12.3k machines into 20 sets).
  std::vector<NodeId> machine_node(options.num_machines);
  for (int m = 0; m < options.num_machines; ++m) {
    machine_node[m] =
        static_cast<NodeId>(rng.UniformInt(0, options.num_nodes - 1));
  }

  auto type_id = [&](const char* name) {
    return static_cast<EventTypeId>(out.registry.Find(name));
  };
  const EventTypeId kSubmit = type_id("Submit");
  const EventTypeId kQueue = type_id("Queue");
  const EventTypeId kEnable = type_id("Enable");
  const EventTypeId kSchedule = type_id("Schedule");
  const EventTypeId kEvict = type_id("Evict");
  const EventTypeId kFail = type_id("Fail");
  const EventTypeId kFinish = type_id("Finish");
  const EventTypeId kKill = type_id("Kill");
  const EventTypeId kUpdate = type_id("UpdatePending");

  int64_t next_job = 1;
  int64_t next_task = 1;

  auto emit = [&](EventTypeId t, int machine, double time_ms, int64_t uid,
                  int64_t jid) {
    if (time_ms >= static_cast<double>(options.duration_ms)) return;
    Event e;
    e.type = t;
    e.origin = machine_node[machine];
    e.time = static_cast<uint64_t>(time_ms);
    e.attrs[0] = uid;
    e.attrs[1] = jid;
    out.events.push_back(e);
  };

  // Job arrivals: Poisson; each job spawns 1..max_tasks_per_job tasks on
  // random machines. Task lifecycles follow the cluster scheduler's state
  // machine: SUBMIT -> QUEUE -> ENABLE -> SCHEDULE -> terminal, where the
  // terminal phase is usually FINISH, sometimes FAIL or KILL, and rarely
  // the troubled path FAIL -> EVICT -> KILL -> UPDATE (rescheduling with
  // updated constraints) that Query 1 monitors.
  double t_ms = 0;
  const double mean_gap_ms = 1000.0 / options.job_rate_per_s;
  while (true) {
    t_ms += rng.Exponential(1.0 / mean_gap_ms);
    if (t_ms >= static_cast<double>(options.duration_ms)) break;
    const int64_t jid = next_job++;
    const int tasks =
        static_cast<int>(rng.UniformInt(1, options.max_tasks_per_job));
    for (int k = 0; k < tasks; ++k) {
      const int64_t uid = next_task++;
      int machine =
          static_cast<int>(rng.UniformInt(0, options.num_machines - 1));
      double ts = t_ms + rng.Exponential(1.0 / 200.0);  // submit offset
      emit(kSubmit, machine, ts, uid, jid);
      ts += rng.Exponential(1.0 / 300.0);
      emit(kQueue, machine, ts, uid, jid);
      ts += rng.Exponential(1.0 / 500.0);
      emit(kEnable, machine, ts, uid, jid);
      ts += rng.Exponential(1.0 / 800.0);
      emit(kSchedule, machine, ts, uid, jid);

      if (rng.Chance(options.troubled_probability)) {
        // Troubled task: the exact pattern of Query 1 on one task id.
        ts += rng.Exponential(1.0 / 5000.0);
        emit(kFail, machine, ts, uid, jid);
        machine =
            static_cast<int>(rng.UniformInt(0, options.num_machines - 1));
        ts += rng.Exponential(1.0 / 8000.0);
        emit(kEvict, machine, ts, uid, jid);
        ts += rng.Exponential(1.0 / 8000.0);
        emit(kKill, machine, ts, uid, jid);
        ts += rng.Exponential(1.0 / 10000.0);
        emit(kUpdate, machine, ts, uid, jid);
        continue;
      }
      // Regular terminal phase.
      ts += rng.Exponential(1.0 / 30000.0);  // run time
      double outcome = rng.Uniform(0, 1);
      if (outcome < 0.80) {
        emit(kFinish, machine, ts, uid, jid);
      } else if (outcome < 0.90) {
        emit(kFail, machine, ts, uid, jid);
        ts += rng.Exponential(1.0 / 2000.0);
        emit(kSchedule, machine, ts, uid, jid);  // retry
        ts += rng.Exponential(1.0 / 30000.0);
        emit(kFinish, machine, ts, uid, jid);
      } else if (outcome < 0.97) {
        emit(kKill, machine, ts, uid, jid);
      } else {
        emit(kEvict, machine, ts, uid, jid);
        ts += rng.Exponential(1.0 / 2000.0);
        emit(kSchedule, machine, ts, uid, jid);
        ts += rng.Exponential(1.0 / 30000.0);
        emit(kFinish, machine, ts, uid, jid);
      }
    }
  }

  out.task_count = static_cast<uint64_t>(next_task - 1);
  out.job_count = static_cast<uint64_t>(next_job - 1);
  FinalizeTraceOrder(&out.events);

  // Extract the event-sourced network: every node may emit every type
  // (event-node ratio 1); per-node rates are measured from the trace.
  out.network = Network(options.num_nodes, kNumClusterTypes);
  std::vector<uint64_t> counts(kNumClusterTypes, 0);
  for (const Event& e : out.events) ++counts[e.type];
  const double duration_s =
      static_cast<double>(options.duration_ms) / 1000.0;
  for (int t = 0; t < kNumClusterTypes; ++t) {
    for (NodeId n = 0; n < static_cast<NodeId>(options.num_nodes); ++n) {
      out.network.AddProducer(n, static_cast<EventTypeId>(t));
    }
    out.network.SetRate(
        static_cast<EventTypeId>(t),
        static_cast<double>(counts[t]) /
            (duration_s * static_cast<double>(options.num_nodes)));
  }
  return out;
}

}  // namespace muse
