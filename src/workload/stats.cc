#include "src/workload/stats.h"

#include <algorithm>

#include "src/common/check.h"

namespace muse {

Network EstimateNetworkFromTrace(const std::vector<Event>& trace,
                                 uint64_t duration_ms, int num_nodes,
                                 int num_types) {
  MUSE_CHECK(duration_ms > 0, "duration must be positive");
  Network net(num_nodes, num_types);
  std::vector<uint64_t> counts(num_types, 0);
  for (const Event& e : trace) {
    if (e.origin >= static_cast<NodeId>(num_nodes) ||
        e.type >= static_cast<EventTypeId>(num_types)) {
      continue;
    }
    net.AddProducer(e.origin, e.type);
    ++counts[e.type];
  }
  const double duration_s = static_cast<double>(duration_ms) / 1000.0;
  for (int t = 0; t < num_types; ++t) {
    const int producers = net.NumProducers(static_cast<EventTypeId>(t));
    if (producers == 0) {
      net.SetRate(static_cast<EventTypeId>(t), 0);
      continue;
    }
    net.SetRate(static_cast<EventTypeId>(t),
                static_cast<double>(counts[t]) / (duration_s * producers));
  }
  return net;
}

std::optional<double> EstimatePairSelectivity(const std::vector<Event>& trace,
                                              EventTypeId a, EventTypeId b,
                                              int attr, uint64_t window_ms,
                                              size_t max_pairs) {
  MUSE_CHECK(attr >= 0 && attr < kNumAttrs, "attr out of range");
  // Sliding scan over the time-ordered trace: for each b-event, pair it
  // with the a-events in the preceding window (and vice versa via the
  // symmetric role swap below).
  size_t pairs = 0;
  size_t agreeing = 0;
  std::vector<const Event*> recent_a;
  std::vector<const Event*> recent_b;
  size_t evict_a = 0;
  size_t evict_b = 0;
  for (const Event& e : trace) {
    if (pairs >= max_pairs) break;
    if (e.type != a && e.type != b) continue;
    // Evict expired partners.
    auto expired = [&](const Event* old) {
      return old->time + window_ms < e.time;
    };
    while (evict_a < recent_a.size() && expired(recent_a[evict_a])) {
      ++evict_a;
    }
    while (evict_b < recent_b.size() && expired(recent_b[evict_b])) {
      ++evict_b;
    }
    const std::vector<const Event*>& partners =
        e.type == a ? recent_b : recent_a;
    const size_t evicted = e.type == a ? evict_b : evict_a;
    for (size_t i = evicted; i < partners.size() && pairs < max_pairs; ++i) {
      ++pairs;
      if (partners[i]->attrs[attr] == e.attrs[attr]) ++agreeing;
    }
    (e.type == a ? recent_a : recent_b).push_back(&e);
  }
  if (pairs == 0) return std::nullopt;  // no evidence, not an estimate
  return static_cast<double>(agreeing) / static_cast<double>(pairs);
}

int CalibrateQuerySelectivities(Query* q, const std::vector<Event>& trace,
                                uint64_t window_ms) {
  std::vector<Predicate> updated;
  int calibrated = 0;
  for (Predicate p : q->predicates()) {
    if (p.kind == Predicate::Kind::kEquality &&
        p.left_attr == p.right_attr) {
      std::optional<double> estimate = EstimatePairSelectivity(
          trace, p.left_type, p.right_type, p.left_attr, window_ms);
      if (estimate.has_value()) {
        p.selectivity = *estimate;
        ++calibrated;
      }
      // else: no observed pairs — keep the modeled prior.
    }
    updated.push_back(p);
  }
  Query rebuilt = Query::FromParts(std::vector<QueryOp>(q->ops()), q->root(),
                                   std::move(updated), q->window());
  *q = std::move(rebuilt);
  return calibrated;
}

}  // namespace muse
