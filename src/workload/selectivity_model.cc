#include "src/workload/selectivity_model.h"

#include "src/common/check.h"

namespace muse {

SelectivityModel::SelectivityModel(int num_types, double min_selectivity,
                                   double max_selectivity, Rng& rng)
    : num_types_(num_types),
      selectivity_(static_cast<size_t>(num_types) * num_types, 1.0) {
  MUSE_CHECK(min_selectivity > 0 && min_selectivity <= max_selectivity,
             "selectivity range");
  for (int a = 0; a < num_types; ++a) {
    for (int b = a + 1; b < num_types; ++b) {
      double s = rng.Uniform(min_selectivity, max_selectivity);
      selectivity_[a * num_types + b] = s;
      selectivity_[b * num_types + a] = s;
    }
  }
}

double SelectivityModel::Get(EventTypeId a, EventTypeId b) const {
  MUSE_CHECK(static_cast<int>(a) < num_types_ &&
                 static_cast<int>(b) < num_types_,
             "type out of range");
  return selectivity_[static_cast<size_t>(a) * num_types_ + b];
}

Predicate SelectivityModel::MakePredicate(EventTypeId a, EventTypeId b) const {
  return Predicate::Equality(a, 0, b, 0, Get(a, b));
}

}  // namespace muse
