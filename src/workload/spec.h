#ifndef MUSE_WORKLOAD_SPEC_H_
#define MUSE_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "src/cep/query.h"
#include "src/cep/type_registry.h"
#include "src/common/result.h"
#include "src/net/network.h"

namespace muse {

/// A parsed deployment specification: the event-sourced network and the
/// query workload to plan for it.
struct DeploymentSpec {
  TypeRegistry registry;
  Network network;
  std::vector<Query> workload;

  /// Cluster peer directory (muse-net): host string per daemon process
  /// index, from `peer <k> <host>` lines. Missing/empty entries mean
  /// 127.0.0.1; the vector is empty when no peer line appears. Hosts are
  /// numeric IPv4 strings — they ride the kPeers wire frame verbatim.
  std::vector<std::string> peer_hosts;

  DeploymentSpec() : network(1, 1) {}
};

/// Parses the line-oriented deployment spec format used by the `muse_plan`
/// CLI (see tools/muse_plan.cc and examples/specs/):
///
///   # comment
///   nodes 3
///   rate C 60            # events per producing node per second
///   rate L 60
///   rate F 0.4
///   produce 0 C F        # node 0 emits types C and F
///   produce 1 C L
///   produce 2 L F
///   capacity 1 5000      # node 1 can evaluate 5000 inputs/s (optional)
///   selectivity C L 0.05 # modeled selectivity for predicates on (C, L)
///   peer 1 127.0.0.1     # daemon 1's mesh host (optional; default shown)
///   query SEQ(AND(C c, L l), F f) WHERE c.a0 == l.a0 WITHIN 1s
///
/// Order constraints: `nodes` must precede `produce`; types are interned on
/// first mention. `query` lines use the full parser syntax (parser.h);
/// WHERE predicates receive the selectivity declared for their type pair
/// (default 0.1). Unknown directives are errors.
///
/// Exact predicates (muse-net): generated workloads carry predicates with
/// attribute indices and selectivities no WHERE clause can express, so a
/// spec may pin them directly — `<q>` is the 0-based index of the query
/// line they attach to (in file order), appended after WHERE parsing:
///
///   predicate 0 eq C 1 L 0 0.05    # C.attrs[1] == L.attrs[0], sel 0.05
///   predicate 0 filter F 1 7       # F.attrs[1] % 7 == 0
///   predicate 1 filter F 1 7 0.2   # same, with explicit selectivity
Result<DeploymentSpec> ParseDeploymentSpec(const std::string& text);

/// Writes a spec that ParseDeploymentSpec round-trips into an equivalent
/// DeploymentSpec: same type interning order (rate lines for every type,
/// in id order), same network, and semantically identical queries — the
/// pattern via Query::ToString + WITHIN, every predicate via exact
/// `predicate` directives. This is how a muse_node daemon receives the
/// workload of a cluster run: coordinator and daemons all parse the same
/// written text, so their compiled Deployments agree task-for-task.
std::string WriteDeploymentSpec(const DeploymentSpec& spec);

}  // namespace muse

#endif  // MUSE_WORKLOAD_SPEC_H_
