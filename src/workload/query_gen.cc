#include "src/workload/query_gen.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace muse {
namespace {

/// Builds a random SEQ/AND (occasionally NSEQ) tree over the given leaf
/// types. `prefer` alternates the operator kind between levels so that the
/// validity rule (no same-kind direct nesting) holds by construction.
Query BuildTree(const std::vector<EventTypeId>& types, size_t lo, size_t hi,
                OpKind prefer, double nseq_probability, Rng& rng) {
  MUSE_CHECK(hi > lo, "empty type range");
  if (hi - lo == 1) return Query::Primitive(types[lo]);

  // NSEQ needs at least 3 leaves: first / negated middle / last.
  if (hi - lo >= 3 && rng.Chance(nseq_probability)) {
    size_t third = (hi - lo) / 3;
    size_t a = lo + std::max<size_t>(1, third);
    size_t b = hi - std::max<size_t>(1, third);
    if (a < b) {
      OpKind child = prefer == OpKind::kSeq ? OpKind::kAnd : OpKind::kSeq;
      return Query::Nseq(BuildTree(types, lo, a, child, 0, rng),
                         BuildTree(types, a, b, child, 0, rng),
                         BuildTree(types, b, hi, child, 0, rng));
    }
  }

  // Split the range into 2..4 consecutive groups.
  size_t leaves = hi - lo;
  size_t groups = static_cast<size_t>(
      rng.UniformInt(2, static_cast<int64_t>(std::min<size_t>(4, leaves))));
  std::vector<size_t> cuts = {lo, hi};
  while (cuts.size() < groups + 1) {
    size_t c = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(lo + 1),
                       static_cast<int64_t>(hi - 1)));
    if (std::find(cuts.begin(), cuts.end(), c) == cuts.end()) {
      cuts.push_back(c);
    }
  }
  std::sort(cuts.begin(), cuts.end());

  OpKind child = prefer == OpKind::kSeq ? OpKind::kAnd : OpKind::kSeq;
  std::vector<Query> children;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i + 1] - cuts[i] == 1) {
      children.push_back(Query::Primitive(types[cuts[i]]));
    } else {
      children.push_back(BuildTree(types, cuts[i], cuts[i + 1], child,
                                   nseq_probability, rng));
    }
  }
  if (children.size() == 1) return std::move(children[0]);
  return prefer == OpKind::kSeq ? Query::Seq(std::move(children))
                                : Query::And(std::move(children));
}

/// Adds the equality predicate for every pair of the query's leaf types
/// (§7.1: "we generate selectivity values for each pair of event types").
/// The query's modeled selectivity is then the product over all contained
/// pairs, and every projection inherits exactly the pairs it retains.
void AddPairPredicates(Query* q, const SelectivityModel& model,
                       double probability, Rng& rng) {
  std::vector<EventTypeId> leaves;
  for (EventTypeId t : q->PrimitiveTypes()) leaves.push_back(t);
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      if (rng.Chance(probability)) {
        q->AddPredicate(model.MakePredicate(leaves[i], leaves[j]));
      }
    }
  }
}

}  // namespace

Query GenerateQuery(const std::vector<EventTypeId>& types,
                    const SelectivityModel& model, uint64_t window_ms,
                    double nseq_probability, Rng& rng) {
  MUSE_CHECK(!types.empty(), "query needs types");
  OpKind top = rng.Chance(0.5) ? OpKind::kSeq : OpKind::kAnd;
  Query q = BuildTree(types, 0, types.size(), top, nseq_probability, rng);
  q.set_window(window_ms);
  AddPairPredicates(&q, model, 1.0, rng);
  std::string why;
  MUSE_CHECK(q.Validate(&why), "generated query invalid");
  return q;
}

std::vector<Query> GenerateWorkload(const QueryGenOptions& options,
                                    const SelectivityModel& model, Rng& rng) {
  MUSE_CHECK(options.num_types >= 3, "need at least 3 types");
  MUSE_CHECK(options.avg_primitives >= 2, "need at least 2 primitives");

  // Shared fragment: a composite operator over 2 types that related
  // queries embed (§2.2: queries of a workload share composite operators).
  std::vector<EventTypeId> pool(options.num_types);
  std::iota(pool.begin(), pool.end(), 0);
  std::shuffle(pool.begin(), pool.end(), rng.engine());
  EventTypeId shared_a = pool[0];
  EventTypeId shared_b = pool[1];
  const bool shared_is_and = rng.Chance(0.5);

  std::vector<Query> workload;
  for (int qi = 0; qi < options.num_queries; ++qi) {
    int primitives = options.avg_primitives +
                     static_cast<int>(rng.UniformInt(-1, 1));
    primitives = std::max(2, std::min(primitives, options.num_types));

    const bool embed_shared =
        primitives >= 3 && rng.Chance(options.share_probability);

    // Draw the query's leaf types.
    std::vector<EventTypeId> types;
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    for (EventTypeId t : pool) {
      if (embed_shared && (t == shared_a || t == shared_b)) continue;
      if (static_cast<int>(types.size()) + (embed_shared ? 2 : 0) >=
          primitives) {
        break;
      }
      types.push_back(t);
    }

    Query q = Query();
    if (embed_shared) {
      std::vector<Query> fragment_children;
      fragment_children.push_back(Query::Primitive(shared_a));
      fragment_children.push_back(Query::Primitive(shared_b));
      Query fragment = shared_is_and ? Query::And(std::move(fragment_children))
                                     : Query::Seq(std::move(fragment_children));
      OpKind top = shared_is_and ? OpKind::kSeq : OpKind::kAnd;
      std::vector<Query> top_children;
      top_children.push_back(std::move(fragment));
      if (!types.empty()) {
        top_children.push_back(BuildTree(types, 0, types.size(),
                                         shared_is_and ? OpKind::kAnd
                                                       : OpKind::kSeq,
                                         options.nseq_probability, rng));
      }
      q = top == OpKind::kSeq ? Query::Seq(std::move(top_children))
                              : Query::And(std::move(top_children));
    } else {
      OpKind top = rng.Chance(0.5) ? OpKind::kSeq : OpKind::kAnd;
      q = BuildTree(types, 0, types.size(), top, options.nseq_probability,
                    rng);
    }
    q.set_window(options.window_ms);
    AddPairPredicates(&q, model, options.predicate_probability, rng);

    std::string why;
    MUSE_CHECK(q.Validate(&why), "generated workload query invalid");
    workload.push_back(std::move(q));
  }
  return workload;
}

}  // namespace muse
