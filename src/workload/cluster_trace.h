#ifndef MUSE_WORKLOAD_CLUSTER_TRACE_H_
#define MUSE_WORKLOAD_CLUSTER_TRACE_H_

#include <vector>

#include "src/cep/event.h"
#include "src/cep/query.h"
#include "src/cep/type_registry.h"
#include "src/common/rng.h"
#include "src/net/network.h"

namespace muse {

/// Synthetic substitute for the Google cluster monitoring traces used in
/// the paper's case study (§7.1, [24]); see DESIGN.md for the substitution
/// rationale. Generates task-lifecycle event streams with the nine state-
/// transition event types, partitions "machines" onto network nodes
/// (event-node ratio 1), and extracts per-type rates — the three properties
/// the case study's results depend on:
///  * each node can emit every type, with roughly homogeneous rates;
///  * the UPDATE types are orders of magnitude rarer than the frequent
///    lifecycle types (SUBMIT/SCHEDULE/FINISH);
///  * events correlate on task and job identifiers (attrs: a0 = task uID,
///    a1 = job jID).
struct ClusterTraceOptions {
  int num_nodes = 20;
  int num_machines = 1230;  ///< partitioned randomly onto the nodes
  uint64_t duration_ms = 600'000;
  /// Job arrivals per second, network-wide.
  double job_rate_per_s = 12.0;
  /// Tasks per job: uniform in [1, max_tasks_per_job].
  int max_tasks_per_job = 4;
  /// Probability that a task takes the "troubled" path
  /// FAIL -> EVICT -> KILL -> UPDATE (the pattern of Query 1).
  double troubled_probability = 0.0005;
  /// Query window (30 min in the paper).
  uint64_t window_ms = 1'800'000;
};

/// The generated case-study environment.
struct ClusterTrace {
  TypeRegistry registry;  ///< SUBMIT..UPDATE_RUNNING (9 types)
  Network network;        ///< rates extracted from the generated events
  std::vector<Event> events;
  uint64_t duration_ms = 0;
  uint64_t window_ms = 0;
  uint64_t task_count = 0;  ///< distinct task ids (a0 cardinality)
  uint64_t job_count = 0;   ///< distinct job ids (a1 cardinality)

  ClusterTrace() : network(1, 1) {}

  EventTypeId type(const char* name) const;

  /// Query 1 (Listing 1): SEQ(Fail, Evict, Kill, UpdateP) correlated on the
  /// task id — a task failed, was evicted and killed, then rescheduled with
  /// updated constraints. Predicate selectivities are estimated from the
  /// generated trace.
  Query MakeQuery1() const;
  /// Query 2 (Listing 1): AND(Finish, Fail, Kill, UpdateP) correlated on
  /// the job id.
  Query MakeQuery2() const;
};

ClusterTrace GenerateClusterTrace(const ClusterTraceOptions& options,
                                  Rng& rng);

}  // namespace muse

#endif  // MUSE_WORKLOAD_CLUSTER_TRACE_H_
