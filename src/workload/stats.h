#ifndef MUSE_WORKLOAD_STATS_H_
#define MUSE_WORKLOAD_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cep/event.h"
#include "src/cep/predicate.h"
#include "src/cep/query.h"
#include "src/net/network.h"

namespace muse {

/// Estimators deriving the planner's inputs — the rate function r and the
/// predicate selectivities σ (§2) — from observed event data. The paper
/// assumes both are known (its case study extracts rates "directly from the
/// dataset", §7.1); these helpers are that extraction step, generalized, so
/// a deployment can plan from what it has actually seen.

/// Builds an event-sourced network model from an observed trace slice:
/// node n produces type t iff the slice contains such an event, and
/// r(t) is the average per-producing-node rate over `duration_ms`.
/// `num_nodes`/`num_types` bound the model (ids beyond them are ignored).
Network EstimateNetworkFromTrace(const std::vector<Event>& trace,
                                 uint64_t duration_ms, int num_nodes,
                                 int num_types);

/// Estimated selectivity of the equality predicate `a.attr == b.attr`
/// between types `a` and `b`: the fraction of (a-event, b-event) pairs
/// within `window_ms` of each other that agree on the attribute. Sampling
/// caps the pair count at `max_pairs` for long traces.
///
/// Returns `nullopt` when zero pairs were observed: that is *absence of
/// evidence*, not an estimate, and callers must fall back to their modeled
/// prior. (An observed every-pair-agreed trace legitimately returns 1.0 —
/// the two cases used to be conflated, which would have silently poisoned
/// sampling-based estimation, ROADMAP item 3.)
std::optional<double> EstimatePairSelectivity(const std::vector<Event>& trace,
                                              EventTypeId a, EventTypeId b,
                                              int attr, uint64_t window_ms,
                                              size_t max_pairs = 200'000);

/// Replaces each equality predicate's modeled selectivity in `q` with the
/// trace-estimated value; returns the number of predicates updated.
/// Predicates whose type pair yielded no observed pairs keep their modeled
/// prior and are not counted as updated.
int CalibrateQuerySelectivities(Query* q, const std::vector<Event>& trace,
                                uint64_t window_ms);

}  // namespace muse

#endif  // MUSE_WORKLOAD_STATS_H_
