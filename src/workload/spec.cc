#include "src/workload/spec.h"

#include <map>
#include <optional>
#include <sstream>

#include "src/cep/parser.h"
#include "src/common/numbers.h"

namespace muse {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

Result<DeploymentSpec> ParseDeploymentSpec(const std::string& text) {
  DeploymentSpec spec;
  int num_nodes = -1;

  // Collected before the network can be built (types may appear in any
  // order relative to `nodes`).
  std::map<EventTypeId, double> rates;
  std::vector<std::pair<NodeId, double>> capacities;
  std::vector<std::pair<NodeId, std::vector<std::string>>> produces;
  std::map<std::pair<EventTypeId, EventTypeId>, double> selectivities;
  std::vector<std::string> query_lines;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    auto fail = [&](const std::string& why) {
      return Err("spec line ", line_no, ": ", why);
    };
    auto intern = [&](const std::string& name) -> std::optional<EventTypeId> {
      if (spec.registry.Full() && spec.registry.Find(name) < 0) {
        return std::nullopt;
      }
      return spec.registry.Intern(name);
    };
    if (directive == "nodes") {
      if (tokens.size() != 2) return fail("usage: nodes <count>");
      std::optional<int64_t> count = ParseInt64(tokens[1]);
      if (!count || *count <= 0 || *count > 1'000'000) {
        return fail("node count must be a positive integer");
      }
      num_nodes = static_cast<int>(*count);
    } else if (directive == "rate") {
      if (tokens.size() != 3) return fail("usage: rate <type> <per-node/s>");
      std::optional<EventTypeId> t = intern(tokens[1]);
      if (!t) return fail("too many event types (max 64)");
      std::optional<double> rate = ParseDouble(tokens[2]);
      if (!rate || *rate < 0) return fail("rate must be non-negative");
      rates[*t] = *rate;
    } else if (directive == "produce") {
      if (tokens.size() < 3) return fail("usage: produce <node> <type>...");
      std::optional<int64_t> node = ParseInt64(tokens[1]);
      if (!node || *node < 0) return fail("node id must be non-negative");
      produces.emplace_back(static_cast<NodeId>(*node),
                            std::vector<std::string>(tokens.begin() + 2,
                                                     tokens.end()));
    } else if (directive == "capacity") {
      if (tokens.size() != 3) return fail("usage: capacity <node> <events/s>");
      std::optional<int64_t> node = ParseInt64(tokens[1]);
      if (!node || *node < 0) return fail("node id must be non-negative");
      std::optional<double> cap = ParseDouble(tokens[2]);
      if (!cap || *cap < 0) return fail("capacity must be non-negative");
      capacities.emplace_back(static_cast<NodeId>(*node), *cap);
    } else if (directive == "selectivity") {
      if (tokens.size() != 4) {
        return fail("usage: selectivity <type> <type> <value>");
      }
      std::optional<EventTypeId> a = intern(tokens[1]);
      std::optional<EventTypeId> b = intern(tokens[2]);
      if (!a || !b) return fail("too many event types (max 64)");
      std::optional<double> sel = ParseDouble(tokens[3]);
      if (!sel || *sel <= 0 || *sel > 1) {
        return fail("selectivity must be in (0, 1]");
      }
      selectivities[{std::min(*a, *b), std::max(*a, *b)}] = *sel;
    } else if (directive == "query") {
      size_t at = line.find("query");
      query_lines.push_back(line.substr(at + 5));
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }

  if (num_nodes <= 0) return Err("spec: missing 'nodes' directive");
  if (spec.registry.size() == 0) return Err("spec: no event types declared");
  if (query_lines.empty()) return Err("spec: no queries");

  spec.network = Network(num_nodes, spec.registry.size());
  for (const auto& [t, rate] : rates) spec.network.SetRate(t, rate);
  for (const auto& [node, cap] : capacities) {
    if (node >= static_cast<NodeId>(num_nodes)) {
      return Err("spec: capacity node ", node, " out of range");
    }
    spec.network.SetCapacity(node, cap);
  }
  for (const auto& [node, type_names] : produces) {
    if (node >= static_cast<NodeId>(num_nodes)) {
      return Err("spec: produce node ", node, " out of range");
    }
    for (const std::string& name : type_names) {
      int t = spec.registry.Find(name);
      if (t < 0) return Err("spec: produce references unknown type ", name);
      spec.network.AddProducer(node, static_cast<EventTypeId>(t));
    }
  }

  for (const std::string& q : query_lines) {
    Result<Query> parsed = ParseQuery(q, &spec.registry);
    if (!parsed.ok()) return Err("spec query '", q, "': ",
                                 parsed.error().message);
    if (spec.registry.size() > spec.network.num_types()) {
      return Err("spec query '", q,
                 "' references a type with no rate/producer declaration");
    }
    Query query = std::move(parsed).value();
    // Attach declared selectivities to the parsed predicates.
    std::vector<Predicate> adjusted;
    for (Predicate p : query.predicates()) {
      if (p.kind == Predicate::Kind::kEquality) {
        auto it = selectivities.find({std::min(p.left_type, p.right_type),
                                      std::max(p.left_type, p.right_type)});
        if (it != selectivities.end()) p.selectivity = it->second;
      }
      adjusted.push_back(p);
    }
    Query rebuilt = Query::FromParts(
        std::vector<QueryOp>(query.ops()), query.root(), std::move(adjusted),
        query.window());
    std::string why;
    if (!rebuilt.Validate(&why)) {
      return Err("spec query '", q, "' invalid: ", why);
    }
    spec.workload.push_back(std::move(rebuilt));
  }
  return spec;
}

}  // namespace muse
