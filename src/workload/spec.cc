#include "src/workload/spec.h"

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "src/cep/parser.h"
#include "src/common/numbers.h"

namespace muse {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

/// Shortest decimal that round-trips the exact double (max_digits10).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<DeploymentSpec> ParseDeploymentSpec(const std::string& text) {
  DeploymentSpec spec;
  int num_nodes = -1;

  // Collected before the network can be built (types may appear in any
  // order relative to `nodes`).
  std::map<EventTypeId, double> rates;
  std::vector<std::pair<NodeId, double>> capacities;
  std::vector<std::pair<NodeId, std::vector<std::string>>> produces;
  std::map<std::pair<EventTypeId, EventTypeId>, double> selectivities;
  std::vector<std::string> query_lines;
  std::vector<std::pair<size_t, Predicate>> extra_predicates;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    auto fail = [&](const std::string& why) {
      return Err("spec line ", line_no, ": ", why);
    };
    auto intern = [&](const std::string& name) -> std::optional<EventTypeId> {
      if (spec.registry.Full() && spec.registry.Find(name) < 0) {
        return std::nullopt;
      }
      return spec.registry.Intern(name);
    };
    if (directive == "nodes") {
      if (tokens.size() != 2) return fail("usage: nodes <count>");
      std::optional<int64_t> count = ParseInt64(tokens[1]);
      if (!count || *count <= 0 || *count > 1'000'000) {
        return fail("node count must be a positive integer");
      }
      num_nodes = static_cast<int>(*count);
    } else if (directive == "rate") {
      if (tokens.size() != 3) return fail("usage: rate <type> <per-node/s>");
      std::optional<EventTypeId> t = intern(tokens[1]);
      if (!t) return fail("too many event types (max 64)");
      std::optional<double> rate = ParseDouble(tokens[2]);
      if (!rate || *rate < 0) return fail("rate must be non-negative");
      rates[*t] = *rate;
    } else if (directive == "produce") {
      if (tokens.size() < 3) return fail("usage: produce <node> <type>...");
      std::optional<int64_t> node = ParseInt64(tokens[1]);
      if (!node || *node < 0) return fail("node id must be non-negative");
      produces.emplace_back(static_cast<NodeId>(*node),
                            std::vector<std::string>(tokens.begin() + 2,
                                                     tokens.end()));
    } else if (directive == "capacity") {
      if (tokens.size() != 3) return fail("usage: capacity <node> <events/s>");
      std::optional<int64_t> node = ParseInt64(tokens[1]);
      if (!node || *node < 0) return fail("node id must be non-negative");
      std::optional<double> cap = ParseDouble(tokens[2]);
      if (!cap || *cap < 0) return fail("capacity must be non-negative");
      capacities.emplace_back(static_cast<NodeId>(*node), *cap);
    } else if (directive == "selectivity") {
      if (tokens.size() != 4) {
        return fail("usage: selectivity <type> <type> <value>");
      }
      std::optional<EventTypeId> a = intern(tokens[1]);
      std::optional<EventTypeId> b = intern(tokens[2]);
      if (!a || !b) return fail("too many event types (max 64)");
      std::optional<double> sel = ParseDouble(tokens[3]);
      if (!sel || *sel <= 0 || *sel > 1) {
        return fail("selectivity must be in (0, 1]");
      }
      selectivities[{std::min(*a, *b), std::max(*a, *b)}] = *sel;
    } else if (directive == "predicate") {
      // predicate <q> eq <T> <attr> <T> <attr> <sel>
      // predicate <q> filter <T> <attr> <modulus> [sel]
      if (tokens.size() < 3) return fail("usage: predicate <q> eq|filter ...");
      std::optional<int64_t> q = ParseInt64(tokens[1]);
      if (!q || *q < 0) return fail("query index must be non-negative");
      auto parse_attr = [&](const std::string& s) -> std::optional<int> {
        std::optional<int64_t> a = ParseInt64(s);
        if (!a || *a < 0 || *a >= kNumAttrs) return std::nullopt;
        return static_cast<int>(*a);
      };
      if (tokens[2] == "eq") {
        if (tokens.size() != 8) {
          return fail(
              "usage: predicate <q> eq <type> <attr> <type> <attr> <sel>");
        }
        std::optional<EventTypeId> lt = intern(tokens[3]);
        std::optional<EventTypeId> rt = intern(tokens[5]);
        if (!lt || !rt) return fail("too many event types (max 64)");
        if (*lt == *rt) {
          return fail("equality predicate needs two distinct event types");
        }
        std::optional<int> la = parse_attr(tokens[4]);
        std::optional<int> ra = parse_attr(tokens[6]);
        if (!la || !ra) return fail("attr index out of range");
        std::optional<double> sel = ParseDouble(tokens[7]);
        if (!sel || *sel <= 0 || *sel > 1) {
          return fail("selectivity must be in (0, 1]");
        }
        extra_predicates.emplace_back(
            static_cast<size_t>(*q),
            Predicate::Equality(*lt, *la, *rt, *ra, *sel));
      } else if (tokens[2] == "filter") {
        if (tokens.size() != 6 && tokens.size() != 7) {
          return fail(
              "usage: predicate <q> filter <type> <attr> <modulus> [sel]");
        }
        std::optional<EventTypeId> t = intern(tokens[3]);
        if (!t) return fail("too many event types (max 64)");
        std::optional<int> attr = parse_attr(tokens[4]);
        if (!attr) return fail("attr index out of range");
        std::optional<int64_t> modulus = ParseInt64(tokens[5]);
        if (!modulus || *modulus <= 0) {
          return fail("modulus must be positive");
        }
        Predicate p = Predicate::Filter(*t, *attr, *modulus);
        if (tokens.size() == 7) {
          std::optional<double> sel = ParseDouble(tokens[6]);
          if (!sel || *sel <= 0 || *sel > 1) {
            return fail("selectivity must be in (0, 1]");
          }
          p.selectivity = *sel;
        }
        extra_predicates.emplace_back(static_cast<size_t>(*q), std::move(p));
      } else {
        return fail("predicate kind must be 'eq' or 'filter'");
      }
    } else if (directive == "peer") {
      // peer <process> <host> — cluster daemon mesh host (numeric IPv4;
      // the daemon dialer has no resolver).
      if (tokens.size() != 3) return fail("usage: peer <process> <host>");
      std::optional<int64_t> proc = ParseInt64(tokens[1]);
      if (!proc || *proc < 0 || *proc > 1'000'000) {
        return fail("peer process index must be non-negative");
      }
      if (tokens[2].size() > 255) return fail("peer host too long");
      const auto idx = static_cast<size_t>(*proc);
      if (spec.peer_hosts.size() <= idx) spec.peer_hosts.resize(idx + 1);
      spec.peer_hosts[idx] = tokens[2];
    } else if (directive == "query") {
      size_t at = line.find("query");
      query_lines.push_back(line.substr(at + 5));
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }

  if (num_nodes <= 0) return Err("spec: missing 'nodes' directive");
  if (spec.registry.size() == 0) return Err("spec: no event types declared");
  if (query_lines.empty()) return Err("spec: no queries");

  spec.network = Network(num_nodes, spec.registry.size());
  for (const auto& [t, rate] : rates) spec.network.SetRate(t, rate);
  for (const auto& [node, cap] : capacities) {
    if (node >= static_cast<NodeId>(num_nodes)) {
      return Err("spec: capacity node ", node, " out of range");
    }
    spec.network.SetCapacity(node, cap);
  }
  for (const auto& [node, type_names] : produces) {
    if (node >= static_cast<NodeId>(num_nodes)) {
      return Err("spec: produce node ", node, " out of range");
    }
    for (const std::string& name : type_names) {
      int t = spec.registry.Find(name);
      if (t < 0) return Err("spec: produce references unknown type ", name);
      spec.network.AddProducer(node, static_cast<EventTypeId>(t));
    }
  }

  for (const std::string& q : query_lines) {
    Result<Query> parsed = ParseQuery(q, &spec.registry);
    if (!parsed.ok()) return Err("spec query '", q, "': ",
                                 parsed.error().message);
    if (spec.registry.size() > spec.network.num_types()) {
      return Err("spec query '", q,
                 "' references a type with no rate/producer declaration");
    }
    Query query = std::move(parsed).value();
    // Attach declared selectivities to the parsed predicates.
    std::vector<Predicate> adjusted;
    for (Predicate p : query.predicates()) {
      if (p.kind == Predicate::Kind::kEquality) {
        auto it = selectivities.find({std::min(p.left_type, p.right_type),
                                      std::max(p.left_type, p.right_type)});
        if (it != selectivities.end()) p.selectivity = it->second;
      }
      adjusted.push_back(p);
    }
    Query rebuilt = Query::FromParts(
        std::vector<QueryOp>(query.ops()), query.root(), std::move(adjusted),
        query.window());
    std::string why;
    if (!rebuilt.Validate(&why)) {
      return Err("spec query '", q, "' invalid: ", why);
    }
    spec.workload.push_back(std::move(rebuilt));
  }

  // Exact predicates attach after WHERE parsing; selectivity directives do
  // not touch them (they carry their own).
  for (const auto& [q_idx, pred] : extra_predicates) {
    if (q_idx >= spec.workload.size()) {
      return Err("spec: predicate references query ", q_idx, " but only ",
                 spec.workload.size(), " queries are declared");
    }
    spec.workload[q_idx].AddPredicate(pred);
  }
  for (size_t q = 0; q < spec.workload.size(); ++q) {
    std::string why;
    if (!spec.workload[q].Validate(&why)) {
      return Err("spec query ", q, " invalid after predicates: ", why);
    }
  }
  return spec;
}

std::string WriteDeploymentSpec(const DeploymentSpec& spec) {
  std::string out;
  out += "nodes " + std::to_string(spec.network.num_nodes()) + "\n";
  // One rate line per type in id order pins the interning: a parser reading
  // this text assigns every type the id it has here.
  for (int t = 0; t < spec.registry.size(); ++t) {
    out += "rate " + spec.registry.Name(static_cast<EventTypeId>(t)) + " " +
           FormatDouble(spec.network.Rate(static_cast<EventTypeId>(t))) +
           "\n";
  }
  for (NodeId n = 0; n < static_cast<NodeId>(spec.network.num_nodes()); ++n) {
    std::string produced;
    for (int t = 0; t < spec.network.num_types(); ++t) {
      if (spec.network.Produces(n, static_cast<EventTypeId>(t))) {
        produced += " " + spec.registry.Name(static_cast<EventTypeId>(t));
      }
    }
    if (!produced.empty()) {
      out += "produce " + std::to_string(n) + produced + "\n";
    }
    if (spec.network.Capacity(n) != 0) {
      out += "capacity " + std::to_string(n) + " " +
             FormatDouble(spec.network.Capacity(n)) + "\n";
    }
  }
  for (size_t k = 0; k < spec.peer_hosts.size(); ++k) {
    if (spec.peer_hosts[k].empty()) continue;  // empty means 127.0.0.1
    out += "peer " + std::to_string(k) + " " + spec.peer_hosts[k] + "\n";
  }
  for (size_t q = 0; q < spec.workload.size(); ++q) {
    const Query& query = spec.workload[q];
    out += "query " + query.ToString(&spec.registry);
    if (query.window() != kNoWindow) {
      out += " WITHIN " + std::to_string(query.window()) + "ms";
    }
    out += "\n";
    for (const Predicate& p : query.predicates()) {
      if (p.kind == Predicate::Kind::kEquality) {
        out += "predicate " + std::to_string(q) + " eq " +
               spec.registry.Name(p.left_type) + " " +
               std::to_string(p.left_attr) + " " +
               spec.registry.Name(p.right_type) + " " +
               std::to_string(p.right_attr) + " " +
               FormatDouble(p.selectivity) + "\n";
      } else {
        out += "predicate " + std::to_string(q) + " filter " +
               spec.registry.Name(p.left_type) + " " +
               std::to_string(p.left_attr) + " " +
               std::to_string(p.modulus) + " " +
               FormatDouble(p.selectivity) + "\n";
      }
    }
  }
  return out;
}

}  // namespace muse
