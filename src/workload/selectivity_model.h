#ifndef MUSE_WORKLOAD_SELECTIVITY_MODEL_H_
#define MUSE_WORKLOAD_SELECTIVITY_MODEL_H_

#include <vector>

#include "src/cep/predicate.h"
#include "src/common/rng.h"
#include "src/common/typeset.h"

namespace muse {

/// Per-pair predicate selectivities for synthetic workloads (§7.1): "we
/// generate selectivity values for each pair of event types based on a
/// uniform distribution over range [0.01, 0.2]". Symmetric; drawn once per
/// model so that all queries of a workload agree on a pair's selectivity.
class SelectivityModel {
 public:
  SelectivityModel(int num_types, double min_selectivity,
                   double max_selectivity, Rng& rng);

  double Get(EventTypeId a, EventTypeId b) const;

  /// An equality predicate between `a` and `b` (attribute 0) carrying the
  /// modeled selectivity.
  Predicate MakePredicate(EventTypeId a, EventTypeId b) const;

  int num_types() const { return num_types_; }

 private:
  int num_types_;
  std::vector<double> selectivity_;  // row-major [a][b]
};

}  // namespace muse

#endif  // MUSE_WORKLOAD_SELECTIVITY_MODEL_H_
