#ifndef MUSE_WORKLOAD_QUERY_GEN_H_
#define MUSE_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "src/cep/query.h"
#include "src/common/rng.h"
#include "src/workload/selectivity_model.h"

namespace muse {

/// Parameters of the synthetic query workloads (§7.1). Defaults match the
/// paper's default setup: 5 queries with 6 primitive operators on average,
/// SEQ and AND operators with varying hierarchy and nesting depth, pairwise
/// equality predicates with modeled selectivities, and related queries
/// (queries share composite operators).
struct QueryGenOptions {
  int num_queries = 5;
  int avg_primitives = 6;   ///< per-query primitive count, +/- 1
  int num_types = 15;
  uint64_t window_ms = 30'000;

  /// Probability that a query embeds the workload's shared fragment (a
  /// common composite operator), making queries "related" (§2.2).
  double share_probability = 0.7;

  /// Probability of adding the equality predicate for each adjacent leaf
  /// pair.
  double predicate_probability = 1.0;

  /// Include NSEQ operators with this probability per query (0 in the
  /// paper's simulation workloads, which use SEQ and AND).
  double nseq_probability = 0.0;
};

/// Generates a related workload of OR-free queries over types
/// [0, options.num_types). Deterministic given `rng`. All queries share the
/// same window (§2.2). Predicates carry selectivities from `model`.
std::vector<Query> GenerateWorkload(const QueryGenOptions& options,
                                    const SelectivityModel& model, Rng& rng);

/// Generates one random query over exactly the given types (used by tests
/// and the exhaustive-planner comparisons).
Query GenerateQuery(const std::vector<EventTypeId>& types,
                    const SelectivityModel& model, uint64_t window_ms,
                    double nseq_probability, Rng& rng);

}  // namespace muse

#endif  // MUSE_WORKLOAD_QUERY_GEN_H_
