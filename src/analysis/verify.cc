#include "src/analysis/verify.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/combination.h"
#include "src/core/rates.h"

namespace muse {
namespace {

std::string VertexLoc(const MuseGraph& g, int vi, const TypeRegistry* reg) {
  return "vertex " + std::to_string(vi) + " " + g.vertex(vi).ToString(reg);
}

std::string TypeName(EventTypeId t, const TypeRegistry* reg) {
  if (reg != nullptr && static_cast<int>(t) < reg->size()) {
    return reg->Name(t);
  }
  return "E" + std::to_string(t);
}

std::string TypesName(TypeSet s, const TypeRegistry* reg) {
  std::string out = "{";
  bool first = true;
  for (EventTypeId t : s) {
    if (!first) out += ",";
    first = false;
    out += TypeName(t, reg);
  }
  return out + "}";
}

/// Shared state of one VerifyPlan pass.
class PlanVerifier {
 public:
  PlanVerifier(const MuseGraph& g,
               const std::vector<const ProjectionCatalog*>& catalogs,
               const VerifyOptions& options)
      : g_(g),
        catalogs_(catalogs),
        options_(options),
        net_(catalogs.front()->network()),
        vertex_ok_(g.num_vertices(), false) {}

  VerifyReport Run() {
    CheckVertices();
    CheckSinkList();
    const bool acyclic = CheckAcyclic();
    CollectRoots();
    CheckSinkRegistration();
    CheckSinkCover();
    if (acyclic) CheckReachability();
    CheckInputCoverage();
    CheckReuseBacking();
    CheckSourceCoverage();
    CheckBoundaries();
    if (options_.check_rates) CheckRates();
    return std::move(report_);
  }

 private:
  const ProjectionCatalog* CatalogOf(int vi) const {
    return vertex_ok_[vi] ? catalogs_[g_.vertex(vi).query] : nullptr;
  }

  std::string Loc(int vi) const {
    return VertexLoc(g_, vi, options_.registry);
  }

  /// M300/M301/M203/M305/M302: per-vertex feasibility. A vertex passing the
  /// query-range and projection-validity gates gets `vertex_ok_` set, which
  /// later rules require before consulting its catalog.
  void CheckVertices() {
    for (int vi = 0; vi < g_.num_vertices(); ++vi) {
      const PlanVertex& v = g_.vertex(vi);
      if (v.query < 0 || v.query >= static_cast<int>(catalogs_.size())) {
        report_.Add(Rule::kQueryRange, Severity::kError, Loc(vi),
                    "query index " + std::to_string(v.query) +
                        " outside the workload [0, " +
                        std::to_string(catalogs_.size()) + ")",
                    "tag plan vertices with valid workload indices");
        continue;
      }
      const ProjectionCatalog& cat = *catalogs_[v.query];
      if (v.node >= static_cast<NodeId>(net_.num_nodes())) {
        report_.Add(Rule::kNodeRange, Severity::kError, Loc(vi),
                    "node " + std::to_string(v.node) +
                        " outside the network [0, " +
                        std::to_string(net_.num_nodes()) + ")",
                    "place the projection on an existing node");
        continue;
      }
      if (v.proj.empty() ||
          !v.proj.IsSubsetOf(cat.query().PrimitiveTypes()) ||
          !cat.Valid(v.proj)) {
        report_.Add(Rule::kProjectionInvalid, Severity::kError, Loc(vi),
                    "type set " + TypesName(v.proj, options_.registry) +
                        " is not a valid projection of query " +
                        std::to_string(v.query) + " (Def. 9)",
                    "projections must retain NSEQ groups per the negation "
                    "closure rules");
        continue;
      }
      vertex_ok_[vi] = true;
      if (v.part_type != kNoPartition) {
        const EventTypeId part = static_cast<EventTypeId>(v.part_type);
        if (!v.proj.Contains(part)) {
          report_.Add(Rule::kPartitionInvalid, Severity::kError, Loc(vi),
                      "partition type " + TypeName(part, options_.registry) +
                          " is not an input type of the projection",
                      "partition only on a type the projection retains");
        } else if (net_.NumProducers(part) == 0) {
          report_.Add(Rule::kPartitionInvalid, Severity::kError, Loc(vi),
                      "partition type " + TypeName(part, options_.registry) +
                          " has no producers; the cover is empty",
                      "partition on a produced type");
        } else if (!net_.Produces(v.node, part)) {
          report_.Add(Rule::kPartitionInvalid, Severity::kError, Loc(vi),
                      "node " + std::to_string(v.node) +
                          " does not produce partition type " +
                          TypeName(part, options_.registry) +
                          "; the vertex covers no bindings",
                      "partitioned placements live at the partition type's "
                      "producers");
        }
      } else if (v.IsPrimitive() &&
                 !net_.Produces(v.node, v.proj.First())) {
        report_.Add(Rule::kPrimitiveMisplaced, Severity::kError, Loc(vi),
                    "primitive vertex for " +
                        TypeName(v.proj.First(), options_.registry) +
                        " placed at node " + std::to_string(v.node) +
                        ", which does not produce it",
                    "primitive projections are evaluated at their sources");
      }
    }
  }

  /// M103: sink list indices must reference vertices.
  void CheckSinkList() {
    for (int s : g_.sinks()) {
      if (s < 0 || s >= g_.num_vertices()) {
        report_.Add(Rule::kBadIndex, Severity::kError,
                    "sink list entry " + std::to_string(s),
                    "sink index outside the vertex range [0, " +
                        std::to_string(g_.num_vertices()) + ")",
                    "rebuild the sink list from the root placements");
      }
    }
  }

  /// M100: the graph must be a DAG (iterative three-color DFS).
  bool CheckAcyclic() {
    const int n = g_.num_vertices();
    std::vector<std::vector<int>> succs(n);
    for (const auto& [from, to] : g_.edges()) succs[from].push_back(to);
    std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
    for (int start = 0; start < n; ++start) {
      if (color[start] != 0) continue;
      // Stack of (vertex, next-successor-position).
      std::vector<std::pair<int, size_t>> stack = {{start, 0}};
      color[start] = 1;
      while (!stack.empty()) {
        auto& [v, pos] = stack.back();
        if (pos == succs[v].size()) {
          color[v] = 2;
          stack.pop_back();
          continue;
        }
        int next = succs[v][pos++];
        if (color[next] == 1) {
          report_.Add(Rule::kGraphCycle, Severity::kError, Loc(next),
                      "the plan contains a directed cycle through this "
                      "vertex; evaluation order is undefined",
                      "MuSE graphs are DAGs: matches flow bottom-up from "
                      "primitives to the query sink");
          return false;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      }
    }
    return true;
  }

  /// Roots (per query): vertices hosting the query's full projection.
  void CollectRoots() {
    roots_.assign(catalogs_.size(), {});
    for (int vi = 0; vi < g_.num_vertices(); ++vi) {
      if (!vertex_ok_[vi]) continue;
      const PlanVertex& v = g_.vertex(vi);
      if (v.proj == catalogs_[v.query]->query().PrimitiveTypes()) {
        roots_[v.query].push_back(vi);
      }
    }
  }

  /// M101 (registration form): the explicit sink list must agree with the
  /// root placements. Sink semantics are derived from projections
  /// elsewhere, but normal-form collapsing and DOT export consume the
  /// list, so an imported plan with a stale list silently misbehaves.
  void CheckSinkRegistration() {
    const std::set<int> listed(g_.sinks().begin(), g_.sinks().end());
    for (size_t qi = 0; qi < catalogs_.size(); ++qi) {
      for (int vi : roots_[qi]) {
        if (!listed.contains(vi)) {
          report_.Add(Rule::kSinkMissing, Severity::kError, Loc(vi),
                      "hosts the query's root projection but is not "
                      "registered in the sink list",
                      "register every root placement in the sink list");
        }
      }
    }
    for (int s : g_.sinks()) {
      if (s < 0 || s >= g_.num_vertices() || !vertex_ok_[s]) continue;
      const PlanVertex& v = g_.vertex(s);
      if (v.proj != catalogs_[v.query]->query().PrimitiveTypes()) {
        report_.Add(Rule::kSinkMissing, Severity::kError, Loc(s),
                    "listed as a sink but does not host its query's root "
                    "projection",
                    "remove the entry or place the full projection there");
      }
    }
  }

  /// M101/M304: every query needs a sink whose vertices jointly cover all
  /// of its event type bindings (Def. 8) — a full-cover vertex, or a
  /// partitioned group spanning every producer of the partitioning type.
  void CheckSinkCover() {
    for (size_t qi = 0; qi < catalogs_.size(); ++qi) {
      const std::string qloc = "query " + std::to_string(qi);
      if (roots_[qi].empty()) {
        report_.Add(Rule::kSinkMissing, Severity::kError, qloc,
                    "no vertex hosts the query's root projection " +
                        TypesName(catalogs_[qi]->query().PrimitiveTypes(),
                                  options_.registry),
                    "place the full projection at one or more nodes");
        continue;
      }
      bool covered = std::any_of(
          roots_[qi].begin(), roots_[qi].end(), [this](int vi) {
            return g_.vertex(vi).part_type == kNoPartition;
          });
      TypeSet full = catalogs_[qi]->query().PrimitiveTypes();
      for (EventTypeId t : full) {
        if (covered) break;
        std::set<NodeId> nodes;
        for (int vi : roots_[qi]) {
          if (g_.vertex(vi).part_type == static_cast<int>(t)) {
            nodes.insert(g_.vertex(vi).node);
          }
        }
        const std::vector<NodeId>& producers = net_.Producers(t);
        covered = !producers.empty() &&
                  std::all_of(producers.begin(), producers.end(),
                              [&nodes](NodeId n) {
                                return nodes.contains(n);
                              });
      }
      if (!covered) {
        report_.Add(Rule::kSinkCoverGap, Severity::kError, qloc,
                    "the query's sinks do not cover all event type "
                    "bindings: no full-cover sink and no partitioned group "
                    "spanning every producer of its partitioning type",
                    "add the missing partitioned sinks or a single "
                    "full-cover sink");
      }
    }
  }

  /// M102: every vertex should feed some query's root (matches produced by
  /// a vertex that reaches no sink are computed and then dropped).
  void CheckReachability() {
    const int n = g_.num_vertices();
    std::vector<std::vector<int>> preds(n);
    for (const auto& [from, to] : g_.edges()) preds[to].push_back(from);
    std::vector<bool> alive(n, false);
    std::vector<int> queue;
    for (const std::vector<int>& qroots : roots_) {
      for (int vi : qroots) {
        if (!alive[vi]) {
          alive[vi] = true;
          queue.push_back(vi);
        }
      }
    }
    while (!queue.empty()) {
      int v = queue.back();
      queue.pop_back();
      for (int p : preds[v]) {
        if (!alive[p]) {
          alive[p] = true;
          queue.push_back(p);
        }
      }
    }
    for (int vi = 0; vi < n; ++vi) {
      if (!alive[vi]) {
        report_.Add(Rule::kDeadVertex, Severity::kWarning, Loc(vi),
                    "no path to any query sink: the vertex's matches are "
                    "computed and discarded",
                    "remove the vertex or wire it into a sink's "
                    "combination");
      }
    }
  }

  /// M200/M201/M202/M204: the distinct predecessor projections of each
  /// placed composite vertex must form a correct combination of its
  /// projection (Def. 6) — no gap, every part a proper subset — and should
  /// be non-redundant (Def. 15).
  void CheckInputCoverage() {
    for (int vi = 0; vi < g_.num_vertices(); ++vi) {
      if (!vertex_ok_[vi]) continue;
      const PlanVertex& v = g_.vertex(vi);
      std::set<uint64_t> seen;
      std::vector<TypeSet> parts;
      for (int pi : g_.Predecessors(vi)) {
        TypeSet p = g_.vertex(pi).proj;
        if (seen.insert(p.bits()).second) parts.push_back(p);
      }
      if (v.IsPrimitive()) {
        if (!parts.empty()) {
          report_.Add(Rule::kPrimitiveWithInputs, Severity::kError, Loc(vi),
                      "primitive vertex has predecessors; primitives "
                      "consume source events only",
                      "route match streams to composite vertices");
        }
        continue;
      }
      if (v.reused) continue;  // inputs were paid for by an earlier query
      if (parts.empty()) {
        report_.Add(Rule::kInputGap, Severity::kError, Loc(vi),
                    "composite vertex has no inputs; none of its matches "
                    "can be assembled",
                    "wire a correct combination of sub-projections "
                    "(Def. 6)");
        continue;
      }
      TypeSet covered;
      bool parts_ok = true;
      for (TypeSet p : parts) {
        if (!p.IsProperSubsetOf(v.proj)) {
          parts_ok = false;
          report_.Add(Rule::kInputNotSubset, Severity::kError, Loc(vi),
                      "input projection " +
                          TypesName(p, options_.registry) +
                          " is not a proper subset of the vertex's "
                          "projection",
                      "combination parts are proper sub-projections of "
                      "their target");
        }
        covered = covered.Union(p);
      }
      TypeSet gap = v.proj.Minus(covered);
      if (!gap.empty()) {
        report_.Add(Rule::kInputGap, Severity::kError, Loc(vi),
                    "input coverage gap: no input delivers " +
                        TypesName(gap, options_.registry),
                    "every type of the projection must be covered by some "
                    "input (Def. 6)");
      }
      if (parts_ok && gap.empty() &&
          IsRedundantCombination(Combination{v.proj, parts})) {
        report_.Add(Rule::kInputRedundant, Severity::kWarning, Loc(vi),
                    "an input's types are fully covered by the other "
                    "inputs (Def. 15): its matches are transferred and "
                    "merged for nothing",
                    "optimal MuSE graphs never use redundant combinations "
                    "(Theorem 5)");
      }
    }
  }

  /// M205: a reused vertex borrows another query's placement (§6.2), so the
  /// graph must contain a non-reused vertex at the same node with the same
  /// partition and projection signature that actually computes the stream.
  /// Without one the deployment compiles a task that never receives input.
  void CheckReuseBacking() {
    for (int vi = 0; vi < g_.num_vertices(); ++vi) {
      if (!vertex_ok_[vi]) continue;
      const PlanVertex& v = g_.vertex(vi);
      if (!v.reused || v.IsPrimitive()) continue;
      const std::string& sig = catalogs_[v.query]->Signature(v.proj);
      bool backed = false;
      for (int vj = 0; vj < g_.num_vertices() && !backed; ++vj) {
        if (!vertex_ok_[vj] || vj == vi) continue;
        const PlanVertex& w = g_.vertex(vj);
        backed = !w.reused && w.node == v.node &&
                 w.part_type == v.part_type &&
                 catalogs_[w.query]->Signature(w.proj) == sig;
      }
      if (!backed) {
        report_.Add(Rule::kReuseUnbacked, Severity::kError, Loc(vi),
                    "reused placement has no providing vertex: no other "
                    "query computes this projection at node " +
                        std::to_string(v.node),
                    "reuse only placements another workload query "
                    "materializes with an identical signature (§6.2)");
      }
    }
  }

  /// M303: for every query, primitive type, and producer of that type, the
  /// plan must place the corresponding primitive projection there
  /// (possibly owned by another query with an identical signature, §6.2).
  void CheckSourceCoverage() {
    for (size_t qi = 0; qi < catalogs_.size(); ++qi) {
      const ProjectionCatalog& cat = *catalogs_[qi];
      for (EventTypeId t : cat.query().PrimitiveTypes()) {
        const std::string& sig = cat.Signature(TypeSet::Of(t));
        for (NodeId n : net_.Producers(t)) {
          bool found = false;
          for (int vi = 0; vi < g_.num_vertices() && !found; ++vi) {
            if (!vertex_ok_[vi]) continue;
            const PlanVertex& v = g_.vertex(vi);
            found = v.node == n && v.IsPrimitive() &&
                    v.proj.First() == t &&
                    catalogs_[v.query]->Signature(v.proj) == sig;
          }
          if (!found) {
            report_.Add(
                Rule::kSourceMissing, Severity::kError,
                "query " + std::to_string(qi),
                "no primitive vertex for type " +
                    TypeName(t, options_.registry) + " at producer node " +
                    std::to_string(n) +
                    "; events generated there are never observed",
                "well-formed plans place every primitive projection at "
                "every producer (Def. 7)");
          }
        }
      }
    }
  }

  /// M500/M501/M203: across every edge, the match stream the source
  /// produces must be the stream the target's evaluator expects — same
  /// window, same predicates. Within one query this holds by construction;
  /// a (deserialized) plan wiring projections of *different* queries
  /// together can disagree.
  void CheckBoundaries() {
    for (const auto& [from, to] : g_.edges()) {
      if (!vertex_ok_[from] || !vertex_ok_[to]) continue;
      const PlanVertex& u = g_.vertex(from);
      const PlanVertex& v = g_.vertex(to);
      if (u.query == v.query) continue;
      const std::string loc = "edge " + Loc(from) + " -> " + Loc(to);
      const ProjectionCatalog& src_cat = *catalogs_[u.query];
      const ProjectionCatalog& dst_cat = *catalogs_[v.query];
      if (!u.proj.IsSubsetOf(dst_cat.query().PrimitiveTypes()) ||
          !dst_cat.Valid(u.proj)) {
        report_.Add(Rule::kProjectionInvalid, Severity::kError, loc,
                    "source projection " +
                        TypesName(u.proj, options_.registry) +
                        " is not a valid projection of the target's query",
                    "cross-query inputs must exist in the target query's "
                    "projection catalog");
        continue;
      }
      if (src_cat.Signature(u.proj) == dst_cat.Signature(u.proj)) continue;
      const uint64_t src_window = src_cat.Ast(u.proj).window();
      const uint64_t dst_window = dst_cat.Ast(u.proj).window();
      if (src_window != dst_window) {
        report_.Add(Rule::kWindowMismatch, Severity::kError, loc,
                    "window mismatch across the projection boundary: "
                    "source evaluates within " +
                        std::to_string(src_window) +
                        "ms, target expects " + std::to_string(dst_window) +
                        "ms",
                    "share placements only between queries with identical "
                    "projection signatures (§6.2)");
      } else {
        report_.Add(Rule::kPredicateMismatch, Severity::kError, loc,
                    "the source's matches are filtered by different "
                    "predicates (or operator structure) than the target "
                    "expects",
                    "share placements only between queries with identical "
                    "projection signatures (§6.2)");
      }
    }
  }

  /// M400: the catalog's stored projection output rates must agree with a
  /// fresh bottom-up recomputation from the network's current rates
  /// (§4.4). Divergence means the plan was costed on stale statistics.
  void CheckRates() {
    std::set<std::pair<int, uint64_t>> checked;
    for (int vi = 0; vi < g_.num_vertices(); ++vi) {
      if (!vertex_ok_[vi]) continue;
      const PlanVertex& v = g_.vertex(vi);
      if (!checked.insert({v.query, v.proj.bits()}).second) continue;
      const ProjectionCatalog& cat = *catalogs_[v.query];
      const double stored = cat.Rate(v.proj);
      const double fresh = QueryOutputRate(cat.Ast(v.proj), net_);
      const double denom = std::max({1e-12, std::fabs(stored),
                                     std::fabs(fresh)});
      if (std::fabs(stored - fresh) > options_.rate_tolerance * denom) {
        report_.Add(Rule::kRateDivergence, Severity::kWarning, Loc(vi),
                    "stored output rate r-hat(" +
                        TypesName(v.proj, options_.registry) + ") = " +
                        std::to_string(stored) +
                        " diverges from bottom-up recomputation " +
                        std::to_string(fresh),
                    "rebuild the projection catalogs after changing "
                    "network rates, then replan");
      }
    }
  }

  const MuseGraph& g_;
  const std::vector<const ProjectionCatalog*>& catalogs_;
  const VerifyOptions& options_;
  const Network& net_;
  std::vector<bool> vertex_ok_;
  std::vector<std::vector<int>> roots_;  // per query
  VerifyReport report_;
};

}  // namespace

VerifyReport VerifyPlan(const MuseGraph& g,
                        const std::vector<const ProjectionCatalog*>& catalogs,
                        const VerifyOptions& options) {
  MUSE_CHECK(!catalogs.empty(), "VerifyPlan needs at least one catalog");
  return PlanVerifier(g, catalogs, options).Run();
}

VerifyReport VerifyPlan(const MuseGraph& g, const ProjectionCatalog& catalog,
                        const VerifyOptions& options) {
  std::vector<const ProjectionCatalog*> catalogs = {&catalog};
  return VerifyPlan(g, catalogs, options);
}

VerifyReport VerifyTasks(const std::vector<Task>& tasks, int num_queries,
                         const Network& net, const VerifyOptions& options) {
  VerifyReport report;
  const int n = static_cast<int>(tasks.size());
  auto loc = [&tasks, &options](int ti) {
    return "task " + std::to_string(ti) + " " +
           tasks[ti].ToString(options.registry);
  };
  auto in_range = [n](int id) { return id >= 0 && id < n; };

  for (int ti = 0; ti < n; ++ti) {
    const Task& t = tasks[ti];
    if (t.id != ti) {
      report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                 "task id " + std::to_string(t.id) +
                     " does not match its position " + std::to_string(ti),
                 "task ids index the deployment's task vector");
    }
    if (t.node >= static_cast<NodeId>(net.num_nodes())) {
      report.Add(Rule::kNodeRange, Severity::kError, loc(ti),
                 "node " + std::to_string(t.node) +
                     " outside the network [0, " +
                     std::to_string(net.num_nodes()) + ")",
                 "assign the task to an existing node runtime");
    } else if (t.is_primitive && !net.Produces(t.node, t.prim_type)) {
      report.Add(Rule::kPrimitiveMisplaced, Severity::kError, loc(ti),
                 "primitive task for " +
                     TypeName(t.prim_type, options.registry) +
                     " at node " + std::to_string(t.node) +
                     ", which does not produce it",
                 "primitive tasks consume locally generated events");
    }

    // Successor side of every channel.
    for (int s : t.successors) {
      if (!in_range(s)) {
        report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                   "successor " + std::to_string(s) + " is not a task",
                   "successors reference tasks of the same deployment");
        continue;
      }
      const std::vector<std::pair<int, int>>& dst_in = tasks[s].inputs;
      const bool wired = std::any_of(
          dst_in.begin(), dst_in.end(),
          [ti](const std::pair<int, int>& in) { return in.first == ti; });
      if (!wired) {
        report.Add(Rule::kChannelMissing, Severity::kError, loc(ti),
                   "successor task " + std::to_string(s) +
                       " has no input channel from this task: its matches "
                       "are sent but never consumed",
                   "wire the receiving task's inputs to match the routing");
      }
    }

    // Input side.
    if (t.is_primitive) {
      if (!t.inputs.empty()) {
        report.Add(Rule::kPrimitiveWithInputs, Severity::kError, loc(ti),
                   "primitive task has input channels",
                   "primitive tasks consume source events only");
      }
    } else {
      if (t.parts.empty() || t.parts.size() != t.part_types.size()) {
        report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                   "malformed evaluator parts: " +
                       std::to_string(t.parts.size()) + " ASTs vs " +
                       std::to_string(t.part_types.size()) + " type sets",
                   "compile tasks through Deployment");
      }
      std::set<int> covered;
      for (const auto& [src, part] : t.inputs) {
        if (!in_range(src)) {
          report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                     "input references non-existent task " +
                         std::to_string(src),
                     "inputs reference tasks of the same deployment");
          continue;
        }
        if (part < 0 || part >= static_cast<int>(t.part_types.size())) {
          report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                     "input from task " + std::to_string(src) +
                         " feeds non-existent part " + std::to_string(part),
                     "part indices address the task's evaluator parts");
          continue;
        }
        covered.insert(part);
        const std::vector<int>& src_succ = tasks[src].successors;
        if (std::find(src_succ.begin(), src_succ.end(), ti) ==
            src_succ.end()) {
          report.Add(Rule::kChannelMissing, Severity::kError, loc(ti),
                     "input expects matches from task " +
                         std::to_string(src) +
                         ", but that task does not route here: the part "
                         "starves",
                     "add the missing successor channel on the sending "
                     "task");
        }
        if (tasks[src].proj != t.part_types[part]) {
          report.Add(Rule::kPartMismatch, Severity::kError, loc(ti),
                     "input from task " + std::to_string(src) +
                         " carries " +
                         TypesName(tasks[src].proj, options.registry) +
                         " matches into part " + std::to_string(part) +
                         " which expects " +
                         TypesName(t.part_types[part], options.registry),
                     "feed each evaluator part exactly its projection's "
                     "match stream");
        }
      }
      for (int p = 0; p < static_cast<int>(t.part_types.size()); ++p) {
        if (!covered.contains(p)) {
          report.Add(Rule::kPartUnwired, Severity::kError, loc(ti),
                     "evaluator part " + std::to_string(p) + " (" +
                         TypesName(t.part_types[p], options.registry) +
                         ") receives no input: the task can never emit a "
                         "match",
                     "wire at least one input channel per part");
        }
      }
    }

    // Orphans: output that neither feeds a consumer nor is a query sink.
    if (t.successors.empty() && t.sink_for.empty()) {
      report.Add(Rule::kOrphanTask, Severity::kError, loc(ti),
                 "task output feeds no successor and serves no query sink",
                 "remove the orphan task or route its matches");
    }
    for (int q : t.sink_for) {
      if (q < 0 || q >= num_queries) {
        report.Add(Rule::kTaskRefInvalid, Severity::kError, loc(ti),
                   "sink_for references non-existent query " +
                       std::to_string(q),
                   "queries are indexed by workload position");
      }
    }
  }

  // M604: every query must have at least one sink task.
  for (int q = 0; q < num_queries; ++q) {
    const bool found = std::any_of(
        tasks.begin(), tasks.end(), [q](const Task& t) {
          return std::find(t.sink_for.begin(), t.sink_for.end(), q) !=
                 t.sink_for.end();
        });
    if (!found) {
      report.Add(Rule::kTaskSinkMissing, Severity::kError,
                 "query " + std::to_string(q),
                 "no task hosts the query's root projection; it can never "
                 "report a match",
                 "compile a complete plan (Def. 8) into the deployment");
    }
  }
  return report;
}

VerifyReport VerifyDeployment(const Deployment& deployment,
                              const Network& net,
                              const VerifyOptions& options) {
  return VerifyTasks(deployment.tasks(), deployment.num_queries(), net,
                     options);
}

VerifyReport VerifyObsConfig(const obs::ObsOptions& obs, int num_nodes,
                             int num_tasks, int num_queries) {
  VerifyReport report;

  // M700: labels drawn from the data domain (match keys) grow without
  // bound with trace length — every new key mints a new metric instance.
  if (obs.label_per_match) {
    report.Add(Rule::kObsUnboundedLabels, Severity::kWarning,
               "obs.label_per_match",
               "per-match counter labels are keyed by match content, an "
               "unbounded domain: registry memory grows with the trace, not "
               "the deployment",
               "label by query/node/task (finite, deployment-sized domains) "
               "and keep per-match data in sampled flow spans");
  }

  // M701: estimated instrument cardinality against the configured budget.
  // Mirrors what SimRun registers: per-node families (6), per-task
  // counters (4 across node x task), per-query families (2), and — with
  // per-link series — up to nodes^2 link label sets in both the registry
  // and the snapshot series.
  const size_t nodes = num_nodes < 0 ? 0 : static_cast<size_t>(num_nodes);
  const size_t tasks = num_tasks < 0 ? 0 : static_cast<size_t>(num_tasks);
  const size_t queries =
      num_queries < 0 ? 0 : static_cast<size_t>(num_queries);
  size_t estimated = nodes * 6 + tasks * 4 + queries * 2;
  if (obs.per_link_series) estimated += 2 * nodes * nodes;
  if (obs.max_label_cardinality != 0 &&
      estimated > obs.max_label_cardinality) {
    report.Add(
        Rule::kObsSnapshotFlood, Severity::kWarning, "obs.snapshot config",
        "estimated metric cardinality " + std::to_string(estimated) +
            " exceeds max_label_cardinality " +
            std::to_string(obs.max_label_cardinality) +
            (obs.per_link_series
                 ? " (per-link series contribute O(nodes^2) label sets)"
                 : ""),
        obs.per_link_series
            ? "disable per_link_series or raise max_label_cardinality"
            : "raise max_label_cardinality or shrink the deployment");
  }

  // M702: sampling without a span cap makes trace memory proportional to
  // the sampled event count instead of a fixed budget.
  if (obs.trace_sample_rate > 0 && obs.max_flows == 0) {
    report.Add(Rule::kObsTraceUncapped, Severity::kWarning,
               "obs.trace_sample_rate=" +
                   std::to_string(obs.trace_sample_rate),
               "flow tracing is enabled with max_flows=0 (unlimited): span "
               "memory grows linearly with the trace",
               "set max_flows to a fixed budget (default 4096)");
  }
  return report;
}

VerifyReport VerifyRtConfig(const rt::RtOptions& options) {
  VerifyReport report;
  const rt::RtTransportOptions& t = options.transport;

  // M800: capacity 0 disables the credit window entirely — nothing then
  // bounds inbox memory against a producer outrunning a consumer.
  if (t.inbox_capacity == 0) {
    report.Add(Rule::kRtInboxUnbounded, Severity::kError,
               "rt.transport.inbox_capacity=0",
               "inbox capacity 0 means unbounded: backpressure never "
               "engages, so a fast producer grows the receiver's inbox "
               "without limit",
               "set a finite per-node credit window (default 1024 frames)");
  }

  // M801: a batch needing more credits than the whole window can never be
  // delivered — the link wedges permanently once such a batch forms.
  if (t.inbox_capacity != 0 &&
      (t.batch_max_frames <= 0 ||
       static_cast<size_t>(t.batch_max_frames) > t.inbox_capacity)) {
    report.Add(Rule::kRtBatchExceedsInbox, Severity::kError,
               "rt.transport.batch_max_frames=" +
                   std::to_string(t.batch_max_frames),
               "a packet of up to " + std::to_string(t.batch_max_frames) +
                   " frames can never acquire " +
                   std::to_string(t.inbox_capacity) +
                   " inbox credits: the link stalls forever once the batch "
                   "fills",
               "keep batch_max_frames in [1, inbox_capacity]");
  }

  // M801 again for per-node overrides: a node-specific window below the
  // batch size wedges every link into that node. (ProveDeployment's M900
  // re-derives this per deployed link with routing context; this check
  // needs no deployment.)
  for (size_t n = 0; n < t.node_inbox_capacity.size(); ++n) {
    const size_t window = t.node_inbox_capacity[n];
    if (window == 0 || t.batch_max_frames <= 0) continue;  // inherits global
    if (static_cast<size_t>(t.batch_max_frames) <= window) continue;
    report.Add(Rule::kRtBatchExceedsInbox, Severity::kError,
               "rt.transport.node_inbox_capacity[" + std::to_string(n) +
                   "]=" + std::to_string(window),
               "a packet of up to " + std::to_string(t.batch_max_frames) +
                   " frames can never acquire node " + std::to_string(n) +
                   "'s " + std::to_string(window) +
                   " inbox credits: every link into the node stalls forever "
                   "once such a batch fills",
               "raise the override to at least batch_max_frames or shrink "
               "batch_max_frames");
  }

  // M802: the runtime maps slack 0 to an effectively unbounded eviction
  // horizon (the differential-determinism default); long-running
  // deployments then never reclaim stale partial matches.
  if (options.eval.eviction_slack_ms == 0) {
    report.Add(Rule::kRtEvictionUnbounded, Severity::kWarning,
               "rt.eval.eviction_slack_ms=0",
               "slack 0 selects an unbounded eviction horizon: partial "
               "matches are only reclaimed at the final flush, so memory "
               "grows with the stream on long-running deployments",
               "set a finite slack covering the expected cross-node arrival "
               "skew (e.g. a few delivery delays)");
  }

  return report;
}

}  // namespace muse
