#include "src/analysis/prove.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace muse {
namespace {

constexpr uint64_t kSatMax = UINT64_MAX;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > kSatMax - b ? kSatMax : a + b;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string TypeName(EventTypeId t, const TypeRegistry* reg) {
  if (reg != nullptr && static_cast<int>(t) < reg->size()) {
    return reg->Name(t);
  }
  return "E" + std::to_string(t);
}

std::string TypesName(TypeSet s, const TypeRegistry* reg) {
  std::string out = "{";
  bool first = true;
  for (EventTypeId t : s) {
    if (!first) out += ",";
    first = false;
    out += TypeName(t, reg);
  }
  return out + "}";
}

std::string TaskLoc(const Task& t, const TypeRegistry* reg) {
  return "task " + std::to_string(t.id) + " (" + TypesName(t.proj, reg) +
         "@n" + std::to_string(t.node) + ")";
}

/// Abstracted per-task facts: modeled output rate and per-part arrival
/// rates, all in events (frames) per second under the cost model.
struct TaskInfo {
  bool valid = false;  ///< catalog-backed; invalid tasks contribute nothing
  double out_rate = 0;
  double arr_total = 0;
  std::vector<double> part_arr;
};

/// Effective credit window of `node` under `t` (0 = unbounded).
size_t WindowOf(const rt::RtTransportOptions& t, NodeId node) {
  if (node < t.node_inbox_capacity.size() &&
      t.node_inbox_capacity[node] != 0) {
    return t.node_inbox_capacity[node];
  }
  return t.inbox_capacity;
}

/// Strongly connected components of the node routing graph (iterative
/// Tarjan: the graph can have up to a network's worth of nodes, so no
/// recursion). Returns the component id of every node; nodes whose
/// component has more than one member — or a self-loop — sit on a
/// blocking cycle.
std::vector<int> SccIds(size_t n, const std::vector<std::set<NodeId>>& adj) {
  std::vector<int> comp(n, -1), index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0, next_comp = 0;

  struct Frame {
    NodeId v;
    std::set<NodeId>::const_iterator it;
  };
  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, adj[root].begin()}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it != adj[f.v].end()) {
        const NodeId w = *f.it++;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, adj[w].begin()});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        const NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  return comp;
}

}  // namespace

ProveReport ProveDeployment(
    const Deployment& dep, const std::vector<const ProjectionCatalog*>& cats,
    const Network& net, const ProveOptions& options) {
  ProveReport report;
  const rt::RtTransportOptions& transport = options.rt.transport;
  const TypeRegistry* reg = options.registry;
  const uint64_t slack = options.rt.eval.eviction_slack_ms;  // 0 = unbounded
  const size_t num_nodes = static_cast<size_t>(net.num_nodes());
  const size_t batch = static_cast<size_t>(
      std::max(1, transport.batch_max_frames));

  // A cluster transport splits every inbox window W into processes+1
  // equal sender shares — one per daemon plus the coordinator (see
  // rt/net_transport.h). Each sender domain can spend only its own
  // share, so M900's per-link sufficiency must hold per *share*, and the
  // realizable aggregate inbox buffering is share * domains. TCP socket
  // buffers need no extra term: bytes in flight sit on already-spent
  // credits, so the shares bound kernel buffering as well.
  const size_t domains =
      options.rt.transport_kind == rt::RtTransportKind::kCluster
          ? static_cast<size_t>(std::max(1, options.rt.processes)) + 1
          : 1;
  auto share_of = [&](size_t cap) {
    return cap == 0 ? size_t{0} : std::max<size_t>(1, cap / domains);
  };

  report.nodes.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    report.nodes[n].node = n;
    report.nodes[n].credit_window = WindowOf(transport, n);
    report.nodes[n].credit_share = share_of(report.nodes[n].credit_window);
    report.nodes[n].capacity_eps = net.Capacity(n);
  }
  auto node_ok = [&](NodeId n) { return static_cast<size_t>(n) < num_nodes; };

  // ---- abstract the streams: per-task output and arrival rates ----------
  const std::vector<Task>& tasks = dep.tasks();
  std::vector<TaskInfo> info(tasks.size());

  // Partitioned placements split one projection's stream across the cover:
  // group size divides the modeled per-task rate.
  std::map<std::pair<uint64_t, int>, int> group_size;
  for (const Task& t : tasks) {
    if (t.is_primitive || t.part_type == kNoPartition) continue;
    if (t.rep_query < 0 || t.rep_query >= static_cast<int>(cats.size())) {
      continue;
    }
    const ProjectionCatalog& cat = *cats[t.rep_query];
    if (!cat.Valid(t.proj)) continue;
    ++group_size[{cat.SignatureHash(t.proj), t.part_type}];
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    TaskInfo& ti = info[i];
    if (t.is_primitive) {
      if (!node_ok(t.node) ||
          t.prim_type >= static_cast<EventTypeId>(net.num_types())) {
        continue;
      }
      ti.valid = true;
      // A primitive task forwards its own node's raw events.
      ti.out_rate = ti.arr_total = net.Rate(t.prim_type);
      continue;
    }
    if (t.rep_query < 0 || t.rep_query >= static_cast<int>(cats.size())) {
      continue;
    }
    const ProjectionCatalog& cat = *cats[t.rep_query];
    if (!cat.Valid(t.proj)) continue;
    ti.valid = true;
    ti.out_rate = cat.Rate(t.proj);
    if (t.part_type != kNoPartition) {
      const int group = group_size[{cat.SignatureHash(t.proj), t.part_type}];
      if (group > 1) ti.out_rate /= group;
    }
    ti.part_arr.assign(t.parts.size(), 0.0);
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (t.is_primitive || !info[i].valid) continue;
    for (const auto& [src, part] : t.inputs) {
      if (src < 0 || src >= static_cast<int>(tasks.size())) continue;
      if (part < 0 || part >= static_cast<int>(info[i].part_arr.size())) {
        continue;
      }
      info[i].part_arr[static_cast<size_t>(part)] += info[src].out_rate;
      info[i].arr_total += info[src].out_rate;
    }
  }

  // ---- M900: credit-deadlock over the deployed link graph ---------------
  // Credits are acquired all-or-nothing per packet, and only the source
  // driver blocks (workers spill), so the one packet that can wedge the
  // graph is a packet larger than its destination's whole credit window:
  // it never delivers, its spill queue never drains, and every sender in
  // its blocking cycle eventually stalls behind it. The check is therefore
  // per-link sufficiency — and stays sound for transports that acquire
  // credits partially, because the cycle context is reported alongside.
  std::vector<std::set<NodeId>> adj(num_nodes);
  std::vector<bool> injected(num_nodes, false);
  for (const Task& t : tasks) {
    if (!node_ok(t.node)) continue;
    for (int succ : t.successors) {
      if (succ < 0 || succ >= static_cast<int>(tasks.size())) continue;
      const NodeId dst = tasks[static_cast<size_t>(succ)].node;
      if (node_ok(dst)) adj[t.node].insert(dst);
    }
    if (t.is_primitive &&
        t.prim_type < static_cast<EventTypeId>(net.num_types()) &&
        net.Produces(t.node, t.prim_type)) {
      injected[t.node] = true;  // source-driver injection link
    }
  }
  std::vector<std::set<NodeId>> in_links(num_nodes);
  for (NodeId src = 0; src < num_nodes; ++src) {
    for (NodeId dst : adj[src]) in_links[dst].insert(src);
  }
  const std::vector<int> comp = SccIds(num_nodes, adj);
  std::vector<std::vector<NodeId>> comp_members(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    comp_members[static_cast<size_t>(comp[n])].push_back(n);
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    NodeCertificate& cert = report.nodes[n];
    // The hint is in whole-window frames: a cluster sender sees only a
    // 1/(processes+1) share, so the window must be `domains` times the
    // batch for one packet to ever clear a share.
    if (!in_links[n].empty() || injected[n]) cert.min_credit = batch * domains;
    const size_t window = cert.credit_window;
    if (window == 0 || cert.min_credit == 0 || batch <= cert.credit_share) {
      continue;
    }
    // Undeliverable link(s) into node n.
    std::string senders;
    for (NodeId src : in_links[n]) {
      if (!senders.empty()) senders += ",";
      senders += "n" + std::to_string(src);
    }
    if (injected[n]) {
      if (!senders.empty()) senders += ",";
      senders += "driver";
    }
    std::string msg = "a packet of up to " + std::to_string(batch) +
                      " frames from {" + senders +
                      "} can never acquire the node's " +
                      std::to_string(cert.credit_share) + " credits";
    if (domains > 1) {
      msg += " (the " + std::to_string(window) + "-frame window splits into " +
             std::to_string(domains) + " sender shares across " +
             std::to_string(domains - 1) + " processes)";
    }
    msg += ": the link wedges permanently once such a batch forms";
    const std::vector<NodeId>& members =
        comp_members[static_cast<size_t>(comp[n])];
    const bool self_loop = adj[n].count(n) != 0;
    if (members.size() > 1 || self_loop) {
      size_t aggregate = 0;
      bool cycle_bounded = true;
      std::string cycle;
      for (NodeId m : members) {
        if (!cycle.empty()) cycle += "->";
        cycle += "n" + std::to_string(m);
        const size_t w = WindowOf(transport, m);
        if (w == 0) cycle_bounded = false;
        aggregate += share_of(w);
      }
      msg += "; it wedges the blocking cycle {" + cycle + "}";
      if (cycle_bounded) {
        msg += " (aggregate sender-share credit " + std::to_string(aggregate) +
               ")";
      }
    }
    report.findings.Add(
        Rule::kRtCreditDeadlock, Severity::kError,
        "node " + std::to_string(n) + " (inbox=" + std::to_string(window) +
            ")",
        msg,
        "raise node " + std::to_string(n) + "'s credit window to at least " +
            std::to_string(cert.min_credit) +
            " frames or shrink batch_max_frames");
  }

  // ---- M901/M902: memory-bound certification per node -------------------
  // Volatile state only: the durable input log grows with the stream by
  // design (it is the recovery source of truth, modeled as durable
  // storage), so it is excluded from certification. Symbolic bounds per
  // component, with H = window + slack and stride S = max(1, H/2):
  //   ordered buffers   sum_p arr_p * (H + S) / 1000   (evictions run every
  //                     S ms of watermark advance, so live matches span at
  //                     most H + S ms of arrivals)
  //   NSEQ pending      pos_rate * H / 1000            (candidates release
  //                     at MaxTime + slack <= H behind the watermark)
  //   sink dedup        rhat_q * (window_q + 4*slack) / 1000 per sunk query
  //   inbox             the credit window, in frames
  //   channels          one exactly-once watermark entry per input channel
  for (NodeId n = 0; n < num_nodes; ++n) {
    NodeCertificate& cert = report.nodes[n];
    double bound = 0;
    std::vector<std::string> unbounded;
    std::string formula;
    auto add_part = [&](const std::string& label, double entries) {
      bound += entries;
      if (!formula.empty()) formula += " + ";
      formula += label + " " + Fmt(entries);
    };

    double buffers = 0, pending = 0, dedup = 0, channels = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      const Task& t = tasks[i];
      if (t.node != n || !info[i].valid) continue;
      channels += static_cast<double>(t.inputs.size());
      cert.load_eps += info[i].arr_total;
      if (t.is_primitive) continue;
      const uint64_t window = t.target.window();
      if (window == kNoWindow) {
        unbounded.push_back(TaskLoc(t, reg) + " is windowless");
        continue;
      }
      if (slack == 0) {
        unbounded.push_back(TaskLoc(t, reg) +
                            " runs with slack 0 (unbounded eviction "
                            "horizon)");
        continue;
      }
      const uint64_t horizon = SatAdd(window, slack);
      const uint64_t stride = std::max<uint64_t>(1, horizon / 2);
      for (double arr : info[i].part_arr) {
        buffers += std::ceil(
            arr * static_cast<double>(SatAdd(horizon, stride)) / 1000.0);
      }
      if (t.target.ContainsNegation()) {
        const TypeSet pos = t.target.PositiveTypes();
        const ProjectionCatalog& cat = *cats[t.rep_query];
        const double pos_rate =
            !pos.empty() && cat.Valid(pos) ? cat.Rate(pos) : info[i].out_rate;
        pending +=
            std::ceil(pos_rate * static_cast<double>(horizon) / 1000.0);
      }
      for (int q : t.sink_for) {
        if (q < 0 || q >= static_cast<int>(cats.size())) continue;
        const ProjectionCatalog& qcat = *cats[q];
        const uint64_t qwindow = qcat.query().window();
        if (qwindow == kNoWindow) {
          unbounded.push_back("sink of query " + std::to_string(q) + " at " +
                              TaskLoc(t, reg) + " is windowless");
          continue;
        }
        const uint64_t dedup_h =
            SatAdd(qwindow, slack > kSatMax / 4 ? kSatMax : 4 * slack);
        dedup += std::ceil(qcat.Rate(qcat.query().PrimitiveTypes()) *
                           static_cast<double>(dedup_h) / 1000.0);
      }
    }
    if (buffers > 0) add_part("buffers", buffers);
    if (pending > 0) add_part("pending", pending);
    if (dedup > 0) add_part("dedup", dedup);
    if (cert.credit_window == 0) {
      if (cert.min_credit > 0 || channels > 0) {
        unbounded.push_back("node " + std::to_string(n) +
                            "'s inbox is unbounded (capacity 0)");
      }
    } else if (cert.min_credit > 0 || channels > 0) {
      // Realizable aggregate across all sender domains. With rounding
      // (each share is at least 1 frame) this can slightly exceed the
      // configured window — the supremum must track what senders can
      // actually spend, not the nominal figure.
      add_part("inbox", static_cast<double>(cert.credit_share * domains));
    }
    if (channels > 0) add_part("channels", channels);

    cert.state_bounded = unbounded.empty();
    cert.state_bound = bound;
    cert.bound_formula = formula;
    if (!cert.state_bounded) {
      std::string why;
      for (const std::string& u : unbounded) {
        if (!why.empty()) why += "; ";
        why += u;
      }
      cert.bound_formula = "unbounded: " + why;
      report.findings.Add(
          Rule::kStateUnbounded, Severity::kWarning,
          "node " + std::to_string(n),
          "no finite bound on volatile state: " + why,
          "set a finite eviction slack and windows on every deployed "
          "projection (slack 0 is only safe for bounded differential runs)");
      if (options.state_budget > 0) {
        report.findings.Add(
            Rule::kStateBudgetExceeded, Severity::kError,
            "node " + std::to_string(n),
            "the state budget of " + std::to_string(options.state_budget) +
                " entries cannot be certified: the bound is unbounded",
            "bound the state first (see the state-unbounded warning)");
      }
    } else if (options.state_budget > 0 &&
               bound > static_cast<double>(options.state_budget)) {
      report.findings.Add(
          Rule::kStateBudgetExceeded, Severity::kError,
          "node " + std::to_string(n),
          "proven state bound " + Fmt(bound) + " entries (" + formula +
              ") exceeds the budget of " +
              std::to_string(options.state_budget),
          "shrink windows/slack, repartition load off this node, or raise "
          "the budget");
    }
  }

  // ---- M903: watermark liveness -----------------------------------------
  // The evaluator's watermark advances only on arrivals; eviction runs
  // every stride S of watermark advance. Starved tasks never evict at all
  // (error); a task whose expected inter-arrival gap exceeds its stride
  // holds state well past the horizon (warning), as does a task with a
  // modeled-quiet part whose partners keep buffering against it.
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (t.is_primitive || !info[i].valid) continue;
    const bool consumed = !t.successors.empty() || !t.sink_for.empty();
    if (!consumed) continue;
    if (info[i].arr_total <= 0) {
      report.findings.Add(
          Rule::kWatermarkStall, Severity::kError, TaskLoc(t, reg),
          "no modeled input ever arrives: the task's watermark never "
          "advances, so nothing it buffers is ever evicted and its outputs "
          "never exist",
          "check the producing rates and the partition assignment feeding "
          "this placement");
      continue;
    }
    for (size_t p = 0; p < info[i].part_arr.size(); ++p) {
      if (info[i].part_arr[p] > 0) continue;
      const std::string part_types =
          p < t.part_types.size() ? TypesName(t.part_types[p], reg)
                                  : "#" + std::to_string(p);
      report.findings.Add(
          Rule::kWatermarkStall, Severity::kWarning, TaskLoc(t, reg),
          "input part " + part_types +
              " receives no modeled arrivals: partner parts buffer matches "
              "against a join that can never complete",
          "wire a live producer into the part or drop the placement");
    }
    const uint64_t window = t.target.window();
    if (slack == 0 || window == kNoWindow) continue;  // M901 already covers
    const uint64_t horizon = SatAdd(window, slack);
    const uint64_t stride = std::max<uint64_t>(1, horizon / 2);
    const double gap_ms = 1000.0 / info[i].arr_total;
    if (gap_ms > static_cast<double>(stride)) {
      report.findings.Add(
          Rule::kWatermarkStall, Severity::kWarning, TaskLoc(t, reg),
          "expected inter-arrival gap " + Fmt(gap_ms) +
              "ms exceeds the eviction stride " + std::to_string(stride) +
              "ms: a quiet spell stalls the watermark and state is "
              "reclaimed late",
          "widen the eviction slack or route a denser input through the "
          "task");
    }
  }

  // ---- M904: capacity feasibility ---------------------------------------
  for (NodeId n = 0; n < num_nodes; ++n) {
    NodeCertificate& cert = report.nodes[n];
    if (cert.capacity_eps <= 0) continue;  // undeclared
    if (cert.load_eps > cert.capacity_eps) {
      report.findings.Add(
          Rule::kCapacityInfeasible, Severity::kError,
          "node " + std::to_string(n),
          "modeled processing load " + Fmt(cert.load_eps) +
              " inputs/s exceeds the declared capacity of " +
              Fmt(cert.capacity_eps) + " events/s",
          "move placements off the node or declare a higher capacity");
    }
  }

  // ---- M905: migration-state bound --------------------------------------
  // A live migration (muse-adapt) rebuilds the next plan by replaying each
  // node's source-log suffix inside the replay horizon H = max deployed
  // window + slack of the barrier. The transferable state per node is its
  // modeled injection volume over H: the sum of ceil(rate * H / 1000)
  // over the primitive tasks it hosts (primitives are exactly what the
  // durable log records). Unbounded when a deployed projection is
  // windowless or the slack is 0 — the replay cutoff then never clears
  // the start of the log, so a migration would ship the whole history.
  uint64_t max_window = 0;
  bool windows_bounded = true;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (t.is_primitive || !info[i].valid) continue;
    if (t.target.window() == kNoWindow) {
      windows_bounded = false;
      break;
    }
    max_window = std::max(max_window, t.target.window());
  }
  const bool migration_bounded = windows_bounded && slack != 0;
  const uint64_t mig_horizon = SatAdd(max_window, slack);
  for (NodeId n = 0; n < num_nodes; ++n) {
    NodeCertificate& cert = report.nodes[n];
    cert.migration_state_bounded = migration_bounded;
    if (!migration_bounded) continue;
    double events = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      const Task& t = tasks[i];
      if (t.node != n || !t.is_primitive || !info[i].valid) continue;
      events += std::ceil(info[i].out_rate *
                          static_cast<double>(mig_horizon) / 1000.0);
    }
    cert.migration_state_bound = events;
  }
  if (!migration_bounded) {
    report.findings.Add(
        Rule::kMigrationStateUnbounded, Severity::kWarning, "deployment",
        std::string("no finite bound on live-migration transfer state: ") +
            (windows_bounded
                 ? "eviction slack 0 makes the replay horizon unbounded"
                 : "a deployed projection is windowless"),
        "set a finite eviction slack and windows on every deployed "
        "projection before running with an adapt driver");
  }

  return report;
}

std::string ProveReport::ToString() const {
  return findings.ToString() + CertificateTable();
}

std::string ProveReport::CertificateTable() const {
  std::string out =
      "node  load/s      capacity    inbox  share  min  state bound"
      " | migration bound\n";
  for (const NodeCertificate& c : nodes) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "n%-4u %-11.6g %-11.6g %-6zu %-6zu %-4zu ",
                  static_cast<unsigned>(c.node), c.load_eps, c.capacity_eps,
                  c.credit_window, c.credit_share, c.min_credit);
    out += line;
    if (c.state_bounded) {
      out += Fmt(c.state_bound);
      if (!c.bound_formula.empty()) out += " = " + c.bound_formula;
    } else {
      out += c.bound_formula;
    }
    out += c.migration_state_bounded
               ? " | mig " + Fmt(c.migration_state_bound)
               : " | mig unbounded";
    out += "\n";
  }
  return out;
}

void ExportProveBounds(const ProveReport& report,
                       obs::MetricsRegistry* registry) {
  for (const NodeCertificate& c : report.nodes) {
    const obs::LabelSet labels{{"node", std::to_string(c.node)}};
    registry->GetGauge("prove_state_bounded", labels)
        ->Set(c.state_bounded ? 1.0 : 0.0);
    if (c.state_bounded) {
      registry->GetGauge("prove_state_bound", labels)->Set(c.state_bound);
    }
    registry->GetGauge("prove_min_credit", labels)
        ->Set(static_cast<double>(c.min_credit));
    registry->GetGauge("prove_credit_share", labels)
        ->Set(static_cast<double>(c.credit_share));
    registry->GetGauge("prove_load_eps", labels)->Set(c.load_eps);
    registry->GetGauge("prove_migration_state_bounded", labels)
        ->Set(c.migration_state_bounded ? 1.0 : 0.0);
    if (c.migration_state_bounded) {
      registry->GetGauge("prove_migration_state_bound", labels)
          ->Set(c.migration_state_bound);
    }
  }
}

}  // namespace muse
