#ifndef MUSE_ANALYSIS_DIAGNOSTICS_H_
#define MUSE_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace muse {

/// Diagnostic rules of the static plan verifier (verify.h). Each rule has a
/// stable code ("M200") and slug ("input-gap") used in CLI output and
/// tests; the full catalog with remediation guidance lives in DESIGN.md.
///
/// Numbering groups rules by subsystem:
///   M1xx graph structure        M4xx cost-model consistency
///   M2xx input coverage         M5xx projection-boundary compatibility
///   M3xx placement feasibility  M6xx deployment wiring
///   M7xx observability configuration
///   M8xx runtime (muse-rt) configuration
///   M9xx whole-deployment safety proofs (muse-prove, prove.h)
enum class Rule {
  // -- M1xx: graph structure --------------------------------------------
  kGraphCycle,          ///< M100: directed cycle in the MuSE graph
  kSinkMissing,         ///< M101: query has no root-projection vertex
  kDeadVertex,          ///< M102: vertex feeds no root of its query
  kBadIndex,            ///< M103: edge/sink index out of range
  // -- M2xx: input coverage ---------------------------------------------
  kInputGap,            ///< M200: predecessors do not cover the projection
  kInputNotSubset,      ///< M201: predecessor is not a proper subset
  kInputRedundant,      ///< M202: a predecessor part is redundant (Def. 15)
  kProjectionInvalid,   ///< M203: type set is not a valid projection (Def. 9)
  kPrimitiveWithInputs, ///< M204: primitive vertex has predecessors
  kReuseUnbacked,       ///< M205: reused placement has no providing vertex
  // -- M3xx: placement feasibility --------------------------------------
  kQueryRange,          ///< M300: vertex query index outside the workload
  kNodeRange,           ///< M301: vertex node outside the network
  kPrimitiveMisplaced,  ///< M302: primitive vertex at a non-producing node
  kSourceMissing,       ///< M303: no primitive vertex for a (type, producer)
  kSinkCoverGap,        ///< M304: sinks do not cover all bindings (Def. 8)
  kPartitionInvalid,    ///< M305: partition type unusable (empty cover)
  // -- M4xx: cost-model consistency -------------------------------------
  kRateDivergence,      ///< M400: stored r-hat diverges from recomputation
  // -- M5xx: projection-boundary compatibility --------------------------
  kWindowMismatch,      ///< M500: windows disagree across an edge
  kPredicateMismatch,   ///< M501: predicates/structure disagree across edge
  // -- M6xx: deployment wiring ------------------------------------------
  kChannelMissing,      ///< M600: input/successor channel is one-sided
  kPartUnwired,         ///< M601: evaluator part receives no input
  kTaskRefInvalid,      ///< M602: task/part reference out of range
  kOrphanTask,          ///< M603: task output reaches no consumer or sink
  kTaskSinkMissing,     ///< M604: query has no sink task
  kPartMismatch,        ///< M605: input feeds a part of a different type set
  // -- M7xx: observability configuration ---------------------------------
  kObsUnboundedLabels,  ///< M700: data-valued labels (unbounded cardinality)
  kObsSnapshotFlood,    ///< M701: snapshot series exceed cardinality budget
  kObsTraceUncapped,    ///< M702: flow tracing enabled without a span cap
  // -- M8xx: runtime (muse-rt) configuration ------------------------------
  kRtInboxUnbounded,    ///< M800: inbox capacity 0 disables backpressure
  kRtBatchExceedsInbox, ///< M801: batch larger than the credit window
  kRtEvictionUnbounded, ///< M802: unbounded eviction horizon in production
  // -- M9xx: whole-deployment safety proofs (muse-prove) ------------------
  kRtCreditDeadlock,    ///< M900: a deployed link can wedge its credit cycle
  kStateUnbounded,      ///< M901: no finite bound on a node's volatile state
  kStateBudgetExceeded, ///< M902: proven state bound exceeds the budget
  kWatermarkStall,      ///< M903: quiet input can stall eviction progress
  kCapacityInfeasible,  ///< M904: node load under r-hat exceeds capacity
  kMigrationStateUnbounded, ///< M905: live-migration transfer state unbounded
};

/// Stable short code, e.g. "M200".
const char* RuleCode(Rule rule);
/// Stable slug, e.g. "input-gap".
const char* RuleName(Rule rule);

enum class Severity {
  kWarning,  ///< suspicious but not plan-breaking (e.g. redundant input)
  kError,    ///< violates a correctness condition of §5
};

/// One finding of the static verifier, in compiler-diagnostic style:
/// what rule fired, how bad it is, where, and how to fix it.
struct Diagnostic {
  Rule rule = Rule::kGraphCycle;
  Severity severity = Severity::kError;
  std::string location;  ///< e.g. "vertex 5 (q0:{0,2}@n3)" or "task 7@n2"
  std::string message;   ///< what is wrong
  std::string hint;      ///< how to fix it (may be empty)

  /// "error[M200/input-gap] vertex 5 (...): ... (hint: ...)".
  std::string ToString() const;
};

/// The result of one verification pass: an ordered list of diagnostics.
class VerifyReport {
 public:
  void Add(Rule rule, Severity severity, std::string location,
           std::string message, std::string hint = "");
  void MergeFrom(const VerifyReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int errors() const { return errors_; }
  int warnings() const { return static_cast<int>(diags_.size()) - errors_; }

  /// True if no *errors* were reported (warnings allowed).
  bool ok() const { return errors_ == 0; }
  /// True if nothing at all was reported.
  bool clean() const { return diags_.empty(); }

  bool HasRule(Rule rule) const;

  /// All diagnostics, one per line; empty string when clean.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
};

}  // namespace muse

#endif  // MUSE_ANALYSIS_DIAGNOSTICS_H_
