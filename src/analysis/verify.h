#ifndef MUSE_ANALYSIS_VERIFY_H_
#define MUSE_ANALYSIS_VERIFY_H_

#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/muse_graph.h"
#include "src/core/projection.h"
#include "src/dist/deployment.h"
#include "src/obs/telemetry.h"
#include "src/rt/runtime.h"

namespace muse {

/// Static verification of MuSE graph plans and compiled deployments:
/// checks the paper's correctness conditions (§5) and the runtime's wiring
/// invariants *without executing a single event*, reporting structured,
/// compiler-style diagnostics (diagnostics.h) instead of aborting.
///
/// Relationship to correctness.h: `IsCorrectPlan` is the planner-facing
/// boolean predicate (well-formedness + completeness); `VerifyPlan` covers
/// those conditions *and* structural, cost-model, and cross-boundary rules,
/// is total on arbitrary (e.g. deserialized, corrupted) plans, and explains
/// every violation. Use it to vet plans that cross a trust boundary — the
/// JSON import path, hand-edited plans, new planner strategies.
struct VerifyOptions {
  /// Relative tolerance for the M400 rate-consistency rule: a stored
  /// projection output rate r-hat diverging from its bottom-up
  /// recomputation by more than this fraction is flagged.
  double rate_tolerance = 1e-6;

  /// Disables the M400 recomputation pass (it is O(vertices * AST size)).
  bool check_rates = true;

  /// Optional type registry for human-readable type names in locations.
  const TypeRegistry* registry = nullptr;
};

/// Verifies `g` as an evaluation plan for the workload described by
/// `catalogs` (catalog i belongs to workload query i; all catalogs share
/// one network). Covers rules M1xx-M5xx; never crashes on malformed input.
VerifyReport VerifyPlan(const MuseGraph& g,
                        const std::vector<const ProjectionCatalog*>& catalogs,
                        const VerifyOptions& options = {});

/// Single-query convenience overload.
VerifyReport VerifyPlan(const MuseGraph& g, const ProjectionCatalog& catalog,
                        const VerifyOptions& options = {});

/// Verifies task wiring (rules M6xx plus the placement rules that apply at
/// task granularity) of a compiled deployment: channel symmetry, evaluator
/// part coverage, orphan tasks, per-query sink tasks. Exposed over a raw
/// task vector so corrupted wirings can be examined without constructing a
/// `Deployment` (whose constructor asserts).
VerifyReport VerifyTasks(const std::vector<Task>& tasks, int num_queries,
                         const Network& net,
                         const VerifyOptions& options = {});

/// Convenience wrapper over a compiled deployment.
VerifyReport VerifyDeployment(const Deployment& deployment,
                              const Network& net,
                              const VerifyOptions& options = {});

/// Static verification of a telemetry configuration (rules M70x) against
/// the size of the deployment it will instrument: estimates the label-set
/// cardinality the simulator registers for `num_nodes` nodes, `num_tasks`
/// tasks, and `num_queries` queries and flags configurations whose metric
/// or series cardinality is unbounded (data-valued labels) or exceeds
/// `obs.max_label_cardinality`. All findings are warnings — a noisy
/// telemetry config degrades the monitoring pipeline, not plan
/// correctness.
VerifyReport VerifyObsConfig(const obs::ObsOptions& obs, int num_nodes,
                             int num_tasks, int num_queries);

/// Static verification of a muse-rt runtime configuration (rules M80x):
/// flow-control soundness of the transport (bounded inboxes, deliverable
/// batch sizes) and the eviction policy of long-running deployments.
/// M800/M801 are errors — such configs can exhaust memory or wedge a link
/// permanently; M802 is a warning because the unbounded horizon is exactly
/// what the differential harness needs, but a production run with it never
/// reclaims partial matches.
VerifyReport VerifyRtConfig(const rt::RtOptions& options);

}  // namespace muse

#endif  // MUSE_ANALYSIS_VERIFY_H_
