#ifndef MUSE_ANALYSIS_PROVE_H_
#define MUSE_ANALYSIS_PROVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/projection.h"
#include "src/dist/deployment.h"
#include "src/obs/metrics.h"
#include "src/rt/runtime.h"

namespace muse {

/// muse-prove: whole-deployment static safety analysis (rules M90x).
///
/// The local verifier rules (verify.h, M1xx-M8xx) check each plan vertex,
/// task, or config scalar in isolation. The prove pass interprets the
/// *deployed graph as a whole* against a concrete runtime configuration
/// and certifies the global safety properties a run depends on:
///
///   M900 credit-deadlock    every deployed link's largest packet fits the
///                           destination's credit window; a link that
///                           cannot drain wedges its whole blocking cycle
///   M901 state-unbounded    each node's volatile state (ordered buffers,
///                           NSEQ pending sets, sink dedup sets, inbox)
///                           has a finite symbolic bound
///   M902 state-budget       the proven bound also fits a caller budget
///   M903 watermark-stall    eviction progress cannot stall behind a quiet
///                           or starved input
///   M904 capacity           per-node load under the cost model's r-hat
///                           fits the node's declared capacity
///   M905 migration-state    a live migration's per-node state transfer
///                           (the source-log suffix inside the replay
///                           horizon) has a finite symbolic bound
///
/// The analysis is abstract interpretation over rates and windows: event
/// streams are abstracted to their modeled rates (Network / catalog r-hat),
/// time to the eviction horizon H = window + slack and stride S = max(1,
/// H/2), and queues to their credit windows. All bounds are *suprema* of
/// the runtime's actual behavior — `rt_node_peak_buffered` from a real run
/// never exceeds the exported `prove_state_bound` of its node.
struct ProveOptions {
  /// Runtime configuration under which the deployment would run. The
  /// transport fields drive M900 (credit windows, batch sizes), the
  /// eval fields drive M901-M903 (eviction slack), and transport_kind +
  /// processes select the credit-share model: a kCluster deployment
  /// splits every inbox window across processes+1 sender domains, so a
  /// window that is safe single-process can deadlock across sockets.
  rt::RtOptions rt;

  /// Volatile-state budget per node in buffered entries (matches + pending
  /// candidates + dedup entries + inbox frames). 0 disables M902; M901
  /// still rejects nodes with no finite bound at all.
  uint64_t state_budget = 0;

  /// Optional registry for readable type names in locations.
  const TypeRegistry* registry = nullptr;
};

/// Per-node result of the memory/capacity analysis: what was proven, not
/// just whether it passed.
struct NodeCertificate {
  NodeId node = 0;

  /// Expected processing load in inputs/s (sum of the arrival rates of
  /// every task hosted on the node, under the cost model's rates).
  double load_eps = 0;
  /// Declared capacity (Network::Capacity); 0 = undeclared.
  double capacity_eps = 0;

  /// Configured inbox credit window in frames (0 = unbounded).
  size_t credit_window = 0;
  /// Per-sender-domain share of that window actually spendable by one
  /// sender: equal to `credit_window` for in-proc and loopback runs, and
  /// max(1, window / (processes + 1)) under a cluster transport, which
  /// splits the window across the daemons plus the coordinator (TCP
  /// socket buffers only ever hold packets on already-spent credits, so
  /// the share bounds kernel buffering too).
  size_t credit_share = 0;
  /// Minimum *whole* credit window that admits every incoming link's
  /// largest packet through a single sender share (the M900 hint);
  /// 0 when no link targets this node.
  size_t min_credit = 0;

  /// Proven supremum of volatile state in buffered entries, valid only
  /// when `state_bounded`.
  double state_bound = 0;
  bool state_bounded = false;

  /// Human-readable derivation of `state_bound`, e.g.
  /// "buffers 840 + pending 120 + dedup 96 + inbox 64 + channels 3".
  std::string bound_formula;

  /// Proven supremum of the events a live migration (muse-adapt) would
  /// transfer from this node: the node's modeled injection volume over
  /// the replay horizon H = max deployed window + slack, i.e. the sum of
  /// ceil(rate * H / 1000) over hosted primitive tasks. Valid only when
  /// `migration_state_bounded` (finite windows and a nonzero slack).
  double migration_state_bound = 0;
  bool migration_state_bounded = false;
};

/// The proof outcome: M90x findings through the standard diagnostics
/// engine plus the per-node certificates behind them.
struct ProveReport {
  VerifyReport findings;
  std::vector<NodeCertificate> nodes;

  /// True when no M90x *error* was found (warnings allowed) — the
  /// deployment is certified safe to run under the given config.
  bool certified() const { return findings.ok(); }

  /// The per-node certificate table alone (one line per node).
  std::string CertificateTable() const;

  /// Findings followed by the certificate table.
  std::string ToString() const;
};

/// Runs the full prove pass over a compiled deployment. Total on malformed
/// input (out-of-range query indices, invalid projections): tasks the plan
/// rules would reject are skipped, never dereferenced.
ProveReport ProveDeployment(
    const Deployment& deployment,
    const std::vector<const ProjectionCatalog*>& catalogs, const Network& net,
    const ProveOptions& options = {});

/// Exports the proven bounds as static-expectation gauges so dashboards
/// and tests can compare runtime peaks against them:
///   prove_state_bound{node}    proven volatile-state supremum (entries;
///                              only exported for bounded nodes)
///   prove_state_bounded{node}  1 when a finite bound exists, else 0
///   prove_min_credit{node}     minimum viable credit window (frames)
///   prove_credit_share{node}   spendable per-sender share of the window
///   prove_load_eps{node}       expected processing load (inputs/s)
///   prove_migration_state_bound{node}    proven live-migration transfer
///                              supremum (events; bounded nodes only)
///   prove_migration_state_bounded{node}  1 when that bound is finite
void ExportProveBounds(const ProveReport& report,
                       obs::MetricsRegistry* registry);

}  // namespace muse

#endif  // MUSE_ANALYSIS_PROVE_H_
