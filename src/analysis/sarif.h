#ifndef MUSE_ANALYSIS_SARIF_H_
#define MUSE_ANALYSIS_SARIF_H_

#include <string>

#include "src/analysis/diagnostics.h"

namespace muse {

/// Renders a verification report as a SARIF 2.1.0 log (the Static Analysis
/// Results Interchange Format GitHub code scanning ingests), so muse_lint
/// findings annotate pull requests like any other analyzer's.
///
/// `artifact_uri` names the analyzed artifact (the spec or plan file,
/// repo-relative); every result anchors there, with the diagnostic's
/// structured location ("task 7@n2") carried as a logical location —
/// findings are about graph elements, not source lines. Returns a complete
/// JSON document (one run, one result per diagnostic, rule metadata for
/// every rule that fired); an empty report yields a valid log with zero
/// results, which code scanning treats as "all clear".
std::string SarifReport(const VerifyReport& report,
                        const std::string& artifact_uri);

}  // namespace muse

#endif  // MUSE_ANALYSIS_SARIF_H_
