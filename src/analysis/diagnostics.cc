#include "src/analysis/diagnostics.h"

#include <utility>

namespace muse {

const char* RuleCode(Rule rule) {
  switch (rule) {
    case Rule::kGraphCycle: return "M100";
    case Rule::kSinkMissing: return "M101";
    case Rule::kDeadVertex: return "M102";
    case Rule::kBadIndex: return "M103";
    case Rule::kInputGap: return "M200";
    case Rule::kInputNotSubset: return "M201";
    case Rule::kInputRedundant: return "M202";
    case Rule::kProjectionInvalid: return "M203";
    case Rule::kPrimitiveWithInputs: return "M204";
    case Rule::kReuseUnbacked: return "M205";
    case Rule::kQueryRange: return "M300";
    case Rule::kNodeRange: return "M301";
    case Rule::kPrimitiveMisplaced: return "M302";
    case Rule::kSourceMissing: return "M303";
    case Rule::kSinkCoverGap: return "M304";
    case Rule::kPartitionInvalid: return "M305";
    case Rule::kRateDivergence: return "M400";
    case Rule::kWindowMismatch: return "M500";
    case Rule::kPredicateMismatch: return "M501";
    case Rule::kChannelMissing: return "M600";
    case Rule::kPartUnwired: return "M601";
    case Rule::kTaskRefInvalid: return "M602";
    case Rule::kOrphanTask: return "M603";
    case Rule::kTaskSinkMissing: return "M604";
    case Rule::kPartMismatch: return "M605";
    case Rule::kObsUnboundedLabels: return "M700";
    case Rule::kObsSnapshotFlood: return "M701";
    case Rule::kObsTraceUncapped: return "M702";
    case Rule::kRtInboxUnbounded: return "M800";
    case Rule::kRtBatchExceedsInbox: return "M801";
    case Rule::kRtEvictionUnbounded: return "M802";
    case Rule::kRtCreditDeadlock: return "M900";
    case Rule::kStateUnbounded: return "M901";
    case Rule::kStateBudgetExceeded: return "M902";
    case Rule::kWatermarkStall: return "M903";
    case Rule::kCapacityInfeasible: return "M904";
    case Rule::kMigrationStateUnbounded: return "M905";
  }
  return "M???";
}

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kGraphCycle: return "graph-cycle";
    case Rule::kSinkMissing: return "sink-missing";
    case Rule::kDeadVertex: return "dead-vertex";
    case Rule::kBadIndex: return "bad-index";
    case Rule::kInputGap: return "input-gap";
    case Rule::kInputNotSubset: return "input-not-subset";
    case Rule::kInputRedundant: return "input-redundant";
    case Rule::kProjectionInvalid: return "projection-invalid";
    case Rule::kPrimitiveWithInputs: return "primitive-with-inputs";
    case Rule::kReuseUnbacked: return "reuse-unbacked";
    case Rule::kQueryRange: return "query-range";
    case Rule::kNodeRange: return "node-range";
    case Rule::kPrimitiveMisplaced: return "primitive-misplaced";
    case Rule::kSourceMissing: return "source-missing";
    case Rule::kSinkCoverGap: return "sink-cover-gap";
    case Rule::kPartitionInvalid: return "partition-invalid";
    case Rule::kRateDivergence: return "rate-divergence";
    case Rule::kWindowMismatch: return "window-mismatch";
    case Rule::kPredicateMismatch: return "predicate-mismatch";
    case Rule::kChannelMissing: return "channel-missing";
    case Rule::kPartUnwired: return "part-unwired";
    case Rule::kTaskRefInvalid: return "task-ref-invalid";
    case Rule::kOrphanTask: return "orphan-task";
    case Rule::kTaskSinkMissing: return "task-sink-missing";
    case Rule::kPartMismatch: return "part-mismatch";
    case Rule::kObsUnboundedLabels: return "obs-unbounded-labels";
    case Rule::kObsSnapshotFlood: return "obs-snapshot-flood";
    case Rule::kObsTraceUncapped: return "obs-trace-uncapped";
    case Rule::kRtInboxUnbounded: return "rt-inbox-unbounded";
    case Rule::kRtBatchExceedsInbox: return "rt-batch-exceeds-inbox";
    case Rule::kRtEvictionUnbounded: return "rt-eviction-unbounded";
    case Rule::kRtCreditDeadlock: return "credit-deadlock";
    case Rule::kStateUnbounded: return "state-unbounded";
    case Rule::kStateBudgetExceeded: return "state-budget-exceeded";
    case Rule::kWatermarkStall: return "watermark-stall";
    case Rule::kCapacityInfeasible: return "capacity-infeasible";
    case Rule::kMigrationStateUnbounded: return "migration-state-unbounded";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = severity == Severity::kError ? "error[" : "warning[";
  out += RuleCode(rule);
  out += "/";
  out += RuleName(rule);
  out += "] ";
  out += location;
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " (hint: " + hint + ")";
  }
  return out;
}

void VerifyReport::Add(Rule rule, Severity severity, std::string location,
                       std::string message, std::string hint) {
  if (severity == Severity::kError) ++errors_;
  diags_.push_back(Diagnostic{rule, severity, std::move(location),
                              std::move(message), std::move(hint)});
}

void VerifyReport::MergeFrom(const VerifyReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  errors_ += other.errors_;
}

bool VerifyReport::HasRule(Rule rule) const {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string VerifyReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace muse
