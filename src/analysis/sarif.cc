#include "src/analysis/sarif.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace muse {
namespace {

/// JSON string escaping per RFC 8259 (control chars, quote, backslash).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const char* LevelOf(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

std::string SarifReport(const VerifyReport& report,
                        const std::string& artifact_uri) {
  const std::string uri = Escape(artifact_uri);

  // Rule metadata, one entry per distinct rule that fired, in first-seen
  // order (SARIF requires result.ruleIndex to match this array).
  std::vector<Rule> rules;
  std::set<std::string> seen;
  for (const Diagnostic& d : report.diagnostics()) {
    if (seen.insert(RuleCode(d.rule)).second) rules.push_back(d.rule);
  }
  auto rule_index = [&](Rule r) {
    for (size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == r) return i;
    }
    return static_cast<size_t>(0);
  };

  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\n";
  out += "      \"name\": \"muse_lint\",\n";
  out += "      \"informationUri\": "
         "\"https://github.com/muse-graphs/muse\",\n";
  out += "      \"rules\": [";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n        {\"id\": \"";
    out += RuleCode(rules[i]);
    out += "\", \"name\": \"";
    out += Escape(RuleName(rules[i]));
    out += "\", \"shortDescription\": {\"text\": \"";
    out += Escape(RuleName(rules[i]));
    out += "\"}}";
  }
  if (!rules.empty()) out += "\n      ";
  out += "]\n";
  out += "    }},\n";
  out += "    \"results\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) out += ",";
    first = false;
    std::string text = d.message;
    if (!d.hint.empty()) text += " (hint: " + d.hint + ")";
    out += "\n      {\n";
    out += "        \"ruleId\": \"";
    out += RuleCode(d.rule);
    out += "\",\n";
    out += "        \"ruleIndex\": " + std::to_string(rule_index(d.rule)) +
           ",\n";
    out += "        \"level\": \"";
    out += LevelOf(d.severity);
    out += "\",\n";
    out += "        \"message\": {\"text\": \"" + Escape(text) + "\"},\n";
    out += "        \"locations\": [{\n";
    out += "          \"physicalLocation\": {\n";
    out += "            \"artifactLocation\": {\"uri\": \"" + uri + "\"},\n";
    out += "            \"region\": {\"startLine\": 1, \"startColumn\": 1}\n";
    out += "          },\n";
    out += "          \"logicalLocations\": [{\"fullyQualifiedName\": \"" +
           Escape(d.location) + "\"}]\n";
    out += "        }]\n";
    out += "      }";
  }
  if (!first) out += "\n    ";
  out += "]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

}  // namespace muse
