#ifndef MUSE_CEP_ENGINE_H_
#define MUSE_CEP_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cep/evaluator.h"
#include "src/cep/match.h"
#include "src/cep/query.h"
#include "src/obs/metrics.h"

namespace muse {

/// Centralized evaluation of a single (OR-free) query over a stream of raw
/// events: the reference model in which all events are gathered at one
/// location (§1). Internally one `ProjectionEvaluator` with a singleton
/// primitive part per positive type, plus one sub-engine per NSEQ middle
/// child whose matches feed the main evaluator's anti part.
class QueryEngine {
 public:
  explicit QueryEngine(const Query& q, EvaluatorOptions options = {});

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  const Query& query() const { return query_; }

  /// Feeds one event of the global trace; completed matches are appended to
  /// `out`. Events of types not referenced by the query are ignored.
  void OnEvent(const Event& e, std::vector<Match>* out);

  /// Columnar ingestion of a whole batch of global-trace events (rows in
  /// `seq` order), semantically equal to calling OnEvent per row: the same
  /// match multiset is emitted, though order within a batch may differ.
  /// NSEQ middle sub-engines consume the batch first so every anti match is
  /// known before positive candidates form; this requires batch ingestion
  /// to be order-insensitive, so when the batch's time span exceeds
  /// `eviction_slack_ms` a query with middles replays the batch through the
  /// scalar path instead (negation-free queries defer that decision to
  /// `ProjectionEvaluator::OnEventBatch`, which still pre-filters rows).
  void OnBatch(const EventBatch& batch, std::vector<Match>* out);

  /// Emits pending NSEQ candidates (no-op for negation-free queries).
  void Flush(std::vector<Match>* out);

  const EvaluatorStats& stats() const { return main_->stats(); }

  /// Exports the engine's evaluator statistics (main evaluator plus NSEQ
  /// middle sub-engines) into `registry` as engine_*{query=<query_label>}
  /// counters/gauges; middle sub-engines use query_label + ".anti<part>".
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& query_label) const;

 private:
  Query query_;
  EvaluatorOptions options_;
  std::unique_ptr<ProjectionEvaluator> main_;
  /// part index in `main_` for each positive primitive type; -1 otherwise.
  std::vector<int> part_of_type_;

  /// One sub-engine per NSEQ middle child; its outputs are the anti inputs
  /// of `main_`.
  struct MiddleEngine {
    std::unique_ptr<QueryEngine> engine;
    int anti_part;
  };
  std::vector<MiddleEngine> middles_;
};

/// Evaluates a workload of OR-free queries centrally; convenience wrapper
/// used by tests and the centralized baseline.
class WorkloadEngine {
 public:
  explicit WorkloadEngine(const std::vector<Query>& workload,
                          EvaluatorOptions options = {});

  /// Feeds one event; `out[i]` receives completed matches of query i.
  void OnEvent(const Event& e, std::vector<std::vector<Match>>* out);
  /// Columnar variant of OnEvent over a whole batch (see QueryEngine).
  void OnBatch(const EventBatch& batch, std::vector<std::vector<Match>>* out);
  void Flush(std::vector<std::vector<Match>>* out);

  int num_queries() const { return static_cast<int>(engines_.size()); }
  const QueryEngine& engine(int i) const { return engines_[i]; }

  /// ExportMetrics of every engine, labeled query=<index>.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  std::vector<QueryEngine> engines_;
};

}  // namespace muse

#endif  // MUSE_CEP_ENGINE_H_
