#include "src/cep/or_split.h"

#include <utility>

#include "src/common/check.h"

namespace muse {
namespace {

/// Returns all OR-free alternatives of the subtree rooted at `idx`.
std::vector<Query> SplitSubtree(const Query& q, int idx) {
  const QueryOp& op = q.op(idx);
  if (op.kind == OpKind::kPrimitive) {
    return {Query::Primitive(op.type)};
  }
  if (op.kind == OpKind::kOr) {
    std::vector<Query> out;
    for (int child : op.children) {
      std::vector<Query> alts = SplitSubtree(q, child);
      for (Query& alt : alts) out.push_back(std::move(alt));
    }
    return out;
  }
  // SEQ / AND / NSEQ: cartesian product over per-child alternatives.
  std::vector<std::vector<Query>> child_alts;
  child_alts.reserve(op.children.size());
  for (int child : op.children) child_alts.push_back(SplitSubtree(q, child));

  std::vector<std::vector<Query>> combos = {{}};
  for (const std::vector<Query>& alts : child_alts) {
    std::vector<std::vector<Query>> next;
    for (const std::vector<Query>& combo : combos) {
      for (const Query& alt : alts) {
        std::vector<Query> extended = combo;
        extended.push_back(alt);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }

  std::vector<Query> out;
  out.reserve(combos.size());
  for (std::vector<Query>& combo : combos) {
    switch (op.kind) {
      case OpKind::kSeq:
        out.push_back(Query::Seq(std::move(combo)));
        break;
      case OpKind::kAnd:
        out.push_back(Query::And(std::move(combo)));
        break;
      case OpKind::kNseq: {
        MUSE_CHECK(combo.size() == 3, "NSEQ arity");
        out.push_back(Query::Nseq(std::move(combo[0]), std::move(combo[1]),
                                  std::move(combo[2])));
        break;
      }
      default:
        MUSE_CHECK(false, "unexpected operator kind in SplitSubtree");
    }
  }
  return out;
}

}  // namespace

std::vector<Query> SplitDisjunctions(const Query& q) {
  MUSE_CHECK(q.IsInitialized(), "SplitDisjunctions on empty query");
  std::vector<Query> variants = SplitSubtree(q, q.root());
  for (Query& v : variants) {
    v.set_window(q.window());
    TypeSet types = v.PrimitiveTypes();
    for (const Predicate& p : q.predicates()) {
      if (p.ApplicableTo(types)) v.AddPredicate(p);
    }
  }
  return variants;
}

}  // namespace muse
