#ifndef MUSE_CEP_ORACLE_H_
#define MUSE_CEP_ORACLE_H_

#include <vector>

#include "src/cep/match.h"
#include "src/cep/query.h"

namespace muse {

/// Brute-force reference implementation of the query semantics of §2.2
/// (skip-till-any-match): constructs the match sets bottom-up over the
/// operator tree exactly as the recursive definition does — interleavings
/// for AND, concatenations for SEQ, unions for OR, and absence-checked
/// concatenations for NSEQ — then filters by predicates and window.
///
/// Exponential in the trace length; intended exclusively as a test oracle
/// on small traces (tens of events). The engine's output is compared
/// against this on randomized inputs.
std::vector<Match> OracleMatches(const Query& q,
                                 const std::vector<Event>& trace);

/// Sorts matches into a canonical order and removes duplicates; used to
/// compare match sets from different evaluators.
std::vector<Match> CanonicalMatchSet(std::vector<Match> matches);

}  // namespace muse

#endif  // MUSE_CEP_ORACLE_H_
