#include "src/cep/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "src/common/numbers.h"

namespace muse {
namespace {

/// Recursive-descent parser over the SASE-like grammar described in
/// parser.h. Tokenization is character-level with ad-hoc lookahead; the
/// grammar is small enough that this stays readable.
class Parser {
 public:
  Parser(const std::string& text, TypeRegistry* reg, double default_sel)
      : text_(text), reg_(reg), default_sel_(default_sel) {}

  Result<Query> Parse() {
    SkipSpace();
    const size_t before_keyword = pos_;
    if (ConsumeKeyword("PATTERN")) {
      // The keyword must introduce an expression. A lone "PATTERN" is a
      // pattern *named* PATTERN (an event type can carry that name), so
      // backtrack and parse it as the expression itself — otherwise
      // ToString -> ParseQuery round trips fail on such queries.
      SkipSpace();
      if (AtEnd()) pos_ = before_keyword;
    }
    Result<Query> pattern = ParseExpr(/*allow_vars=*/true);
    if (!pattern.ok()) return pattern;
    Query q = std::move(pattern).value();

    SkipSpace();
    if (ConsumeKeyword("WHERE")) {
      Result<std::vector<Predicate>> preds = ParseWhere();
      if (!preds.ok()) return preds.error();
      for (Predicate& p : preds.value()) q.AddPredicate(std::move(p));
    }
    SkipSpace();
    if (ConsumeKeyword("WITHIN")) {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() && !std::isspace(Peek())) ++pos_;
      Result<uint64_t> window = ParseDuration(text_.substr(start, pos_ - start));
      if (!window.ok()) return window.error();
      q.set_window(window.value());
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input at position ", pos_, ": '",
                 text_.substr(pos_), "'");
    }
    std::string why;
    if (!q.Validate(&why)) return Err("invalid query: ", why);
    return q;
  }

 private:
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(Peek())) ++pos_;
  }
  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Consumes `kw` if it appears (case-insensitively) at the cursor as a
  /// whole word.
  bool ConsumeKeyword(const std::string& kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(text_[pos_ + i]) != kw[i]) return false;
    }
    size_t after = pos_ + kw.size();
    if (after < text_.size() &&
        (std::isalnum(text_[after]) || text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::optional<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(Peek()) || Peek() == '_')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    return text_.substr(start, pos_ - start);
  }

  bool Consume(char c) {
    SkipSpace();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  static std::optional<OpKind> OperatorFor(const std::string& name) {
    std::string upper;
    for (char c : name) upper += static_cast<char>(std::toupper(c));
    if (upper == "SEQ") return OpKind::kSeq;
    if (upper == "AND") return OpKind::kAnd;
    if (upper == "OR") return OpKind::kOr;
    if (upper == "NSEQ") return OpKind::kNseq;
    return std::nullopt;
  }

  /// expr := IDENT [var] | OP '(' expr (',' expr)* ')'
  Result<Query> ParseExpr(bool allow_vars) {
    std::optional<std::string> ident = ParseIdent();
    if (!ident.has_value()) return Err("expected identifier at ", pos_);
    std::optional<OpKind> op = OperatorFor(*ident);
    if (op.has_value() && Consume('(')) {
      std::vector<Query> children;
      while (true) {
        Result<Query> child = ParseExpr(allow_vars);
        if (!child.ok()) return child;
        children.push_back(std::move(child).value());
        if (Consume(',')) continue;
        if (Consume(')')) break;
        return Err("expected ',' or ')' at ", pos_);
      }
      switch (*op) {
        case OpKind::kSeq:
          return Query::Seq(std::move(children));
        case OpKind::kAnd:
          return Query::And(std::move(children));
        case OpKind::kOr:
          return Query::Or(std::move(children));
        case OpKind::kNseq: {
          if (children.size() != 3) {
            return Err("NSEQ requires exactly three children");
          }
          Query last = std::move(children.back());
          children.pop_back();
          Query mid = std::move(children.back());
          children.pop_back();
          Query first = std::move(children.back());
          return Query::Nseq(std::move(first), std::move(mid),
                             std::move(last));
        }
        default:
          break;
      }
    }
    // Primitive type, optionally followed by a variable binding.
    if (reg_->Full() && reg_->Find(*ident) < 0) {
      return Err("too many event types (max ",
                 TypeRegistry::kMaxTypes, "): '", *ident, "'");
    }
    EventTypeId type = reg_->Intern(*ident);
    if (allow_vars) {
      SkipSpace();
      if (!AtEnd() && (std::isalpha(Peek()) || Peek() == '_')) {
        std::optional<std::string> var = ParseIdent();
        if (var.has_value() && !OperatorFor(*var).has_value()) {
          vars_[*var] = type;
        }
      }
    }
    return Query::Primitive(type);
  }

  /// where := term ('AND'|'∧') term ...
  /// term  := var '.' attr ('=='|'=') var '.' attr
  Result<std::vector<Predicate>> ParseWhere() {
    std::vector<Predicate> preds;
    while (true) {
      Result<Predicate> term = ParseWhereTerm();
      if (!term.ok()) return term.error();
      preds.push_back(term.value());
      SkipSpace();
      if (ConsumeKeyword("AND")) continue;
      // Unicode conjunction used in the paper's listing.
      if (pos_ + 3 <= text_.size() && text_.compare(pos_, 3, "∧") == 0) {
        pos_ += 3;
        continue;
      }
      break;
    }
    return preds;
  }

  Result<int> ParseAttr() {
    std::optional<std::string> name = ParseIdent();
    if (!name.has_value()) return Err("expected attribute at ", pos_);
    std::string lower;
    for (char c : *name) lower += static_cast<char>(std::tolower(c));
    if (lower == "a0" || lower == "uid") return 0;
    if (lower == "a1" || lower == "jid") return 1;
    return Err("unknown attribute '", *name, "' (use a0/a1/uID/jID)");
  }

  Result<Predicate> ParseWhereTerm() {
    std::optional<std::string> var = ParseIdent();
    if (!var.has_value()) return Err("expected variable at ", pos_);
    auto left = vars_.find(*var);
    if (left == vars_.end()) return Err("unbound variable '", *var, "'");
    if (!Consume('.')) return Err("expected '.' after variable");
    Result<int> left_attr = ParseAttr();
    if (!left_attr.ok()) return left_attr.error();
    if (!Consume('=')) return Err("expected '=' in predicate");
    Consume('=');  // tolerate both = and ==
    std::optional<std::string> rvar = ParseIdent();
    if (!rvar.has_value()) return Err("expected variable at ", pos_);
    auto right = vars_.find(*rvar);
    if (right == vars_.end()) return Err("unbound variable '", *rvar, "'");
    if (!Consume('.')) return Err("expected '.' after variable");
    Result<int> right_attr = ParseAttr();
    if (!right_attr.ok()) return right_attr.error();
    return Predicate::Equality(left->second, left_attr.value(), right->second,
                               right_attr.value(), default_sel_);
  }

  const std::string& text_;
  TypeRegistry* reg_;
  double default_sel_;
  size_t pos_ = 0;
  std::map<std::string, EventTypeId> vars_;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text, TypeRegistry* reg,
                         double default_selectivity) {
  return Parser(text, reg, default_selectivity).Parse();
}

Result<uint64_t> ParseDuration(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isdigit(text[i])) ++i;
  if (i == 0) return Err("expected number in duration '", text, "'");
  std::optional<uint64_t> parsed = ParseUint64(text.substr(0, i));
  // 2^63 - 1 ms headroom: the unit multipliers below cannot overflow.
  if (!parsed || *parsed > (UINT64_MAX >> 1) / 3600000) {
    return Err("duration '", text, "' out of range");
  }
  uint64_t value = *parsed;
  std::string unit;
  for (size_t j = i; j < text.size(); ++j) {
    unit += static_cast<char>(std::tolower(text[j]));
  }
  if (unit == "ms") return value;
  if (unit == "s" || unit == "sec") return value * 1000;
  if (unit == "m" || unit == "min") return value * 60 * 1000;
  if (unit == "h") return value * 60 * 60 * 1000;
  return Err("unknown duration unit '", unit, "'");
}

}  // namespace muse
