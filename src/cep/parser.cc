#include "src/cep/parser.h"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/numbers.h"

namespace muse {
namespace {

/// Recursive-descent parser over the SASE-like grammar described in
/// parser.h. Tokenization is character-level with ad-hoc lookahead; the
/// grammar is small enough that this stays readable.
class Parser {
 public:
  Parser(const std::string& text, TypeRegistry* reg, double default_sel)
      : text_(text), reg_(reg), default_sel_(default_sel) {}

  Result<Query> Parse() {
    SkipSpace();
    const size_t before_keyword = pos_;
    if (ConsumeKeyword("PATTERN")) {
      // The keyword must introduce an expression. A lone "PATTERN" — or
      // "PATTERN WHERE ..."/"PATTERN WITHIN ..." — is a pattern *named*
      // PATTERN (an event type can carry that name), so backtrack and parse
      // it as the expression itself — otherwise ToSpecString -> ParseQuery
      // round trips fail on such queries.
      SkipSpace();
      const size_t after_keyword = pos_;
      std::optional<std::string> next = ParseIdent();
      pos_ = after_keyword;
      if (AtEnd() || (next.has_value() && IsClauseKeyword(*next))) {
        pos_ = before_keyword;
      }
    }
    Result<Query> pattern = ParseExpr(/*allow_vars=*/true, /*at_root=*/true);
    if (!pattern.ok()) return pattern;
    Query q = std::move(pattern).value();

    SkipSpace();
    if (ConsumeKeyword("WHERE")) {
      Result<std::vector<Predicate>> preds = ParseWhere();
      if (!preds.ok()) return preds.error();
      for (Predicate& p : preds.value()) q.AddPredicate(std::move(p));
    }
    SkipSpace();
    if (ConsumeKeyword("WITHIN")) {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() && !std::isspace(Peek())) ++pos_;
      Result<uint64_t> window = ParseDuration(text_.substr(start, pos_ - start));
      if (!window.ok()) return window.error();
      q.set_window(window.value());
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input at position ", pos_, ": '",
                 text_.substr(pos_), "'");
    }
    std::string why;
    if (!q.Validate(&why)) return Err("invalid query: ", why);
    return q;
  }

 private:
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(Peek())) ++pos_;
  }
  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Consumes `kw` if it appears (case-insensitively) at the cursor as a
  /// whole word.
  bool ConsumeKeyword(const std::string& kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(text_[pos_ + i]) != kw[i]) return false;
    }
    size_t after = pos_ + kw.size();
    if (after < text_.size() &&
        (std::isalnum(text_[after]) || text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::optional<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(Peek()) || Peek() == '_')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    return text_.substr(start, pos_ - start);
  }

  bool Consume(char c) {
    SkipSpace();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  static bool IsClauseKeyword(const std::string& name) {
    std::string upper;
    for (char c : name) upper += static_cast<char>(std::toupper(c));
    return upper == "WHERE" || upper == "WITHIN";
  }

  static std::optional<OpKind> OperatorFor(const std::string& name) {
    std::string upper;
    for (char c : name) upper += static_cast<char>(std::toupper(c));
    if (upper == "SEQ") return OpKind::kSeq;
    if (upper == "AND") return OpKind::kAnd;
    if (upper == "OR") return OpKind::kOr;
    if (upper == "NSEQ") return OpKind::kNseq;
    return std::nullopt;
  }

  /// expr := IDENT [var] | OP '(' expr (',' expr)* ')'
  ///
  /// `at_root` is true only for the top-level expression, where a WHERE or
  /// WITHIN clause may legally follow: there a keyword after a primitive is
  /// the clause, not a variable binding. Inside an operator's parentheses
  /// the next token can only be a binding, ',' or ')', so keyword-named
  /// variables stay usable.
  Result<Query> ParseExpr(bool allow_vars, bool at_root = false) {
    std::optional<std::string> ident = ParseIdent();
    if (!ident.has_value()) return Err("expected identifier at ", pos_);
    std::optional<OpKind> op = OperatorFor(*ident);
    if (op.has_value() && Consume('(')) {
      std::vector<Query> children;
      while (true) {
        Result<Query> child = ParseExpr(allow_vars);
        if (!child.ok()) return child;
        children.push_back(std::move(child).value());
        if (Consume(',')) continue;
        if (Consume(')')) break;
        return Err("expected ',' or ')' at ", pos_);
      }
      switch (*op) {
        case OpKind::kSeq:
          return Query::Seq(std::move(children));
        case OpKind::kAnd:
          return Query::And(std::move(children));
        case OpKind::kOr:
          return Query::Or(std::move(children));
        case OpKind::kNseq: {
          if (children.size() != 3) {
            return Err("NSEQ requires exactly three children");
          }
          Query last = std::move(children.back());
          children.pop_back();
          Query mid = std::move(children.back());
          children.pop_back();
          Query first = std::move(children.back());
          return Query::Nseq(std::move(first), std::move(mid),
                             std::move(last));
        }
        default:
          break;
      }
    }
    // Primitive type, optionally followed by a variable binding.
    if (reg_->Full() && reg_->Find(*ident) < 0) {
      return Err("too many event types (max ",
                 TypeRegistry::kMaxTypes, "): '", *ident, "'");
    }
    EventTypeId type = reg_->Intern(*ident);
    if (allow_vars) {
      SkipSpace();
      if (!AtEnd() && (std::isalpha(Peek()) || Peek() == '_')) {
        const size_t before_var = pos_;
        std::optional<std::string> var = ParseIdent();
        if (var.has_value() && at_root && IsClauseKeyword(*var)) {
          // `A WHERE ...` / `A WITHIN ...`: the word starts the next
          // clause. Swallowing it as a binding would leave the clause
          // unparsable ("trailing input").
          pos_ = before_var;
        } else if (var.has_value() && !OperatorFor(*var).has_value()) {
          vars_[*var] = type;
        }
      }
    }
    return Query::Primitive(type);
  }

  /// where := term ('AND'|'∧') term ...
  /// term  := ref '.' attr ('=='|'=') ref '.' attr
  ///        | ref '.' attr '%' INT ('=='|'=') '0'
  /// ref   := bound variable | event type name
  Result<std::vector<Predicate>> ParseWhere() {
    std::vector<Predicate> preds;
    while (true) {
      Result<Predicate> term = ParseWhereTerm();
      if (!term.ok()) return term.error();
      preds.push_back(term.value());
      SkipSpace();
      if (ConsumeKeyword("AND")) continue;
      // Unicode conjunction used in the paper's listing.
      if (pos_ + 3 <= text_.size() && text_.compare(pos_, 3, "∧") == 0) {
        pos_ += 3;
        continue;
      }
      break;
    }
    return preds;
  }

  Result<int> ParseAttr() {
    std::optional<std::string> name = ParseIdent();
    if (!name.has_value()) return Err("expected attribute at ", pos_);
    std::string lower;
    for (char c : *name) lower += static_cast<char>(std::tolower(c));
    if (lower == "a0" || lower == "uid") return 0;
    if (lower == "a1" || lower == "jid") return 1;
    return Err("unknown attribute '", *name, "' (use a0/a1/uID/jID)");
  }

  /// Resolves a WHERE reference: a bound variable shadows an event type of
  /// the same name; otherwise the name must be a type already mentioned in
  /// the pattern (no interning here — WHERE cannot introduce new types).
  Result<EventTypeId> ResolveRef(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    int type = reg_->Find(name);
    if (type >= 0) return static_cast<EventTypeId>(type);
    return Err("unbound variable or unknown type '", name, "'");
  }

  Result<Predicate> ParseWhereTerm() {
    std::optional<std::string> var = ParseIdent();
    if (!var.has_value()) return Err("expected variable at ", pos_);
    Result<EventTypeId> left = ResolveRef(*var);
    if (!left.ok()) return left.error();
    if (!Consume('.')) return Err("expected '.' after variable");
    Result<int> left_attr = ParseAttr();
    if (!left_attr.ok()) return left_attr.error();
    SkipSpace();
    if (Consume('%')) {
      // Unary modulus filter: ref.attr % m == 0 (Euclidean mod).
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() && std::isdigit(Peek())) ++pos_;
      if (pos_ == start) return Err("expected modulus at ", pos_);
      std::optional<uint64_t> modulus =
          ParseUint64(text_.substr(start, pos_ - start));
      if (!modulus || *modulus == 0 ||
          *modulus > static_cast<uint64_t>(INT64_MAX)) {
        return Err("filter modulus out of range at ", start);
      }
      if (!Consume('=')) return Err("expected '=' in predicate");
      Consume('=');  // tolerate both = and ==
      if (!Consume('0')) return Err("filter must compare against 0");
      return Predicate::Filter(left.value(), left_attr.value(),
                               static_cast<int64_t>(*modulus));
    }
    if (!Consume('=')) return Err("expected '=' or '%' in predicate");
    Consume('=');  // tolerate both = and ==
    std::optional<std::string> rvar = ParseIdent();
    if (!rvar.has_value()) return Err("expected variable at ", pos_);
    Result<EventTypeId> right = ResolveRef(*rvar);
    if (!right.ok()) return right.error();
    if (!Consume('.')) return Err("expected '.' after variable");
    Result<int> right_attr = ParseAttr();
    if (!right_attr.ok()) return right_attr.error();
    if (left.value() == right.value()) {
      return Err("equality predicate needs two distinct types");
    }
    return Predicate::Equality(left.value(), left_attr.value(), right.value(),
                               right_attr.value(), default_sel_);
  }

  const std::string& text_;
  TypeRegistry* reg_;
  double default_sel_;
  size_t pos_ = 0;
  std::map<std::string, EventTypeId> vars_;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text, TypeRegistry* reg,
                         double default_selectivity) {
  return Parser(text, reg, default_selectivity).Parse();
}

Result<uint64_t> ParseDuration(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isdigit(text[i])) ++i;
  if (i == 0) return Err("expected number in duration '", text, "'");
  std::optional<uint64_t> parsed = ParseUint64(text.substr(0, i));
  // 2^63 - 1 ms headroom: the unit multipliers below cannot overflow.
  if (!parsed || *parsed > (UINT64_MAX >> 1) / 3600000) {
    return Err("duration '", text, "' out of range");
  }
  uint64_t value = *parsed;
  std::string unit;
  for (size_t j = i; j < text.size(); ++j) {
    unit += static_cast<char>(std::tolower(text[j]));
  }
  if (unit == "ms") return value;
  if (unit == "s" || unit == "sec") return value * 1000;
  if (unit == "m" || unit == "min") return value * 60 * 1000;
  if (unit == "h") return value * 60 * 60 * 1000;
  return Err("unknown duration unit '", unit, "'");
}

}  // namespace muse
