#include "src/cep/predicate.h"

#include "src/common/check.h"

namespace muse {
namespace {

const Event* FindType(const std::vector<Event>& events, EventTypeId type) {
  for (const Event& e : events) {
    if (e.type == type) return &e;
  }
  return nullptr;
}

}  // namespace

Predicate Predicate::Equality(EventTypeId left_type, int left_attr,
                              EventTypeId right_type, int right_attr,
                              double selectivity) {
  MUSE_CHECK(left_type != right_type, "equality predicate needs two types");
  MUSE_CHECK(left_attr >= 0 && left_attr < kNumAttrs, "bad attr index");
  MUSE_CHECK(right_attr >= 0 && right_attr < kNumAttrs, "bad attr index");
  Predicate p;
  p.kind = Kind::kEquality;
  p.left_type = left_type;
  p.left_attr = left_attr;
  p.right_type = right_type;
  p.right_attr = right_attr;
  p.selectivity = selectivity;
  return p;
}

Predicate Predicate::Filter(EventTypeId type, int attr, int64_t modulus) {
  MUSE_CHECK(modulus >= 1, "filter modulus must be positive");
  MUSE_CHECK(attr >= 0 && attr < kNumAttrs, "bad attr index");
  Predicate p;
  p.kind = Kind::kFilter;
  p.left_type = type;
  p.left_attr = attr;
  p.modulus = modulus;
  p.selectivity = 1.0 / static_cast<double>(modulus);
  return p;
}

TypeSet Predicate::Types() const {
  TypeSet s = TypeSet::Of(left_type);
  if (kind == Kind::kEquality) s.Insert(right_type);
  return s;
}

bool Predicate::ApplicableTo(TypeSet available) const {
  return available.ContainsAll(Types());
}

bool Predicate::Eval(const std::vector<Event>& events) const {
  const Event* left = FindType(events, left_type);
  if (left == nullptr) return true;  // not applicable
  if (kind == Kind::kFilter) {
    return EuclidMod(left->attrs[left_attr], modulus) == 0;
  }
  const Event* right = FindType(events, right_type);
  if (right == nullptr) return true;  // not applicable
  return left->attrs[left_attr] == right->attrs[right_attr];
}

std::string Predicate::ToString() const {
  if (kind == Kind::kFilter) {
    return "E" + std::to_string(left_type) + ".a" + std::to_string(left_attr) +
           "%" + std::to_string(modulus) + "==0";
  }
  return "E" + std::to_string(left_type) + ".a" + std::to_string(left_attr) +
         "==E" + std::to_string(right_type) + ".a" +
         std::to_string(right_attr);
}

double CombinedSelectivity(const std::vector<Predicate>& preds,
                           TypeSet available) {
  double sel = 1.0;
  for (const Predicate& p : preds) {
    if (p.ApplicableTo(available)) sel *= p.selectivity;
  }
  return sel;
}

}  // namespace muse
