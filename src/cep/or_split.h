#ifndef MUSE_CEP_OR_SPLIT_H_
#define MUSE_CEP_OR_SPLIT_H_

#include <vector>

#include "src/cep/query.h"

namespace muse {

/// Rewrites a query containing OR operators into an equivalent set of
/// OR-free queries (§2.2): each OR contributes one alternative per child,
/// and the result is the cartesian expansion over all ORs. The union of the
/// returned queries' matches equals the original query's matches.
///
/// Each returned query keeps the original window and exactly the predicates
/// applicable to its primitive types. A query without OR is returned as-is
/// (singleton vector).
std::vector<Query> SplitDisjunctions(const Query& q);

}  // namespace muse

#endif  // MUSE_CEP_OR_SPLIT_H_
