#ifndef MUSE_CEP_MATCH_DEDUP_H_
#define MUSE_CEP_MATCH_DEDUP_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "src/cep/match.h"

namespace muse {

/// Watermark-compacted duplicate suppressor for sink match streams.
///
/// Replaces the unbounded `std::set<std::string>` of Match::Key() strings at
/// the simulator and rt sinks: identity is the 64-bit seq-list fingerprint
/// (no allocation per match), and entries are dropped once the observed
/// max-time watermark passes them by `horizon` — by then no live evaluator
/// state can regenerate the match, mirroring the eviction-slack contract of
/// `ExactlyOnceFilter`'s channel watermarks. With `kNoHorizon` the set never
/// compacts (the deterministic-replay configurations, where duplicates of
/// arbitrary age must still be recognized).
class MatchDedupSet {
 public:
  static constexpr uint64_t kNoHorizon = UINT64_MAX;

  explicit MatchDedupSet(uint64_t horizon_ms = kNoHorizon)
      : horizon_ms_(horizon_ms) {}

  /// Returns true if `m` is fresh (first sighting), false for a duplicate.
  bool Accept(const Match& m) {
    const uint64_t t = m.MaxTime();
    watermark_ = std::max(watermark_, t);
    auto [it, inserted] = seen_.try_emplace(m.Fingerprint(), t);
    if (!inserted) {
      it->second = std::max(it->second, t);
      ++duplicates_;
      return false;
    }
    peak_live_ = std::max(peak_live_, static_cast<uint64_t>(seen_.size()));
    MaybeCompact();
    return true;
  }

  uint64_t live() const { return seen_.size(); }
  uint64_t peak_live() const { return peak_live_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t compacted() const { return compacted_; }

 private:
  void MaybeCompact() {
    if (horizon_ms_ == kNoHorizon) return;
    if (watermark_ <= horizon_ms_) return;
    if (watermark_ < next_compaction_) return;
    // Re-arm so each entry is scanned O(1) amortized times per horizon.
    next_compaction_ = watermark_ + std::max<uint64_t>(1, horizon_ms_ / 8);
    const uint64_t cutoff = watermark_ - horizon_ms_;
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (it->second < cutoff) {
        it = seen_.erase(it);
        ++compacted_;
      } else {
        ++it;
      }
    }
  }

  uint64_t horizon_ms_;
  /// fingerprint -> max time of the match; compaction drops entries whose
  /// match time fell behind the watermark by more than the horizon.
  std::unordered_map<uint64_t, uint64_t> seen_;
  uint64_t watermark_ = 0;
  uint64_t next_compaction_ = 0;
  uint64_t peak_live_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t compacted_ = 0;
};

}  // namespace muse

#endif  // MUSE_CEP_MATCH_DEDUP_H_
