#include "src/cep/type_registry.h"

#include "src/common/check.h"

namespace muse {

EventTypeId TypeRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  MUSE_CHECK(!Full(), "TypeRegistry supports at most 64 types");
  EventTypeId id = static_cast<EventTypeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

int TypeRegistry::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : static_cast<int>(it->second);
}

const std::string& TypeRegistry::Name(EventTypeId id) const {
  MUSE_CHECK(id < names_.size(), "unknown event type id");
  return names_[id];
}

TypeRegistry TypeRegistry::Synthetic(int num_types) {
  TypeRegistry reg;
  for (int i = 0; i < num_types; ++i) {
    reg.Intern("E" + std::to_string(i));
  }
  return reg;
}

}  // namespace muse
