#ifndef MUSE_CEP_BATCH_H_
#define MUSE_CEP_BATCH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/cep/event.h"
#include "src/cep/predicate.h"

namespace muse {

/// A block of events in structure-of-arrays layout (muse-batch, ROADMAP
/// item 2). The evaluator's per-event path pays a virtual-dispatch and
/// pointer-chasing tax on every input; at millions-of-users scale the
/// dominant cost is how many candidate tuples reach the join at all
/// (Kolchinsky & Schuster). Batching lets predicate kernels sweep whole
/// columns in flat loops — the compiler auto-vectorizes them — and hand the
/// join pre-filtered candidate *row indices* instead of one event at a time,
/// the same frames-not-samples discipline real-time DSP renderers use.
///
/// Columns are parallel: row i of every column describes one event. Rows
/// are expected in global-trace order (`seq` ascending, hence `time`
/// non-decreasing); `ProjectionEvaluator::OnEventBatch` relies on this to
/// pick its ingestion mode.
struct EventBatch {
  std::vector<EventTypeId> type;
  std::vector<NodeId> origin;
  std::vector<uint64_t> seq;
  std::vector<uint64_t> time;
  std::array<std::vector<int64_t>, kNumAttrs> attrs;

  size_t size() const { return type.size(); }
  bool empty() const { return type.empty(); }

  void Clear();
  void Reserve(size_t n);
  void Append(const Event& e);

  /// Reassembles row i as a row-form Event (boundary use only — kernels and
  /// the evaluator's bulk path never call this per inner-loop iteration).
  Event At(size_t i) const;

  /// max(time) - min(time) over all rows; 0 when empty. For in-order rows
  /// this is time.back() - time.front(), but the span is computed over the
  /// whole column so a mis-ordered batch still reports an honest span.
  uint64_t SpanMs() const;

  static EventBatch FromEvents(const std::vector<Event>& events);
};

/// Appends to `rows` the indices of all rows of `b` whose type is `t`, in
/// row order. One flat pass over the type column.
void SelectTypeRows(const EventBatch& b, EventTypeId t,
                    std::vector<uint32_t>* rows);

/// Compacts `rows` in place to the rows whose attribute `attr` satisfies
/// the Euclidean-mod filter `attr % modulus == 0` (the same `EuclidMod`
/// the scalar `Predicate::Eval` and the oracle use — truncated `%` would
/// silently diverge on negative attributes). Returns the number of rows
/// dropped. Branch-light gather over one attribute column; no virtual
/// calls.
size_t FilterRowsMod(const EventBatch& b, int attr, int64_t modulus,
                     std::vector<uint32_t>* rows);

/// Gathers attribute column `attr` at the given rows into `keys`
/// (keys->size() == rows.size()). Used to stage join-key columns for the
/// equality-partitioned buffers.
void GatherAttr(const EventBatch& b, int attr,
                const std::vector<uint32_t>& rows, std::vector<int64_t>* keys);

/// Writes pass[i] = 1 iff row i has type `target_type` and satisfies every
/// predicate in `preds` that is a unary filter on `target_type` (equality
/// predicates are binary and vacuous on a single event, exactly as in the
/// scalar `StructurallyMatches` gate on a singleton). One pass over the
/// type column plus one flat pass per filter predicate. Used by the rt
/// runtime to pre-compute per-task forwarding decisions for a whole inbox
/// batch.
void ComputeUnaryPassMask(const EventBatch& b, EventTypeId target_type,
                          const std::vector<Predicate>& preds,
                          std::vector<uint8_t>* pass);

}  // namespace muse

#endif  // MUSE_CEP_BATCH_H_
